// Benchmarks regenerating the shape of every table and figure in the
// paper's evaluation. Each benchmark mirrors one experiment at a reduced
// size suitable for `go test -bench`; the full-scale runs (paper
// dimensions) are produced by cmd/ldbench and recorded in EXPERIMENTS.md.
//
// Custom metrics: peak% is the fraction of the host's calibrated
// AND+POPCNT+ADD issue rate (the paper's Figures 3–4 y-axis), MLD/s is
// million pairwise LD computations per second (Tables I–III).
package ldgemm

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ldgemm/internal/baselines"
	"ldgemm/internal/bitmat"
	"ldgemm/internal/blis"
	"ldgemm/internal/core"
	"ldgemm/internal/harness"
	"ldgemm/internal/kernel"
	"ldgemm/internal/popsim"
	"ldgemm/internal/simdsim"
	"ldgemm/internal/tanimoto"
)

var (
	peakOnce sync.Once
	peakRate float64
)

// hostPeak calibrates once per benchmark binary run.
func hostPeak() float64 {
	peakOnce.Do(func() { peakRate = harness.CalibratePeak(300 * time.Millisecond) })
	return peakRate
}

func benchMatrix(b *testing.B, seed uint64, snps, samples int) *bitmat.Matrix {
	b.Helper()
	m := bitmat.New(snps, samples)
	state := seed*0x9e3779b97f4a7c15 + 1
	pad := m.PadMask()
	for i := 0; i < snps; i++ {
		w := m.SNP(i)
		for j := range w {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			w[j] = state
		}
		if len(w) > 0 {
			w[len(w)-1] &= pad
		}
	}
	return m
}

// BenchmarkFig3 is Figure 3: the symmetric rank-k update (H = GᵀG) at
// fixed n while the sample dimension k grows; the reported peak% should
// stay flat and high as k increases (the paper's 84–90% band).
func BenchmarkFig3(b *testing.B) {
	peak := hostPeak()
	for _, n := range []int{512, 1024} {
		for _, k := range []int{1024, 4096, 16384} {
			g := benchMatrix(b, uint64(n+k), n, k)
			c := make([]uint32, n*n)
			triples := int64(n) * int64(n+1) / 2 * int64(g.Words)
			b.Run(fmt.Sprintf("n=%d/k=%d", n, k), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					clear(c)
					if err := blis.Syrk(blis.Config{Threads: 1}, g, c, n, false); err != nil {
						b.Fatal(err)
					}
				}
				rate := float64(triples) * float64(b.N) / b.Elapsed().Seconds()
				b.ReportMetric(100*rate/peak, "peak%")
				b.ReportMetric(rate/1e9, "Gtriples/s")
			})
		}
	}
}

// BenchmarkFig4 is Figure 4: the same sweep with two different genomic
// matrices (all m×n outputs computed).
func BenchmarkFig4(b *testing.B) {
	peak := hostPeak()
	for _, n := range []int{512, 1024} {
		for _, k := range []int{1024, 4096, 16384} {
			ga := benchMatrix(b, uint64(3*n+k), n, k)
			gb := benchMatrix(b, uint64(5*n+k), n, k)
			c := make([]uint32, n*n)
			triples := int64(n) * int64(n) * int64(ga.Words)
			b.Run(fmt.Sprintf("m=n=%d/k=%d", n, k), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					clear(c)
					if err := blis.Gemm(blis.Config{Threads: 1}, ga, gb, c, n); err != nil {
						b.Fatal(err)
					}
				}
				rate := float64(triples) * float64(b.N) / b.Elapsed().Seconds()
				b.ReportMetric(100*rate/peak, "peak%")
				b.ReportMetric(rate/1e9, "Gtriples/s")
			})
		}
	}
}

// benchComparison runs one paper comparison table (I, II, or III) at the
// given scale: the three kernels on the same dataset, MLD/s reported.
func benchComparison(b *testing.B, ds popsim.Dataset, scale int) {
	g, err := ds.Generate(scale)
	if err != nil {
		b.Fatal(err)
	}
	hap := g
	if hap.Samples%2 != 0 {
		hap = hap.Slice(0, hap.SNPs) // dims already even for the paper sizes
	}
	geno, err := bitmat.FromHaplotypes(hap)
	if err != nil {
		b.Fatal(err)
	}
	pairs := int64(g.SNPs) * int64(g.SNPs+1) / 2
	report := func(b *testing.B) {
		b.ReportMetric(float64(pairs)*float64(b.N)/b.Elapsed().Seconds()/1e6, "MLD/s")
	}
	b.Run("PLINK-like", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			baselines.Plink{Threads: 1}.R2Sum(geno)
		}
		report(b)
	})
	b.Run("OmegaPlus-like", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			baselines.Vector{Threads: 1}.R2Sum(g)
		}
		report(b)
	})
	b.Run("GEMM", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.SumR2(g, core.StreamOptions{
				Options: core.Options{Blis: blis.Config{Threads: 1}},
			}); err != nil {
				b.Fatal(err)
			}
		}
		report(b)
	})
}

// BenchmarkTable1 is Table I (dataset A: 10,000 SNPs × 2,504 sequences),
// at 1/10 scale.
func BenchmarkTable1(b *testing.B) { benchComparison(b, popsim.DatasetA, 10) }

// BenchmarkTable2 is Table II (dataset B: 10,000 × 10,000), at 1/10 scale.
func BenchmarkTable2(b *testing.B) { benchComparison(b, popsim.DatasetB, 10) }

// BenchmarkTable3 is Table III (dataset C: 10,000 × 100,000), at 1/20
// scale (the sample dimension is what makes this the heavy dataset).
func BenchmarkTable3(b *testing.B) { benchComparison(b, popsim.DatasetC, 20) }

// BenchmarkFig5 is Figure 5: GEMM LD throughput as the thread count grows
// past the physical cores; the MLD/s metric saturates at the core count.
func BenchmarkFig5(b *testing.B) {
	g, err := popsim.DatasetC.Generate(20)
	if err != nil {
		b.Fatal(err)
	}
	pairs := int64(g.SNPs) * int64(g.SNPs+1) / 2
	for _, threads := range []int{1, 2, 4, 8, 16, 24} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.SumR2(g, core.StreamOptions{
					Options: core.Options{Blis: blis.Config{Threads: threads}},
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(pairs)*float64(b.N)/b.Elapsed().Seconds()/1e6, "MLD/s")
		})
	}
}

// BenchmarkSIMDModel is the Section V argument: simulated cycles per word
// for the three instruction-set scenarios. cyc/word for SIMD without a
// hardware popcount never drops below scalar; with one it scales as 1/v.
func BenchmarkSIMDModel(b *testing.B) {
	cases := []struct {
		name  string
		sc    simdsim.Scenario
		lanes int
	}{
		{"scalar", simdsim.Scalar, 1},
		{"simd-nohw/v=4", simdsim.SIMDNoHW, 4},
		{"simd-nohw/v=8", simdsim.SIMDNoHW, 8},
		{"simd-hw/v=4", simdsim.SIMDHW, 4},
		{"simd-hw/v=8", simdsim.SIMDHW, 8},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var res simdsim.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = simdsim.Run(c.sc, 1024, c.lanes)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.CyclesPerWord, "cyc/word")
		})
	}
}

// BenchmarkMaskedLD is the Section VII gaps ablation: the fused masked
// kernel (4 counts/pair) against the plain kernel on identical input.
func BenchmarkMaskedLD(b *testing.B) {
	const n, k = 512, 4096
	g := benchMatrix(b, 77, n, k)
	mask := bitmat.NewMask(n, k)
	for i := 0; i < n; i++ {
		for s := 0; s < k; s += 31 {
			mask.Invalidate(i, s)
		}
	}
	if err := mask.ApplyTo(g); err != nil {
		b.Fatal(err)
	}
	b.Run("plain", func(b *testing.B) {
		c := make([]uint32, n*n)
		for i := 0; i < b.N; i++ {
			clear(c)
			if err := blis.Syrk(blis.Config{Threads: 1}, g, c, n, false); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("masked", func(b *testing.B) {
		c := make([]uint32, n*n*4)
		for i := 0; i < b.N; i++ {
			clear(c)
			if err := blis.MaskedSyrk(blis.Config{Threads: 1}, g, mask, c, n); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFSM is the Section VII finite-sites ablation: 4-state LD with
// Zaykin's T versus the 1-bit ISM kernel at the same dimensions (paper
// bound: ≤16× plus epilogue).
func BenchmarkFSM(b *testing.B) {
	const n, k = 256, 512
	g := benchMatrix(b, 88, n, k)
	cols := make([][]byte, n)
	alpha := []byte("ACGT")
	state := uint64(99)
	for i := range cols {
		cols[i] = make([]byte, k)
		for s := range cols[i] {
			state = state*6364136223846793005 + 1
			cols[i][s] = alpha[state>>62]
		}
	}
	fsm, err := core.FromDNA(cols)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("ISM", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Matrix(g, core.Options{Measures: core.MeasureR2, Blis: blis.Config{Threads: 1}}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("FSM", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.FSMLD(fsm, core.Options{Blis: blis.Config{Threads: 1}}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTanimoto is the Section VII chemistry adaptation: all-pairs
// fingerprint similarity through the GEMM path versus per-pair popcounts.
func BenchmarkTanimoto(b *testing.B) {
	const compounds, bits = 1024, 2048
	fp, err := tanimoto.Random(compounds, bits, 0.3, 7)
	if err != nil {
		b.Fatal(err)
	}
	pairs := float64(compounds) * float64(compounds+1) / 2
	b.Run("per-pair", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for x := 0; x < compounds; x++ {
				for y := x; y < compounds; y++ {
					_ = fp.Pair(x, y)
				}
			}
		}
		b.ReportMetric(pairs*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mpairs/s")
	})
	b.Run("GEMM", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := fp.AllPairs(blis.Config{Threads: 1}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(pairs*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mpairs/s")
	})
}

// BenchmarkAblationBlocking isolates what the GotoBLAS structure buys:
// the same count workload via per-sample naive loops, the unblocked
// vector kernel, and the blocked GEMM.
func BenchmarkAblationBlocking(b *testing.B) {
	const n, k = 384, 8192
	g := benchMatrix(b, 55, n, k)
	pairs := float64(n) * float64(n+1) / 2
	report := func(b *testing.B) {
		b.ReportMetric(pairs*float64(b.N)/b.Elapsed().Seconds()/1e6, "MLD/s")
	}
	b.Run("naive-per-sample", func(b *testing.B) {
		// One outer iteration is n(n+1)/2 × k bit operations; keep N low.
		for i := 0; i < b.N; i++ {
			baselines.Naive{Threads: 1}.R2Sum(g)
		}
		report(b)
	})
	b.Run("vector-unblocked", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			baselines.Vector{Threads: 1}.R2Sum(g)
		}
		report(b)
	})
	b.Run("gemm-blocked", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.SumR2(g, core.StreamOptions{
				Options: core.Options{Blis: blis.Config{Threads: 1}},
			}); err != nil {
				b.Fatal(err)
			}
		}
		report(b)
	})
}

// seedSyrk is a frozen copy of the pre-worker-pool driver (fork/join per
// (jc, pc) slab, single-threaded B packing, whole-MC-block jobs), kept as
// the baseline BenchmarkSyrkDriver compares the pooled slab-pipelined
// driver against.
func seedSyrk(cfg blis.Config, a *bitmat.Matrix, c []uint32, ldc int) error {
	b, syrk := a, true
	k := cfg.Kernel
	if k.Fn == nil {
		k = kernel.Default
	}
	if cfg.MC == 0 {
		cfg.MC = 128
	}
	if cfg.NC == 0 {
		cfg.NC = 4096
	}
	if cfg.KC == 0 {
		cfg.KC = 256
	}
	m, n, kw := a.SNPs, b.SNPs, a.Words
	if m == 0 || n == 0 || kw == 0 {
		return nil
	}
	mr, nr := k.MR, k.NR
	kcMax := min(cfg.KC, kw)
	nc0 := min(cfg.NC, n)
	bpanels := (nc0 + nr - 1) / nr
	bpack := make([]uint64, bpanels*nr*kcMax)

	workers := cfg.Threads
	type job struct{ ic, mc int }
	var (
		wg     sync.WaitGroup
		cursor atomic.Int64
		jobs   []job
	)
	apacks := make([][]uint64, workers)
	tiles := make([][]uint32, workers)
	for w := range apacks {
		apanels := (min(cfg.MC, m) + mr - 1) / mr
		apacks[w] = make([]uint64, apanels*mr*kcMax)
		tiles[w] = make([]uint32, mr*nr)
	}

	runBlock := func(ic, mc, jc, nc, pc, kc int, apack []uint64, tile []uint32) {
		for ir := 0; ir < mc; ir += mr {
			kernel.PackPanel(apack[(ir/mr)*mr*kcMax:], a, ic+ir, min(mr, mc-ir), mr, pc, kc)
		}
		for jr := 0; jr < nc; jr += nr {
			bw := bpack[(jr/nr)*nr*kcMax : (jr/nr)*nr*kcMax+kc*nr]
			for ir := 0; ir < mc; ir += mr {
				i0, j0 := ic+ir, jc+jr
				if syrk && i0 >= j0+nr {
					continue
				}
				aw := apack[(ir/mr)*mr*kcMax : (ir/mr)*mr*kcMax+kc*mr]
				mm, nn := min(mr, mc-ir), min(nr, nc-jr)
				if mm == mr && nn == nr {
					k.Fn(kc, aw, bw, c[i0*ldc+j0:], ldc)
					continue
				}
				for t := range tile {
					tile[t] = 0
				}
				k.Fn(kc, aw, bw, tile, nr)
				for i := 0; i < mm; i++ {
					row := c[(i0+i)*ldc+j0:]
					for j := 0; j < nn; j++ {
						row[j] += tile[i*nr+j]
					}
				}
			}
		}
	}

	for jc := 0; jc < n; jc += cfg.NC {
		nc := min(cfg.NC, n-jc)
		jobs = jobs[:0]
		for ic := 0; ic < m; ic += cfg.MC {
			if syrk && ic >= jc+nc {
				continue
			}
			jobs = append(jobs, job{ic, min(cfg.MC, m-ic)})
		}
		if len(jobs) == 0 {
			continue
		}
		for pc := 0; pc < kw; pc += cfg.KC {
			kc := min(cfg.KC, kw-pc)
			for jr := 0; jr < nc; jr += nr {
				kernel.PackPanel(bpack[(jr/nr)*nr*kcMax:], b, jc+jr, min(nr, nc-jr), nr, pc, kc)
			}
			cursor.Store(0)
			nw := min(workers, len(jobs))
			wg.Add(nw)
			for w := 0; w < nw; w++ {
				go func(w int) {
					defer wg.Done()
					for {
						idx := int(cursor.Add(1)) - 1
						if idx >= len(jobs) {
							return
						}
						jb := jobs[idx]
						runBlock(jb.ic, jb.mc, jc, nc, pc, kc, apacks[w], tiles[w])
					}
				}(w)
			}
			wg.Wait()
		}
	}
	return nil
}

// BenchmarkSyrkDriver compares the seed fork/join driver against the
// pooled slab-pipelined driver on the issue's acceptance shape (4096 SNPs
// × 2048 samples) at 1 and 4 threads. The acceptance target is ≥1.2× at
// ≥4 threads on a multicore host; on a single-core host the pooled driver
// still wins on scheduling overhead (no per-slab goroutine churn) but
// cannot show parallel scaling.
func BenchmarkSyrkDriver(b *testing.B) {
	const n, k = 4096, 2048
	g := benchMatrix(b, 99, n, k)
	c := make([]uint32, n*n)
	triples := int64(n) * int64(n+1) / 2 * int64(g.Words)
	for _, threads := range []int{1, 4} {
		b.Run(fmt.Sprintf("seed/threads=%d", threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				clear(c)
				if err := seedSyrk(blis.Config{Threads: threads}, g, c, n); err != nil {
					b.Fatal(err)
				}
			}
			rate := float64(triples) * float64(b.N) / b.Elapsed().Seconds()
			b.ReportMetric(rate/1e9, "Gtriples/s")
		})
		b.Run(fmt.Sprintf("pooled/threads=%d", threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				clear(c)
				if err := blis.Syrk(blis.Config{Threads: threads}, g, c, n, false); err != nil {
					b.Fatal(err)
				}
			}
			rate := float64(triples) * float64(b.N) / b.Elapsed().Seconds()
			b.ReportMetric(rate/1e9, "Gtriples/s")
		})
	}
}

// BenchmarkAblationKernelShape sweeps the register-block shapes of the
// micro-kernel under the full blocked driver.
func BenchmarkAblationKernelShape(b *testing.B) {
	const n, k = 512, 8192
	g := benchMatrix(b, 66, n, k)
	peak := hostPeak()
	triples := int64(n) * int64(n+1) / 2 * int64(g.Words)
	for _, kn := range kernel.Fixed {
		c := make([]uint32, n*n)
		b.Run(kn.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				clear(c)
				if err := blis.Syrk(blis.Config{Kernel: kn, Threads: 1}, g, c, n, false); err != nil {
					b.Fatal(err)
				}
			}
			rate := float64(triples) * float64(b.N) / b.Elapsed().Seconds()
			b.ReportMetric(100*rate/peak, "peak%")
		})
	}
}
