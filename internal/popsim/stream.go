package popsim

import (
	"fmt"
	"math"
	"math/rand"

	"ldgemm/internal/bitmat"
)

// Streaming mosaic generation. Mosaic materializes the full snps×samples
// matrix, which caps dataset size at RAM; MosaicStream emits the same
// copying model a SNP window at a time, so arbitrarily long chromosomes
// can be written straight into a .ldbm container with O(window + samples)
// memory. The per-sample founder-copying chains advance in SNP order with
// one private splitmix64 generator each (a shared rand.Rand would cost
// ~5 KiB of state per sample and force a fixed sample-major order), which
// makes the output window-size invariant: any window decomposition of the
// same (dims, config) yields bit-identical SNP rows. The trade-off, noted
// on the constructor, is that the stream is NOT bit-identical to Mosaic,
// whose single generator interleaves its draws sample-major.

// splitmix64 is an 8-byte-state PRNG (Steele et al.'s SplitMix64), strong
// enough for simulation and cheap enough to give every sample its own.
type splitmix64 struct{ state uint64 }

func (s *splitmix64) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform draw in [0, 1) with 53 random bits.
func (s *splitmix64) float64() float64 { return float64(s.next()>>11) / (1 << 53) }

// intn returns a uniform draw in [0, n). The modulo bias is ≤ n/2⁶⁴ —
// irrelevant for simulation.
func (s *splitmix64) intn(n int) int { return int(s.next() % uint64(n)) }

// geomSkip is geometricSkip on a splitmix64 stream.
func (s *splitmix64) geomSkip(p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		return math.MaxInt / 2
	}
	u := s.float64()
	for u == 0 {
		u = s.float64()
	}
	return int(math.Log(u) / math.Log(1-p))
}

// MosaicStream generates a mosaic dataset in SNP-window increments.
type MosaicStream struct {
	snps    int
	samples int
	cfg     MosaicConfig

	// Founder alleles are drawn per SNP from a single sequential
	// generator, exactly as Mosaic draws them.
	founderRng *rand.Rand
	sfs        []float64
	perm       []int

	// Per-sample copying-chain state, advanced window by window.
	rngs       []splitmix64
	cur        []int32
	nextSwitch []int
	nextMut    []int

	// fixRng resolves monomorphic SNPs; it only advances on such SNPs
	// (in SNP order), so the fix-up is window-size invariant too.
	fixRng splitmix64

	pos      int
	founders *bitmat.Matrix
	buf      *bitmat.Matrix
}

// NewMosaicStream prepares a streaming generator for a snps×samples
// mosaic dataset. Output is deterministic in (snps, samples, cfg) and
// invariant under the window sizes passed to Next — but not bit-identical
// to Mosaic, which interleaves its random draws differently.
func NewMosaicStream(snps, samples int, cfg MosaicConfig) (*MosaicStream, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	if snps < 0 || samples < 1 {
		return nil, fmt.Errorf("popsim: invalid dimensions %dx%d", snps, samples)
	}
	s := &MosaicStream{
		snps: snps, samples: samples, cfg: cfg,
		founderRng: rand.New(rand.NewSource(cfg.Seed)),
		sfs:        cumulativeNeutralSFS(cfg.Founders),
		perm:       make([]int, cfg.Founders),
		rngs:       make([]splitmix64, samples),
		cur:        make([]int32, samples),
		nextSwitch: make([]int, samples),
		nextMut:    make([]int, samples),
		fixRng:     splitmix64{state: uint64(cfg.Seed) ^ 0xa0761d6478bd642f},
	}
	for i := range s.perm {
		s.perm[i] = i
	}
	for smp := range s.rngs {
		// Decorrelate the per-sample seeds through one splitmix step so
		// adjacent samples don't share low-entropy starting states.
		seed := splitmix64{state: uint64(cfg.Seed)*0x9e3779b97f4a7c15 + uint64(smp)}
		s.rngs[smp] = splitmix64{state: seed.next()}
		r := &s.rngs[smp]
		s.cur[smp] = int32(r.intn(cfg.Founders))
		s.nextSwitch[smp] = r.geomSkip(cfg.SwitchRate)
		s.nextMut[smp] = r.geomSkip(cfg.MutationRate)
	}
	return s, nil
}

// SNPs and Samples return the stream dimensions; Pos the next SNP index.
func (s *MosaicStream) SNPs() int    { return s.snps }
func (s *MosaicStream) Samples() int { return s.samples }
func (s *MosaicStream) Pos() int     { return s.pos }

// Next generates the next min(rows, remaining) SNPs and returns them as a
// rows×samples window (reused across calls — callers must not retain it),
// or nil once the stream is exhausted. Every emitted SNP is polymorphic,
// matching Mosaic's guarantee.
func (s *MosaicStream) Next(rows int) (*bitmat.Matrix, error) {
	if rows < 1 {
		return nil, fmt.Errorf("popsim: invalid window %d", rows)
	}
	if s.pos >= s.snps {
		return nil, nil
	}
	lo := s.pos
	hi := min(lo+rows, s.snps)
	rows = hi - lo

	// Founder alleles for the window, drawn per SNP exactly as Mosaic.
	if s.founders == nil || s.founders.SNPs < rows {
		s.founders = bitmat.New(rows, s.cfg.Founders)
		s.buf = bitmat.New(rows, s.samples)
	}
	founders := s.founders.Slice(0, rows)
	clear(founders.Data)
	for i := 0; i < rows; i++ {
		c := sampleSFS(s.founderRng, s.sfs)
		s.founderRng.Shuffle(len(s.perm), func(a, b int) { s.perm[a], s.perm[b] = s.perm[b], s.perm[a] })
		for _, f := range s.perm[:c] {
			founders.SetBit(i, f)
		}
	}

	m := s.buf.Slice(0, rows)
	clear(m.Data)
	for smp := 0; smp < s.samples; smp++ {
		r := &s.rngs[smp]
		cur := s.cur[smp]
		nextSwitch := s.nextSwitch[smp]
		nextMut := s.nextMut[smp]
		for i := lo; i < hi; i++ {
			if i == nextSwitch {
				cur = int32(r.intn(s.cfg.Founders))
				nextSwitch = i + 1 + r.geomSkip(s.cfg.SwitchRate)
			}
			bit := founders.Bit(i-lo, int(cur))
			if i == nextMut {
				bit = !bit
				nextMut = i + 1 + r.geomSkip(s.cfg.MutationRate)
			}
			if bit {
				m.SetBit(i-lo, smp)
			}
		}
		s.cur[smp] = cur
		s.nextSwitch[smp] = nextSwitch
		s.nextMut[smp] = nextMut
	}

	for i := 0; i < rows; i++ {
		switch m.DerivedCount(i) {
		case 0:
			m.SetBit(i, s.fixRng.intn(s.samples))
		case s.samples:
			m.ClearBit(i, s.fixRng.intn(s.samples))
		}
	}
	s.pos = hi
	return m, nil
}

// MosaicToLDBM streams a full mosaic dataset into a .ldbm container at
// path, windowRows SNPs at a time (default 1024) — the genome-scale
// datagen path whose memory never depends on snps.
func MosaicToLDBM(path string, snps, samples int, cfg MosaicConfig, windowRows int) error {
	if windowRows < 1 {
		windowRows = 1024
	}
	s, err := NewMosaicStream(snps, samples, cfg)
	if err != nil {
		return err
	}
	w, err := bitmat.CreateFile(path, snps, samples)
	if err != nil {
		return err
	}
	for {
		m, err := s.Next(windowRows)
		if err != nil {
			w.Abort()
			return err
		}
		if m == nil {
			break
		}
		if err := w.WritePanel(m); err != nil {
			w.Abort()
			return err
		}
	}
	return w.Close()
}
