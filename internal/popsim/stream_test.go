package popsim

import (
	"path/filepath"
	"testing"

	"ldgemm/internal/bitmat"
)

// streamAll drains a MosaicStream with the given window size into one
// resident matrix.
func streamAll(t *testing.T, snps, samples int, cfg MosaicConfig, window int) *bitmat.Matrix {
	t.Helper()
	s, err := NewMosaicStream(snps, samples, cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := bitmat.New(0, samples)
	for {
		m, err := s.Next(window)
		if err != nil {
			t.Fatal(err)
		}
		if m == nil {
			break
		}
		if out, err = out.Append(m); err != nil {
			t.Fatal(err)
		}
	}
	if out.SNPs != snps {
		t.Fatalf("stream yielded %d SNPs, want %d", out.SNPs, snps)
	}
	return out
}

// TestMosaicStreamWindowInvariance: the documented contract — any window
// decomposition of the same (dims, config) produces bit-identical rows.
func TestMosaicStreamWindowInvariance(t *testing.T) {
	cfg := MosaicConfig{Seed: 17}
	whole := streamAll(t, 301, 53, cfg, 301)
	for _, window := range []int{1, 7, 64, 300, 1000} {
		got := streamAll(t, 301, 53, cfg, window)
		if !got.Equal(whole) {
			t.Fatalf("window=%d produced different bits than one-shot generation", window)
		}
	}
}

func TestMosaicStreamDeterministicAndSeeded(t *testing.T) {
	cfg := MosaicConfig{Seed: 5}
	a := streamAll(t, 128, 40, cfg, 32)
	b := streamAll(t, 128, 40, cfg, 32)
	if !a.Equal(b) {
		t.Fatal("same seed must reproduce the same dataset")
	}
	c := streamAll(t, 128, 40, MosaicConfig{Seed: 6}, 32)
	if a.Equal(c) {
		t.Fatal("different seeds should differ")
	}
}

func TestMosaicStreamPolymorphic(t *testing.T) {
	m := streamAll(t, 256, 24, MosaicConfig{Seed: 3}, 50)
	for i := 0; i < m.SNPs; i++ {
		if c := m.DerivedCount(i); c == 0 || c == m.Samples {
			t.Fatalf("SNP %d monomorphic (count %d)", i, c)
		}
	}
	if err := m.ValidatePadding(); err != nil {
		t.Fatal(err)
	}
}

func TestMosaicToLDBM(t *testing.T) {
	const snps, samples = 200, 37
	cfg := MosaicConfig{Seed: 21}
	path := filepath.Join(t.TempDir(), "g.ldbm")
	if err := MosaicToLDBM(path, snps, samples, cfg, 64); err != nil {
		t.Fatal(err)
	}
	f, err := bitmat.OpenFile(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := f.Load()
	if err != nil {
		t.Fatal(err)
	}
	want := streamAll(t, snps, samples, cfg, snps)
	if !got.Equal(want) {
		t.Fatal("container contents differ from the stream that should have produced them")
	}
}
