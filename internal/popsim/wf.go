package popsim

import (
	"fmt"
	"math"
	"math/rand"

	"ldgemm/internal/bitmat"
)

// WFConfig parameterizes the forward Wright–Fisher simulator.
type WFConfig struct {
	Seed int64
	// PopSize is the number of haploid individuals (default 200).
	PopSize int
	// Sites is the number of mutable positions along the chromosome
	// (default 1000).
	Sites int
	// Generations to evolve (default 4·PopSize, on the order of the
	// coalescent time scale).
	Generations int
	// MutationRate is the expected number of new mutations per offspring
	// per generation (default 0.5). Mutations flip a uniform site
	// (finite-sites, recurrent mutation allowed).
	MutationRate float64
	// RecombinationRate is the expected number of crossovers per
	// offspring per generation (default 0.5).
	RecombinationRate float64
}

func (c WFConfig) normalize() (WFConfig, error) {
	if c.PopSize == 0 {
		c.PopSize = 200
	}
	if c.Sites == 0 {
		c.Sites = 1000
	}
	if c.Generations == 0 {
		c.Generations = 4 * c.PopSize
	}
	if c.MutationRate == 0 {
		c.MutationRate = 0.5
	}
	if c.RecombinationRate == 0 {
		c.RecombinationRate = 0.5
	}
	if c.PopSize < 2 || c.Sites < 1 || c.Generations < 1 {
		return c, fmt.Errorf("popsim: invalid WF config %+v", c)
	}
	if c.MutationRate < 0 || c.RecombinationRate < 0 {
		return c, fmt.Errorf("popsim: negative WF rates %+v", c)
	}
	return c, nil
}

// WFResult is the output of a Wright–Fisher run.
type WFResult struct {
	// Matrix holds the segregating (polymorphic) sites of the sampled
	// haplotypes, one SNP per column.
	Matrix *bitmat.Matrix
	// Positions are the original site indices of the retained SNPs.
	Positions []int
	// Segregating is the number of polymorphic sites observed.
	Segregating int
}

// WrightFisher runs a forward haploid Wright–Fisher simulation with
// mutation and recombination, samples `samples` haplotypes from the final
// generation, and returns the segregating sites. Recombination between
// two uniformly chosen parents creates the LD block structure; mutation
// maintains diversity.
func WrightFisher(samples int, cfg WFConfig) (*WFResult, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	if samples < 1 || samples > cfg.PopSize {
		return nil, fmt.Errorf("popsim: sample size %d outside 1..PopSize=%d", samples, cfg.PopSize)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	cur := make([][]byte, cfg.PopSize)
	next := make([][]byte, cfg.PopSize)
	for i := range cur {
		cur[i] = make([]byte, cfg.Sites)
		next[i] = make([]byte, cfg.Sites)
	}

	for g := 0; g < cfg.Generations; g++ {
		for child := range next {
			p1 := cur[rng.Intn(cfg.PopSize)]
			offspring := next[child]
			ncross := poisson(rng, cfg.RecombinationRate)
			if ncross == 0 {
				copy(offspring, p1)
			} else {
				p2 := cur[rng.Intn(cfg.PopSize)]
				crossover(rng, offspring, p1, p2, ncross)
			}
			for m := poisson(rng, cfg.MutationRate); m > 0; m-- {
				site := rng.Intn(cfg.Sites)
				offspring[site] ^= 1
			}
		}
		cur, next = next, cur
	}

	// Sample without replacement from the final generation.
	idx := rng.Perm(cfg.PopSize)[:samples]
	rows := make([][]byte, samples)
	for s, i := range idx {
		rows[s] = cur[i]
	}

	// SNP calling: keep polymorphic columns only.
	var positions []int
	for site := 0; site < cfg.Sites; site++ {
		ones := 0
		for s := range rows {
			ones += int(rows[s][site])
		}
		if ones > 0 && ones < samples {
			positions = append(positions, site)
		}
	}
	cols := make([][]byte, len(positions))
	for c, site := range positions {
		col := make([]byte, samples)
		for s := range rows {
			col[s] = rows[s][site]
		}
		cols[c] = col
	}
	m, err := bitmat.FromColumns(cols)
	if err != nil {
		return nil, err
	}
	if m.SNPs == 0 {
		m = bitmat.New(0, samples)
	}
	return &WFResult{Matrix: m, Positions: positions, Segregating: len(positions)}, nil
}

// crossover fills child with an alternating mosaic of p1 and p2 split at
// ncross uniform points.
func crossover(rng *rand.Rand, child, p1, p2 []byte, ncross int) {
	sites := len(child)
	cuts := make([]int, 0, ncross)
	for i := 0; i < ncross; i++ {
		cuts = append(cuts, rng.Intn(sites))
	}
	// Insertion sort: ncross is tiny.
	for i := 1; i < len(cuts); i++ {
		for j := i; j > 0 && cuts[j] < cuts[j-1]; j-- {
			cuts[j], cuts[j-1] = cuts[j-1], cuts[j]
		}
	}
	src, other := p1, p2
	prev := 0
	for _, cut := range cuts {
		copy(child[prev:cut], src[prev:cut])
		src, other = other, src
		prev = cut
	}
	copy(child[prev:], src[prev:])
	_ = other
}

// poisson draws from Poisson(lambda) with Knuth's product method
// (lambda is small everywhere this package uses it).
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
