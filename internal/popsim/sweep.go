package popsim

import (
	"fmt"
	"math"
	"math/rand"

	"ldgemm/internal/bitmat"
)

// SweepConfig parameterizes the selective-sweep overlay.
type SweepConfig struct {
	Seed int64
	// CenterSNP is the index of the swept site.
	CenterSNP int
	// CarrierFraction is the final frequency of the beneficial haplotype
	// (default 0.8).
	CarrierFraction float64
	// Radius is the hitchhiking half-width in SNPs: at the center every
	// carrier copies the beneficial haplotype; the copying probability
	// decays exponentially to ~5% at Radius (recombination escape).
	// Default 100.
	Radius int
}

func (c SweepConfig) normalize(snps int) (SweepConfig, error) {
	if c.CarrierFraction == 0 {
		c.CarrierFraction = 0.8
	}
	if c.Radius == 0 {
		c.Radius = 100
	}
	if c.CenterSNP < 0 || c.CenterSNP >= snps {
		return c, fmt.Errorf("popsim: sweep center %d outside 0..%d", c.CenterSNP, snps-1)
	}
	if c.CarrierFraction <= 0 || c.CarrierFraction > 1 {
		return c, fmt.Errorf("popsim: invalid carrier fraction %v", c.CarrierFraction)
	}
	if c.Radius < 1 {
		return c, fmt.Errorf("popsim: invalid radius %d", c.Radius)
	}
	return c, nil
}

// ApplySweep overwrites a neutral matrix in place with the hitchhiking
// signature of a recent selective sweep: a random "beneficial" haplotype
// is chosen, a CarrierFraction of samples become carriers, and each
// carrier copies the beneficial haplotype at SNP i with probability
// exp(−3·|i−center|/Radius) — total copying at the swept site, decaying
// with distance as recombination breaks up the swept haplotype. The result
// is the classic pattern the ω statistic detects: strong LD among SNPs on
// the same side of the sweep, little LD across it. Monomorphic sites
// created by the sweep are re-polymorphized with a single flip (as a SNP
// caller retaining only segregating sites would effectively do).
func ApplySweep(m *bitmat.Matrix, cfg SweepConfig) error {
	cfg, err := cfg.normalize(m.SNPs)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	donor := rng.Intn(m.Samples)

	carriers := rng.Perm(m.Samples)[:int(math.Round(cfg.CarrierFraction*float64(m.Samples)))]
	lo := max(0, cfg.CenterSNP-cfg.Radius)
	hi := min(m.SNPs-1, cfg.CenterSNP+cfg.Radius)
	for _, s := range carriers {
		if s == donor {
			continue
		}
		// Recombination escape: a carrier keeps the donor haplotype on a
		// contiguous tract around the center; the tract ends are geometric
		// in distance, matching the exponential escape probability.
		left := cfg.CenterSNP - escapeLength(rng, cfg.Radius)
		right := cfg.CenterSNP + escapeLength(rng, cfg.Radius)
		for i := max(lo, left); i <= min(hi, right); i++ {
			if m.Bit(i, donor) {
				m.SetBit(i, s)
			} else {
				m.ClearBit(i, s)
			}
		}
	}
	ensurePolymorphic(rng, m)
	return nil
}

// escapeLength draws the one-sided tract length: exponential with mean
// Radius/3, so copying probability at distance d is exp(−3d/Radius).
func escapeLength(rng *rand.Rand, radius int) int {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return int(-math.Log(u) * float64(radius) / 3)
}
