// Package popsim generates synthetic genomic datasets with realistic
// allele-frequency spectra and LD structure.
//
// The paper evaluates on three datasets: A is a 10,000-SNP subset of 1000
// Genomes chromosome 1 (2,504 humans); B and C are simulated with 10,000
// and 100,000 sequences. The raw 1000 Genomes data is not available
// offline, so dataset A is substituted by the mosaic (Li–Stephens-style
// copying) model below, calibrated to a neutral 1/i site-frequency
// spectrum; B and C use the same generator at the paper's dimensions
// (DESIGN.md records the substitution). A forward Wright–Fisher simulator
// with mutation and recombination provides a mechanistic alternative for
// examples and cross-validation, and a sweep overlay injects the
// reduced-diversity/high-flank-LD signature that the ω statistic detects.
package popsim

import (
	"fmt"
	"math"
	"math/rand"

	"ldgemm/internal/bitmat"
)

// MosaicConfig parameterizes the copying-model generator.
type MosaicConfig struct {
	// Seed makes the dataset reproducible.
	Seed int64
	// Founders is the number of founder haplotypes samples copy from
	// (default 32). Fewer founders means stronger LD.
	Founders int
	// SwitchRate is the per-SNP probability that a sample switches to a
	// different random founder (default 0.02); it sets LD decay length
	// (≈1/SwitchRate SNPs).
	SwitchRate float64
	// MutationRate is the per-site, per-sample flip probability adding
	// low-frequency variation on top of the founder mosaic (default 0.002).
	MutationRate float64
}

func (c MosaicConfig) normalize() (MosaicConfig, error) {
	if c.Founders == 0 {
		c.Founders = 32
	}
	if c.SwitchRate == 0 {
		c.SwitchRate = 0.02
	}
	if c.MutationRate == 0 {
		c.MutationRate = 0.002
	}
	if c.Founders < 2 {
		return c, fmt.Errorf("popsim: need at least 2 founders, have %d", c.Founders)
	}
	if c.SwitchRate <= 0 || c.SwitchRate > 1 {
		return c, fmt.Errorf("popsim: invalid switch rate %v", c.SwitchRate)
	}
	if c.MutationRate < 0 || c.MutationRate > 1 {
		return c, fmt.Errorf("popsim: invalid mutation rate %v", c.MutationRate)
	}
	return c, nil
}

// Mosaic generates a snps×samples binary matrix. Every SNP is guaranteed
// polymorphic (a SNP-calling step would discard monomorphic sites, so the
// generator never emits them).
func Mosaic(snps, samples int, cfg MosaicConfig) (*bitmat.Matrix, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	if snps < 0 || samples < 1 {
		return nil, fmt.Errorf("popsim: invalid dimensions %dx%d", snps, samples)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Founder alleles: per SNP, a derived count c drawn from the neutral
	// spectrum P(c) ∝ 1/c over 1..F−1, assigned to a random founder subset.
	founders := bitmat.New(snps, cfg.Founders)
	sfs := cumulativeNeutralSFS(cfg.Founders)
	perm := make([]int, cfg.Founders)
	for i := range perm {
		perm[i] = i
	}
	for i := 0; i < snps; i++ {
		c := sampleSFS(rng, sfs)
		rng.Shuffle(len(perm), func(a, b int) { perm[a], perm[b] = perm[b], perm[a] })
		for _, f := range perm[:c] {
			founders.SetBit(i, f)
		}
	}

	m := bitmat.New(snps, samples)
	for s := 0; s < samples; s++ {
		cur := rng.Intn(cfg.Founders)
		nextSwitch := geometricSkip(rng, cfg.SwitchRate)
		nextMut := geometricSkip(rng, cfg.MutationRate)
		for i := 0; i < snps; i++ {
			if i == nextSwitch {
				cur = rng.Intn(cfg.Founders)
				nextSwitch = i + 1 + geometricSkip(rng, cfg.SwitchRate)
			}
			bit := founders.Bit(i, cur)
			if i == nextMut {
				bit = !bit
				nextMut = i + 1 + geometricSkip(rng, cfg.MutationRate)
			}
			if bit {
				m.SetBit(i, s)
			}
		}
	}
	ensurePolymorphic(rng, m)
	return m, nil
}

// cumulativeNeutralSFS returns the cumulative distribution over derived
// counts 1..F−1 with P(c) ∝ 1/c.
func cumulativeNeutralSFS(founders int) []float64 {
	cdf := make([]float64, founders-1)
	sum := 0.0
	for c := 1; c < founders; c++ {
		sum += 1 / float64(c)
		cdf[c-1] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return cdf
}

// sampleSFS draws a derived count 1..len(cdf) from the cumulative spectrum.
func sampleSFS(rng *rand.Rand, cdf []float64) int {
	u := rng.Float64()
	for i, p := range cdf {
		if u <= p {
			return i + 1
		}
	}
	return len(cdf)
}

// geometricSkip returns the number of Bernoulli(p) failures before the
// next success, i.e. the gap to the next rare event. Sampling gaps instead
// of testing every position makes rare-event streams O(events), not O(n).
func geometricSkip(rng *rand.Rand, p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		return math.MaxInt / 2
	}
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return int(math.Log(u) / math.Log(1-p))
}

// ensurePolymorphic flips one random sample at any monomorphic SNP.
func ensurePolymorphic(rng *rand.Rand, m *bitmat.Matrix) {
	for i := 0; i < m.SNPs; i++ {
		switch m.DerivedCount(i) {
		case 0:
			m.SetBit(i, rng.Intn(m.Samples))
		case m.Samples:
			m.ClearBit(i, rng.Intn(m.Samples))
		}
	}
}

// Dataset names the paper's three evaluation datasets.
type Dataset int

const (
	// DatasetA substitutes the 1000 Genomes chr1 subset: 10,000 SNPs ×
	// 2,504 sequences.
	DatasetA Dataset = iota
	// DatasetB is the simulated 10,000 SNPs × 10,000 sequences input.
	DatasetB
	// DatasetC is the simulated 10,000 SNPs × 100,000 sequences input.
	DatasetC
)

// Dims returns the paper dimensions of the dataset.
func (d Dataset) Dims() (snps, samples int) {
	switch d {
	case DatasetA:
		return 10000, 2504
	case DatasetB:
		return 10000, 10000
	case DatasetC:
		return 10000, 100000
	default:
		return 0, 0
	}
}

// String implements fmt.Stringer.
func (d Dataset) String() string {
	switch d {
	case DatasetA:
		return "A (10,000 SNPs × 2,504 sequences, 1000G-chr1 substitute)"
	case DatasetB:
		return "B (10,000 SNPs × 10,000 sequences, simulated)"
	case DatasetC:
		return "C (10,000 SNPs × 100,000 sequences, simulated)"
	default:
		return fmt.Sprintf("Dataset(%d)", int(d))
	}
}

// Generate builds the dataset, with both dimensions divided by scale
// (scale 1 = the paper's full size) and floored at 16 so scaled-down runs
// stay well-formed.
func (d Dataset) Generate(scale int) (*bitmat.Matrix, error) {
	if scale < 1 {
		return nil, fmt.Errorf("popsim: invalid scale %d", scale)
	}
	snps, samples := d.Dims()
	snps = max(snps/scale, 16)
	samples = max(samples/scale, 16)
	return Mosaic(snps, samples, MosaicConfig{Seed: 1000 + int64(d)})
}
