package popsim

import "math"

// Thin wrappers keep the sampling code in demes.go readable.

func sqrt(x float64) float64   { return math.Sqrt(x) }
func log(x float64) float64    { return math.Log(x) }
func pow(x, y float64) float64 { return math.Pow(x, y) }
