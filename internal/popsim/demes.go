package popsim

import (
	"fmt"
	"math/rand"

	"ldgemm/internal/bitmat"
)

// Population structure is the classic LD confounder: when a sample mixes
// two diverged demes, allele-frequency differences between the demes
// induce LD between *physically unlinked* loci (the admixture LD that
// GWAS must correct for). StructuredConfig generates that scenario so the
// long-range analyses have a realistic negative control.
type StructuredConfig struct {
	Seed int64
	// Demes is the number of subpopulations (default 2).
	Demes int
	// Fst controls how far deme allele frequencies diverge from the
	// shared ancestral frequency (Balding–Nichols beta model; default
	// 0.1).
	Fst float64
	// Proportions gives each deme's share of the sample (default equal).
	Proportions []float64
}

func (c StructuredConfig) normalize() (StructuredConfig, error) {
	if c.Demes == 0 {
		c.Demes = 2
	}
	if c.Fst == 0 {
		c.Fst = 0.1
	}
	if c.Demes < 2 {
		return c, fmt.Errorf("popsim: need at least 2 demes, have %d", c.Demes)
	}
	if c.Fst <= 0 || c.Fst >= 1 {
		return c, fmt.Errorf("popsim: invalid Fst %v", c.Fst)
	}
	if c.Proportions == nil {
		c.Proportions = make([]float64, c.Demes)
		for i := range c.Proportions {
			c.Proportions[i] = 1 / float64(c.Demes)
		}
	}
	if len(c.Proportions) != c.Demes {
		return c, fmt.Errorf("popsim: %d proportions for %d demes", len(c.Proportions), c.Demes)
	}
	sum := 0.0
	for _, p := range c.Proportions {
		if p <= 0 {
			return c, fmt.Errorf("popsim: non-positive deme proportion %v", p)
		}
		sum += p
	}
	if sum < 0.999 || sum > 1.001 {
		return c, fmt.Errorf("popsim: proportions sum to %v", sum)
	}
	return c, nil
}

// StructuredResult carries the generated matrix plus the deme assignment.
type StructuredResult struct {
	Matrix *bitmat.Matrix
	// Deme[s] is the subpopulation of sample s.
	Deme []int
	// DemeFreqs[d][i] is deme d's allele frequency at SNP i.
	DemeFreqs [][]float64
}

// Structured generates unlinked SNPs under the Balding–Nichols model:
// each SNP has an ancestral frequency p drawn from the neutral spectrum;
// each deme draws its own frequency from Beta(p(1−F)/F, (1−p)(1−F)/F);
// samples draw alleles independently given their deme. SNPs are unlinked
// by construction, so any LD in the pooled sample is pure population
// structure.
func Structured(snps, samples int, cfg StructuredConfig) (*StructuredResult, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	if snps < 0 || samples < 1 {
		return nil, fmt.Errorf("popsim: invalid dimensions %dx%d", snps, samples)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	res := &StructuredResult{
		Matrix:    bitmat.New(snps, samples),
		Deme:      make([]int, samples),
		DemeFreqs: make([][]float64, cfg.Demes),
	}
	for d := range res.DemeFreqs {
		res.DemeFreqs[d] = make([]float64, snps)
	}
	// Assign samples to demes by cumulative proportion.
	cum := make([]float64, cfg.Demes)
	acc := 0.0
	for d, p := range cfg.Proportions {
		acc += p
		cum[d] = acc
	}
	for s := 0; s < samples; s++ {
		u := (float64(s) + 0.5) / float64(samples) // stratified assignment
		d := 0
		for d < cfg.Demes-1 && u > cum[d] {
			d++
		}
		res.Deme[s] = d
	}

	f := cfg.Fst
	for i := 0; i < snps; i++ {
		// Ancestral frequency: uniform in [0.05, 0.95] — common variants,
		// where structure-LD is strongest.
		p := 0.05 + 0.9*rng.Float64()
		for d := 0; d < cfg.Demes; d++ {
			a := p * (1 - f) / f
			b := (1 - p) * (1 - f) / f
			res.DemeFreqs[d][i] = betaSample(rng, a, b)
		}
		for s := 0; s < samples; s++ {
			if rng.Float64() < res.DemeFreqs[res.Deme[s]][i] {
				res.Matrix.SetBit(i, s)
			}
		}
	}
	ensurePolymorphic(rng, res.Matrix)
	return res, nil
}

// betaSample draws from Beta(a, b) via two gamma draws.
func betaSample(rng *rand.Rand, a, b float64) float64 {
	x := gammaSample(rng, a)
	y := gammaSample(rng, b)
	if x+y == 0 {
		return 0.5
	}
	return x / (x + y)
}

// gammaSample draws from Gamma(shape, 1) with the Marsaglia–Tsang method
// (with the shape<1 boost).
func gammaSample(rng *rand.Rand, shape float64) float64 {
	if shape <= 0 {
		return 0
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) · U^(1/a).
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return gammaSample(rng, shape+1) * pow(u, 1/shape)
	}
	d := shape - 1.0/3
	c := 1 / (3 * sqrt(d))
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && log(u) < 0.5*x*x+d*(1-v+log(v)) {
			return d * v
		}
	}
}
