package popsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ldgemm/internal/core"
	"ldgemm/internal/stats"
)

func TestMosaicDimensionsAndPolymorphism(t *testing.T) {
	m, err := Mosaic(200, 150, MosaicConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.SNPs != 200 || m.Samples != 150 {
		t.Fatalf("dims %dx%d", m.SNPs, m.Samples)
	}
	if err := m.ValidatePadding(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m.SNPs; i++ {
		c := m.DerivedCount(i)
		if c == 0 || c == m.Samples {
			t.Fatalf("SNP %d monomorphic (count %d)", i, c)
		}
	}
}

func TestMosaicDeterministic(t *testing.T) {
	a, err := Mosaic(50, 40, MosaicConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Mosaic(50, 40, MosaicConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("same seed produced different matrices")
	}
	c, err := Mosaic(50, 40, MosaicConfig{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.Equal(c) {
		t.Fatal("different seeds produced identical matrices")
	}
}

func TestMosaicErrors(t *testing.T) {
	if _, err := Mosaic(10, 0, MosaicConfig{}); err == nil {
		t.Fatal("zero samples accepted")
	}
	if _, err := Mosaic(10, 5, MosaicConfig{Founders: 1}); err == nil {
		t.Fatal("single founder accepted")
	}
	if _, err := Mosaic(10, 5, MosaicConfig{SwitchRate: 2}); err == nil {
		t.Fatal("switch rate > 1 accepted")
	}
	if _, err := Mosaic(10, 5, MosaicConfig{MutationRate: -0.1}); err == nil {
		t.Fatal("negative mutation rate accepted")
	}
}

// TestMosaicLDDecay checks the generator actually produces LD structure:
// adjacent SNPs must be far more correlated than distant ones on average.
func TestMosaicLDDecay(t *testing.T) {
	m, err := Mosaic(400, 300, MosaicConfig{Seed: 3, SwitchRate: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	var near, far []float64
	for i := 0; i+1 < m.SNPs; i += 7 {
		near = append(near, core.PairLD(m, i, i+1).R2)
		if i+200 < m.SNPs {
			far = append(far, core.PairLD(m, i, i+200).R2)
		}
	}
	mn, mf := stats.Mean(near), stats.Mean(far)
	// Most pairs involve rare variants (neutral SFS), so the absolute mean
	// is modest; the signature is the near/far ratio.
	if mn < 3*mf || mn < 0.02 {
		t.Fatalf("no LD decay: mean near r² %v, far %v", mn, mf)
	}
}

// TestMosaicSFSShape checks the frequency spectrum is skewed toward rare
// variants as the neutral expectation demands (monotone-ish decay).
func TestMosaicSFSShape(t *testing.T) {
	m, err := Mosaic(2000, 100, MosaicConfig{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, m.SNPs)
	for i := range counts {
		counts[i] = m.DerivedCount(i)
	}
	sfs := stats.SFS(counts, m.Samples, true)
	lowBand := sfs[1] + sfs[2] + sfs[3] + sfs[4] + sfs[5]
	highBand := 0
	for f := len(sfs) - 5; f < len(sfs); f++ {
		highBand += sfs[f]
	}
	if lowBand <= 2*highBand {
		t.Fatalf("SFS not skewed to rare variants: low %d vs high %d", lowBand, highBand)
	}
}

func TestDatasetDims(t *testing.T) {
	for _, c := range []struct {
		d        Dataset
		snps, sm int
	}{{DatasetA, 10000, 2504}, {DatasetB, 10000, 10000}, {DatasetC, 10000, 100000}} {
		snps, samples := c.d.Dims()
		if snps != c.snps || samples != c.sm {
			t.Fatalf("%v dims %dx%d", c.d, snps, samples)
		}
		if c.d.String() == "" {
			t.Fatal("empty String()")
		}
	}
}

func TestDatasetGenerateScaled(t *testing.T) {
	m, err := DatasetA.Generate(100)
	if err != nil {
		t.Fatal(err)
	}
	if m.SNPs != 100 || m.Samples != 25 {
		t.Fatalf("scaled dims %dx%d", m.SNPs, m.Samples)
	}
	if _, err := DatasetA.Generate(0); err == nil {
		t.Fatal("scale 0 accepted")
	}
}

func TestGeometricSkipDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const p = 0.1
	const n = 20000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += float64(geometricSkip(rng, p))
	}
	mean := sum / n
	want := (1 - p) / p // mean failures before success
	if math.Abs(mean-want) > 0.5 {
		t.Fatalf("geometric mean %v, want ≈%v", mean, want)
	}
	if geometricSkip(rng, 1) != 0 {
		t.Fatal("p=1 should skip 0")
	}
	if geometricSkip(rng, 0) < 1<<40 {
		t.Fatal("p=0 should be effectively infinite")
	}
}

func TestPoisson(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const lambda = 2.5
	const n = 20000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += float64(poisson(rng, lambda))
	}
	if mean := sum / n; math.Abs(mean-lambda) > 0.1 {
		t.Fatalf("poisson mean %v, want %v", mean, lambda)
	}
	if poisson(rng, 0) != 0 {
		t.Fatal("lambda=0 should give 0")
	}
}

func TestWrightFisher(t *testing.T) {
	res, err := WrightFisher(40, WFConfig{Seed: 7, PopSize: 80, Sites: 300, Generations: 150})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matrix.Samples != 40 {
		t.Fatalf("samples %d", res.Matrix.Samples)
	}
	if res.Segregating < 10 {
		t.Fatalf("only %d segregating sites", res.Segregating)
	}
	if res.Matrix.SNPs != res.Segregating || len(res.Positions) != res.Segregating {
		t.Fatal("inconsistent segregating bookkeeping")
	}
	for i := 0; i < res.Matrix.SNPs; i++ {
		c := res.Matrix.DerivedCount(i)
		if c == 0 || c == 40 {
			t.Fatalf("WF SNP %d monomorphic", i)
		}
	}
	for i := 1; i < len(res.Positions); i++ {
		if res.Positions[i] <= res.Positions[i-1] {
			t.Fatal("positions not increasing")
		}
	}
}

func TestWrightFisherErrors(t *testing.T) {
	if _, err := WrightFisher(0, WFConfig{}); err == nil {
		t.Fatal("zero samples accepted")
	}
	if _, err := WrightFisher(300, WFConfig{PopSize: 100}); err == nil {
		t.Fatal("samples > PopSize accepted")
	}
	if _, err := WrightFisher(10, WFConfig{MutationRate: -1}); err == nil {
		t.Fatal("negative mutation rate accepted")
	}
}

// TestWrightFisherLD checks recombination limits LD range: adjacent sites
// more correlated than distant ones.
func TestWrightFisherLD(t *testing.T) {
	res, err := WrightFisher(60, WFConfig{Seed: 9, PopSize: 100, Sites: 600, Generations: 400,
		MutationRate: 1.2, RecombinationRate: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Matrix
	if m.SNPs < 40 {
		t.Skipf("too few segregating sites (%d) for an LD decay check", m.SNPs)
	}
	var near, far []float64
	for i := 0; i+1 < m.SNPs; i++ {
		near = append(near, core.PairLD(m, i, i+1).R2)
		j := i + m.SNPs/2
		if j < m.SNPs {
			far = append(far, core.PairLD(m, i, j).R2)
		}
	}
	if stats.Mean(near) <= stats.Mean(far) {
		t.Fatalf("no LD decay: near %v far %v", stats.Mean(near), stats.Mean(far))
	}
}

func TestApplySweepSignature(t *testing.T) {
	m, err := Mosaic(300, 200, MosaicConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	before := m.Clone()
	cfg := SweepConfig{Seed: 12, CenterSNP: 150, CarrierFraction: 0.8, Radius: 60}
	if err := ApplySweep(m, cfg); err != nil {
		t.Fatal(err)
	}
	if m.Equal(before) {
		t.Fatal("sweep changed nothing")
	}
	// Diversity (mean minor-allele frequency) near the center must drop.
	maf := func(mm interface{ DerivedCount(int) int }, i, samples int) float64 {
		f := float64(mm.DerivedCount(i)) / float64(samples)
		return math.Min(f, 1-f)
	}
	var nearBefore, nearAfter float64
	for i := 130; i < 170; i++ {
		nearBefore += maf(before, i, 200)
		nearAfter += maf(m, i, 200)
	}
	if nearAfter >= nearBefore {
		t.Fatalf("no diversity reduction at sweep center: %v vs %v", nearAfter, nearBefore)
	}
	// All SNPs must remain polymorphic (post SNP-calling invariant).
	for i := 0; i < m.SNPs; i++ {
		c := m.DerivedCount(i)
		if c == 0 || c == m.Samples {
			t.Fatalf("SNP %d monomorphic after sweep", i)
		}
	}
}

func TestApplySweepErrors(t *testing.T) {
	m, _ := Mosaic(50, 30, MosaicConfig{Seed: 1})
	if err := ApplySweep(m, SweepConfig{CenterSNP: 60}); err == nil {
		t.Fatal("out-of-range center accepted")
	}
	if err := ApplySweep(m, SweepConfig{CenterSNP: 10, CarrierFraction: 1.5}); err == nil {
		t.Fatal("carrier fraction > 1 accepted")
	}
	if err := ApplySweep(m, SweepConfig{CenterSNP: 10, Radius: -1}); err == nil {
		t.Fatal("negative radius accepted")
	}
}

// Property: Mosaic output is always polymorphic at every SNP and padding
// stays clean for arbitrary small shapes.
func TestQuickMosaicInvariants(t *testing.T) {
	f := func(seed int64, n8, s8 uint8) bool {
		snps := int(n8%60) + 1
		samples := int(s8%90) + 2
		m, err := Mosaic(snps, samples, MosaicConfig{Seed: seed})
		if err != nil {
			return false
		}
		if m.ValidatePadding() != nil {
			return false
		}
		for i := 0; i < snps; i++ {
			c := m.DerivedCount(i)
			if c == 0 || c == samples {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
