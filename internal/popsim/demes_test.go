package popsim

import (
	"math"
	"math/rand"
	"testing"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/core"
	"ldgemm/internal/stats"
)

func TestStructuredShapeAndAssignment(t *testing.T) {
	res, err := Structured(100, 200, StructuredConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matrix.SNPs != 100 || res.Matrix.Samples != 200 {
		t.Fatalf("dims %dx%d", res.Matrix.SNPs, res.Matrix.Samples)
	}
	counts := map[int]int{}
	for _, d := range res.Deme {
		counts[d]++
	}
	if len(counts) != 2 || counts[0] != 100 || counts[1] != 100 {
		t.Fatalf("deme split %v", counts)
	}
	if err := res.Matrix.ValidatePadding(); err != nil {
		t.Fatal(err)
	}
}

func TestStructuredValidation(t *testing.T) {
	if _, err := Structured(10, 20, StructuredConfig{Demes: 1}); err == nil {
		t.Fatal("single deme accepted")
	}
	if _, err := Structured(10, 20, StructuredConfig{Fst: 2}); err == nil {
		t.Fatal("Fst>1 accepted")
	}
	if _, err := Structured(10, 20, StructuredConfig{Proportions: []float64{0.5}}); err == nil {
		t.Fatal("proportion count mismatch accepted")
	}
	if _, err := Structured(10, 20, StructuredConfig{Proportions: []float64{0.9, 0.5}}); err == nil {
		t.Fatal("proportions summing past 1 accepted")
	}
}

// TestStructureInducesLD is the textbook effect: unlinked loci show LD in
// the pooled sample but not within a single deme.
func TestStructureInducesLD(t *testing.T) {
	res, err := Structured(80, 1000, StructuredConfig{Seed: 3, Fst: 0.35})
	if err != nil {
		t.Fatal(err)
	}
	pooled, _, err := core.SumR2(res.Matrix, core.StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Within-deme LD: restrict to deme 0 samples.
	var deme0 []int
	for s, d := range res.Deme {
		if d == 0 {
			deme0 = append(deme0, s)
		}
	}
	sub := res.Matrix
	within := 0.0
	{
		cols := make([][]byte, sub.SNPs)
		for i := range cols {
			col := make([]byte, len(deme0))
			for si, s := range deme0 {
				if sub.Bit(i, s) {
					col[si] = 1
				}
			}
			cols[i] = col
		}
		m, err := bitmat.FromColumns(cols)
		if err != nil {
			t.Fatal(err)
		}
		within, _, err = core.SumR2(m, core.StreamOptions{})
		if err != nil {
			t.Fatal(err)
		}
	}
	n := float64(80 * 81 / 2)
	meanPooled := (pooled - 80) / (n - 80) // subtract diagonal
	meanWithin := (within - 80) / (n - 80)
	if meanPooled < 2*meanWithin {
		t.Fatalf("structure LD absent: pooled %v vs within-deme %v", meanPooled, meanWithin)
	}
}

func TestDemeFrequenciesDiverge(t *testing.T) {
	res, err := Structured(200, 100, StructuredConfig{Seed: 4, Fst: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	diffs := make([]float64, 200)
	for i := range diffs {
		diffs[i] = math.Abs(res.DemeFreqs[0][i] - res.DemeFreqs[1][i])
	}
	if stats.Mean(diffs) < 0.1 {
		t.Fatalf("demes barely diverged: mean |Δp| = %v at Fst 0.3", stats.Mean(diffs))
	}
}

func TestGammaSampleMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, shape := range []float64{0.5, 1, 2.5, 8} {
		const n = 20000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += gammaSample(rng, shape)
		}
		mean := sum / n
		if math.Abs(mean-shape)/shape > 0.05 {
			t.Fatalf("Gamma(%v) mean %v", shape, mean)
		}
	}
	if gammaSample(rng, 0) != 0 {
		t.Fatal("shape 0 should give 0")
	}
}

func TestBetaSampleRangeAndMean(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const a, b = 2.0, 5.0
	const n = 20000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := betaSample(rng, a, b)
		if v < 0 || v > 1 {
			t.Fatalf("beta sample %v outside [0,1]", v)
		}
		sum += v
	}
	want := a / (a + b)
	if math.Abs(sum/n-want) > 0.02 {
		t.Fatalf("Beta(%v,%v) mean %v, want %v", a, b, sum/n, want)
	}
}
