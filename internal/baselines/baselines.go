// Package baselines implements the LD kernels the paper compares against
// in Section VI, reimplemented from scratch so the comparison runs offline:
//
//   - Naive: per-sample bit loops, the textbook formulation of Section II's
//     pseudocode. Quadratic in pairs and linear in samples with no word
//     packing at all; used as an oracle and as the ablation floor.
//   - Vector (OmegaPlus-like): per-pair word loops with the 64-bit popcount
//     intrinsic — the allele-centric kernel of OmegaPlus after the paper's
//     footnote 5 upgrade. No cache blocking: every pair re-streams both
//     SNP vectors.
//   - Plink (PLINK 1.9-like): genotype-centric kernel on 2-bit packed
//     variants; each pair performs the multi-popcount plane decomposition
//     of bitmat.PairCounts (≈10 popcounts per word of 32 genotypes).
//
// All three expose the same all-pairs triangular scan with their own
// row-chunked work-stealing parallelization, mirroring how the original
// tools thread their pairwise loops (and unlike the GEMM path, leaving
// per-core utilization on the table — the effect Figure 5 shows).
package baselines

import (
	"runtime"
	"sync"
	"sync/atomic"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/core"
	"ldgemm/internal/popcount"
)

// rowChunk is the number of rows a worker claims at a time.
const rowChunk = 8

// parallelRows runs fn(i) for every row i in [0, n) using worker
// goroutines with dynamic chunked scheduling; each worker accumulates into
// its own state created by newState, and the states are returned.
func parallelRows[S any](n, threads int, newState func() S, fn func(state S, i int)) []S {
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	threads = min(threads, max(n, 1))
	states := make([]S, threads)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(threads)
	for w := 0; w < threads; w++ {
		go func(w int) {
			defer wg.Done()
			states[w] = newState()
			for {
				base := int(cursor.Add(rowChunk)) - rowChunk
				if base >= n {
					return
				}
				for i := base; i < min(base+rowChunk, n); i++ {
					fn(states[w], i)
				}
			}
		}(w)
	}
	wg.Wait()
	return states
}

// sumState is the per-worker reduction accumulator.
type sumState struct {
	sum   float64
	pairs int64
}

// Naive computes LD with per-sample bit loops.
type Naive struct {
	Threads int
}

// R2Sum returns the sum of r² over the upper triangle including the
// diagonal (the N(N+1)/2 pairs of the paper's Tables I–III).
func (nv Naive) R2Sum(g *bitmat.Matrix) (float64, int64) {
	n := g.SNPs
	states := parallelRows(n, nv.Threads, func() *sumState { return &sumState{} },
		func(st *sumState, i int) {
			for j := i; j < n; j++ {
				var nA, nB, nAB int
				for s := 0; s < g.Samples; s++ {
					a, b := g.Bit(i, s), g.Bit(j, s)
					if a {
						nA++
					}
					if b {
						nB++
					}
					if a && b {
						nAB++
					}
				}
				ns := float64(g.Samples)
				p := core.PairFromFreqs(float64(nAB)/ns, float64(nA)/ns, float64(nB)/ns)
				st.sum += p.R2
				st.pairs++
			}
		})
	return reduce(states)
}

// Vector is the OmegaPlus-like unblocked word-popcount kernel.
type Vector struct {
	Threads int
}

// R2Sum computes r² for all upper-triangle pairs with per-pair word loops
// and returns the sum and pair count. Allele counts are precomputed once
// per SNP (as OmegaPlus does), so the per-pair work is exactly one
// AND+POPCNT pass over the packed words.
func (v Vector) R2Sum(g *bitmat.Matrix) (float64, int64) {
	n := g.SNPs
	freqs := core.AlleleFrequencies(g)
	inv := 0.0
	if g.Samples > 0 {
		inv = 1 / float64(g.Samples)
	}
	// Branch-free r² epilogue, matching the optimized C the original tool
	// uses (monomorphic SNPs get a zero variance reciprocal → r² = 0).
	invVar := make([]float64, n)
	for i, p := range freqs {
		if va := p * (1 - p); va > 0 {
			invVar[i] = 1 / va
		}
	}
	states := parallelRows(n, v.Threads, func() *sumState { return &sumState{} },
		func(st *sumState, i int) {
			si := g.SNP(i)
			pi, iva := freqs[i], invVar[i]
			for j := i; j < n; j++ {
				cnt := popcount.AndCount(si, g.SNP(j))
				d := float64(cnt)*inv - pi*freqs[j]
				st.sum += d * d * iva * invVar[j]
				st.pairs++
			}
		})
	return reduce(states)
}

// Matrix materializes the full symmetric r² matrix with the vector kernel
// (small inputs; used by tests and the ω-statistic reference path).
func (v Vector) Matrix(g *bitmat.Matrix) []float64 {
	n := g.SNPs
	freqs := core.AlleleFrequencies(g)
	inv := 0.0
	if g.Samples > 0 {
		inv = 1 / float64(g.Samples)
	}
	out := make([]float64, n*n)
	parallelRows(n, v.Threads, func() struct{} { return struct{}{} },
		func(_ struct{}, i int) {
			si := g.SNP(i)
			for j := i; j < n; j++ {
				cnt := popcount.AndCount(si, g.SNP(j))
				p := core.PairFromFreqs(float64(cnt)*inv, freqs[i], freqs[j])
				out[i*n+j] = p.R2
				out[j*n+i] = p.R2
			}
		})
	return out
}

// Plink is the PLINK 1.9-like genotype-correlation kernel.
type Plink struct {
	Threads int
}

// R2Sum computes the genotype r² for all upper-triangle variant pairs.
func (p Plink) R2Sum(g *bitmat.GenotypeMatrix) (float64, int64) {
	n := g.SNPs
	states := parallelRows(n, p.Threads, func() *sumState { return &sumState{} },
		func(st *sumState, i int) {
			for j := i; j < n; j++ {
				st.sum += g.PairCounts(i, j).R2()
				st.pairs++
			}
		})
	return reduce(states)
}

// Matrix materializes the full symmetric genotype-r² matrix.
func (p Plink) Matrix(g *bitmat.GenotypeMatrix) []float64 {
	n := g.SNPs
	out := make([]float64, n*n)
	parallelRows(n, p.Threads, func() struct{} { return struct{}{} },
		func(_ struct{}, i int) {
			for j := i; j < n; j++ {
				r2 := g.PairCounts(i, j).R2()
				out[i*n+j] = r2
				out[j*n+i] = r2
			}
		})
	return out
}

func reduce(states []*sumState) (float64, int64) {
	var sum float64
	var pairs int64
	for _, st := range states {
		if st == nil {
			continue
		}
		sum += st.sum
		pairs += st.pairs
	}
	return sum, pairs
}
