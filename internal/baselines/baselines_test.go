package baselines

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/core"
)

func randomMatrix(rng *rand.Rand, snps, samples int) *bitmat.Matrix {
	m := bitmat.New(snps, samples)
	for i := 0; i < snps; i++ {
		for s := 0; s < samples; s++ {
			if rng.Intn(2) == 1 {
				m.SetBit(i, s)
			}
		}
	}
	return m
}

// triangleR2 computes the reference sum with core.PairLD.
func triangleR2(g *bitmat.Matrix) (float64, int64) {
	var sum float64
	var pairs int64
	for i := 0; i < g.SNPs; i++ {
		for j := i; j < g.SNPs; j++ {
			sum += core.PairLD(g, i, j).R2
			pairs++
		}
	}
	return sum, pairs
}

func TestNaiveR2Sum(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randomMatrix(rng, 17, 97)
	wantSum, wantPairs := triangleR2(g)
	sum, pairs := Naive{Threads: 3}.R2Sum(g)
	if pairs != wantPairs {
		t.Fatalf("pairs = %d, want %d", pairs, wantPairs)
	}
	if math.Abs(sum-wantSum) > 1e-9 {
		t.Fatalf("sum = %v, want %v", sum, wantSum)
	}
}

func TestVectorR2Sum(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomMatrix(rng, 31, 200)
	wantSum, wantPairs := triangleR2(g)
	for _, threads := range []int{1, 2, 7} {
		sum, pairs := Vector{Threads: threads}.R2Sum(g)
		if pairs != wantPairs || math.Abs(sum-wantSum) > 1e-9 {
			t.Fatalf("threads=%d: sum=%v pairs=%d, want %v %d", threads, sum, pairs, wantSum, wantPairs)
		}
	}
}

func TestVectorMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomMatrix(rng, 13, 150)
	got := Vector{Threads: 4}.Matrix(g)
	res, err := core.Matrix(g, core.Options{Measures: core.MeasureR2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if math.Abs(got[i]-res.R2[i]) > 1e-12 {
			t.Fatalf("cell %d: %v vs %v", i, got[i], res.R2[i])
		}
	}
}

func TestVectorEmptyAndSingle(t *testing.T) {
	sum, pairs := Vector{}.R2Sum(bitmat.New(0, 10))
	if sum != 0 || pairs != 0 {
		t.Fatalf("empty: %v %d", sum, pairs)
	}
	g := randomMatrix(rand.New(rand.NewSource(4)), 1, 50)
	sum, pairs = Vector{}.R2Sum(g)
	if pairs != 1 {
		t.Fatalf("single SNP pairs = %d", pairs)
	}
	if c := g.DerivedCount(0); c > 0 && c < 50 && math.Abs(sum-1) > 1e-12 {
		t.Fatalf("self r² = %v", sum)
	}
}

func TestPlinkR2SumAgainstPairCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	hap := randomMatrix(rng, 19, 120) // 60 diploid samples
	g, err := bitmat.FromHaplotypes(hap)
	if err != nil {
		t.Fatal(err)
	}
	var wantSum float64
	var wantPairs int64
	for i := 0; i < g.SNPs; i++ {
		for j := i; j < g.SNPs; j++ {
			wantSum += g.PairCounts(i, j).R2()
			wantPairs++
		}
	}
	for _, threads := range []int{1, 5} {
		sum, pairs := Plink{Threads: threads}.R2Sum(g)
		if pairs != wantPairs || math.Abs(sum-wantSum) > 1e-9 {
			t.Fatalf("threads=%d: %v %d, want %v %d", threads, sum, pairs, wantSum, wantPairs)
		}
	}
}

func TestPlinkMatrixSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	hap := randomMatrix(rng, 11, 80)
	g, err := bitmat.FromHaplotypes(hap)
	if err != nil {
		t.Fatal(err)
	}
	m := Plink{Threads: 2}.Matrix(g)
	n := g.SNPs
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if m[i*n+j] != m[j*n+i] {
				t.Fatalf("asymmetric at (%d,%d)", i, j)
			}
		}
		if got := m[i*n+i]; got != g.PairCounts(i, i).R2() {
			t.Fatalf("diag %d = %v", i, got)
		}
	}
}

// Property: vector kernel sum equals naive kernel sum for random inputs
// and any thread count.
func TestQuickVectorEqualsNaive(t *testing.T) {
	f := func(seed int64, n8, s8, t8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(n8%12) + 1
		samples := int(s8%80) + 1
		threads := int(t8%6) + 1
		g := randomMatrix(rng, n, samples)
		s1, p1 := Naive{Threads: threads}.R2Sum(g)
		s2, p2 := Vector{Threads: 7 - threads}.R2Sum(g)
		return p1 == p2 && math.Abs(s1-s2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: on haplotype data where each diploid is formed from two
// identical haplotypes, genotype r² equals haplotype r² (dosage is twice
// the haplotype allele, a linear transform that correlation ignores).
func TestQuickPlinkMatchesHaplotypeR2OnHomozygotes(t *testing.T) {
	f := func(seed int64, n8, s8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(n8%8) + 2
		dip := int(s8%40) + 5
		hap := bitmat.New(n, 2*dip)
		base := randomMatrix(rng, n, dip)
		for i := 0; i < n; i++ {
			for s := 0; s < dip; s++ {
				if base.Bit(i, s) {
					hap.SetBit(i, 2*s)
					hap.SetBit(i, 2*s+1)
				}
			}
		}
		g, err := bitmat.FromHaplotypes(hap)
		if err != nil {
			return false
		}
		ps, pp := Plink{Threads: 2}.R2Sum(g)
		vs, vp := Vector{Threads: 2}.R2Sum(base)
		return pp == vp && math.Abs(ps-vs) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
