// Package msa implements the preliminary workflow the paper describes
// before any LD computation can happen (Section I): building a
// multiple-sequence alignment for a set of individuals and running a SNP
// calling step that identifies variable biallelic sites, discards
// monomorphic (non-informative) columns, and emits the bit-packed genomic
// matrix plus the validity mask of Section VII (gaps and ambiguous
// characters become invalid states).
package msa

import (
	"fmt"
	"math/rand"

	"ldgemm/internal/bitmat"
)

// Alignment is a gapped multiple-sequence alignment: Seqs[s][p] is the
// character of sample s at alignment column p. All rows have equal length.
type Alignment struct {
	Seqs  [][]byte
	Names []string
}

// Len returns the alignment length (0 when empty).
func (a *Alignment) Len() int {
	if len(a.Seqs) == 0 {
		return 0
	}
	return len(a.Seqs[0])
}

// Validate checks rectangularity and name bookkeeping.
func (a *Alignment) Validate() error {
	n := a.Len()
	for s, seq := range a.Seqs {
		if len(seq) != n {
			return fmt.Errorf("msa: sequence %d has length %d, want %d", s, len(seq), n)
		}
	}
	if a.Names != nil && len(a.Names) != len(a.Seqs) {
		return fmt.Errorf("msa: %d names for %d sequences", len(a.Names), len(a.Seqs))
	}
	return nil
}

// RandomReference returns a uniform-random ACGT sequence.
func RandomReference(seed int64, length int) []byte {
	rng := rand.New(rand.NewSource(seed))
	ref := make([]byte, length)
	alpha := []byte("ACGT")
	for i := range ref {
		ref[i] = alpha[rng.Intn(4)]
	}
	return ref
}

// substitute returns a nucleotide different from ref, chosen
// deterministically (transition-biased: A↔G, C↔T).
func substitute(ref byte) byte {
	switch ref {
	case 'A':
		return 'G'
	case 'G':
		return 'A'
	case 'C':
		return 'T'
	case 'T':
		return 'C'
	default:
		return 'A'
	}
}

// BuildOptions controls alignment synthesis from a variant matrix.
type BuildOptions struct {
	Seed int64
	// GapRate is the per-character probability of replacing a character
	// with an alignment gap '-' (missing data).
	GapRate float64
	// AmbiguityRate is the per-character probability of replacing a
	// character with 'N' (base miscall / insufficient correction).
	AmbiguityRate float64
}

// FromVariants builds an MSA by planting the derived alleles of a binary
// variant matrix onto a reference sequence: sample s carries
// substitute(ref[positions[i]]) at column positions[i] whenever bit (i, s)
// is set, and the reference character everywhere else. Gap and ambiguity
// noise is then applied position-wise. Positions must be strictly
// increasing and within the reference.
func FromVariants(ref []byte, positions []int, m *bitmat.Matrix, opt BuildOptions) (*Alignment, error) {
	if len(positions) != m.SNPs {
		return nil, fmt.Errorf("msa: %d positions for %d SNPs", len(positions), m.SNPs)
	}
	for i, p := range positions {
		if p < 0 || p >= len(ref) {
			return nil, fmt.Errorf("msa: position %d outside reference of length %d", p, len(ref))
		}
		if i > 0 && positions[i-1] >= p {
			return nil, fmt.Errorf("msa: positions not strictly increasing at %d", i)
		}
	}
	if opt.GapRate < 0 || opt.AmbiguityRate < 0 || opt.GapRate+opt.AmbiguityRate > 1 {
		return nil, fmt.Errorf("msa: invalid noise rates gap=%v ambiguity=%v", opt.GapRate, opt.AmbiguityRate)
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	aln := &Alignment{Seqs: make([][]byte, m.Samples), Names: make([]string, m.Samples)}
	for s := 0; s < m.Samples; s++ {
		seq := make([]byte, len(ref))
		copy(seq, ref)
		for i, p := range positions {
			if m.Bit(i, s) {
				seq[p] = substitute(ref[p])
			}
		}
		for p := range seq {
			switch r := rng.Float64(); {
			case r < opt.GapRate:
				seq[p] = '-'
			case r < opt.GapRate+opt.AmbiguityRate:
				seq[p] = 'N'
			}
		}
		aln.Seqs[s] = seq
		aln.Names[s] = fmt.Sprintf("sample_%d", s)
	}
	return aln, nil
}

// CallOptions controls the SNP caller.
type CallOptions struct {
	// MinMAC is the minimum minor-allele count for a site to be retained
	// (default 1, i.e. any segregating site).
	MinMAC int
	// MaxMissingFrac drops sites where more than this fraction of samples
	// is a gap or ambiguous character (default 1, i.e. keep all).
	MaxMissingFrac float64
}

// CallResult is the output of SNP calling: the bit-packed genomic matrix
// (ancestral=0/derived=1 per the infinite sites encoding of Section II-A),
// the Section VII validity mask, and per-SNP metadata.
type CallResult struct {
	Matrix    *bitmat.Matrix
	Mask      *bitmat.Mask
	Positions []int  // alignment columns of the retained SNPs
	Ancestral []byte // ancestral (majority or reference) allele per SNP
	Derived   []byte // derived allele per SNP
	// Multiallelic counts columns skipped for having >2 nucleotide states.
	Multiallelic int
}

// CallSNPs scans alignment columns, keeps biallelic segregating sites
// passing the filters, and encodes them into a genomic matrix + mask. The
// ancestral state of each site is taken from ref when provided (columns
// whose reference character is absent from the sample are skipped as
// misaligned); with a nil ref the majority allele is ancestral.
func CallSNPs(aln *Alignment, ref []byte, opt CallOptions) (*CallResult, error) {
	if err := aln.Validate(); err != nil {
		return nil, err
	}
	if ref != nil && len(ref) != aln.Len() {
		return nil, fmt.Errorf("msa: reference length %d != alignment length %d", len(ref), aln.Len())
	}
	if opt.MinMAC == 0 {
		opt.MinMAC = 1
	}
	if opt.MaxMissingFrac == 0 {
		opt.MaxMissingFrac = 1
	}
	if opt.MinMAC < 1 || opt.MaxMissingFrac < 0 || opt.MaxMissingFrac > 1 {
		return nil, fmt.Errorf("msa: invalid call options %+v", opt)
	}
	samples := len(aln.Seqs)
	length := aln.Len()

	res := &CallResult{}
	type colInfo struct {
		pos                 int
		ancestral, derived  byte
		derivedSet, present []bool
	}
	var kept []colInfo
	for p := 0; p < length; p++ {
		var counts [4]int
		present := make([]bool, samples)
		missing := 0
		for s := 0; s < samples; s++ {
			if k, ok := stateIndex(aln.Seqs[s][p]); ok {
				counts[k]++
				present[s] = true
			} else {
				missing++
			}
		}
		states := 0
		for _, c := range counts {
			if c > 0 {
				states++
			}
		}
		if states < 2 {
			continue // monomorphic or fully missing: non-informative
		}
		if states > 2 {
			res.Multiallelic++
			continue // not representable under the infinite sites model
		}
		if samples > 0 && float64(missing) > opt.MaxMissingFrac*float64(samples) {
			continue
		}
		// Identify the two alleles.
		var alleles [2]int
		ai := 0
		for k, c := range counts {
			if c > 0 {
				alleles[ai] = k
				ai++
			}
		}
		anc, der := alleles[0], alleles[1]
		if ref != nil {
			rk, ok := stateIndex(ref[p])
			switch {
			case ok && rk == alleles[1]:
				anc, der = alleles[1], alleles[0]
			case ok && rk == alleles[0]:
				// already oriented
			default:
				continue // reference allele absent: treat as misaligned
			}
		} else if counts[alleles[1]] > counts[alleles[0]] {
			anc, der = alleles[1], alleles[0]
		}
		if min(counts[anc], counts[der]) < opt.MinMAC {
			continue
		}
		info := colInfo{
			pos: p, ancestral: stateChar(anc), derived: stateChar(der),
			derivedSet: make([]bool, samples), present: present,
		}
		for s := 0; s < samples; s++ {
			if present[s] {
				k, _ := stateIndex(aln.Seqs[s][p])
				info.derivedSet[s] = k == der
			}
		}
		kept = append(kept, info)
	}

	res.Matrix = bitmat.New(len(kept), samples)
	res.Mask = bitmat.NewMask(len(kept), samples)
	res.Positions = make([]int, len(kept))
	res.Ancestral = make([]byte, len(kept))
	res.Derived = make([]byte, len(kept))
	for i, info := range kept {
		res.Positions[i] = info.pos
		res.Ancestral[i] = info.ancestral
		res.Derived[i] = info.derived
		for s := 0; s < samples; s++ {
			if !info.present[s] {
				res.Mask.Invalidate(i, s)
				continue
			}
			if info.derivedSet[s] {
				res.Matrix.SetBit(i, s)
			}
		}
	}
	return res, nil
}

// stateIndex maps a nucleotide character to 0..3; gaps and ambiguity
// codes report ok=false.
func stateIndex(c byte) (int, bool) {
	switch c {
	case 'A', 'a':
		return 0, true
	case 'C', 'c':
		return 1, true
	case 'G', 'g':
		return 2, true
	case 'T', 't':
		return 3, true
	default:
		return 0, false
	}
}

func stateChar(k int) byte { return [4]byte{'A', 'C', 'G', 'T'}[k] }
