package msa

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/popsim"
)

func TestRandomReference(t *testing.T) {
	ref := RandomReference(1, 500)
	if len(ref) != 500 {
		t.Fatalf("length %d", len(ref))
	}
	seen := map[byte]bool{}
	for _, c := range ref {
		switch c {
		case 'A', 'C', 'G', 'T':
			seen[c] = true
		default:
			t.Fatalf("bad character %q", c)
		}
	}
	if len(seen) != 4 {
		t.Fatalf("only %d distinct nucleotides in 500bp", len(seen))
	}
	other := RandomReference(1, 500)
	for i := range ref {
		if ref[i] != other[i] {
			t.Fatal("same seed produced different references")
		}
	}
}

func TestSubstituteNeverIdentity(t *testing.T) {
	for _, c := range []byte("ACGT") {
		if substitute(c) == c {
			t.Fatalf("substitute(%q) is identity", c)
		}
	}
}

func TestAlignmentValidate(t *testing.T) {
	a := &Alignment{Seqs: [][]byte{[]byte("ACG"), []byte("AC")}}
	if a.Validate() == nil {
		t.Fatal("ragged alignment accepted")
	}
	a = &Alignment{Seqs: [][]byte{[]byte("ACG")}, Names: []string{"x", "y"}}
	if a.Validate() == nil {
		t.Fatal("name count mismatch accepted")
	}
	if (&Alignment{}).Len() != 0 {
		t.Fatal("empty alignment length")
	}
}

func TestFromVariantsErrors(t *testing.T) {
	ref := RandomReference(2, 100)
	m := bitmat.New(3, 5)
	if _, err := FromVariants(ref, []int{1, 2}, m, BuildOptions{}); err == nil {
		t.Fatal("position count mismatch accepted")
	}
	if _, err := FromVariants(ref, []int{1, 2, 200}, m, BuildOptions{}); err == nil {
		t.Fatal("out-of-range position accepted")
	}
	if _, err := FromVariants(ref, []int{2, 2, 3}, m, BuildOptions{}); err == nil {
		t.Fatal("non-increasing positions accepted")
	}
	if _, err := FromVariants(ref, []int{1, 2, 3}, m, BuildOptions{GapRate: 0.9, AmbiguityRate: 0.2}); err == nil {
		t.Fatal("noise rates summing over 1 accepted")
	}
}

func TestRoundTripNoiseless(t *testing.T) {
	// variants → alignment → SNP calls must reproduce the matrix exactly
	// when there is no gap/ambiguity noise and every SNP is polymorphic.
	m, err := popsim.Mosaic(40, 30, popsim.MosaicConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ref := RandomReference(4, 400)
	positions := make([]int, 40)
	for i := range positions {
		positions[i] = 5 + i*9
	}
	aln, err := FromVariants(ref, positions, m, BuildOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := CallSNPs(aln, ref, CallOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matrix.SNPs != 40 {
		t.Fatalf("called %d SNPs, want 40", res.Matrix.SNPs)
	}
	if !res.Matrix.Equal(m) {
		t.Fatal("round trip did not reproduce the variant matrix")
	}
	for i, p := range res.Positions {
		if p != positions[i] {
			t.Fatalf("position %d = %d, want %d", i, p, positions[i])
		}
		if res.Ancestral[i] != ref[p] {
			t.Fatalf("ancestral %d = %q, want ref %q", i, res.Ancestral[i], ref[p])
		}
		if res.Derived[i] != substitute(ref[p]) {
			t.Fatalf("derived %d = %q", i, res.Derived[i])
		}
	}
	// All-valid mask.
	for i := 0; i < res.Mask.SNPs; i++ {
		if res.Mask.ValidCount(i) != 30 {
			t.Fatalf("mask not all-valid at %d", i)
		}
	}
}

func TestCallSNPsSkipsMonomorphic(t *testing.T) {
	aln := &Alignment{Seqs: [][]byte{
		[]byte("AAAC"),
		[]byte("AAAC"),
		[]byte("AGAC"),
	}}
	res, err := CallSNPs(aln, nil, CallOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Only column 1 is biallelic segregating.
	if res.Matrix.SNPs != 1 || res.Positions[0] != 1 {
		t.Fatalf("called %d SNPs at %v", res.Matrix.SNPs, res.Positions)
	}
	// Majority allele A is ancestral.
	if res.Ancestral[0] != 'A' || res.Derived[0] != 'G' {
		t.Fatalf("alleles %q/%q", res.Ancestral[0], res.Derived[0])
	}
	if !res.Matrix.Bit(0, 2) || res.Matrix.Bit(0, 0) {
		t.Fatal("derived encoding wrong")
	}
}

func TestCallSNPsSkipsMultiallelic(t *testing.T) {
	aln := &Alignment{Seqs: [][]byte{
		[]byte("AT"),
		[]byte("CT"),
		[]byte("GA"),
	}}
	res, err := CallSNPs(aln, nil, CallOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Multiallelic != 1 {
		t.Fatalf("Multiallelic = %d", res.Multiallelic)
	}
	if res.Matrix.SNPs != 1 || res.Positions[0] != 1 {
		t.Fatalf("kept %v", res.Positions)
	}
}

func TestCallSNPsGapsBecomeMask(t *testing.T) {
	aln := &Alignment{Seqs: [][]byte{
		[]byte("A-"),
		[]byte("GN"),
		[]byte("AC"),
		[]byte("GT"),
	}}
	res, err := CallSNPs(aln, nil, CallOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matrix.SNPs != 2 {
		t.Fatalf("called %d SNPs", res.Matrix.SNPs)
	}
	// Column 0: no gaps. Column 1: samples 0,1 invalid.
	if res.Mask.ValidCount(0) != 4 || res.Mask.ValidCount(1) != 2 {
		t.Fatalf("valid counts %d %d", res.Mask.ValidCount(0), res.Mask.ValidCount(1))
	}
	if res.Mask.Bit(1, 0) || res.Mask.Bit(1, 1) {
		t.Fatal("gap samples marked valid")
	}
	// Gap positions must carry 0 in the matrix (s = s & c invariant).
	if res.Matrix.Bit(1, 0) || res.Matrix.Bit(1, 1) {
		t.Fatal("gap positions carry derived bits")
	}
}

func TestCallSNPsMaxMissing(t *testing.T) {
	aln := &Alignment{Seqs: [][]byte{
		[]byte("A-"),
		[]byte("G-"),
		[]byte("A-"),
		[]byte("GT"),
	}}
	// Column 1 is 75% missing and monomorphic among present → dropped
	// regardless; use a column that is segregating but missing-heavy.
	aln.Seqs[0][1] = 'T'
	aln.Seqs[1][1] = 'C'
	// Column 1 is 25% missing: a 0.2 cutoff drops it, a 0.3 cutoff keeps it.
	res, err := CallSNPs(aln, nil, CallOptions{MaxMissingFrac: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matrix.SNPs != 1 || res.Positions[0] != 0 {
		t.Fatalf("missing filter failed: %v", res.Positions)
	}
	res, err = CallSNPs(aln, nil, CallOptions{MaxMissingFrac: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matrix.SNPs != 2 {
		t.Fatalf("lenient filter kept %d", res.Matrix.SNPs)
	}
}

func TestCallSNPsMinMAC(t *testing.T) {
	aln := &Alignment{Seqs: [][]byte{
		[]byte("AG"),
		[]byte("AG"),
		[]byte("AG"),
		[]byte("GA"),
	}}
	res, err := CallSNPs(aln, nil, CallOptions{MinMAC: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matrix.SNPs != 0 {
		t.Fatal("singleton sites not filtered")
	}
}

func TestCallSNPsRefAbsent(t *testing.T) {
	// Reference allele not present in the sample → column skipped.
	aln := &Alignment{Seqs: [][]byte{[]byte("C"), []byte("T")}}
	res, err := CallSNPs(aln, []byte("A"), CallOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matrix.SNPs != 0 {
		t.Fatal("column with absent reference allele kept")
	}
}

// Property: with noise, every called SNP is biallelic among valid samples
// and the matrix/mask pair satisfies the s = s & c invariant.
func TestQuickCallInvariants(t *testing.T) {
	f := func(seed int64, n8, s8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		snps := int(n8%20) + 2
		samples := int(s8%25) + 4
		m, err := popsim.Mosaic(snps, samples, popsim.MosaicConfig{Seed: seed})
		if err != nil {
			return false
		}
		reflen := snps*4 + 10
		ref := RandomReference(seed, reflen)
		positions := make([]int, snps)
		for i := range positions {
			positions[i] = 2 + i*4
		}
		aln, err := FromVariants(ref, positions, m, BuildOptions{
			Seed: seed + 1, GapRate: 0.05, AmbiguityRate: 0.03,
		})
		if err != nil {
			return false
		}
		res, err := CallSNPs(aln, ref, CallOptions{})
		if err != nil {
			return false
		}
		_ = rng
		for i := 0; i < res.Matrix.SNPs; i++ {
			derived, valid := 0, 0
			for s := 0; s < samples; s++ {
				if res.Matrix.Bit(i, s) && !res.Mask.Bit(i, s) {
					return false // derived bit outside the mask
				}
				if res.Mask.Bit(i, s) {
					valid++
					if res.Matrix.Bit(i, s) {
						derived++
					}
				}
			}
			if derived == 0 || derived == valid {
				return false // not segregating among valid samples
			}
		}
		return res.Matrix.ValidatePadding() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
