package ehh

import (
	"math"
	"math/rand"
	"testing"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/popsim"
)

func TestDecayBasicProperties(t *testing.T) {
	g, err := popsim.Mosaic(120, 80, popsim.MosaicConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Pick a common SNP.
	core := -1
	for i := 0; i < g.SNPs; i++ {
		f := g.AlleleFrequency(i)
		if f > 0.3 && f < 0.7 {
			core = i
			break
		}
	}
	if core < 0 {
		t.Fatal("no common SNP found")
	}
	left, right, err := Decay(g, core, true, 40)
	if err != nil {
		t.Fatal(err)
	}
	for _, curve := range [][]float64{left, right} {
		if curve[0] != 1 {
			t.Fatalf("EHH at core = %v, want 1", curve[0])
		}
		for d := 1; d < len(curve); d++ {
			if curve[d] > curve[d-1]+1e-12 {
				t.Fatalf("EHH increased at distance %d: %v > %v", d, curve[d], curve[d-1])
			}
			if curve[d] < 0 || curve[d] > 1 {
				t.Fatalf("EHH out of range: %v", curve[d])
			}
		}
	}
}

func TestDecayIdenticalHaplotypesStayAtOne(t *testing.T) {
	// All carriers identical everywhere → EHH stays 1 across the span.
	g := bitmat.New(20, 10)
	for i := 0; i < 20; i++ {
		for s := 0; s < 5; s++ {
			g.SetBit(i, s) // samples 0–4 all-derived, 5–9 all-ancestral
		}
	}
	left, right, err := Decay(g, 10, true, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range append(append([]float64{}, left...), right...) {
		if v != 1 {
			t.Fatalf("EHH dropped to %v on identical haplotypes", v)
		}
	}
}

func TestDecayFullSplit(t *testing.T) {
	// Neighboring SNP splits carriers into singletons → EHH hits 0 and
	// the curve stops extending.
	g := bitmat.New(3, 4)
	g.SetBit(1, 0)
	g.SetBit(1, 1) // carriers {0, 1} at core 1
	g.SetBit(2, 0) // SNP 2 separates them
	_, right, err := Decay(g, 1, true, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(right) != 2 || right[1] != 0 {
		t.Fatalf("right curve %v, want [1 0]", right)
	}
}

func TestDecayErrors(t *testing.T) {
	g := bitmat.New(5, 10)
	if _, _, err := Decay(g, 9, true, 2); err == nil {
		t.Fatal("core out of range accepted")
	}
	if _, _, err := Decay(g, 2, true, -1); err == nil {
		t.Fatal("negative span accepted")
	}
	// No derived carriers at an all-ancestral SNP.
	if _, _, err := Decay(g, 2, true, 2); err == nil {
		t.Fatal("zero carriers accepted")
	}
}

func TestIntegrate(t *testing.T) {
	// Simple trapezoid: EHH [1, 0.5] → area 0.75.
	if got := integrate([]float64{1, 0.5}); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("integrate = %v", got)
	}
	// Floor truncation: [1, 0.04] crosses 0.05 — partial trapezoid only.
	got := integrate([]float64{1, 0.04})
	if got <= 0 || got >= 0.75 {
		t.Fatalf("truncated integral %v", got)
	}
	if integrate([]float64{1}) != 0 {
		t.Fatal("single-point integral should be 0")
	}
}

// TestIHSDetectsSweep is the headline property: a planted sweep makes the
// derived haplotypes long, so unstandardized iHS near the center is
// strongly negative compared to the neutral background.
func TestIHSDetectsSweep(t *testing.T) {
	g, err := popsim.Mosaic(500, 200, popsim.MosaicConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := popsim.ApplySweep(g, popsim.SweepConfig{
		Seed: 4, CenterSNP: 250, Radius: 150, CarrierFraction: 0.8,
	}); err != nil {
		t.Fatal(err)
	}
	scores, err := Scan(g, ScanOptions{MaxSpan: 120})
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) < 50 {
		t.Fatalf("only %d scannable SNPs", len(scores))
	}
	// The swept haplotype rides whichever allele the donor happened to
	// carry at each SNP, so signed iHS mixes strong positives and
	// negatives near the center; the robust signature is |iHS|.
	var nearSum, farSum float64
	var nearN, farN int
	for _, s := range scores {
		d := s.SNP - 250
		if d < 0 {
			d = -d
		}
		a := math.Abs(s.UnstandardizedIHS)
		if d <= 40 {
			nearSum += a
			nearN++
		} else if d >= 150 {
			farSum += a
			farN++
		}
	}
	if nearN == 0 || farN == 0 {
		t.Fatalf("bins empty: near %d far %d", nearN, farN)
	}
	nearMean := nearSum / float64(nearN)
	farMean := farSum / float64(farN)
	if nearMean < farMean+0.2 {
		t.Fatalf("no sweep signal: mean |iHS| near %v vs far %v", nearMean, farMean)
	}
}

func TestScanOptionsValidation(t *testing.T) {
	g := bitmat.New(10, 20)
	if _, err := Scan(g, ScanOptions{MinMAF: 0.7}); err == nil {
		t.Fatal("MinMAF ≥ 0.5 accepted")
	}
	if _, err := Scan(g, ScanOptions{MaxSpan: -1}); err == nil {
		t.Fatal("negative span accepted")
	}
}

func TestStandardize(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	scores := make([]Score, 300)
	for i := range scores {
		f := 0.1 + 0.8*rng.Float64()
		scores[i] = Score{SNP: i, DerivedFrequency: f, UnstandardizedIHS: rng.NormFloat64() + f}
	}
	z, err := Standardize(scores, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(z) != 300 {
		t.Fatalf("%d z-scores", len(z))
	}
	// Standardized scores should be ~N(0,1) overall: mean near 0.
	var sum, sq float64
	for _, v := range z {
		sum += v
		sq += v * v
	}
	mean := sum / 300
	sd := math.Sqrt(sq/300 - mean*mean)
	if math.Abs(mean) > 0.15 || sd < 0.7 || sd > 1.3 {
		t.Fatalf("standardized scores mean %v sd %v", mean, sd)
	}
	if _, err := Standardize(scores, 0); err == nil {
		t.Fatal("bins=0 accepted")
	}
}

func TestHomozygosity(t *testing.T) {
	// 4 haplotypes in groups {0,0,1,1}: Σ C(2,2)·2 / C(4,2) = 2/6.
	got := homozygosity([]int{0, 0, 1, 1}, 2, 4)
	if math.Abs(got-2.0/6) > 1e-12 {
		t.Fatalf("homozygosity = %v", got)
	}
	// All singletons → 0; single group → 1.
	if homozygosity([]int{0, 1, 2}, 3, 3) != 0 {
		t.Fatal("singleton homozygosity != 0")
	}
	if homozygosity([]int{0, 0, 0}, 1, 3) != 1 {
		t.Fatal("single-group homozygosity != 1")
	}
}
