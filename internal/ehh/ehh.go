// Package ehh implements extended haplotype homozygosity (EHH) and the
// integrated haplotype score (iHS) of Voight et al. (2006) — the
// haplotype-length counterpart of the ω statistic for detecting recent
// positive selection. Where ω looks at the r² structure around a swept
// site, EHH asks how far identical haplotypes extend from a core SNP:
// under an ongoing sweep the derived allele rides a long shared haplotype,
// so homozygosity decays much more slowly on the derived background than
// on the ancestral one.
package ehh

import (
	"fmt"
	"math"

	"ldgemm/internal/bitmat"
)

// ehhFloor is the conventional EHH cutoff terminating the iHH integral.
const ehhFloor = 0.05

// Decay computes EHH at increasing distance from the core SNP, separately
// to the left and right, over the haplotypes carrying the chosen core
// allele. out[0] is EHH at the core itself (always 1 when ≥2 carriers);
// out[d] is the probability that two random carrier haplotypes are
// identical over all SNPs within distance d on that side.
func Decay(g *bitmat.Matrix, core int, derived bool, maxSpan int) (left, right []float64, err error) {
	if core < 0 || core >= g.SNPs {
		return nil, nil, fmt.Errorf("ehh: core %d outside 0..%d", core, g.SNPs-1)
	}
	if maxSpan < 0 {
		return nil, nil, fmt.Errorf("ehh: negative span %d", maxSpan)
	}
	carriers := carrierSet(g, core, derived)
	if len(carriers) < 2 {
		return nil, nil, fmt.Errorf("ehh: fewer than 2 haplotypes carry the %s allele at SNP %d",
			alleleName(derived), core)
	}
	right = decaySide(g, core, carriers, maxSpan, +1)
	left = decaySide(g, core, carriers, maxSpan, -1)
	return left, right, nil
}

func alleleName(derived bool) string {
	if derived {
		return "derived"
	}
	return "ancestral"
}

// carrierSet lists the haplotypes carrying the requested allele at core.
func carrierSet(g *bitmat.Matrix, core int, derived bool) []int {
	var out []int
	for s := 0; s < g.Samples; s++ {
		if g.Bit(core, s) == derived {
			out = append(out, s)
		}
	}
	return out
}

// decaySide walks outward from the core in the given direction, refining
// the partition of carriers into identical-haplotype groups and recording
// the homozygosity after each step.
func decaySide(g *bitmat.Matrix, core int, carriers []int, maxSpan, dir int) []float64 {
	group := make([]int, len(carriers)) // all carriers share group 0 at the core
	nGroups := 1
	out := []float64{1}
	for d := 1; d <= maxSpan; d++ {
		snp := core + dir*d
		if snp < 0 || snp >= g.SNPs {
			break
		}
		// Split every group by the allele at snp.
		type key struct {
			g   int
			bit bool
		}
		next := make(map[key]int, nGroups*2)
		for ci, s := range carriers {
			k := key{group[ci], g.Bit(snp, s)}
			id, ok := next[k]
			if !ok {
				id = len(next)
				next[k] = id
			}
			group[ci] = id
		}
		nGroups = len(next)
		out = append(out, homozygosity(group, nGroups, len(carriers)))
		if out[len(out)-1] == 0 {
			break // fully partitioned; EHH stays 0 from here
		}
	}
	return out
}

// homozygosity is Σ_g C(n_g,2) / C(n,2) over the current partition.
func homozygosity(group []int, nGroups, n int) float64 {
	counts := make([]int, nGroups)
	for _, id := range group {
		counts[id]++
	}
	var num float64
	for _, c := range counts {
		num += float64(c) * float64(c-1) / 2
	}
	return num / (float64(n) * float64(n-1) / 2)
}

// integrate computes the trapezoidal integral of an EHH curve over SNP
// distance, truncated where EHH drops below the conventional 0.05 floor.
func integrate(ehh []float64) float64 {
	area := 0.0
	for d := 1; d < len(ehh); d++ {
		a, b := ehh[d-1], ehh[d]
		if b < ehhFloor {
			// Linear interpolation to the crossing point.
			if a > ehhFloor && a != b {
				frac := (a - ehhFloor) / (a - b)
				area += frac * (a + ehhFloor) / 2
			}
			break
		}
		area += (a + b) / 2
	}
	return area
}

// Score is the unstandardized iHS of one core SNP.
type Score struct {
	SNP int
	// IHHDerived and IHHAncestral are the integrated EHH (left + right)
	// on each allelic background.
	IHHDerived, IHHAncestral float64
	// UnstandardizedIHS is ln(iHH_ancestral / iHH_derived): strongly
	// negative when the derived allele rides an unusually long haplotype.
	UnstandardizedIHS float64
	// DerivedFrequency of the core SNP (iHS is standardized within
	// frequency bins downstream).
	DerivedFrequency float64
}

// IHS computes the unstandardized iHS for one core SNP.
func IHS(g *bitmat.Matrix, core, maxSpan int) (Score, error) {
	dl, dr, err := Decay(g, core, true, maxSpan)
	if err != nil {
		return Score{}, err
	}
	al, ar, err := Decay(g, core, false, maxSpan)
	if err != nil {
		return Score{}, err
	}
	s := Score{
		SNP:              core,
		IHHDerived:       integrate(dl) + integrate(dr),
		IHHAncestral:     integrate(al) + integrate(ar),
		DerivedFrequency: g.AlleleFrequency(core),
	}
	if s.IHHDerived <= 0 || s.IHHAncestral <= 0 {
		return Score{}, fmt.Errorf("ehh: degenerate iHH at SNP %d (derived %v, ancestral %v)",
			core, s.IHHDerived, s.IHHAncestral)
	}
	s.UnstandardizedIHS = math.Log(s.IHHAncestral / s.IHHDerived)
	return s, nil
}

// ScanOptions configures an iHS scan.
type ScanOptions struct {
	// MaxSpan is how far EHH is traced on each side (default 200 SNPs).
	MaxSpan int
	// MinMAF drops cores with minor-allele frequency below it (default
	// 0.05, the standard iHS filter — rare cores have too few carriers
	// for stable EHH).
	MinMAF float64
}

func (o ScanOptions) normalize() (ScanOptions, error) {
	if o.MaxSpan == 0 {
		o.MaxSpan = 200
	}
	if o.MinMAF == 0 {
		o.MinMAF = 0.05
	}
	if o.MaxSpan < 1 || o.MinMAF < 0 || o.MinMAF >= 0.5 {
		return o, fmt.Errorf("ehh: invalid scan options %+v", o)
	}
	return o, nil
}

// Scan computes unstandardized iHS for every SNP passing the MAF filter.
// SNPs whose EHH degenerates (no carriers on one background) are skipped.
func Scan(g *bitmat.Matrix, opt ScanOptions) ([]Score, error) {
	opt, err := opt.normalize()
	if err != nil {
		return nil, err
	}
	var out []Score
	for i := 0; i < g.SNPs; i++ {
		f := g.AlleleFrequency(i)
		if math.Min(f, 1-f) < opt.MinMAF {
			continue
		}
		s, err := IHS(g, i, opt.MaxSpan)
		if err != nil {
			continue
		}
		out = append(out, s)
	}
	return out, nil
}

// Standardize converts unstandardized iHS values to z-scores within
// derived-allele-frequency bins, as Voight et al. prescribe (iHS is
// frequency-dependent under neutrality). Bins with fewer than 2 scores
// pass through unstandardized.
func Standardize(scores []Score, bins int) ([]float64, error) {
	if bins < 1 {
		return nil, fmt.Errorf("ehh: invalid bin count %d", bins)
	}
	binOf := func(f float64) int {
		b := int(f * float64(bins))
		if b >= bins {
			b = bins - 1
		}
		return b
	}
	sums := make([]float64, bins)
	sqs := make([]float64, bins)
	counts := make([]int, bins)
	for _, s := range scores {
		b := binOf(s.DerivedFrequency)
		sums[b] += s.UnstandardizedIHS
		sqs[b] += s.UnstandardizedIHS * s.UnstandardizedIHS
		counts[b]++
	}
	out := make([]float64, len(scores))
	for i, s := range scores {
		b := binOf(s.DerivedFrequency)
		if counts[b] < 2 {
			out[i] = s.UnstandardizedIHS
			continue
		}
		mean := sums[b] / float64(counts[b])
		varr := sqs[b]/float64(counts[b]) - mean*mean
		if varr <= 0 {
			out[i] = 0
			continue
		}
		out[i] = (s.UnstandardizedIHS - mean) / math.Sqrt(varr)
	}
	return out, nil
}
