// Package simdsim is a small instruction-stream cost simulator that
// validates the Section V analysis mechanically: it builds the actual
// dependency graph of the LD inner loop under three instruction-set
// scenarios (scalar, SIMD without hardware popcount, SIMD with a
// vectorized popcount), schedules it against a port model with a greedy
// list scheduler, and reports cycles per 64-bit word.
//
// Go exposes no vector intrinsics, so the paper's SIMD experiments cannot
// run natively; this simulator is the substitution (see DESIGN.md). Its
// port model mirrors the paper's assumptions: one AND, one POPCNT, and one
// ADD issuable per cycle, and SIMD lane extraction/insertion contending
// for a single shuffle port.
package simdsim

import "fmt"

// Op enumerates the instruction kinds the LD inner loop uses.
type Op int

const (
	// OpAnd is a scalar or vector bitwise AND.
	OpAnd Op = iota
	// OpAdd is a scalar or vector accumulate.
	OpAdd
	// OpPopcnt is the scalar 64-bit population count.
	OpPopcnt
	// OpVPopcnt is the hypothetical hardware vector population count.
	OpVPopcnt
	// OpExtract moves one lane from a SIMD register to a scalar register.
	OpExtract
	// OpInsert moves one scalar back into a SIMD lane.
	OpInsert
	numOps
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpAnd:
		return "and"
	case OpAdd:
		return "add"
	case OpPopcnt:
		return "popcnt"
	case OpVPopcnt:
		return "vpopcnt"
	case OpExtract:
		return "extract"
	case OpInsert:
		return "insert"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Port identifies an execution resource.
type Port int

const (
	// PortALU executes AND and ADD (vector or scalar).
	PortALU Port = iota
	// PortALU2 is a second ALU so an AND and an ADD co-issue, matching
	// the paper's "all three instructions can be issued in the same
	// clock cycle".
	PortALU2
	// PortPopcnt executes the (scalar or vector) population count; on
	// real x86 exactly one POPCNT issues per cycle.
	PortPopcnt
	// PortShuffle executes lane extraction and insertion; there is one,
	// which is the crux of the Section V stall argument.
	PortShuffle
	numPorts
)

// defaultPorts maps each op to the ports able to execute it.
var defaultPorts = map[Op][]Port{
	OpAnd:     {PortALU, PortALU2},
	OpAdd:     {PortALU, PortALU2},
	OpPopcnt:  {PortPopcnt},
	OpVPopcnt: {PortPopcnt},
	OpExtract: {PortShuffle},
	OpInsert:  {PortShuffle},
}

// Instr is one node of the dependency graph.
type Instr struct {
	Op   Op
	Deps []int // indices of instructions that must complete first
}

// Program is an instruction stream with dependencies.
type Program struct {
	Instrs []Instr
}

// add appends an instruction and returns its index.
func (p *Program) add(op Op, deps ...int) int {
	p.Instrs = append(p.Instrs, Instr{Op: op, Deps: deps})
	return len(p.Instrs) - 1
}

// Schedule runs a greedy in-order-ready list scheduler: every cycle, each
// port executes at most one ready instruction (all latencies are one
// cycle, matching the paper's simplification). It returns the total cycle
// count.
func (p *Program) Schedule() (int, error) {
	n := len(p.Instrs)
	done := make([]bool, n)
	remaining := n
	cycle := 0
	for remaining > 0 {
		cycle++
		if cycle > 64*n+64 {
			return 0, fmt.Errorf("simdsim: schedule did not converge (dependency cycle?)")
		}
		var busy [numPorts]bool
		issuedThisCycle := make([]int, 0, numPorts)
		for i, ins := range p.Instrs {
			if done[i] {
				continue
			}
			ready := true
			for _, d := range ins.Deps {
				if d < 0 || d >= n {
					return 0, fmt.Errorf("simdsim: instruction %d has invalid dep %d", i, d)
				}
				if !done[d] {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			ports, ok := defaultPorts[ins.Op]
			if !ok {
				return 0, fmt.Errorf("simdsim: no port mapping for %v", ins.Op)
			}
			for _, port := range ports {
				if !busy[port] {
					busy[port] = true
					issuedThisCycle = append(issuedThisCycle, i)
					break
				}
			}
		}
		// Results become visible at end of cycle: mark after issue so two
		// dependent instructions cannot co-issue.
		for _, i := range issuedThisCycle {
			done[i] = true
			remaining--
		}
		if len(issuedThisCycle) == 0 && remaining > 0 {
			return 0, fmt.Errorf("simdsim: deadlock with %d instructions left", remaining)
		}
	}
	return cycle, nil
}

// Scenario selects the instruction-set variant to simulate.
type Scenario int

const (
	// Scalar is the Section IV kernel: AND+POPCNT+ADD per word.
	Scalar Scenario = iota
	// SIMDNoHW uses v-lane vector AND/ADD but must extract every lane,
	// scalar-popcount it, and insert it back (Section V-A).
	SIMDNoHW
	// SIMDHW assumes the hardware vector popcount of Section V-B.
	SIMDHW
)

// String implements fmt.Stringer.
func (s Scenario) String() string {
	switch s {
	case Scalar:
		return "scalar"
	case SIMDNoHW:
		return "simd-no-hw-popcnt"
	case SIMDHW:
		return "simd-hw-popcnt"
	default:
		return fmt.Sprintf("scenario(%d)", int(s))
	}
}

// Build constructs the inner-loop dependency graph processing `words`
// 64-bit words with v lanes per vector register. For the scalar scenario v
// is ignored. Accumulator chains are kept per lane (as a real unrolled
// kernel does), so the ADD chain does not serialize the whole stream.
func Build(sc Scenario, words, v int) (*Program, error) {
	if words < 1 {
		return nil, fmt.Errorf("simdsim: invalid word count %d", words)
	}
	if sc != Scalar && v < 1 {
		return nil, fmt.Errorf("simdsim: invalid lane count %d", v)
	}
	p := &Program{}
	switch sc {
	case Scalar:
		// Independent accumulators per unrolled slot (use 4, ample).
		const unroll = 4
		lastAdd := make([]int, unroll)
		for i := range lastAdd {
			lastAdd[i] = -1
		}
		for w := 0; w < words; w++ {
			and := p.add(OpAnd)
			pop := p.add(OpPopcnt, and)
			deps := []int{pop}
			if lastAdd[w%unroll] >= 0 {
				deps = append(deps, lastAdd[w%unroll])
			}
			lastAdd[w%unroll] = p.add(OpAdd, deps...)
		}
	case SIMDNoHW:
		lastAdd := -1
		for w := 0; w < words; w += v {
			vand := p.add(OpAnd) // vector AND covering v words
			inserts := make([]int, 0, v)
			prevInsert := -1
			for lane := 0; lane < v && w+lane < words; lane++ {
				ext := p.add(OpExtract, vand)
				pop := p.add(OpPopcnt, ext)
				deps := []int{pop}
				if prevInsert >= 0 {
					// Inserts build up the same destination register, so
					// they chain.
					deps = append(deps, prevInsert)
				}
				prevInsert = p.add(OpInsert, deps...)
				inserts = append(inserts, prevInsert)
			}
			deps := []int{inserts[len(inserts)-1]}
			if lastAdd >= 0 {
				deps = append(deps, lastAdd)
			}
			lastAdd = p.add(OpAdd, deps...) // vector accumulate
		}
	case SIMDHW:
		const unroll = 4
		lastAdd := make([]int, unroll)
		for i := range lastAdd {
			lastAdd[i] = -1
		}
		slot := 0
		for w := 0; w < words; w += v {
			vand := p.add(OpAnd)
			vpop := p.add(OpVPopcnt, vand)
			deps := []int{vpop}
			if lastAdd[slot%unroll] >= 0 {
				deps = append(deps, lastAdd[slot%unroll])
			}
			lastAdd[slot%unroll] = p.add(OpAdd, deps...)
			slot++
		}
	default:
		return nil, fmt.Errorf("simdsim: unknown scenario %d", sc)
	}
	return p, nil
}

// Result summarizes one simulation.
type Result struct {
	Scenario      Scenario
	Lanes         int
	Words         int
	Cycles        int
	CyclesPerWord float64
}

// Run builds and schedules the scenario, returning cycles per word.
func Run(sc Scenario, words, v int) (Result, error) {
	p, err := Build(sc, words, v)
	if err != nil {
		return Result{}, err
	}
	cycles, err := p.Schedule()
	if err != nil {
		return Result{}, err
	}
	return Result{
		Scenario: sc, Lanes: v, Words: words, Cycles: cycles,
		CyclesPerWord: float64(cycles) / float64(words),
	}, nil
}
