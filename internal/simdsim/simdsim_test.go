package simdsim

import (
	"math"
	"testing"

	"ldgemm/internal/perfmodel"
)

func TestScalarApproachesOneCyclePerWord(t *testing.T) {
	res, err := Run(Scalar, 512, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Steady state is one word per cycle (popcount port bound), with a
	// short pipeline warm-up.
	if res.CyclesPerWord > 1.05 {
		t.Fatalf("scalar %v cycles/word, want ≈1", res.CyclesPerWord)
	}
	if res.CyclesPerWord < 1 {
		t.Fatalf("scalar %v cycles/word beats the popcount port bound", res.CyclesPerWord)
	}
}

func TestSIMDNoHWIsNotFaster(t *testing.T) {
	// The paper's Section V-A conclusion: for every width, SIMD without a
	// hardware popcount does not beat scalar — and with extract/insert
	// contention it is strictly slower.
	scalar, err := Run(Scalar, 512, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []int{2, 4, 8} {
		simd, err := Run(SIMDNoHW, 512, v)
		if err != nil {
			t.Fatal(err)
		}
		if simd.CyclesPerWord < scalar.CyclesPerWord {
			t.Fatalf("v=%d: SIMD %v cycles/word beats scalar %v",
				v, simd.CyclesPerWord, scalar.CyclesPerWord)
		}
		// Shuffle port does 2 ops per word → ≥ 2 cycles/word.
		if simd.CyclesPerWord < 1.9 {
			t.Fatalf("v=%d: %v cycles/word below shuffle-port bound", v, simd.CyclesPerWord)
		}
	}
}

func TestSIMDHWScalesWithV(t *testing.T) {
	for _, v := range []int{2, 4, 8} {
		res, err := Run(SIMDHW, 512, v)
		if err != nil {
			t.Fatal(err)
		}
		want := 1 / float64(v)
		if res.CyclesPerWord > want*1.1 {
			t.Fatalf("v=%d: %v cycles/word, want ≈%v", v, res.CyclesPerWord, want)
		}
	}
}

// TestSimulatorMatchesAnalyticalModel cross-validates the two Section V
// artifacts: the greedy port simulation must land within 10% of the
// closed-form model for every scenario and width.
func TestSimulatorMatchesAnalyticalModel(t *testing.T) {
	m := perfmodel.Default()
	const words = 1024
	scalar, err := Run(Scalar, words, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(scalar.CyclesPerWord-m.ScalarCyclesPerWord()) > 0.1 {
		t.Fatalf("scalar: sim %v vs model %v", scalar.CyclesPerWord, m.ScalarCyclesPerWord())
	}
	for _, v := range []int{2, 4, 8} {
		simd, err := Run(SIMDNoHW, words, v)
		if err != nil {
			t.Fatal(err)
		}
		predicted, err := m.SIMDCyclesPerWord(v)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(simd.CyclesPerWord-predicted)/predicted > 0.1 {
			t.Fatalf("SIMD v=%d: sim %v vs model %v", v, simd.CyclesPerWord, predicted)
		}
		hw, err := Run(SIMDHW, words, v)
		if err != nil {
			t.Fatal(err)
		}
		predictedHW, err := m.HWCyclesPerWord(v)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(hw.CyclesPerWord-predictedHW)/predictedHW > 0.1 {
			t.Fatalf("HW v=%d: sim %v vs model %v", v, hw.CyclesPerWord, predictedHW)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(Scalar, 0, 1); err == nil {
		t.Fatal("zero words accepted")
	}
	if _, err := Build(SIMDNoHW, 4, 0); err == nil {
		t.Fatal("zero lanes accepted")
	}
	if _, err := Build(Scenario(99), 4, 1); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestScheduleDetectsBadDeps(t *testing.T) {
	p := &Program{Instrs: []Instr{{Op: OpAnd, Deps: []int{5}}}}
	if _, err := p.Schedule(); err == nil {
		t.Fatal("invalid dep accepted")
	}
	// Self-dependency can never become ready.
	p = &Program{Instrs: []Instr{{Op: OpAnd, Deps: []int{0}}}}
	if _, err := p.Schedule(); err == nil {
		t.Fatal("dependency cycle accepted")
	}
}

func TestScheduleTinyPrograms(t *testing.T) {
	// A single instruction takes one cycle.
	p := &Program{Instrs: []Instr{{Op: OpAnd}}}
	c, err := p.Schedule()
	if err != nil || c != 1 {
		t.Fatalf("single instr: %d cycles, %v", c, err)
	}
	// A dependent chain of 3 takes 3 cycles.
	p = &Program{}
	a := p.add(OpAnd)
	b := p.add(OpPopcnt, a)
	p.add(OpAdd, b)
	c, err = p.Schedule()
	if err != nil || c != 3 {
		t.Fatalf("chain: %d cycles, %v", c, err)
	}
	// Two independent ANDs co-issue on the two ALU ports.
	p = &Program{}
	p.add(OpAnd)
	p.add(OpAnd)
	c, err = p.Schedule()
	if err != nil || c != 1 {
		t.Fatalf("co-issue: %d cycles, %v", c, err)
	}
	// Three independent ANDs need two cycles (two ALU ports).
	p = &Program{}
	p.add(OpAnd)
	p.add(OpAnd)
	p.add(OpAnd)
	c, err = p.Schedule()
	if err != nil || c != 2 {
		t.Fatalf("port pressure: %d cycles, %v", c, err)
	}
	// Two extracts serialize on the single shuffle port.
	p = &Program{}
	p.add(OpExtract)
	p.add(OpInsert)
	c, err = p.Schedule()
	if err != nil || c != 2 {
		t.Fatalf("shuffle contention: %d cycles, %v", c, err)
	}
}

func TestStrings(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		if op.String() == "" {
			t.Fatalf("empty name for op %d", op)
		}
	}
	for _, sc := range []Scenario{Scalar, SIMDNoHW, SIMDHW, Scenario(42)} {
		if sc.String() == "" {
			t.Fatalf("empty name for scenario %d", sc)
		}
	}
}

func TestWordsNotMultipleOfLanes(t *testing.T) {
	// 10 words with v=4 → chunks of 4,4,2; must still schedule correctly.
	res, err := Run(SIMDNoHW, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles < 20 { // 2 shuffle ops per word minimum
		t.Fatalf("suspiciously fast: %d cycles for 10 words", res.Cycles)
	}
	if _, err := Run(SIMDHW, 10, 4); err != nil {
		t.Fatal(err)
	}
}
