// Package assoc implements a small genome-wide association study (GWAS)
// substrate — the application domain the paper's introduction motivates
// ("LD is deployed to identify SNPs associated with certain traits of
// interest"). It simulates phenotypes over a haplotype matrix, runs
// per-SNP allelic association tests, and post-processes hits with
// LD-based clumping so that each associated region is reported once.
//
// The association counts reuse the repository's bit-parallel machinery:
// the case set is a bit vector, so the case-allele count of every SNP is
// one AND+POPCNT pass — the same word kernel LD itself is built on.
package assoc

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/core"
	"ldgemm/internal/popcount"
	"ldgemm/internal/stats"
)

// Effect is one causal SNP with its log-odds effect size.
type Effect struct {
	SNP  int
	Beta float64
}

// PhenotypeConfig parameterizes phenotype simulation under a logistic
// liability model: P(case) = sigmoid(intercept + Σ βᵢ·alleleᵢ), with the
// intercept solved so the expected prevalence matches.
type PhenotypeConfig struct {
	Seed    int64
	Causal  []Effect
	Targets struct{} // reserved
	// Prevalence is the target case fraction (default 0.5).
	Prevalence float64
}

// Phenotypes holds the simulated case/control assignment as a bit vector
// over samples (a one-SNP bitmat column, so the popcount kernels apply).
type Phenotypes struct {
	Cases    *bitmat.Matrix // 1 × samples; set bit = case
	NumCases int
	Samples  int
}

// CaseWords exposes the packed case mask.
func (p *Phenotypes) CaseWords() []uint64 { return p.Cases.SNP(0) }

// IsCase reports sample s's status.
func (p *Phenotypes) IsCase(s int) bool { return p.Cases.Bit(0, s) }

// Simulate draws case/control phenotypes for the samples of g.
func Simulate(g *bitmat.Matrix, cfg PhenotypeConfig) (*Phenotypes, error) {
	if cfg.Prevalence == 0 {
		cfg.Prevalence = 0.5
	}
	if cfg.Prevalence <= 0 || cfg.Prevalence >= 1 {
		return nil, fmt.Errorf("assoc: invalid prevalence %v", cfg.Prevalence)
	}
	for _, e := range cfg.Causal {
		if e.SNP < 0 || e.SNP >= g.SNPs {
			return nil, fmt.Errorf("assoc: causal SNP %d outside 0..%d", e.SNP, g.SNPs-1)
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Solve the intercept so mean P(case) ≈ prevalence, by bisection on
	// the empirical mean of the liabilities.
	liab := make([]float64, g.Samples)
	for s := 0; s < g.Samples; s++ {
		v := 0.0
		for _, e := range cfg.Causal {
			if g.Bit(e.SNP, s) {
				v += e.Beta
			}
		}
		liab[s] = v
	}
	intercept := solveIntercept(liab, cfg.Prevalence)

	ph := &Phenotypes{Cases: bitmat.New(1, g.Samples), Samples: g.Samples}
	for s, v := range liab {
		if rng.Float64() < sigmoid(intercept+v) {
			ph.Cases.SetBit(0, s)
			ph.NumCases++
		}
	}
	return ph, nil
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// solveIntercept bisects for c with mean(sigmoid(c + liab)) = prevalence.
func solveIntercept(liab []float64, prevalence float64) float64 {
	mean := func(c float64) float64 {
		s := 0.0
		for _, v := range liab {
			s += sigmoid(c + v)
		}
		return s / float64(len(liab))
	}
	lo, hi := -30.0, 30.0
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if mean(mid) < prevalence {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// SNPResult is one SNP's association test.
type SNPResult struct {
	SNP       int
	Chi2      float64
	PValue    float64
	OddsRatio float64
	// Counts of the 2×2 allele-by-status table.
	CaseDerived, CaseAncestral, ControlDerived, ControlAncestral int
}

// Test runs the allelic 2×2 χ² association test for every SNP. The
// case-allele counts are computed bit-parallel: POPCNT(sᵢ & caseMask).
func Test(g *bitmat.Matrix, ph *Phenotypes) ([]SNPResult, error) {
	if ph.Samples != g.Samples {
		return nil, fmt.Errorf("assoc: phenotype samples %d != matrix samples %d", ph.Samples, g.Samples)
	}
	caseWords := ph.CaseWords()
	nCases := ph.NumCases
	nControls := g.Samples - nCases
	out := make([]SNPResult, g.SNPs)
	for i := 0; i < g.SNPs; i++ {
		derived := g.DerivedCount(i)
		caseDerived := popcount.AndCount(g.SNP(i), caseWords)
		r := SNPResult{
			SNP:              i,
			CaseDerived:      caseDerived,
			CaseAncestral:    nCases - caseDerived,
			ControlDerived:   derived - caseDerived,
			ControlAncestral: nControls - (derived - caseDerived),
		}
		r.Chi2 = chi2x2(r.CaseDerived, r.CaseAncestral, r.ControlDerived, r.ControlAncestral)
		pv, err := stats.ChiSquarePValue(r.Chi2, 1)
		if err != nil {
			return nil, err
		}
		r.PValue = pv
		// Haldane-corrected odds ratio.
		r.OddsRatio = (float64(r.CaseDerived) + 0.5) * (float64(r.ControlAncestral) + 0.5) /
			((float64(r.CaseAncestral) + 0.5) * (float64(r.ControlDerived) + 0.5))
		out[i] = r
	}
	return out, nil
}

// chi2x2 is the Pearson χ² of a 2×2 table (0 when any margin is empty).
func chi2x2(a, b, c, d int) float64 {
	n := float64(a + b + c + d)
	if n == 0 {
		return 0
	}
	r1, r2 := float64(a+b), float64(c+d)
	c1, c2 := float64(a+c), float64(b+d)
	if r1 == 0 || r2 == 0 || c1 == 0 || c2 == 0 {
		return 0
	}
	det := float64(a)*float64(d) - float64(b)*float64(c)
	return n * det * det / (r1 * r2 * c1 * c2)
}

// ClumpOptions configures LD-based clumping of association results
// (PLINK's --clump): hits are processed strongest-first; SNPs within the
// window in LD above R2 with an index SNP join its clump instead of
// founding their own.
type ClumpOptions struct {
	// PThreshold is the maximum p-value for a SNP to be considered at
	// all (default 1e-4).
	PThreshold float64
	// R2 is the LD threshold for clump membership (default 0.5).
	R2 float64
	// WindowSNPs is the maximum index distance for membership
	// (default 250).
	WindowSNPs int
}

func (o ClumpOptions) normalize() (ClumpOptions, error) {
	if o.PThreshold == 0 {
		o.PThreshold = 1e-4
	}
	if o.R2 == 0 {
		o.R2 = 0.5
	}
	if o.WindowSNPs == 0 {
		o.WindowSNPs = 250
	}
	if o.PThreshold <= 0 || o.PThreshold > 1 || o.R2 <= 0 || o.R2 > 1 || o.WindowSNPs < 1 {
		return o, fmt.Errorf("assoc: invalid clump options %+v", o)
	}
	return o, nil
}

// Clump is one reported association region.
type Clump struct {
	Index   SNPResult
	Members []int // SNPs absorbed into this clump (excluding the index)
}

// ClumpResults groups significant hits into LD clumps.
func ClumpResults(g *bitmat.Matrix, results []SNPResult, opt ClumpOptions) ([]Clump, error) {
	opt, err := opt.normalize()
	if err != nil {
		return nil, err
	}
	hits := make([]SNPResult, 0, len(results))
	for _, r := range results {
		if r.PValue <= opt.PThreshold {
			hits = append(hits, r)
		}
	}
	sort.Slice(hits, func(a, b int) bool {
		if hits[a].PValue != hits[b].PValue {
			return hits[a].PValue < hits[b].PValue
		}
		return hits[a].SNP < hits[b].SNP
	})
	claimed := map[int]int{} // SNP → clump index
	var clumps []Clump
	for _, h := range hits {
		if _, taken := claimed[h.SNP]; taken {
			continue
		}
		ci := len(clumps)
		clumps = append(clumps, Clump{Index: h})
		claimed[h.SNP] = ci
		lo := max(0, h.SNP-opt.WindowSNPs)
		hi := min(g.SNPs-1, h.SNP+opt.WindowSNPs)
		for j := lo; j <= hi; j++ {
			if j == h.SNP {
				continue
			}
			if _, taken := claimed[j]; taken {
				continue
			}
			if core.PairLD(g, h.SNP, j).R2 >= opt.R2 {
				claimed[j] = ci
				clumps[ci].Members = append(clumps[ci].Members, j)
			}
		}
	}
	return clumps, nil
}
