package assoc

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/stats"
)

// Quantitative traits (height, expression levels, biomarker
// concentrations) are tested with a per-SNP linear model rather than a
// 2×2 table. For a haploid 0/1 allele x and trait y, the score test
// statistic is n·r² where r is the Pearson correlation — asymptotically
// χ²(1) under the null, the same machinery the LD significance scan uses.

// QuantConfig parameterizes quantitative phenotype simulation:
// y = Σ βᵢ·alleleᵢ + ε, ε ~ N(0, σ²).
type QuantConfig struct {
	Seed   int64
	Causal []Effect
	// NoiseSD is the environmental standard deviation (default 1).
	NoiseSD float64
}

// SimulateQuantitative draws a quantitative trait for every sample.
func SimulateQuantitative(g *bitmat.Matrix, cfg QuantConfig) ([]float64, error) {
	if cfg.NoiseSD == 0 {
		cfg.NoiseSD = 1
	}
	if cfg.NoiseSD < 0 {
		return nil, fmt.Errorf("assoc: negative noise SD %v", cfg.NoiseSD)
	}
	for _, e := range cfg.Causal {
		if e.SNP < 0 || e.SNP >= g.SNPs {
			return nil, fmt.Errorf("assoc: causal SNP %d outside 0..%d", e.SNP, g.SNPs-1)
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	y := make([]float64, g.Samples)
	for s := range y {
		v := rng.NormFloat64() * cfg.NoiseSD
		for _, e := range cfg.Causal {
			if g.Bit(e.SNP, s) {
				v += e.Beta
			}
		}
		y[s] = v
	}
	return y, nil
}

// QuantResult is one SNP's quantitative association test.
type QuantResult struct {
	SNP int
	// Beta is the estimated per-allele effect (simple regression slope).
	Beta float64
	// R is the Pearson correlation between allele and trait.
	R float64
	// Chi2 is the score statistic n·r².
	Chi2 float64
	// PValue is the χ²(1) tail probability.
	PValue float64
}

// TestQuantitative runs the per-SNP score test. Sums over carriers are
// computed by iterating set bits of each SNP word, so the cost per SNP is
// proportional to its carrier count rather than the sample size.
func TestQuantitative(g *bitmat.Matrix, y []float64) ([]QuantResult, error) {
	if len(y) != g.Samples {
		return nil, fmt.Errorf("assoc: %d trait values for %d samples", len(y), g.Samples)
	}
	n := float64(g.Samples)
	if n == 0 {
		return nil, fmt.Errorf("assoc: no samples")
	}
	meanY := stats.Mean(y)
	var ssY float64
	for _, v := range y {
		d := v - meanY
		ssY += d * d
	}
	out := make([]QuantResult, g.SNPs)
	for i := 0; i < g.SNPs; i++ {
		carriers := g.DerivedCount(i)
		// Σ y over carriers, via set-bit iteration.
		var sumYC float64
		words := g.SNP(i)
		for w, word := range words {
			for word != 0 {
				s := w*bitmat.WordBits + bits.TrailingZeros64(word)
				sumYC += y[s]
				word &= word - 1
			}
		}
		px := float64(carriers) / n
		r := QuantResult{SNP: i}
		ssX := float64(carriers) * (1 - px) // Σ(x−p̄)² for 0/1 x
		if ssX > 0 && ssY > 0 {
			cov := sumYC - float64(carriers)*meanY // Σ(x−p̄)(y−ȳ)
			r.Beta = cov / ssX
			r.R = cov / math.Sqrt(ssX*ssY)
			r.Chi2 = n * r.R * r.R
		}
		pv, err := stats.ChiSquarePValue(r.Chi2, 1)
		if err != nil {
			return nil, err
		}
		r.PValue = pv
		out[i] = r
	}
	return out, nil
}
