package assoc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/popsim"
)

func TestSimulatePrevalence(t *testing.T) {
	g, err := popsim.Mosaic(50, 2000, popsim.MosaicConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, prev := range []float64{0.2, 0.5, 0.8} {
		ph, err := Simulate(g, PhenotypeConfig{Seed: 2, Prevalence: prev})
		if err != nil {
			t.Fatal(err)
		}
		got := float64(ph.NumCases) / float64(ph.Samples)
		if math.Abs(got-prev) > 0.05 {
			t.Fatalf("prevalence %v: got %v", prev, got)
		}
	}
}

func TestSimulateValidation(t *testing.T) {
	g := bitmat.New(5, 10)
	if _, err := Simulate(g, PhenotypeConfig{Prevalence: 1.5}); err == nil {
		t.Fatal("prevalence > 1 accepted")
	}
	if _, err := Simulate(g, PhenotypeConfig{Causal: []Effect{{SNP: 9, Beta: 1}}}); err == nil {
		t.Fatal("out-of-range causal SNP accepted")
	}
}

func TestChi2x2(t *testing.T) {
	// Classic example: perfectly balanced table has χ² = 0.
	if got := chi2x2(25, 25, 25, 25); got != 0 {
		t.Fatalf("balanced table χ² = %v", got)
	}
	// Known value: table (10, 20, 30, 40): χ² = 100·(400−600)²/(30·70·40·60).
	want := 100.0 * 200 * 200 / (30 * 70 * 40 * 60)
	if got := chi2x2(10, 20, 30, 40); math.Abs(got-want) > 1e-12 {
		t.Fatalf("χ² = %v, want %v", got, want)
	}
	if chi2x2(0, 0, 0, 0) != 0 || chi2x2(5, 5, 0, 0) != 0 {
		t.Fatal("degenerate margins not handled")
	}
}

// naiveTest computes the 2×2 counts per sample, as the oracle.
func naiveTest(g *bitmat.Matrix, ph *Phenotypes, i int) (cd, ca, nd, na int) {
	for s := 0; s < g.Samples; s++ {
		der := g.Bit(i, s)
		if ph.IsCase(s) {
			if der {
				cd++
			} else {
				ca++
			}
		} else {
			if der {
				nd++
			} else {
				na++
			}
		}
	}
	return
}

func TestTestCountsMatchNaive(t *testing.T) {
	g, err := popsim.Mosaic(30, 333, popsim.MosaicConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ph, err := Simulate(g, PhenotypeConfig{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Test(g, ph)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		cd, ca, nd, na := naiveTest(g, ph, i)
		if r.CaseDerived != cd || r.CaseAncestral != ca || r.ControlDerived != nd || r.ControlAncestral != na {
			t.Fatalf("SNP %d counts (%d,%d,%d,%d), want (%d,%d,%d,%d)",
				i, r.CaseDerived, r.CaseAncestral, r.ControlDerived, r.ControlAncestral, cd, ca, nd, na)
		}
		if r.PValue < 0 || r.PValue > 1 {
			t.Fatalf("SNP %d p-value %v", i, r.PValue)
		}
		if r.OddsRatio <= 0 {
			t.Fatalf("SNP %d odds ratio %v", i, r.OddsRatio)
		}
	}
}

func TestTestSampleMismatch(t *testing.T) {
	g := bitmat.New(3, 10)
	ph := &Phenotypes{Cases: bitmat.New(1, 12), Samples: 12}
	if _, err := Test(g, ph); err == nil {
		t.Fatal("sample mismatch accepted")
	}
}

// TestEndToEndGWAS plants a causal SNP and checks the association scan
// ranks it (or a SNP in strong LD with it) first, and that clumping
// collapses the LD neighborhood into one clump containing it.
func TestEndToEndGWAS(t *testing.T) {
	g, err := popsim.Mosaic(200, 3000, popsim.MosaicConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	const causal = 100
	ph, err := Simulate(g, PhenotypeConfig{
		Seed: 6, Causal: []Effect{{SNP: causal, Beta: 1.4}}, Prevalence: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Test(g, ph)
	if err != nil {
		t.Fatal(err)
	}
	best := res[0]
	for _, r := range res {
		if r.Chi2 > best.Chi2 {
			best = r
		}
	}
	if best.PValue > 1e-10 {
		t.Fatalf("no strong hit: best p = %v at SNP %d", best.PValue, best.SNP)
	}
	clumps, err := ClumpResults(g, res, ClumpOptions{PThreshold: 1e-6, R2: 0.2, WindowSNPs: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(clumps) == 0 {
		t.Fatal("no clumps found")
	}
	// The top clump must contain the causal SNP (as index or member).
	top := clumps[0]
	found := top.Index.SNP == causal
	for _, m := range top.Members {
		if m == causal {
			found = true
		}
	}
	if !found {
		t.Fatalf("top clump (index %d, %d members) does not contain causal SNP %d",
			top.Index.SNP, len(top.Members), causal)
	}
	// Clump indices must be mutually exclusive: no index inside another
	// clump's member list.
	member := map[int]bool{}
	for _, c := range clumps {
		for _, m := range c.Members {
			member[m] = true
		}
	}
	for _, c := range clumps {
		if member[c.Index.SNP] {
			t.Fatalf("clump index %d is also a member elsewhere", c.Index.SNP)
		}
	}
}

func TestClumpValidation(t *testing.T) {
	g := bitmat.New(5, 10)
	if _, err := ClumpResults(g, nil, ClumpOptions{R2: 2}); err == nil {
		t.Fatal("r2 > 1 accepted")
	}
	if _, err := ClumpResults(g, nil, ClumpOptions{PThreshold: -1}); err == nil {
		t.Fatal("negative p threshold accepted")
	}
	clumps, err := ClumpResults(g, nil, ClumpOptions{})
	if err != nil || len(clumps) != 0 {
		t.Fatalf("empty results: %v %v", clumps, err)
	}
}

// Property: under the null (no causal SNPs) the p-value distribution is
// roughly uniform — the fraction below 0.05 stays near 5%.
func TestQuickNullCalibration(t *testing.T) {
	f := func(seed int64) bool {
		g, err := popsim.Mosaic(120, 600, popsim.MosaicConfig{Seed: seed})
		if err != nil {
			return false
		}
		ph, err := Simulate(g, PhenotypeConfig{Seed: seed + 1})
		if err != nil {
			return false
		}
		res, err := Test(g, ph)
		if err != nil {
			return false
		}
		below := 0
		for _, r := range res {
			if r.PValue < 0.05 {
				below++
			}
		}
		// 120 tests at 5%: expect ≈6; allow a very loose band since SNPs
		// are correlated within haplotype blocks.
		return below <= 30
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}
