package assoc

import (
	"math"
	"testing"
	"testing/quick"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/popsim"
	"ldgemm/internal/stats"
)

// naiveQuant computes the score test from explicit per-sample vectors.
func naiveQuant(g *bitmat.Matrix, y []float64, i int) QuantResult {
	xs := make([]float64, len(y))
	for s := range y {
		if g.Bit(i, s) {
			xs[s] = 1
		}
	}
	r, _ := stats.Pearson(xs, ys(y))
	n := float64(len(y))
	chi2 := n * r * r
	pv, _ := stats.ChiSquarePValue(chi2, 1)
	// Slope via cov/var.
	mx, my := stats.Mean(xs), stats.Mean(y)
	var cov, vx float64
	for s := range y {
		cov += (xs[s] - mx) * (y[s] - my)
		vx += (xs[s] - mx) * (xs[s] - mx)
	}
	beta := 0.0
	if vx > 0 {
		beta = cov / vx
	}
	return QuantResult{SNP: i, Beta: beta, R: r, Chi2: chi2, PValue: pv}
}

func ys(y []float64) []float64 { return y }

func TestQuantitativeMatchesNaive(t *testing.T) {
	g, err := popsim.Mosaic(25, 300, popsim.MosaicConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	y, err := SimulateQuantitative(g, QuantConfig{Seed: 2, Causal: []Effect{{SNP: 5, Beta: 0.7}}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := TestQuantitative(g, y)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		want := naiveQuant(g, y, i)
		if math.Abs(got[i].R-want.R) > 1e-9 || math.Abs(got[i].Beta-want.Beta) > 1e-9 ||
			math.Abs(got[i].Chi2-want.Chi2) > 1e-6 {
			t.Fatalf("SNP %d: %+v vs %+v", i, got[i], want)
		}
	}
}

func TestQuantitativeFindsCausal(t *testing.T) {
	g, err := popsim.Mosaic(150, 2500, popsim.MosaicConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	const causal = 70
	y, err := SimulateQuantitative(g, QuantConfig{Seed: 4, Causal: []Effect{{SNP: causal, Beta: 0.5}}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := TestQuantitative(g, y)
	if err != nil {
		t.Fatal(err)
	}
	best := res[0]
	for _, r := range res {
		if r.Chi2 > best.Chi2 {
			best = r
		}
	}
	if best.PValue > 1e-8 {
		t.Fatalf("causal signal weak: best p %v at SNP %d", best.PValue, best.SNP)
	}
	// Best hit within the causal LD neighborhood; effect sign recovered.
	if d := best.SNP - causal; d < -30 || d > 30 {
		t.Fatalf("best hit at SNP %d, causal at %d", best.SNP, causal)
	}
	if res[causal].Beta < 0.2 {
		t.Fatalf("causal beta estimate %v, simulated 0.5", res[causal].Beta)
	}
}

func TestQuantitativeValidation(t *testing.T) {
	g := bitmat.New(3, 10)
	if _, err := SimulateQuantitative(g, QuantConfig{NoiseSD: -1}); err == nil {
		t.Fatal("negative noise accepted")
	}
	if _, err := SimulateQuantitative(g, QuantConfig{Causal: []Effect{{SNP: 7}}}); err == nil {
		t.Fatal("bad causal SNP accepted")
	}
	if _, err := TestQuantitative(g, make([]float64, 9)); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := TestQuantitative(bitmat.New(2, 0), nil); err == nil {
		t.Fatal("zero samples accepted")
	}
}

// Property: monomorphic SNPs get χ²=0, p=1; all p-values in [0,1].
func TestQuickQuantitative(t *testing.T) {
	f := func(seed int64, s8 uint8) bool {
		samples := int(s8%150) + 10
		g, err := popsim.Mosaic(10, samples, popsim.MosaicConfig{Seed: seed})
		if err != nil {
			return false
		}
		y, err := SimulateQuantitative(g, QuantConfig{Seed: seed + 1})
		if err != nil {
			return false
		}
		res, err := TestQuantitative(g, y)
		if err != nil {
			return false
		}
		for _, r := range res {
			if r.PValue < 0 || r.PValue > 1 || math.IsNaN(r.Chi2) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
