package bitmat

import (
	"math/rand"
	"path/filepath"
	"testing"
)

// TestSliceSource: a slice of any source behaves exactly like a resident
// copy of those rows — same dims, same panels, same fingerprint.
func TestSliceSource(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := New(90, 130)
	for i := range m.Data {
		m.Data[i] = rng.Uint64()
	}
	for i := 0; i < m.SNPs; i++ {
		m.Slice(i, i+1).Data[m.Words-1] &= m.PadMask()
	}
	path := filepath.Join(t.TempDir(), "g.ldbm")
	if err := WriteFile(path, m); err != nil {
		t.Fatal(err)
	}
	windowed, err := OpenFile(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer windowed.Close()

	for _, parent := range []Source{NewMemSource(m), windowed} {
		for _, r := range [][2]int{{0, 90}, {13, 57}, {0, 0}, {89, 90}} {
			lo, hi := r[0], r[1]
			want := m.Slice(lo, hi)
			s, err := NewSliceSource(parent, lo, hi)
			if err != nil {
				t.Fatal(err)
			}
			if s.NumSNPs() != hi-lo || s.NumSamples() != m.Samples {
				t.Fatalf("slice [%d,%d) dims %d×%d", lo, hi, s.NumSNPs(), s.NumSamples())
			}
			if s.Fingerprint() != want.Fingerprint() {
				t.Fatalf("slice [%d,%d) fingerprint differs from resident copy", lo, hi)
			}
			if hi > lo {
				p, err := s.Panel(0, hi-lo, New(hi-lo, m.Samples))
				if err != nil {
					t.Fatal(err)
				}
				if !p.Equal(want) {
					t.Fatalf("slice [%d,%d) panel differs", lo, hi)
				}
			}
			if _, err := s.Panel(0, hi-lo+1, nil); err == nil {
				t.Fatal("out-of-range panel accepted")
			}
		}
	}
	if _, err := NewSliceSource(NewMemSource(m), 5, 999); err == nil {
		t.Fatal("out-of-range slice accepted")
	}
}
