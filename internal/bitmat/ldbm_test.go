package bitmat

import (
	"os"
	"path/filepath"
	"testing"
)

func testMatrix(t *testing.T, snps, samples int) *Matrix {
	t.Helper()
	m := New(snps, samples)
	// A deterministic, irregular pattern exercising every word position.
	for i := 0; i < snps; i++ {
		for s := 0; s < samples; s++ {
			if (i*31+s*7)%5 == 0 || (i+s)%97 == 3 {
				m.SetBit(i, s)
			}
		}
	}
	return m
}

func TestLDBMRoundTrip(t *testing.T) {
	for _, dims := range [][2]int{{0, 0}, {1, 1}, {17, 5}, {64, 64}, {130, 201}} {
		m := testMatrix(t, dims[0], dims[1])
		path := filepath.Join(t.TempDir(), "m.ldbm")
		if err := WriteFile(path, m); err != nil {
			t.Fatalf("WriteFile(%v): %v", dims, err)
		}
		for _, mapped := range []bool{false, true} {
			f, err := OpenFile(path, mapped)
			if err != nil {
				t.Fatalf("OpenFile(mapped=%v): %v", mapped, err)
			}
			if f.NumSNPs() != m.SNPs || f.NumSamples() != m.Samples {
				t.Fatalf("dims %d×%d, want %d×%d", f.NumSNPs(), f.NumSamples(), m.SNPs, m.Samples)
			}
			if f.Fingerprint() != m.Fingerprint() {
				t.Fatalf("fingerprint %016x, want %016x", f.Fingerprint(), m.Fingerprint())
			}
			got, err := f.Load()
			if err != nil {
				t.Fatalf("Load(mapped=%v): %v", mapped, err)
			}
			if !got.Equal(m) {
				t.Fatalf("Load(mapped=%v) mismatch for dims %v", mapped, dims)
			}
			if err := f.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
		}
	}
}

func TestLDBMPanels(t *testing.T) {
	m := testMatrix(t, 73, 130)
	path := filepath.Join(t.TempDir(), "m.ldbm")
	if err := WriteFile(path, m); err != nil {
		t.Fatal(err)
	}
	for _, mapped := range []bool{false, true} {
		f, err := OpenFile(path, mapped)
		if err != nil {
			t.Fatal(err)
		}
		var buf Matrix
		for lo := 0; lo < m.SNPs; lo += 17 {
			hi := min(lo+17, m.SNPs)
			f.Prefetch(lo, hi) // must be harmless in both modes
			p, err := f.Panel(lo, hi, &buf)
			if err != nil {
				t.Fatalf("Panel(%d,%d,mapped=%v): %v", lo, hi, mapped, err)
			}
			if !p.Equal(m.Slice(lo, hi)) {
				t.Fatalf("panel [%d,%d) mismatch (mapped=%v)", lo, hi, mapped)
			}
		}
		if _, err := f.Panel(-1, 2, nil); err == nil {
			t.Fatal("negative panel range must error")
		}
		if _, err := f.Panel(0, m.SNPs+1, nil); err == nil {
			t.Fatal("overlong panel range must error")
		}
		f.Close()
	}
}

// TestLDBMStreamedWriterMatchesWhole: appending in ragged panels produces
// the same container bytes as one whole-matrix write.
func TestLDBMStreamedWriterMatchesWhole(t *testing.T) {
	m := testMatrix(t, 61, 77)
	dir := t.TempDir()
	whole := filepath.Join(dir, "whole.ldbm")
	streamed := filepath.Join(dir, "streamed.ldbm")
	if err := WriteFile(whole, m); err != nil {
		t.Fatal(err)
	}
	w, err := CreateFile(streamed, m.SNPs, m.Samples)
	if err != nil {
		t.Fatal(err)
	}
	for lo := 0; lo < m.SNPs; {
		hi := min(lo+13, m.SNPs)
		if err := w.WritePanel(m.Slice(lo, hi)); err != nil {
			t.Fatalf("WritePanel(%d,%d): %v", lo, hi, err)
		}
		lo = hi
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	a, _ := os.ReadFile(whole)
	b, _ := os.ReadFile(streamed)
	if string(a) != string(b) {
		t.Fatal("streamed container differs from whole-matrix write")
	}
}

func TestLDBMWriterShortWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "short.ldbm")
	w, err := CreateFile(path, 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WritePanel(New(4, 8)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err == nil {
		t.Fatal("Close after a short write must error")
	}
}

func TestLDBMOpenRejectsCorrupt(t *testing.T) {
	m := testMatrix(t, 9, 30)
	path := filepath.Join(t.TempDir(), "m.ldbm")
	if err := WriteFile(path, m); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	write := func(b []byte) string {
		p := filepath.Join(t.TempDir(), "bad.ldbm")
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	for name, mut := range map[string]func([]byte) []byte{
		"magic":     func(b []byte) []byte { c := append([]byte(nil), b...); c[0] = 'X'; return c },
		"version":   func(b []byte) []byte { c := append([]byte(nil), b...); c[4] = 9; return c },
		"truncated": func(b []byte) []byte { return b[:len(b)-3] },
		"padded":    func(b []byte) []byte { return append(append([]byte(nil), b...), 0) },
		"short":     func(b []byte) []byte { return b[:10] },
	} {
		if _, err := OpenFile(write(mut(data)), false); err == nil {
			t.Fatalf("%s: corrupt container must not open", name)
		}
	}
}

func TestMemSource(t *testing.T) {
	m := testMatrix(t, 20, 40)
	s := NewMemSource(m)
	if s.NumSNPs() != 20 || s.NumSamples() != 40 {
		t.Fatal("MemSource dims")
	}
	if s.Fingerprint() != m.Fingerprint() {
		t.Fatal("MemSource fingerprint")
	}
	p, err := s.Panel(3, 9, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(m.Slice(3, 9)) {
		t.Fatal("MemSource panel mismatch")
	}
	if &p.Data[0] != &m.Data[3*m.Words] {
		t.Fatal("MemSource panel must be zero-copy")
	}
	if _, err := s.Panel(5, 30, nil); err == nil {
		t.Fatal("out-of-range panel must error")
	}
}
