package bitmat

import (
	"fmt"
	"math/bits"
)

// Mask is a validity mask with the same shape and storage scheme as Matrix.
// A set bit means the sample carries a valid allelic state at that SNP; a
// clear bit marks an alignment gap or ambiguous character (Sec. VII of the
// paper, "Considering alignment gaps"). Padding bits are zero, i.e. invalid,
// which composes correctly with the masked kernels: an invalid position can
// never contribute to a count.
type Mask struct {
	Matrix
}

// NewMask returns a mask with every in-range sample bit valid.
func NewMask(snps, samples int) *Mask {
	m := New(snps, samples)
	fill := m.PadMask()
	for i := 0; i < snps; i++ {
		words := m.SNP(i)
		for w := range words {
			words[w] = ^uint64(0)
		}
		if len(words) > 0 {
			words[len(words)-1] = fill
		}
	}
	return &Mask{Matrix: *m}
}

// MaskFromColumns builds a mask from SNP-major validity columns: nonzero
// means valid.
func MaskFromColumns(cols [][]byte) (*Mask, error) {
	m, err := FromColumns(cols)
	if err != nil {
		return nil, err
	}
	return &Mask{Matrix: *m}, nil
}

// Invalidate marks sample s at SNP i as a gap/ambiguous state.
func (k *Mask) Invalidate(snp, sample int) { k.ClearBit(snp, sample) }

// Validate marks sample s at SNP i as a valid allelic state.
func (k *Mask) Validate(snp, sample int) { k.SetBit(snp, sample) }

// ValidCount returns the number of valid samples at SNP i.
func (k *Mask) ValidCount(i int) int { return k.DerivedCount(i) }

// PairValidCount returns popcount(cᵢ & cⱼ): the number of samples valid at
// both SNPs, the c_ij of Sec. VII.
func (k *Mask) PairValidCount(i, j int) int {
	a, b := k.SNP(i), k.SNP(j)
	n := 0
	for w := range a {
		n += bits.OnesCount64(a[w] & b[w])
	}
	return n
}

// ApplyTo zeroes every matrix bit the mask marks invalid, enforcing the
// invariant s = s & c that the masked kernels assume. The matrix is
// modified in place.
func (k *Mask) ApplyTo(m *Matrix) error {
	if k.SNPs != m.SNPs || k.Samples != m.Samples {
		return fmt.Errorf("bitmat: mask %dx%d does not match matrix %dx%d",
			k.SNPs, k.Samples, m.SNPs, m.Samples)
	}
	for w := range m.Data {
		m.Data[w] &= k.Data[w]
	}
	return nil
}
