//go:build !unix

package bitmat

import "fmt"

// mmap is unavailable off unix; callers fall back to windowed reads.
func (f *File) mmap(size int64) error {
	return fmt.Errorf("mmap is not supported on this platform")
}

func munmap(b []byte) error { return nil }

func madvise(b []byte) {}
