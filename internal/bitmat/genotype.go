package bitmat

import (
	"fmt"
	"math/bits"
)

// Genotype codes stored in the 2-bit packed GenotypeMatrix. The values
// follow the PLINK .bed convention so that the seqio .bed reader/writer can
// round-trip the packed words unchanged.
const (
	GenoHomRef  = 0b00 // homozygous ancestral: 0 derived copies
	GenoMissing = 0b01 // missing genotype
	GenoHet     = 0b10 // heterozygous: 1 derived copy
	GenoHomAlt  = 0b11 // homozygous derived: 2 derived copies
)

// GenosPerWord is the number of 2-bit genotypes packed per 64-bit word.
const GenosPerWord = 32

// GenotypeMatrix is a 2-bit packed diploid genotype matrix, variant-major,
// used by the PLINK-like baseline (the paper notes PLINK 1.9 operates on
// genotypes rather than alleles). Padding fields beyond Samples are set to
// GenoMissing so they are excluded from every count, mirroring .bed padding
// semantics in effect (missing never contributes).
type GenotypeMatrix struct {
	SNPs    int
	Samples int
	Words   int // words per SNP: ceil(Samples/32)
	Data    []uint64
}

// GenoWordsFor returns the number of words per SNP for a sample count.
func GenoWordsFor(samples int) int {
	return (samples + GenosPerWord - 1) / GenosPerWord
}

// NewGenotypeMatrix returns a matrix with every genotype GenoHomRef and
// padding fields GenoMissing.
func NewGenotypeMatrix(snps, samples int) *GenotypeMatrix {
	if snps < 0 || samples < 0 {
		panic(fmt.Sprintf("bitmat: negative genotype dimension %dx%d", snps, samples))
	}
	w := GenoWordsFor(samples)
	g := &GenotypeMatrix{SNPs: snps, Samples: samples, Words: w, Data: make([]uint64, snps*w)}
	// Mark padding fields missing.
	if r := samples % GenosPerWord; r != 0 && w > 0 {
		var pad uint64
		for f := r; f < GenosPerWord; f++ {
			pad |= uint64(GenoMissing) << (2 * uint(f))
		}
		for i := 0; i < snps; i++ {
			g.Data[i*w+w-1] |= pad
		}
	}
	return g
}

// SNP returns the packed words of variant i (aliasing the matrix).
func (g *GenotypeMatrix) SNP(i int) []uint64 {
	return g.Data[i*g.Words : (i+1)*g.Words : (i+1)*g.Words]
}

// Get returns the 2-bit genotype code of sample s at variant i.
func (g *GenotypeMatrix) Get(snp, sample int) uint8 {
	g.check(snp, sample)
	w := g.Data[snp*g.Words+sample/GenosPerWord]
	return uint8(w >> (2 * (uint(sample) % GenosPerWord)) & 0b11)
}

// Set stores a 2-bit genotype code for sample s at variant i.
func (g *GenotypeMatrix) Set(snp, sample int, code uint8) {
	g.check(snp, sample)
	if code > 0b11 {
		panic(fmt.Sprintf("bitmat: invalid genotype code %d", code))
	}
	idx := snp*g.Words + sample/GenosPerWord
	sh := 2 * (uint(sample) % GenosPerWord)
	g.Data[idx] = g.Data[idx]&^(0b11<<sh) | uint64(code)<<sh
}

func (g *GenotypeMatrix) check(snp, sample int) {
	if snp < 0 || snp >= g.SNPs || sample < 0 || sample >= g.Samples {
		panic(fmt.Sprintf("bitmat: genotype index (%d,%d) out of range %dx%d", snp, sample, g.SNPs, g.Samples))
	}
}

// DosageOf converts a genotype code to a derived-allele dosage and validity.
func DosageOf(code uint8) (dosage int, ok bool) {
	switch code {
	case GenoHomRef:
		return 0, true
	case GenoHet:
		return 1, true
	case GenoHomAlt:
		return 2, true
	default:
		return 0, false
	}
}

// CodeOfDosage converts a dosage 0..2 to a genotype code.
func CodeOfDosage(d int) uint8 {
	switch d {
	case 0:
		return GenoHomRef
	case 1:
		return GenoHet
	case 2:
		return GenoHomAlt
	default:
		panic(fmt.Sprintf("bitmat: invalid dosage %d", d))
	}
}

// FromHaplotypes pairs consecutive haplotype rows (2s, 2s+1) of a binary
// matrix into diploid genotypes: the derived-allele dosage is the sum of the
// two haplotype bits. The haplotype matrix must have an even sample count.
func FromHaplotypes(m *Matrix) (*GenotypeMatrix, error) {
	if m.Samples%2 != 0 {
		return nil, fmt.Errorf("bitmat: FromHaplotypes: odd haplotype count %d", m.Samples)
	}
	g := NewGenotypeMatrix(m.SNPs, m.Samples/2)
	for i := 0; i < m.SNPs; i++ {
		for s := 0; s < g.Samples; s++ {
			d := 0
			if m.Bit(i, 2*s) {
				d++
			}
			if m.Bit(i, 2*s+1) {
				d++
			}
			g.Set(i, s, CodeOfDosage(d))
		}
	}
	return g, nil
}

// PseudoPhase expands diploid genotypes into a haplotype matrix with two
// consecutive rows (2s, 2s+1) per sample, assigning phase
// deterministically: a heterozygote always puts its derived allele on the
// first haplotype. The expansion preserves dosage exactly, so
// FromHaplotypes(PseudoPhase(g)) reproduces g bit for bit; real phase
// information does not exist in a genotype matrix, so any LD computed from
// the result is a pseudo-phased approximation. Missing genotypes have no
// haplotype encoding and are rejected.
func (g *GenotypeMatrix) PseudoPhase() (*Matrix, error) {
	m := New(g.SNPs, 2*g.Samples)
	for i := 0; i < g.SNPs; i++ {
		for s := 0; s < g.Samples; s++ {
			switch g.Get(i, s) {
			case GenoHomRef:
			case GenoHet:
				m.SetBit(i, 2*s)
			case GenoHomAlt:
				m.SetBit(i, 2*s)
				m.SetBit(i, 2*s+1)
			default:
				return nil, fmt.Errorf("bitmat: PseudoPhase: missing genotype at variant %d, sample %d", i, s)
			}
		}
	}
	return m, nil
}

// GenoCounts holds the per-pair joint genotype summary the PLINK-like
// baseline computes with popcount bit tricks.
type GenoCounts struct {
	N     int // samples with both genotypes present
	SumX  int // Σ dosage_x over valid pairs
	SumY  int // Σ dosage_y
	SumXX int // Σ dosage_x²
	SumYY int // Σ dosage_y²
	SumXY int // Σ dosage_x·dosage_y
}

// splitPlanes decomposes a packed genotype word into a presence mask (one
// bit per field, in the low bit of each 2-bit lane), a "has at least one
// copy" plane, and a "has two copies" plane. Lanes hold 0/1 in their low
// bit; the high bit of every lane is zero.
//
// Codes: 00→present,0; 10→present,1 copy; 11→present,2; 01→missing.
func splitPlanes(w uint64) (present, ge1, two uint64) {
	const lowBits = 0x5555555555555555 // low bit of every 2-bit lane
	hi := w >> 1 & lowBits             // high bit of each lane
	lo := w & lowBits                  // low bit of each lane
	// missing ⇔ hi==0 && lo==1; present = NOT missing = hi | ^lo
	present = (hi | ^lo) & lowBits
	ge1 = hi      // 10 and 11 both have ≥1 copy
	two = hi & lo // 11 has two copies
	return present, ge1, two
}

// PairCounts computes the joint genotype sums between variants i and j using
// bitwise plane decomposition plus popcounts — the same style of multi-
// popcount word kernel PLINK 1.9 uses, and deliberately *not* cache-blocked.
func (g *GenotypeMatrix) PairCounts(i, j int) GenoCounts {
	a, b := g.SNP(i), g.SNP(j)
	var c GenoCounts
	for w := range a {
		pa, a1, a2 := splitPlanes(a[w])
		pb, b1, b2 := splitPlanes(b[w])
		both := pa & pb
		a1, a2 = a1&both, a2&both
		b1, b2 = b1&both, b2&both
		c.N += bits.OnesCount64(both)
		// dosage = ge1 + two, so Σx = pop(a1)+pop(a2), Σx² = pop(a1)+3·pop(a2)
		na1, na2 := bits.OnesCount64(a1), bits.OnesCount64(a2)
		nb1, nb2 := bits.OnesCount64(b1), bits.OnesCount64(b2)
		c.SumX += na1 + na2
		c.SumY += nb1 + nb2
		c.SumXX += na1 + 3*na2
		c.SumYY += nb1 + 3*nb2
		// x·y = (a1+a2)(b1+b2) = a1b1 + a1b2 + a2b1 + a2b2 per lane
		c.SumXY += bits.OnesCount64(a1&b1) + bits.OnesCount64(a1&b2) +
			bits.OnesCount64(a2&b1) + bits.OnesCount64(a2&b2)
	}
	return c
}

// R2 returns the squared genotype correlation implied by the counts, the
// statistic PLINK's --r2 reports. It returns 0 when either variant is
// monomorphic among the jointly-present samples.
func (c GenoCounts) R2() float64 {
	if c.N == 0 {
		return 0
	}
	n := float64(c.N)
	covXY := float64(c.SumXY) - float64(c.SumX)*float64(c.SumY)/n
	varX := float64(c.SumXX) - float64(c.SumX)*float64(c.SumX)/n
	varY := float64(c.SumYY) - float64(c.SumY)*float64(c.SumY)/n
	if varX <= 0 || varY <= 0 {
		return 0
	}
	r := covXY / (varX * varY)
	return covXY * r // covXY²/(varX·varY) without an extra sqrt
}
