package bitmat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTranspose64Identity(t *testing.T) {
	// Diagonal is a fixed point.
	var a [64]uint64
	for i := range a {
		a[i] = 1 << uint(i)
	}
	b := a
	Transpose64(&b)
	if b != a {
		t.Fatal("diagonal not a fixed point")
	}
}

func TestTranspose64SingleBits(t *testing.T) {
	for _, rc := range [][2]int{{0, 0}, {0, 63}, {63, 0}, {5, 17}, {40, 40}, {63, 63}, {1, 62}} {
		var a [64]uint64
		a[rc[0]] = 1 << uint(rc[1])
		Transpose64(&a)
		for r := 0; r < 64; r++ {
			for c := 0; c < 64; c++ {
				want := r == rc[1] && c == rc[0]
				got := a[r]>>uint(c)&1 == 1
				if got != want {
					t.Fatalf("bit (%d,%d) transposed wrong: (%d,%d) set=%v", rc[0], rc[1], r, c, got)
				}
			}
		}
	}
}

func TestQuickTranspose64Involution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var a [64]uint64
		for i := range a {
			a[i] = rng.Uint64()
		}
		b := a
		Transpose64(&b)
		// Check the defining property on a sample of bits.
		for trial := 0; trial < 50; trial++ {
			r, c := rng.Intn(64), rng.Intn(64)
			if a[r]>>uint(c)&1 != b[c]>>uint(r)&1 {
				return false
			}
		}
		Transpose64(&b)
		return b == a // involution
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFromPackedRowsMatchesFromRows(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][2]int{{1, 1}, {63, 65}, {64, 64}, {100, 130}, {200, 70}, {65, 1}} {
		snps, samples := dims[0], dims[1]
		byteRows := make([][]byte, samples)
		packedRows := make([][]uint64, samples)
		rowWords := WordsFor(snps)
		for s := range byteRows {
			byteRows[s] = make([]byte, snps)
			packedRows[s] = make([]uint64, rowWords)
			for i := 0; i < snps; i++ {
				if rng.Intn(2) == 1 {
					byteRows[s][i] = 1
					packedRows[s][i/64] |= 1 << uint(i%64)
				}
			}
		}
		want, err := FromRows(byteRows)
		if err != nil {
			t.Fatal(err)
		}
		got, err := FromPackedRows(packedRows, snps)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("%dx%d: packed transpose mismatch", snps, samples)
		}
		if err := got.ValidatePadding(); err != nil {
			t.Fatalf("%dx%d: %v", snps, samples, err)
		}
	}
}

func TestFromPackedRowsValidation(t *testing.T) {
	if _, err := FromPackedRows([][]uint64{{0}, {0, 0}}, 64); err == nil {
		t.Fatal("ragged rows accepted")
	}
	// Stray bit beyond the SNP range.
	if _, err := FromPackedRows([][]uint64{{1 << 10}}, 10); err == nil {
		t.Fatal("stray bits accepted")
	}
	m, err := FromPackedRows(nil, 0)
	if err != nil || m.SNPs != 0 || m.Samples != 0 {
		t.Fatalf("empty input: %+v %v", m, err)
	}
}

func TestPackedRowsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, dims := range [][2]int{{30, 40}, {64, 128}, {129, 67}} {
		snps, samples := dims[0], dims[1]
		m := New(snps, samples)
		for i := 0; i < snps; i++ {
			for s := 0; s < samples; s++ {
				if rng.Intn(2) == 1 {
					m.SetBit(i, s)
				}
			}
		}
		rows := m.PackedRows()
		back, err := FromPackedRows(rows, snps)
		if err != nil {
			t.Fatal(err)
		}
		if !back.Equal(m) {
			t.Fatalf("%dx%d: PackedRows round trip mismatch", snps, samples)
		}
	}
}

func TestQuickPackedRoundTrip(t *testing.T) {
	f := func(seed int64, n8, s8 uint8) bool {
		snps := int(n8%150) + 1
		samples := int(s8%150) + 1
		rng := rand.New(rand.NewSource(seed))
		m := New(snps, samples)
		for i := 0; i < snps; i++ {
			for s := 0; s < samples; s++ {
				if rng.Intn(2) == 1 {
					m.SetBit(i, s)
				}
			}
		}
		back, err := FromPackedRows(m.PackedRows(), snps)
		return err == nil && back.Equal(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTranspose64(b *testing.B) {
	var a [64]uint64
	rng := rand.New(rand.NewSource(1))
	for i := range a {
		a[i] = rng.Uint64()
	}
	b.SetBytes(64 * 8)
	for i := 0; i < b.N; i++ {
		Transpose64(&a)
	}
}

func BenchmarkFromPackedRows(b *testing.B) {
	const snps, samples = 4096, 4096
	rng := rand.New(rand.NewSource(1))
	rows := make([][]uint64, samples)
	for s := range rows {
		rows[s] = make([]uint64, WordsFor(snps))
		for w := range rows[s] {
			rows[s][w] = rng.Uint64()
		}
	}
	b.SetBytes(int64(snps) * samples / 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FromPackedRows(rows, snps); err != nil {
			b.Fatal(err)
		}
	}
}
