package bitmat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewMaskAllValid(t *testing.T) {
	k := NewMask(3, 70)
	for i := 0; i < 3; i++ {
		if got := k.ValidCount(i); got != 70 {
			t.Fatalf("ValidCount(%d) = %d, want 70", i, got)
		}
	}
	if err := k.ValidatePadding(); err != nil {
		t.Fatalf("mask padding invariant violated: %v", err)
	}
}

func TestMaskInvalidateValidate(t *testing.T) {
	k := NewMask(2, 100)
	k.Invalidate(0, 64)
	k.Invalidate(0, 65)
	if got := k.ValidCount(0); got != 98 {
		t.Fatalf("ValidCount = %d, want 98", got)
	}
	k.Validate(0, 64)
	if got := k.ValidCount(0); got != 99 {
		t.Fatalf("ValidCount = %d, want 99", got)
	}
	if got := k.ValidCount(1); got != 100 {
		t.Fatalf("other SNP affected: %d", got)
	}
}

func TestPairValidCount(t *testing.T) {
	k := NewMask(2, 10)
	k.Invalidate(0, 1)
	k.Invalidate(0, 2)
	k.Invalidate(1, 2)
	k.Invalidate(1, 3)
	// valid at both: 10 - {1,2,3} = 7
	if got := k.PairValidCount(0, 1); got != 7 {
		t.Fatalf("PairValidCount = %d, want 7", got)
	}
	if got := k.PairValidCount(0, 0); got != 8 {
		t.Fatalf("PairValidCount(i,i) = %d, want 8", got)
	}
}

func TestMaskApplyTo(t *testing.T) {
	m := New(2, 10)
	for s := 0; s < 10; s++ {
		m.SetBit(0, s)
	}
	k := NewMask(2, 10)
	k.Invalidate(0, 4)
	k.Invalidate(0, 7)
	if err := k.ApplyTo(m); err != nil {
		t.Fatal(err)
	}
	if m.Bit(0, 4) || m.Bit(0, 7) {
		t.Fatal("invalid bits not cleared")
	}
	if got := m.DerivedCount(0); got != 8 {
		t.Fatalf("DerivedCount = %d, want 8", got)
	}
	if err := k.ApplyTo(New(3, 10)); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestMaskFromColumns(t *testing.T) {
	k, err := MaskFromColumns([][]byte{{1, 0, 1}, {1, 1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if k.ValidCount(0) != 2 || k.ValidCount(1) != 2 {
		t.Fatal("wrong valid counts")
	}
	if k.PairValidCount(0, 1) != 1 {
		t.Fatalf("PairValidCount = %d", k.PairValidCount(0, 1))
	}
}

// Property: PairValidCount(i,j) equals a direct per-sample intersection
// count, for random masks including ones that cross word boundaries.
func TestQuickPairValidCount(t *testing.T) {
	f := func(seed int64, samples8 uint8) bool {
		samples := int(samples8%150) + 1
		rng := rand.New(rand.NewSource(seed))
		k := NewMask(2, samples)
		valid := make([][2]bool, samples)
		for s := 0; s < samples; s++ {
			for j := 0; j < 2; j++ {
				valid[s][j] = rng.Intn(3) > 0
				if !valid[s][j] {
					k.Invalidate(j, s)
				}
			}
		}
		want := 0
		for s := 0; s < samples; s++ {
			if valid[s][0] && valid[s][1] {
				want++
			}
		}
		return k.PairValidCount(0, 1) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
