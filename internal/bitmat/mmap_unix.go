//go:build unix

package bitmat

import (
	"fmt"
	"syscall"
	"unsafe"
)

// mmap maps the whole container read-only and builds the word view of the
// data section. The zero-copy view reinterprets file bytes as uint64s, so
// it is only valid where the host byte order matches the little-endian
// file order; big-endian hosts must use windowed reads.
func (f *File) mmap(size int64) error {
	if !hostLittleEndian() {
		return fmt.Errorf("zero-copy ldbm view needs a little-endian host")
	}
	if size <= ldbmHeaderSize {
		// Zero-SNP container: nothing to map.
		f.mapped = []byte{}
		f.data = nil
		return nil
	}
	b, err := syscall.Mmap(int(f.f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return err
	}
	words := (len(b) - ldbmHeaderSize) / 8
	f.mapped = b
	if words > 0 {
		// The 64-byte header keeps this 8-aligned within the page-aligned
		// mapping.
		f.data = unsafe.Slice((*uint64)(unsafe.Pointer(&b[ldbmHeaderSize])), words)
	}
	return nil
}

func munmap(b []byte) error {
	if len(b) == 0 {
		return nil
	}
	return syscall.Munmap(b)
}

// madvise issues MADV_WILLNEED on the region — the mmap'd prefetch path:
// the kernel starts readahead for the next panel while the GEMM chews on
// the current one. Errors are deliberately ignored; the hint is advisory.
func madvise(b []byte) {
	if len(b) == 0 {
		return
	}
	_ = syscall.Madvise(b, syscall.MADV_WILLNEED)
}
