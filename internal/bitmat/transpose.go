package bitmat

import "fmt"

// Sequencing pipelines usually emit sample-major data (one record per
// individual), while every LD kernel here wants SNP-major columns. The
// conversion is a bit-matrix transpose; doing it bit-by-bit costs
// snps×samples operations, while the 64×64 block transpose below moves 64
// bits per word operation. This is the ingestion path for large cohorts.

// Transpose64 transposes a 64×64 bit block in place: bit (r, c) of the
// input becomes bit (c, r) of the output. The algorithm is the classic
// recursive block swap (Hacker's Delight §7-3), log₂64 = 6 rounds of
// masked exchanges.
func Transpose64(a *[64]uint64) {
	// Round widths 32, 16, 8, 4, 2, 1 with their lane masks.
	masks := [6]uint64{
		0x00000000ffffffff,
		0x0000ffff0000ffff,
		0x00ff00ff00ff00ff,
		0x0f0f0f0f0f0f0f0f,
		0x3333333333333333,
		0x5555555555555555,
	}
	// LSB-is-column-0 convention: exchange element (k, c+j) with
	// (k+j, c) for every c in the round's low-lane mask.
	for round, j := 0, uint(32); round < 6; round, j = round+1, j>>1 {
		m := masks[round]
		for k := 0; k < 64; k = int(uint(k+int(j)+1) &^ j) {
			t := (a[k]>>j ^ a[k+int(j)]) & m
			a[k] ^= t << j
			a[k+int(j)] ^= t
		}
	}
}

// FromPackedRows builds a SNP-major matrix from sample-major packed rows:
// rows[s] holds the bits of sample s, SNP i at bit position i (word i/64,
// bit i%64). Every row must have ceil(snps/64) words. The transpose runs
// in 64×64 blocks.
func FromPackedRows(rows [][]uint64, snps int) (*Matrix, error) {
	samples := len(rows)
	rowWords := WordsFor(snps)
	for s, r := range rows {
		if len(r) != rowWords {
			return nil, fmt.Errorf("bitmat: FromPackedRows: row %d has %d words, want %d", s, len(r), rowWords)
		}
	}
	if snps > 0 {
		// Reject stray bits beyond the SNP range so the transposed
		// matrix keeps its padding invariant.
		mask := ^uint64(0)
		if r := uint(snps % WordBits); r != 0 {
			mask = (uint64(1) << r) - 1
		}
		for s, r := range rows {
			if rowWords > 0 && r[rowWords-1]&^mask != 0 {
				return nil, fmt.Errorf("bitmat: FromPackedRows: row %d has bits beyond SNP %d", s, snps-1)
			}
		}
	}
	m := New(snps, samples)
	var block [64]uint64
	for sw := 0; sw*WordBits < samples; sw++ { // sample-word blocks
		smax := min(WordBits, samples-sw*WordBits)
		for cw := 0; cw < rowWords; cw++ { // SNP-word blocks
			for b := 0; b < smax; b++ {
				block[b] = rows[sw*WordBits+b][cw]
			}
			for b := smax; b < WordBits; b++ {
				block[b] = 0
			}
			Transpose64(&block)
			// block[b] now holds, for SNP cw*64+b, the 64 sample bits of
			// this sample block.
			imax := min(WordBits, snps-cw*WordBits)
			for b := 0; b < imax; b++ {
				m.Data[(cw*WordBits+b)*m.Words+sw] = block[b]
			}
		}
	}
	return m, nil
}

// PackedRows converts the matrix back to sample-major packed rows — the
// inverse of FromPackedRows, used when exporting to row-major formats.
func (m *Matrix) PackedRows() [][]uint64 {
	rowWords := WordsFor(m.SNPs)
	rows := make([][]uint64, m.Samples)
	backing := make([]uint64, m.Samples*rowWords)
	for s := range rows {
		rows[s] = backing[s*rowWords : (s+1)*rowWords]
	}
	var block [64]uint64
	for cw := 0; cw < rowWords; cw++ {
		imax := min(WordBits, m.SNPs-cw*WordBits)
		for sw := 0; sw < m.Words; sw++ {
			for b := 0; b < imax; b++ {
				block[b] = m.Data[(cw*WordBits+b)*m.Words+sw]
			}
			for b := imax; b < WordBits; b++ {
				block[b] = 0
			}
			Transpose64(&block)
			smax := min(WordBits, m.Samples-sw*WordBits)
			for b := 0; b < smax; b++ {
				rows[sw*WordBits+b][cw] = block[b]
			}
		}
	}
	return rows
}
