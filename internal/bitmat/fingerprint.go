package bitmat

import (
	"encoding/binary"
	"hash"
	"hash/fnv"
)

// FingerprintHash computes the dataset fingerprint — FNV-1a 64 over the
// dimensions followed by every packed word in SNP-major order — without
// requiring the matrix to be resident: stream the words through AddWords
// in storage order and read the digest with Sum64. A whole-matrix
// convenience lives on Matrix.Fingerprint; the tile store's
// ldstore.Fingerprint and the .ldbm container header both produce this
// hash, so a store built out of core binds to exactly the same identity a
// server computing from the in-RAM matrix derives.
type FingerprintHash struct {
	h   hash.Hash64
	buf [8]byte
}

// NewFingerprintHash starts a fingerprint over a snps×samples matrix. The
// dimensions are folded in first, exactly as the historical whole-matrix
// hash did.
func NewFingerprintHash(snps, samples int) *FingerprintHash {
	f := &FingerprintHash{h: fnv.New64a()}
	binary.LittleEndian.PutUint64(f.buf[:], uint64(snps))
	f.h.Write(f.buf[:])
	binary.LittleEndian.PutUint64(f.buf[:], uint64(samples))
	f.h.Write(f.buf[:])
	return f
}

// AddWords folds packed words (SNP-major storage order) into the digest.
func (f *FingerprintHash) AddWords(words []uint64) {
	for _, w := range words {
		binary.LittleEndian.PutUint64(f.buf[:], w)
		f.h.Write(f.buf[:])
	}
}

// Sum64 returns the fingerprint of everything added so far.
func (f *FingerprintHash) Sum64() uint64 { return f.h.Sum64() }

// Fingerprint hashes the matrix (dimensions plus packed words) with
// FNV-1a 64 — the identity that binds tile stores, cluster bootstrap, and
// .ldbm containers to the dataset they were computed from.
func (m *Matrix) Fingerprint() uint64 {
	f := NewFingerprintHash(m.SNPs, m.Samples)
	f.AddWords(m.Data)
	return f.Sum64()
}
