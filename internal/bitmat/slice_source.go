package bitmat

import "fmt"

// SliceSource exposes SNPs [lo, hi) of an underlying Source as a Source
// in its own right — the per-chromosome view a split build consumes
// without ever materializing the chromosome. Panel and Prefetch simply
// shift into the parent's coordinates, so an mmap'd or windowed file
// backs each slice with no extra copies.
//
// The fingerprint is computed over the slice's own dimensions and words
// (one streaming pass at construction), which makes it identical to
// Matrix.Fingerprint of a resident copy of the same rows: a store built
// from the slice binds to the same identity a whole-matrix build of that
// chromosome would.
type SliceSource struct {
	src    Source
	lo, hi int
	fp     uint64
}

// sliceFingerprintStep is the panel width of the construction-time
// fingerprint pass; memory stays O(step × words) for windowed parents.
const sliceFingerprintStep = 4096

// NewSliceSource wraps SNPs [lo, hi) of src. The construction streams the
// slice once to fingerprint it.
func NewSliceSource(src Source, lo, hi int) (*SliceSource, error) {
	if lo < 0 || hi < lo || hi > src.NumSNPs() {
		return nil, fmt.Errorf("bitmat: slice [%d,%d) of %d SNPs", lo, hi, src.NumSNPs())
	}
	s := &SliceSource{src: src, lo: lo, hi: hi}
	h := NewFingerprintHash(hi-lo, src.NumSamples())
	buf := New(min(sliceFingerprintStep, max(hi-lo, 1)), src.NumSamples())
	for a := lo; a < hi; a += sliceFingerprintStep {
		b := min(a+sliceFingerprintStep, hi)
		p, err := src.Panel(a, b, buf)
		if err != nil {
			return nil, err
		}
		h.AddWords(p.Data)
	}
	s.fp = h.Sum64()
	return s, nil
}

// NumSNPs returns the slice length; NumSamples the parent's sample count.
func (s *SliceSource) NumSNPs() int        { return s.hi - s.lo }
func (s *SliceSource) NumSamples() int     { return s.src.NumSamples() }
func (s *SliceSource) Fingerprint() uint64 { return s.fp }

// Panel returns slice-relative SNPs [lo, hi) from the parent.
func (s *SliceSource) Panel(lo, hi int, buf *Matrix) (*Matrix, error) {
	if lo < 0 || hi < lo || hi > s.hi-s.lo {
		return nil, fmt.Errorf("bitmat: panel [%d,%d) of %d-SNP slice", lo, hi, s.hi-s.lo)
	}
	return s.src.Panel(s.lo+lo, s.lo+hi, buf)
}

// Prefetch forwards the hint in parent coordinates.
func (s *SliceSource) Prefetch(lo, hi int) {
	if lo < 0 || hi < lo || hi > s.hi-s.lo {
		return
	}
	s.src.Prefetch(s.lo+lo, s.lo+hi)
}
