package bitmat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGenotypeSetGet(t *testing.T) {
	g := NewGenotypeMatrix(2, 40) // crosses a word boundary (32/word)
	codes := []uint8{GenoHomRef, GenoHet, GenoHomAlt, GenoMissing}
	for s := 0; s < 40; s++ {
		g.Set(0, s, codes[s%4])
	}
	for s := 0; s < 40; s++ {
		if got := g.Get(0, s); got != codes[s%4] {
			t.Fatalf("Get(0,%d) = %d, want %d", s, got, codes[s%4])
		}
	}
	// Untouched variant stays hom-ref in range.
	for s := 0; s < 40; s++ {
		if g.Get(1, s) != GenoHomRef {
			t.Fatalf("untouched genotype changed at %d", s)
		}
	}
}

func TestGenotypePaddingIsMissing(t *testing.T) {
	g := NewGenotypeMatrix(1, 33) // 31 padding fields in word 1
	w := g.SNP(0)
	for f := 1; f < GenosPerWord; f++ { // field 0 of word 1 is sample 32
		code := uint8(w[1] >> (2 * uint(f)) & 0b11)
		if code != GenoMissing {
			t.Fatalf("padding field %d = %d, want missing", f, code)
		}
	}
	// Padding must never contribute to pair counts.
	c := g.PairCounts(0, 0)
	if c.N != 33 {
		t.Fatalf("N = %d, want 33", c.N)
	}
}

func TestDosageRoundTrip(t *testing.T) {
	for d := 0; d <= 2; d++ {
		got, ok := DosageOf(CodeOfDosage(d))
		if !ok || got != d {
			t.Fatalf("dosage %d round-trip gave %d,%v", d, got, ok)
		}
	}
	if _, ok := DosageOf(GenoMissing); ok {
		t.Fatal("missing reported as valid dosage")
	}
}

func TestFromHaplotypes(t *testing.T) {
	// 4 haplotypes → 2 diploid samples; SNP0 dosages: s0=0+1=1, s1=1+1=2.
	m, err := FromColumns([][]byte{{0, 1, 1, 1}, {0, 0, 0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	g, err := FromHaplotypes(m)
	if err != nil {
		t.Fatal(err)
	}
	if g.Samples != 2 || g.SNPs != 2 {
		t.Fatalf("dims %dx%d", g.SNPs, g.Samples)
	}
	if g.Get(0, 0) != GenoHet || g.Get(0, 1) != GenoHomAlt {
		t.Fatalf("SNP0 genotypes %d %d", g.Get(0, 0), g.Get(0, 1))
	}
	if g.Get(1, 0) != GenoHomRef || g.Get(1, 1) != GenoHomRef {
		t.Fatal("SNP1 should be hom-ref")
	}
	if _, err := FromHaplotypes(New(1, 3)); err == nil {
		t.Fatal("odd haplotype count accepted")
	}
}

// referenceCounts computes GenoCounts directly from dosages.
func referenceCounts(g *GenotypeMatrix, i, j int) GenoCounts {
	var c GenoCounts
	for s := 0; s < g.Samples; s++ {
		dx, okx := DosageOf(g.Get(i, s))
		dy, oky := DosageOf(g.Get(j, s))
		if !okx || !oky {
			continue
		}
		c.N++
		c.SumX += dx
		c.SumY += dy
		c.SumXX += dx * dx
		c.SumYY += dy * dy
		c.SumXY += dx * dy
	}
	return c
}

func TestPairCountsAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := NewGenotypeMatrix(4, 77)
	codes := []uint8{GenoHomRef, GenoHet, GenoHomAlt, GenoMissing}
	for i := 0; i < 4; i++ {
		for s := 0; s < 77; s++ {
			g.Set(i, s, codes[rng.Intn(4)])
		}
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			got, want := g.PairCounts(i, j), referenceCounts(g, i, j)
			if got != want {
				t.Fatalf("PairCounts(%d,%d) = %+v, want %+v", i, j, got, want)
			}
		}
	}
}

func TestGenoR2(t *testing.T) {
	// Perfectly correlated dosages → r² = 1.
	g := NewGenotypeMatrix(2, 6)
	dos := []int{0, 1, 2, 0, 1, 2}
	for s, d := range dos {
		g.Set(0, s, CodeOfDosage(d))
		g.Set(1, s, CodeOfDosage(d))
	}
	if r2 := g.PairCounts(0, 1).R2(); math.Abs(r2-1) > 1e-12 {
		t.Fatalf("r² of identical variants = %v, want 1", r2)
	}
	// Monomorphic variant → r² = 0 by convention.
	mono := NewGenotypeMatrix(2, 6)
	for s, d := range dos {
		mono.Set(0, s, CodeOfDosage(d))
		mono.Set(1, s, GenoHomRef)
	}
	if r2 := mono.PairCounts(0, 1).R2(); r2 != 0 {
		t.Fatalf("r² with monomorphic variant = %v", r2)
	}
	// No jointly present samples → 0.
	var empty GenoCounts
	if empty.R2() != 0 {
		t.Fatal("empty counts r² != 0")
	}
}

// Property: PairCounts matches the dosage-space reference on random
// genotype matrices of random size.
func TestQuickPairCounts(t *testing.T) {
	f := func(seed int64, samples8 uint8) bool {
		samples := int(samples8%100) + 1
		rng := rand.New(rand.NewSource(seed))
		g := NewGenotypeMatrix(2, samples)
		codes := []uint8{GenoHomRef, GenoHet, GenoHomAlt, GenoMissing}
		for i := 0; i < 2; i++ {
			for s := 0; s < samples; s++ {
				g.Set(i, s, codes[rng.Intn(4)])
			}
		}
		return g.PairCounts(0, 1) == referenceCounts(g, 0, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: r² is always within [0, 1+ε].
func TestQuickR2Range(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewGenotypeMatrix(2, 50)
		codes := []uint8{GenoHomRef, GenoHet, GenoHomAlt, GenoMissing}
		for i := 0; i < 2; i++ {
			for s := 0; s < 50; s++ {
				g.Set(i, s, codes[rng.Intn(4)])
			}
		}
		r2 := g.PairCounts(0, 1).R2()
		return r2 >= 0 && r2 <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestPseudoPhaseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := NewGenotypeMatrix(9, 37) // crosses the 32-genotype word boundary
	codes := []uint8{GenoHomRef, GenoHet, GenoHomAlt}
	for i := 0; i < g.SNPs; i++ {
		for s := 0; s < g.Samples; s++ {
			g.Set(i, s, codes[rng.Intn(len(codes))])
		}
	}
	m, err := g.PseudoPhase()
	if err != nil {
		t.Fatalf("PseudoPhase: %v", err)
	}
	if m.SNPs != g.SNPs || m.Samples != 2*g.Samples {
		t.Fatalf("phased dimensions %dx%d, want %dx%d", m.SNPs, m.Samples, g.SNPs, 2*g.Samples)
	}
	if err := m.ValidatePadding(); err != nil {
		t.Fatalf("phased matrix padding: %v", err)
	}
	// Deterministic phase: hets put the derived allele on haplotype 2s.
	for i := 0; i < g.SNPs; i++ {
		for s := 0; s < g.Samples; s++ {
			if g.Get(i, s) == GenoHet && (!m.Bit(i, 2*s) || m.Bit(i, 2*s+1)) {
				t.Fatalf("het at (%d,%d) phased as (%v,%v)", i, s, m.Bit(i, 2*s), m.Bit(i, 2*s+1))
			}
		}
	}
	back, err := FromHaplotypes(m)
	if err != nil {
		t.Fatalf("FromHaplotypes: %v", err)
	}
	for i := 0; i < g.SNPs; i++ {
		for s := 0; s < g.Samples; s++ {
			if back.Get(i, s) != g.Get(i, s) {
				t.Fatalf("round trip changed (%d,%d): %d → %d", i, s, g.Get(i, s), back.Get(i, s))
			}
		}
	}
}

func TestPseudoPhaseRejectsMissing(t *testing.T) {
	g := NewGenotypeMatrix(2, 3)
	g.Set(1, 2, GenoMissing)
	if _, err := g.PseudoPhase(); err == nil {
		t.Fatal("PseudoPhase accepted a missing genotype")
	}
}
