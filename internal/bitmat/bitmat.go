// Package bitmat implements the bit-packed binary genomic matrix that all
// LD kernels in this repository operate on.
//
// Following the storage scheme of the paper (Fig. 2, after Alachiotis &
// Weisz, FPGA'16), a genomic matrix G has one column per SNP and one row per
// sample. Each SNP column is stored as a run of consecutive 64-bit words
// (little-endian bit order within a word: sample 0 is bit 0 of word 0). When
// the number of samples is not a multiple of 64, the SNP is padded with zero
// bits so that every SNP occupies the same whole number of words. The zero
// padding is an invariant: AND+POPCNT kernels rely on padding bits never
// contributing to a count.
package bitmat

import (
	"fmt"
	"math/bits"
)

// WordBits is the number of sample bits packed per storage word.
const WordBits = 64

// Matrix is a bit-packed binary matrix of SNPs (columns) by samples (rows).
// A set bit denotes the derived allele (a mutation) under the infinite
// sites model; a clear bit denotes the ancestral allele.
//
// Storage is SNP-major: SNP i occupies Data[i*Words : (i+1)*Words].
type Matrix struct {
	// SNPs is the number of SNP columns (the n dimension of GᵀG).
	SNPs int
	// Samples is the number of sequences/rows (the k dimension).
	Samples int
	// Words is the number of 64-bit words per SNP: ceil(Samples/64).
	Words int
	// Data holds SNPs*Words words, SNP-major.
	Data []uint64
}

// WordsFor returns the number of 64-bit words needed for the given number
// of samples.
func WordsFor(samples int) int {
	return (samples + WordBits - 1) / WordBits
}

// New returns a zeroed matrix with the given dimensions.
// It panics if either dimension is negative or snps is zero with
// a negative sample count; a zero-SNP or zero-sample matrix is valid.
func New(snps, samples int) *Matrix {
	if snps < 0 || samples < 0 {
		panic(fmt.Sprintf("bitmat: negative dimension %dx%d", snps, samples))
	}
	w := WordsFor(samples)
	return &Matrix{
		SNPs:    snps,
		Samples: samples,
		Words:   w,
		Data:    make([]uint64, snps*w),
	}
}

// FromWords wraps an existing word slice as a Matrix without copying.
// len(data) must equal snps*WordsFor(samples).
func FromWords(snps, samples int, data []uint64) (*Matrix, error) {
	w := WordsFor(samples)
	if len(data) != snps*w {
		return nil, fmt.Errorf("bitmat: FromWords: have %d words, need %d (snps=%d samples=%d)",
			len(data), snps*w, snps, samples)
	}
	return &Matrix{SNPs: snps, Samples: samples, Words: w, Data: data}, nil
}

// FromRows builds a matrix from sample-major rows: rows[s][i] is the state
// of sample s at SNP i. Any nonzero byte is treated as the derived state.
// All rows must have equal length.
func FromRows(rows [][]byte) (*Matrix, error) {
	if len(rows) == 0 {
		return New(0, 0), nil
	}
	snps := len(rows[0])
	for s, r := range rows {
		if len(r) != snps {
			return nil, fmt.Errorf("bitmat: FromRows: row %d has %d entries, want %d", s, len(r), snps)
		}
	}
	m := New(snps, len(rows))
	for s, r := range rows {
		for i, v := range r {
			if v != 0 {
				m.SetBit(i, s)
			}
		}
	}
	return m, nil
}

// FromColumns builds a matrix from SNP-major columns: cols[i][s] is the
// state of sample s at SNP i. Any nonzero byte is the derived state.
func FromColumns(cols [][]byte) (*Matrix, error) {
	if len(cols) == 0 {
		return New(0, 0), nil
	}
	samples := len(cols[0])
	for i, c := range cols {
		if len(c) != samples {
			return nil, fmt.Errorf("bitmat: FromColumns: column %d has %d entries, want %d", i, len(c), samples)
		}
	}
	m := New(len(cols), samples)
	for i, c := range cols {
		for s, v := range c {
			if v != 0 {
				m.SetBit(i, s)
			}
		}
	}
	return m, nil
}

// SNP returns the word slice backing SNP i. The returned slice aliases the
// matrix; mutating it mutates the matrix.
func (m *Matrix) SNP(i int) []uint64 {
	return m.Data[i*m.Words : (i+1)*m.Words : (i+1)*m.Words]
}

// Bit reports the state of sample s at SNP i.
func (m *Matrix) Bit(snp, sample int) bool {
	m.check(snp, sample)
	w := m.Data[snp*m.Words+sample/WordBits]
	return w>>(uint(sample)%WordBits)&1 == 1
}

// SetBit sets sample s at SNP i to the derived state.
func (m *Matrix) SetBit(snp, sample int) {
	m.check(snp, sample)
	m.Data[snp*m.Words+sample/WordBits] |= 1 << (uint(sample) % WordBits)
}

// ClearBit sets sample s at SNP i to the ancestral state.
func (m *Matrix) ClearBit(snp, sample int) {
	m.check(snp, sample)
	m.Data[snp*m.Words+sample/WordBits] &^= 1 << (uint(sample) % WordBits)
}

func (m *Matrix) check(snp, sample int) {
	if snp < 0 || snp >= m.SNPs || sample < 0 || sample >= m.Samples {
		panic(fmt.Sprintf("bitmat: index (%d,%d) out of range %dx%d", snp, sample, m.SNPs, m.Samples))
	}
}

// DerivedCount returns the number of derived alleles (set bits) in SNP i.
// This is the inner product sᵢᵀsᵢ of Eq. 3 in the paper.
func (m *Matrix) DerivedCount(i int) int {
	n := 0
	for _, w := range m.SNP(i) {
		n += bits.OnesCount64(w)
	}
	return n
}

// AlleleFrequency returns the derived-allele frequency of SNP i
// (Eq. 3: P_i = sᵢᵀsᵢ / Nseq).
func (m *Matrix) AlleleFrequency(i int) float64 {
	if m.Samples == 0 {
		return 0
	}
	return float64(m.DerivedCount(i)) / float64(m.Samples)
}

// PadMask returns the word mask that keeps only valid sample bits in the
// final word of a SNP. For Samples%64 == 0 the mask is all ones.
func (m *Matrix) PadMask() uint64 {
	r := uint(m.Samples % WordBits)
	if r == 0 {
		return ^uint64(0)
	}
	return (uint64(1) << r) - 1
}

// ValidatePadding checks the zero-padding invariant on every SNP and
// returns an error naming the first violating SNP, or nil.
func (m *Matrix) ValidatePadding() error {
	if m.Words == 0 {
		return nil
	}
	mask := m.PadMask()
	if mask == ^uint64(0) {
		return nil
	}
	for i := 0; i < m.SNPs; i++ {
		last := m.Data[i*m.Words+m.Words-1]
		if last&^mask != 0 {
			return fmt.Errorf("bitmat: SNP %d has nonzero padding bits (last word %#x, mask %#x)", i, last, mask)
		}
	}
	return nil
}

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	d := make([]uint64, len(m.Data))
	copy(d, m.Data)
	return &Matrix{SNPs: m.SNPs, Samples: m.Samples, Words: m.Words, Data: d}
}

// Slice returns a new matrix that shares storage with m and exposes SNPs
// [lo, hi). It panics on an invalid range.
func (m *Matrix) Slice(lo, hi int) *Matrix {
	if lo < 0 || hi < lo || hi > m.SNPs {
		panic(fmt.Sprintf("bitmat: Slice[%d:%d] of %d SNPs", lo, hi, m.SNPs))
	}
	return &Matrix{
		SNPs:    hi - lo,
		Samples: m.Samples,
		Words:   m.Words,
		Data:    m.Data[lo*m.Words : hi*m.Words],
	}
}

// Append copies all SNPs of other (which must have the same sample count)
// onto the end of m and returns the combined matrix. Neither input is
// modified.
func (m *Matrix) Append(other *Matrix) (*Matrix, error) {
	if m.Samples != other.Samples {
		return nil, fmt.Errorf("bitmat: Append: sample mismatch %d vs %d", m.Samples, other.Samples)
	}
	out := New(m.SNPs+other.SNPs, m.Samples)
	copy(out.Data, m.Data)
	copy(out.Data[m.SNPs*m.Words:], other.Data)
	return out, nil
}

// Column materializes SNP i as a byte vector of 0/1 states, one per sample.
func (m *Matrix) Column(i int) []byte {
	out := make([]byte, m.Samples)
	words := m.SNP(i)
	for s := 0; s < m.Samples; s++ {
		if words[s/WordBits]>>(uint(s)%WordBits)&1 == 1 {
			out[s] = 1
		}
	}
	return out
}

// Row materializes sample s as a byte vector of 0/1 states, one per SNP.
func (m *Matrix) Row(s int) []byte {
	out := make([]byte, m.SNPs)
	for i := 0; i < m.SNPs; i++ {
		if m.Bit(i, s) {
			out[i] = 1
		}
	}
	return out
}

// Transposed returns the sample-major byte representation rows[s][i].
func (m *Matrix) Transposed() [][]byte {
	rows := make([][]byte, m.Samples)
	for s := range rows {
		rows[s] = m.Row(s)
	}
	return rows
}

// Equal reports whether the two matrices have identical dimensions and bits.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.SNPs != o.SNPs || m.Samples != o.Samples {
		return false
	}
	for i, w := range m.Data {
		if w != o.Data[i] {
			return false
		}
	}
	return true
}

// String renders small matrices for debugging: one line per sample.
func (m *Matrix) String() string {
	if m.SNPs*m.Samples > 64*64 {
		return fmt.Sprintf("bitmat.Matrix{%d SNPs × %d samples}", m.SNPs, m.Samples)
	}
	buf := make([]byte, 0, (m.SNPs+1)*m.Samples)
	for s := 0; s < m.Samples; s++ {
		for i := 0; i < m.SNPs; i++ {
			if m.Bit(i, s) {
				buf = append(buf, '1')
			} else {
				buf = append(buf, '0')
			}
		}
		buf = append(buf, '\n')
	}
	return string(buf)
}

// SubsetSamples returns a new matrix containing only the given samples,
// in the given order. Duplicate indices are allowed (bootstrap
// resampling); out-of-range indices panic.
func (m *Matrix) SubsetSamples(samples []int) *Matrix {
	out := New(m.SNPs, len(samples))
	for i := 0; i < m.SNPs; i++ {
		src := m.SNP(i)
		dst := out.SNP(i)
		for si, s := range samples {
			if s < 0 || s >= m.Samples {
				panic(fmt.Sprintf("bitmat: SubsetSamples index %d out of range %d", s, m.Samples))
			}
			if src[s/WordBits]>>(uint(s)%WordBits)&1 == 1 {
				dst[si/WordBits] |= 1 << (uint(si) % WordBits)
			}
		}
	}
	return out
}
