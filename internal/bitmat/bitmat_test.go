package bitmat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWordsFor(t *testing.T) {
	cases := []struct{ samples, want int }{
		{0, 0}, {1, 1}, {63, 1}, {64, 1}, {65, 2}, {128, 2}, {129, 3}, {2504, 40},
	}
	for _, c := range cases {
		if got := WordsFor(c.samples); got != c.want {
			t.Errorf("WordsFor(%d) = %d, want %d", c.samples, got, c.want)
		}
	}
}

func TestNewDimensions(t *testing.T) {
	m := New(10, 100)
	if m.SNPs != 10 || m.Samples != 100 || m.Words != 2 {
		t.Fatalf("unexpected dims: %+v", m)
	}
	if len(m.Data) != 20 {
		t.Fatalf("len(Data) = %d, want 20", len(m.Data))
	}
}

func TestNewPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1, 4) did not panic")
		}
	}()
	New(-1, 4)
}

func TestSetGetClear(t *testing.T) {
	m := New(3, 130)
	coords := [][2]int{{0, 0}, {0, 63}, {0, 64}, {1, 127}, {1, 128}, {2, 129}}
	for _, c := range coords {
		if m.Bit(c[0], c[1]) {
			t.Fatalf("fresh matrix has bit set at %v", c)
		}
		m.SetBit(c[0], c[1])
		if !m.Bit(c[0], c[1]) {
			t.Fatalf("SetBit(%v) not visible", c)
		}
	}
	// Other positions unaffected.
	if m.Bit(0, 1) || m.Bit(2, 0) {
		t.Fatal("SetBit leaked to other positions")
	}
	for _, c := range coords {
		m.ClearBit(c[0], c[1])
		if m.Bit(c[0], c[1]) {
			t.Fatalf("ClearBit(%v) not visible", c)
		}
	}
}

func TestBitPanicsOutOfRange(t *testing.T) {
	m := New(2, 10)
	for _, c := range [][2]int{{-1, 0}, {2, 0}, {0, -1}, {0, 10}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Bit(%d,%d) did not panic", c[0], c[1])
				}
			}()
			m.Bit(c[0], c[1])
		}()
	}
}

func TestFromRowsColumnsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rows := make([][]byte, 17)
	for s := range rows {
		rows[s] = make([]byte, 9)
		for i := range rows[s] {
			rows[s][i] = byte(rng.Intn(2))
		}
	}
	cols := make([][]byte, 9)
	for i := range cols {
		cols[i] = make([]byte, 17)
		for s := range cols[i] {
			cols[i][s] = rows[s][i]
		}
	}
	a, err := FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FromColumns(cols)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatalf("FromRows and FromColumns disagree:\n%v\nvs\n%v", a, b)
	}
	for s := range rows {
		for i := range rows[s] {
			if a.Bit(i, s) != (rows[s][i] != 0) {
				t.Fatalf("bit (%d,%d) mismatch", i, s)
			}
		}
	}
}

func TestFromRowsRagged(t *testing.T) {
	if _, err := FromRows([][]byte{{0, 1}, {0}}); err == nil {
		t.Fatal("ragged rows accepted")
	}
	if _, err := FromColumns([][]byte{{0, 1}, {0}}); err == nil {
		t.Fatal("ragged columns accepted")
	}
}

func TestFromRowsEmpty(t *testing.T) {
	m, err := FromRows(nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.SNPs != 0 || m.Samples != 0 {
		t.Fatalf("empty FromRows gave %dx%d", m.SNPs, m.Samples)
	}
}

func TestFromWords(t *testing.T) {
	data := make([]uint64, 6)
	m, err := FromWords(3, 100, data)
	if err != nil {
		t.Fatal(err)
	}
	if m.Words != 2 {
		t.Fatalf("Words = %d", m.Words)
	}
	if _, err := FromWords(3, 100, make([]uint64, 5)); err == nil {
		t.Fatal("short data accepted")
	}
}

func TestDerivedCountAndFrequency(t *testing.T) {
	m := New(2, 100)
	for s := 0; s < 100; s += 3 {
		m.SetBit(0, s)
	}
	want := 34 // 0,3,...,99
	if got := m.DerivedCount(0); got != want {
		t.Fatalf("DerivedCount = %d, want %d", got, want)
	}
	if got := m.AlleleFrequency(0); got != float64(want)/100 {
		t.Fatalf("AlleleFrequency = %v", got)
	}
	if got := m.DerivedCount(1); got != 0 {
		t.Fatalf("untouched SNP count = %d", got)
	}
}

func TestAlleleFrequencyZeroSamples(t *testing.T) {
	m := New(1, 0)
	if got := m.AlleleFrequency(0); got != 0 {
		t.Fatalf("AlleleFrequency on 0 samples = %v", got)
	}
}

func TestPadMaskAndValidatePadding(t *testing.T) {
	m := New(2, 70) // 6 padding bits in word 1
	if err := m.ValidatePadding(); err != nil {
		t.Fatalf("fresh matrix: %v", err)
	}
	if m.PadMask() != (uint64(1)<<6)-1 {
		t.Fatalf("PadMask = %#x", m.PadMask())
	}
	// Corrupt a padding bit.
	m.Data[1] |= 1 << 63
	if err := m.ValidatePadding(); err == nil {
		t.Fatal("corrupted padding not detected")
	}
	full := New(1, 64)
	if full.PadMask() != ^uint64(0) {
		t.Fatalf("PadMask(64 samples) = %#x", full.PadMask())
	}
	if err := full.ValidatePadding(); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := New(1, 10)
	m.SetBit(0, 3)
	c := m.Clone()
	c.SetBit(0, 4)
	if m.Bit(0, 4) {
		t.Fatal("Clone shares storage")
	}
	if !c.Bit(0, 3) {
		t.Fatal("Clone lost bits")
	}
}

func TestSliceSharesStorage(t *testing.T) {
	m := New(5, 10)
	s := m.Slice(2, 4)
	if s.SNPs != 2 {
		t.Fatalf("Slice SNPs = %d", s.SNPs)
	}
	s.SetBit(0, 1)
	if !m.Bit(2, 1) {
		t.Fatal("Slice does not alias parent")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("invalid Slice range did not panic")
		}
	}()
	m.Slice(4, 6)
}

func TestAppend(t *testing.T) {
	a := New(2, 10)
	a.SetBit(1, 9)
	b := New(3, 10)
	b.SetBit(0, 0)
	ab, err := a.Append(b)
	if err != nil {
		t.Fatal(err)
	}
	if ab.SNPs != 5 || !ab.Bit(1, 9) || !ab.Bit(2, 0) {
		t.Fatal("Append lost bits")
	}
	if _, err := a.Append(New(1, 11)); err == nil {
		t.Fatal("sample mismatch accepted")
	}
}

func TestColumnRowTransposed(t *testing.T) {
	m := New(3, 5)
	m.SetBit(0, 0)
	m.SetBit(1, 2)
	m.SetBit(2, 4)
	col := m.Column(1)
	if col[2] != 1 || col[0] != 0 || len(col) != 5 {
		t.Fatalf("Column = %v", col)
	}
	row := m.Row(4)
	if row[2] != 1 || row[0] != 0 || len(row) != 3 {
		t.Fatalf("Row = %v", row)
	}
	tr := m.Transposed()
	if len(tr) != 5 || tr[2][1] != 1 {
		t.Fatalf("Transposed = %v", tr)
	}
}

func TestStringSmall(t *testing.T) {
	m := New(2, 2)
	m.SetBit(0, 0)
	m.SetBit(1, 1)
	if got, want := m.String(), "10\n01\n"; got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

// Property: round-tripping any 0/1 row matrix through FromRows/Transposed is
// the identity, and padding stays zero.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, snps8, samples8 uint8) bool {
		snps := int(snps8%40) + 1
		samples := int(samples8%130) + 1
		rng := rand.New(rand.NewSource(seed))
		rows := make([][]byte, samples)
		for s := range rows {
			rows[s] = make([]byte, snps)
			for i := range rows[s] {
				rows[s][i] = byte(rng.Intn(2))
			}
		}
		m, err := FromRows(rows)
		if err != nil {
			return false
		}
		if m.ValidatePadding() != nil {
			return false
		}
		back := m.Transposed()
		for s := range rows {
			for i := range rows[s] {
				if rows[s][i] != back[s][i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: DerivedCount equals the number of ones in the materialized
// column for random matrices.
func TestQuickDerivedCount(t *testing.T) {
	f := func(seed int64, samples8 uint8) bool {
		samples := int(samples8) + 1
		rng := rand.New(rand.NewSource(seed))
		m := New(1, samples)
		want := 0
		for s := 0; s < samples; s++ {
			if rng.Intn(2) == 1 {
				m.SetBit(0, s)
				want++
			}
		}
		return m.DerivedCount(0) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestSubsetSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := New(6, 100)
	for i := 0; i < 6; i++ {
		for s := 0; s < 100; s++ {
			if rng.Intn(2) == 1 {
				m.SetBit(i, s)
			}
		}
	}
	idx := []int{5, 99, 0, 5, 64, 63} // duplicates and word boundaries
	sub := m.SubsetSamples(idx)
	if sub.SNPs != 6 || sub.Samples != 6 {
		t.Fatalf("dims %dx%d", sub.SNPs, sub.Samples)
	}
	for i := 0; i < 6; i++ {
		for si, s := range idx {
			if sub.Bit(i, si) != m.Bit(i, s) {
				t.Fatalf("subset bit (%d,%d) != source (%d,%d)", i, si, i, s)
			}
		}
	}
	if err := sub.ValidatePadding(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range subset index did not panic")
		}
	}()
	m.SubsetSamples([]int{100})
}

func TestSubsetSamplesEmpty(t *testing.T) {
	m := New(3, 10)
	sub := m.SubsetSamples(nil)
	if sub.SNPs != 3 || sub.Samples != 0 {
		t.Fatalf("empty subset dims %dx%d", sub.SNPs, sub.Samples)
	}
}
