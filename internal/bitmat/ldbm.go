package bitmat

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"os"
	"unsafe"
)

// This file implements the .ldbm container: the bit-packed word-plane
// matrix made durable in exactly its in-RAM layout, so the GEMM kernels
// can pack panels straight out of an mmap'd file — or out of a small
// read window — without the matrix ever being resident. It is the storage
// half of the out-of-core build pipeline; the panel-pair scheduler that
// walks it lives in internal/core.
//
// File layout (all integers little-endian):
//
//	off size field
//	  0    4 magic "LDBM"
//	  4    4 version (uint32, currently 1)
//	  8    4 flags (none defined; zero)
//	 12    4 reserved (zero)
//	 16    8 SNPs
//	 24    8 samples
//	 32    8 dataset fingerprint (FNV-1a 64 over dims + packed words,
//	         identical to Matrix.Fingerprint)
//	 40   24 reserved (zero)
//	 64      data: SNPs × WordsFor(samples) uint64 words, SNP-major
//
// The fixed 64-byte header keeps the word plane 8-byte aligned (and, with
// a page-aligned mmap, the data region constant-offset), so a Matrix view
// of a mapped region needs no copying or realignment.

// Source provides read-only, SNP-major panel access to a bit matrix that
// may or may not be memory-resident. It is the abstraction the streaming
// LD drivers and the tile-store builder consume: an in-RAM Matrix (via
// MemSource), an mmap'd .ldbm file, and a windowed-read .ldbm file all
// satisfy it, so one build path serves every scale.
type Source interface {
	// NumSNPs and NumSamples return the matrix dimensions.
	NumSNPs() int
	NumSamples() int
	// Panel returns SNPs [lo, hi) as a Matrix sharing the source's sample
	// geometry. In-memory and mmap'd sources return zero-copy views and
	// ignore buf; a windowed source fills buf (allocating or growing it
	// when nil or too small) and returns it. Concurrent Panel calls with
	// distinct buffers are safe — the prefetcher relies on this.
	Panel(lo, hi int, buf *Matrix) (*Matrix, error)
	// Prefetch hints that Panel(lo, hi) will be requested soon. An mmap'd
	// source issues MADV_WILLNEED; others may ignore it.
	Prefetch(lo, hi int)
	// Fingerprint returns the dataset fingerprint (dims + packed words).
	Fingerprint() uint64
}

// MemSource adapts a resident Matrix to the Source interface.
type MemSource struct {
	M *Matrix
	// fp caches the O(data) fingerprint after the first request.
	fp     uint64
	hashed bool
}

// NewMemSource wraps a resident matrix as a Source.
func NewMemSource(m *Matrix) *MemSource { return &MemSource{M: m} }

// NumSNPs returns the SNP count.
func (s *MemSource) NumSNPs() int { return s.M.SNPs }

// NumSamples returns the sample count.
func (s *MemSource) NumSamples() int { return s.M.Samples }

// Panel returns a zero-copy slice view; buf is ignored.
func (s *MemSource) Panel(lo, hi int, _ *Matrix) (*Matrix, error) {
	if lo < 0 || hi < lo || hi > s.M.SNPs {
		return nil, fmt.Errorf("bitmat: panel [%d,%d) of %d SNPs", lo, hi, s.M.SNPs)
	}
	return s.M.Slice(lo, hi), nil
}

// Prefetch is a no-op: the matrix is resident.
func (s *MemSource) Prefetch(lo, hi int) {}

// Fingerprint hashes the matrix once and caches the digest. Not safe for
// the very first call to race with itself; the builders call it once up
// front, before any parallel phase.
func (s *MemSource) Fingerprint() uint64 {
	if !s.hashed {
		s.fp = s.M.Fingerprint()
		s.hashed = true
	}
	return s.fp
}

// Container constants.
const (
	ldbmHeaderSize = 64
	ldbmVersion    = 1
)

var ldbmMagic = [4]byte{'L', 'D', 'B', 'M'}

// MaxFileSNPs caps the dimensions OpenFile will trust from a header, so a
// corrupt file cannot drive an implausible window allocation.
const (
	maxFileSNPs    = 1 << 40
	maxFileSamples = 1 << 40
)

func encodeLDBMHeader(snps, samples int, fingerprint uint64) []byte {
	b := make([]byte, ldbmHeaderSize)
	copy(b[0:4], ldbmMagic[:])
	binary.LittleEndian.PutUint32(b[4:], ldbmVersion)
	binary.LittleEndian.PutUint64(b[16:], uint64(snps))
	binary.LittleEndian.PutUint64(b[24:], uint64(samples))
	binary.LittleEndian.PutUint64(b[32:], fingerprint)
	return b
}

// FileWriter writes a .ldbm container SNP panel by SNP panel, so datasets
// far larger than memory can be produced by a streaming generator or
// format converter: only the current panel is ever resident. The
// fingerprint accumulates as panels arrive and is patched into the header
// on Close.
type FileWriter struct {
	f       *os.File
	bw      *bufio.Writer
	snps    int
	samples int
	words   int
	written int
	hash    *FingerprintHash
	buf     []byte
}

// CreateFile starts a .ldbm container for a snps×samples matrix. Panels
// must then be appended in SNP order with WritePanel until exactly snps
// SNPs have been written, and the writer closed.
func CreateFile(path string, snps, samples int) (*FileWriter, error) {
	if snps < 0 || samples < 0 {
		return nil, fmt.Errorf("bitmat: invalid ldbm dimensions %d×%d", snps, samples)
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := &FileWriter{
		f: f, bw: bufio.NewWriterSize(f, 1<<20),
		snps: snps, samples: samples, words: WordsFor(samples),
		hash: NewFingerprintHash(snps, samples),
		buf:  make([]byte, 8),
	}
	// Placeholder header; the fingerprint lands on Close.
	if _, err := w.bw.Write(encodeLDBMHeader(snps, samples, 0)); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	return w, nil
}

// WritePanel appends the SNPs of panel (which must match the container's
// sample count) to the data section.
func (w *FileWriter) WritePanel(panel *Matrix) error {
	if panel.Samples != w.samples {
		return fmt.Errorf("bitmat: ldbm panel has %d samples, want %d", panel.Samples, w.samples)
	}
	if w.written+panel.SNPs > w.snps {
		return fmt.Errorf("bitmat: ldbm overflow: %d+%d SNPs of %d", w.written, panel.SNPs, w.snps)
	}
	for _, word := range panel.Data {
		binary.LittleEndian.PutUint64(w.buf, word)
		if _, err := w.bw.Write(w.buf); err != nil {
			return err
		}
	}
	w.hash.AddWords(panel.Data)
	w.written += panel.SNPs
	return nil
}

// Close flushes the data, verifies every SNP arrived, patches the
// fingerprint into the header, and syncs the file.
func (w *FileWriter) Close() error {
	if w.written != w.snps {
		w.f.Close()
		return fmt.Errorf("bitmat: ldbm short write: %d of %d SNPs", w.written, w.snps)
	}
	if err := w.bw.Flush(); err != nil {
		w.f.Close()
		return err
	}
	if _, err := w.f.WriteAt(encodeLDBMHeader(w.snps, w.samples, w.hash.Sum64()), 0); err != nil {
		w.f.Close()
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// Abort closes the writer and removes the partial container — the error
// path of a streaming producer.
func (w *FileWriter) Abort() {
	w.f.Close()
	os.Remove(w.f.Name())
}

// WriteFile writes a resident matrix as a .ldbm container in one call.
func WriteFile(path string, m *Matrix) error {
	w, err := CreateFile(path, m.SNPs, m.Samples)
	if err != nil {
		return err
	}
	if err := w.WritePanel(m); err != nil {
		w.Abort()
		return err
	}
	if err := w.Close(); err != nil {
		os.Remove(path)
		return err
	}
	return nil
}

// File is a read-only .ldbm container opened either mmap'd (panels are
// zero-copy views into the mapping; the OS pages words in on demand and
// Prefetch turns into MADV_WILLNEED readahead) or windowed (Panel reads
// the requested SNP range into a caller buffer with ReadAt, so resident
// memory is bounded by the window size regardless of file size). All
// methods except Close are safe for concurrent use.
type File struct {
	f       *os.File
	path    string
	snps    int
	samples int
	words   int
	fp      uint64
	mapped  []byte   // non-nil in mmap mode
	data    []uint64 // word view of the mapped data section
}

// OpenFile opens a .ldbm container. With mapped set it mmaps the file
// (falling back with an error on platforms or byte orders where the
// zero-copy view is unavailable); otherwise panels are served by windowed
// reads.
func OpenFile(path string, mapped bool) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	hb := make([]byte, ldbmHeaderSize)
	if _, err := f.ReadAt(hb, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("bitmat: reading ldbm header of %s: %w", path, err)
	}
	if [4]byte(hb[0:4]) != ldbmMagic {
		f.Close()
		return nil, fmt.Errorf("bitmat: %s: bad ldbm magic %q", path, hb[0:4])
	}
	if v := binary.LittleEndian.Uint32(hb[4:]); v != ldbmVersion {
		f.Close()
		return nil, fmt.Errorf("bitmat: %s: unsupported ldbm version %d", path, v)
	}
	snps := binary.LittleEndian.Uint64(hb[16:])
	samples := binary.LittleEndian.Uint64(hb[24:])
	if snps > maxFileSNPs || samples > maxFileSamples {
		f.Close()
		return nil, fmt.Errorf("bitmat: %s: implausible ldbm dimensions %d×%d", path, snps, samples)
	}
	lf := &File{
		f: f, path: path,
		snps: int(snps), samples: int(samples), words: WordsFor(int(samples)),
		fp: binary.LittleEndian.Uint64(hb[32:]),
	}
	want := int64(ldbmHeaderSize) + int64(lf.snps)*int64(lf.words)*8
	if fi.Size() != want {
		f.Close()
		return nil, fmt.Errorf("bitmat: %s: ldbm file is %d bytes, want %d for %d×%d", path, fi.Size(), want, snps, samples)
	}
	if mapped {
		if err := lf.mmap(fi.Size()); err != nil {
			f.Close()
			return nil, fmt.Errorf("bitmat: mmap %s: %w", path, err)
		}
	}
	return lf, nil
}

// NumSNPs returns the SNP count.
func (f *File) NumSNPs() int { return f.snps }

// NumSamples returns the sample count.
func (f *File) NumSamples() int { return f.samples }

// Words returns the packed words per SNP.
func (f *File) Words() int { return f.words }

// Fingerprint returns the dataset fingerprint stamped at write time.
func (f *File) Fingerprint() uint64 { return f.fp }

// Mapped reports whether the file is served from an mmap.
func (f *File) Mapped() bool { return f.mapped != nil }

// Path returns the file's path.
func (f *File) Path() string { return f.path }

// MatrixBytes returns the size of the packed word plane — what a resident
// load would allocate.
func (f *File) MatrixBytes() int64 { return int64(f.snps) * int64(f.words) * 8 }

func (f *File) checkRange(lo, hi int) error {
	if lo < 0 || hi < lo || hi > f.snps {
		return fmt.Errorf("bitmat: %s: panel [%d,%d) of %d SNPs", f.path, lo, hi, f.snps)
	}
	return nil
}

// Panel returns SNPs [lo, hi). In mmap mode the result aliases the
// mapping (zero copy, valid until Close); in windowed mode the range is
// read into buf, which is allocated or grown as needed and returned.
func (f *File) Panel(lo, hi int, buf *Matrix) (*Matrix, error) {
	if err := f.checkRange(lo, hi); err != nil {
		return nil, err
	}
	if f.mapped != nil {
		return &Matrix{
			SNPs: hi - lo, Samples: f.samples, Words: f.words,
			Data: f.data[lo*f.words : hi*f.words : hi*f.words],
		}, nil
	}
	n := (hi - lo) * f.words
	if buf == nil {
		buf = &Matrix{}
	}
	if cap(buf.Data) < n {
		buf.Data = make([]uint64, n)
	}
	buf.SNPs, buf.Samples, buf.Words = hi-lo, f.samples, f.words
	buf.Data = buf.Data[:n]
	if err := f.readWordsAt(buf.Data, int64(ldbmHeaderSize)+int64(lo)*int64(f.words)*8); err != nil {
		return nil, fmt.Errorf("bitmat: %s: reading panel [%d,%d): %w", f.path, lo, hi, err)
	}
	return buf, nil
}

// readWordsAt fills dst with little-endian words from the given byte
// offset. On little-endian hosts the read lands directly in dst's backing
// bytes; otherwise the words are decoded after a buffered read.
func (f *File) readWordsAt(dst []uint64, off int64) error {
	if len(dst) == 0 {
		return nil
	}
	b := unsafe.Slice((*byte)(unsafe.Pointer(&dst[0])), len(dst)*8)
	if _, err := f.f.ReadAt(b, off); err != nil {
		return err
	}
	if !hostLittleEndian() {
		for i := range dst {
			dst[i] = binary.LittleEndian.Uint64(b[i*8:])
		}
	}
	return nil
}

// hostLittleEndian reports the host byte order.
func hostLittleEndian() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}

// Prefetch hints the OS to read SNPs [lo, hi) ahead of use. Only the
// mmap'd mode can express the hint (MADV_WILLNEED); windowed mode relies
// on the scheduler's explicit double buffering instead.
func (f *File) Prefetch(lo, hi int) {
	if f.mapped == nil || f.checkRange(lo, hi) != nil || lo == hi {
		return
	}
	start := int64(ldbmHeaderSize) + int64(lo)*int64(f.words)*8
	end := int64(ldbmHeaderSize) + int64(hi)*int64(f.words)*8
	// Round outward to page boundaries within the mapping.
	const page = 4096
	start -= start % page
	if rem := end % page; rem != 0 {
		end += page - rem
	}
	if end > int64(len(f.mapped)) {
		end = int64(len(f.mapped))
	}
	madvise(f.mapped[start:end])
}

// Close unmaps (if mapped) and closes the file. Panels returned by an
// mmap'd File must not be used after Close.
func (f *File) Close() error {
	var err error
	if f.mapped != nil {
		err = munmap(f.mapped)
		f.mapped, f.data = nil, nil
	}
	if cerr := f.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Load reads the whole container into a resident Matrix — the small-input
// convenience path, and the oracle the out-of-core tests compare against.
// The result owns its storage (an mmap'd view is copied) and its
// fingerprint is verified against the header.
func (f *File) Load() (*Matrix, error) {
	m, err := f.Panel(0, f.snps, &Matrix{})
	if err != nil {
		return nil, err
	}
	if f.mapped != nil {
		m = m.Clone()
	}
	if got := m.Fingerprint(); got != f.fp {
		return nil, fmt.Errorf("bitmat: %s: fingerprint %016x does not match header %016x", f.path, got, f.fp)
	}
	return m, nil
}
