package seqio

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"ldgemm/internal/msa"
)

// fastaLineWidth is the sequence wrap width used by WriteFASTA.
const fastaLineWidth = 70

// WriteFASTA writes an alignment in FASTA format, one record per sequence,
// wrapped at 70 columns. Records are named from aln.Names, falling back to
// seq_<index>.
func WriteFASTA(w io.Writer, aln *msa.Alignment) error {
	if err := aln.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	for s, seq := range aln.Seqs {
		name := fmt.Sprintf("seq_%d", s)
		if aln.Names != nil && aln.Names[s] != "" {
			name = aln.Names[s]
		}
		fmt.Fprintf(bw, ">%s\n", name)
		for off := 0; off < len(seq); off += fastaLineWidth {
			end := min(off+fastaLineWidth, len(seq))
			bw.Write(seq[off:end])
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// ReadFASTA parses FASTA records into an alignment. Sequences may span
// multiple lines; leading/trailing whitespace is ignored. The records must
// form a rectangular alignment.
func ReadFASTA(r io.Reader) (*msa.Alignment, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	aln := &msa.Alignment{}
	var cur []byte
	flush := func() {
		if cur != nil {
			aln.Seqs = append(aln.Seqs, cur)
			cur = nil
		}
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, ">"):
			flush()
			aln.Names = append(aln.Names, strings.TrimSpace(line[1:]))
			cur = []byte{}
		case cur == nil:
			return nil, fmt.Errorf("seqio: FASTA sequence data before first header: %q", line)
		default:
			cur = append(cur, line...)
		}
	}
	flush()
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("seqio: reading FASTA: %w", err)
	}
	if len(aln.Seqs) == 0 {
		return nil, fmt.Errorf("seqio: empty FASTA input")
	}
	if err := aln.Validate(); err != nil {
		return nil, err
	}
	return aln, nil
}
