package seqio

import (
	"bytes"
	"strings"
	"testing"

	"ldgemm/internal/bitmat"
)

// The fuzz targets assert the parsers never panic and that anything they
// accept survives a write/re-read round trip. `go test` runs the seed
// corpus; `go test -fuzz=FuzzReadMS ./internal/seqio` explores further.

func FuzzReadMS(f *testing.F) {
	f.Add("//\nsegsites: 2\npositions: 0.1 0.2\n01\n10\n")
	f.Add("//\nsegsites: 0\n")
	f.Add("ms 4 1\n\n//\nsegsites: 1\npositions: 0.5\n1\n0\n")
	f.Add("//\nsegsites: 3\npositions: 0.1 0.2\n010\n")
	f.Add("//\nsegsites: -1\n")
	f.Fuzz(func(t *testing.T, in string) {
		reps, err := ReadMS(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteMS(&buf, reps); err != nil {
			t.Fatalf("accepted input failed to re-serialize: %v", err)
		}
		again, err := ReadMS(&buf)
		if err != nil {
			t.Fatalf("round trip failed to parse: %v", err)
		}
		if len(again) != len(reps) {
			t.Fatalf("round trip changed replicate count %d → %d", len(reps), len(again))
		}
		for r := range reps {
			if !again[r].Matrix.Equal(reps[r].Matrix) {
				t.Fatalf("round trip changed replicate %d", r)
			}
		}
	})
}

func FuzzReadVCF(f *testing.F) {
	f.Add("#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\ts0\n1\t5\t.\tA\tG\t.\tPASS\t.\tGT\t0|1\n")
	f.Add("#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\ts0\ts1\n1\t5\trs1\tC\tT\t.\t.\t.\tGT\t1\t0\n")
	f.Add("##meta\n#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\ts0\n")
	f.Add("1\t5\t.\tA\tG\t.\tPASS\t.\tGT\t0\n")
	f.Fuzz(func(t *testing.T, in string) {
		v, err := ReadVCF(strings.NewReader(in))
		if err != nil {
			return
		}
		if v.Matrix == nil {
			t.Fatal("accepted VCF with nil matrix")
		}
		if len(v.Sites) != v.Matrix.SNPs {
			t.Fatalf("sites %d vs SNPs %d", len(v.Sites), v.Matrix.SNPs)
		}
		if v.Ploidy != 1 && v.Ploidy != 2 {
			t.Fatalf("ploidy %d", v.Ploidy)
		}
	})
}

func FuzzReadBinary(f *testing.F) {
	var seed bytes.Buffer
	m := mustMosaic(f, 5, 10)
	if err := WriteBinary(&seed, m); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("LDGM"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, in []byte) {
		got, err := ReadBinary(bytes.NewReader(in))
		if err != nil {
			return
		}
		// Accepted inputs must satisfy the padding invariant.
		if err := got.ValidatePadding(); err != nil {
			t.Fatal(err)
		}
	})
}

func FuzzReadFASTA(f *testing.F) {
	f.Add(">a\nACGT\n>b\nTTAA\n")
	f.Add(">x\nAC\nGT\n")
	f.Add("no header\n")
	f.Fuzz(func(t *testing.T, in string) {
		aln, err := ReadFASTA(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := aln.Validate(); err != nil {
			t.Fatalf("accepted invalid alignment: %v", err)
		}
	})
}

func FuzzReadLD(f *testing.F) {
	f.Add("CHR_A\tBP_A\tSNP_A\tCHR_B\tBP_B\tSNP_B\tR2\tD\tDP\n1\t1\trs1\t1\t2\trs2\t0.5\t0.1\t0.9\n")
	f.Add("CHR_A\tBP_A\tSNP_A\tCHR_B\tBP_B\tSNP_B\tR2\tD\tDP\n")
	f.Fuzz(func(t *testing.T, in string) {
		recs, err := ReadLD(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteLD(&buf, recs); err != nil {
			t.Fatalf("accepted records failed to write: %v", err)
		}
	})
}

// mustMosaic builds a small deterministic matrix for fuzz seeds.
func mustMosaic(f *testing.F, snps, samples int) *bitmat.Matrix {
	f.Helper()
	m := bitmat.New(snps, samples)
	for i := 0; i < snps; i++ {
		m.SetBit(i, (i*7)%samples)
	}
	return m
}
