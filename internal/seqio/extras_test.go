package seqio

import (
	"bytes"
	"compress/gzip"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ldgemm/internal/popsim"
)

func TestOpenMaybeGzipPlainAndCompressed(t *testing.T) {
	dir := t.TempDir()
	m, err := popsim.Mosaic(10, 20, popsim.MosaicConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var raw bytes.Buffer
	if err := WriteBinary(&raw, m); err != nil {
		t.Fatal(err)
	}

	plain := filepath.Join(dir, "m.ldgm")
	if err := os.WriteFile(plain, raw.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	zipped := filepath.Join(dir, "m.ldgm.gz")
	var zbuf bytes.Buffer
	zw := gzip.NewWriter(&zbuf)
	zw.Write(raw.Bytes())
	zw.Close()
	if err := os.WriteFile(zipped, zbuf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	// Also a gzip file with a non-gz extension: magic detection must win.
	disguised := filepath.Join(dir, "m2.ldgm")
	if err := os.WriteFile(disguised, zbuf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	for _, path := range []string{plain, zipped, disguised} {
		r, closer, err := OpenMaybeGzip(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		got, err := ReadBinary(r)
		closer.Close()
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if !got.Equal(m) {
			t.Fatalf("%s: round trip mismatch", path)
		}
	}
}

func TestCreateMaybeGzip(t *testing.T) {
	dir := t.TempDir()
	m, err := popsim.Mosaic(6, 12, popsim.MosaicConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"out.ldgm", "out.ldgm.gz"} {
		path := filepath.Join(dir, name)
		w, closer, err := CreateMaybeGzip(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteBinary(w, m); err != nil {
			t.Fatal(err)
		}
		if err := closer.Close(); err != nil {
			t.Fatal(err)
		}
		r, rcloser, err := OpenMaybeGzip(path)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ReadBinary(r)
		rcloser.Close()
		if err != nil || !got.Equal(m) {
			t.Fatalf("%s: round trip failed: %v", name, err)
		}
	}
}

func TestOpenMaybeGzipMissing(t *testing.T) {
	if _, _, err := OpenMaybeGzip("/nonexistent/file"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestBimRoundTrip(t *testing.T) {
	recs := []BimRecord{
		{Chrom: "1", ID: "rs1", CM: 0.5, Pos: 100, Allele1: 'G', Allele2: 'A'},
		{Chrom: "X", ID: "", CM: 0, Pos: 2000, Allele1: 'T', Allele2: 'C'},
	}
	var buf bytes.Buffer
	if err := WriteBim(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBim(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("%d records", len(got))
	}
	if got[0] != recs[0] {
		t.Fatalf("record 0: %+v", got[0])
	}
	if got[1].ID != "." { // empty ID is written as "."
		t.Fatalf("record 1 ID %q", got[1].ID)
	}
}

func TestReadBimErrors(t *testing.T) {
	cases := map[string]string{
		"fields":  "1 rs1 0 100 G\n",
		"cm":      "1 rs1 x 100 G A\n",
		"pos":     "1 rs1 0 xx G A\n",
		"alleles": "1 rs1 0 100 GT A\n",
	}
	for name, in := range cases {
		if _, err := ReadBim(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestFamRoundTrip(t *testing.T) {
	recs := []FamRecord{
		{FamilyID: "F1", SampleID: "s1", FatherID: "s9", MotherID: "s8", Sex: 1, Phenotype: "2"},
		{SampleID: "s2"},
	}
	var buf bytes.Buffer
	if err := WriteFam(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFam(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != recs[0] {
		t.Fatalf("record 0: %+v", got[0])
	}
	if got[1].FamilyID != "s2" || got[1].Phenotype != "-9" || got[1].FatherID != "" {
		t.Fatalf("defaults not applied: %+v", got[1])
	}
}

func TestReadFamErrors(t *testing.T) {
	if _, err := ReadFam(strings.NewReader("F s 0 0 5 -9\n")); err == nil {
		t.Fatal("bad sex code accepted")
	}
	if _, err := ReadFam(strings.NewReader("F s 0 0 1\n")); err == nil {
		t.Fatal("short line accepted")
	}
}

func TestDefaultBimFam(t *testing.T) {
	bim := DefaultBim(3, "2", 50)
	if len(bim) != 3 || bim[2].Pos != 101 || bim[0].Chrom != "2" {
		t.Fatalf("DefaultBim: %+v", bim)
	}
	fam := DefaultFam(2)
	if len(fam) != 2 || fam[1].SampleID != "sample_1" {
		t.Fatalf("DefaultFam: %+v", fam)
	}
}

func TestLDTextRoundTrip(t *testing.T) {
	recs := []LDRecord{
		{ChromA: "1", PosA: 100, IDA: "rs1", ChromB: "1", PosB: 250, IDB: "rs2", R2: 0.75, D: 0.12, DPrime: 0.9},
		{ChromA: "2", PosA: 5, IDA: "", ChromB: "2", PosB: 9, IDB: "", R2: 0, D: -0.01, DPrime: -0.5},
	}
	var buf bytes.Buffer
	if err := WriteLD(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLD(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("%d records", len(got))
	}
	if got[0] != recs[0] {
		t.Fatalf("record 0: %+v", got[0])
	}
	if got[1].IDA != "." || got[1].DPrime != -0.5 {
		t.Fatalf("record 1: %+v", got[1])
	}
}

func TestReadLDErrors(t *testing.T) {
	cases := map[string]string{
		"empty":      "",
		"bad header": "X\tY\n",
		"fields":     "CHR_A\tBP_A\tSNP_A\tCHR_B\tBP_B\tSNP_B\tR2\tD\tDP\n1\t2\n",
		"bad bp":     "CHR_A\tBP_A\tSNP_A\tCHR_B\tBP_B\tSNP_B\tR2\tD\tDP\n1\tx\t.\t1\t2\t.\t0\t0\t0\n",
		"bad r2":     "CHR_A\tBP_A\tSNP_A\tCHR_B\tBP_B\tSNP_B\tR2\tD\tDP\n1\t1\t.\t1\t2\t.\tz\t0\t0\n",
	}
	for name, in := range cases {
		if _, err := ReadLD(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
