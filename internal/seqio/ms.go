// Package seqio reads and writes the file formats the LD toolchain
// consumes and produces: Hudson's ms output (the lingua franca of
// population-genetic simulators, which OmegaPlus also reads), FASTA
// alignments, a minimal VCF subset, PLINK-style .bed genotype files, and a
// compact binary container for bit-packed genomic matrices.
package seqio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"ldgemm/internal/bitmat"
)

// MSReplicate is one simulation replicate of an ms-format file.
type MSReplicate struct {
	// Matrix holds the segregating sites (SNP-major bit matrix).
	Matrix *bitmat.Matrix
	// Positions are the relative SNP positions in [0, 1).
	Positions []float64
}

// WriteMS writes replicates in Hudson's ms output format. The header
// command line is synthesized from the first replicate's dimensions.
func WriteMS(w io.Writer, reps []MSReplicate) error {
	bw := bufio.NewWriter(w)
	samples, snps := 0, 0
	if len(reps) > 0 {
		samples, snps = reps[0].Matrix.Samples, reps[0].Matrix.SNPs
	}
	fmt.Fprintf(bw, "ms %d %d -s %d\nldgemm seqio\n", samples, len(reps), snps)
	for _, rep := range reps {
		if len(rep.Positions) != rep.Matrix.SNPs {
			return fmt.Errorf("seqio: %d positions for %d SNPs", len(rep.Positions), rep.Matrix.SNPs)
		}
		fmt.Fprintf(bw, "\n//\nsegsites: %d\n", rep.Matrix.SNPs)
		if rep.Matrix.SNPs > 0 {
			bw.WriteString("positions:")
			for _, p := range rep.Positions {
				fmt.Fprintf(bw, " %.6f", p)
			}
			bw.WriteByte('\n')
			row := make([]byte, rep.Matrix.SNPs)
			for s := 0; s < rep.Matrix.Samples; s++ {
				for i := 0; i < rep.Matrix.SNPs; i++ {
					if rep.Matrix.Bit(i, s) {
						row[i] = '1'
					} else {
						row[i] = '0'
					}
				}
				bw.Write(row)
				bw.WriteByte('\n')
			}
		}
	}
	return bw.Flush()
}

// ReadMS parses ms-format output and returns all replicates.
func ReadMS(r io.Reader) ([]MSReplicate, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	var reps []MSReplicate
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) != "//" {
			continue
		}
		rep, err := readMSReplicate(sc)
		if err != nil {
			return nil, err
		}
		reps = append(reps, rep)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("seqio: reading ms: %w", err)
	}
	if len(reps) == 0 {
		return nil, fmt.Errorf("seqio: no ms replicates found (missing // separator)")
	}
	return reps, nil
}

func readMSReplicate(sc *bufio.Scanner) (MSReplicate, error) {
	var rep MSReplicate
	if !sc.Scan() {
		return rep, fmt.Errorf("seqio: ms replicate truncated before segsites")
	}
	line := strings.TrimSpace(sc.Text())
	if !strings.HasPrefix(line, "segsites:") {
		return rep, fmt.Errorf("seqio: expected 'segsites:', got %q", line)
	}
	segsites, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(line, "segsites:")))
	if err != nil || segsites < 0 {
		return rep, fmt.Errorf("seqio: bad segsites in %q", line)
	}
	if segsites == 0 {
		rep.Matrix = bitmat.New(0, 0)
		return rep, nil
	}
	if !sc.Scan() {
		return rep, fmt.Errorf("seqio: ms replicate truncated before positions")
	}
	line = strings.TrimSpace(sc.Text())
	if !strings.HasPrefix(line, "positions:") {
		return rep, fmt.Errorf("seqio: expected 'positions:', got %q", line)
	}
	fields := strings.Fields(strings.TrimPrefix(line, "positions:"))
	if len(fields) != segsites {
		return rep, fmt.Errorf("seqio: %d positions for %d segsites", len(fields), segsites)
	}
	rep.Positions = make([]float64, segsites)
	for i, f := range fields {
		rep.Positions[i], err = strconv.ParseFloat(f, 64)
		if err != nil {
			return rep, fmt.Errorf("seqio: bad position %q: %w", f, err)
		}
	}
	var rows [][]byte
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			break
		}
		if line == "//" {
			return rep, fmt.Errorf("seqio: replicate separator inside haplotype block")
		}
		if len(line) != segsites {
			return rep, fmt.Errorf("seqio: haplotype row has %d characters, want %d", len(line), segsites)
		}
		row := make([]byte, segsites)
		for i := 0; i < segsites; i++ {
			switch line[i] {
			case '0':
				row[i] = 0
			case '1':
				row[i] = 1
			default:
				return rep, fmt.Errorf("seqio: invalid haplotype character %q", line[i])
			}
		}
		rows = append(rows, row)
	}
	if len(rows) == 0 {
		return rep, fmt.Errorf("seqio: replicate has no haplotype rows")
	}
	rep.Matrix, err = bitmat.FromRows(rows)
	return rep, err
}
