package seqio

import (
	"os"
	"path/filepath"
	"testing"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/popsim"
)

func TestPlinkFilesetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	hap, err := popsim.Mosaic(17, 40, popsim.MosaicConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	g, err := bitmat.FromHaplotypes(hap)
	if err != nil {
		t.Fatal(err)
	}
	g.Set(2, 3, bitmat.GenoMissing)
	prefix := filepath.Join(dir, "cohort")
	if err := WritePlinkFileset(prefix, g, nil, nil); err != nil {
		t.Fatal(err)
	}
	// Load by any of the three paths.
	for _, p := range []string{prefix, prefix + ".bed", prefix + ".bim", prefix + ".fam"} {
		fs, err := ReadPlinkFileset(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if fs.Genotypes.SNPs != 17 || fs.Genotypes.Samples != 20 {
			t.Fatalf("dims %dx%d", fs.Genotypes.SNPs, fs.Genotypes.Samples)
		}
		if len(fs.Variants) != 17 || len(fs.Samples) != 20 {
			t.Fatalf("metadata %d/%d", len(fs.Variants), len(fs.Samples))
		}
		for i := 0; i < 17; i++ {
			for s := 0; s < 20; s++ {
				if fs.Genotypes.Get(i, s) != g.Get(i, s) {
					t.Fatalf("genotype (%d,%d) mismatch", i, s)
				}
			}
		}
	}
}

func TestPlinkFilesetValidation(t *testing.T) {
	dir := t.TempDir()
	g := bitmat.NewGenotypeMatrix(3, 4)
	if err := WritePlinkFileset(filepath.Join(dir, "x"), g, make([]BimRecord, 2), nil); err == nil {
		t.Fatal("bim count mismatch accepted")
	}
	if err := WritePlinkFileset(filepath.Join(dir, "x"), g, nil, make([]FamRecord, 9)); err == nil {
		t.Fatal("fam count mismatch accepted")
	}
	if _, err := ReadPlinkFileset(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing fileset accepted")
	}
}

func TestPlinkFilesetDimensionMismatch(t *testing.T) {
	// A .bed that does not match its .bim/.fam dims must be rejected.
	dir := t.TempDir()
	g := bitmat.NewGenotypeMatrix(4, 8)
	prefix := filepath.Join(dir, "bad")
	if err := WritePlinkFileset(prefix, g, nil, nil); err != nil {
		t.Fatal(err)
	}
	// Overwrite the .bim with too many variants.
	bimFile := prefix + ".bim"
	recs := DefaultBim(6, "1", 10)
	f, err := os.Create(bimFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteBim(f, recs); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := ReadPlinkFileset(prefix); err == nil {
		t.Fatal("inconsistent fileset accepted")
	}
}
