package seqio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"ldgemm/internal/bitmat"
)

// VCFSite is the per-record metadata of a VCF variant.
type VCFSite struct {
	Chrom string
	Pos   int // 1-based, per VCF convention
	ID    string
	Ref   byte
	Alt   byte
}

// VCF is the minimal phased-haplotype VCF subset this package supports:
// biallelic SNPs with GT-only FORMAT and phased diploid ("0|1") or haploid
// ("0"/"1") genotype fields.
type VCF struct {
	Sites []VCFSite
	// Matrix holds one column per site and one row per *haplotype*
	// (diploid samples contribute two rows each, in sample order).
	Matrix *bitmat.Matrix
	// SampleNames are the VCF column headers past FORMAT.
	SampleNames []string
	// Ploidy is 1 or 2 (uniform across the file).
	Ploidy int
}

// WriteVCF writes haplotypes as a phased VCF. With ploidy 2 consecutive
// haplotype pairs form one diploid sample; the haplotype count must then
// be even.
func WriteVCF(w io.Writer, m *bitmat.Matrix, sites []VCFSite, ploidy int) error {
	if len(sites) != m.SNPs {
		return fmt.Errorf("seqio: %d sites for %d SNPs", len(sites), m.SNPs)
	}
	if ploidy != 1 && ploidy != 2 {
		return fmt.Errorf("seqio: unsupported ploidy %d", ploidy)
	}
	if ploidy == 2 && m.Samples%2 != 0 {
		return fmt.Errorf("seqio: odd haplotype count %d for diploid VCF", m.Samples)
	}
	bw := bufio.NewWriter(w)
	bw.WriteString("##fileformat=VCFv4.2\n##source=ldgemm\n")
	bw.WriteString("#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT")
	n := m.Samples / ploidy
	for s := 0; s < n; s++ {
		fmt.Fprintf(bw, "\tsample_%d", s)
	}
	bw.WriteByte('\n')
	for i, site := range sites {
		id := site.ID
		if id == "" {
			id = "."
		}
		fmt.Fprintf(bw, "%s\t%d\t%s\t%c\t%c\t.\tPASS\t.\tGT", site.Chrom, site.Pos, id, site.Ref, site.Alt)
		for s := 0; s < n; s++ {
			if ploidy == 1 {
				fmt.Fprintf(bw, "\t%d", b2i(m.Bit(i, s)))
			} else {
				fmt.Fprintf(bw, "\t%d|%d", b2i(m.Bit(i, 2*s)), b2i(m.Bit(i, 2*s+1)))
			}
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// ReadVCF parses the supported VCF subset. Records with multi-base or
// multi-allelic REF/ALT are rejected.
func ReadVCF(r io.Reader) (*VCF, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	var out VCF
	type record struct {
		site VCFSite
		gts  []string
	}
	var records []record
	headerSeen := false
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "##"):
			continue
		case strings.HasPrefix(line, "#CHROM"):
			fields := strings.Split(line, "\t")
			if len(fields) < 10 {
				return nil, fmt.Errorf("seqio: VCF header has no sample columns")
			}
			out.SampleNames = fields[9:]
			headerSeen = true
		case strings.TrimSpace(line) == "":
			continue
		default:
			if !headerSeen {
				return nil, fmt.Errorf("seqio: VCF record before #CHROM header")
			}
			fields := strings.Split(line, "\t")
			if len(fields) != 9+len(out.SampleNames) {
				return nil, fmt.Errorf("seqio: VCF record has %d fields, want %d", len(fields), 9+len(out.SampleNames))
			}
			pos, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("seqio: bad POS %q: %w", fields[1], err)
			}
			if len(fields[3]) != 1 || len(fields[4]) != 1 {
				return nil, fmt.Errorf("seqio: only biallelic SNPs supported (REF=%q ALT=%q)", fields[3], fields[4])
			}
			if !strings.HasPrefix(fields[8], "GT") {
				return nil, fmt.Errorf("seqio: FORMAT %q does not lead with GT", fields[8])
			}
			records = append(records, record{
				site: VCFSite{Chrom: fields[0], Pos: pos, ID: fields[2], Ref: fields[3][0], Alt: fields[4][0]},
				gts:  fields[9:],
			})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("seqio: reading VCF: %w", err)
	}
	if !headerSeen {
		return nil, fmt.Errorf("seqio: missing #CHROM header")
	}

	// Determine ploidy from the first genotype.
	out.Ploidy = 1
	if len(records) > 0 && strings.ContainsAny(records[0].gts[0], "|/") {
		out.Ploidy = 2
	}
	haps := len(out.SampleNames) * out.Ploidy
	out.Matrix = bitmat.New(len(records), haps)
	for i, rec := range records {
		out.Sites = append(out.Sites, rec.site)
		for s, gt := range rec.gts {
			gt = strings.SplitN(gt, ":", 2)[0]
			alleles := strings.FieldsFunc(gt, func(r rune) bool { return r == '|' || r == '/' })
			if len(alleles) != out.Ploidy {
				return nil, fmt.Errorf("seqio: genotype %q has ploidy %d, want %d", gt, len(alleles), out.Ploidy)
			}
			for h, a := range alleles {
				switch a {
				case "0":
				case "1":
					out.Matrix.SetBit(i, s*out.Ploidy+h)
				default:
					return nil, fmt.Errorf("seqio: unsupported allele %q in genotype %q", a, gt)
				}
			}
		}
	}
	return &out, nil
}
