package seqio

import (
	"bufio"
	"fmt"
	"io"

	"ldgemm/internal/bitmat"
)

// Streaming .bed access: the whole-matrix ReadBED materializes every
// variant, which defeats an out-of-core build whose entire point is that
// the genotype data does not fit. BEDReader walks the same variant-major
// stream a window of variants at a time, so the genome-scale pipeline
// (.bed → .ldbm → tile store) holds one window, never the dataset.

// BEDReader reads a variant-major PLINK .bed stream window by window.
type BEDReader struct {
	br      *bufio.Reader
	snps    int
	samples int
	pos     int
	row     []byte
}

// NewBEDReader validates the .bed magic and prepares windowed reads of a
// snps×samples stream (counts come from the companion .bim/.fam files,
// exactly as with ReadBED).
func NewBEDReader(r io.Reader, snps, samples int) (*BEDReader, error) {
	if snps < 0 || samples < 1 {
		return nil, fmt.Errorf("seqio: invalid bed dimensions %d×%d", snps, samples)
	}
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [3]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("seqio: reading bed magic: %w", err)
	}
	if magic[0] != bedMagic[0] || magic[1] != bedMagic[1] {
		return nil, fmt.Errorf("seqio: bad bed magic %#x %#x", magic[0], magic[1])
	}
	if magic[2] != 0x01 {
		return nil, fmt.Errorf("seqio: only variant-major bed supported (mode %#x)", magic[2])
	}
	return &BEDReader{
		br: br, snps: snps, samples: samples,
		row: make([]byte, (samples+3)/4),
	}, nil
}

// SNPs returns the total variant count; Pos the next unread variant.
func (r *BEDReader) SNPs() int { return r.snps }
func (r *BEDReader) Pos() int  { return r.pos }

// Next decodes the next min(rows, remaining) variants into a genotype
// window. It returns nil once every variant has been read — after
// verifying the stream ends exactly there, so a dimension mismatch cannot
// silently truncate or misalign a conversion.
func (r *BEDReader) Next(rows int) (*bitmat.GenotypeMatrix, error) {
	if rows < 1 {
		return nil, fmt.Errorf("seqio: invalid bed window %d", rows)
	}
	if r.pos >= r.snps {
		if _, err := r.br.ReadByte(); err != io.EOF {
			return nil, fmt.Errorf("seqio: trailing bytes after %d bed variants", r.snps)
		}
		return nil, nil
	}
	rows = min(rows, r.snps-r.pos)
	g := bitmat.NewGenotypeMatrix(rows, r.samples)
	for i := 0; i < rows; i++ {
		if _, err := io.ReadFull(r.br, r.row); err != nil {
			return nil, fmt.Errorf("seqio: bed truncated at variant %d: %w", r.pos+i, err)
		}
		for s := 0; s < r.samples; s++ {
			g.Set(i, s, r.row[s/4]>>(2*uint(s%4))&0b11)
		}
	}
	r.pos += rows
	return g, nil
}

// BEDWriter writes a variant-major PLINK .bed stream window by window —
// the output half of the streaming pipeline, for generators that never
// hold the full genotype matrix. The byte stream is identical to what
// WriteBED would produce for the concatenated windows.
type BEDWriter struct {
	bw      *bufio.Writer
	samples int
	row     []byte
}

// NewBEDWriter writes the .bed magic and prepares windowed appends of
// variants over the given (diploid) sample count.
func NewBEDWriter(w io.Writer, samples int) (*BEDWriter, error) {
	if samples < 1 {
		return nil, fmt.Errorf("seqio: invalid bed sample count %d", samples)
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(bedMagic[:]); err != nil {
		return nil, err
	}
	return &BEDWriter{bw: bw, samples: samples, row: make([]byte, (samples+3)/4)}, nil
}

// WriteWindow appends a window of variants; its sample count must match
// the writer's.
func (w *BEDWriter) WriteWindow(g *bitmat.GenotypeMatrix) error {
	if g.Samples != w.samples {
		return fmt.Errorf("seqio: bed window has %d samples, writer %d", g.Samples, w.samples)
	}
	for i := 0; i < g.SNPs; i++ {
		for b := range w.row {
			w.row[b] = 0
		}
		for s := 0; s < g.Samples; s++ {
			w.row[s/4] |= g.Get(i, s) << (2 * uint(s%4))
		}
		if _, err := w.bw.Write(w.row); err != nil {
			return err
		}
	}
	return nil
}

// Flush drains the buffered stream (the .bed format has no trailer).
func (w *BEDWriter) Flush() error { return w.bw.Flush() }

// BEDToLDBM converts a variant-major .bed stream into a .ldbm bit-matrix
// container at path, windowRows variants at a time (default 1024). Each
// genotype window is pseudo-phased into 2×samples haplotype rows exactly
// as the whole-matrix load path does (per-variant, so windowing cannot
// change a single bit), then appended to the container. Missing genotypes
// are rejected, as in PseudoPhase. Memory stays O(window), never
// O(dataset).
func BEDToLDBM(r io.Reader, snps, samples int, path string, windowRows int) error {
	if windowRows < 1 {
		windowRows = 1024
	}
	br, err := NewBEDReader(r, snps, samples)
	if err != nil {
		return err
	}
	w, err := bitmat.CreateFile(path, snps, 2*samples)
	if err != nil {
		return err
	}
	for {
		g, err := br.Next(windowRows)
		if err != nil {
			w.Abort()
			return err
		}
		if g == nil {
			break
		}
		h, err := g.PseudoPhase()
		if err != nil {
			w.Abort()
			return fmt.Errorf("seqio: variants %d..%d: %w", br.Pos()-g.SNPs, br.Pos()-1, err)
		}
		if err := w.WritePanel(h); err != nil {
			w.Abort()
			return err
		}
	}
	return w.Close()
}
