package seqio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// BimRecord is one variant line of a PLINK .bim file (the per-variant
// companion to .bed).
type BimRecord struct {
	Chrom   string
	ID      string
	CM      float64 // genetic distance in centimorgans
	Pos     int     // base-pair position
	Allele1 byte    // corresponds to bit value 0b11 (hom-alt) side
	Allele2 byte
}

// FamRecord is one sample line of a PLINK .fam file.
type FamRecord struct {
	FamilyID  string
	SampleID  string
	FatherID  string
	MotherID  string
	Sex       int // 1 male, 2 female, 0 unknown
	Phenotype string
}

// WriteBim writes variant records, tab-delimited.
func WriteBim(w io.Writer, recs []BimRecord) error {
	bw := bufio.NewWriter(w)
	for _, r := range recs {
		id := r.ID
		if id == "" {
			id = "."
		}
		fmt.Fprintf(bw, "%s\t%s\t%g\t%d\t%c\t%c\n", r.Chrom, id, r.CM, r.Pos, r.Allele1, r.Allele2)
	}
	return bw.Flush()
}

// ReadBim parses a .bim file (whitespace-delimited, 6 columns).
func ReadBim(r io.Reader) ([]BimRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var out []BimRecord
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		f := strings.Fields(text)
		if len(f) != 6 {
			return nil, fmt.Errorf("seqio: bim line %d has %d fields, want 6", line, len(f))
		}
		cm, err := strconv.ParseFloat(f[2], 64)
		if err != nil {
			return nil, fmt.Errorf("seqio: bim line %d: bad cM %q", line, f[2])
		}
		pos, err := strconv.Atoi(f[3])
		if err != nil {
			return nil, fmt.Errorf("seqio: bim line %d: bad position %q", line, f[3])
		}
		if len(f[4]) != 1 || len(f[5]) != 1 {
			return nil, fmt.Errorf("seqio: bim line %d: only single-base alleles supported", line)
		}
		out = append(out, BimRecord{
			Chrom: f[0], ID: f[1], CM: cm, Pos: pos, Allele1: f[4][0], Allele2: f[5][0],
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("seqio: reading bim: %w", err)
	}
	return out, nil
}

// WriteFam writes sample records, tab-delimited.
func WriteFam(w io.Writer, recs []FamRecord) error {
	bw := bufio.NewWriter(w)
	for _, r := range recs {
		pheno := r.Phenotype
		if pheno == "" {
			pheno = "-9"
		}
		fam := r.FamilyID
		if fam == "" {
			fam = r.SampleID
		}
		orDot := func(s string) string {
			if s == "" {
				return "0"
			}
			return s
		}
		fmt.Fprintf(bw, "%s\t%s\t%s\t%s\t%d\t%s\n",
			fam, r.SampleID, orDot(r.FatherID), orDot(r.MotherID), r.Sex, pheno)
	}
	return bw.Flush()
}

// ReadFam parses a .fam file (whitespace-delimited, 6 columns).
func ReadFam(r io.Reader) ([]FamRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var out []FamRecord
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		f := strings.Fields(text)
		if len(f) != 6 {
			return nil, fmt.Errorf("seqio: fam line %d has %d fields, want 6", line, len(f))
		}
		sex, err := strconv.Atoi(f[4])
		if err != nil || sex < 0 || sex > 2 {
			return nil, fmt.Errorf("seqio: fam line %d: bad sex code %q", line, f[4])
		}
		out = append(out, FamRecord{
			FamilyID: f[0], SampleID: f[1], FatherID: zeroEmpty(f[2]), MotherID: zeroEmpty(f[3]),
			Sex: sex, Phenotype: f[5],
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("seqio: reading fam: %w", err)
	}
	return out, nil
}

func zeroEmpty(s string) string {
	if s == "0" {
		return ""
	}
	return s
}

// DefaultBim synthesizes variant records for a matrix with n SNPs: ids
// snp_<i>, positions spaced basePairSpacing apart.
func DefaultBim(n int, chrom string, basePairSpacing int) []BimRecord {
	out := make([]BimRecord, n)
	for i := range out {
		out[i] = BimRecord{
			Chrom: chrom, ID: fmt.Sprintf("snp_%d", i),
			Pos: 1 + i*basePairSpacing, Allele1: 'G', Allele2: 'A',
		}
	}
	return out
}

// DefaultFam synthesizes sample records for n diploid samples.
func DefaultFam(n int) []FamRecord {
	out := make([]FamRecord, n)
	for i := range out {
		out[i] = FamRecord{SampleID: fmt.Sprintf("sample_%d", i)}
	}
	return out
}
