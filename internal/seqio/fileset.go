package seqio

import (
	"fmt"
	"os"
	"strings"

	"ldgemm/internal/bitmat"
)

// PlinkFileset is a loaded PLINK binary fileset: the genotype matrix with
// its variant and sample metadata.
type PlinkFileset struct {
	Genotypes *bitmat.GenotypeMatrix
	Variants  []BimRecord
	Samples   []FamRecord
}

// ReadPlinkFileset loads the .bed/.bim/.fam triple for the given path
// (any of the three extensions, or the bare prefix). Dimensions come from
// the companion files, as PLINK defines them.
func ReadPlinkFileset(path string) (*PlinkFileset, error) {
	prefix := path
	for _, ext := range []string{".bed", ".bim", ".fam"} {
		prefix = strings.TrimSuffix(prefix, ext)
	}
	bim, err := readBimFile(prefix + ".bim")
	if err != nil {
		return nil, err
	}
	fam, err := readFamFile(prefix + ".fam")
	if err != nil {
		return nil, err
	}
	bedPath := prefix + ".bed"
	r, closer, err := OpenMaybeGzip(bedPath)
	if err != nil {
		return nil, err
	}
	defer closer.Close()
	g, err := ReadBED(r, len(bim), len(fam))
	if err != nil {
		return nil, fmt.Errorf("seqio: %s: %w", bedPath, err)
	}
	return &PlinkFileset{Genotypes: g, Variants: bim, Samples: fam}, nil
}

// WritePlinkFileset writes the .bed/.bim/.fam triple under the prefix.
// Variant/sample metadata defaults are synthesized when nil.
func WritePlinkFileset(prefix string, g *bitmat.GenotypeMatrix, bim []BimRecord, fam []FamRecord) error {
	if bim == nil {
		bim = DefaultBim(g.SNPs, "1", 100)
	}
	if fam == nil {
		fam = DefaultFam(g.Samples)
	}
	if len(bim) != g.SNPs {
		return fmt.Errorf("seqio: %d bim records for %d variants", len(bim), g.SNPs)
	}
	if len(fam) != g.Samples {
		return fmt.Errorf("seqio: %d fam records for %d samples", len(fam), g.Samples)
	}
	bedFile, err := os.Create(prefix + ".bed")
	if err != nil {
		return err
	}
	defer bedFile.Close()
	if err := WriteBED(bedFile, g); err != nil {
		return err
	}
	bimFile, err := os.Create(prefix + ".bim")
	if err != nil {
		return err
	}
	defer bimFile.Close()
	if err := WriteBim(bimFile, bim); err != nil {
		return err
	}
	famFile, err := os.Create(prefix + ".fam")
	if err != nil {
		return err
	}
	defer famFile.Close()
	return WriteFam(famFile, fam)
}

func readBimFile(path string) ([]BimRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBim(f)
}

func readFamFile(path string) ([]FamRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadFam(f)
}
