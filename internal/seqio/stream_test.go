package seqio

import (
	"bytes"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"ldgemm/internal/bitmat"
)

func mustReadFile(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// randomGenotypes builds a genotype matrix; withMissing sprinkles missing
// calls (code 01) for the reader test (the phasing path rejects them).
func randomGenotypes(rng *rand.Rand, snps, samples int, withMissing bool) *bitmat.GenotypeMatrix {
	g := bitmat.NewGenotypeMatrix(snps, samples)
	codes := []uint8{0b00, 0b10, 0b11}
	if withMissing {
		codes = append(codes, 0b01)
	}
	for i := 0; i < snps; i++ {
		for s := 0; s < samples; s++ {
			g.Set(i, s, codes[rng.Intn(len(codes))])
		}
	}
	return g
}

func bedBytes(t *testing.T, g *bitmat.GenotypeMatrix) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteBED(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestBEDReaderMatchesReadBED: windowed decoding reassembles to exactly
// what the whole-matrix reader produces, at every window size.
func TestBEDReaderMatchesReadBED(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomGenotypes(rng, 89, 27, true)
	raw := bedBytes(t, g)
	want, err := ReadBED(bytes.NewReader(raw), g.SNPs, g.Samples)
	if err != nil {
		t.Fatal(err)
	}
	for _, window := range []int{1, 13, 89, 500} {
		r, err := NewBEDReader(bytes.NewReader(raw), g.SNPs, g.Samples)
		if err != nil {
			t.Fatal(err)
		}
		pos := 0
		for {
			w, err := r.Next(window)
			if err != nil {
				t.Fatalf("window=%d: %v", window, err)
			}
			if w == nil {
				break
			}
			for i := 0; i < w.SNPs; i++ {
				for s := 0; s < g.Samples; s++ {
					if w.Get(i, s) != want.Get(pos+i, s) {
						t.Fatalf("window=%d: genotype (%d,%d) mismatch", window, pos+i, s)
					}
				}
			}
			pos += w.SNPs
		}
		if pos != g.SNPs {
			t.Fatalf("window=%d: decoded %d variants, want %d", window, pos, g.SNPs)
		}
	}
}

func TestBEDReaderRejectsBadStreams(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := randomGenotypes(rng, 20, 9, false)
	raw := bedBytes(t, g)

	if _, err := NewBEDReader(bytes.NewReader([]byte{0, 0, 1}), 4, 4); err == nil {
		t.Fatal("bad magic must be rejected")
	}
	r, err := NewBEDReader(bytes.NewReader(raw[:len(raw)-2]), g.SNPs, g.Samples)
	if err != nil {
		t.Fatal(err)
	}
	for {
		w, werr := r.Next(8)
		if werr != nil {
			break // truncation surfaced, as it must be
		}
		if w == nil {
			t.Fatal("truncated stream decoded cleanly")
		}
	}
	// Trailing bytes: claim fewer variants than the stream holds.
	r, err = NewBEDReader(bytes.NewReader(raw), g.SNPs-1, g.Samples)
	if err != nil {
		t.Fatal(err)
	}
	for {
		w, werr := r.Next(8)
		if werr != nil {
			break
		}
		if w == nil {
			t.Fatal("stream with trailing bytes decoded cleanly")
		}
	}
}

// TestBEDToLDBM: the streaming converter produces exactly the container
// the whole-matrix pseudo-phase path would, at any window size.
func TestBEDToLDBM(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := randomGenotypes(rng, 75, 22, false)
	raw := bedBytes(t, g)
	want, err := g.PseudoPhase()
	if err != nil {
		t.Fatal(err)
	}
	var ref []byte
	for _, window := range []int{1, 16, 75, 1000} {
		path := filepath.Join(t.TempDir(), "g.ldbm")
		if err := BEDToLDBM(bytes.NewReader(raw), g.SNPs, g.Samples, path, window); err != nil {
			t.Fatalf("window=%d: %v", window, err)
		}
		f, err := bitmat.OpenFile(path, false)
		if err != nil {
			t.Fatal(err)
		}
		got, err := f.Load()
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("window=%d: haplotypes differ from whole-matrix PseudoPhase", window)
		}
		if ref == nil {
			ref = mustReadFile(t, path)
		} else if string(mustReadFile(t, path)) != string(ref) {
			t.Fatalf("window=%d: container bytes not window-invariant", window)
		}
	}
}

// TestBEDWriterMatchesWriteBED: windowed writes produce byte-for-byte the
// whole-matrix stream, at every window decomposition.
func TestBEDWriterMatchesWriteBED(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := randomGenotypes(rng, 61, 19, true)
	want := bedBytes(t, g)
	for _, window := range []int{1, 9, 61, 200} {
		var buf bytes.Buffer
		w, err := NewBEDWriter(&buf, g.Samples)
		if err != nil {
			t.Fatal(err)
		}
		for lo := 0; lo < g.SNPs; lo += window {
			hi := min(lo+window, g.SNPs)
			win := bitmat.NewGenotypeMatrix(hi-lo, g.Samples)
			for i := lo; i < hi; i++ {
				for s := 0; s < g.Samples; s++ {
					win.Set(i-lo, s, g.Get(i, s))
				}
			}
			if err := w.WriteWindow(win); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("window=%d: streamed bed differs from WriteBED", window)
		}
	}
	if _, err := NewBEDWriter(io.Discard, 0); err == nil {
		t.Fatal("zero samples accepted")
	}
	w, err := NewBEDWriter(io.Discard, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteWindow(bitmat.NewGenotypeMatrix(2, 9)); err == nil {
		t.Fatal("sample-count mismatch accepted")
	}
}

func TestBEDToLDBMRejectsMissing(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomGenotypes(rng, 30, 10, true)
	raw := bedBytes(t, g)
	path := filepath.Join(t.TempDir(), "g.ldbm")
	if err := BEDToLDBM(bytes.NewReader(raw), g.SNPs, g.Samples, path, 8); err == nil {
		t.Fatal("missing genotypes must abort the conversion")
	}
}
