package seqio

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/msa"
	"ldgemm/internal/popsim"
)

func randomReplicate(t *testing.T, seed int64, snps, samples int) MSReplicate {
	t.Helper()
	m, err := popsim.Mosaic(snps, samples, popsim.MosaicConfig{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	pos := make([]float64, snps)
	p := 0.0
	for i := range pos {
		p += rng.Float64() / float64(snps+1)
		pos[i] = p
	}
	return MSReplicate{Matrix: m, Positions: pos}
}

func TestMSRoundTrip(t *testing.T) {
	reps := []MSReplicate{
		randomReplicate(t, 1, 25, 12),
		randomReplicate(t, 2, 7, 12),
	}
	var buf bytes.Buffer
	if err := WriteMS(&buf, reps); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d replicates", len(got))
	}
	for r := range got {
		if !got[r].Matrix.Equal(reps[r].Matrix) {
			t.Fatalf("replicate %d matrix mismatch", r)
		}
		for i, p := range got[r].Positions {
			if diff := p - reps[r].Positions[i]; diff > 1e-6 || diff < -1e-6 {
				t.Fatalf("replicate %d position %d: %v vs %v", r, i, p, reps[r].Positions[i])
			}
		}
	}
}

func TestReadMSErrors(t *testing.T) {
	cases := map[string]string{
		"no separator":     "ms 4 1\nseed\n",
		"bad segsites":     "//\nsegsites: x\n",
		"missing pos":      "//\nsegsites: 2\n",
		"pos count":        "//\nsegsites: 2\npositions: 0.1\n01\n",
		"bad char":         "//\nsegsites: 2\npositions: 0.1 0.2\n0x\n",
		"row length":       "//\nsegsites: 2\npositions: 0.1 0.2\n011\n",
		"no rows":          "//\nsegsites: 2\npositions: 0.1 0.2\n",
		"early terminator": "//\nsegsites: 2\npositions: 0.1 0.2\n//\n",
	}
	for name, in := range cases {
		if _, err := ReadMS(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadMSZeroSegsites(t *testing.T) {
	reps, err := ReadMS(strings.NewReader("//\nsegsites: 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if reps[0].Matrix.SNPs != 0 {
		t.Fatal("expected empty replicate")
	}
}

func TestFASTARoundTrip(t *testing.T) {
	aln := &msa.Alignment{
		Seqs: [][]byte{
			[]byte(strings.Repeat("ACGT", 40)), // forces line wrapping
			[]byte(strings.Repeat("TTAA", 40)),
		},
		Names: []string{"first", "second"},
	}
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, aln); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFASTA(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Seqs) != 2 || got.Names[0] != "first" || got.Names[1] != "second" {
		t.Fatalf("names %v", got.Names)
	}
	for s := range aln.Seqs {
		if !bytes.Equal(got.Seqs[s], aln.Seqs[s]) {
			t.Fatalf("sequence %d mismatch", s)
		}
	}
}

func TestReadFASTAErrors(t *testing.T) {
	if _, err := ReadFASTA(strings.NewReader("ACGT\n")); err == nil {
		t.Fatal("data before header accepted")
	}
	if _, err := ReadFASTA(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := ReadFASTA(strings.NewReader(">a\nACGT\n>b\nAC\n")); err == nil {
		t.Fatal("ragged alignment accepted")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	m, err := popsim.Mosaic(60, 130, popsim.MosaicConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("binary round trip mismatch")
	}
}

func TestReadBinaryErrors(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("XXXX")); err == nil {
		t.Fatal("bad magic accepted")
	}
	m := bitmat.New(2, 70)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, m); err != nil {
		t.Fatal(err)
	}
	// Truncate.
	trunc := buf.Bytes()[:buf.Len()-5]
	if _, err := ReadBinary(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated stream accepted")
	}
	// Corrupt padding.
	full := append([]byte(nil), buf.Bytes()...)
	full[len(full)-1] = 0xff
	if _, err := ReadBinary(bytes.NewReader(full)); err == nil {
		t.Fatal("corrupt padding accepted")
	}
}

func TestVCFRoundTripDiploid(t *testing.T) {
	m, err := popsim.Mosaic(15, 20, popsim.MosaicConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	sites := make([]VCFSite, 15)
	for i := range sites {
		sites[i] = VCFSite{Chrom: "1", Pos: 100 + i*10, Ref: 'A', Alt: 'G'}
	}
	var buf bytes.Buffer
	if err := WriteVCF(&buf, m, sites, 2); err != nil {
		t.Fatal(err)
	}
	got, err := ReadVCF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Ploidy != 2 || len(got.SampleNames) != 10 {
		t.Fatalf("ploidy %d, %d samples", got.Ploidy, len(got.SampleNames))
	}
	if !got.Matrix.Equal(m) {
		t.Fatal("diploid VCF round trip mismatch")
	}
	for i, s := range got.Sites {
		if s.Pos != 100+i*10 || s.Ref != 'A' || s.Alt != 'G' {
			t.Fatalf("site %d = %+v", i, s)
		}
	}
}

func TestVCFRoundTripHaploid(t *testing.T) {
	m, err := popsim.Mosaic(8, 7, popsim.MosaicConfig{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	sites := make([]VCFSite, 8)
	for i := range sites {
		sites[i] = VCFSite{Chrom: "2", Pos: i + 1, Ref: 'C', Alt: 'T'}
	}
	var buf bytes.Buffer
	if err := WriteVCF(&buf, m, sites, 1); err != nil {
		t.Fatal(err)
	}
	got, err := ReadVCF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Ploidy != 1 || !got.Matrix.Equal(m) {
		t.Fatal("haploid VCF round trip mismatch")
	}
}

func TestWriteVCFErrors(t *testing.T) {
	m := bitmat.New(2, 5)
	sites := make([]VCFSite, 2)
	if err := WriteVCF(&bytes.Buffer{}, m, sites[:1], 1); err == nil {
		t.Fatal("site count mismatch accepted")
	}
	if err := WriteVCF(&bytes.Buffer{}, m, sites, 3); err == nil {
		t.Fatal("ploidy 3 accepted")
	}
	if err := WriteVCF(&bytes.Buffer{}, m, sites, 2); err == nil {
		t.Fatal("odd haplotypes for diploid accepted")
	}
}

func TestReadVCFErrors(t *testing.T) {
	cases := map[string]string{
		"no header":    "1\t5\t.\tA\tG\t.\tPASS\t.\tGT\t0\n",
		"no samples":   "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\n",
		"multiallelic": "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\ts0\n1\t5\t.\tA\tG,T\t.\tPASS\t.\tGT\t0\n",
		"bad allele":   "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\ts0\n1\t5\t.\tA\tG\t.\tPASS\t.\tGT\t2\n",
		"bad pos":      "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\ts0\n1\tx\t.\tA\tG\t.\tPASS\t.\tGT\t0\n",
	}
	for name, in := range cases {
		if _, err := ReadVCF(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestBEDRoundTrip(t *testing.T) {
	hap, err := popsim.Mosaic(23, 54, popsim.MosaicConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	g, err := bitmat.FromHaplotypes(hap)
	if err != nil {
		t.Fatal(err)
	}
	g.Set(3, 5, bitmat.GenoMissing) // exercise the missing code
	var buf bytes.Buffer
	if err := WriteBED(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBED(bytes.NewReader(buf.Bytes()), g.SNPs, g.Samples)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.SNPs; i++ {
		for s := 0; s < g.Samples; s++ {
			if got.Get(i, s) != g.Get(i, s) {
				t.Fatalf("genotype (%d,%d) mismatch", i, s)
			}
		}
	}
}

func TestReadBEDErrors(t *testing.T) {
	if _, err := ReadBED(strings.NewReader("xx"), 1, 1); err == nil {
		t.Fatal("short magic accepted")
	}
	if _, err := ReadBED(strings.NewReader("\x6c\x1b\x00\x00"), 1, 1); err == nil {
		t.Fatal("sample-major mode accepted")
	}
	var buf bytes.Buffer
	g := bitmat.NewGenotypeMatrix(4, 9)
	if err := WriteBED(&buf, g); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBED(bytes.NewReader(buf.Bytes()[:buf.Len()-1]), 4, 9); err == nil {
		t.Fatal("truncated bed accepted")
	}
	if _, err := ReadBED(bytes.NewReader(buf.Bytes()), 3, 9); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

// Property: binary and ms round trips are lossless for arbitrary shapes.
func TestQuickRoundTrips(t *testing.T) {
	f := func(seed int64, n8, s8 uint8) bool {
		snps := int(n8%30) + 1
		samples := int(s8%70) + 2
		m, err := popsim.Mosaic(snps, samples, popsim.MosaicConfig{Seed: seed})
		if err != nil {
			return false
		}
		var bin bytes.Buffer
		if err := WriteBinary(&bin, m); err != nil {
			return false
		}
		back, err := ReadBinary(&bin)
		if err != nil || !back.Equal(m) {
			return false
		}
		pos := make([]float64, snps)
		for i := range pos {
			pos[i] = float64(i) / float64(snps)
		}
		var msbuf bytes.Buffer
		if err := WriteMS(&msbuf, []MSReplicate{{Matrix: m, Positions: pos}}); err != nil {
			return false
		}
		reps, err := ReadMS(&msbuf)
		if err != nil || len(reps) != 1 || !reps[0].Matrix.Equal(m) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
