package seqio

import (
	"bufio"
	"fmt"
	"io"

	"ldgemm/internal/bitmat"
)

// bedMagic is the PLINK .bed magic plus the variant-major mode byte.
var bedMagic = [3]byte{0x6c, 0x1b, 0x01}

// WriteBED writes a genotype matrix in PLINK .bed variant-major format:
// the 3-byte magic, then ceil(samples/4) bytes per variant, sample genotype
// fields packed 4 per byte starting at the low bits. Field codes match
// bitmat's constants (00 hom-ref, 01 missing, 10 het, 11 hom-alt); padding
// fields in the final byte are written as zero, as PLINK does.
func WriteBED(w io.Writer, g *bitmat.GenotypeMatrix) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(bedMagic[:]); err != nil {
		return err
	}
	bytesPerVariant := (g.Samples + 3) / 4
	row := make([]byte, bytesPerVariant)
	for i := 0; i < g.SNPs; i++ {
		for b := range row {
			row[b] = 0
		}
		for s := 0; s < g.Samples; s++ {
			row[s/4] |= g.Get(i, s) << (2 * uint(s%4))
		}
		if _, err := bw.Write(row); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBED reads a variant-major PLINK .bed stream. The variant and sample
// counts must be supplied (PLINK keeps them in the companion .bim/.fam
// files).
func ReadBED(r io.Reader, snps, samples int) (*bitmat.GenotypeMatrix, error) {
	if snps < 0 || samples < 1 {
		return nil, fmt.Errorf("seqio: invalid bed dimensions %d×%d", snps, samples)
	}
	br := bufio.NewReader(r)
	var magic [3]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("seqio: reading bed magic: %w", err)
	}
	if magic[0] != bedMagic[0] || magic[1] != bedMagic[1] {
		return nil, fmt.Errorf("seqio: bad bed magic %#x %#x", magic[0], magic[1])
	}
	if magic[2] != 0x01 {
		return nil, fmt.Errorf("seqio: only variant-major bed supported (mode %#x)", magic[2])
	}
	g := bitmat.NewGenotypeMatrix(snps, samples)
	bytesPerVariant := (samples + 3) / 4
	row := make([]byte, bytesPerVariant)
	for i := 0; i < snps; i++ {
		if _, err := io.ReadFull(br, row); err != nil {
			return nil, fmt.Errorf("seqio: bed truncated at variant %d: %w", i, err)
		}
		for s := 0; s < samples; s++ {
			g.Set(i, s, row[s/4]>>(2*uint(s%4))&0b11)
		}
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("seqio: trailing bytes after %d bed variants", snps)
	}
	return g, nil
}
