package seqio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"ldgemm/internal/bitmat"
)

// binaryMagic identifies the compact bit-matrix container.
var binaryMagic = [4]byte{'L', 'D', 'G', 'M'}

// binaryVersion is the current container version.
const binaryVersion uint32 = 1

// MaxBinaryWords caps the matrix size ReadBinary will allocate (default
// 2³⁰ words = 8 GiB of packed genotypes). Raise it for larger datasets on
// machines that can hold them.
var MaxBinaryWords uint64 = 1 << 30

// WriteBinary writes the matrix in the compact container: a 4-byte magic,
// a version, the dimensions, and the raw little-endian packed words. This
// is the storage scheme of Section IV-A made durable: loading it back
// requires no repacking before the GEMM kernels can run on it.
func WriteBinary(w io.Writer, m *bitmat.Matrix) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	hdr := []uint64{uint64(binaryVersion), uint64(m.SNPs), uint64(m.Samples)}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	buf := make([]byte, 8)
	for _, word := range m.Data {
		binary.LittleEndian.PutUint64(buf, word)
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary reads a matrix written by WriteBinary, validating the magic,
// version, dimensions, and the zero-padding invariant.
func ReadBinary(r io.Reader) (*bitmat.Matrix, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("seqio: reading binary magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("seqio: bad magic %q", magic[:])
	}
	var version, snps, samples uint64
	for _, p := range []*uint64{&version, &snps, &samples} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("seqio: reading binary header: %w", err)
		}
	}
	if version != uint64(binaryVersion) {
		return nil, fmt.Errorf("seqio: unsupported binary version %d", version)
	}
	const maxDim = 1 << 32
	if snps > maxDim || samples > maxDim {
		return nil, fmt.Errorf("seqio: implausible dimensions %d×%d", snps, samples)
	}
	// Bound the allocation implied by the header before trusting it: a
	// corrupt or malicious header must not drive an out-of-memory
	// allocation before the (truncated) payload is even read.
	words := snps * uint64(bitmat.WordsFor(int(samples)))
	if words > MaxBinaryWords {
		return nil, fmt.Errorf("seqio: matrix of %d words exceeds MaxBinaryWords (%d)", words, MaxBinaryWords)
	}
	m := bitmat.New(int(snps), int(samples))
	buf := make([]byte, 8)
	for i := range m.Data {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("seqio: binary truncated at word %d: %w", i, err)
		}
		m.Data[i] = binary.LittleEndian.Uint64(buf)
	}
	if err := m.ValidatePadding(); err != nil {
		return nil, fmt.Errorf("seqio: %w", err)
	}
	return m, nil
}
