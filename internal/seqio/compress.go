package seqio

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strings"
)

// gzipMagic are the first two bytes of any gzip stream.
var gzipMagic = [2]byte{0x1f, 0x8b}

// OpenMaybeGzip opens a file and transparently decompresses it when the
// content is gzip (detected by magic bytes, so a misleading extension is
// harmless). The returned closer closes both layers.
func OpenMaybeGzip(path string) (io.Reader, io.Closer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	br := bufio.NewReader(f)
	head, err := br.Peek(2)
	if err != nil && err != io.EOF {
		f.Close()
		return nil, nil, fmt.Errorf("seqio: peeking %s: %w", path, err)
	}
	if len(head) == 2 && head[0] == gzipMagic[0] && head[1] == gzipMagic[1] {
		gz, err := gzip.NewReader(br)
		if err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("seqio: opening gzip %s: %w", path, err)
		}
		return gz, multiCloser{gz, f}, nil
	}
	return br, f, nil
}

// CreateMaybeGzip creates a file, wrapping the writer in gzip when the
// path ends in .gz. The returned closer flushes and closes both layers.
func CreateMaybeGzip(path string) (io.Writer, io.Closer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	if strings.HasSuffix(path, ".gz") {
		gz := gzip.NewWriter(f)
		return gz, multiCloser{gz, f}, nil
	}
	return f, f, nil
}

// multiCloser closes a stack of layers in order.
type multiCloser []io.Closer

func (m multiCloser) Close() error {
	var first error
	for _, c := range m {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
