package seqio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// LDRecord is one pairwise LD result in the tabular format PLINK's --r2
// emits (CHR_A BP_A SNP_A CHR_B BP_B SNP_B R2) plus the D and D′ columns
// our kernels also produce.
type LDRecord struct {
	ChromA string
	PosA   int
	IDA    string
	ChromB string
	PosB   int
	IDB    string
	R2     float64
	D      float64
	DPrime float64
}

// ldHeader is the column header line.
const ldHeader = "CHR_A\tBP_A\tSNP_A\tCHR_B\tBP_B\tSNP_B\tR2\tD\tDP"

// WriteLD writes records in the tabular .ld format with a header line.
func WriteLD(w io.Writer, recs []LDRecord) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(ldHeader)
	bw.WriteByte('\n')
	for _, r := range recs {
		ida, idb := r.IDA, r.IDB
		if ida == "" {
			ida = "."
		}
		if idb == "" {
			idb = "."
		}
		fmt.Fprintf(bw, "%s\t%d\t%s\t%s\t%d\t%s\t%.6g\t%.6g\t%.6g\n",
			r.ChromA, r.PosA, ida, r.ChromB, r.PosB, idb, r.R2, r.D, r.DPrime)
	}
	return bw.Flush()
}

// ReadLD parses the tabular .ld format (header required).
func ReadLD(r io.Reader) ([]LDRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	if !sc.Scan() {
		return nil, fmt.Errorf("seqio: empty ld input")
	}
	if got := strings.Join(strings.Fields(sc.Text()), "\t"); got != ldHeader {
		return nil, fmt.Errorf("seqio: unexpected ld header %q", sc.Text())
	}
	var out []LDRecord
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		f := strings.Fields(text)
		if len(f) != 9 {
			return nil, fmt.Errorf("seqio: ld line %d has %d fields, want 9", line, len(f))
		}
		rec := LDRecord{ChromA: f[0], IDA: f[2], ChromB: f[3], IDB: f[5]}
		var err error
		if rec.PosA, err = strconv.Atoi(f[1]); err != nil {
			return nil, fmt.Errorf("seqio: ld line %d: bad BP_A %q", line, f[1])
		}
		if rec.PosB, err = strconv.Atoi(f[4]); err != nil {
			return nil, fmt.Errorf("seqio: ld line %d: bad BP_B %q", line, f[4])
		}
		if rec.R2, err = strconv.ParseFloat(f[6], 64); err != nil {
			return nil, fmt.Errorf("seqio: ld line %d: bad R2 %q", line, f[6])
		}
		if rec.D, err = strconv.ParseFloat(f[7], 64); err != nil {
			return nil, fmt.Errorf("seqio: ld line %d: bad D %q", line, f[7])
		}
		if rec.DPrime, err = strconv.ParseFloat(f[8], 64); err != nil {
			return nil, fmt.Errorf("seqio: ld line %d: bad DP %q", line, f[8])
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("seqio: reading ld: %w", err)
	}
	return out, nil
}
