package core

import (
	"math/rand"
	"testing"

	"ldgemm/internal/bitmat"
)

// blockyMatrix builds SNPs in perfect-LD blocks of the given widths,
// separated by independent patterns.
func blockyMatrix(rng *rand.Rand, widths []int, samples int) *bitmat.Matrix {
	total := 0
	for _, w := range widths {
		total += w
	}
	g := bitmat.New(total, samples)
	i := 0
	for _, w := range widths {
		pattern := make([]byte, samples)
		ones := 0
		for s := range pattern {
			pattern[s] = byte(rng.Intn(2))
			ones += int(pattern[s])
		}
		// Keep the pattern polymorphic.
		if ones == 0 {
			pattern[0] = 1
		}
		if ones == samples {
			pattern[0] = 0
		}
		for k := 0; k < w; k++ {
			for s, v := range pattern {
				if v == 1 {
					g.SetBit(i, s)
				}
			}
			i++
		}
	}
	return g
}

func TestBlocksRecoverPlantedBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	widths := []int{5, 8, 3, 6}
	g := blockyMatrix(rng, widths, 400)
	blocks, err := Blocks(g, BlockOptions{DPrimeThreshold: 0.9, MinStrongFrac: 0.95, MaxBlockSNPs: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != len(widths) {
		t.Fatalf("found %d blocks (%+v), want %d", len(blocks), blocks, len(widths))
	}
	start := 0
	for b, w := range widths {
		if blocks[b].Start != start || blocks[b].End != start+w {
			t.Fatalf("block %d = [%d,%d), want [%d,%d)", b, blocks[b].Start, blocks[b].End, start, start+w)
		}
		if blocks[b].SNPs() != w {
			t.Fatalf("block %d width %d", b, blocks[b].SNPs())
		}
		if blocks[b].StrongFrac < 0.95 {
			t.Fatalf("block %d strong fraction %v", b, blocks[b].StrongFrac)
		}
		start += w
	}
}

func TestBlocksOnIndependentData(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomMatrix(rng, 40, 600)
	blocks, err := Blocks(g, BlockOptions{DPrimeThreshold: 0.95, MinStrongFrac: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	// Independent common SNPs on 600 samples essentially never reach
	// |D′| ≥ 0.95 in runs; a handful of spurious 2-SNP blocks may appear
	// with rare alleles, but nothing wide.
	for _, b := range blocks {
		if b.SNPs() > 3 {
			t.Fatalf("implausibly wide block %+v on independent data", b)
		}
	}
}

func TestBlocksOptionsValidation(t *testing.T) {
	g := bitmat.New(10, 40)
	if _, err := Blocks(g, BlockOptions{DPrimeThreshold: 2}); err == nil {
		t.Fatal("threshold>1 accepted")
	}
	if _, err := Blocks(g, BlockOptions{MinBlockSNPs: 1}); err == nil {
		t.Fatal("MinBlockSNPs=1 accepted")
	}
	if _, err := Blocks(g, BlockOptions{MinBlockSNPs: 10, MaxBlockSNPs: 5}); err == nil {
		t.Fatal("max<min accepted")
	}
}

func TestBlocksEmptyAndTiny(t *testing.T) {
	blocks, err := Blocks(bitmat.New(0, 10), BlockOptions{})
	if err != nil || len(blocks) != 0 {
		t.Fatalf("empty: %v %v", blocks, err)
	}
	blocks, err = Blocks(bitmat.New(1, 10), BlockOptions{})
	if err != nil || len(blocks) != 0 {
		t.Fatalf("single SNP: %v %v", blocks, err)
	}
}

func TestBlocksAreDisjointAndOrdered(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := blockyMatrix(rng, []int{4, 4, 4, 4, 4}, 200)
	blocks, err := Blocks(g, BlockOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(blocks); i++ {
		if blocks[i].Start < blocks[i-1].End {
			t.Fatalf("overlapping blocks %+v and %+v", blocks[i-1], blocks[i])
		}
	}
}
