package core

import (
	"fmt"

	"ldgemm/internal/bitmat"
)

// BlockOptions configures haplotype-block detection: contiguous runs of
// SNPs in strong mutual LD (a simplified Gabriel-style definition on
// |D′|). Blocks are the unit GWAS fine-mapping and LD-map visualizations
// work with.
type BlockOptions struct {
	// DPrimeThreshold is the |D′| above which a pair counts as "strong
	// LD" (default 0.8).
	DPrimeThreshold float64
	// MinStrongFrac is the minimum fraction of within-block pairs that
	// must be in strong LD (default 0.9).
	MinStrongFrac float64
	// MaxBlockSNPs bounds block width, and with it the LD window
	// computed per block seed (default 200).
	MaxBlockSNPs int
	// MinBlockSNPs is the smallest block reported (default 2).
	MinBlockSNPs int
	// LD carries blocking/threading options.
	LD Options
}

func (o BlockOptions) normalize() (BlockOptions, error) {
	if o.DPrimeThreshold == 0 {
		o.DPrimeThreshold = 0.8
	}
	if o.MinStrongFrac == 0 {
		o.MinStrongFrac = 0.9
	}
	if o.MaxBlockSNPs == 0 {
		o.MaxBlockSNPs = 200
	}
	if o.MinBlockSNPs == 0 {
		o.MinBlockSNPs = 2
	}
	if o.DPrimeThreshold <= 0 || o.DPrimeThreshold > 1 ||
		o.MinStrongFrac <= 0 || o.MinStrongFrac > 1 ||
		o.MinBlockSNPs < 2 || o.MaxBlockSNPs < o.MinBlockSNPs {
		return o, fmt.Errorf("core: invalid block options %+v", o)
	}
	return o, nil
}

// Block is one detected haplotype block: SNPs [Start, End).
type Block struct {
	Start, End int
	// StrongFrac is the fraction of within-block pairs in strong LD.
	StrongFrac float64
}

// SNPs returns the block width.
func (b Block) SNPs() int { return b.End - b.Start }

// Blocks detects haplotype blocks greedily left to right: from each seed
// SNP it extends the block while the strong-LD fraction stays above the
// threshold, computing each candidate window's |D′| matrix with the
// blocked kernel.
func Blocks(g *bitmat.Matrix, opt BlockOptions) ([]Block, error) {
	opt, err := opt.normalize()
	if err != nil {
		return nil, err
	}
	n := g.SNPs
	var blocks []Block
	for start := 0; start < n-1; {
		hi := min(start+opt.MaxBlockSNPs, n)
		ld := opt.LD
		ld.Measures = MeasureDPrime
		res, err := Matrix(g.Slice(start, hi), ld)
		if err != nil {
			return nil, err
		}
		w := hi - start
		// Incrementally extend: track strong/total pair counts as columns
		// join the block.
		strong, total := 0, 0
		bestEnd, bestFrac := start, 0.0
		for end := 1; end < w; end++ {
			for a := 0; a < end; a++ {
				total++
				dp := res.DPrime[a*w+end]
				if dp < 0 {
					dp = -dp
				}
				if dp >= opt.DPrimeThreshold {
					strong++
				}
			}
			frac := float64(strong) / float64(total)
			if frac >= opt.MinStrongFrac {
				bestEnd, bestFrac = start+end+1, frac
			}
		}
		if bestEnd-start >= opt.MinBlockSNPs {
			blocks = append(blocks, Block{Start: start, End: bestEnd, StrongFrac: bestFrac})
			start = bestEnd
		} else {
			start++
		}
	}
	return blocks, nil
}
