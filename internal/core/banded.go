package core

import (
	"fmt"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/blis"
)

// BandOptions configures a banded LD scan: only pairs within Band SNPs of
// each other are computed (PLINK's --ld-window; the workload for
// chromosome-scale inputs where the full n² is neither affordable nor
// wanted, since LD decays within a few hundred SNPs).
type BandOptions struct {
	Options
	// Band is the maximum index distance computed (required, ≥ 1).
	Band int
	// StripeRows bounds the per-stripe materialization (default 512).
	StripeRows int
}

// BandedStream computes LD for all pairs (i, j) with i ≤ j ≤ i+Band,
// delivering rows like Stream: visit(i, j0, row) with j0 == i and row[t]
// the statistic for pair (i, i+t), truncated at min(i+Band, n−1). Each
// stripe runs one blocked GEMM of shape stripe × (stripe+Band), so the
// total work is O(n·Band·k/64) — linear in n.
func BandedStream(g *bitmat.Matrix, opt BandOptions, visit func(i, j0 int, row []float64)) error {
	if opt.Band < 1 {
		return fmt.Errorf("core: invalid band %d", opt.Band)
	}
	if g.Samples == 0 && g.SNPs > 0 {
		return fmt.Errorf("core: banded LD with zero samples")
	}
	stripe := opt.StripeRows
	if stripe == 0 {
		stripe = 512
	}
	if stripe < 1 {
		return fmt.Errorf("core: invalid StripeRows %d", stripe)
	}
	n := g.SNPs
	p := AlleleFrequencies(g)
	inv := 0.0
	if g.Samples > 0 {
		inv = 1 / float64(g.Samples)
	}
	meas := opt.measures()
	r2Only := meas&MeasureR2 != 0
	var invVar []float64
	if r2Only {
		invVar = make([]float64, n)
		for i, pi := range p {
			if v := pi * (1 - pi); v > 0 {
				invVar[i] = 1 / v
			}
		}
	}
	width := min(stripe+opt.Band, max(n, 1))
	counts := make([]uint32, min(stripe, max(n, 1))*width)
	row := make([]float64, opt.Band+1)
	for i0 := 0; i0 < n; i0 += stripe {
		rows := min(stripe, n-i0)
		hi := min(i0+rows+opt.Band, n)
		w := hi - i0
		c := counts[:rows*w]
		clear(c)
		if err := blis.Gemm(opt.blisCfg(), g.Slice(i0, i0+rows), g.Slice(i0, hi), c, w); err != nil {
			return err
		}
		for i := 0; i < rows; i++ {
			gi := i0 + i
			jEnd := min(gi+opt.Band, n-1)
			src := c[i*w+i : i*w+(jEnd-i0)+1]
			dst := row[:len(src)]
			if r2Only {
				iva := invVar[gi]
				for t, cnt := range src {
					d := float64(cnt)*inv - p[gi]*p[gi+t]
					dst[t] = d * d * iva * invVar[gi+t]
				}
			} else {
				for t, cnt := range src {
					pr := PairFromFreqs(float64(cnt)*inv, p[gi], p[gi+t])
					if meas&MeasureD != 0 {
						dst[t] = pr.D
					} else {
						dst[t] = pr.DPrime
					}
				}
			}
			visit(gi, gi, dst)
		}
	}
	return nil
}

// BandedSumR2 reduces r² over the band (diagonal included), the banded
// analogue of SumR2.
func BandedSumR2(g *bitmat.Matrix, opt BandOptions) (sum float64, pairs int64, err error) {
	opt.Measures = MeasureR2
	err = BandedStream(g, opt, func(i, j0 int, row []float64) {
		for _, v := range row {
			sum += v
		}
		pairs += int64(len(row))
	})
	return sum, pairs, err
}
