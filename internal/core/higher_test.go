package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ldgemm/internal/bitmat"
)

// naiveTriple computes D₃ from explicit per-sample joint frequencies.
func naiveTriple(g *bitmat.Matrix, i, j, k int) Triple {
	n := float64(g.Samples)
	var cI, cJ, cK, cIJ, cIK, cJK, cIJK int
	for s := 0; s < g.Samples; s++ {
		a, b, c := g.Bit(i, s), g.Bit(j, s), g.Bit(k, s)
		if a {
			cI++
		}
		if b {
			cJ++
		}
		if c {
			cK++
		}
		if a && b {
			cIJ++
		}
		if a && c {
			cIK++
		}
		if b && c {
			cJK++
		}
		if a && b && c {
			cIJK++
		}
	}
	pi, pj, pk := float64(cI)/n, float64(cJ)/n, float64(cK)/n
	dij := float64(cIJ)/n - pi*pj
	dik := float64(cIK)/n - pi*pk
	djk := float64(cJK)/n - pj*pk
	pabc := float64(cIJK) / n
	return Triple{I: i, J: j, K: k, PABC: pabc,
		D3: pabc - pi*djk - pj*dik - pk*dij - pi*pj*pk}
}

func triplesClose(a, b Triple) bool {
	return a.I == b.I && a.J == b.J && a.K == b.K &&
		math.Abs(a.PABC-b.PABC) < 1e-12 && math.Abs(a.D3-b.D3) < 1e-12
}

func TestTripleLDMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randomMatrix(rng, 8, 137)
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			for k := j + 1; k < 8; k++ {
				got := TripleLD(g, i, j, k)
				want := naiveTriple(g, i, j, k)
				if !triplesClose(got, want) {
					t.Fatalf("(%d,%d,%d): %+v vs %+v", i, j, k, got, want)
				}
			}
		}
	}
}

func TestTripleLDIndependentLoci(t *testing.T) {
	// Three pairwise-independent, jointly-independent loci → D₃ ≈ 0.
	// Build an explicit product structure: 8 equal-frequency cells.
	g := bitmat.New(3, 8*50)
	for s := 0; s < 8*50; s++ {
		pat := s % 8
		if pat&1 != 0 {
			g.SetBit(0, s)
		}
		if pat&2 != 0 {
			g.SetBit(1, s)
		}
		if pat&4 != 0 {
			g.SetBit(2, s)
		}
	}
	tr := TripleLD(g, 0, 1, 2)
	if math.Abs(tr.D3) > 1e-12 {
		t.Fatalf("independent loci D₃ = %v", tr.D3)
	}
	if math.Abs(tr.PABC-0.125) > 1e-12 {
		t.Fatalf("PABC = %v", tr.PABC)
	}
}

func TestTripleLDDetectsPureThreeWay(t *testing.T) {
	// XOR structure: every pair independent, but the triple is maximally
	// associated — exactly what pairwise LD cannot see and D₃ exists for.
	// Samples uniform over the 4 patterns with c = a XOR b.
	g := bitmat.New(3, 4*60)
	for s := 0; s < 4*60; s++ {
		a := s % 4 & 1
		b := s % 4 >> 1
		c := a ^ b
		if a == 1 {
			g.SetBit(0, s)
		}
		if b == 1 {
			g.SetBit(1, s)
		}
		if c == 1 {
			g.SetBit(2, s)
		}
	}
	// Pairwise: all D = 0.
	for _, pr := range [][2]int{{0, 1}, {0, 2}, {1, 2}} {
		if d := PairLD(g, pr[0], pr[1]).D; math.Abs(d) > 1e-12 {
			t.Fatalf("pair %v has D = %v", pr, d)
		}
	}
	tr := TripleLD(g, 0, 1, 2)
	// P(ABC) = 0 (a=b=1 ⇒ c=0), expectation 1/8 ⇒ D₃ = −1/8.
	if math.Abs(tr.D3+0.125) > 1e-12 {
		t.Fatalf("XOR triple D₃ = %v, want −0.125", tr.D3)
	}
}

func TestTripleScanMatchesTripleLD(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomMatrix(rng, 20, 200)
	got, err := TripleScan(g, TripleScanOptions{MaxSpan: 5})
	if err != nil {
		t.Fatal(err)
	}
	idx := 0
	for i := 0; i < 20; i++ {
		for j := i + 1; j < 20 && j-i < 5; j++ {
			for k := j + 1; k <= i+5 && k < 20; k++ {
				if idx >= len(got) {
					t.Fatalf("scan ended early at (%d,%d,%d)", i, j, k)
				}
				want := TripleLD(g, i, j, k)
				if !triplesClose(got[idx], want) {
					t.Fatalf("scan (%d,%d,%d): %+v vs %+v", i, j, k, got[idx], want)
				}
				idx++
			}
		}
	}
	if idx != len(got) {
		t.Fatalf("scan produced %d extra triples", len(got)-idx)
	}
}

func TestTripleScanFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomMatrix(rng, 15, 100)
	all, err := TripleScan(g, TripleScanOptions{MaxSpan: 6})
	if err != nil {
		t.Fatal(err)
	}
	const cut = 0.01
	filtered, err := TripleScan(g, TripleScanOptions{MaxSpan: 6, MinAbsD3: cut})
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, tr := range all {
		if math.Abs(tr.D3) >= cut {
			want++
		}
	}
	if len(filtered) != want {
		t.Fatalf("filter kept %d, want %d", len(filtered), want)
	}
	for _, tr := range filtered {
		if math.Abs(tr.D3) < cut {
			t.Fatalf("filtered triple below cut: %+v", tr)
		}
	}
}

func TestTripleScanOptionsValidation(t *testing.T) {
	g := bitmat.New(5, 10)
	if _, err := TripleScan(g, TripleScanOptions{MaxSpan: 1}); err == nil {
		t.Fatal("MaxSpan=1 accepted")
	}
	if _, err := TripleScan(g, TripleScanOptions{MinAbsD3: -1}); err == nil {
		t.Fatal("negative MinAbsD3 accepted")
	}
	if _, err := TripleScan(bitmat.New(3, 0), TripleScanOptions{}); err == nil {
		t.Fatal("zero samples accepted")
	}
}

// Property: TripleLD equals the per-sample oracle on random inputs.
func TestQuickTripleLD(t *testing.T) {
	f := func(seed int64, s8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		samples := int(s8%150) + 3
		g := randomMatrix(rng, 3, samples)
		return triplesClose(TripleLD(g, 0, 1, 2), naiveTriple(g, 0, 1, 2))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
