package core

import (
	"math"
	"math/rand"
	"testing"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/stats"
)

func TestChiSquareQuantileInvertsTail(t *testing.T) {
	for _, p := range []float64{0.5, 0.05, 0.01, 1e-6, 1e-12} {
		q, err := chiSquareQuantile(p)
		if err != nil {
			t.Fatal(err)
		}
		tail, err := stats.ChiSquarePValue(q, 1)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(tail-p)/p > 1e-5 {
			t.Fatalf("quantile(%v) = %v has tail %v", p, q, tail)
		}
	}
	if q, _ := chiSquareQuantile(1); q != 0 {
		t.Fatalf("quantile(1) = %v", q)
	}
	if q, _ := chiSquareQuantile(0); q < 1e7 {
		t.Fatalf("quantile(0) = %v", q)
	}
	// Known value: P(χ²₁ ≥ 3.8415) ≈ 0.05.
	q, _ := chiSquareQuantile(0.05)
	if math.Abs(q-3.841459) > 1e-4 {
		t.Fatalf("quantile(0.05) = %v", q)
	}
}

func TestSignificanceFindsPlantedPair(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randomMatrix(rng, 30, 500)
	// Plant a perfectly correlated pair (5, 17).
	copy(g.SNP(17), g.SNP(5))
	res, err := Significance(g, SignificanceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tested != 30*29/2 {
		t.Fatalf("tested %d", res.Tested)
	}
	found := false
	for _, p := range res.Pairs {
		if p.I == 5 && p.J == 17 {
			found = true
			if p.R2 < 0.999 {
				t.Fatalf("planted pair r² %v", p.R2)
			}
			if p.PValue > res.Threshold {
				t.Fatalf("planted pair p %v above threshold %v", p.PValue, res.Threshold)
			}
		}
	}
	if !found {
		t.Fatalf("planted pair not significant; found %+v", res.Pairs)
	}
	// Pairs sorted strongest first.
	for i := 1; i < len(res.Pairs); i++ {
		if res.Pairs[i].R2 > res.Pairs[i-1].R2 {
			t.Fatal("pairs not sorted by r²")
		}
	}
}

func TestSignificanceNullControlsFalsePositives(t *testing.T) {
	// Independent SNPs: with Bonferroni at α=0.05, expect ≈0 rejections.
	rng := rand.New(rand.NewSource(2))
	g := randomMatrix(rng, 80, 400)
	res, err := Significance(g, SignificanceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Significant > 1 {
		t.Fatalf("null data produced %d significant pairs", res.Significant)
	}
}

func TestSignificancePerTestAlpha(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomMatrix(rng, 60, 300)
	perTest, err := Significance(g, SignificanceOptions{Alpha: 0.05, AlphaIsPerTest: true})
	if err != nil {
		t.Fatal(err)
	}
	corrected, err := Significance(g, SignificanceOptions{Alpha: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	// Uncorrected testing at α=0.05 on null data rejects ≈5% of pairs;
	// corrected rejects essentially none.
	if perTest.Significant <= corrected.Significant {
		t.Fatalf("per-test %d should exceed corrected %d", perTest.Significant, corrected.Significant)
	}
	expect := 0.05 * float64(perTest.Tested)
	if float64(perTest.Significant) < expect/3 || float64(perTest.Significant) > expect*3 {
		t.Fatalf("per-test rejections %d far from the expected ≈%v", perTest.Significant, expect)
	}
}

func TestSignificanceMaxResults(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := randomMatrix(rng, 40, 100)
	res, err := Significance(g, SignificanceOptions{Alpha: 0.9, AlphaIsPerTest: true, MaxResults: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) > 5 {
		t.Fatalf("MaxResults ignored: %d pairs", len(res.Pairs))
	}
	if res.Significant < int64(len(res.Pairs)) {
		t.Fatal("Significant count below returned pairs")
	}
}

func TestSignificanceOptionsValidation(t *testing.T) {
	g := bitmat.New(5, 20)
	if _, err := Significance(g, SignificanceOptions{Alpha: 1.5}); err == nil {
		t.Fatal("alpha>1 accepted")
	}
	if _, err := Significance(g, SignificanceOptions{MaxResults: -1}); err == nil {
		t.Fatal("negative MaxResults accepted")
	}
}
