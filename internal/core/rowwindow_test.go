package core

import (
	"sort"
	"testing"
)

// TestStreamRowWindow checks that a row-windowed scan delivers exactly the
// window's rows, bit-identical to the same rows of a full scan, across
// triangular/full × fused/split × fast/exact and window placements that
// start mid-stripe, end mid-stripe, and cover single rows.
func TestStreamRowWindow(t *testing.T) {
	g := streamMatrix(t, 61, 96, 404)
	n := g.SNPs
	windows := [][2]int{{0, n}, {0, 17}, {17, 42}, {42, n}, {n - 1, n}, {30, 31}}
	for _, tri := range []bool{true, false} {
		for _, fused := range []EpilogueMode{EpilogueFused, EpilogueSplit} {
			for _, exact := range []bool{false, true} {
				base := StreamOptions{Triangular: tri, StripeRows: 13, Exact: exact}
				base.Epilogue = fused
				full := collectStream(t, g, base)
				for _, w := range windows {
					opt := base
					opt.RowStart, opt.RowEnd = w[0], w[1]
					seen := 0
					err := Stream(g, opt, func(i, j0 int, row []float64) {
						if i < w[0] || i >= w[1] {
							t.Fatalf("window %v delivered row %d", w, i)
						}
						seen++
						for tt, v := range row {
							if want := full[i*n+j0+tt]; v != want {
								t.Fatalf("tri=%v fused=%v exact=%v window %v: (%d,%d) = %v, full scan %v",
									tri, fused, exact, w, i, j0+tt, v, want)
							}
						}
					})
					if err != nil {
						t.Fatalf("Stream window %v: %v", w, err)
					}
					if seen != w[1]-w[0] {
						t.Fatalf("window %v delivered %d rows", w, seen)
					}
				}
			}
		}
	}
}

func TestStreamRowWindowInvalid(t *testing.T) {
	g := streamMatrix(t, 10, 32, 7)
	for _, w := range [][2]int{{-1, 5}, {5, 5}, {7, 3}, {0, 11}, {3, 0}} {
		opt := StreamOptions{Triangular: true, RowStart: w[0], RowEnd: w[1]}
		if err := Stream(g, opt, func(int, int, []float64) {}); err == nil {
			t.Fatalf("window %v accepted", w)
		}
	}
}

// TestSignificanceRowWindow checks that per-strip scans union to the full
// scan: with a per-test alpha every shard applies the same cutoff, so the
// merged strip results, ordered by the canonical comparator, reproduce
// the single-scan ranking exactly.
func TestSignificanceRowWindow(t *testing.T) {
	g := streamMatrix(t, 48, 80, 505)
	opt := SignificanceOptions{Alpha: 0.2, AlphaIsPerTest: true, MaxResults: 10000}
	full, err := Significance(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	var merged []SignificantPair
	var tested, signif int64
	for _, w := range [][2]int{{0, 20}, {20, 33}, {33, 48}} {
		o := opt
		o.RowStart, o.RowEnd = w[0], w[1]
		part, err := Significance(g, o)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range part.Pairs {
			if p.I < w[0] || p.I >= w[1] {
				t.Fatalf("window %v returned pair (%d,%d)", w, p.I, p.J)
			}
		}
		merged = append(merged, part.Pairs...)
		tested += part.Tested
		signif += part.Significant
	}
	if tested != full.Tested {
		t.Fatalf("strip Tested sum %d, full %d", tested, full.Tested)
	}
	if signif != full.Significant {
		t.Fatalf("strip Significant sum %d, full %d", signif, full.Significant)
	}
	if len(merged) != len(full.Pairs) {
		t.Fatalf("merged %d pairs, full %d", len(merged), len(full.Pairs))
	}
	// Sort with the canonical comparator and require exact equality.
	sortPairs(merged)
	for i, p := range merged {
		if p != full.Pairs[i] {
			t.Fatalf("pair %d: merged %+v, full %+v", i, p, full.Pairs[i])
		}
	}
}

func sortPairs(ps []SignificantPair) {
	sort.Slice(ps, func(a, b int) bool { return PairStronger(ps[a], ps[b]) })
}
