package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/blis"
)

func randomMaskedPair(rng *rand.Rand, snps, samples int) (*bitmat.Matrix, *bitmat.Mask) {
	g := randomMatrix(rng, snps, samples)
	k := bitmat.NewMask(snps, samples)
	for i := 0; i < snps; i++ {
		for s := 0; s < samples; s++ {
			if rng.Intn(5) == 0 {
				k.Invalidate(i, s)
			}
		}
	}
	return g, k
}

// naiveMaskedPair is the per-sample oracle for gap-aware LD.
func naiveMaskedPair(g *bitmat.Matrix, k *bitmat.Mask, i, j int) Pair {
	var nV, nA, nB, nAB int
	for s := 0; s < g.Samples; s++ {
		if !k.Bit(i, s) || !k.Bit(j, s) {
			continue
		}
		nV++
		a, b := g.Bit(i, s), g.Bit(j, s)
		if a {
			nA++
		}
		if b {
			nB++
		}
		if a && b {
			nAB++
		}
	}
	if nV == 0 {
		return Pair{}
	}
	n := float64(nV)
	return PairFromFreqs(float64(nAB)/n, float64(nA)/n, float64(nB)/n)
}

func TestMaskedPairLDMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g, k := randomMaskedPair(rng, 8, 130)
	// MaskedPairLD assumes s = s & c; enforce it as MaskedMatrix does.
	gm := g.Clone()
	if err := k.ApplyTo(gm); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			got := MaskedPairLD(gm, k, i, j)
			want := naiveMaskedPair(g, k, i, j)
			if !pairsAlmostEqual(got, want) {
				t.Fatalf("(%d,%d): %+v, want %+v", i, j, got, want)
			}
		}
	}
}

func TestMaskedMatrixMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g, k := randomMaskedPair(rng, 21, 190)
	res, err := MaskedMatrix(g, k, Options{
		Measures: MeasureD | MeasureR2 | MeasureDPrime,
		Blis:     blis.Config{MC: 5, NC: 9, KC: 2, Threads: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 21; i++ {
		for j := 0; j < 21; j++ {
			want := naiveMaskedPair(g, k, i, j)
			idx := i*21 + j
			if math.Abs(res.D[idx]-want.D) > 1e-12 ||
				math.Abs(res.R2[idx]-want.R2) > 1e-12 ||
				math.Abs(res.DPrime[idx]-want.DPrime) > 1e-12 {
				t.Fatalf("(%d,%d): D=%v r²=%v D′=%v, want %+v",
					i, j, res.D[idx], res.R2[idx], res.DPrime[idx], want)
			}
		}
	}
}

func TestMaskedMatrixDoesNotMutateInput(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, k := randomMaskedPair(rng, 5, 70)
	orig := g.Clone()
	if _, err := MaskedMatrix(g, k, Options{}); err != nil {
		t.Fatal(err)
	}
	if !g.Equal(orig) {
		t.Fatal("MaskedMatrix mutated its input matrix")
	}
}

func TestMaskedMatrixAllValidEqualsMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := randomMatrix(rng, 15, 100)
	k := bitmat.NewMask(15, 100)
	masked, err := MaskedMatrix(g, k, Options{Measures: MeasureR2})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Matrix(g, Options{Measures: MeasureR2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 15; i++ {
		for j := 0; j < 15; j++ {
			if math.Abs(masked.R2[i*15+j]-plain.R2[i*15+j]) > 1e-12 {
				t.Fatalf("(%d,%d): masked %v vs plain %v", i, j, masked.R2[i*15+j], plain.R2[i*15+j])
			}
		}
	}
}

func TestMaskedMatrixShapeMismatch(t *testing.T) {
	if _, err := MaskedMatrix(bitmat.New(3, 10), bitmat.NewMask(4, 10), Options{}); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestMaskedMatrixFullyInvalidSNP(t *testing.T) {
	g := bitmat.New(2, 10)
	for s := 0; s < 10; s++ {
		g.SetBit(0, s)
		if s%2 == 0 {
			g.SetBit(1, s)
		}
	}
	k := bitmat.NewMask(2, 10)
	for s := 0; s < 10; s++ {
		k.Invalidate(0, s)
	}
	res, err := MaskedMatrix(g, k, Options{Measures: MeasureR2 | MeasureD})
	if err != nil {
		t.Fatal(err)
	}
	// Pairs involving the dead SNP must be all-zero, not NaN.
	for j := 0; j < 2; j++ {
		if res.R2[j] != 0 || res.D[j] != 0 {
			t.Fatalf("dead SNP pair (0,%d) nonzero: r²=%v D=%v", j, res.R2[j], res.D[j])
		}
		if math.IsNaN(res.R2[j]) || math.IsNaN(res.D[j]) {
			t.Fatal("NaN leaked from fully-invalid SNP")
		}
	}
	if res.RowFreqs[0] != 0 {
		t.Fatalf("dead SNP frequency = %v", res.RowFreqs[0])
	}
}

func TestQuickMaskedMatrix(t *testing.T) {
	f := func(seed int64, n8, s8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(n8%10) + 2
		samples := int(s8%100) + 5
		g, k := randomMaskedPair(rng, n, samples)
		res, err := MaskedMatrix(g, k, Options{Measures: MeasureR2})
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				want := naiveMaskedPair(g, k, i, j)
				if math.Abs(res.R2[i*n+j]-want.R2) > 1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
