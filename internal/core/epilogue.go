package core

import (
	"math"

	"ldgemm/internal/blis"
	"ldgemm/internal/kernel"
)

// This file implements the fused LD epilogue: blis.TileEpilogue hooks that
// convert haplotype counts to D/r²/D′ per finished register tile, inside
// the blocked driver's workers, while the counts are still cache-hot. The
// split pipeline (fillMeasures/fillMaskedMeasures) materializes the full
// m×n uint32 count matrix and walks it serially afterwards — a second
// round-trip through memory that Amdahl-caps the parallel driver. Fused,
// the counts only ever exist as O(column block) scratch inside blis, the
// conversion is parallelized for free across the pool's workers, and the
// float64 outputs are written exactly once.
//
// Bit-identity with the split epilogue is load-bearing (golden tests and
// the ldstore precompute/serve contract both rely on it), so the hot
// loops below replicate PairFromFreqs operation for operation; the only
// transformation is precomputing the per-SNP variance factors pᵢ(1−pᵢ)
// once per call, which is bit-safe because the product (pa(1−pa))·(pb(1−pb))
// rounds each factor before multiplying either way.

// EpilogueMode selects how the O(n²) count-to-measure conversion runs.
type EpilogueMode int

const (
	// EpilogueAuto fuses the conversion into the blocked driver unless
	// KeepCounts requires the dense count matrix. The default.
	EpilogueAuto EpilogueMode = iota
	// EpilogueFused forces the fused path (still overridden by KeepCounts,
	// which cannot run fused: its contract is the materialized counts).
	EpilogueFused
	// EpilogueSplit forces the legacy two-phase pipeline: dense count
	// matrix first, serial conversion sweep second. Escape hatch for
	// comparison benchmarks and debugging.
	EpilogueSplit
)

// fused reports whether the computation should run the fused epilogue.
func (o Options) fused() bool {
	return o.Epilogue != EpilogueSplit && o.measures()&KeepCounts == 0
}

// kernelShape returns the register-tile shape the plain blocked driver
// will use for cfg — needed by the SYRK mirror ownership rule below.
func kernelShape(cfg blis.Config) (mr, nr int) {
	k := cfg.Kernel
	if k.Fn == nil {
		k = kernel.Default
	}
	return k.MR, k.NR
}

// varTable returns v[i] = p[i]·(1−p[i]), the per-SNP variance factor of
// the r² denominator, rounded exactly as PairFromFreqs rounds it inline.
func varTable(p []float64) []float64 {
	v := make([]float64, len(p))
	for i, pi := range p {
		v[i] = pi * (1 - pi)
	}
	return v
}

// invVarTable returns v[i] = 1/(p[i]·(1−p[i])), with 0 for monomorphic
// SNPs so their r² multiplies out to zero — the fast-r² trick of the
// streaming path (divides traded for multiplies; last-ulp differences
// from the exact quotient are possible).
func invVarTable(p []float64) []float64 {
	v := make([]float64, len(p))
	for i, pi := range p {
		if va := pi * (1 - pi); va > 0 {
			v[i] = 1 / va
		}
	}
	return v
}

func roundUp2(x, m int) int { return (x + m - 1) / m * m }

// denseEpilogue converts plain-count tiles into the requested measures.
// Outputs are row-major with stride ld; rowFreqs/colFreqs are indexed by
// the driver's global tile coordinates, so streaming callers pass
// sub-slices of the frequency vector aligned to the sub-matrix origin.
type denseEpilogue struct {
	inv                float64 // 1/Nseq
	rowFreqs, colFreqs []float64
	rowVar, colVar     []float64 // exact r²: p(1−p) variance factors
	rowInv, colInv     []float64 // fast r²: 1/(p(1−p)) reciprocals
	d, r2, dp          []float64 // outputs; nil when not requested
	ld                 int
	fast               bool // r² via reciprocal tables (FastR2 / stream default)
	// mirror enables the SYRK lower-triangle fill: each tile writes the
	// transposed copy of the cells whose transposed tile the triangle
	// sweep never computed (see ownership rule in tile). mr/nr must match
	// the driver's register tile for the rule to partition correctly.
	mirror bool
	mr, nr int
}

// newDenseEpilogue allocates the requested measure matrices on res and
// returns the epilogue that fills them with row stride res.Cols.
func newDenseEpilogue(res *Result, opt Options, mirror bool) *denseEpilogue {
	meas := opt.measures()
	m, n := res.SNPs, res.Cols
	e := &denseEpilogue{
		rowFreqs: res.RowFreqs, colFreqs: res.ColFreqs,
		ld: n, fast: opt.FastR2, mirror: mirror,
	}
	e.mr, e.nr = kernelShape(opt.Blis)
	if res.Samples > 0 {
		e.inv = 1 / float64(res.Samples)
	}
	if meas&MeasureD != 0 {
		res.D = make([]float64, m*n)
		e.d = res.D
	}
	if meas&MeasureR2 != 0 {
		res.R2 = make([]float64, m*n)
		e.r2 = res.R2
	}
	if meas&MeasureDPrime != 0 {
		res.DPrime = make([]float64, m*n)
		e.dp = res.DPrime
	}
	e.prepare()
	return e
}

// prepare builds whichever per-SNP tables the configured r² path needs.
func (e *denseEpilogue) prepare() {
	if e.r2 == nil {
		return
	}
	shared := len(e.rowFreqs) > 0 && len(e.colFreqs) == len(e.rowFreqs) && &e.rowFreqs[0] == &e.colFreqs[0]
	if e.fast {
		e.rowInv = invVarTable(e.rowFreqs)
		e.colInv = e.rowInv
		if !shared {
			e.colInv = invVarTable(e.colFreqs)
		}
		return
	}
	e.rowVar = varTable(e.rowFreqs)
	e.colVar = e.rowVar
	if !shared {
		e.colVar = varTable(e.colFreqs)
	}
}

// tile is the blis.TileEpilogue hook. The mirror ownership rule: the SYRK
// sweep computes exactly the tiles with tileRow < tileCol+nr, so the
// transposed home of cell (i, j) is uncomputed — and this tile must write
// the (j, i) copy — iff ⌊j/mr⌋·mr ≥ (⌊i/nr⌋+1)·nr, i.e. j ≥ jm where
// jm = roundUp(i − i%nr + nr, mr). Cells below jm either lie in this
// tile's own rows (diagonal-crossing tiles compute correct below-diagonal
// counts as a by-product, written directly here) or belong to another
// computed tile; both triangles are therefore written exactly once, with
// no write shared between concurrent hook invocations.
func (e *denseEpilogue) tile(_ int, t []uint32, ldt, i0, j0, mm, nn int) {
	for r := 0; r < mm; r++ {
		gi := i0 + r
		pa := e.rowFreqs[gi]
		trow := t[r*ldt:]
		base := gi * e.ld
		jm := 0
		if e.mirror {
			jm = roundUp2(gi-gi%e.nr+e.nr, e.mr)
		}
		if e.fast && e.d == nil && e.dp == nil {
			// r²-only fast path: the streaming epilogue's exact expression
			// shape (kept verbatim so fused streaming stays bit-identical
			// to the split streaming fast path).
			iva := e.rowInv[gi]
			for c := 0; c < nn; c++ {
				gj := j0 + c
				d := float64(trow[c])*e.inv - pa*e.colFreqs[gj]
				v := d * d * (iva * e.colInv[gj])
				e.r2[base+gj] = v
				if e.mirror && gj >= jm {
					e.r2[gj*e.ld+gi] = v
				}
			}
			continue
		}
		var va float64
		if e.rowVar != nil {
			va = e.rowVar[gi]
		}
		for c := 0; c < nn; c++ {
			gj := j0 + c
			pb := e.colFreqs[gj]
			// PairFromFreqs's operation sequence, with the variance
			// product taken from the per-SNP tables.
			pab := float64(trow[c]) * e.inv
			d := pab - pa*pb
			mir := e.mirror && gj >= jm
			idx := base + gj
			midx := gj*e.ld + gi
			if e.d != nil {
				e.d[idx] = d
				if mir {
					e.d[midx] = d
				}
			}
			if e.r2 != nil {
				var v float64
				if e.fast {
					v = d * d * (e.rowInv[gi] * e.colInv[gj])
				} else if den := va * e.colVar[gj]; den > 0 {
					v = d * d / den
				}
				e.r2[idx] = v
				if mir {
					e.r2[midx] = v
				}
			}
			if e.dp != nil {
				var v, dmax float64
				if d >= 0 {
					dmax = math.Min(pa*(1-pb), pb*(1-pa))
				} else {
					dmax = math.Min(pa*pb, (1-pa)*(1-pb))
				}
				if dmax > 0 {
					v = math.Max(-1, math.Min(1, d/dmax))
				}
				e.dp[idx] = v
				if mir {
					e.dp[midx] = v
				}
			}
		}
	}
}

// maskedEpilogue converts four-count tiles (Section VII) into measures
// using per-pair effective sample sizes, replicating fillMaskedMeasures.
// The mirror write copies the computed floats: the measures are invariant
// under exchanging the SNP roles (the count quadruple transposes to
// itself with MaskedI/MaskedJ swapped, and PairFromFreqs is bit-symmetric
// under pa↔pb), so the copy lands the same bits the legacy MirrorMasked +
// reconvert pipeline produces.
type maskedEpilogue struct {
	d, r2, dp []float64
	ld        int
	mirror    bool
	mr, nr    int
}

func newMaskedEpilogue(res *Result, opt Options, mirror bool) *maskedEpilogue {
	meas := opt.measures()
	m, n := res.SNPs, res.Cols
	mk := kernel.Masked2x2() // driveMasked's fixed register tile
	e := &maskedEpilogue{ld: n, mirror: mirror, mr: mk.MR, nr: mk.NR}
	if meas&MeasureD != 0 {
		res.D = make([]float64, m*n)
		e.d = res.D
	}
	if meas&MeasureR2 != 0 {
		res.R2 = make([]float64, m*n)
		e.r2 = res.R2
	}
	if meas&MeasureDPrime != 0 {
		res.DPrime = make([]float64, m*n)
		e.dp = res.DPrime
	}
	return e
}

// tile is the blis.TileEpilogue hook for the masked kernel: each C entry
// is four uint32 counts, cell (r, c, k) at t[(r*ldt+c)*4+k]. Mirror
// ownership is the same rule as denseEpilogue.tile.
func (e *maskedEpilogue) tile(_ int, t []uint32, ldt, i0, j0, mm, nn int) {
	for r := 0; r < mm; r++ {
		gi := i0 + r
		base := gi * e.ld
		jm := 0
		if e.mirror {
			jm = roundUp2(gi-gi%e.nr+e.nr, e.mr)
		}
		for c := 0; c < nn; c++ {
			gj := j0 + c
			cell := t[(r*ldt+c)*4:]
			var p Pair
			if v := cell[kernel.MaskedValid]; v > 0 {
				nv := float64(v)
				p = PairFromFreqs(
					float64(cell[kernel.MaskedIJ])/nv,
					float64(cell[kernel.MaskedI])/nv,
					float64(cell[kernel.MaskedJ])/nv,
				)
			}
			mir := e.mirror && gj >= jm
			idx := base + gj
			midx := gj*e.ld + gi
			if e.d != nil {
				e.d[idx] = p.D
				if mir {
					e.d[midx] = p.D
				}
			}
			if e.r2 != nil {
				e.r2[idx] = p.R2
				if mir {
					e.r2[midx] = p.R2
				}
			}
			if e.dp != nil {
				e.dp[idx] = p.DPrime
				if mir {
					e.dp[midx] = p.DPrime
				}
			}
		}
	}
}
