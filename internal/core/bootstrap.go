package core

import (
	"fmt"
	"math/rand"
	"sort"

	"ldgemm/internal/bitmat"
)

// LD point estimates from finite samples carry sampling error; r²
// especially is biased upward for small n (E[r²] ≈ 1/n under
// independence). BootstrapPair quantifies that uncertainty by resampling
// samples (haplotypes) with replacement — the standard nonparametric
// approach when no closed-form variance applies.

// BootstrapOptions configures a bootstrap confidence interval.
type BootstrapOptions struct {
	Seed int64
	// Replicates is the number of bootstrap resamples (default 1000).
	Replicates int
	// Confidence is the two-sided interval mass (default 0.95).
	Confidence float64
}

func (o BootstrapOptions) normalize() (BootstrapOptions, error) {
	if o.Replicates == 0 {
		o.Replicates = 1000
	}
	if o.Confidence == 0 {
		o.Confidence = 0.95
	}
	if o.Replicates < 10 {
		return o, fmt.Errorf("core: need at least 10 bootstrap replicates, have %d", o.Replicates)
	}
	if o.Confidence <= 0 || o.Confidence >= 1 {
		return o, fmt.Errorf("core: invalid confidence %v", o.Confidence)
	}
	return o, nil
}

// Interval is a bootstrap percentile confidence interval around a point
// estimate.
type Interval struct {
	Point float64
	Lo    float64
	Hi    float64
}

// Contains reports whether v lies inside the interval.
func (iv Interval) Contains(v float64) bool { return v >= iv.Lo && v <= iv.Hi }

// BootstrapPair resamples haplotypes with replacement and returns
// percentile confidence intervals for r², D, and D′ of the SNP pair
// (i, j). Only the two SNP columns are resampled, so each replicate costs
// O(samples) independent of the matrix width.
func BootstrapPair(g *bitmat.Matrix, i, j int, opt BootstrapOptions) (r2, d, dprime Interval, err error) {
	opt, err = opt.normalize()
	if err != nil {
		return
	}
	if g.Samples < 2 {
		err = fmt.Errorf("core: bootstrap needs at least 2 samples, have %d", g.Samples)
		return
	}
	point := PairLD(g, i, j)
	r2.Point, d.Point, dprime.Point = point.R2, point.D, point.DPrime

	// Materialize the two columns once; per-replicate work is then a
	// counting pass over resampled indices.
	ci, cj := g.Column(i), g.Column(j)
	rng := rand.New(rand.NewSource(opt.Seed))
	n := g.Samples
	r2s := make([]float64, opt.Replicates)
	ds := make([]float64, opt.Replicates)
	dps := make([]float64, opt.Replicates)
	for rep := 0; rep < opt.Replicates; rep++ {
		var nA, nB, nAB int
		for s := 0; s < n; s++ {
			idx := rng.Intn(n)
			a, b := ci[idx] != 0, cj[idx] != 0
			if a {
				nA++
			}
			if b {
				nB++
			}
			if a && b {
				nAB++
			}
		}
		fn := float64(n)
		p := PairFromFreqs(float64(nAB)/fn, float64(nA)/fn, float64(nB)/fn)
		r2s[rep], ds[rep], dps[rep] = p.R2, p.D, p.DPrime
	}
	alpha := 1 - opt.Confidence
	r2.Lo, r2.Hi = percentiles(r2s, alpha/2, 1-alpha/2)
	d.Lo, d.Hi = percentiles(ds, alpha/2, 1-alpha/2)
	dprime.Lo, dprime.Hi = percentiles(dps, alpha/2, 1-alpha/2)
	return
}

// percentiles returns the lo and hi empirical quantiles of xs (sorted in
// place).
func percentiles(xs []float64, lo, hi float64) (float64, float64) {
	sort.Float64s(xs)
	at := func(q float64) float64 {
		pos := q * float64(len(xs)-1)
		k := int(pos)
		if k+1 >= len(xs) {
			return xs[len(xs)-1]
		}
		frac := pos - float64(k)
		return xs[k]*(1-frac) + xs[k+1]*frac
	}
	return at(lo), at(hi)
}
