package core

import (
	"fmt"

	"ldgemm/internal/bitmat"
)

// PruneOptions configures LD-based SNP pruning, the preprocessing step
// GWAS pipelines run before association testing (PLINK's
// --indep-pairwise). A sliding window moves across the SNPs; within each
// window, whenever a pair exceeds the r² threshold the member with the
// lower minor-allele frequency is dropped.
type PruneOptions struct {
	// WindowSNPs is the window width in SNPs (default 50).
	WindowSNPs int
	// StepSNPs is how far the window slides each iteration (default 5).
	StepSNPs int
	// R2Threshold removes one of any pair with r² above it (default 0.5).
	R2Threshold float64
	// LD carries blocking/threading for the per-window LD computations.
	LD Options
}

func (o PruneOptions) normalize() (PruneOptions, error) {
	if o.WindowSNPs == 0 {
		o.WindowSNPs = 50
	}
	if o.StepSNPs == 0 {
		o.StepSNPs = 5
	}
	if o.R2Threshold == 0 {
		o.R2Threshold = 0.5
	}
	if o.WindowSNPs < 2 || o.StepSNPs < 1 || o.StepSNPs > o.WindowSNPs {
		return o, fmt.Errorf("core: invalid prune window/step %d/%d", o.WindowSNPs, o.StepSNPs)
	}
	if o.R2Threshold <= 0 || o.R2Threshold > 1 {
		return o, fmt.Errorf("core: invalid prune threshold %v", o.R2Threshold)
	}
	return o, nil
}

// PruneResult reports which SNPs survive pruning.
type PruneResult struct {
	// Kept lists the surviving SNP indices in increasing order.
	Kept []int
	// Removed lists the pruned SNP indices in increasing order.
	Removed []int
}

// Prune runs sliding-window LD pruning and returns the surviving SNP set.
// Each window's pairwise r² values come from one blocked rank-k update, so
// the overall cost is O(windows · w²·k/64) rather than per-pair scans.
func Prune(g *bitmat.Matrix, opt PruneOptions) (*PruneResult, error) {
	opt, err := opt.normalize()
	if err != nil {
		return nil, err
	}
	n := g.SNPs
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	maf := make([]float64, n)
	for i := range maf {
		f := g.AlleleFrequency(i)
		maf[i] = min(f, 1-f)
	}

	for lo := 0; lo < n; lo += opt.StepSNPs {
		hi := min(lo+opt.WindowSNPs, n)
		if hi-lo < 2 {
			break
		}
		ld := opt.LD
		ld.Measures = MeasureR2
		res, err := Matrix(g.Slice(lo, hi), ld)
		if err != nil {
			return nil, err
		}
		w := hi - lo
		for a := 0; a < w; a++ {
			if !alive[lo+a] {
				continue
			}
			for b := a + 1; b < w; b++ {
				if !alive[lo+b] {
					continue
				}
				if res.R2[a*w+b] <= opt.R2Threshold {
					continue
				}
				// Drop the less informative member (lower MAF); ties drop
				// the later SNP, matching PLINK's determinism.
				if maf[lo+a] < maf[lo+b] {
					alive[lo+a] = false
				} else {
					alive[lo+b] = false
				}
				if !alive[lo+a] {
					break
				}
			}
		}
		if hi == n {
			break
		}
	}

	out := &PruneResult{}
	for i, a := range alive {
		if a {
			out.Kept = append(out.Kept, i)
		} else {
			out.Removed = append(out.Removed, i)
		}
	}
	return out, nil
}

// Extract materializes the pruned matrix: the kept SNPs only.
func (r *PruneResult) Extract(g *bitmat.Matrix) *bitmat.Matrix {
	out := bitmat.New(len(r.Kept), g.Samples)
	for dst, src := range r.Kept {
		copy(out.SNP(dst), g.SNP(src))
	}
	return out
}
