package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ldgemm/internal/bitmat"
)

func TestBandedStreamMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randomMatrix(rng, 60, 300)
	full, err := Matrix(g, Options{Measures: MeasureR2})
	if err != nil {
		t.Fatal(err)
	}
	const band = 7
	visited := map[[2]int]bool{}
	err = BandedStream(g, BandOptions{Band: band, StripeRows: 13}, func(i, j0 int, row []float64) {
		if j0 != i {
			t.Fatalf("j0 %d != i %d", j0, i)
		}
		for t2, v := range row {
			j := i + t2
			if j-i > band || j >= 60 {
				t.Fatalf("pair (%d,%d) outside band", i, j)
			}
			if math.Abs(v-full.R2[i*60+j]) > 1e-12 {
				t.Fatalf("(%d,%d): %v vs %v", i, j, v, full.R2[i*60+j])
			}
			visited[[2]int{i, j}] = true
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every in-band pair visited exactly once.
	for i := 0; i < 60; i++ {
		for j := i; j <= min(i+band, 59); j++ {
			if !visited[[2]int{i, j}] {
				t.Fatalf("pair (%d,%d) not visited", i, j)
			}
		}
	}
	want := 0
	for i := 0; i < 60; i++ {
		want += min(i+band, 59) - i + 1
	}
	if len(visited) != want {
		t.Fatalf("visited %d pairs, want %d", len(visited), want)
	}
}

func TestBandedStreamMeasures(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomMatrix(rng, 20, 100)
	full, err := Matrix(g, Options{Measures: MeasureD | MeasureDPrime})
	if err != nil {
		t.Fatal(err)
	}
	err = BandedStream(g, BandOptions{Band: 4, Options: Options{Measures: MeasureD}}, func(i, j0 int, row []float64) {
		for t2, v := range row {
			if math.Abs(v-full.D[i*20+i+t2]) > 1e-12 {
				t.Fatalf("D mismatch at (%d,%d)", i, i+t2)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	err = BandedStream(g, BandOptions{Band: 4, Options: Options{Measures: MeasureDPrime}}, func(i, j0 int, row []float64) {
		for t2, v := range row {
			if math.Abs(v-full.DPrime[i*20+i+t2]) > 1e-12 {
				t.Fatalf("D′ mismatch at (%d,%d)", i, i+t2)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBandedSumR2(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomMatrix(rng, 40, 128)
	full, err := Matrix(g, Options{Measures: MeasureR2})
	if err != nil {
		t.Fatal(err)
	}
	const band = 9
	var want float64
	var wantPairs int64
	for i := 0; i < 40; i++ {
		for j := i; j <= min(i+band, 39); j++ {
			want += full.R2[i*40+j]
			wantPairs++
		}
	}
	sum, pairs, err := BandedSumR2(g, BandOptions{Band: band, StripeRows: 11})
	if err != nil {
		t.Fatal(err)
	}
	if pairs != wantPairs || math.Abs(sum-want) > 1e-9 {
		t.Fatalf("sum %v pairs %d, want %v %d", sum, pairs, want, wantPairs)
	}
}

func TestBandedValidation(t *testing.T) {
	g := bitmat.New(10, 20)
	if err := BandedStream(g, BandOptions{Band: 0}, nil); err == nil {
		t.Fatal("band=0 accepted")
	}
	if err := BandedStream(g, BandOptions{Band: 3, StripeRows: -1}, nil); err == nil {
		t.Fatal("negative stripe accepted")
	}
	if err := BandedStream(bitmat.New(3, 0), BandOptions{Band: 2}, nil); err == nil {
		t.Fatal("zero samples accepted")
	}
}

func TestBandedBandWiderThanMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := randomMatrix(rng, 12, 64)
	// Band ≥ n degenerates to the full triangle.
	sumBand, pairsBand, err := BandedSumR2(g, BandOptions{Band: 100})
	if err != nil {
		t.Fatal(err)
	}
	sumFull, pairsFull, err := SumR2(g, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if pairsBand != pairsFull || math.Abs(sumBand-sumFull) > 1e-9 {
		t.Fatalf("wide band: %v/%d vs %v/%d", sumBand, pairsBand, sumFull, pairsFull)
	}
}

// Property: banded results agree with PairLD for random shapes, bands,
// and stripe sizes.
func TestQuickBanded(t *testing.T) {
	f := func(seed int64, n8, b8, st8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(n8%30) + 2
		band := int(b8%10) + 1
		stripe := int(st8%15) + 1
		g := randomMatrix(rng, n, 90)
		ok := true
		err := BandedStream(g, BandOptions{Band: band, StripeRows: stripe}, func(i, j0 int, row []float64) {
			for t2, v := range row {
				if math.Abs(v-PairLD(g, i, i+t2).R2) > 1e-12 {
					ok = false
				}
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
