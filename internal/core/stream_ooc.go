package core

import (
	"fmt"
	"time"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/blis"
)

// This file implements the out-of-core panel-pair scheduler: the striped
// streaming scan of Stream, generalized from a resident Matrix to any
// bitmat.Source (an mmap'd or windowed .ldbm file, or a resident matrix
// behind MemSource). The stripe × column-panel triangle is walked with a
// dedicated prefetcher goroutine reading — or, for mmap'd sources,
// MADV_WILLNEED-ing — the panels ahead of the compute loop, so disk I/O
// for panel k+1 overlaps the GEMM + fused epilogue on panel k. Per-row
// values are bit-identical to Stream's: counts are full-K dot products
// independent of column paneling, and the fused epilogue's expression
// shapes are per-cell, so the decomposition cannot perturb a single bit.
//
// Memory is bounded by the stripe (StripeRows × n float64 values), the
// double-buffered panel pools (2 A-stripes + 2 B-panels of packed words in
// windowed mode; zero-copy views in mmap mode), and the O(n) frequency
// vector — never by the n² output or the full bit matrix.

// oocReq is one panel fetch in the scheduler's walk order: the A stripe
// for each row block, then every B column panel it multiplies against.
type oocReq struct {
	lo, hi int
	a      bool // A-stripe (row block) vs B column panel
}

// oocPanel is a fetched panel handed from the prefetcher to the compute
// loop, with the pool buffer to recycle once the GEMM is done.
type oocPanel struct {
	m   *bitmat.Matrix
	buf *bitmat.Matrix
	err error
}

// SourceAlleleFrequencies computes the per-SNP allele frequencies of a
// source in one panel-by-panel pass, bit-identical to AlleleFrequencies
// on the resident matrix.
func SourceAlleleFrequencies(src bitmat.Source, panelSNPs int) ([]float64, error) {
	n := src.NumSNPs()
	p := make([]float64, n)
	if panelSNPs < 1 {
		panelSNPs = 1
	}
	var buf bitmat.Matrix
	for lo := 0; lo < n; lo += panelSNPs {
		hi := min(lo+panelSNPs, n)
		m, err := src.Panel(lo, hi, &buf)
		if err != nil {
			return nil, err
		}
		for i := 0; i < m.SNPs; i++ {
			p[lo+i] = m.AlleleFrequency(i)
		}
	}
	return p, nil
}

// StreamSource is Stream for a bitmat.Source: it computes the same rows,
// delivers them through the same visit contract, and produces bit-
// identical values — but the bit matrix is fetched panel by panel, so the
// scan runs on datasets that never fit in memory. A resident MemSource
// short-circuits to Stream (one zero-copy "panel" is the whole matrix);
// file sources run the double-buffered panel-pair schedule.
//
// Only fused-epilogue configurations are supported out of core (the
// default; KeepCounts and EpilogueSplit need the dense count stripe that
// out-of-core operation exists to avoid).
func StreamSource(src bitmat.Source, opt StreamOptions, visit func(i, j0 int, row []float64)) error {
	if ms, ok := src.(*bitmat.MemSource); ok {
		return Stream(ms.M, opt, visit)
	}
	if !opt.fused() {
		return fmt.Errorf("core: out-of-core streaming requires the fused epilogue (no KeepCounts, no EpilogueSplit)")
	}
	if err := opt.checkBanded(); err != nil {
		return err
	}
	n := src.NumSNPs()
	samples := src.NumSamples()
	if samples == 0 && n > 0 {
		return fmt.Errorf("core: streaming LD with zero samples")
	}
	stripe := opt.StripeRows
	if stripe == 0 {
		stripe = 512
	}
	if stripe < 1 {
		return fmt.Errorf("core: invalid StripeRows %d", stripe)
	}
	lo, hi, err := opt.rowWindow(n)
	if err != nil {
		return err
	}
	panel := opt.ioPanel()
	p, err := SourceAlleleFrequencies(src, panel)
	if err != nil {
		return err
	}

	// The full fetch schedule, in exactly the order the compute loop will
	// consume panels. Generating it up front keeps the prefetcher a dumb
	// cursor that is always N buffered panels ahead of the consumer.
	// A banded scan caps each stripe's column panels at the band edge —
	// this is where far-off-diagonal panels drop out of existence: never
	// scheduled, never fetched, never multiplied. The compute loop below
	// derives its panel walk from the same stripeColEnd, so producer and
	// consumer always agree on the schedule.
	var schedule []oocReq
	for i0 := lo; i0 < hi; i0 += stripe {
		rows := min(stripe, hi-i0)
		schedule = append(schedule, oocReq{i0, i0 + rows, true})
		bLo, bHi := 0, n
		if opt.Triangular {
			bLo = i0 + rows
			bHi = opt.stripeColEnd(i0, rows, n)
		}
		for c := bLo; c < bHi; c += panel {
			schedule = append(schedule, oocReq{c, min(c+panel, bHi), false})
		}
		if skipped := countSkippedPanels(bLo, bHi, n, panel); skipped > 0 {
			blis.NoteBandSkip(skipped, int64(rows)*int64(n-bHi))
		}
	}

	words := bitmat.WordsFor(samples)
	freeA := make(chan *bitmat.Matrix, 2)
	freeB := make(chan *bitmat.Matrix, 2)
	for i := 0; i < 2; i++ {
		freeA <- &bitmat.Matrix{}
		freeB <- &bitmat.Matrix{}
	}
	fetched := make(chan oocPanel, 2)
	done := make(chan struct{})
	defer close(done)

	go func() {
		defer close(fetched)
		for _, r := range schedule {
			pool := freeB
			if r.a {
				pool = freeA
			}
			var buf *bitmat.Matrix
			select {
			case buf = <-pool:
			case <-done:
				return
			}
			// For mmap'd sources this starts kernel readahead; Panel is
			// then a zero-copy view. For windowed sources Panel is the
			// read itself, into the recycled pool buffer.
			src.Prefetch(r.lo, r.hi)
			m, err := src.Panel(r.lo, r.hi, buf)
			blis.NotePanelRead(int64(r.hi-r.lo) * int64(words) * 8)
			select {
			case fetched <- oocPanel{m: m, buf: buf, err: err}:
			case <-done:
				return
			}
		}
	}()

	// recv pulls the next scheduled panel, charging wall time to the
	// prefetch-stall counter only when the compute loop actually blocks.
	recv := func() (oocPanel, error) {
		var pnl oocPanel
		var ok bool
		select {
		case pnl, ok = <-fetched:
		default:
			t0 := time.Now()
			pnl, ok = <-fetched
			blis.NotePrefetchStall(time.Since(t0).Nanoseconds())
		}
		if !ok {
			return pnl, fmt.Errorf("core: panel prefetcher exited early")
		}
		return pnl, pnl.err
	}

	meas := opt.measures()
	fast := meas&MeasureR2 != 0 && !opt.Exact
	inv := 0.0
	if samples > 0 {
		inv = 1 / float64(samples)
	}
	// Same epilogue constructor as streamFused: one statistic, frequency
	// slices aligned to the driver's sub-matrix coordinates.
	epi := func(out []float64, ld int, rowFreqs, colFreqs []float64) *denseEpilogue {
		e := &denseEpilogue{
			rowFreqs: rowFreqs, colFreqs: colFreqs, ld: ld, fast: fast, inv: inv,
		}
		switch {
		case meas&MeasureR2 != 0:
			e.r2 = out
		case meas&MeasureD != 0:
			e.d = out
		default:
			e.dp = out
		}
		e.prepare()
		return e
	}
	vals := make([]float64, min(stripe, max(n, 1))*n)
	for i0 := lo; i0 < hi; i0 += stripe {
		rows := min(stripe, hi-i0)
		a, err := recv()
		if err != nil {
			return err
		}
		sub := a.m
		base := 0
		width := n
		if opt.Triangular {
			base = i0
			width = n - i0
		}
		v := vals[:rows*width]
		bLo, bHi := 0, n
		if opt.Triangular {
			bLo = i0 + rows
			bHi = opt.stripeColEnd(i0, rows, n)
			e := epi(v, width, p[i0:i0+rows], p[i0:i0+rows])
			if err := blis.SyrkEpilogue(opt.blisCfg(), sub, e.tile); err != nil {
				return err
			}
		}
		for c := bLo; c < bHi; c += panel {
			c1 := min(c+panel, bHi)
			b, err := recv()
			if err != nil {
				return err
			}
			e := epi(v[c-base:], width, p[i0:i0+rows], p[c:c1])
			err = blis.GemmEpilogue(opt.blisCfg(), sub, b.m, e.tile)
			freeB <- b.buf
			if err != nil {
				return err
			}
		}
		freeA <- a.buf
		for i := 0; i < rows; i++ {
			gi := i0 + i
			j0 := base
			off := 0
			end := i*width + width
			if opt.Triangular {
				j0 = gi
				off = gi - i0
				end = i*width + (opt.rowEndCol(gi, n) - i0)
			}
			visit(gi, j0, v[i*width+off:end])
		}
	}
	return nil
}

// countSkippedPanels returns how many column panels of the unbanded walk
// [bLo, n) a banded cap at bHi eliminated.
func countSkippedPanels(bLo, bHi, n, panel int) int64 {
	var skipped int64
	for c := bLo; c < n; c += panel {
		if c >= bHi {
			skipped++
		}
	}
	return skipped
}
