package core

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/blis"
)

// measureSets covers every combination the API exposes (zero = default r²).
var measureSets = []Measure{
	0, MeasureD, MeasureR2, MeasureDPrime,
	MeasureD | MeasureR2, MeasureR2 | MeasureDPrime,
	MeasureD | MeasureR2 | MeasureDPrime,
}

// bitsEqual compares float64 slices bit for bit (NaN-safe, −0 ≠ +0).
func bitsEqual(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if (got == nil) != (want == nil) {
		t.Fatalf("%s: presence mismatch (got %v, want %v)", name, got != nil, want != nil)
	}
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", name, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s[%d] = %x (%g), want %x (%g)",
				name, i, math.Float64bits(got[i]), got[i], math.Float64bits(want[i]), want[i])
		}
	}
}

func bitsEqualResults(t *testing.T, got, want *Result) {
	t.Helper()
	bitsEqual(t, "D", got.D, want.D)
	bitsEqual(t, "R2", got.R2, want.R2)
	bitsEqual(t, "DPrime", got.DPrime, want.DPrime)
}

// fringeConfig forces many blocking fringes so register-tile edges, partial
// column blocks, and the SYRK diagonal crossing all occur on small inputs.
func fringeConfig(threads int) blis.Config {
	return blis.Config{MC: 12, NC: 20, KC: 3, Threads: threads}
}

// The golden contract: the fused per-tile epilogue produces bit-identical
// measures to the legacy split sweep, for every measure combination and
// across fringe shapes (n % MR ≠ 0, n < NR, n = 1).
func TestMatrixFusedMatchesSplitBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 3, 13, 50, 67} {
		g := randomMatrix(rng, n, 65)
		for _, meas := range measureSets {
			opt := Options{Measures: meas, Blis: fringeConfig(3)}
			opt.Epilogue = EpilogueFused
			fused, err := Matrix(g, opt)
			if err != nil {
				t.Fatal(err)
			}
			opt.Epilogue = EpilogueSplit
			split, err := Matrix(g, opt)
			if err != nil {
				t.Fatal(err)
			}
			bitsEqualResults(t, fused, split)
		}
	}
}

func TestMatrixFusedDefaultConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomMatrix(rng, 131, 300)
	fused, err := Matrix(g, Options{Measures: MeasureD | MeasureR2 | MeasureDPrime})
	if err != nil {
		t.Fatal(err)
	}
	split, err := Matrix(g, Options{
		Measures: MeasureD | MeasureR2 | MeasureDPrime, Epilogue: EpilogueSplit,
	})
	if err != nil {
		t.Fatal(err)
	}
	bitsEqualResults(t, fused, split)
}

func TestCrossFusedMatchesSplitBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	shapes := []struct{ m, n int }{{1, 1}, {5, 3}, {13, 40}, {50, 27}}
	for _, sh := range shapes {
		a := randomMatrix(rng, sh.m, 100)
		b := randomMatrix(rng, sh.n, 100)
		for _, meas := range measureSets {
			opt := Options{Measures: meas, Blis: fringeConfig(2), Epilogue: EpilogueFused}
			fused, err := Cross(a, b, opt)
			if err != nil {
				t.Fatal(err)
			}
			opt.Epilogue = EpilogueSplit
			split, err := Cross(a, b, opt)
			if err != nil {
				t.Fatal(err)
			}
			bitsEqualResults(t, fused, split)
		}
	}
}

// The SYRK mirror copies computed floats instead of reconverting, so both
// triangles must hold identical bits.
func TestMatrixFusedSymmetryBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := randomMatrix(rng, 61, 200)
	res, err := Matrix(g, Options{
		Measures: MeasureD | MeasureR2 | MeasureDPrime,
		Blis:     fringeConfig(4), Epilogue: EpilogueFused,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []struct {
		name string
		v    []float64
	}{{"D", res.D}, {"R2", res.R2}, {"DPrime", res.DPrime}} {
		for i := 0; i < 61; i++ {
			for j := 0; j < i; j++ {
				lo, hi := m.v[i*61+j], m.v[j*61+i]
				if math.Float64bits(lo) != math.Float64bits(hi) {
					t.Fatalf("%s asymmetric at (%d,%d): %x vs %x",
						m.name, i, j, math.Float64bits(lo), math.Float64bits(hi))
				}
			}
		}
	}
}

// FastR2 trades the exact quotient for reciprocal multiplies: values may
// move in the last ulps but must stay numerically tight and — because the
// mirror copies floats — exactly symmetric.
func TestMatrixFastR2(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomMatrix(rng, 47, 150)
	exact, err := Matrix(g, Options{Blis: fringeConfig(2)})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Matrix(g, Options{Blis: fringeConfig(2), FastR2: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range fast.R2 {
		if d := math.Abs(fast.R2[i] - exact.R2[i]); d > 1e-9 {
			t.Fatalf("FastR2[%d] = %g, exact %g (Δ %g)", i, fast.R2[i], exact.R2[i], d)
		}
	}
	for i := 0; i < 47; i++ {
		for j := 0; j < i; j++ {
			if math.Float64bits(fast.R2[i*47+j]) != math.Float64bits(fast.R2[j*47+i]) {
				t.Fatalf("FastR2 asymmetric at (%d,%d)", i, j)
			}
		}
	}
}

// KeepCounts cannot run fused (its contract is the dense counts): even
// with EpilogueFused requested, the counts must be present, exact, and
// the measures identical to the split pipeline.
func TestKeepCountsStillExact(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 33
	g := randomMatrix(rng, n, 80)
	res, err := Matrix(g, Options{
		Measures: MeasureR2 | KeepCounts, Blis: fringeConfig(2), Epilogue: EpilogueFused,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts == nil {
		t.Fatal("KeepCounts dropped the count matrix")
	}
	want := make([]uint32, n*n)
	if err := blis.Reference(g, g, want, n); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if res.Counts[i] != want[i] {
			t.Fatalf("Counts[%d] = %d, want %d", i, res.Counts[i], want[i])
		}
	}
	split, err := Matrix(g, Options{Measures: MeasureR2, Epilogue: EpilogueSplit, Blis: fringeConfig(2)})
	if err != nil {
		t.Fatal(err)
	}
	bitsEqual(t, "R2", res.R2, split.R2)
}

func TestMaskedMatrixFusedMatchesSplitBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 3, 21, 40} {
		g, k := randomMaskedPair(rng, n, 130)
		for _, meas := range measureSets {
			opt := Options{Measures: meas, Blis: fringeConfig(3), Epilogue: EpilogueFused}
			fused, err := MaskedMatrix(g, k, opt)
			if err != nil {
				t.Fatal(err)
			}
			opt.Epilogue = EpilogueSplit
			split, err := MaskedMatrix(g, k, opt)
			if err != nil {
				t.Fatal(err)
			}
			bitsEqualResults(t, fused, split)
		}
	}
}

// streamDense collects a Stream scan into a dense row-major matrix.
func streamDense(t *testing.T, g *bitmat.Matrix, opt StreamOptions) []float64 {
	t.Helper()
	out := make([]float64, g.SNPs*g.SNPs)
	for i := range out {
		out[i] = math.NaN() // poison unvisited cells
	}
	err := Stream(g, opt, func(i, j0 int, row []float64) {
		copy(out[i*g.SNPs+j0:], row)
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestStreamFusedMatchesSplitBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := randomMatrix(rng, 53, 120)
	for _, triangular := range []bool{false, true} {
		for _, exact := range []bool{false, true} {
			for _, meas := range []Measure{MeasureR2, MeasureD, MeasureDPrime} {
				opt := StreamOptions{
					Options:    Options{Measures: meas, Blis: fringeConfig(2)},
					StripeRows: 17, Triangular: triangular, Exact: exact,
				}
				opt.Epilogue = EpilogueFused
				fused := streamDense(t, g, opt)
				opt.Epilogue = EpilogueSplit
				split := streamDense(t, g, opt)
				for i := range fused {
					fb, sb := math.Float64bits(fused[i]), math.Float64bits(split[i])
					if fb != sb {
						t.Fatalf("tri=%v exact=%v meas=%b: cell %d = %x, want %x",
							triangular, exact, meas, i, fb, sb)
					}
				}
			}
		}
	}
}

// Streamed values must also agree with the dense Matrix outputs when Exact
// is set — the contract the tile store's precompute/serve path rides.
func TestStreamExactMatchesMatrixBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomMatrix(rng, 41, 90)
	dense, err := Matrix(g, Options{Measures: MeasureR2, Blis: fringeConfig(2)})
	if err != nil {
		t.Fatal(err)
	}
	streamed := streamDense(t, g, StreamOptions{
		Options:    Options{Measures: MeasureR2, Blis: fringeConfig(2)},
		StripeRows: 10, Triangular: true, Exact: true,
	})
	for i := 0; i < 41; i++ {
		for j := i; j < 41; j++ {
			sb, db := math.Float64bits(streamed[i*41+j]), math.Float64bits(dense.R2[i*41+j])
			if sb != db {
				t.Fatalf("stream (%d,%d) = %x, dense %x", i, j, sb, db)
			}
		}
	}
}

// allocBytes measures TotalAlloc across one call after a warm-up call has
// populated the blis arena pool.
func allocBytes(f func()) uint64 {
	f() // warm the pack/scratch arenas
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	f()
	runtime.ReadMemStats(&m1)
	return m1.TotalAlloc - m0.TotalAlloc
}

// The point of the fusion, asserted: the split pipeline allocates the
// dense n²·4-byte count matrix per call and the fused pipeline does not.
func TestMatrixFusedAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc measurement")
	}
	rng := rand.New(rand.NewSource(10))
	const n = 512
	g := randomMatrix(rng, n, 256)
	run := func(mode EpilogueMode) func() {
		return func() {
			if _, err := Matrix(g, Options{Measures: MeasureR2, Epilogue: mode, Blis: blis.Config{Threads: 2}}); err != nil {
				t.Fatal(err)
			}
		}
	}
	fused := allocBytes(run(EpilogueFused))
	split := allocBytes(run(EpilogueSplit))
	counts := uint64(n * n * 4)
	// Both paths allocate the n²·8 R2 result; only split adds the count
	// matrix. Allow slack for pool misses and runtime noise, but the gap
	// must show most of the count matrix gone.
	if fused+counts/2 > split {
		t.Fatalf("fused path allocated %d bytes vs split %d — count matrix (%d) not eliminated",
			fused, split, counts)
	}
	if budget := uint64(n*n*8) + counts/2; fused > budget {
		t.Fatalf("fused path allocated %d bytes, budget %d (result + slack)", fused, budget)
	}
}
