package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ldgemm/internal/bitmat"
)

func TestPruneRemovesPerfectDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base := randomMatrix(rng, 10, 200)
	// Duplicate every SNP: 20 SNPs where odd indices copy even ones.
	g := bitmat.New(20, 200)
	for i := 0; i < 10; i++ {
		copy(g.SNP(2*i), base.SNP(i))
		copy(g.SNP(2*i+1), base.SNP(i))
	}
	res, err := Prune(g, PruneOptions{WindowSNPs: 20, StepSNPs: 5, R2Threshold: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Kept)+len(res.Removed) != 20 {
		t.Fatalf("partition broken: %d + %d", len(res.Kept), len(res.Removed))
	}
	// Exactly one member of each duplicate pair survives.
	for i := 0; i < 10; i++ {
		a, b := contains(res.Kept, 2*i), contains(res.Kept, 2*i+1)
		if a == b {
			t.Fatalf("duplicate pair %d: kept(%v,%v)", i, a, b)
		}
	}
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func TestPruneKeepsIndependentSNPs(t *testing.T) {
	// Mutually independent random SNPs with generous threshold: nothing
	// should be removed.
	rng := rand.New(rand.NewSource(2))
	g := randomMatrix(rng, 30, 500)
	res, err := Prune(g, PruneOptions{R2Threshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Removed) != 0 {
		t.Fatalf("independent SNPs pruned: %v", res.Removed)
	}
}

// TestPrunePostcondition: after pruning, no surviving pair within the
// window exceeds the threshold.
func TestPrunePostcondition(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Correlated data: mosaic-like by copying neighbors with noise.
	g := bitmat.New(60, 300)
	prev := make([]byte, 300)
	for s := range prev {
		prev[s] = byte(rng.Intn(2))
	}
	for i := 0; i < 60; i++ {
		for s := 0; s < 300; s++ {
			if rng.Float64() < 0.1 {
				prev[s] ^= 1
			}
			if prev[s] == 1 {
				g.SetBit(i, s)
			} else {
				g.ClearBit(i, s)
			}
		}
	}
	const thr = 0.4
	const window = 30
	res, err := Prune(g, PruneOptions{WindowSNPs: window, StepSNPs: 3, R2Threshold: thr})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Removed) == 0 {
		t.Fatal("expected some pruning on correlated data")
	}
	for ai, a := range res.Kept {
		for _, b := range res.Kept[ai+1:] {
			if b-a >= window {
				break
			}
			if r2 := PairLD(g, a, b).R2; r2 > thr {
				t.Fatalf("surviving pair (%d,%d) has r² %v > %v", a, b, r2, thr)
			}
		}
	}
}

func TestPruneExtract(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := randomMatrix(rng, 12, 100)
	res := &PruneResult{Kept: []int{0, 3, 7}}
	sub := res.Extract(g)
	if sub.SNPs != 3 || sub.Samples != 100 {
		t.Fatalf("dims %dx%d", sub.SNPs, sub.Samples)
	}
	for dst, src := range res.Kept {
		for s := 0; s < 100; s++ {
			if sub.Bit(dst, s) != g.Bit(src, s) {
				t.Fatalf("extract mismatch at (%d,%d)", dst, s)
			}
		}
	}
}

func TestPruneOptionsValidation(t *testing.T) {
	g := bitmat.New(10, 50)
	if _, err := Prune(g, PruneOptions{WindowSNPs: 1}); err == nil {
		t.Fatal("window=1 accepted")
	}
	if _, err := Prune(g, PruneOptions{WindowSNPs: 5, StepSNPs: 9}); err == nil {
		t.Fatal("step>window accepted")
	}
	if _, err := Prune(g, PruneOptions{R2Threshold: 1.5}); err == nil {
		t.Fatal("threshold>1 accepted")
	}
}

// Property: Kept ∪ Removed is a partition of 0..n−1, both sorted.
func TestQuickPrunePartition(t *testing.T) {
	f := func(seed int64, n8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(n8%40) + 2
		g := randomMatrix(rng, n, 64)
		res, err := Prune(g, PruneOptions{WindowSNPs: 10, StepSNPs: 2, R2Threshold: 0.3})
		if err != nil {
			return false
		}
		seen := make([]int, n)
		for _, i := range res.Kept {
			seen[i]++
		}
		for _, i := range res.Removed {
			seen[i]++
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		for i := 1; i < len(res.Kept); i++ {
			if res.Kept[i] <= res.Kept[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
