package core

import (
	"math"
	"testing"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/popsim"
)

func streamMatrix(t *testing.T, snps, samples int, seed int64) *bitmat.Matrix {
	t.Helper()
	g, err := popsim.Mosaic(snps, samples, popsim.MosaicConfig{Seed: seed})
	if err != nil {
		t.Fatalf("popsim.Mosaic: %v", err)
	}
	return g
}

// collectStream materializes a full symmetric matrix from a streaming
// scan, mirroring triangular rows into both halves.
func collectStream(t *testing.T, g *bitmat.Matrix, opt StreamOptions) []float64 {
	t.Helper()
	n := g.SNPs
	out := make([]float64, n*n)
	prev := -1
	err := Stream(g, opt, func(i, j0 int, row []float64) {
		if i != prev+1 {
			t.Fatalf("stream delivered row %d after %d", i, prev)
		}
		prev = i
		if opt.Triangular && j0 != i {
			t.Fatalf("triangular row %d starts at %d", i, j0)
		}
		if !opt.Triangular && j0 != 0 {
			t.Fatalf("full row %d starts at %d", i, j0)
		}
		if len(row) != n-j0 {
			t.Fatalf("row %d has %d entries, want %d", i, len(row), n-j0)
		}
		for tt, v := range row {
			out[i*n+j0+tt] = v
			out[(j0+tt)*n+i] = v
		}
	})
	if err != nil {
		t.Fatalf("Stream: %v", err)
	}
	if prev != n-1 {
		t.Fatalf("stream stopped at row %d of %d", prev, n)
	}
	return out
}

// TestStreamStripeEdges runs triangular and full scans across stripe
// sizes that divide the SNP count, don't divide it, exceed it, and
// degenerate to single rows, checking every variant against the dense
// matrix.
func TestStreamStripeEdges(t *testing.T) {
	g := streamMatrix(t, 53, 48, 101) // prime SNP count: nothing divides it
	n := g.SNPs
	res, err := Matrix(g, Options{})
	if err != nil {
		t.Fatalf("Matrix: %v", err)
	}
	for _, stripe := range []int{1, 7, 53, 64, 512} {
		for _, tri := range []bool{false, true} {
			got := collectStream(t, g, StreamOptions{StripeRows: stripe, Triangular: tri})
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if d := math.Abs(got[i*n+j] - res.R2[i*n+j]); d > 1e-12 {
						t.Fatalf("stripe=%d tri=%v (%d,%d): stream %v dense %v",
							stripe, tri, i, j, got[i*n+j], res.R2[i*n+j])
					}
				}
			}
		}
	}
}

// TestStreamExactBitIdentical checks the Exact epilogue against the dense
// matrices bit for bit, for every statistic — the property the tile-store
// builder depends on.
func TestStreamExactBitIdentical(t *testing.T) {
	g := streamMatrix(t, 41, 32, 103)
	n := g.SNPs
	for _, m := range []Measure{MeasureR2, MeasureD, MeasureDPrime} {
		res, err := Matrix(g, Options{Measures: m})
		if err != nil {
			t.Fatalf("Matrix: %v", err)
		}
		var want []float64
		switch m {
		case MeasureR2:
			want = res.R2
		case MeasureD:
			want = res.D
		default:
			want = res.DPrime
		}
		got := collectStream(t, g, StreamOptions{
			Options: Options{Measures: m}, StripeRows: 16, Triangular: true, Exact: true,
		})
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if math.Float64bits(got[i*n+j]) != math.Float64bits(want[i*n+j]) {
					t.Fatalf("measure=%d (%d,%d): stream %v, dense %v", m, i, j, got[i*n+j], want[i*n+j])
				}
			}
		}
	}
}

// TestStreamTinyInputs covers SNP counts at and below one stripe,
// including the empty matrix.
func TestStreamTinyInputs(t *testing.T) {
	for _, snps := range []int{0, 1, 2, 5} {
		var g *bitmat.Matrix
		if snps == 0 {
			g = bitmat.New(0, 8)
		} else {
			g = streamMatrix(t, snps, 24, int64(200+snps))
		}
		rows := 0
		err := Stream(g, StreamOptions{StripeRows: 512, Triangular: true}, func(i, j0 int, row []float64) {
			rows++
		})
		if err != nil {
			t.Fatalf("snps=%d: %v", snps, err)
		}
		if rows != snps {
			t.Fatalf("snps=%d: visited %d rows", snps, rows)
		}
		if snps > 0 {
			collectStream(t, g, StreamOptions{StripeRows: 3, Triangular: true})
		}
	}
}

func TestStreamErrors(t *testing.T) {
	g := streamMatrix(t, 8, 16, 107)
	if err := Stream(g, StreamOptions{StripeRows: -1}, func(int, int, []float64) {}); err == nil {
		t.Fatal("negative StripeRows accepted")
	}
	zero := &bitmat.Matrix{SNPs: 4, Samples: 0}
	if err := Stream(zero, StreamOptions{}, func(int, int, []float64) {}); err == nil {
		t.Fatal("zero samples accepted")
	}
}
