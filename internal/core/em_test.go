package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ldgemm/internal/bitmat"
)

// phasedPair builds a diploid genotype matrix from a known haplotype
// matrix and returns both.
func phasedPair(rng *rand.Rand, snps, diploids int) (*bitmat.Matrix, *bitmat.GenotypeMatrix) {
	hap := randomMatrix(rng, snps, 2*diploids)
	g, err := bitmat.FromHaplotypes(hap)
	if err != nil {
		panic(err)
	}
	return hap, g
}

func TestPairGenoTable(t *testing.T) {
	g := bitmat.NewGenotypeMatrix(2, 5)
	g.Set(0, 0, bitmat.GenoHomAlt)
	g.Set(1, 0, bitmat.GenoHet)
	g.Set(0, 1, bitmat.GenoHet)
	g.Set(1, 1, bitmat.GenoHet)
	g.Set(0, 2, bitmat.GenoMissing)
	tbl := PairGenoTable(g, 0, 1)
	if tbl.Counts[2][1] != 1 || tbl.Counts[1][1] != 1 || tbl.Counts[0][0] != 2 {
		t.Fatalf("table %+v", tbl.Counts)
	}
	if tbl.Total() != 4 { // missing sample skipped
		t.Fatalf("total %d", tbl.Total())
	}
}

func TestEMRejectsEmpty(t *testing.T) {
	if _, _, _, _, err := EMHaplotypeFreqs(GenoTable{}); err == nil {
		t.Fatal("empty table accepted")
	}
}

func TestEMNoAmbiguityExact(t *testing.T) {
	// Without double heterozygotes, EM is exact counting. Construct
	// genotypes from known haplotype pairs avoiding the (1,1) cell.
	var tbl GenoTable
	tbl.Counts[2][2] = 10 // AB/AB
	tbl.Counts[0][0] = 30 // ab/ab
	tbl.Counts[2][0] = 20 // Ab/Ab
	tbl.Counts[0][2] = 40 // aB/aB
	pAB, pAb, paB, pab, err := EMHaplotypeFreqs(tbl)
	if err != nil {
		t.Fatal(err)
	}
	tot := 100.0
	if math.Abs(pAB-10/tot) > 1e-12 || math.Abs(pAb-20/tot) > 1e-12 ||
		math.Abs(paB-40/tot) > 1e-12 || math.Abs(pab-30/tot) > 1e-12 {
		t.Fatalf("freqs %v %v %v %v", pAB, pAb, paB, pab)
	}
}

func TestEMRecoversPhasedTruth(t *testing.T) {
	// Collapse phased haplotypes to genotypes; EM on the genotypes must
	// recover haplotype r² closely (it is the MLE, and with thousands of
	// haplotypes the phase ambiguity resolves).
	rng := rand.New(rand.NewSource(1))
	hap, g := phasedPair(rng, 12, 3000)
	for i := 0; i < 12; i++ {
		for j := i + 1; j < 12; j++ {
			truth := PairLD(hap, i, j)
			est, err := EMPairLD(g, i, j)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(est.R2-truth.R2) > 0.02 {
				t.Fatalf("(%d,%d): EM r² %v vs phased %v", i, j, est.R2, truth.R2)
			}
			if math.Abs(est.PAB-truth.PAB) > 0.02 {
				t.Fatalf("(%d,%d): EM P(AB) %v vs phased %v", i, j, est.PAB, truth.PAB)
			}
		}
	}
}

func TestEMRecoversStrongLD(t *testing.T) {
	// Perfect LD: haplotypes only AB or ab. Genotype table has double
	// heterozygotes (AB/ab) whose correct phasing EM must infer.
	var tbl GenoTable
	tbl.Counts[2][2] = 25 // AB/AB
	tbl.Counts[1][1] = 50 // AB/ab (ambiguous!)
	tbl.Counts[0][0] = 25 // ab/ab
	pAB, pAb, paB, pab, err := EMHaplotypeFreqs(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pAB-0.5) > 1e-6 || math.Abs(pab-0.5) > 1e-6 || pAb > 1e-6 || paB > 1e-6 {
		t.Fatalf("perfect-LD EM gave %v %v %v %v", pAB, pAb, paB, pab)
	}
	p := PairFromFreqs(pAB, pAB+pAb, pAB+paB)
	if math.Abs(p.R2-1) > 1e-6 {
		t.Fatalf("perfect-LD r² = %v", p.R2)
	}
}

func TestEMMatrixSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	_, g := phasedPair(rng, 8, 200)
	m, err := EMMatrix(g)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if math.Abs(m[i*8+i]-1) > 1e-9 && g.PairCounts(i, i).N > 0 {
			// Diagonal should be 1 unless monomorphic.
			tbl := PairGenoTable(g, i, i)
			mono := tbl.Counts[0][0] == tbl.Total() || tbl.Counts[2][2] == tbl.Total()
			if !mono {
				t.Fatalf("diag %d = %v", i, m[i*8+i])
			}
		}
		for j := 0; j < 8; j++ {
			if m[i*8+j] != m[j*8+i] {
				t.Fatalf("asymmetric at (%d,%d)", i, j)
			}
		}
	}
}

// Property: EM frequencies are a valid distribution and imply frequencies
// consistent with the table margins.
func TestQuickEMConsistency(t *testing.T) {
	f := func(seed int64, d8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		diploids := int(d8%200) + 20
		_, g := phasedPair(rng, 2, diploids)
		tbl := PairGenoTable(g, 0, 1)
		pAB, pAb, paB, pab, err := EMHaplotypeFreqs(tbl)
		if err != nil {
			return false
		}
		sum := pAB + pAb + paB + pab
		if math.Abs(sum-1) > 1e-9 {
			return false
		}
		for _, p := range []float64{pAB, pAb, paB, pab} {
			if p < -1e-12 || p > 1+1e-12 {
				return false
			}
		}
		// Margins must match the genotype allele frequencies exactly
		// (EM preserves them by construction).
		n := float64(2 * tbl.Total())
		var dosA, dosB int
		for a := 0; a < 3; a++ {
			for b := 0; b < 3; b++ {
				dosA += a * tbl.Counts[a][b]
				dosB += b * tbl.Counts[a][b]
			}
		}
		return math.Abs((pAB+pAb)-float64(dosA)/n) < 1e-9 &&
			math.Abs((pAB+paB)-float64(dosB)/n) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
