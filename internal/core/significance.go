package core

import (
	"container/heap"
	"fmt"
	"sort"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/stats"
)

// SignificantPair is one SNP pair whose LD rejects the null of linkage
// equilibrium after multiple-testing correction.
type SignificantPair struct {
	I, J   int
	R2     float64
	Chi2   float64
	PValue float64
}

// SignificanceOptions configures the equilibrium test scan.
type SignificanceOptions struct {
	// Alpha is the family-wise significance level (default 0.05).
	Alpha float64
	// Bonferroni applies the correction for the number of tested pairs
	// (default true via normalize; set AlphaIsPerTest to opt out).
	AlphaIsPerTest bool
	// MaxResults caps the returned list (default 10000); the scan still
	// counts all significant pairs.
	MaxResults int
	// RowStart/RowEnd restrict the scan to pairs (i, j) with i — the
	// smaller index — in [RowStart, RowEnd). Both zero means all rows.
	// A cluster shard scans only its owned strip this way; because each
	// pair's statistic is a pure function of its counts and frequencies,
	// strip results are bit-identical to the matching rows of a full
	// scan. Note the Bonferroni denominator is the strip's own pair
	// count: cluster-wide scans should set AlphaIsPerTest so every
	// shard applies the same threshold.
	RowStart, RowEnd int
	// LD carries blocking/threading options.
	LD Options
}

func (o SignificanceOptions) normalize() (SignificanceOptions, error) {
	if o.Alpha == 0 {
		o.Alpha = 0.05
	}
	if o.MaxResults == 0 {
		o.MaxResults = 10000
	}
	if o.Alpha <= 0 || o.Alpha >= 1 || o.MaxResults < 1 {
		return o, fmt.Errorf("core: invalid significance options %+v", o)
	}
	return o, nil
}

// SignificanceResult summarizes an equilibrium-test scan.
type SignificanceResult struct {
	// Tested is the number of off-diagonal pairs tested.
	Tested int64
	// Significant is the number rejecting the null at the (corrected)
	// threshold.
	Significant int64
	// Threshold is the per-test p-value cutoff actually applied.
	Threshold float64
	// Pairs holds up to MaxResults significant pairs, strongest first.
	Pairs []SignificantPair
}

// Significance scans all SNP pairs, tests each for linkage disequilibrium
// with the χ² statistic Nseq·r² (1 df), and returns the pairs passing a
// Bonferroni-corrected threshold. The χ² values come from the streamed r²
// scan, so memory stays O(stripe·n).
func Significance(g *bitmat.Matrix, opt SignificanceOptions) (*SignificanceResult, error) {
	opt, err := opt.normalize()
	if err != nil {
		return nil, err
	}
	n := g.SNPs
	lo, hi := opt.RowStart, opt.RowEnd
	if lo == 0 && hi == 0 {
		hi = n
	}
	if lo < 0 || hi <= lo || hi > n {
		return nil, fmt.Errorf("core: invalid row window [%d,%d) of %d SNPs", lo, hi, n)
	}
	// Off-diagonal pairs with their smaller index in the window: row i
	// contributes n-1-i of them.
	tested := (int64(n-1-lo) + int64(n-hi)) * int64(hi-lo) / 2
	threshold := opt.Alpha
	if !opt.AlphaIsPerTest && tested > 0 {
		threshold = opt.Alpha / float64(tested)
	}
	// Invert once: the χ² value whose tail is exactly the threshold; a
	// pair is significant iff its χ² exceeds it. Bisection on the
	// monotone tail function avoids per-pair p-value evaluation.
	chiCut, err := chiSquareQuantile(threshold)
	if err != nil {
		return nil, err
	}
	r2Cut := chiCut / float64(max(g.Samples, 1))

	res := &SignificanceResult{Tested: tested, Threshold: threshold}
	// Keep the strongest MaxResults pairs with a min-heap on r²; p-values
	// are evaluated once at the end, only for the survivors.
	h := &pairHeap{}
	ld := opt.LD
	ld.Measures = MeasureR2
	err = Stream(g, StreamOptions{Options: ld, Triangular: true, RowStart: lo, RowEnd: hi},
		func(i, j0 int, row []float64) {
			for t, r2 := range row {
				j := j0 + t
				if j == i || r2 < r2Cut {
					continue
				}
				res.Significant++
				if h.Len() < opt.MaxResults {
					heap.Push(h, SignificantPair{I: i, J: j, R2: r2})
				} else if r2 > (*h)[0].R2 {
					(*h)[0] = SignificantPair{I: i, J: j, R2: r2}
					heap.Fix(h, 0)
				}
			}
		})
	if err != nil {
		return nil, err
	}
	res.Pairs = append(res.Pairs, *h...)
	for idx := range res.Pairs {
		p := &res.Pairs[idx]
		p.Chi2 = float64(g.Samples) * p.R2
		pv, perr := stats.ChiSquarePValue(p.Chi2, 1)
		if perr != nil {
			pv = 0 // deep tail beyond float precision
		}
		p.PValue = pv
	}
	// Strongest first, ties broken by (I, J) so the ranking is fully
	// deterministic — a cluster coordinator merging per-shard lists with
	// the same comparator reproduces the single-node order exactly.
	sort.Slice(res.Pairs, func(a, b int) bool { return PairStronger(res.Pairs[a], res.Pairs[b]) })
	return res, nil
}

// PairStronger is the canonical ranking of significant pairs: by r²
// descending, then (I, J) ascending. Exported so scatter-gather merges
// order partial results exactly as Significance orders a full scan.
func PairStronger(a, b SignificantPair) bool {
	if a.R2 != b.R2 {
		return a.R2 > b.R2
	}
	if a.I != b.I {
		return a.I < b.I
	}
	return a.J < b.J
}

// pairHeap is a min-heap of SignificantPair ordered by r².
type pairHeap []SignificantPair

func (h pairHeap) Len() int           { return len(h) }
func (h pairHeap) Less(i, j int) bool { return h[i].R2 < h[j].R2 }
func (h pairHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *pairHeap) Push(x any)        { *h = append(*h, x.(SignificantPair)) }
func (h *pairHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

var _ heap.Interface = (*pairHeap)(nil)

// chiSquareQuantile returns the χ² value (1 df) whose upper-tail
// probability equals p, by bisection on the monotone tail.
func chiSquareQuantile(p float64) (float64, error) {
	if p <= 0 {
		// Beyond representable tails: effectively infinite cutoff; use a
		// value whose tail underflows to 0.
		return 1e8, nil
	}
	if p >= 1 {
		return 0, nil
	}
	lo, hi := 0.0, 1.0
	for {
		tail, err := stats.ChiSquarePValue(hi, 1)
		if err != nil {
			return 0, err
		}
		if tail < p || hi > 1e9 {
			break
		}
		hi *= 2
	}
	for iter := 0; iter < 200 && hi-lo > 1e-10*(1+hi); iter++ {
		mid := (lo + hi) / 2
		tail, err := stats.ChiSquarePValue(mid, 1)
		if err != nil {
			return 0, err
		}
		if tail > p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}
