package core

import (
	"math"
	"testing"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/blis"
)

// collectBanded materializes a banded triangular scan into a dense
// symmetric matrix, with math.NaN marking cells the scan never
// delivered, and checks the delivered row geometry against the band.
func collectBanded(t *testing.T, g *bitmat.Matrix, opt StreamOptions, ooc bool) []float64 {
	t.Helper()
	n := g.SNPs
	out := make([]float64, n*n)
	for i := range out {
		out[i] = math.NaN()
	}
	visit := func(i, j0 int, row []float64) {
		if j0 != i {
			t.Fatalf("triangular row %d starts at %d", i, j0)
		}
		want := n - i
		if opt.Banded {
			want = min(n, i+opt.Band+1) - i
		}
		if len(row) != want {
			t.Fatalf("row %d has %d entries, want %d", i, len(row), want)
		}
		for tt, v := range row {
			out[i*n+j0+tt] = v
			out[(j0+tt)*n+i] = v
		}
	}
	var err error
	if ooc {
		err = StreamSource(sliceBacked(t, g), opt, visit)
	} else {
		err = Stream(g, opt, visit)
	}
	if err != nil {
		t.Fatalf("banded stream: %v", err)
	}
	return out
}

// sliceBacked wraps g in a non-MemSource so StreamSource exercises the
// real panel-pair schedule rather than short-circuiting to Stream.
func sliceBacked(t *testing.T, g *bitmat.Matrix) bitmat.Source {
	t.Helper()
	src, err := bitmat.NewSliceSource(bitmat.NewMemSource(g), 0, g.SNPs)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

// TestBandedStreamMatchesDense: every in-band cell of a banded scan is
// bit-identical to the unbanded scan's, for every measure, both exact
// and fast epilogues, resident and out-of-core — and W ≥ n degenerates
// to exactly the dense result with nothing missing.
func TestBandedStreamMatchesDense(t *testing.T) {
	g := streamMatrix(t, 61, 44, 77) // prime SNP count
	n := g.SNPs
	for _, meas := range []Measure{MeasureR2, MeasureD, MeasureDPrime} {
		for _, exact := range []bool{false, true} {
			base := StreamOptions{Triangular: true, Exact: exact, StripeRows: 16}
			base.Measures = meas
			dense := collectStream(t, g, base)
			for _, ooc := range []bool{false, true} {
				for _, W := range []int{0, 1, 7, 16, 23, n - 1, n, 3 * n} {
					opt := base
					opt.Banded, opt.Band = true, W
					opt.IOPanelSNPs = 8
					got := collectBanded(t, g, opt, ooc)
					for i := 0; i < n; i++ {
						for j := 0; j < n; j++ {
							v := got[i*n+j]
							dist := max(i-j, j-i)
							if dist <= W {
								if math.Float64bits(v) != math.Float64bits(dense[i*n+j]) {
									t.Fatalf("meas=%d exact=%v ooc=%v W=%d: cell (%d,%d) = %v, dense %v",
										meas, exact, ooc, W, i, j, v, dense[i*n+j])
								}
							} else if !math.IsNaN(v) {
								t.Fatalf("meas=%d exact=%v ooc=%v W=%d: out-of-band cell (%d,%d) delivered (%v)",
									meas, exact, ooc, W, i, j, v)
							}
						}
					}
				}
			}
		}
	}
}

// TestBandedSkipCounters: a narrow band on a matrix much wider than the
// band must skip panels and cells; W ≥ n must skip nothing.
func TestBandedSkipCounters(t *testing.T) {
	g := streamMatrix(t, 96, 40, 5)
	run := func(W int, ooc bool) (panels, cells uint64) {
		before := blis.ReadStats()
		opt := StreamOptions{Triangular: true, StripeRows: 16, Banded: true, Band: W, IOPanelSNPs: 8}
		var err error
		sink := func(i, j0 int, row []float64) {}
		if ooc {
			err = StreamSource(sliceBacked(t, g), opt, sink)
		} else {
			err = Stream(g, opt, sink)
		}
		if err != nil {
			t.Fatal(err)
		}
		after := blis.ReadStats()
		return after.BandPanelsSkipped - before.BandPanelsSkipped,
			after.BandCellsSkipped - before.BandCellsSkipped
	}
	for _, ooc := range []bool{false, true} {
		if p, c := run(4, ooc); p == 0 || c == 0 {
			t.Fatalf("ooc=%v: narrow band skipped %d panels / %d cells, want > 0", ooc, p, c)
		}
		if p, c := run(g.SNPs, ooc); p != 0 || c != 0 {
			t.Fatalf("ooc=%v: W=n skipped %d panels / %d cells, want 0", ooc, p, c)
		}
	}
}

// TestBandedStreamOptionsValidation: StreamOptions.Banded requires
// triangular + fused, and a negative band is rejected, on both the
// resident and source paths.
func TestBandedStreamOptionsValidation(t *testing.T) {
	g := streamMatrix(t, 24, 16, 1)
	sink := func(i, j0 int, row []float64) {}
	if err := Stream(g, StreamOptions{Banded: true, Band: 2}, sink); err == nil {
		t.Fatal("banded without Triangular accepted")
	}
	if err := Stream(g, StreamOptions{Triangular: true, Banded: true, Band: -1}, sink); err == nil {
		t.Fatal("negative band accepted")
	}
	bad := StreamOptions{Triangular: true, Banded: true, Band: 2}
	bad.Epilogue = EpilogueSplit
	if err := Stream(g, bad, sink); err == nil {
		t.Fatal("banded with the split epilogue accepted")
	}
	if err := StreamSource(sliceBacked(t, g), StreamOptions{Banded: true, Band: 2}, sink); err == nil {
		t.Fatal("out-of-core banded without Triangular accepted")
	}
}
