package core

import (
	"fmt"

	"ldgemm/internal/bitmat"
)

// Higher-order LD (the specialized use case of Section VIII, after
// Slatkin 2008): the three-locus disequilibrium coefficient measures
// allelic association beyond what the three pairwise coefficients explain.
// Using Bennett's decomposition,
//
//	D_ijk = P(ABC) − pᵢ·D_jk − pⱼ·D_ik − p_k·D_ij − pᵢ·pⱼ·p_k
//
// where P(ABC) is the triple haplotype frequency. The bit-parallel kernel
// extends directly: POPCNT(sᵢ & sⱼ & s_k), two ANDs and one POPCNT per
// word, with the middle term's AND shared across the k loop.

// Triple holds the statistics of one SNP triple.
type Triple struct {
	I, J, K int
	// PABC is the triple haplotype frequency.
	PABC float64
	// D3 is the three-locus disequilibrium coefficient.
	D3 float64
}

// TripleLD computes the three-locus disequilibrium for one SNP triple.
func TripleLD(g *bitmat.Matrix, i, j, k int) Triple {
	if g.Samples == 0 {
		return Triple{I: i, J: j, K: k}
	}
	si, sj, sk := g.SNP(i), g.SNP(j), g.SNP(k)
	var cIJ, cIK, cJK, cIJK uint32
	for w := range si {
		ij := si[w] & sj[w]
		cIJ += popc(ij)
		cIK += popc(si[w] & sk[w])
		cJK += popc(sj[w] & sk[w])
		cIJK += popc(ij & sk[w])
	}
	n := float64(g.Samples)
	pi, pj, pk := g.AlleleFrequency(i), g.AlleleFrequency(j), g.AlleleFrequency(k)
	dij := float64(cIJ)/n - pi*pj
	dik := float64(cIK)/n - pi*pk
	djk := float64(cJK)/n - pj*pk
	pabc := float64(cIJK) / n
	return Triple{
		I: i, J: j, K: k,
		PABC: pabc,
		D3:   pabc - pi*djk - pj*dik - pk*dij - pi*pj*pk,
	}
}

// TripleScanOptions configures a windowed third-order scan.
type TripleScanOptions struct {
	// MaxSpan restricts triples to k − i ≤ MaxSpan (default 20): the
	// O(n·MaxSpan²) windowed scan that makes third-order LD tractable.
	MaxSpan int
	// MinAbsD3 drops triples below this |D₃| from the result (default 0:
	// keep everything).
	MinAbsD3 float64
}

func (o TripleScanOptions) normalize() (TripleScanOptions, error) {
	if o.MaxSpan == 0 {
		o.MaxSpan = 20
	}
	if o.MaxSpan < 2 {
		return o, fmt.Errorf("core: invalid MaxSpan %d", o.MaxSpan)
	}
	if o.MinAbsD3 < 0 {
		return o, fmt.Errorf("core: negative MinAbsD3 %v", o.MinAbsD3)
	}
	return o, nil
}

// TripleScan computes D₃ for every triple i < j < k with k−i ≤ MaxSpan,
// returning those passing the magnitude filter in scan order. The shared
// sᵢ&sⱼ AND is hoisted out of the k loop, so each triple costs one AND and
// one POPCNT per word beyond its pair prefix — the same arithmetic the
// pairwise kernel uses, one order higher.
func TripleScan(g *bitmat.Matrix, opt TripleScanOptions) ([]Triple, error) {
	opt, err := opt.normalize()
	if err != nil {
		return nil, err
	}
	if g.Samples == 0 && g.SNPs > 0 {
		return nil, fmt.Errorf("core: triple scan with zero samples")
	}
	n := g.SNPs
	p := AlleleFrequencies(g)
	inv := 0.0
	if g.Samples > 0 {
		inv = 1 / float64(g.Samples)
	}
	ij := make([]uint64, g.Words)
	var out []Triple
	for i := 0; i < n; i++ {
		si := g.SNP(i)
		for j := i + 1; j < n && j-i < opt.MaxSpan; j++ {
			sj := g.SNP(j)
			var cIJ uint32
			for w := range ij {
				ij[w] = si[w] & sj[w]
				cIJ += popc(ij[w])
			}
			dij := float64(cIJ)*inv - p[i]*p[j]
			for k := j + 1; k <= i+opt.MaxSpan && k < n; k++ {
				sk := g.SNP(k)
				var cIK, cJK, cIJK uint32
				for w := range ij {
					cIK += popc(si[w] & sk[w])
					cJK += popc(sj[w] & sk[w])
					cIJK += popc(ij[w] & sk[w])
				}
				dik := float64(cIK)*inv - p[i]*p[k]
				djk := float64(cJK)*inv - p[j]*p[k]
				pabc := float64(cIJK) * inv
				d3 := pabc - p[i]*djk - p[j]*dik - p[k]*dij - p[i]*p[j]*p[k]
				if d3 >= opt.MinAbsD3 || -d3 >= opt.MinAbsD3 {
					out = append(out, Triple{I: i, J: j, K: k, PABC: pabc, D3: d3})
				}
			}
		}
	}
	return out, nil
}
