package core

import (
	"math/rand"
	"sort"
	"testing"

	"ldgemm/internal/bitmat"
)

func TestBootstrapPairBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randomMatrix(rng, 4, 400)
	r2, d, dp, err := BootstrapPair(g, 0, 1, BootstrapOptions{Seed: 2, Replicates: 400})
	if err != nil {
		t.Fatal(err)
	}
	for name, iv := range map[string]Interval{"r2": r2, "d": d, "dprime": dp} {
		if iv.Lo > iv.Hi {
			t.Fatalf("%s: inverted interval %+v", name, iv)
		}
	}
	// Intervals should (essentially always) cover their point estimate on
	// well-behaved data.
	if !r2.Contains(r2.Point) || !d.Contains(d.Point) {
		t.Fatalf("interval excludes point: r2 %+v d %+v", r2, d)
	}
	// r² interval stays in [0, 1].
	if r2.Lo < 0 || r2.Hi > 1 {
		t.Fatalf("r² interval out of range %+v", r2)
	}
}

func TestBootstrapPerfectLDIsTight(t *testing.T) {
	// Identical SNPs: every resample has r² = 1 → degenerate interval.
	g := bitmat.New(2, 100)
	for s := 0; s < 50; s++ {
		g.SetBit(0, s)
		g.SetBit(1, s)
	}
	r2, _, _, err := BootstrapPair(g, 0, 1, BootstrapOptions{Seed: 3, Replicates: 100})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Lo < 0.999 || r2.Hi > 1.0001 {
		t.Fatalf("perfect-LD interval %+v", r2)
	}
}

func TestBootstrapIntervalNarrowsWithSampleSize(t *testing.T) {
	width := func(samples int) float64 {
		g := bitmat.New(2, samples)
		// Moderate correlation: SNP1 copies SNP0 for 70% of samples.
		rng := rand.New(rand.NewSource(4))
		for s := 0; s < samples; s++ {
			a := rng.Intn(2) == 1
			b := a
			if rng.Float64() > 0.7 {
				b = rng.Intn(2) == 1
			}
			if a {
				g.SetBit(0, s)
			}
			if b {
				g.SetBit(1, s)
			}
		}
		r2, _, _, err := BootstrapPair(g, 0, 1, BootstrapOptions{Seed: 5, Replicates: 300})
		if err != nil {
			t.Fatal(err)
		}
		return r2.Hi - r2.Lo
	}
	small, large := width(60), width(2000)
	if large >= small {
		t.Fatalf("interval did not narrow: n=60 width %v, n=2000 width %v", small, large)
	}
}

func TestBootstrapValidation(t *testing.T) {
	g := bitmat.New(2, 50)
	if _, _, _, err := BootstrapPair(g, 0, 1, BootstrapOptions{Replicates: 3}); err == nil {
		t.Fatal("too few replicates accepted")
	}
	if _, _, _, err := BootstrapPair(g, 0, 1, BootstrapOptions{Confidence: 1.5}); err == nil {
		t.Fatal("confidence > 1 accepted")
	}
	if _, _, _, err := BootstrapPair(bitmat.New(2, 1), 0, 1, BootstrapOptions{}); err == nil {
		t.Fatal("single sample accepted")
	}
}

func TestPercentiles(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	lo, hi := percentiles(xs, 0, 1)
	if lo != 1 || hi != 5 {
		t.Fatalf("full-range percentiles %v %v", lo, hi)
	}
	if !sort.Float64sAreSorted(xs) {
		t.Fatal("percentiles did not sort")
	}
	lo, hi = percentiles(xs, 0.25, 0.75)
	if lo != 2 || hi != 4 {
		t.Fatalf("quartiles %v %v", lo, hi)
	}
}
