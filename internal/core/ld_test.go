package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/blis"
)

func randomMatrix(rng *rand.Rand, snps, samples int) *bitmat.Matrix {
	m := bitmat.New(snps, samples)
	for i := 0; i < snps; i++ {
		for s := 0; s < samples; s++ {
			if rng.Intn(2) == 1 {
				m.SetBit(i, s)
			}
		}
	}
	return m
}

// naivePair computes every statistic from per-sample loops: the oracle.
func naivePair(g *bitmat.Matrix, i, j int) Pair {
	var nAB, nA, nB int
	for s := 0; s < g.Samples; s++ {
		a, b := g.Bit(i, s), g.Bit(j, s)
		if a {
			nA++
		}
		if b {
			nB++
		}
		if a && b {
			nAB++
		}
	}
	n := float64(g.Samples)
	return PairFromFreqs(float64(nAB)/n, float64(nA)/n, float64(nB)/n)
}

func pairsAlmostEqual(a, b Pair) bool {
	const eps = 1e-12
	return math.Abs(a.PAB-b.PAB) < eps && math.Abs(a.PA-b.PA) < eps &&
		math.Abs(a.PB-b.PB) < eps && math.Abs(a.D-b.D) < eps &&
		math.Abs(a.R2-b.R2) < eps && math.Abs(a.DPrime-b.DPrime) < eps
}

func TestPairFromFreqsKnownValues(t *testing.T) {
	// Perfect association: P(A)=P(B)=P(AB)=0.5 → D=0.25, r²=1, D′=1.
	p := PairFromFreqs(0.5, 0.5, 0.5)
	if math.Abs(p.D-0.25) > 1e-15 || math.Abs(p.R2-1) > 1e-12 || math.Abs(p.DPrime-1) > 1e-12 {
		t.Fatalf("perfect association: %+v", p)
	}
	// Independence: P(AB) = P(A)P(B) → everything 0.
	p = PairFromFreqs(0.12, 0.4, 0.3)
	if math.Abs(p.D) > 1e-15 || p.R2 > 1e-12 || math.Abs(p.DPrime) > 1e-12 {
		t.Fatalf("independence: %+v", p)
	}
	// Complete repulsion: P(AB)=0, P(A)=P(B)=0.5 → D=−0.25, r²=1, D′=−1.
	p = PairFromFreqs(0, 0.5, 0.5)
	if math.Abs(p.D+0.25) > 1e-15 || math.Abs(p.R2-1) > 1e-12 || math.Abs(p.DPrime+1) > 1e-12 {
		t.Fatalf("repulsion: %+v", p)
	}
	// Monomorphic SNP → r² and D′ defined as 0.
	p = PairFromFreqs(0, 0, 0.5)
	if p.R2 != 0 || p.DPrime != 0 || p.D != 0 {
		t.Fatalf("monomorphic: %+v", p)
	}
}

func TestChi2(t *testing.T) {
	p := PairFromFreqs(0.5, 0.5, 0.5)
	if got := p.Chi2(100); math.Abs(got-100) > 1e-9 {
		t.Fatalf("Chi2 = %v, want 100", got)
	}
}

func TestPairLDMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randomMatrix(rng, 10, 137)
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			if got, want := PairLD(g, i, j), naivePair(g, i, j); !pairsAlmostEqual(got, want) {
				t.Fatalf("PairLD(%d,%d) = %+v, want %+v", i, j, got, want)
			}
		}
	}
}

func TestAlleleFrequencies(t *testing.T) {
	g := bitmat.New(3, 10)
	for s := 0; s < 5; s++ {
		g.SetBit(1, s)
	}
	for s := 0; s < 10; s++ {
		g.SetBit(2, s)
	}
	p := AlleleFrequencies(g)
	want := []float64{0, 0.5, 1}
	for i := range p {
		if p[i] != want[i] {
			t.Fatalf("p = %v, want %v", p, want)
		}
	}
}

func TestMatrixAgainstPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomMatrix(rng, 33, 211)
	res, err := Matrix(g, Options{
		Measures: MeasureD | MeasureR2 | MeasureDPrime | KeepCounts,
		Blis:     blis.Config{MC: 7, NC: 11, KC: 2, Threads: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 33; i++ {
		for j := 0; j < 33; j++ {
			want := naivePair(g, i, j)
			idx := i*33 + j
			if math.Abs(res.D[idx]-want.D) > 1e-12 ||
				math.Abs(res.R2[idx]-want.R2) > 1e-12 ||
				math.Abs(res.DPrime[idx]-want.DPrime) > 1e-12 {
				t.Fatalf("Matrix(%d,%d): D=%v r²=%v D′=%v, want %+v",
					i, j, res.D[idx], res.R2[idx], res.DPrime[idx], want)
			}
			if got := res.At(i, j); !pairsAlmostEqual(got, want) {
				t.Fatalf("At(%d,%d) = %+v, want %+v", i, j, got, want)
			}
		}
	}
}

func TestMatrixSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomMatrix(rng, 20, 64)
	res, err := Matrix(g, Options{Measures: MeasureR2 | MeasureD})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			if res.R2[i*20+j] != res.R2[j*20+i] {
				t.Fatalf("r² not symmetric at (%d,%d)", i, j)
			}
			if res.D[i*20+j] != res.D[j*20+i] {
				t.Fatalf("D not symmetric at (%d,%d)", i, j)
			}
		}
	}
	// Diagonal: r² of a polymorphic SNP with itself is 1.
	for i := 0; i < 20; i++ {
		c := g.DerivedCount(i)
		if c == 0 || c == g.Samples {
			continue
		}
		if math.Abs(res.R2[i*20+i]-1) > 1e-12 {
			t.Fatalf("diag r²[%d] = %v", i, res.R2[i*20+i])
		}
	}
}

func TestMatrixDefaultMeasure(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := randomMatrix(rng, 5, 50)
	res, err := Matrix(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.R2 == nil || res.D != nil || res.DPrime != nil || res.Counts != nil {
		t.Fatal("default measures should materialize exactly r²")
	}
}

func TestMatrixZeroSamples(t *testing.T) {
	if _, err := Matrix(bitmat.New(3, 0), Options{}); err == nil {
		t.Fatal("zero samples accepted")
	}
	res, err := Matrix(bitmat.New(0, 0), Options{})
	if err != nil || res.SNPs != 0 {
		t.Fatalf("empty matrix: %v %+v", err, res)
	}
}

func TestCrossAgainstPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomMatrix(rng, 12, 100)
	b := randomMatrix(rng, 9, 100)
	joined, err := a.Append(b)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Cross(a, b, Options{Measures: MeasureR2 | MeasureD | MeasureDPrime})
	if err != nil {
		t.Fatal(err)
	}
	if res.SNPs != 12 || res.Cols != 9 {
		t.Fatalf("dims %dx%d", res.SNPs, res.Cols)
	}
	for i := 0; i < 12; i++ {
		for j := 0; j < 9; j++ {
			want := naivePair(joined, i, 12+j)
			idx := i*9 + j
			if math.Abs(res.R2[idx]-want.R2) > 1e-12 || math.Abs(res.D[idx]-want.D) > 1e-12 {
				t.Fatalf("Cross(%d,%d) mismatch", i, j)
			}
		}
	}
}

func TestCrossErrors(t *testing.T) {
	if _, err := Cross(bitmat.New(2, 10), bitmat.New(2, 11), Options{}); err == nil {
		t.Fatal("sample mismatch accepted")
	}
	if _, err := Cross(bitmat.New(2, 0), bitmat.New(2, 0), Options{}); err == nil {
		t.Fatal("zero samples accepted")
	}
}

func TestStreamMatchesMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := randomMatrix(rng, 41, 300)
	res, err := Matrix(g, Options{Measures: MeasureR2})
	if err != nil {
		t.Fatal(err)
	}
	for _, triangular := range []bool{false, true} {
		seen := 0
		err = Stream(g, StreamOptions{StripeRows: 7, Triangular: triangular}, func(i, j0 int, row []float64) {
			for t2 := range row {
				j := j0 + t2
				if math.Abs(row[t2]-res.R2[i*41+j]) > 1e-12 {
					t.Fatalf("triangular=%v: stream (%d,%d) = %v, want %v",
						triangular, i, j, row[t2], res.R2[i*41+j])
				}
			}
			seen++
		})
		if err != nil {
			t.Fatal(err)
		}
		if seen != 41 {
			t.Fatalf("visited %d rows, want 41", seen)
		}
	}
}

func TestStreamMeasureSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomMatrix(rng, 10, 80)
	res, err := Matrix(g, Options{Measures: MeasureD | MeasureDPrime})
	if err != nil {
		t.Fatal(err)
	}
	err = Stream(g, StreamOptions{Options: Options{Measures: MeasureD}}, func(i, j0 int, row []float64) {
		for t2 := range row {
			if math.Abs(row[t2]-res.D[i*10+j0+t2]) > 1e-12 {
				t.Fatalf("MeasureD stream mismatch at (%d,%d)", i, j0+t2)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	err = Stream(g, StreamOptions{Options: Options{Measures: MeasureDPrime}}, func(i, j0 int, row []float64) {
		for t2 := range row {
			if math.Abs(row[t2]-res.DPrime[i*10+j0+t2]) > 1e-12 {
				t.Fatalf("MeasureDPrime stream mismatch at (%d,%d)", i, j0+t2)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSumR2(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := randomMatrix(rng, 25, 90)
	res, err := Matrix(g, Options{Measures: MeasureR2})
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	var wantPairs int64
	for i := 0; i < 25; i++ {
		for j := i; j < 25; j++ {
			want += res.R2[i*25+j]
			wantPairs++
		}
	}
	sum, pairs, err := SumR2(g, StreamOptions{StripeRows: 4})
	if err != nil {
		t.Fatal(err)
	}
	if pairs != wantPairs {
		t.Fatalf("pairs = %d, want %d", pairs, wantPairs)
	}
	if math.Abs(sum-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", sum, want)
	}
}

func TestStreamInvalidStripe(t *testing.T) {
	g := bitmat.New(2, 10)
	if err := Stream(g, StreamOptions{StripeRows: -1}, func(int, int, []float64) {}); err == nil {
		t.Fatal("negative stripe accepted")
	}
}

// Property: for random matrices, Matrix agrees with the per-sample naive
// oracle on every statistic.
func TestQuickMatrix(t *testing.T) {
	f := func(seed int64, n8, s8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(n8%15) + 2
		samples := int(s8%120) + 1
		g := randomMatrix(rng, n, samples)
		res, err := Matrix(g, Options{Measures: MeasureD | MeasureR2 | MeasureDPrime})
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := naivePair(g, i, j)
				idx := i*n + j
				if math.Abs(res.D[idx]-want.D) > 1e-12 ||
					math.Abs(res.R2[idx]-want.R2) > 1e-12 ||
					math.Abs(res.DPrime[idx]-want.DPrime) > 1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: r² ∈ [0,1] and |D′| ≤ 1 and |D| ≤ 0.25 for any frequencies
// derived from actual counts.
func TestQuickRanges(t *testing.T) {
	f := func(nAB8, nA8, nB8, n8 uint8) bool {
		n := int(n8%200) + 2
		nA := int(nA8) % (n + 1)
		nB := int(nB8) % (n + 1)
		// P(AB) constrained to the Fréchet bounds so the triple is feasible.
		lo := max(0, nA+nB-n)
		hi := min(nA, nB)
		nAB := lo + int(nAB8)%(hi-lo+1)
		p := PairFromFreqs(float64(nAB)/float64(n), float64(nA)/float64(n), float64(nB)/float64(n))
		return p.R2 >= 0 && p.R2 <= 1+1e-9 &&
			p.DPrime >= -1 && p.DPrime <= 1 &&
			math.Abs(p.D) <= 0.25+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
