package core

import (
	"fmt"

	"ldgemm/internal/bitmat"
)

// Unphased diploid genotypes do not reveal haplotype phase: a sample that
// is heterozygous at both SNPs may carry AB/ab or Ab/aB. PLINK resolves
// this with Hill's (1974) EM algorithm, estimating the haplotype
// frequency P(AB) by maximum likelihood from the 3×3 joint genotype
// table. This file implements that estimator so genotype data (.bed/.vcf
// unphased) gets true haplotype-frequency LD rather than the genotype
// correlation of the PLINK-like baseline.

// GenoTable is the 3×3 joint genotype count table: Counts[a][b] is the
// number of samples with dosage a at the first SNP and b at the second.
type GenoTable struct {
	Counts [3][3]int
}

// Total returns the number of samples in the table.
func (t *GenoTable) Total() int {
	n := 0
	for a := 0; a < 3; a++ {
		for b := 0; b < 3; b++ {
			n += t.Counts[a][b]
		}
	}
	return n
}

// PairGenoTable builds the joint table for variants i and j, skipping
// samples with a missing genotype at either.
func PairGenoTable(g *bitmat.GenotypeMatrix, i, j int) GenoTable {
	var t GenoTable
	for s := 0; s < g.Samples; s++ {
		da, oka := bitmat.DosageOf(g.Get(i, s))
		db, okb := bitmat.DosageOf(g.Get(j, s))
		if oka && okb {
			t.Counts[da][db]++
		}
	}
	return t
}

// emMaxIter and emTol bound the EM iteration.
const (
	emMaxIter = 200
	emTol     = 1e-12
)

// EMHaplotypeFreqs estimates the four haplotype frequencies (pAB, pAb,
// paB, pab) from an unphased genotype table by EM. Every genotype cell
// determines its two haplotypes uniquely except the double heterozygote,
// whose mass is split between AB/ab and Ab/aB in proportion to the
// current frequency estimates each E-step.
func EMHaplotypeFreqs(t GenoTable) (pAB, pAb, paB, pab float64, err error) {
	n := t.Total()
	if n == 0 {
		return 0, 0, 0, 0, fmt.Errorf("core: EM on empty genotype table")
	}
	// Haplotype counts determined without phase ambiguity. Sample with
	// dosages (a, b) carries, per chromosome pair: the double het (1,1)
	// is ambiguous; everything else is fixed.
	// Fixed contributions (counting haplotypes, 2 per sample):
	fixedAB := float64(2*t.Counts[2][2] + t.Counts[2][1] + t.Counts[1][2])
	fixedAb := float64(2*t.Counts[2][0] + t.Counts[2][1] + t.Counts[1][0])
	fixedaB := float64(2*t.Counts[0][2] + t.Counts[0][1] + t.Counts[1][2])
	fixedab := float64(2*t.Counts[0][0] + t.Counts[0][1] + t.Counts[1][0])
	dh := float64(t.Counts[1][1]) // double heterozygotes
	tot := float64(2 * n)

	// Initialize assuming linkage equilibrium.
	pA := (fixedAB + fixedAb + dh) / tot
	pB := (fixedAB + fixedaB + dh) / tot
	pAB = pA * pB
	pAb = pA * (1 - pB)
	paB = (1 - pA) * pB
	pab = (1 - pA) * (1 - pB)

	for iter := 0; iter < emMaxIter; iter++ {
		// E-step: split double heterozygotes between the two phasings.
		cis := pAB * pab // AB/ab configuration weight
		trans := pAb * paB
		fCis := 0.5
		if cis+trans > 0 {
			fCis = cis / (cis + trans)
		}
		nAB := fixedAB + dh*fCis
		nab := fixedab + dh*fCis
		nAb := fixedAb + dh*(1-fCis)
		naB := fixedaB + dh*(1-fCis)
		// M-step.
		newAB, newAb, newaB, newab := nAB/tot, nAb/tot, naB/tot, nab/tot
		delta := abs64(newAB-pAB) + abs64(newAb-pAb) + abs64(newaB-paB) + abs64(newab-pab)
		pAB, pAb, paB, pab = newAB, newAb, newaB, newab
		if delta < emTol {
			break
		}
	}
	return pAB, pAb, paB, pab, nil
}

func abs64(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// EMPairLD estimates haplotype-frequency LD between two unphased diploid
// variants: EM recovers P(AB), and the usual D/r²/D′ statistics follow.
func EMPairLD(g *bitmat.GenotypeMatrix, i, j int) (Pair, error) {
	t := PairGenoTable(g, i, j)
	pAB, pAb, paB, _, err := EMHaplotypeFreqs(t)
	if err != nil {
		return Pair{}, err
	}
	pa := pAB + pAb
	pb := pAB + paB
	return PairFromFreqs(pAB, pa, pb), nil
}

// EMMatrix estimates the haplotype r² matrix of an unphased genotype
// matrix, both triangles filled. Cost is O(n²·samples/32) through the
// packed PairCounts tables plus the per-pair EM iterations; for phased
// data use the bit-matrix path instead.
func EMMatrix(g *bitmat.GenotypeMatrix) ([]float64, error) {
	n := g.SNPs
	out := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			p, err := EMPairLD(g, i, j)
			if err != nil {
				return nil, err
			}
			out[i*n+j] = p.R2
			out[j*n+i] = p.R2
		}
	}
	return out, nil
}
