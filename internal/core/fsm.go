package core

import (
	"fmt"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/blis"
)

// NumStates is the number of nucleotide states under the finite sites
// model (Section VII, "Facilitating finite sites models").
const NumStates = 4

// StateNames maps FSM plane indices to nucleotides.
var StateNames = [NumStates]byte{'A', 'C', 'G', 'T'}

// FSMMatrix is a finite-sites-model SNP matrix: one bit-plane per
// nucleotide state. Plane s has bit (i, sample) set when the sample
// carries state s at SNP i. A sample with no plane set at a SNP is a gap
// or ambiguous character; a sample must never have more than one plane set
// (Validate checks both invariants' complement: exactly-one-or-zero).
type FSMMatrix struct {
	SNPs    int
	Samples int
	Planes  [NumStates]*bitmat.Matrix
}

// NewFSMMatrix returns an FSM matrix with no states assigned (all gaps).
func NewFSMMatrix(snps, samples int) *FSMMatrix {
	f := &FSMMatrix{SNPs: snps, Samples: samples}
	for s := range f.Planes {
		f.Planes[s] = bitmat.New(snps, samples)
	}
	return f
}

// SetState assigns nucleotide state st (0..3) to sample at SNP i,
// clearing any previously assigned state.
func (f *FSMMatrix) SetState(snp, sample, st int) {
	for s := range f.Planes {
		if s == st {
			f.Planes[s].SetBit(snp, sample)
		} else {
			f.Planes[s].ClearBit(snp, sample)
		}
	}
}

// ClearState marks (snp, sample) as a gap/ambiguous position.
func (f *FSMMatrix) ClearState(snp, sample int) {
	for s := range f.Planes {
		f.Planes[s].ClearBit(snp, sample)
	}
}

// State returns the assigned state at (snp, sample) and whether one is set.
func (f *FSMMatrix) State(snp, sample int) (int, bool) {
	for s := range f.Planes {
		if f.Planes[s].Bit(snp, sample) {
			return s, true
		}
	}
	return 0, false
}

// FromDNA builds an FSM matrix from SNP-major nucleotide columns
// (characters ACGT, case-insensitive; anything else, e.g. '-' or 'N',
// becomes a gap/ambiguous position).
func FromDNA(cols [][]byte) (*FSMMatrix, error) {
	if len(cols) == 0 {
		return NewFSMMatrix(0, 0), nil
	}
	samples := len(cols[0])
	f := NewFSMMatrix(len(cols), samples)
	for i, c := range cols {
		if len(c) != samples {
			return nil, fmt.Errorf("core: FromDNA: column %d has %d entries, want %d", i, len(c), samples)
		}
		for s, ch := range c {
			switch ch {
			case 'A', 'a':
				f.Planes[0].SetBit(i, s)
			case 'C', 'c':
				f.Planes[1].SetBit(i, s)
			case 'G', 'g':
				f.Planes[2].SetBit(i, s)
			case 'T', 't':
				f.Planes[3].SetBit(i, s)
			}
		}
	}
	return f, nil
}

// Validate checks the at-most-one-state-per-position invariant.
func (f *FSMMatrix) Validate() error {
	for i := 0; i < f.SNPs; i++ {
		words := make([][]uint64, NumStates)
		for s := range words {
			words[s] = f.Planes[s].SNP(i)
		}
		for w := range words[0] {
			overlap := words[0][w]&words[1][w] | words[0][w]&words[2][w] |
				words[0][w]&words[3][w] | words[1][w]&words[2][w] |
				words[1][w]&words[3][w] | words[2][w]&words[3][w]
			if overlap != 0 {
				return fmt.Errorf("core: FSM SNP %d word %d has samples with multiple states", i, w)
			}
		}
	}
	return nil
}

// ValidMask returns the per-SNP validity mask: the OR of the four planes.
func (f *FSMMatrix) ValidMask() *bitmat.Mask {
	k := bitmat.NewMask(f.SNPs, f.Samples)
	for w := range k.Data {
		k.Data[w] = f.Planes[0].Data[w] | f.Planes[1].Data[w] |
			f.Planes[2].Data[w] | f.Planes[3].Data[w]
	}
	return k
}

// StateCounts returns the number of samples carrying each state at SNP i,
// and the number of distinct observed states vᵢ.
func (f *FSMMatrix) StateCounts(i int) (counts [NumStates]int, v int) {
	for s := range f.Planes {
		counts[s] = f.Planes[s].DerivedCount(i)
		if counts[s] > 0 {
			v++
		}
	}
	return counts, v
}

// FSMResult holds the multi-allelic LD outputs: Zaykin's T statistic
// (Eq. 6) and the underlying Σ r² per pair.
type FSMResult struct {
	SNPs    int
	Samples int
	// T is the coefficient-based statistic T_ij of Eq. 6, row-major,
	// both triangles filled.
	T []float64
	// SumR2 is Σ_{sᵢ,sⱼ∈S} r²(sᵢ,sⱼ) per pair.
	SumR2 []float64
	// States is vᵢ, the number of observed states per SNP.
	States []int
}

// FSMLD computes multi-allelic LD between all SNP pairs under the finite
// sites model. Per Section VII it is the 16-GEMM generalization of the ISM
// kernel: one blocked GEMM per ordered pair of nucleotide planes, plus one
// masked pass for the per-pair valid counts v_ij. Following Zaykin et al.
// (2008) as cited by the paper:
//
//	T_ij = ((vᵢ−1)(vⱼ−1)·v_ij)/(vᵢ·vⱼ) · Σ_{sᵢ,sⱼ} r²(sᵢ,sⱼ)
//
// where r²(a,b) is Eq. 2 applied to the state-pair frequencies over the
// jointly valid samples.
func FSMLD(f *FSMMatrix, opt Options) (*FSMResult, error) {
	n := f.SNPs
	res := &FSMResult{
		SNPs: n, Samples: f.Samples,
		T:     make([]float64, n*n),
		SumR2: make([]float64, n*n),
		States: func() []int {
			v := make([]int, n)
			for i := range v {
				_, v[i] = f.StateCounts(i)
			}
			return v
		}(),
	}
	if n == 0 {
		return res, nil
	}

	// Per-pair valid counts v_ij = popcount(validᵢ & validⱼ): one GEMM on
	// the validity planes.
	valid := f.ValidMask()
	vij := make([]uint32, n*n)
	if err := blis.Syrk(opt.blisCfg(), &valid.Matrix, vij, n, true); err != nil {
		return nil, err
	}

	// Per-pair, per-state-pair joint counts: 16 GEMMs. Marginal counts of
	// state a at SNP i *restricted to samples valid at SNP j* are needed
	// for correct per-pair frequencies; they equal the joint counts summed
	// over the partner's states, so no extra GEMMs are required.
	joint := make([][]uint32, NumStates*NumStates)
	for a := 0; a < NumStates; a++ {
		for b := 0; b < NumStates; b++ {
			c := make([]uint32, n*n)
			if err := blis.Gemm(opt.blisCfg(), f.Planes[a], f.Planes[b], c, n); err != nil {
				return nil, err
			}
			joint[a*NumStates+b] = c
		}
	}

	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			idx := i*n + j
			nv := float64(vij[idx])
			if nv == 0 {
				continue
			}
			var margI, margJ [NumStates]float64
			for a := 0; a < NumStates; a++ {
				for b := 0; b < NumStates; b++ {
					jc := float64(joint[a*NumStates+b][idx])
					margI[a] += jc
					margJ[b] += jc
				}
			}
			var sum float64
			for a := 0; a < NumStates; a++ {
				pa := margI[a] / nv
				if pa <= 0 || pa >= 1 {
					continue
				}
				for b := 0; b < NumStates; b++ {
					pb := margJ[b] / nv
					if pb <= 0 || pb >= 1 {
						continue
					}
					pab := float64(joint[a*NumStates+b][idx]) / nv
					d := pab - pa*pb
					sum += d * d / (pa * (1 - pa) * pb * (1 - pb))
				}
			}
			res.SumR2[idx] = sum
			vi, vj := float64(res.States[i]), float64(res.States[j])
			if vi > 0 && vj > 0 {
				res.T[idx] = (vi - 1) * (vj - 1) * nv / (vi * vj) * sum
			}
			res.SumR2[j*n+i] = res.SumR2[idx]
			res.T[j*n+i] = res.T[idx]
		}
	}
	return res, nil
}
