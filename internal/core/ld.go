// Package core implements the paper's primary contribution: linkage-
// disequilibrium computation cast as dense linear algebra (Section II).
//
// Given a genomic matrix G whose columns are bit-packed SNPs, the package
// computes
//
//	H = (1/Nseq) · GᵀG   (haplotype frequencies, Eq. 4 — a rank-k GEMM)
//	D = H − p pᵀ         (Eq. 1/5, with p the allele-frequency vector)
//	r² = D² / (pᵢ(1−pᵢ) pⱼ(1−pⱼ))   (Eq. 2)
//
// plus Lewontin's D′ normalization, χ² significance, gap-masked variants
// (Section VII), and finite-sites-model LD with Zaykin's T statistic. The
// O(n³) count matrix is produced by the BLIS-style blocked driver in
// internal/blis; everything else is the O(n²) epilogue.
package core

import (
	"context"
	"fmt"
	"math"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/blis"
)

// Measure selects which LD statistics to materialize.
type Measure uint

const (
	// MeasureD requests the raw disequilibrium coefficient D (Eq. 1).
	MeasureD Measure = 1 << iota
	// MeasureR2 requests the squared Pearson coefficient r² (Eq. 2).
	MeasureR2
	// MeasureDPrime requests Lewontin's normalized D′.
	MeasureDPrime
	// KeepCounts retains the raw haplotype count matrix in the result.
	KeepCounts
)

// Options configures an LD computation.
type Options struct {
	// Measures selects the statistics to compute; MeasureR2 if zero.
	Measures Measure
	// Blis carries blocking parameters and thread count for the GEMM.
	Blis blis.Config
	// Epilogue selects how counts become measures: fused into the blocked
	// driver (per-tile, parallel, no dense count matrix — the default) or
	// the legacy split sweep over a materialized count matrix. KeepCounts
	// always runs split, since its contract is the dense counts.
	Epilogue EpilogueMode
	// FastR2 computes r² with precomputed 1/(p(1−p)) reciprocal tables —
	// multiplies instead of divides — which can differ from the exact
	// PairFromFreqs quotient in the last ulp. Off by default so dense
	// results stay bit-identical to PairFromFreqs (the contract the
	// tile store and golden tests rely on). Only the fused epilogue
	// honors it; the split sweep always computes the exact quotient.
	FastR2 bool
	// Ctx, when non-nil, cancels an in-flight computation cooperatively:
	// the blocked driver observes it at phase and slab-group boundaries
	// and the computation returns Ctx.Err(). Serving paths set it to the
	// request context so abandoned requests stop burning workers.
	Ctx context.Context
}

func (o Options) measures() Measure {
	if o.Measures&(MeasureD|MeasureR2|MeasureDPrime) == 0 {
		return o.Measures | MeasureR2
	}
	return o.Measures
}

// blisCfg returns the kernel configuration with the computation's context
// folded in (an explicit Blis.Ctx wins over Options.Ctx).
func (o Options) blisCfg() blis.Config {
	cfg := o.Blis
	if cfg.Ctx == nil {
		cfg.Ctx = o.Ctx
	}
	return cfg
}

// Pair holds every per-pair LD quantity for one SNP pair.
type Pair struct {
	PAB    float64 // haplotype frequency P(AB)
	PA     float64 // allele frequency of the first SNP
	PB     float64 // allele frequency of the second SNP
	D      float64 // P(AB) − P(A)P(B)
	R2     float64 // Eq. 2; 0 when either SNP is monomorphic
	DPrime float64 // D / D_max; 0 when undefined
}

// PairFromFreqs assembles the LD statistics from the three frequencies.
func PairFromFreqs(pab, pa, pb float64) Pair {
	d := pab - pa*pb
	p := Pair{PAB: pab, PA: pa, PB: pb, D: d}
	// Grouping the variance factors per SNP keeps the result bit-symmetric
	// under pa↔pb (IEEE multiplication commutes), so mirrored matrix
	// entries and tile-store reads of (j, i) reproduce (i, j) exactly.
	den := (pa * (1 - pa)) * (pb * (1 - pb))
	if den > 0 {
		p.R2 = d * d / den
	}
	var dmax float64
	if d >= 0 {
		dmax = math.Min(pa*(1-pb), pb*(1-pa))
	} else {
		dmax = math.Min(pa*pb, (1-pa)*(1-pb))
	}
	if dmax > 0 {
		// Signed convention: D′ keeps the sign of D, |D′| ≤ 1.
		p.DPrime = math.Max(-1, math.Min(1, d/dmax))
	}
	return p
}

// Chi2 returns the χ² statistic for the null hypothesis of linkage
// equilibrium: χ² = Nseq · r² (1 degree of freedom for biallelic SNPs).
func (p Pair) Chi2(nseq int) float64 { return float64(nseq) * p.R2 }

// AlleleFrequencies returns the per-SNP derived-allele frequency vector p
// of Eq. 3: pᵢ = (sᵢᵀsᵢ)/Nseq.
func AlleleFrequencies(g *bitmat.Matrix) []float64 {
	p := make([]float64, g.SNPs)
	for i := range p {
		p[i] = g.AlleleFrequency(i)
	}
	return p
}

// PairLD computes the LD statistics between SNPs i and j of g directly
// (one dot product), bypassing the blocked driver. It is the per-pair
// convenience entry and the oracle used in tests.
func PairLD(g *bitmat.Matrix, i, j int) Pair {
	if g.Samples == 0 {
		return Pair{}
	}
	si, sj := g.SNP(i), g.SNP(j)
	var cnt uint32
	for w := range si {
		cnt += popc(si[w] & sj[w])
	}
	n := float64(g.Samples)
	return PairFromFreqs(float64(cnt)/n, g.AlleleFrequency(i), g.AlleleFrequency(j))
}

// Result is a materialized all-pairs LD matrix. For the symmetric case
// (Matrix) every requested statistic is a full SNPs×Cols dense row-major
// matrix with both triangles filled; for Cross the rows index the first
// input and the columns the second.
type Result struct {
	SNPs    int // rows
	Cols    int // columns
	Samples int
	// RowFreqs and ColFreqs are the allele-frequency vectors of the row
	// and column SNPs (aliases of each other for the symmetric case).
	RowFreqs []float64
	ColFreqs []float64
	// Counts is the raw haplotype count matrix (present with KeepCounts).
	Counts []uint32
	// D, R2, DPrime are present when the corresponding Measure was set.
	D      []float64
	R2     []float64
	DPrime []float64
}

// At returns the full per-pair statistics for entry (i, j), recomputed
// from counts when retained, or from whichever dense matrices exist.
func (r *Result) At(i, j int) Pair {
	idx := i*r.Cols + j
	pa, pb := r.RowFreqs[i], r.ColFreqs[j]
	if r.Counts != nil {
		return PairFromFreqs(float64(r.Counts[idx])/float64(r.Samples), pa, pb)
	}
	var p Pair
	p.PA, p.PB = pa, pb
	if r.D != nil {
		p.D = r.D[idx]
		p.PAB = p.D + pa*pb
	}
	if r.R2 != nil {
		p.R2 = r.R2[idx]
	}
	if r.DPrime != nil {
		p.DPrime = r.DPrime[idx]
	}
	return p
}

// Matrix computes all-pairs LD within one genomic matrix: the H = GᵀG/Nseq
// rank-k update of Section III-B via the blocked symmetric driver, plus the
// O(n²) D/r²/D′ epilogue — fused into the driver's tile sweep by default
// (Options.Epilogue), as a separate serial pass when split or when
// KeepCounts needs the dense counts. Both triangles of each output are
// filled; fused and split produce bit-identical measures.
func Matrix(g *bitmat.Matrix, opt Options) (*Result, error) {
	if g.Samples == 0 && g.SNPs > 0 {
		return nil, fmt.Errorf("core: LD of %d SNPs with zero samples", g.SNPs)
	}
	n := g.SNPs
	p := AlleleFrequencies(g)
	res := &Result{SNPs: n, Cols: n, Samples: g.Samples, RowFreqs: p, ColFreqs: p}
	if opt.fused() {
		e := newDenseEpilogue(res, opt, true)
		if err := blis.SyrkEpilogue(opt.blisCfg(), g, e.tile); err != nil {
			return nil, err
		}
		return res, nil
	}
	counts := make([]uint32, n*n)
	if err := blis.Syrk(opt.blisCfg(), g, counts, n, true); err != nil {
		return nil, err
	}
	fillMeasures(res, counts, opt)
	return res, nil
}

// Cross computes LD between every SNP of a and every SNP of b — the
// two-matrix workload of Figure 4 used for long-range LD and association
// between distant genes. All m×n outputs are computed.
func Cross(a, b *bitmat.Matrix, opt Options) (*Result, error) {
	if a.Samples != b.Samples {
		return nil, fmt.Errorf("core: sample mismatch %d vs %d", a.Samples, b.Samples)
	}
	if a.Samples == 0 && a.SNPs > 0 && b.SNPs > 0 {
		return nil, fmt.Errorf("core: cross LD with zero samples")
	}
	m, n := a.SNPs, b.SNPs
	res := &Result{
		SNPs: m, Cols: n, Samples: a.Samples,
		RowFreqs: AlleleFrequencies(a), ColFreqs: AlleleFrequencies(b),
	}
	if opt.fused() {
		e := newDenseEpilogue(res, opt, false)
		if err := blis.GemmEpilogue(opt.blisCfg(), a, b, e.tile); err != nil {
			return nil, err
		}
		return res, nil
	}
	counts := make([]uint32, m*n)
	if err := blis.Gemm(opt.blisCfg(), a, b, counts, n); err != nil {
		return nil, err
	}
	fillMeasures(res, counts, opt)
	return res, nil
}

// fillMeasures runs the O(n²) epilogue converting haplotype counts into the
// requested statistics.
func fillMeasures(res *Result, counts []uint32, opt Options) {
	meas := opt.measures()
	m, n := res.SNPs, res.Cols
	inv := 0.0
	if res.Samples > 0 {
		inv = 1 / float64(res.Samples)
	}
	if meas&MeasureD != 0 {
		res.D = make([]float64, m*n)
	}
	if meas&MeasureR2 != 0 {
		res.R2 = make([]float64, m*n)
	}
	if meas&MeasureDPrime != 0 {
		res.DPrime = make([]float64, m*n)
	}
	for i := 0; i < m; i++ {
		pa := res.RowFreqs[i]
		row := counts[i*n : (i+1)*n]
		for j, c := range row {
			p := PairFromFreqs(float64(c)*inv, pa, res.ColFreqs[j])
			idx := i*n + j
			if res.D != nil {
				res.D[idx] = p.D
			}
			if res.R2 != nil {
				res.R2[idx] = p.R2
			}
			if res.DPrime != nil {
				res.DPrime[idx] = p.DPrime
			}
		}
	}
	if meas&KeepCounts != 0 {
		res.Counts = counts
	}
}
