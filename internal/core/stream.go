package core

import (
	"fmt"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/blis"
)

// StreamOptions configures a striped streaming LD scan.
type StreamOptions struct {
	Options
	// StripeRows is the number of SNP rows materialized at a time
	// (default 512). Peak memory is StripeRows × SNPs × 4 bytes for the
	// counts plus one float64 row.
	StripeRows int
	// Triangular restricts the scan to the upper triangle exactly: each
	// stripe runs a symmetric rank-k update on its diagonal block plus a
	// GEMM on its off-diagonal rectangle, so both the count work and the
	// epilogue touch precisely the N(N+1)/2 pairs of the paper's
	// Tables I–III.
	Triangular bool
	// Exact routes every statistic through PairFromFreqs — the same
	// operation sequence as the dense Matrix epilogue — so streamed
	// values are bit-identical to Matrix's outputs. The default r² path
	// multiplies precomputed variance reciprocals instead of dividing,
	// which is faster but can differ from the dense epilogue in the last
	// ulp. The ldstore Builder sets Exact so precomputed tiles serve
	// byte-identical answers to the on-the-fly compute paths.
	Exact bool
	// RowStart/RowEnd restrict the scan to rows [RowStart, RowEnd): only
	// those rows are visited (in triangular mode each still spans columns
	// j ≥ i up to n). Both zero means the full range. Per-row values are
	// bit-identical to a full scan's — a cluster shard streaming only its
	// owned row strip reproduces exactly the rows a single node computes.
	RowStart, RowEnd int
	// IOPanelSNPs is the column-panel width (in SNPs) of the out-of-core
	// scheduler's B-side fetches (default 1024). Only StreamSource reads
	// it; resident scans pass whole slices to the driver. Values are
	// bit-independent of the panel width — every output cell's count is a
	// full-K dot product no matter how the columns are paneled.
	IOPanelSNPs int
	// Banded restricts the scan to pairs with |i−j| ≤ Band by capping each
	// stripe's off-diagonal work at the band edge: far-off-diagonal column
	// panels are never scheduled, fetched, or multiplied, and delivered
	// rows stop at column min(n−1, i+Band). Band = 0 is legal (diagonal
	// only), which is why the mode has its own flag. Every in-band value
	// is still a full-K dot product through the identical epilogue, so
	// in-band results are bit-identical to an unbanded scan's, and
	// Band ≥ n−1 degenerates to exactly the unbanded schedule. Requires
	// Triangular and the fused epilogue. Skipped work is recorded on
	// blis.DriverStats.BandPanelsSkipped/BandCellsSkipped.
	Banded bool
	Band   int
}

// ioPanel resolves the I/O column-panel width.
func (o StreamOptions) ioPanel() int {
	if o.IOPanelSNPs > 0 {
		return o.IOPanelSNPs
	}
	return 1024
}

// checkBanded validates a banded configuration against the scan mode.
func (o StreamOptions) checkBanded() error {
	if !o.Banded {
		return nil
	}
	if o.Band < 0 {
		return fmt.Errorf("core: invalid band width %d", o.Band)
	}
	if !o.Triangular {
		return fmt.Errorf("core: banded streaming requires Triangular")
	}
	if !o.fused() {
		return fmt.Errorf("core: banded streaming requires the fused epilogue (no KeepCounts, no EpilogueSplit)")
	}
	return nil
}

// rowEndCol returns the exclusive end column of row gi's delivered slice.
func (o StreamOptions) rowEndCol(gi, n int) int {
	if !o.Banded {
		return n
	}
	return min(n, gi+o.Band+1)
}

// stripeColEnd returns the exclusive end column of a stripe's off-diagonal
// block: unbanded stripes span to n, banded ones stop where the stripe's
// last row leaves the band.
func (o StreamOptions) stripeColEnd(i0, rows, n int) int {
	if !o.Banded {
		return n
	}
	return min(n, i0+rows+o.Band)
}

// rowWindow resolves the [RowStart, RowEnd) window against n rows.
func (o StreamOptions) rowWindow(n int) (lo, hi int, err error) {
	if o.RowStart == 0 && o.RowEnd == 0 {
		return 0, n, nil
	}
	if o.RowStart < 0 || o.RowEnd <= o.RowStart || o.RowEnd > n {
		return 0, 0, fmt.Errorf("core: invalid row window [%d,%d) of %d rows", o.RowStart, o.RowEnd, n)
	}
	return o.RowStart, o.RowEnd, nil
}

// Stream computes all-pairs LD for matrices too large to materialize n²
// float64 outputs: it runs the blocked GEMM stripe by stripe and hands
// each finished row to visit as (i, j0, row) where row[t] is the statistic
// for the pair (i, j0+t). In full mode j0 is always 0; in triangular mode
// j0 == i (each row starts at its own diagonal). The row slice is reused
// across calls; callers must not retain it.
//
// The statistic delivered is r² unless Options.Measures selects exactly
// MeasureD or MeasureDPrime.
func Stream(g *bitmat.Matrix, opt StreamOptions, visit func(i, j0 int, row []float64)) error {
	if g.Samples == 0 && g.SNPs > 0 {
		return fmt.Errorf("core: streaming LD with zero samples")
	}
	stripe := opt.StripeRows
	if stripe == 0 {
		stripe = 512
	}
	if stripe < 1 {
		return fmt.Errorf("core: invalid StripeRows %d", stripe)
	}
	n := g.SNPs
	lo, hi, err := opt.rowWindow(n)
	if err != nil {
		return err
	}
	if err := opt.checkBanded(); err != nil {
		return err
	}
	p := AlleleFrequencies(g)
	meas := opt.measures()
	r2Only := meas&MeasureR2 != 0 && !opt.Exact
	if opt.fused() {
		return streamFused(g, opt, p, stripe, visit)
	}
	counts := make([]uint32, min(stripe, max(n, 1))*n)
	row := make([]float64, n)
	inv := 0.0
	if g.Samples > 0 {
		inv = 1 / float64(g.Samples)
	}
	// Fast r² epilogue: precompute the per-SNP variance reciprocals so the
	// O(n²) loop is five multiplies per pair with no branches on the hot
	// path (monomorphic SNPs get a zero factor, which zeroes their r²).
	var invVar []float64
	if r2Only {
		invVar = make([]float64, n)
		for i, pi := range p {
			if v := pi * (1 - pi); v > 0 {
				invVar[i] = 1 / v
			}
		}
	}
	for i0 := lo; i0 < hi; i0 += stripe {
		rows := min(stripe, hi-i0)
		sub := g.Slice(i0, i0+rows)
		base := 0
		width := n
		c := counts[:rows*width]
		if opt.Triangular {
			base = i0
			width = n - i0
			c = counts[:rows*width]
			clear(c)
			// Diagonal block: symmetric rank-k update, upper triangle only.
			if err := blis.Syrk(opt.blisCfg(), sub, c, width, false); err != nil {
				return err
			}
			// Off-diagonal rectangle against the remaining columns,
			// written at column offset `rows` within the stripe block.
			if i0+rows < n {
				rest := g.Slice(i0+rows, n)
				if err := blis.Gemm(opt.blisCfg(), sub, rest, counts[rows:], width); err != nil {
					return err
				}
			}
		} else {
			clear(c)
			if err := blis.Gemm(opt.blisCfg(), sub, g, c, width); err != nil {
				return err
			}
		}
		for i := 0; i < rows; i++ {
			gi := i0 + i
			j0 := base
			off := 0
			if opt.Triangular {
				j0 = gi
				off = gi - i0
			}
			pa := p[gi]
			src := c[i*width+off : (i+1)*width]
			dst := row[:len(src)]
			if r2Only {
				iva := invVar[gi]
				for t, cnt := range src {
					d := float64(cnt)*inv - pa*p[j0+t]
					// The reciprocals are grouped before scaling d² so the
					// value is bit-symmetric under SNP exchange (IEEE
					// multiplication commutes), matching the fused epilogue.
					dst[t] = d * d * (iva * invVar[j0+t])
				}
			} else {
				for t, cnt := range src {
					pr := PairFromFreqs(float64(cnt)*inv, pa, p[j0+t])
					switch {
					case meas&MeasureR2 != 0:
						dst[t] = pr.R2
					case meas&MeasureD != 0:
						dst[t] = pr.D
					default:
						dst[t] = pr.DPrime
					}
				}
			}
			visit(gi, j0, dst)
		}
	}
	return nil
}

// streamFused is Stream's fused-epilogue body: the stripe's statistic
// values are written directly by the blocked driver's tile epilogue into a
// float64 stripe — the uint32 count stripe and the per-row conversion pass
// are gone, and the conversion runs in parallel inside the driver.
// Expression shapes match the split path exactly (fast r² inline, exact
// via PairFromFreqs's sequence), so streamed values stay bit-identical.
func streamFused(g *bitmat.Matrix, opt StreamOptions, p []float64, stripe int, visit func(i, j0 int, row []float64)) error {
	n := g.SNPs
	lo, hi, _ := opt.rowWindow(n) // validated by Stream before dispatch
	meas := opt.measures()
	fast := meas&MeasureR2 != 0 && !opt.Exact
	vals := make([]float64, min(stripe, max(n, 1))*n)
	// epi builds a stripe epilogue writing the single requested statistic
	// into out (row stride ld), with frequency slices aligned to the
	// driver's sub-matrix coordinates.
	epi := func(out []float64, ld int, rowFreqs, colFreqs []float64) *denseEpilogue {
		e := &denseEpilogue{
			rowFreqs: rowFreqs, colFreqs: colFreqs, ld: ld, fast: fast,
		}
		if g.Samples > 0 {
			e.inv = 1 / float64(g.Samples)
		}
		switch {
		case meas&MeasureR2 != 0:
			e.r2 = out
		case meas&MeasureD != 0:
			e.d = out
		default:
			e.dp = out
		}
		e.prepare()
		return e
	}
	for i0 := lo; i0 < hi; i0 += stripe {
		rows := min(stripe, hi-i0)
		sub := g.Slice(i0, i0+rows)
		base := 0
		width := n
		v := vals[:rows*width]
		if opt.Triangular {
			base = i0
			width = n - i0
			v = vals[:rows*width]
			// Diagonal block: the fused SYRK sweep writes every upper-
			// triangle cell (and correct below-diagonal by-products the
			// visit loop never reads), so no clear is needed — the
			// epilogue assigns rather than accumulates.
			e := epi(v, width, p[i0:], p[i0:])
			if err := blis.SyrkEpilogue(opt.blisCfg(), sub, e.tile); err != nil {
				return err
			}
			bHi := opt.stripeColEnd(i0, rows, n)
			if skip := n - bHi; skip > 0 {
				blis.NoteBandSkip(1, int64(rows)*int64(skip))
			}
			if i0+rows < bHi {
				rest := g.Slice(i0+rows, bHi)
				e := epi(vals[rows:], width, p[i0:], p[i0+rows:])
				if err := blis.GemmEpilogue(opt.blisCfg(), sub, rest, e.tile); err != nil {
					return err
				}
			}
		} else {
			e := epi(v, width, p[i0:], p)
			if err := blis.GemmEpilogue(opt.blisCfg(), sub, g, e.tile); err != nil {
				return err
			}
		}
		for i := 0; i < rows; i++ {
			gi := i0 + i
			j0 := base
			off := 0
			end := i*width + width
			if opt.Triangular {
				j0 = gi
				off = gi - i0
				end = i*width + (opt.rowEndCol(gi, n) - i0)
			}
			visit(gi, j0, v[i*width+off:end])
		}
	}
	return nil
}

// SumR2 runs a triangular streaming scan and returns the sum and count of
// r² over the upper triangle including the diagonal — the cheap
// whole-matrix reduction the benchmark harness uses to keep the epilogue
// honest without storing n² floats.
func SumR2(g *bitmat.Matrix, opt StreamOptions) (sum float64, pairs int64, err error) {
	opt.Triangular = true
	opt.Measures = MeasureR2
	err = Stream(g, opt, func(i, j0 int, row []float64) {
		for _, v := range row {
			sum += v
		}
		pairs += int64(len(row))
	})
	return sum, pairs, err
}
