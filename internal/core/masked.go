package core

import (
	"fmt"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/blis"
	"ldgemm/internal/kernel"
)

// MaskedPairLD computes gap-aware LD between SNPs i and j of g directly
// from the Section VII inner products: allele and haplotype frequencies
// are taken over the samples valid at *both* SNPs (cᵢⱼ = cᵢ & cⱼ).
func MaskedPairLD(g *bitmat.Matrix, k *bitmat.Mask, i, j int) Pair {
	si, sj := g.SNP(i), g.SNP(j)
	ci, cj := k.SNP(i), k.SNP(j)
	var nValid, nI, nJ, nIJ uint32
	for w := range si {
		cij := ci[w] & cj[w]
		nValid += popc(cij)
		nI += popc(cij & si[w])
		nJ += popc(cij & sj[w])
		nIJ += popc(cij & si[w] & sj[w])
	}
	if nValid == 0 {
		return Pair{}
	}
	n := float64(nValid)
	return PairFromFreqs(float64(nIJ)/n, float64(nI)/n, float64(nJ)/n)
}

// MaskedMatrix computes gap-aware all-pairs LD within one genomic matrix
// using the fused masked blocked driver. The mask is applied to a copy of
// the matrix first (enforcing s = s & c), so callers may pass matrices
// whose gap positions carry arbitrary bits. Both triangles are filled.
func MaskedMatrix(g *bitmat.Matrix, mask *bitmat.Mask, opt Options) (*Result, error) {
	if mask.SNPs != g.SNPs || mask.Samples != g.Samples {
		return nil, fmt.Errorf("core: mask %dx%d does not match matrix %dx%d",
			mask.SNPs, mask.Samples, g.SNPs, g.Samples)
	}
	gm := g.Clone()
	if err := mask.ApplyTo(gm); err != nil {
		return nil, err
	}
	n := g.SNPs
	res := &Result{SNPs: n, Cols: n, Samples: g.Samples}
	res.RowFreqs = make([]float64, n)
	for i := range res.RowFreqs {
		v := mask.ValidCount(i)
		if v > 0 {
			res.RowFreqs[i] = float64(gm.DerivedCount(i)) / float64(v)
		}
	}
	res.ColFreqs = res.RowFreqs
	if opt.fused() {
		// Fused: no n²·16-byte quad matrix, no count mirror — each tile
		// converts its four-count cells in place and writes the (bit-
		// symmetric) float mirrors it owns.
		e := newMaskedEpilogue(res, opt, true)
		if err := blis.MaskedSyrkEpilogue(opt.blisCfg(), gm, mask, e.tile); err != nil {
			return nil, err
		}
		return res, nil
	}
	quad := make([]uint32, n*n*4)
	if err := blis.MaskedSyrk(opt.blisCfg(), gm, mask, quad, n); err != nil {
		return nil, err
	}
	blis.MirrorMasked(quad, n, n)
	fillMaskedMeasures(res, quad, opt)
	return res, nil
}

// fillMaskedMeasures converts the four-count matrix into the requested
// statistics using per-pair effective sample sizes.
func fillMaskedMeasures(res *Result, quad []uint32, opt Options) {
	meas := opt.measures()
	m, n := res.SNPs, res.Cols
	if meas&MeasureD != 0 {
		res.D = make([]float64, m*n)
	}
	if meas&MeasureR2 != 0 {
		res.R2 = make([]float64, m*n)
	}
	if meas&MeasureDPrime != 0 {
		res.DPrime = make([]float64, m*n)
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			idx := i*n + j
			cell := quad[idx*4 : idx*4+4]
			var p Pair
			if v := cell[kernel.MaskedValid]; v > 0 {
				nv := float64(v)
				p = PairFromFreqs(
					float64(cell[kernel.MaskedIJ])/nv,
					float64(cell[kernel.MaskedI])/nv,
					float64(cell[kernel.MaskedJ])/nv,
				)
			}
			if res.D != nil {
				res.D[idx] = p.D
			}
			if res.R2 != nil {
				res.R2[idx] = p.R2
			}
			if res.DPrime != nil {
				res.DPrime[idx] = p.DPrime
			}
		}
	}
}
