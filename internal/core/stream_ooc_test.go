package core

import (
	"math/rand"
	"path/filepath"
	"testing"

	"ldgemm/internal/bitmat"
)

// oocSources opens a matrix as both file-backed source modes (plus the
// resident MemSource) so every test sweeps all three access paths.
func oocSources(t *testing.T, m *bitmat.Matrix) map[string]bitmat.Source {
	t.Helper()
	path := filepath.Join(t.TempDir(), "m.ldbm")
	if err := bitmat.WriteFile(path, m); err != nil {
		t.Fatal(err)
	}
	srcs := map[string]bitmat.Source{"mem": bitmat.NewMemSource(m)}
	for name, mapped := range map[string]bool{"windowed": false, "mmap": true} {
		f, err := bitmat.OpenFile(path, mapped)
		if err != nil {
			t.Fatalf("OpenFile(mapped=%v): %v", mapped, err)
		}
		t.Cleanup(func() { f.Close() })
		srcs[name] = f
	}
	return srcs
}

// collect runs a stream function and gathers every visited row, copied.
type visitRow struct {
	i, j0 int
	row   []float64
}

func collectVisits(t *testing.T, run func(visit func(i, j0 int, row []float64)) error) []visitRow {
	t.Helper()
	var got []visitRow
	if err := run(func(i, j0 int, row []float64) {
		got = append(got, visitRow{i, j0, append([]float64(nil), row...)})
	}); err != nil {
		t.Fatal(err)
	}
	return got
}

func TestStreamSourceMatchesStream(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := randomMatrix(rng, 151, 203)
	opts := map[string]StreamOptions{
		"triangular-exact": {Triangular: true, Exact: true, StripeRows: 32, IOPanelSNPs: 40},
		"triangular-fast":  {Triangular: true, StripeRows: 48, IOPanelSNPs: 17},
		"full-fast":        {StripeRows: 64, IOPanelSNPs: 33},
		"dprime":           {Options: Options{Measures: MeasureDPrime}, Triangular: true, Exact: true, StripeRows: 50, IOPanelSNPs: 64},
		"d":                {Options: Options{Measures: MeasureD}, StripeRows: 32, IOPanelSNPs: 200},
		"row-window":       {Triangular: true, Exact: true, StripeRows: 16, IOPanelSNPs: 25, RowStart: 33, RowEnd: 97},
		"one-panel":        {Triangular: true, Exact: true, StripeRows: 151, IOPanelSNPs: 1024},
	}
	for name, opt := range opts {
		want := collectVisits(t, func(v func(int, int, []float64)) error { return Stream(m, opt, v) })
		for srcName, src := range oocSources(t, m) {
			got := collectVisits(t, func(v func(int, int, []float64)) error { return StreamSource(src, opt, v) })
			if len(got) != len(want) {
				t.Fatalf("%s/%s: %d rows, want %d", name, srcName, len(got), len(want))
			}
			for k := range want {
				if got[k].i != want[k].i || got[k].j0 != want[k].j0 {
					t.Fatalf("%s/%s: row %d at (%d,%d), want (%d,%d)", name, srcName, k, got[k].i, got[k].j0, want[k].i, want[k].j0)
				}
				for c := range want[k].row {
					if got[k].row[c] != want[k].row[c] {
						t.Fatalf("%s/%s: row %d col %d = %v, want %v (bit-identity violated)",
							name, srcName, want[k].i, want[k].j0+c, got[k].row[c], want[k].row[c])
					}
				}
			}
		}
	}
}

func TestSourceAlleleFrequencies(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := randomMatrix(rng, 97, 61)
	want := AlleleFrequencies(m)
	for srcName, src := range oocSources(t, m) {
		for _, panel := range []int{1, 13, 97, 1000} {
			got, err := SourceAlleleFrequencies(src, panel)
			if err != nil {
				t.Fatalf("%s/panel=%d: %v", srcName, panel, err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s/panel=%d: p[%d] = %v, want %v", srcName, panel, i, got[i], want[i])
				}
			}
		}
	}
}

func TestStreamSourceRejectsUnfusable(t *testing.T) {
	m := bitmat.New(8, 8)
	path := filepath.Join(t.TempDir(), "m.ldbm")
	if err := bitmat.WriteFile(path, m); err != nil {
		t.Fatal(err)
	}
	f, err := bitmat.OpenFile(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	opt := StreamOptions{Options: Options{Epilogue: EpilogueSplit}, Triangular: true}
	if err := StreamSource(f, opt, func(int, int, []float64) {}); err == nil {
		t.Fatal("split-epilogue out-of-core scan must be rejected")
	}
	// The MemSource path delegates to Stream, which handles split fine.
	if err := StreamSource(bitmat.NewMemSource(m), opt, func(int, int, []float64) {}); err != nil {
		t.Fatalf("MemSource split delegation: %v", err)
	}
}
