package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomDNA(rng *rand.Rand, snps, samples int, gapRate float64) [][]byte {
	alpha := []byte("ACGT")
	cols := make([][]byte, snps)
	for i := range cols {
		cols[i] = make([]byte, samples)
		for s := range cols[i] {
			if rng.Float64() < gapRate {
				cols[i][s] = '-'
			} else {
				cols[i][s] = alpha[rng.Intn(4)]
			}
		}
	}
	return cols
}

func TestFromDNAAndState(t *testing.T) {
	f, err := FromDNA([][]byte{
		[]byte("ACGT-"),
		[]byte("aaNtt"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.SNPs != 2 || f.Samples != 5 {
		t.Fatalf("dims %dx%d", f.SNPs, f.Samples)
	}
	wantStates := [][]int{{0, 1, 2, 3, -1}, {0, 0, -1, 3, 3}}
	for i := range wantStates {
		for s, want := range wantStates[i] {
			st, ok := f.State(i, s)
			if want == -1 {
				if ok {
					t.Fatalf("(%d,%d) should be a gap", i, s)
				}
				continue
			}
			if !ok || st != want {
				t.Fatalf("State(%d,%d) = %d,%v, want %d", i, s, st, ok, want)
			}
		}
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFromDNARagged(t *testing.T) {
	if _, err := FromDNA([][]byte{[]byte("AC"), []byte("A")}); err == nil {
		t.Fatal("ragged DNA accepted")
	}
}

func TestSetClearState(t *testing.T) {
	f := NewFSMMatrix(1, 4)
	f.SetState(0, 2, 3)
	if st, ok := f.State(0, 2); !ok || st != 3 {
		t.Fatalf("State = %d,%v", st, ok)
	}
	f.SetState(0, 2, 1) // reassign must clear previous plane
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if st, _ := f.State(0, 2); st != 1 {
		t.Fatalf("reassigned state = %d", st)
	}
	f.ClearState(0, 2)
	if _, ok := f.State(0, 2); ok {
		t.Fatal("ClearState did not clear")
	}
}

func TestValidateDetectsOverlap(t *testing.T) {
	f := NewFSMMatrix(1, 4)
	f.Planes[0].SetBit(0, 1)
	f.Planes[2].SetBit(0, 1)
	if err := f.Validate(); err == nil {
		t.Fatal("overlapping states not detected")
	}
}

func TestValidMaskAndStateCounts(t *testing.T) {
	f, err := FromDNA([][]byte{[]byte("AACG-N")})
	if err != nil {
		t.Fatal(err)
	}
	k := f.ValidMask()
	if got := k.ValidCount(0); got != 4 {
		t.Fatalf("ValidCount = %d, want 4", got)
	}
	counts, v := f.StateCounts(0)
	if counts[0] != 2 || counts[1] != 1 || counts[2] != 1 || counts[3] != 0 {
		t.Fatalf("counts = %v", counts)
	}
	if v != 3 {
		t.Fatalf("v = %d, want 3", v)
	}
}

// naiveFSM computes Σr² and T for one pair directly from characters.
func naiveFSM(cols [][]byte, i, j int) (sumR2, tstat float64) {
	valid := func(c byte) (int, bool) {
		switch c {
		case 'A', 'a':
			return 0, true
		case 'C', 'c':
			return 1, true
		case 'G', 'g':
			return 2, true
		case 'T', 't':
			return 3, true
		}
		return 0, false
	}
	samples := len(cols[i])
	var joint [4][4]float64
	nv := 0.0
	for s := 0; s < samples; s++ {
		a, oka := valid(cols[i][s])
		b, okb := valid(cols[j][s])
		if oka && okb {
			joint[a][b]++
			nv++
		}
	}
	if nv == 0 {
		return 0, 0
	}
	var margI, margJ [4]float64
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			margI[a] += joint[a][b]
			margJ[b] += joint[a][b]
		}
	}
	for a := 0; a < 4; a++ {
		pa := margI[a] / nv
		if pa <= 0 || pa >= 1 {
			continue
		}
		for b := 0; b < 4; b++ {
			pb := margJ[b] / nv
			if pb <= 0 || pb >= 1 {
				continue
			}
			d := joint[a][b]/nv - pa*pb
			sumR2 += d * d / (pa * (1 - pa) * pb * (1 - pb))
		}
	}
	// vᵢ per FSMLD: distinct states over *all* valid samples of the SNP.
	vi, vj := 0.0, 0.0
	for st := 0; st < 4; st++ {
		ci, cj := 0, 0
		for s := 0; s < samples; s++ {
			if a, ok := valid(cols[i][s]); ok && a == st {
				ci++
			}
			if b, ok := valid(cols[j][s]); ok && b == st {
				cj++
			}
		}
		if ci > 0 {
			vi++
		}
		if cj > 0 {
			vj++
		}
	}
	if vi > 0 && vj > 0 {
		tstat = (vi - 1) * (vj - 1) * nv / (vi * vj) * sumR2
	}
	return sumR2, tstat
}

func TestFSMLDMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cols := randomDNA(rng, 9, 140, 0.1)
	f, err := FromDNA(cols)
	if err != nil {
		t.Fatal(err)
	}
	res, err := FSMLD(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		for j := 0; j < 9; j++ {
			wantSum, wantT := naiveFSM(cols, i, j)
			if math.Abs(res.SumR2[i*9+j]-wantSum) > 1e-9 {
				t.Fatalf("SumR2(%d,%d) = %v, want %v", i, j, res.SumR2[i*9+j], wantSum)
			}
			if math.Abs(res.T[i*9+j]-wantT) > 1e-9 {
				t.Fatalf("T(%d,%d) = %v, want %v", i, j, res.T[i*9+j], wantT)
			}
		}
	}
}

func TestFSMLDBiallelicConsistency(t *testing.T) {
	// A biallelic FSM site with no gaps must reproduce the ISM r²: with
	// exactly two states per SNP, Σr² counts each of the 4 state pairs,
	// all equal to r², so Σr² = 4·r² and T = (1·1·n)/(2·2)·4r² = n·r².
	rng := rand.New(rand.NewSource(2))
	samples := 120
	g := randomMatrix(rng, 6, samples)
	// Avoid monomorphic SNPs for a clean comparison.
	for i := 0; i < 6; i++ {
		g.SetBit(i, 0)
		g.ClearBit(i, 1)
	}
	cols := make([][]byte, 6)
	for i := range cols {
		cols[i] = make([]byte, samples)
		for s := 0; s < samples; s++ {
			if g.Bit(i, s) {
				cols[i][s] = 'G' // derived
			} else {
				cols[i][s] = 'A' // ancestral
			}
		}
	}
	f, err := FromDNA(cols)
	if err != nil {
		t.Fatal(err)
	}
	fsm, err := FSMLD(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ism, err := Matrix(g, Options{Measures: MeasureR2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			idx := i*6 + j
			if math.Abs(fsm.SumR2[idx]-4*ism.R2[idx]) > 1e-9 {
				t.Fatalf("(%d,%d): Σr² = %v, want 4·r² = %v", i, j, fsm.SumR2[idx], 4*ism.R2[idx])
			}
			wantT := float64(samples) * ism.R2[idx]
			if math.Abs(fsm.T[idx]-wantT) > 1e-6 {
				t.Fatalf("(%d,%d): T = %v, want N·r² = %v", i, j, fsm.T[idx], wantT)
			}
		}
	}
}

func TestFSMLDEmpty(t *testing.T) {
	res, err := FSMLD(NewFSMMatrix(0, 0), Options{})
	if err != nil || res.SNPs != 0 {
		t.Fatalf("empty FSM: %v %+v", err, res)
	}
}

func TestQuickFSMLD(t *testing.T) {
	f := func(seed int64, n8, s8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(n8%6) + 2
		samples := int(s8%90) + 10
		cols := randomDNA(rng, n, samples, 0.15)
		fm, err := FromDNA(cols)
		if err != nil {
			return false
		}
		res, err := FSMLD(fm, Options{})
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				wantSum, wantT := naiveFSM(cols, i, j)
				if math.Abs(res.SumR2[i*n+j]-wantSum) > 1e-9 ||
					math.Abs(res.T[i*n+j]-wantT) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
