// Package ldmap builds LD decay profiles: the mean r² as a function of
// inter-SNP distance, the standard summary of a population's recombination
// landscape and the curve used to choose window sizes for pruning,
// clumping, and ω scans. The all-pairs r² values stream out of the
// blocked GEMM path, so profiling a whole chromosome needs O(stripe·n)
// memory.
package ldmap

import (
	"fmt"
	"math"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/core"
)

// Options configures a decay profile.
type Options struct {
	// MaxDistance is the largest pair distance profiled (default: the
	// full range). Units are SNP indices, or base pairs when Positions
	// is supplied.
	MaxDistance int
	// Bins is the number of distance bins (default 50).
	Bins int
	// Positions optionally maps SNP index → genomic coordinate; it must
	// be non-decreasing and len == SNPs.
	Positions []int
	// LD carries blocking/threading options.
	LD core.Options
}

// Profile is a binned LD decay curve.
type Profile struct {
	// BinWidth is the distance covered by each bin.
	BinWidth float64
	// Centers are the bin midpoints.
	Centers []float64
	// MeanR2 is the average r² of pairs in each bin (0 for empty bins).
	MeanR2 []float64
	// Counts is the number of pairs per bin.
	Counts []int64
}

// Decay computes the profile over all SNP pairs within MaxDistance.
func Decay(g *bitmat.Matrix, opt Options) (*Profile, error) {
	n := g.SNPs
	if opt.Positions != nil {
		if len(opt.Positions) != n {
			return nil, fmt.Errorf("ldmap: %d positions for %d SNPs", len(opt.Positions), n)
		}
		for i := 1; i < n; i++ {
			if opt.Positions[i] < opt.Positions[i-1] {
				return nil, fmt.Errorf("ldmap: positions decrease at %d", i)
			}
		}
	}
	if opt.Bins == 0 {
		opt.Bins = 50
	}
	if opt.Bins < 1 {
		return nil, fmt.Errorf("ldmap: invalid bin count %d", opt.Bins)
	}
	dist := func(i, j int) int {
		if opt.Positions != nil {
			return opt.Positions[j] - opt.Positions[i]
		}
		return j - i
	}
	maxDist := opt.MaxDistance
	if maxDist == 0 {
		if n > 1 {
			maxDist = dist(0, n-1)
		} else {
			maxDist = 1
		}
	}
	if maxDist < 1 {
		return nil, fmt.Errorf("ldmap: invalid max distance %d", maxDist)
	}

	p := &Profile{
		BinWidth: float64(maxDist) / float64(opt.Bins),
		Centers:  make([]float64, opt.Bins),
		MeanR2:   make([]float64, opt.Bins),
		Counts:   make([]int64, opt.Bins),
	}
	for b := range p.Centers {
		p.Centers[b] = (float64(b) + 0.5) * p.BinWidth
	}
	sums := make([]float64, opt.Bins)
	ld := opt.LD
	ld.Measures = core.MeasureR2
	sopt := core.StreamOptions{Options: ld, Triangular: true}
	err := core.Stream(g, sopt, func(i, j0 int, row []float64) {
		for t, r2 := range row {
			j := j0 + t
			if j == i {
				continue
			}
			d := dist(i, j)
			if d > maxDist || d < 1 {
				continue
			}
			b := min(int(float64(d-1)/p.BinWidth), opt.Bins-1)
			sums[b] += r2
			p.Counts[b]++
		}
	})
	if err != nil {
		return nil, err
	}
	for b := range sums {
		if p.Counts[b] > 0 {
			p.MeanR2[b] = sums[b] / float64(p.Counts[b])
		}
	}
	return p, nil
}

// HalfDecayDistance returns the distance at which the mean r² first drops
// to half the first bin's level (linear interpolation between bins), or
// NaN when the curve never falls that far.
func (p *Profile) HalfDecayDistance() float64 {
	if len(p.MeanR2) == 0 || p.MeanR2[0] <= 0 {
		return math.NaN()
	}
	half := p.MeanR2[0] / 2
	for b := 1; b < len(p.MeanR2); b++ {
		if p.Counts[b] == 0 {
			continue
		}
		if p.MeanR2[b] <= half {
			// Interpolate between bin b−1 and b.
			prev := p.MeanR2[b-1]
			if prev <= p.MeanR2[b] {
				return p.Centers[b]
			}
			frac := (prev - half) / (prev - p.MeanR2[b])
			return p.Centers[b-1] + frac*(p.Centers[b]-p.Centers[b-1])
		}
	}
	return math.NaN()
}
