package ldmap

import (
	"math"
	"testing"

	"ldgemm/internal/popsim"
)

// syntheticProfile builds a profile that exactly follows the model.
func syntheticProfile(a, c0, floor float64, bins int) *Profile {
	p := &Profile{
		BinWidth: 10,
		Centers:  make([]float64, bins),
		MeanR2:   make([]float64, bins),
		Counts:   make([]int64, bins),
	}
	for b := range p.Centers {
		d := (float64(b) + 0.5) * p.BinWidth
		p.Centers[b] = d
		p.MeanR2[b] = c0/(1+a*d) + floor
		p.Counts[b] = 1000
	}
	return p
}

func TestFitRecoversExactModel(t *testing.T) {
	const a, c0, floor = 0.05, 0.4, 0.01
	p := syntheticProfile(a, c0, floor, 30)
	fit, err := Fit(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.A-a)/a > 0.02 {
		t.Fatalf("A = %v, want %v", fit.A, a)
	}
	if math.Abs(fit.C0-c0) > 0.01 || math.Abs(fit.Floor-floor) > 0.005 {
		t.Fatalf("C0 = %v Floor = %v", fit.C0, fit.Floor)
	}
	if fit.RSquared < 0.999 {
		t.Fatalf("R² = %v on exact data", fit.RSquared)
	}
	// Predict matches the generating curve.
	for _, d := range []float64{5, 50, 200} {
		want := c0/(1+a*d) + floor
		if math.Abs(fit.Predict(d)-want) > 1e-3 {
			t.Fatalf("Predict(%v) = %v, want %v", d, fit.Predict(d), want)
		}
	}
}

func TestFitOnSimulatedData(t *testing.T) {
	g, err := popsim.Mosaic(600, 400, popsim.MosaicConfig{Seed: 11, SwitchRate: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Decay(g, Options{MaxDistance: 300, Bins: 30})
	if err != nil {
		t.Fatal(err)
	}
	fit, err := Fit(p)
	if err != nil {
		t.Fatal(err)
	}
	if fit.A <= 0 {
		t.Fatalf("non-positive decay rate %v", fit.A)
	}
	if fit.RSquared < 0.7 {
		t.Fatalf("poor fit R² = %v on mosaic data", fit.RSquared)
	}
	// The fitted curve must decay: near < far.
	if fit.Predict(5) <= fit.Predict(250) {
		t.Fatalf("fitted curve does not decay: %v vs %v", fit.Predict(5), fit.Predict(250))
	}
}

func TestFitFlatProfile(t *testing.T) {
	// No decay: floor-only data. A is unidentifiable but the curve must
	// reproduce the flat level.
	p := syntheticProfile(0, 0, 0.2, 10)
	fit, err := Fit(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []float64{10, 80} {
		if math.Abs(fit.Predict(d)-0.2) > 1e-6 {
			t.Fatalf("flat profile predicted %v at %v", fit.Predict(d), d)
		}
	}
}

func TestFitTooFewBins(t *testing.T) {
	p := syntheticProfile(0.1, 0.5, 0, 2)
	if _, err := Fit(p); err == nil {
		t.Fatal("2-bin fit accepted")
	}
	// Empty bins don't count.
	p = syntheticProfile(0.1, 0.5, 0, 5)
	p.Counts[0], p.Counts[1], p.Counts[2] = 0, 0, 0
	if _, err := Fit(p); err == nil {
		t.Fatal("fit with 2 populated bins accepted")
	}
}
