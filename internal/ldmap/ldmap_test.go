package ldmap

import (
	"math"
	"testing"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/core"
	"ldgemm/internal/popsim"
)

func TestDecayMonotoneOnMosaic(t *testing.T) {
	g, err := popsim.Mosaic(400, 300, popsim.MosaicConfig{Seed: 1, SwitchRate: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Decay(g, Options{MaxDistance: 200, Bins: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.MeanR2) != 10 || len(p.Counts) != 10 || len(p.Centers) != 10 {
		t.Fatalf("profile shape %+v", p)
	}
	// First bin well above last bin: LD decays with distance.
	if p.MeanR2[0] < 3*p.MeanR2[9] {
		t.Fatalf("no decay: first %v last %v", p.MeanR2[0], p.MeanR2[9])
	}
	// Every in-range pair lands in exactly one bin.
	var total int64
	for _, c := range p.Counts {
		total += c
	}
	var want int64
	for i := 0; i < 400; i++ {
		for j := i + 1; j < 400 && j-i <= 200; j++ {
			want++
		}
	}
	if total != want {
		t.Fatalf("binned %d pairs, want %d", total, want)
	}
}

func TestDecayCountsExact(t *testing.T) {
	g, err := popsim.Mosaic(20, 50, popsim.MosaicConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Decay(g, Options{MaxDistance: 19, Bins: 19})
	if err != nil {
		t.Fatal(err)
	}
	// Bin b covers distance b+1 exactly (width 1): count = 20−(b+1).
	for b := 0; b < 19; b++ {
		if p.Counts[b] != int64(19-b) {
			t.Fatalf("bin %d count %d, want %d", b, p.Counts[b], 19-b)
		}
	}
	// MeanR2 of bin 0 equals the direct mean over adjacent pairs.
	var s float64
	for i := 0; i+1 < 20; i++ {
		s += core.PairLD(g, i, i+1).R2
	}
	if math.Abs(p.MeanR2[0]-s/19) > 1e-12 {
		t.Fatalf("bin 0 mean %v, want %v", p.MeanR2[0], s/19)
	}
}

func TestDecayWithPositions(t *testing.T) {
	g, err := popsim.Mosaic(30, 60, popsim.MosaicConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]int, 30)
	for i := range pos {
		pos[i] = i * 1000 // 1 kb spacing
	}
	p, err := Decay(g, Options{Positions: pos, MaxDistance: 29000, Bins: 29})
	if err != nil {
		t.Fatal(err)
	}
	if p.BinWidth != 1000 {
		t.Fatalf("bin width %v", p.BinWidth)
	}
	if p.Counts[0] != 29 { // adjacent pairs at 1000 bp
		t.Fatalf("bin 0 count %d", p.Counts[0])
	}
}

func TestDecayValidation(t *testing.T) {
	g := bitmat.New(10, 20)
	if _, err := Decay(g, Options{Positions: []int{1, 2}}); err == nil {
		t.Fatal("short positions accepted")
	}
	if _, err := Decay(g, Options{Positions: []int{5, 4, 3, 2, 1, 0, 0, 0, 0, 0}}); err == nil {
		t.Fatal("decreasing positions accepted")
	}
	if _, err := Decay(g, Options{Bins: -2}); err == nil {
		t.Fatal("negative bins accepted")
	}
	if _, err := Decay(g, Options{MaxDistance: -5}); err == nil {
		t.Fatal("negative max distance accepted")
	}
}

func TestHalfDecayDistance(t *testing.T) {
	p := &Profile{
		Centers: []float64{1, 2, 3, 4},
		MeanR2:  []float64{0.8, 0.6, 0.3, 0.1},
		Counts:  []int64{5, 5, 5, 5},
	}
	// Half of 0.8 = 0.4; crossing between bins 1 (0.6) and 2 (0.3):
	// frac = (0.6−0.4)/(0.6−0.3) = 2/3 → 2 + 2/3.
	got := p.HalfDecayDistance()
	if math.Abs(got-(2+2.0/3)) > 1e-12 {
		t.Fatalf("half decay %v", got)
	}
	// Never decays → NaN.
	flat := &Profile{Centers: []float64{1, 2}, MeanR2: []float64{0.5, 0.5}, Counts: []int64{1, 1}}
	if !math.IsNaN(flat.HalfDecayDistance()) {
		t.Fatal("flat profile should give NaN")
	}
	empty := &Profile{}
	if !math.IsNaN(empty.HalfDecayDistance()) {
		t.Fatal("empty profile should give NaN")
	}
}
