package ldmap

import (
	"fmt"
	"math"
)

// FitResult is a fitted hyperbolic LD decay model
//
//	E[r²](d) = c0 / (1 + a·d) + floor
//
// — the Sved/Hill–Weir expectation shape, where a is proportional to the
// population recombination rate per distance unit, c0 is the zero-distance
// LD level, and floor absorbs the finite-sample baseline (E[r²] ≈ 1/n for
// unlinked loci).
type FitResult struct {
	A     float64 // decay rate per distance unit
	C0    float64 // r² intercept at d = 0
	Floor float64 // long-range baseline
	// RSquared is the fraction of profile variance the fit explains.
	RSquared float64
}

// Predict evaluates the fitted curve at distance d.
func (f FitResult) Predict(d float64) float64 {
	return f.C0/(1+f.A*d) + f.Floor
}

// Fit estimates the decay model from a profile by weighted least squares:
// for each candidate decay rate a (log-spaced search refined by golden
// section), the conditionally-linear c0 and floor are solved in closed
// form; the a minimizing the residual wins. Bins are weighted by their
// pair counts.
func Fit(p *Profile) (FitResult, error) {
	var xs, ys, ws []float64
	for b := range p.Centers {
		if p.Counts[b] == 0 {
			continue
		}
		xs = append(xs, p.Centers[b])
		ys = append(ys, p.MeanR2[b])
		ws = append(ws, float64(p.Counts[b]))
	}
	if len(xs) < 3 {
		return FitResult{}, fmt.Errorf("ldmap: need at least 3 populated bins to fit, have %d", len(xs))
	}

	// Residual of the best conditionally-linear (c0, floor) for a given a.
	solve := func(a float64) (FitResult, float64) {
		// Basis: u(d) = 1/(1+a·d), constant 1. Weighted normal equations.
		var suu, su1, s11, suy, s1y float64
		for i := range xs {
			u := 1 / (1 + a*xs[i])
			w := ws[i]
			suu += w * u * u
			su1 += w * u
			s11 += w
			suy += w * u * ys[i]
			s1y += w * ys[i]
		}
		det := suu*s11 - su1*su1
		var c0, floor float64
		if math.Abs(det) < 1e-18 {
			c0, floor = 0, s1y/s11
		} else {
			c0 = (suy*s11 - s1y*su1) / det
			floor = (suu*s1y - su1*suy) / det
		}
		res := 0.0
		for i := range xs {
			r := ys[i] - (c0/(1+a*xs[i]) + floor)
			res += ws[i] * r * r
		}
		return FitResult{A: a, C0: c0, Floor: floor}, res
	}

	// Coarse log-spaced scan over plausible decay rates.
	bestFit, bestRes := solve(0)
	maxD := xs[len(xs)-1]
	for e := -3.0; e <= 3.0; e += 0.1 {
		a := math.Pow(10, e) / maxD * 10 // spans ~1e-3/d̄ to ~1e3/d̄
		fit, res := solve(a)
		if res < bestRes {
			bestFit, bestRes = fit, res
		}
	}
	// Golden-section refinement around the winner.
	lo, hi := bestFit.A/3, bestFit.A*3
	if bestFit.A == 0 {
		lo, hi = 0, 10/maxD
	}
	const phi = 0.6180339887498949
	for iter := 0; iter < 60; iter++ {
		m1 := hi - phi*(hi-lo)
		m2 := lo + phi*(hi-lo)
		_, r1 := solve(m1)
		_, r2 := solve(m2)
		if r1 < r2 {
			hi = m2
		} else {
			lo = m1
		}
	}
	fit, res := solve((lo + hi) / 2)
	if res < bestRes {
		bestFit, bestRes = fit, res
	}

	// Weighted R² of the fit.
	var meanY, totW float64
	for i := range ys {
		meanY += ws[i] * ys[i]
		totW += ws[i]
	}
	meanY /= totW
	var ssTot float64
	for i := range ys {
		d := ys[i] - meanY
		ssTot += ws[i] * d * d
	}
	if ssTot > 0 {
		bestFit.RSquared = 1 - bestRes/ssTot
	}
	return bestFit, nil
}
