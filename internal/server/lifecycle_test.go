package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/popsim"
)

// TestRequestTimeoutReturns504 pins the deadline path: with an immediate
// request timeout the region compute is cancelled by the driver and the
// client receives 504 with a JSON error body, and the timeout counter
// moves.
func TestRequestTimeoutReturns504(t *testing.T) {
	g, err := popsim.Mosaic(120, 200, popsim.MosaicConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	s := New(g, Config{MaxRegionSNPs: 64, Threads: 2, RequestTimeout: time.Nanosecond})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/api/ld/region?start=0&end=60")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("504 body not JSON: %v", err)
	}
	if body.Error == "" {
		t.Fatal("504 body has no error field")
	}
	if s.metrics.timedOut.Value() == 0 {
		t.Fatal("timed_out counter did not move")
	}
}

// TestClientCancelReturns499 pins the abandoned-request path: a request
// whose context is already cancelled must not run the kernels to
// completion, and the cancellation counter must move.
func TestClientCancelReturns499(t *testing.T) {
	g, err := popsim.Mosaic(120, 200, popsim.MosaicConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	s := New(g, Config{MaxRegionSNPs: 64, Threads: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("GET", "/api/ld/region?start=0&end=60", nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != statusClientClosedRequest {
		t.Fatalf("status %d, want %d", rec.Code, statusClientClosedRequest)
	}
	if s.metrics.cancelled.Value() != 1 {
		t.Fatalf("cancelled counter %d, want 1", s.metrics.cancelled.Value())
	}
}

// TestInFlightLimiterSheds drives the semaphore middleware directly with a
// handler we can hold open, so the shed path is exercised deterministically.
func TestInFlightLimiterSheds(t *testing.T) {
	m := newMetrics()
	entered := make(chan struct{})
	release := make(chan struct{})
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		w.WriteHeader(http.StatusOK)
	})
	h := inFlightLimiter(1, 3*time.Second, m)(slow)

	var wg sync.WaitGroup
	wg.Add(1)
	first := httptest.NewRecorder()
	go func() {
		defer wg.Done()
		h.ServeHTTP(first, httptest.NewRequest("GET", "/api/omega", nil))
	}()
	<-entered // the slot is provably held

	second := httptest.NewRecorder()
	h.ServeHTTP(second, httptest.NewRequest("GET", "/api/omega", nil))
	if second.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated request got %d, want 503", second.Code)
	}
	if ra := second.Header().Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After %q, want \"3\"", ra)
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(second.Body).Decode(&body); err != nil || body.Error == "" {
		t.Fatalf("503 body %q not a JSON error (%v)", second.Body.String(), err)
	}
	if m.shed.Value() != 1 {
		t.Fatalf("shed counter %d, want 1", m.shed.Value())
	}

	close(release)
	wg.Wait()
	if first.Code != http.StatusOK {
		t.Fatalf("admitted request got %d", first.Code)
	}
	if m.inFlight.Value() != 0 {
		t.Fatalf("in_flight %d after drain", m.inFlight.Value())
	}
}

// TestServerShedsUnderConcurrency exercises the cap through the full
// stack: with one slot and many simultaneous heavy requests, some must be
// shed and every response must be either a result or a clean 503.
func TestServerShedsUnderConcurrency(t *testing.T) {
	// The workload must hold the single slot for tens of milliseconds so
	// simultaneous clients actually collide — the fused epilogue made the
	// original 120-SNP scan finish too fast to ever overlap.
	g, err := popsim.Mosaic(300, 300, popsim.MosaicConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	s := New(g, Config{MaxRegionSNPs: 64, Threads: 1, MaxInFlight: 1})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	// A round can serialize by scheduling luck, so retry a few rounds;
	// across them, 12 simultaneous clients on one slot must collide.
	const clients, rounds = 12, 8
	totalOK, totalShed := 0, 0
	for round := 0; round < rounds && totalShed == 0; round++ {
		codes := make(chan int, clients)
		start := make(chan struct{})
		var wg sync.WaitGroup
		for i := 0; i < clients; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				resp, err := http.Get(ts.URL + "/api/omega?grid=40&max_each=75")
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				codes <- resp.StatusCode
			}()
		}
		close(start)
		wg.Wait()
		close(codes)
		for code := range codes {
			switch code {
			case http.StatusOK:
				totalOK++
			case http.StatusServiceUnavailable:
				totalShed++
			default:
				t.Fatalf("unexpected status %d", code)
			}
		}
	}
	if totalOK == 0 {
		t.Fatal("no request was admitted")
	}
	if totalShed == 0 {
		t.Fatalf("no request was shed across %d rounds of %d concurrent clients on 1 slot", rounds, clients)
	}
	if got := s.metrics.shed.Value(); got != int64(totalShed) {
		t.Fatalf("shed counter %d, want %d", got, totalShed)
	}
}

// TestDebugVars checks the ops surface: per-endpoint request counts,
// cancellation/timeout counters, and the kernel throughput gauge.
func TestDebugVars(t *testing.T) {
	ts, _ := testServer(t)
	if code := getJSON(t, ts.URL+"/api/ld/region?start=10&end=30", nil); code != http.StatusOK {
		t.Fatalf("region status %d", code)
	}
	resp, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("vars status %d", resp.StatusCode)
	}
	var vars struct {
		Requests  map[string]int64 `json:"requests"`
		Statuses  map[string]int64 `json:"statuses"`
		Latency   map[string]int64 `json:"latency_ns"`
		InFlight  int64            `json:"in_flight"`
		Shed      int64            `json:"shed"`
		Cancelled int64            `json:"cancelled"`
		TimedOut  int64            `json:"timed_out"`
		Uptime    float64          `json:"uptime_seconds"`
		Blis      struct {
			Calls        uint64  `json:"calls"`
			GCellsPerSec float64 `json:"kernel_gcells_per_sec"`
			ArenaHitRate float64 `json:"arena_hit_rate"`
		} `json:"blis"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	if vars.Requests["/api/ld/region"] < 1 {
		t.Fatalf("region request count %d", vars.Requests["/api/ld/region"])
	}
	if vars.Statuses["200"] < 1 {
		t.Fatalf("statuses %v", vars.Statuses)
	}
	if vars.Latency["/api/ld/region"] <= 0 {
		t.Fatalf("latency %v", vars.Latency)
	}
	if vars.Blis.Calls == 0 || vars.Blis.GCellsPerSec <= 0 {
		t.Fatalf("blis gauge %+v", vars.Blis)
	}
	if vars.Uptime <= 0 {
		t.Fatalf("uptime %v", vars.Uptime)
	}
}

// TestOmegaPeakSeededFromFirstPoint locks in the peak-selection fix: a
// scan over a monomorphic matrix has ω = 0 everywhere, and the reported
// peak must be a real grid point (the first), not the zero value.
func TestOmegaPeakSeededFromFirstPoint(t *testing.T) {
	s := New(bitmat.New(30, 64), Config{})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	var or OmegaResponse
	if code := getJSON(t, ts.URL+"/api/omega?grid=5&max_each=10", &or); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(or.Points) == 0 {
		t.Fatal("no points")
	}
	if or.Peak == nil {
		t.Fatal("peak omitted despite points")
	}
	if or.Peak.Omega != 0 {
		t.Fatalf("peak omega %v on monomorphic data", or.Peak.Omega)
	}
	if or.Peak.Center != or.Points[0].Center || or.Peak.Center == 0 {
		t.Fatalf("peak center %d, want first grid point %d",
			or.Peak.Center, or.Points[0].Center)
	}
}

// TestComputeErrorClassification pins the 499/504/500 mapping.
func TestComputeErrorClassification(t *testing.T) {
	s := New(bitmat.New(10, 16), Config{})
	cases := []struct {
		err  error
		want int
	}{
		{context.Canceled, statusClientClosedRequest},
		{context.DeadlineExceeded, http.StatusGatewayTimeout},
		{errors.New("arena exploded"), http.StatusInternalServerError},
	}
	for _, c := range cases {
		rec := httptest.NewRecorder()
		s.computeError(rec, httptest.NewRequest("GET", "/api/ld/region", nil), c.err)
		if rec.Code != c.want {
			t.Fatalf("%v -> %d, want %d", c.err, rec.Code, c.want)
		}
		var body struct {
			Error string `json:"error"`
		}
		if err := json.NewDecoder(rec.Body).Decode(&body); err != nil || body.Error == "" {
			t.Fatalf("%v: body %q not a JSON error", c.err, rec.Body.String())
		}
	}
}

// TestParamErrorsStay400 locks in the 400-vs-500 split for the endpoints
// that used to blanket-return 400.
func TestParamErrorsStay400(t *testing.T) {
	ts, _ := testServer(t)
	for _, q := range []string{
		"/api/prune?window=1",
		"/api/prune?window=10&step=20",
		"/api/prune?r2=0",
		"/api/blocks?dprime=2",
		"/api/blocks?frac=0",
		"/api/omega?grid=0",
		"/api/omega?min_each=1",
		"/api/omega?min_each=5&max_each=3",
	} {
		if code := getJSON(t, ts.URL+q, nil); code != http.StatusBadRequest {
			t.Fatalf("%s gave %d, want 400", q, code)
		}
	}
}
