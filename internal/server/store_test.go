package server

import (
	"fmt"
	"math"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/blis"
	"ldgemm/internal/ldstore"
	"ldgemm/internal/popsim"
)

// storeServers builds one dataset and two servers over it — one backed by
// a tile store, one computing on the fly — so tests can compare the two
// paths request for request.
func storeServers(t *testing.T, stat ldstore.Stat) (plain, stored *httptest.Server, g *bitmat.Matrix) {
	t.Helper()
	gm, err := popsim.Mosaic(120, 200, popsim.MosaicConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "srv.ldts")
	if _, err := ldstore.BuildFile(path, gm, ldstore.BuildOptions{TileSize: 32, Stat: stat}); err != nil {
		t.Fatalf("BuildFile: %v", err)
	}
	st, err := ldstore.Open(path, ldstore.Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { st.Close() })
	cfg := Config{MaxRegionSNPs: 64, MaxTopK: 50, Threads: 2}
	plain = httptest.NewServer(New(gm, cfg))
	t.Cleanup(plain.Close)
	cfg.Store = st
	stored = httptest.NewServer(New(gm, cfg))
	t.Cleanup(stored.Close)
	return plain, stored, gm
}

// TestStoreRegionBitIdentical is the headline acceptance test: for every
// measure the store holds, the store-backed /api/ld/region response must
// be bit-for-bit identical to the on-the-fly response, and a repeat of
// the same (now warm-cached) query must run zero kernel invocations.
func TestStoreRegionBitIdentical(t *testing.T) {
	for _, tc := range []struct {
		stat    ldstore.Stat
		measure string
	}{{ldstore.StatR2, "r2"}, {ldstore.StatD, "d"}, {ldstore.StatDPrime, "dprime"}} {
		t.Run(tc.measure, func(t *testing.T) {
			plain, stored, _ := storeServers(t, tc.stat)
			url := fmt.Sprintf("/api/ld/region?start=13&end=70&measure=%s", tc.measure)
			var want, got RegionResponse
			if code := getJSON(t, plain.URL+url, &want); code != 200 {
				t.Fatalf("plain status %d", code)
			}
			if code := getJSON(t, stored.URL+url, &got); code != 200 {
				t.Fatalf("stored status %d", code)
			}
			if len(got.Values) != len(want.Values) {
				t.Fatalf("row counts %d vs %d", len(got.Values), len(want.Values))
			}
			for i := range want.Values {
				for j := range want.Values[i] {
					w, g := want.Values[i][j], got.Values[i][j]
					if math.Float64bits(w) != math.Float64bits(g) {
						t.Fatalf("(%d,%d): store %v, compute %v", i, j, g, w)
					}
				}
			}

			// Warm repeat: all tiles for the window are cached now, so the
			// request must finish without a single kernel-driver call and
			// with only cache hits on the store side.
			kern := blis.ReadStats()
			st := ldstore.ReadStats()
			var again RegionResponse
			if code := getJSON(t, stored.URL+url, &again); code != 200 {
				t.Fatalf("warm status %d", code)
			}
			if d := blis.ReadStats().Calls - kern.Calls; d != 0 {
				t.Fatalf("warm store-backed region ran %d kernel calls", d)
			}
			after := ldstore.ReadStats()
			if after.CacheHits == st.CacheHits {
				t.Fatal("warm region made no cache hits")
			}
			if after.TilesRead != st.TilesRead {
				t.Fatalf("warm region re-read %d tiles from disk", after.TilesRead-st.TilesRead)
			}
		})
	}
}

// TestStorePairAndTop checks the other two fast paths: pair responses
// match the plain server to rounding (the stored statistic is exact; the
// others are recomputed identically), and the store-backed top list finds
// the same leading pairs with zero kernel calls.
func TestStorePairAndTop(t *testing.T) {
	plain, stored, _ := storeServers(t, ldstore.StatR2)

	var wantPair, gotPair PairResponse
	if code := getJSON(t, plain.URL+"/api/ld?i=11&j=87", &wantPair); code != 200 {
		t.Fatalf("plain pair status %d", code)
	}
	kern := blis.ReadStats()
	if code := getJSON(t, stored.URL+"/api/ld?i=11&j=87", &gotPair); code != 200 {
		t.Fatalf("stored pair status %d", code)
	}
	if d := blis.ReadStats().Calls - kern.Calls; d != 0 {
		t.Fatalf("store-backed pair ran %d kernel calls", d)
	}
	if math.Abs(gotPair.R2-wantPair.R2) > 1e-12 || gotPair.PAB != wantPair.PAB ||
		gotPair.PA != wantPair.PA || gotPair.PB != wantPair.PB {
		t.Fatalf("pair mismatch: %+v vs %+v", gotPair, wantPair)
	}

	var wantTop, gotTop TopResponse
	if code := getJSON(t, plain.URL+"/api/ld/top?k=10", &wantTop); code != 200 {
		t.Fatalf("plain top status %d", code)
	}
	kern = blis.ReadStats()
	if code := getJSON(t, stored.URL+"/api/ld/top?k=10", &gotTop); code != 200 {
		t.Fatalf("stored top status %d", code)
	}
	if d := blis.ReadStats().Calls - kern.Calls; d != 0 {
		t.Fatalf("store-backed top ran %d kernel calls", d)
	}
	if len(gotTop.Pairs) != 10 {
		t.Fatalf("store top returned %d pairs", len(gotTop.Pairs))
	}
	// Same strongest pairs in the same order (values can differ in the
	// last ulp: the significance stream uses the fast epilogue).
	for i, w := range wantTop.Pairs {
		g := gotTop.Pairs[i]
		if g.I != w.I || g.J != w.J || math.Abs(g.R2-w.R2) > 1e-12 {
			t.Fatalf("top[%d]: store (%d,%d,%v), compute (%d,%d,%v)", i, g.I, g.J, g.R2, w.I, w.J, w.R2)
		}
	}
}

// TestStoreMeasureMismatchFallsBack asks a D-kind store for r²: the fast
// path must decline and the computed response must equal the plain one.
func TestStoreMeasureMismatchFallsBack(t *testing.T) {
	plain, stored, _ := storeServers(t, ldstore.StatD)
	url := "/api/ld/region?start=0&end=40&measure=r2"
	var want, got RegionResponse
	if code := getJSON(t, plain.URL+url, &want); code != 200 {
		t.Fatalf("plain status %d", code)
	}
	if code := getJSON(t, stored.URL+url, &got); code != 200 {
		t.Fatalf("stored status %d", code)
	}
	for i := range want.Values {
		for j := range want.Values[i] {
			if math.Float64bits(want.Values[i][j]) != math.Float64bits(got.Values[i][j]) {
				t.Fatalf("fallback differs at (%d,%d)", i, j)
			}
		}
	}
}

// TestStoreFingerprintMismatchIgnored gives New a store built from a
// different dataset: it must be dropped, leaving every endpoint on the
// compute path and /api/info reporting no store.
func TestStoreFingerprintMismatchIgnored(t *testing.T) {
	g, err := popsim.Mosaic(60, 80, popsim.MosaicConfig{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	other, err := popsim.Mosaic(60, 80, popsim.MosaicConfig{Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "other.ldts")
	if _, err := ldstore.BuildFile(path, other, ldstore.BuildOptions{TileSize: 16}); err != nil {
		t.Fatal(err)
	}
	st, err := ldstore.Open(path, ldstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ts := httptest.NewServer(New(g, Config{Store: st}))
	defer ts.Close()
	var info InfoResponse
	if code := getJSON(t, ts.URL+"/api/info", &info); code != 200 {
		t.Fatalf("status %d", code)
	}
	if info.StoreLoaded {
		t.Fatal("mismatched store reported as loaded")
	}
}

// TestStoreInfoAndVars checks the observable store surface: /api/info
// store fields and the /debug/vars store counters.
func TestStoreInfoAndVars(t *testing.T) {
	_, stored, _ := storeServers(t, ldstore.StatR2)
	var info InfoResponse
	if code := getJSON(t, stored.URL+"/api/info", &info); code != 200 {
		t.Fatalf("status %d", code)
	}
	if !info.StoreLoaded || info.StoreStat != "r2" {
		t.Fatalf("info %+v", info)
	}
	if code := getJSON(t, stored.URL+"/api/ld/region?start=0&end=30", nil); code != 200 {
		t.Fatalf("region status %d", code)
	}
	var vars struct {
		StoreServed int `json:"store_served"`
		Store       struct {
			TilesRead   uint64 `json:"tiles_read"`
			BytesServed uint64 `json:"bytes_served"`
		} `json:"store"`
	}
	if code := getJSON(t, stored.URL+"/debug/vars", &vars); code != 200 {
		t.Fatalf("vars status %d", code)
	}
	if vars.StoreServed == 0 {
		t.Fatalf("store_served not incremented: %+v", vars)
	}
	if vars.Store.TilesRead == 0 || vars.Store.BytesServed == 0 {
		t.Fatalf("store counters empty: %+v", vars)
	}
}
