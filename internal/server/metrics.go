package server

import (
	"expvar"
	"fmt"
	"net/http"
	"time"

	"ldgemm/internal/blis"
	"ldgemm/internal/ldsparse"
	"ldgemm/internal/ldstore"
)

// metrics is the per-Server ops surface, served on /debug/vars. The
// counters are expvar vars held in a private map rather than published to
// the process-global expvar registry, so many Servers (tests, multi-tenant
// embedding) can coexist without duplicate-name panics.
//
// Exposed names:
//
//	requests        per-endpoint request counts (by URL path)
//	statuses        response counts by HTTP status code
//	latency_ns      per-endpoint cumulative handling time, nanoseconds
//	in_flight       heavy requests currently holding a semaphore slot
//	shed            requests rejected with 503 by the in-flight cap
//	cancelled       compute requests abandoned by the client (499)
//	timed_out       compute requests that hit the deadline (504)
//	uptime_seconds  seconds since the Server was constructed
//	blis            cumulative kernel-driver counters: calls, cancelled,
//	                cells, nanos, kernel_gcells_per_sec (mean giga-cells
//	                of C×k work per second), kernel_variant and
//	                popcount_strategy (what the last driver call
//	                dispatched to), popcounts_avoided (POPCNT
//	                invocations the batched CSA/SIMD folds saved vs the
//	                scalar kernel), arena_gets, arena_misses,
//	                arena_hit_rate, epilogue_tiles (register tiles
//	                converted by the fused epilogue), epilogue_nanos
//	                (wall time inside the fused hook), and
//	                fused_bytes_avoided (dense count-matrix bytes the
//	                fused calls never materialized), panels_read /
//	                panel_bytes_read (out-of-core I/O panels fetched),
//	                prefetch_stall_nanos (compute time lost waiting on
//	                panel I/O), and resume_count (builder runs restarted
//	                from a checkpoint)
//	shard           owned row range {row_start, row_end} (cluster shards)
//	store_served    requests answered from the tile store
//	store_fallbacks requests that hit a store error and recomputed
//	store           cumulative tile-store counters: tiles_read, bytes_read,
//	                cache_hits, cache_misses, cache_hit_rate, evictions,
//	                bytes_served
//	sparse_served   requests answered by the sparse operators
//	sparse          cumulative sparse-store counters: tiles_read,
//	                bytes_read, cache_hits, cache_misses, cache_hit_rate,
//	                evictions, bytes_served, matvecs, matvec_nanos,
//	                scores, entries_visited
type metrics struct {
	start          time.Time
	root           *expvar.Map
	requests       *expvar.Map
	statuses       *expvar.Map
	latency        *expvar.Map
	inFlight       expvar.Int
	shed           expvar.Int
	cancelled      expvar.Int
	timedOut       expvar.Int
	storeServed    expvar.Int
	storeFallbacks expvar.Int
	sparseServed   expvar.Int
}

func newMetrics() *metrics {
	m := &metrics{
		start:    time.Now(),
		root:     new(expvar.Map).Init(),
		requests: new(expvar.Map).Init(),
		statuses: new(expvar.Map).Init(),
		latency:  new(expvar.Map).Init(),
	}
	m.root.Set("requests", m.requests)
	m.root.Set("statuses", m.statuses)
	m.root.Set("latency_ns", m.latency)
	m.root.Set("in_flight", &m.inFlight)
	m.root.Set("shed", &m.shed)
	m.root.Set("cancelled", &m.cancelled)
	m.root.Set("timed_out", &m.timedOut)
	m.root.Set("uptime_seconds", expvar.Func(func() any {
		return time.Since(m.start).Seconds()
	}))
	m.root.Set("store_served", &m.storeServed)
	m.root.Set("store_fallbacks", &m.storeFallbacks)
	m.root.Set("sparse_served", &m.sparseServed)
	m.root.Set("sparse", expvar.Func(func() any {
		s := ldsparse.ReadStats()
		return map[string]any{
			"tiles_read":      s.TilesRead,
			"bytes_read":      s.BytesRead,
			"cache_hits":      s.CacheHits,
			"cache_misses":    s.CacheMisses,
			"cache_hit_rate":  s.HitRate(),
			"evictions":       s.Evictions,
			"bytes_served":    s.BytesServed,
			"matvecs":         s.MatVecs,
			"matvec_nanos":    s.MatVecNanos,
			"scores":          s.Scores,
			"entries_visited": s.EntriesVisited,
		}
	}))
	m.root.Set("store", expvar.Func(func() any {
		s := ldstore.ReadStats()
		return map[string]any{
			"tiles_read":     s.TilesRead,
			"bytes_read":     s.BytesRead,
			"cache_hits":     s.CacheHits,
			"cache_misses":   s.CacheMisses,
			"cache_hit_rate": s.HitRate(),
			"evictions":      s.Evictions,
			"bytes_served":   s.BytesServed,
		}
	}))
	m.root.Set("blis", expvar.Func(func() any {
		s := blis.ReadStats()
		return map[string]any{
			"calls":                 s.Calls,
			"cancelled":             s.Cancelled,
			"cells":                 s.Cells,
			"nanos":                 s.Nanos,
			"kernel_gcells_per_sec": s.CellRate() / 1e9,
			"kernel_variant":        s.Variant,
			"popcount_strategy":     s.Popcount,
			"popcounts_avoided":     s.PopcountsAvoided,
			"arena_gets":            s.ArenaGets,
			"arena_misses":          s.ArenaMisses,
			"arena_hit_rate":        s.ArenaHitRate(),
			"epilogue_tiles":        s.EpilogueTiles,
			"epilogue_nanos":        s.EpilogueNanos,
			"fused_bytes_avoided":   s.EpilogueBytesAvoided,
			"panels_read":           s.PanelsRead,
			"panel_bytes_read":      s.PanelBytesRead,
			"prefetch_stall_nanos":  s.PrefetchStallNanos,
			"resume_count":          s.Resumes,
			"band_panels_skipped":   s.BandPanelsSkipped,
			"band_cells_skipped":    s.BandCellsSkipped,
		}
	}))
	return m
}

// setShard publishes the owned row range on /debug/vars when the server
// runs as a cluster shard, so an operator reading a shard's metrics can
// tell which strip of the partition it serves.
func (m *metrics) setShard(start, end int) {
	if end <= 0 {
		return
	}
	var lo, hi expvar.Int
	lo.Set(int64(start))
	hi.Set(int64(end))
	shard := new(expvar.Map).Init()
	shard.Set("row_start", &lo)
	shard.Set("row_end", &hi)
	m.root.Set("shard", shard)
}

// observe records one finished request.
func (m *metrics) observe(path string, status int, d time.Duration) {
	m.requests.Add(path, 1)
	m.statuses.Add(fmt.Sprintf("%d", status), 1)
	m.latency.Add(path, int64(d))
}

// serveVars writes the metric tree in expvar's JSON format.
func (m *metrics) serveVars(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	fmt.Fprintln(w, m.root.String())
}
