// Package server exposes a loaded genomic dataset over HTTP as a small
// LD query service: per-pair statistics, dense regional matrices,
// strongest associations, pruning, haplotype blocks, and ω scans — the
// query patterns a GWAS browser issues against an LD backend. Heavy
// endpoints are bounded (region width caps, top-K caps) so a single
// request cannot compute an unbounded n² workload.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/blis"
	"ldgemm/internal/core"
	"ldgemm/internal/ldsparse"
	"ldgemm/internal/ldstore"
	"ldgemm/internal/omega"
	"ldgemm/internal/stats"
)

// Config bounds the service.
type Config struct {
	// MaxRegionSNPs caps the width of a dense region request (default 512).
	MaxRegionSNPs int
	// MaxTopK caps the top-pairs list (default 1000).
	MaxTopK int
	// Threads for the LD kernels (default GOMAXPROCS via blis).
	Threads int
	// Blis is the base kernel configuration merged into every request's
	// driver config — typically a loaded tune profile (kernel shape,
	// popcount strategy, cache blocking). Threads and ChunkTiles above
	// override its corresponding fields when non-zero, and the request
	// context is always attached per request.
	Blis blis.Config
	// Epilogue selects how the LD handlers convert counts to measures:
	// fused into the blocked driver (the default — no dense count matrix,
	// conversion parallelized across the kernel workers) or the legacy
	// split sweep (core.EpilogueSplit), the ldserver -epilogue escape
	// hatch.
	Epilogue core.EpilogueMode
	// ChunkTiles is the parallel driver's work-queue granularity
	// (blis.Config.ChunkTiles; default 0 = derived).
	ChunkTiles int
	// RequestTimeout bounds each request's total handling time; past it
	// the request context is cancelled, the kernel drivers abort at their
	// next phase boundary, and the client gets 504. 0 disables.
	RequestTimeout time.Duration
	// MaxInFlight caps concurrently-executing heavy (LD-computing)
	// requests across the region/top/prune/blocks/omega endpoints;
	// excess requests are shed with 503 + Retry-After. 0 disables.
	MaxInFlight int
	// RetryAfter is the backoff hint attached to shed requests
	// (default 1s).
	RetryAfter time.Duration
	// AccessLog, when non-nil, receives one structured line per request.
	AccessLog *slog.Logger
	// ShardStart/ShardEnd, when ShardEnd > 0, declare this server a
	// cluster shard owning the SNP row range [ShardStart, ShardEnd): it
	// still loads the full matrix (cross-range pairs need both SNP
	// vectors) but answers /api/ld, /api/ld/region, and /api/ld/top only
	// for pairs whose smaller index it owns, rejecting misrouted queries
	// with 421 so a partition mismatch surfaces instead of double-serving.
	// The whole-matrix analysis endpoints (prune/blocks/omega) are
	// unaffected. Both zero (the default) means unsharded.
	ShardStart, ShardEnd int
	// Store, when non-nil, is a precomputed tile store for the dataset:
	// /api/ld, /api/ld/region, and /api/ld/top requests whose statistic
	// matches the store's are served from tiles instead of recomputed, and
	// fall back to on-the-fly compute on any store error. A store whose
	// fingerprint does not match the matrix is silently ignored (cmd/ldserver
	// rejects the mismatch loudly before it gets here).
	Store *ldstore.Store
	// Sparse, when non-nil, is a threshold-pruned sparse LD store for the
	// dataset, enabling the POST /api/sparse/matvec and /api/sparse/score
	// operators. Fingerprint-gated like Store: a mismatch is silently
	// ignored here and rejected loudly by cmd/ldserver.
	Sparse *ldsparse.Store
}

func (c Config) normalize() Config {
	if c.MaxRegionSNPs == 0 {
		c.MaxRegionSNPs = 512
	}
	if c.MaxTopK == 0 {
		c.MaxTopK = 1000
	}
	if c.RetryAfter == 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// Server serves LD queries over one genomic matrix.
type Server struct {
	g       *bitmat.Matrix
	cfg     Config
	mux     *http.ServeMux
	handler http.Handler // mux wrapped in the lifecycle middleware
	metrics *metrics
	store   *ldstore.Store  // nil without a (fingerprint-matched) tile store
	sparse  *ldsparse.Store // nil without a (fingerprint-matched) sparse store
	// freqs, poly, and fingerprint are precomputed at construction so
	// /api/info and /api/freq never rescan the matrix per request.
	freqs       []float64
	poly        int
	fingerprint string
	// ready flips once construction — matrix scan plus optional store
	// wiring — has finished; /readyz reports 503 until then.
	ready atomic.Bool
}

// New builds a Server for the matrix.
func New(g *bitmat.Matrix, cfg Config) *Server {
	s := &Server{
		g: g, cfg: cfg.normalize(),
		freqs:       core.AlleleFrequencies(g),
		fingerprint: fmt.Sprintf("%016x", ldstore.Fingerprint(g)),
		metrics:     newMetrics(),
	}
	if s.cfg.ShardEnd > g.SNPs {
		s.cfg.ShardEnd = g.SNPs
	}
	if s.cfg.ShardStart < 0 || s.cfg.ShardEnd <= s.cfg.ShardStart {
		s.cfg.ShardStart, s.cfg.ShardEnd = 0, 0 // degenerate range: unsharded
	}
	if cfg.Store != nil && cfg.Store.Fingerprint() == ldstore.Fingerprint(g) {
		s.store = cfg.Store
	}
	if cfg.Sparse != nil && cfg.Sparse.Fingerprint() == ldstore.Fingerprint(g) {
		s.sparse = cfg.Sparse
	}
	for i := 0; i < g.SNPs; i++ {
		if c := g.DerivedCount(i); c > 0 && c < g.Samples {
			s.poly++
		}
	}
	s.metrics.setShard(s.cfg.ShardStart, s.cfg.ShardEnd)
	heavy := inFlightLimiter(s.cfg.MaxInFlight, s.cfg.RetryAfter, s.metrics)
	mux := http.NewServeMux()
	// Probes are registered on the bare mux, never behind the in-flight
	// limiter: a saturated server sheds work but keeps answering its
	// liveness and readiness checks, so load never reads as death.
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("/", handleFallback)
	mux.HandleFunc("GET /api/info", s.handleInfo)
	mux.HandleFunc("GET /api/freq", s.handleFreq)
	mux.HandleFunc("GET /api/ld", s.handlePair)
	mux.Handle("GET /api/ld/region", heavy(http.HandlerFunc(s.handleRegion)))
	mux.Handle("GET /api/ld/top", heavy(http.HandlerFunc(s.handleTop)))
	mux.Handle("GET /api/prune", heavy(http.HandlerFunc(s.handlePrune)))
	mux.Handle("GET /api/blocks", heavy(http.HandlerFunc(s.handleBlocks)))
	mux.Handle("GET /api/omega", heavy(http.HandlerFunc(s.handleOmega)))
	// The sparse operators are POST (the vector rides in the body). The
	// methodless registrations catch every other verb with a proper 405 +
	// Allow — the bare "/" catch-all would otherwise 404 a GET here.
	mux.Handle("POST /api/sparse/matvec", heavy(http.HandlerFunc(s.handleSparseMatVec)))
	mux.Handle("POST /api/sparse/score", heavy(http.HandlerFunc(s.handleSparseScore)))
	mux.HandleFunc("/api/sparse/matvec", postOnly)
	mux.HandleFunc("/api/sparse/score", postOnly)
	mux.HandleFunc("GET /debug/vars", s.metrics.serveVars)
	s.mux = mux
	s.handler = observe(s.metrics, s.cfg.AccessLog, withDeadline(s.cfg.RequestTimeout, mux))
	s.ready.Store(true)
	return s
}

// sharded reports whether this server owns only a row strip.
func (s *Server) sharded() bool { return s.cfg.ShardEnd > 0 }

// ownsRow reports whether this server answers for pairs whose smaller
// index is i.
func (s *Server) ownsRow(i int) bool {
	return !s.sharded() || (i >= s.cfg.ShardStart && i < s.cfg.ShardEnd)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]string{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		httpError(w, http.StatusServiceUnavailable, "loading")
		return
	}
	writeJSON(w, map[string]any{
		"status": "ready", "snps": s.g.SNPs,
		"store_loaded": s.store != nil, "sparse_loaded": s.sparse != nil,
	})
}

// handleFallback is the mux catch-all, keeping even router misses on the
// JSON error contract: unknown paths get a JSON 404 and non-GET methods a
// JSON 405, so coordinator-side response classification never needs to
// parse plain-text bodies.
func handleFallback(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		httpError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	httpError(w, http.StatusNotFound, "no such endpoint %s", r.URL.Path)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.handler.ServeHTTP(w, r) }

// VarsHandler exposes the /debug/vars metric surface for mounting on a
// separate admin listener.
func (s *Server) VarsHandler() http.Handler { return http.HandlerFunc(s.metrics.serveVars) }

// blisConfig is the per-request kernel configuration: the request context
// flows into the parallel driver so an abandoned or timed-out request
// stops the GEMM at its next phase boundary. Requests served concurrently
// share packing storage through the blis arena pool, so the hot
// region/prune/blocks endpoints do not reallocate pack buffers.
func (s *Server) blisConfig(ctx context.Context) blis.Config {
	cfg := s.cfg.Blis
	if s.cfg.Threads != 0 {
		cfg.Threads = s.cfg.Threads
	}
	if s.cfg.ChunkTiles != 0 {
		cfg.ChunkTiles = s.cfg.ChunkTiles
	}
	cfg.Ctx = ctx
	return cfg
}

// ldOptions is the per-request core configuration shared by the heavy
// handlers: the kernel config plus the server's epilogue mode.
func (s *Server) ldOptions(ctx context.Context) core.Options {
	return core.Options{Blis: s.blisConfig(ctx), Epilogue: s.cfg.Epilogue}
}

// statusClientClosedRequest is nginx's convention for "the client went
// away before we finished"; the response is never delivered, but the
// status keeps logs and metrics honest.
const statusClientClosedRequest = 499

// computeError answers a failed LD computation: requests abandoned by the
// client map to 499, deadline hits to 504 Gateway Timeout, anything else
// — parameters were already validated — is an internal error (500).
func (s *Server) computeError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, context.Canceled):
		s.metrics.cancelled.Add(1)
		httpError(w, statusClientClosedRequest, "request cancelled: %v", err)
	case errors.Is(err, context.DeadlineExceeded):
		s.metrics.timedOut.Add(1)
		httpError(w, http.StatusGatewayTimeout, "deadline exceeded: %v", err)
	default:
		httpError(w, http.StatusInternalServerError, "%v", err)
	}
}

// writeJSON emits a 200 response with the JSON payload. The payload is
// marshalled before any byte is written, so an encoding failure still
// produces a well-formed JSON error response instead of a truncated body
// with a 200 status already on the wire.
func writeJSON(w http.ResponseWriter, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "encoding response: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(b, '\n'))
}

// httpError emits a JSON error payload.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// intParam parses a required integer query parameter.
func intParam(r *http.Request, name string) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return 0, fmt.Errorf("missing parameter %q", name)
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %v", name, err)
	}
	return n, nil
}

// intParamDefault parses an optional integer query parameter.
func intParamDefault(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %v", name, err)
	}
	return n, nil
}

// floatParamDefault parses an optional float query parameter.
func floatParamDefault(r *http.Request, name string, def float64) (float64, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %v", name, err)
	}
	return f, nil
}

// rowsParam parses the optional rows=a:b query parameter restricting a
// scatter-gathered request to the row window [a, b).
func rowsParam(r *http.Request) (lo, hi int, ok bool, err error) {
	v := r.URL.Query().Get("rows")
	if v == "" {
		return 0, 0, false, nil
	}
	a, b, found := strings.Cut(v, ":")
	if !found {
		return 0, 0, false, fmt.Errorf("parameter \"rows\" must be a:b, got %q", v)
	}
	if lo, err = strconv.Atoi(a); err != nil {
		return 0, 0, false, fmt.Errorf("parameter \"rows\": %v", err)
	}
	if hi, err = strconv.Atoi(b); err != nil {
		return 0, 0, false, fmt.Errorf("parameter \"rows\": %v", err)
	}
	return lo, hi, true, nil
}

// misdirected answers a query for rows this shard does not own: 421 tells
// the coordinator its partition map disagrees with the shard's config,
// which must surface as an error rather than silently double-serving.
func (s *Server) misdirected(w http.ResponseWriter, what string) {
	httpError(w, http.StatusMisdirectedRequest,
		"shard owns rows [%d,%d); %s is outside it", s.cfg.ShardStart, s.cfg.ShardEnd, what)
}

func (s *Server) checkSNP(name string, i int) error {
	if i < 0 || i >= s.g.SNPs {
		return fmt.Errorf("%s=%d outside 0..%d", name, i, s.g.SNPs-1)
	}
	return nil
}

// InfoResponse is the /api/info payload.
type InfoResponse struct {
	SNPs          int     `json:"snps"`
	Samples       int     `json:"samples"`
	MeanFrequency float64 `json:"mean_derived_frequency"`
	Polymorphic   int     `json:"polymorphic_snps"`
	// Fingerprint identifies the loaded dataset (the same FNV-1a hash the
	// tile store binds to). Cluster coordinators use it to verify that
	// every replica of a shard serves identical bytes and to key the
	// result cache: responses are immutable for a fixed fingerprint.
	Fingerprint string `json:"fingerprint"`
	// StoreLoaded reports whether a fingerprint-matched tile store backs
	// the LD endpoints; StoreStat names its statistic when loaded.
	StoreLoaded bool   `json:"store_loaded"`
	StoreStat   string `json:"store_stat,omitempty"`
	// Sparse summarizes the loaded sparse store (statistic, threshold,
	// band, nnz) when the /api/sparse endpoints are live.
	Sparse *SparseInfo `json:"sparse,omitempty"`
	// Shard advertises the owned row range when this server is a cluster
	// shard; the coordinator assembles its partition map from it.
	Shard *ShardRange `json:"shard,omitempty"`
}

// ShardRange is the half-open SNP row range a cluster shard owns.
type ShardRange struct {
	Start int `json:"start"`
	End   int `json:"end"`
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	resp := InfoResponse{
		SNPs: s.g.SNPs, Samples: s.g.Samples,
		MeanFrequency: stats.Mean(s.freqs), Polymorphic: s.poly,
		Fingerprint: s.fingerprint,
	}
	if s.store != nil {
		resp.StoreLoaded = true
		resp.StoreStat = s.store.Stat().String()
	}
	if s.sparse != nil {
		resp.Sparse = sparseInfo(s.sparse)
	}
	if s.sharded() {
		resp.Shard = &ShardRange{Start: s.cfg.ShardStart, End: s.cfg.ShardEnd}
	}
	writeJSON(w, resp)
}

// FreqResponse is the /api/freq payload.
type FreqResponse struct {
	SNP       int     `json:"snp"`
	Frequency float64 `json:"derived_frequency"`
	Count     int     `json:"derived_count"`
}

func (s *Server) handleFreq(w http.ResponseWriter, r *http.Request) {
	i, err := intParam(r, "i")
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := s.checkSNP("i", i); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, FreqResponse{SNP: i, Frequency: s.freqs[i], Count: s.g.DerivedCount(i)})
}

// PairResponse is the /api/ld payload.
type PairResponse struct {
	I      int     `json:"i"`
	J      int     `json:"j"`
	PAB    float64 `json:"p_ab"`
	PA     float64 `json:"p_a"`
	PB     float64 `json:"p_b"`
	D      float64 `json:"d"`
	R2     float64 `json:"r2"`
	DPrime float64 `json:"d_prime"`
	Chi2   float64 `json:"chi2"`
	PValue float64 `json:"p_value"`
}

func (s *Server) handlePair(w http.ResponseWriter, r *http.Request) {
	i, err := intParam(r, "i")
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	j, err := intParam(r, "j")
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := s.checkSNP("i", i); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := s.checkSNP("j", j); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if o := min(i, j); !s.ownsRow(o) {
		s.misdirected(w, fmt.Sprintf("pair (%d,%d) owned by row %d", i, j, o))
		return
	}
	p := core.PairLD(s.g, i, j)
	// With a tile store loaded, the stored statistic is authoritative: it
	// overrides the per-pair recomputation so /api/ld answers are
	// bit-identical to the corresponding /api/ld/region cells.
	if s.store != nil {
		if v, err := s.store.At(i, j); err == nil {
			switch s.store.Stat() {
			case ldstore.StatR2:
				p.R2 = v
			case ldstore.StatD:
				p.D = v
			case ldstore.StatDPrime:
				p.DPrime = v
			}
			s.metrics.storeServed.Add(1)
		} else {
			s.metrics.storeFallbacks.Add(1)
		}
	}
	chi2 := p.Chi2(s.g.Samples)
	pv, err := stats.ChiSquarePValue(chi2, 1)
	if err != nil {
		pv = 0
	}
	writeJSON(w, PairResponse{
		I: i, J: j, PAB: p.PAB, PA: p.PA, PB: p.PB,
		D: p.D, R2: p.R2, DPrime: p.DPrime, Chi2: chi2, PValue: pv,
	})
}

// RegionResponse is the /api/ld/region payload: a dense row-major matrix
// for SNPs [Start, End). With a rows=a:b window (a cluster shard serving
// its strip of a scatter-gathered request) Values holds only rows
// [RowStart, RowEnd) × columns [Start, End). Partial is set only by a
// cluster coordinator whose gather lost one or more shards; the missing
// rows are null.
type RegionResponse struct {
	Start    int         `json:"start"`
	End      int         `json:"end"`
	Measure  string      `json:"measure"`
	RowStart int         `json:"row_start,omitempty"`
	RowEnd   int         `json:"row_end,omitempty"`
	Partial  bool        `json:"partial,omitempty"`
	Values   [][]float64 `json:"values"`
}

func (s *Server) handleRegion(w http.ResponseWriter, r *http.Request) {
	start, err := intParam(r, "start")
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	end, err := intParam(r, "end")
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if start < 0 || end <= start || end > s.g.SNPs {
		httpError(w, http.StatusBadRequest, "invalid region [%d,%d) of %d SNPs", start, end, s.g.SNPs)
		return
	}
	if end-start > s.cfg.MaxRegionSNPs {
		httpError(w, http.StatusUnprocessableEntity,
			"region width %d exceeds cap %d", end-start, s.cfg.MaxRegionSNPs)
		return
	}
	measure := r.URL.Query().Get("measure")
	var meas core.Measure
	switch measure {
	case "", "r2":
		measure, meas = "r2", core.MeasureR2
	case "d":
		meas = core.MeasureD
	case "dprime":
		meas = core.MeasureDPrime
	default:
		httpError(w, http.StatusBadRequest, "unknown measure %q", measure)
		return
	}
	// Resolve the row window: a rows=a:b parameter (or this shard's owned
	// strip) narrows the output to rows [rlo, rhi) of the region. A window
	// covering every region row collapses to the plain square path, so a
	// one-shard "cluster" stays bit-identical to a single node.
	rlo, rhi, windowed, err := rowsParam(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if windowed {
		if rlo < start || rhi <= rlo || rhi > end {
			httpError(w, http.StatusBadRequest,
				"rows [%d,%d) outside region [%d,%d)", rlo, rhi, start, end)
			return
		}
		if s.sharded() && (rlo < s.cfg.ShardStart || rhi > s.cfg.ShardEnd) {
			s.misdirected(w, fmt.Sprintf("rows [%d,%d)", rlo, rhi))
			return
		}
	} else if s.sharded() {
		rlo, rhi = max(start, s.cfg.ShardStart), min(end, s.cfg.ShardEnd)
		if rlo >= rhi {
			s.misdirected(w, fmt.Sprintf("region [%d,%d)", start, end))
			return
		}
		windowed = true
	} else {
		rlo, rhi = start, end
	}
	if rlo == start && rhi == end {
		windowed = false
	}
	wdt := end - start
	// Store fast path: a tile store holding this statistic serves the
	// window from cached tiles — zero kernel invocations, and (because the
	// builder forces the Exact epilogue) bit-identical to the dense
	// compute below. Store errors fall through to on-the-fly compute.
	var flat []float64
	if s.store != nil && s.store.Stat().Measure() == meas {
		var vals []float64
		var serr error
		if windowed {
			vals, serr = s.store.Rect(rlo, rhi, start, end)
		} else {
			vals, serr = s.store.Region(start, end)
		}
		if serr == nil {
			flat = vals
			s.metrics.storeServed.Add(1)
		} else {
			s.metrics.storeFallbacks.Add(1)
		}
	}
	if flat == nil {
		opt := s.ldOptions(r.Context())
		opt.Measures = meas
		var res *core.Result
		var cerr error
		if windowed {
			// Rectangular strip: rows [rlo, rhi) against every region
			// column. Per-cell values are a pure function of pair counts
			// and the two SNP frequencies, so the strip is bit-identical
			// to the same rows of the square compute below.
			res, cerr = core.Cross(s.g.Slice(rlo, rhi), s.g.Slice(start, end), opt)
		} else {
			res, cerr = core.Matrix(s.g.Slice(start, end), opt)
		}
		if cerr != nil {
			s.computeError(w, r, cerr)
			return
		}
		switch meas {
		case core.MeasureR2:
			flat = res.R2
		case core.MeasureD:
			flat = res.D
		default:
			flat = res.DPrime
		}
	}
	resp := RegionResponse{Start: start, End: end, Measure: measure}
	if windowed {
		resp.RowStart, resp.RowEnd = rlo, rhi
	}
	resp.Values = make([][]float64, rhi-rlo)
	for i := range resp.Values {
		resp.Values[i] = flat[i*wdt : (i+1)*wdt]
	}
	writeJSON(w, resp)
}

// TopResponse is the /api/ld/top payload. Partial is set only by a
// cluster coordinator whose gather lost one or more shards: the ranking
// is then missing that strip's pairs.
type TopResponse struct {
	K       int            `json:"k"`
	Partial bool           `json:"partial,omitempty"`
	Pairs   []PairResponse `json:"pairs"`
}

func (s *Server) handleTop(w http.ResponseWriter, r *http.Request) {
	k, err := intParamDefault(r, "k", 20)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if k < 1 || k > s.cfg.MaxTopK {
		httpError(w, http.StatusBadRequest, "k=%d outside 1..%d", k, s.cfg.MaxTopK)
		return
	}
	// Resolve the row window: rows=a:b (or this shard's owned strip)
	// restricts the ranking to pairs whose smaller index lies in [rlo,
	// rhi) — the cluster ownership rule, which partitions the pair set
	// disjointly across shards.
	rlo, rhi, windowed, err := rowsParam(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if windowed {
		if rlo < 0 || rhi <= rlo || rhi > s.g.SNPs {
			httpError(w, http.StatusBadRequest,
				"rows [%d,%d) outside 0..%d", rlo, rhi, s.g.SNPs)
			return
		}
		if s.sharded() && (rlo < s.cfg.ShardStart || rhi > s.cfg.ShardEnd) {
			s.misdirected(w, fmt.Sprintf("rows [%d,%d)", rlo, rhi))
			return
		}
	} else if s.sharded() {
		rlo, rhi, windowed = s.cfg.ShardStart, s.cfg.ShardEnd, true
	}
	if windowed && rlo == 0 && rhi == s.g.SNPs {
		windowed = false
	}
	// Store fast path: an r² tile store already knows the strongest pairs
	// (per-tile maxima prune the scan), so the whole-matrix significance
	// stream — the most expensive query the server owns — is skipped.
	// Per-pair details are recomputed from the two SNP vectors, which
	// involves no kernel driver.
	if s.store != nil && s.store.Stat() == ldstore.StatR2 {
		var top []ldstore.TopPair
		var err error
		if windowed {
			top, err = s.store.TopRange(k, rlo, rhi)
		} else {
			top, err = s.store.Top(k)
		}
		if err == nil {
			out := TopResponse{K: k}
			for _, p := range top {
				full := core.PairLD(s.g, p.I, p.J)
				full.R2 = p.Value
				chi2 := full.Chi2(s.g.Samples)
				pv, perr := stats.ChiSquarePValue(chi2, 1)
				if perr != nil {
					pv = 0
				}
				out.Pairs = append(out.Pairs, PairResponse{
					I: p.I, J: p.J, PAB: full.PAB, PA: full.PA, PB: full.PB,
					D: full.D, R2: full.R2, DPrime: full.DPrime, Chi2: chi2, PValue: pv,
				})
			}
			s.metrics.storeServed.Add(1)
			writeJSON(w, out)
			return
		}
		s.metrics.storeFallbacks.Add(1)
	}
	sopt := core.SignificanceOptions{
		Alpha: 0.999999, AlphaIsPerTest: true, MaxResults: s.cfg.MaxTopK * 4,
		LD: s.ldOptions(r.Context()),
	}
	if windowed {
		sopt.RowStart, sopt.RowEnd = rlo, rhi
	}
	res, err := core.Significance(s.g, sopt)
	if err != nil {
		s.computeError(w, r, err)
		return
	}
	out := TopResponse{K: k}
	for _, p := range res.Pairs {
		if len(out.Pairs) == k {
			break
		}
		full := core.PairLD(s.g, p.I, p.J)
		out.Pairs = append(out.Pairs, PairResponse{
			I: p.I, J: p.J, PAB: full.PAB, PA: full.PA, PB: full.PB,
			D: full.D, R2: full.R2, DPrime: full.DPrime, Chi2: p.Chi2, PValue: p.PValue,
		})
	}
	writeJSON(w, out)
}

// PruneResponse is the /api/prune payload.
type PruneResponse struct {
	Kept    []int `json:"kept"`
	Removed []int `json:"removed"`
}

func (s *Server) handlePrune(w http.ResponseWriter, r *http.Request) {
	window, err := intParamDefault(r, "window", 50)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	step, err := intParamDefault(r, "step", 5)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	r2, err := floatParamDefault(r, "r2", 0.5)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Parameter errors are the client's fault (400); once past this
	// check, core failures are classified by computeError.
	if window < 2 || step < 1 || step > window {
		httpError(w, http.StatusBadRequest, "invalid window/step %d/%d", window, step)
		return
	}
	if r2 <= 0 || r2 > 1 {
		httpError(w, http.StatusBadRequest, "r2 threshold %v outside (0,1]", r2)
		return
	}
	res, err := core.Prune(s.g, core.PruneOptions{
		WindowSNPs: window, StepSNPs: step, R2Threshold: r2,
		LD: s.ldOptions(r.Context()),
	})
	if err != nil {
		s.computeError(w, r, err)
		return
	}
	writeJSON(w, PruneResponse{Kept: res.Kept, Removed: res.Removed})
}

// BlocksResponse is the /api/blocks payload.
type BlocksResponse struct {
	Blocks []core.Block `json:"blocks"`
}

func (s *Server) handleBlocks(w http.ResponseWriter, r *http.Request) {
	dprime, err := floatParamDefault(r, "dprime", 0.8)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	frac, err := floatParamDefault(r, "frac", 0.9)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if dprime <= 0 || dprime > 1 || frac <= 0 || frac > 1 {
		httpError(w, http.StatusBadRequest,
			"dprime %v and frac %v must lie in (0,1]", dprime, frac)
		return
	}
	blocks, err := core.Blocks(s.g, core.BlockOptions{
		DPrimeThreshold: dprime, MinStrongFrac: frac,
		LD: s.ldOptions(r.Context()),
	})
	if err != nil {
		s.computeError(w, r, err)
		return
	}
	writeJSON(w, BlocksResponse{Blocks: blocks})
}

// OmegaResponse is the /api/omega payload. Peak is the grid point with
// the highest ω, seeded from the first point so an all-zero scan still
// reports a real grid position; it is omitted when there are no points.
type OmegaResponse struct {
	Points []omega.Point `json:"points"`
	Peak   *omega.Point  `json:"peak,omitempty"`
}

func (s *Server) handleOmega(w http.ResponseWriter, r *http.Request) {
	grid, err := intParamDefault(r, "grid", 50)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	minEach, err := intParamDefault(r, "min_each", 2)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	maxEach, err := intParamDefault(r, "max_each", 100)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if grid < 1 || minEach < 2 || maxEach < minEach {
		httpError(w, http.StatusBadRequest,
			"invalid scan: grid=%d min_each=%d max_each=%d", grid, minEach, maxEach)
		return
	}
	if s.g.SNPs < 2*minEach {
		httpError(w, http.StatusBadRequest,
			"%d SNPs is too few for min_each=%d", s.g.SNPs, minEach)
		return
	}
	points, err := omega.Scan(s.g, omega.Config{
		GridPoints: grid, MinEach: minEach, MaxEach: maxEach,
		LD: s.ldOptions(r.Context()),
	})
	if err != nil {
		s.computeError(w, r, err)
		return
	}
	resp := OmegaResponse{Points: points}
	if len(points) > 0 {
		// Seed from the first point: an all-nonpositive scan used to
		// report a bogus zero-value peak at position 0.
		peak := points[0]
		for _, p := range points[1:] {
			if p.Omega > peak.Omega {
				peak = p
			}
		}
		resp.Peak = &peak
	}
	writeJSON(w, resp)
}
