package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"ldgemm/internal/ldsparse"
)

// Sparse-tier endpoints: R·v matvec and score-statistic aggregation over
// a threshold-pruned CSR tile store. Both are POST (the vector rides in
// the body), both run behind the heavy-request limiter and the request
// deadline, and both honor the rows=a:b strip window so a cluster
// coordinator can scatter one vector to every shard and concatenate the
// returned segments — MatVecRange's fold order makes the assembled
// vector bit-identical to a single node's.

// MatVecRequest is the /api/sparse/matvec request body.
type MatVecRequest struct {
	X []float64 `json:"x"`
}

// MatVecResponse is the /api/sparse/matvec payload: Y holds output rows
// [RowStart, RowEnd) of R·x (the full range when no window was asked).
type MatVecResponse struct {
	RowStart int       `json:"row_start"`
	RowEnd   int       `json:"row_end"`
	Y        []float64 `json:"y"`
}

// ScoreRequest is the /api/sparse/score request body: per-SNP z-scores.
type ScoreRequest struct {
	Z []float64 `json:"z"`
}

// ScoreResponse is the /api/sparse/score payload: Scores[k] is the
// Σ_j stat(i,j)·z[j]² aggregate for SNP i = RowStart+k.
type ScoreResponse struct {
	RowStart int       `json:"row_start"`
	RowEnd   int       `json:"row_end"`
	Scores   []float64 `json:"scores"`
}

// sparseVector decodes the POST body's vector field and resolves the
// row window shared by both sparse endpoints. A nil return with ok=false
// means the response has already been written.
func (s *Server) sparseVector(w http.ResponseWriter, r *http.Request, dst *[]float64, decode func([]byte) error) (r0, r1 int, ok bool) {
	if s.sparse == nil {
		httpError(w, http.StatusNotFound, "no sparse store loaded")
		return 0, 0, false
	}
	n := s.sparse.SNPs()
	// The vector is ~20 bytes/entry as JSON; 64 bytes/entry of headroom
	// bounds hostile bodies without rejecting any legitimate vector.
	body, err := readBody(r, int64(n)*64+4096)
	if err != nil {
		httpError(w, http.StatusRequestEntityTooLarge, "%v", err)
		return 0, 0, false
	}
	if err := decode(body); err != nil {
		httpError(w, http.StatusBadRequest, "request body: %v", err)
		return 0, 0, false
	}
	if len(*dst) != n {
		httpError(w, http.StatusBadRequest, "vector holds %d entries, dataset has %d SNPs", len(*dst), n)
		return 0, 0, false
	}
	rlo, rhi, windowed, err := rowsParam(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return 0, 0, false
	}
	if windowed {
		if rlo < 0 || rhi <= rlo || rhi > n {
			httpError(w, http.StatusBadRequest, "rows [%d,%d) outside 0..%d", rlo, rhi, n)
			return 0, 0, false
		}
		if s.sharded() && (rlo < s.cfg.ShardStart || rhi > s.cfg.ShardEnd) {
			s.misdirected(w, fmt.Sprintf("rows [%d,%d)", rlo, rhi))
			return 0, 0, false
		}
		return rlo, rhi, true
	}
	if s.sharded() {
		return s.cfg.ShardStart, s.cfg.ShardEnd, true
	}
	return 0, n, true
}

// readBody drains the request body under a hard byte cap.
func readBody(r *http.Request, limit int64) ([]byte, error) {
	defer r.Body.Close()
	b, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, limit))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return nil, fmt.Errorf("request body exceeds %d bytes", limit)
		}
		return nil, err
	}
	return b, nil
}

func (s *Server) handleSparseMatVec(w http.ResponseWriter, r *http.Request) {
	var req MatVecRequest
	r0, r1, ok := s.sparseVector(w, r, &req.X, func(b []byte) error { return json.Unmarshal(b, &req) })
	if !ok {
		return
	}
	y, err := s.sparseCompute(r, func() ([]float64, error) { return s.sparse.MatVecRange(req.X, r0, r1) })
	if err != nil {
		s.computeError(w, r, err)
		return
	}
	s.metrics.sparseServed.Add(1)
	writeJSON(w, MatVecResponse{RowStart: r0, RowEnd: r1, Y: y})
}

func (s *Server) handleSparseScore(w http.ResponseWriter, r *http.Request) {
	var req ScoreRequest
	r0, r1, ok := s.sparseVector(w, r, &req.Z, func(b []byte) error { return json.Unmarshal(b, &req) })
	if !ok {
		return
	}
	scores, err := s.sparseCompute(r, func() ([]float64, error) { return s.sparse.ScoreRange(req.Z, r0, r1) })
	if err != nil {
		s.computeError(w, r, err)
		return
	}
	s.metrics.sparseServed.Add(1)
	writeJSON(w, ScoreResponse{RowStart: r0, RowEnd: r1, Scores: scores})
}

// sparseCompute runs one sparse operator under the request context: a
// cancelled or timed-out request stops waiting (computeError maps the
// context error to 499/504) even though the tile walk itself — bounded
// by store size, not SNP² — finishes in the background.
func (s *Server) sparseCompute(r *http.Request, f func() ([]float64, error)) ([]float64, error) {
	type result struct {
		v   []float64
		err error
	}
	ch := make(chan result, 1)
	go func() {
		v, err := f()
		ch <- result{v, err}
	}()
	select {
	case res := <-ch:
		return res.v, res.err
	case <-r.Context().Done():
		return nil, r.Context().Err()
	}
}

// postOnly answers non-POST requests to a POST-only path.
func postOnly(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Allow", http.MethodPost)
	httpError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
}

// SparseInfo summarizes the loaded sparse store for /api/info.
type SparseInfo struct {
	Stat      string  `json:"stat"`
	Threshold float64 `json:"threshold"`
	Banded    bool    `json:"banded"`
	Band      int     `json:"band,omitempty"`
	NNZ       int64   `json:"nnz"`
}

func sparseInfo(s *ldsparse.Store) *SparseInfo {
	return &SparseInfo{
		Stat: s.Stat().String(), Threshold: s.Threshold(),
		Banded: s.Banded(), Band: s.Band(), NNZ: s.NNZ(),
	}
}
