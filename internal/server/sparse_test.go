package server

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/ldsparse"
	"ldgemm/internal/popsim"
)

func sparseMatrix(t *testing.T) *bitmat.Matrix {
	t.Helper()
	g, err := popsim.Mosaic(90, 64, popsim.MosaicConfig{Seed: 27})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func buildSparseStore(t *testing.T, g *bitmat.Matrix, bo ldsparse.BuildOptions) *ldsparse.Store {
	t.Helper()
	path := filepath.Join(t.TempDir(), "r.ldss")
	if _, err := ldsparse.BuildFile(path, g, bo); err != nil {
		t.Fatal(err)
	}
	s, err := ldsparse.Open(path, ldsparse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func sparseServer(t *testing.T, cfg Config) (*httptest.Server, *Server, *ldsparse.Store) {
	t.Helper()
	g := sparseMatrix(t)
	sp := buildSparseStore(t, g, ldsparse.BuildOptions{TileSize: 16, Threshold: 0.05})
	cfg.Sparse = sp
	s := New(g, cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts, s, sp
}

func postJSON(t *testing.T, url string, body any, v any) int {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("%s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestSparseMatVecEndpoint: the endpoint returns exactly the store's
// MatVec, bit for bit.
func TestSparseMatVecEndpoint(t *testing.T) {
	ts, _, sp := sparseServer(t, Config{})
	n := sp.SNPs()
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Cos(float64(i)) + 0.3
	}
	want, err := sp.MatVec(x)
	if err != nil {
		t.Fatal(err)
	}
	var resp MatVecResponse
	if code := postJSON(t, ts.URL+"/api/sparse/matvec", MatVecRequest{X: x}, &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if resp.RowStart != 0 || resp.RowEnd != n || len(resp.Y) != n {
		t.Fatalf("window [%d,%d) with %d rows", resp.RowStart, resp.RowEnd, len(resp.Y))
	}
	for i := range want {
		if math.Float64bits(resp.Y[i]) != math.Float64bits(want[i]) {
			t.Fatalf("y[%d] = %v, want %v", i, resp.Y[i], want[i])
		}
	}
}

// TestSparseMatVecRows: a rows=a:b strip returns exactly MatVecRange.
func TestSparseMatVecRows(t *testing.T) {
	ts, _, sp := sparseServer(t, Config{})
	n := sp.SNPs()
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i%5) - 2
	}
	want, err := sp.MatVecRange(x, 10, 40)
	if err != nil {
		t.Fatal(err)
	}
	var resp MatVecResponse
	if code := postJSON(t, ts.URL+"/api/sparse/matvec?rows=10:40", MatVecRequest{X: x}, &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if resp.RowStart != 10 || resp.RowEnd != 40 {
		t.Fatalf("window [%d,%d)", resp.RowStart, resp.RowEnd)
	}
	for i := range want {
		if math.Float64bits(resp.Y[i]) != math.Float64bits(want[i]) {
			t.Fatalf("y[%d] = %v, want %v", 10+i, resp.Y[i], want[i])
		}
	}
}

// TestSparseScoreEndpoint: score = matvec of the squared z-scores.
func TestSparseScoreEndpoint(t *testing.T) {
	ts, _, sp := sparseServer(t, Config{})
	n := sp.SNPs()
	z := make([]float64, n)
	for i := range z {
		z[i] = math.Sin(float64(2*i + 1))
	}
	want, err := sp.Score(z)
	if err != nil {
		t.Fatal(err)
	}
	var resp ScoreResponse
	if code := postJSON(t, ts.URL+"/api/sparse/score", ScoreRequest{Z: z}, &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	for i := range want {
		if math.Float64bits(resp.Scores[i]) != math.Float64bits(want[i]) {
			t.Fatalf("scores[%d] = %v, want %v", i, resp.Scores[i], want[i])
		}
	}
}

// TestSparseEndpointValidation: missing store, wrong vector length, bad
// windows, and wrong methods map to the right statuses.
func TestSparseEndpointValidation(t *testing.T) {
	ts, _, sp := sparseServer(t, Config{})
	n := sp.SNPs()
	if code := postJSON(t, ts.URL+"/api/sparse/matvec", MatVecRequest{X: make([]float64, n-1)}, nil); code != http.StatusBadRequest {
		t.Fatalf("short vector gave %d", code)
	}
	if code := postJSON(t, ts.URL+"/api/sparse/matvec?rows=40:10", MatVecRequest{X: make([]float64, n)}, nil); code != http.StatusBadRequest {
		t.Fatalf("inverted window gave %d", code)
	}
	resp, err := http.Post(ts.URL+"/api/sparse/matvec", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body gave %d", resp.StatusCode)
	}
	if code := getJSON(t, ts.URL+"/api/sparse/matvec", nil); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET gave %d", code)
	}

	// A server without a sparse store answers 404.
	g := sparseMatrix(t)
	bare := httptest.NewServer(New(g, Config{}))
	defer bare.Close()
	if code := postJSON(t, bare.URL+"/api/sparse/matvec", MatVecRequest{X: make([]float64, g.SNPs)}, nil); code != http.StatusNotFound {
		t.Fatalf("no-store matvec gave %d", code)
	}
}

// TestSparseFingerprintGate: a sparse store from a different dataset is
// silently ignored at construction.
func TestSparseFingerprintGate(t *testing.T) {
	g := sparseMatrix(t)
	other, err := popsim.Mosaic(90, 64, popsim.MosaicConfig{Seed: 999})
	if err != nil {
		t.Fatal(err)
	}
	sp := buildSparseStore(t, other, ldsparse.BuildOptions{TileSize: 16})
	s := New(g, Config{Sparse: sp})
	if s.sparse != nil {
		t.Fatal("mismatched sparse store was accepted")
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	var info InfoResponse
	if code := getJSON(t, ts.URL+"/api/info", &info); code != http.StatusOK || info.Sparse != nil {
		t.Fatalf("info %d %+v", code, info.Sparse)
	}
}

// TestSparseShardStrips: sharded servers answer only their owned strip
// by default and 421 misrouted windows; the strips reassemble to the
// full matvec.
func TestSparseShardStrips(t *testing.T) {
	g := sparseMatrix(t)
	sp := buildSparseStore(t, g, ldsparse.BuildOptions{TileSize: 16, Threshold: 0.03})
	n := sp.SNPs()
	x := make([]float64, n)
	for i := range x {
		x[i] = float64((i*7)%11) / 3
	}
	full, err := sp.MatVec(x)
	if err != nil {
		t.Fatal(err)
	}
	var got []float64
	for _, strip := range [][2]int{{0, 30}, {30, 60}, {60, 90}} {
		shard := httptest.NewServer(New(g, Config{Sparse: sp, ShardStart: strip[0], ShardEnd: strip[1]}))
		var resp MatVecResponse
		if code := postJSON(t, shard.URL+"/api/sparse/matvec", MatVecRequest{X: x}, &resp); code != http.StatusOK {
			t.Fatalf("shard %v status %d", strip, code)
		}
		if resp.RowStart != strip[0] || resp.RowEnd != strip[1] {
			t.Fatalf("shard %v served [%d,%d)", strip, resp.RowStart, resp.RowEnd)
		}
		got = append(got, resp.Y...)
		if code := postJSON(t, shard.URL+"/api/sparse/matvec?rows=0:90", MatVecRequest{X: x}, nil); code != http.StatusMisdirectedRequest {
			t.Fatalf("misrouted window gave %d", code)
		}
		shard.Close()
	}
	for i := range full {
		if math.Float64bits(got[i]) != math.Float64bits(full[i]) {
			t.Fatalf("reassembled y[%d] = %v, full %v", i, got[i], full[i])
		}
	}
}

// TestSparseMetrics: sparse requests move sparse_served and the sparse
// counter map on /debug/vars.
func TestSparseMetrics(t *testing.T) {
	ts, _, sp := sparseServer(t, Config{})
	x := make([]float64, sp.SNPs())
	if code := postJSON(t, ts.URL+"/api/sparse/matvec", MatVecRequest{X: x}, nil); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var vars struct {
		SparseServed int64 `json:"sparse_served"`
		Sparse       struct {
			MatVecs uint64 `json:"matvecs"`
		} `json:"sparse"`
	}
	if code := getJSON(t, ts.URL+"/debug/vars", &vars); code != http.StatusOK {
		t.Fatalf("vars status %d", code)
	}
	if vars.SparseServed != 1 {
		t.Fatalf("sparse_served = %d", vars.SparseServed)
	}
	if vars.Sparse.MatVecs == 0 {
		t.Fatal("sparse.matvecs did not move")
	}
}
