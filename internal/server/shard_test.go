package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"ldgemm/internal/popsim"
)

func shardedServer(t *testing.T, lo, hi int) (*httptest.Server, *Server) {
	t.Helper()
	g, err := popsim.Mosaic(120, 200, popsim.MosaicConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	s := New(g, Config{MaxRegionSNPs: 64, MaxTopK: 50, Threads: 2, ShardStart: lo, ShardEnd: hi})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts, s
}

func TestProbes(t *testing.T) {
	ts, _ := testServer(t)
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s returned %d", path, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Fatalf("%s Content-Type %q", path, ct)
		}
		resp.Body.Close()
	}
}

// TestProbesExemptFromLimiter floods a 1-slot server with heavy requests
// while probing: no probe may ever see a 503, because probes are mounted
// outside the in-flight limiter — a saturated server must shed work, not
// look dead.
func TestProbesExemptFromLimiter(t *testing.T) {
	g, err := popsim.Mosaic(300, 400, popsim.MosaicConfig{Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	s := New(g, Config{MaxRegionSNPs: 300, MaxInFlight: 1, Threads: 1})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/api/ld/region?start=0&end=300")
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	for probe := 0; probe < 20; probe++ {
		for _, path := range []string{"/healthz", "/readyz"} {
			resp, err := http.Get(ts.URL + path)
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s returned %d under load", path, resp.StatusCode)
			}
			resp.Body.Close()
		}
	}
	wg.Wait()
}

// TestJSONErrorContract checks that every error path — router misses
// included — answers with a JSON {"error": ...} object, the contract the
// cluster coordinator's response classification relies on.
func TestJSONErrorContract(t *testing.T) {
	ts, _ := testServer(t)
	cases := []struct {
		method, path string
		want         int
	}{
		{"GET", "/api/nope", http.StatusNotFound},
		{"GET", "/totally/else", http.StatusNotFound},
		{"POST", "/api/info", http.StatusMethodNotAllowed},
		{"GET", "/api/freq", http.StatusBadRequest},
		{"GET", "/api/ld?i=0&j=99999", http.StatusBadRequest},
		{"GET", "/api/ld/region?start=0&end=120", http.StatusUnprocessableEntity},
	}
	for _, c := range cases {
		req, err := http.NewRequest(c.method, ts.URL+c.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != c.want {
			t.Fatalf("%s %s returned %d, want %d", c.method, c.path, resp.StatusCode, c.want)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Fatalf("%s %s Content-Type %q, want JSON", c.method, c.path, ct)
		}
		var body struct {
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body.Error == "" {
			t.Fatalf("%s %s body is not a JSON error (%v)", c.method, c.path, err)
		}
		resp.Body.Close()
	}
}

func TestShardInfoAndEnforcement(t *testing.T) {
	ts, _ := shardedServer(t, 40, 80)

	var info InfoResponse
	if code := getJSON(t, ts.URL+"/api/info", &info); code != http.StatusOK {
		t.Fatalf("info status %d", code)
	}
	if info.Shard == nil || info.Shard.Start != 40 || info.Shard.End != 80 {
		t.Fatalf("shard info %+v", info.Shard)
	}

	// Pair ownership goes by the smaller index.
	if code := getJSON(t, ts.URL+"/api/ld?i=45&j=100", nil); code != http.StatusOK {
		t.Fatalf("owned pair status %d", code)
	}
	if code := getJSON(t, ts.URL+"/api/ld?i=100&j=45", nil); code != http.StatusOK {
		t.Fatalf("owned pair (swapped) status %d", code)
	}
	if code := getJSON(t, ts.URL+"/api/ld?i=10&j=45", nil); code != http.StatusMisdirectedRequest {
		t.Fatalf("misrouted pair status %d, want 421", code)
	}
	if code := getJSON(t, ts.URL+"/api/ld?i=90&j=100", nil); code != http.StatusMisdirectedRequest {
		t.Fatalf("misrouted pair status %d, want 421", code)
	}

	// Region requests outside the owned strip are misdirected; inside,
	// explicit windows must stay within ownership.
	if code := getJSON(t, ts.URL+"/api/ld/region?start=0&end=30", nil); code != http.StatusMisdirectedRequest {
		t.Fatalf("unowned region status %d, want 421", code)
	}
	if code := getJSON(t, ts.URL+"/api/ld/region?start=30&end=90&rows=30:50", nil); code != http.StatusMisdirectedRequest {
		t.Fatalf("over-wide rows status %d, want 421", code)
	}
	if code := getJSON(t, ts.URL+"/api/ld/region?start=30&end=90&rows=50:40", nil); code != http.StatusBadRequest {
		t.Fatalf("inverted rows status %d, want 400", code)
	}
	if code := getJSON(t, ts.URL+"/api/ld/region?start=30&end=90&rows=bogus", nil); code != http.StatusBadRequest {
		t.Fatalf("malformed rows status %d, want 400", code)
	}

	// Top: the default window is the owned strip.
	var top TopResponse
	if code := getJSON(t, ts.URL+"/api/ld/top?k=30", &top); code != http.StatusOK {
		t.Fatalf("top status %d", code)
	}
	for _, p := range top.Pairs {
		if o := min(p.I, p.J); o < 40 || o >= 80 {
			t.Fatalf("sharded top returned pair (%d,%d) owned by row %d", p.I, p.J, o)
		}
	}
	if code := getJSON(t, ts.URL+"/api/ld/top?k=5&rows=0:80", nil); code != http.StatusMisdirectedRequest {
		t.Fatalf("over-wide top rows status %d, want 421", code)
	}
}

// TestShardRegionStripsStack asserts the scatter-gather invariant the
// coordinator depends on: the row strips two shards serve for the same
// region, stacked, are bit-identical to the unsharded region.
func TestShardRegionStripsStack(t *testing.T) {
	full, _ := testServer(t)
	a, _ := shardedServer(t, 0, 60)
	b, _ := shardedServer(t, 60, 120)

	for _, measure := range []string{"r2", "d", "dprime"} {
		q := fmt.Sprintf("/api/ld/region?start=30&end=90&measure=%s", measure)
		var want RegionResponse
		if code := getJSON(t, full.URL+q, &want); code != http.StatusOK {
			t.Fatalf("full region status %d", code)
		}
		var lo, hi RegionResponse
		if code := getJSON(t, a.URL+q, &lo); code != http.StatusOK {
			t.Fatalf("shard A region status %d", code)
		}
		if code := getJSON(t, b.URL+q, &hi); code != http.StatusOK {
			t.Fatalf("shard B region status %d", code)
		}
		if lo.RowStart != 30 || lo.RowEnd != 60 || hi.RowStart != 60 || hi.RowEnd != 90 {
			t.Fatalf("strip windows [%d,%d) and [%d,%d)", lo.RowStart, lo.RowEnd, hi.RowStart, hi.RowEnd)
		}
		got := append(append([][]float64{}, lo.Values...), hi.Values...)
		if len(got) != len(want.Values) {
			t.Fatalf("%s: stacked %d rows, want %d", measure, len(got), len(want.Values))
		}
		for i := range got {
			for j := range got[i] {
				if got[i][j] != want.Values[i][j] {
					t.Fatalf("%s: cell (%d,%d) = %v, unsharded %v", measure, i, j, got[i][j], want.Values[i][j])
				}
			}
		}
	}
}

func TestUnshardedRowsWindow(t *testing.T) {
	ts, _ := testServer(t)
	var want RegionResponse
	if code := getJSON(t, ts.URL+"/api/ld/region?start=10&end=50", &want); code != http.StatusOK {
		t.Fatalf("region status %d", code)
	}
	var strip RegionResponse
	if code := getJSON(t, ts.URL+"/api/ld/region?start=10&end=50&rows=20:30", &strip); code != http.StatusOK {
		t.Fatalf("windowed region status %d", code)
	}
	if strip.RowStart != 20 || strip.RowEnd != 30 || len(strip.Values) != 10 {
		t.Fatalf("window [%d,%d) with %d rows", strip.RowStart, strip.RowEnd, len(strip.Values))
	}
	for i, row := range strip.Values {
		for j, v := range row {
			if v != want.Values[i+10][j] {
				t.Fatalf("cell (%d,%d) = %v, want %v", i, j, v, want.Values[i+10][j])
			}
		}
	}
	// A window covering the whole region collapses to the plain response.
	var whole RegionResponse
	if code := getJSON(t, ts.URL+"/api/ld/region?start=10&end=50&rows=10:50", &whole); code != http.StatusOK {
		t.Fatalf("full-window region status %d", code)
	}
	if whole.RowStart != 0 || whole.RowEnd != 0 || len(whole.Values) != 40 {
		t.Fatalf("full window did not collapse: [%d,%d) with %d rows", whole.RowStart, whole.RowEnd, len(whole.Values))
	}
}
