package server

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"ldgemm/internal/core"
	"ldgemm/internal/popsim"
)

func testServer(t *testing.T) (*httptest.Server, *Server) {
	t.Helper()
	g, err := popsim.Mosaic(120, 200, popsim.MosaicConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	s := New(g, Config{MaxRegionSNPs: 64, MaxTopK: 50, Threads: 2})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts, s
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("%s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestInfoEndpoint(t *testing.T) {
	ts, _ := testServer(t)
	var info InfoResponse
	if code := getJSON(t, ts.URL+"/api/info", &info); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if info.SNPs != 120 || info.Samples != 200 || info.Polymorphic != 120 {
		t.Fatalf("info %+v", info)
	}
	if info.MeanFrequency <= 0 || info.MeanFrequency >= 1 {
		t.Fatalf("mean frequency %v", info.MeanFrequency)
	}
}

func TestFreqEndpoint(t *testing.T) {
	ts, s := testServer(t)
	var fr FreqResponse
	if code := getJSON(t, ts.URL+"/api/freq?i=7", &fr); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if fr.SNP != 7 || fr.Frequency != s.freqs[7] {
		t.Fatalf("freq %+v", fr)
	}
	if code := getJSON(t, ts.URL+"/api/freq?i=999", nil); code != http.StatusBadRequest {
		t.Fatalf("out-of-range SNP gave %d", code)
	}
	if code := getJSON(t, ts.URL+"/api/freq", nil); code != http.StatusBadRequest {
		t.Fatalf("missing param gave %d", code)
	}
}

func TestPairEndpoint(t *testing.T) {
	ts, s := testServer(t)
	var pr PairResponse
	if code := getJSON(t, ts.URL+"/api/ld?i=3&j=11", &pr); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	want := core.PairLD(s.g, 3, 11)
	if math.Abs(pr.R2-want.R2) > 1e-12 || math.Abs(pr.D-want.D) > 1e-12 {
		t.Fatalf("pair %+v, want %+v", pr, want)
	}
	if pr.PValue < 0 || pr.PValue > 1 {
		t.Fatalf("p-value %v", pr.PValue)
	}
	if code := getJSON(t, ts.URL+"/api/ld?i=3", nil); code != http.StatusBadRequest {
		t.Fatalf("missing j gave %d", code)
	}
	if code := getJSON(t, ts.URL+"/api/ld?i=3&j=xyz", nil); code != http.StatusBadRequest {
		t.Fatalf("bad j gave %d", code)
	}
}

func TestRegionEndpoint(t *testing.T) {
	ts, s := testServer(t)
	var rr RegionResponse
	if code := getJSON(t, ts.URL+"/api/ld/region?start=10&end=30", &rr); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if rr.Measure != "r2" || len(rr.Values) != 20 || len(rr.Values[0]) != 20 {
		t.Fatalf("region shape %s %dx%d", rr.Measure, len(rr.Values), len(rr.Values[0]))
	}
	// Spot-check against direct computation.
	want := core.PairLD(s.g, 12, 25).R2
	if math.Abs(rr.Values[2][15]-want) > 1e-12 {
		t.Fatalf("region value %v, want %v", rr.Values[2][15], want)
	}
	// Caps and validation.
	if code := getJSON(t, ts.URL+"/api/ld/region?start=0&end=100", nil); code != http.StatusUnprocessableEntity {
		t.Fatalf("oversized region gave %d", code)
	}
	if code := getJSON(t, ts.URL+"/api/ld/region?start=30&end=10", nil); code != http.StatusBadRequest {
		t.Fatalf("inverted region gave %d", code)
	}
	if code := getJSON(t, ts.URL+"/api/ld/region?start=0&end=10&measure=bogus", nil); code != http.StatusBadRequest {
		t.Fatalf("bad measure gave %d", code)
	}
	// D′ measure path.
	if code := getJSON(t, ts.URL+"/api/ld/region?start=0&end=10&measure=dprime", &rr); code != http.StatusOK {
		t.Fatalf("dprime status %d", code)
	}
	if rr.Measure != "dprime" {
		t.Fatalf("measure %q", rr.Measure)
	}
}

// TestConcurrentRegionRequests drives the region endpoint from many
// goroutines with ChunkTiles pinned: the per-request blis calls share the
// pooled pack arena, so this doubles as the server leg of the race tier.
func TestConcurrentRegionRequests(t *testing.T) {
	g, err := popsim.Mosaic(120, 200, popsim.MosaicConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	s := New(g, Config{MaxRegionSNPs: 64, Threads: 2, ChunkTiles: 1})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	var want RegionResponse
	if code := getJSON(t, ts.URL+"/api/ld/region?start=10&end=40", &want); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var rr RegionResponse
			resp, err := http.Get(ts.URL + "/api/ld/region?start=10&end=40")
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status %d", resp.StatusCode)
				return
			}
			if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
				t.Error(err)
				return
			}
			for i := range rr.Values {
				for j := range rr.Values[i] {
					if rr.Values[i][j] != want.Values[i][j] {
						t.Errorf("concurrent region mismatch at (%d,%d)", i, j)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

func TestTopEndpoint(t *testing.T) {
	ts, s := testServer(t)
	var tr TopResponse
	if code := getJSON(t, ts.URL+"/api/ld/top?k=5", &tr); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(tr.Pairs) != 5 {
		t.Fatalf("%d pairs", len(tr.Pairs))
	}
	for i := 1; i < len(tr.Pairs); i++ {
		if tr.Pairs[i].R2 > tr.Pairs[i-1].R2+1e-12 {
			t.Fatal("top pairs not sorted")
		}
	}
	// The top hit must really be the strongest off-diagonal pair.
	best := 0.0
	for i := 0; i < s.g.SNPs; i++ {
		for j := i + 1; j < s.g.SNPs; j++ {
			if r2 := core.PairLD(s.g, i, j).R2; r2 > best {
				best = r2
			}
		}
	}
	if math.Abs(tr.Pairs[0].R2-best) > 1e-9 {
		t.Fatalf("top pair r² %v, want %v", tr.Pairs[0].R2, best)
	}
	if code := getJSON(t, ts.URL+"/api/ld/top?k=10000", nil); code != http.StatusBadRequest {
		t.Fatalf("oversized k gave %d", code)
	}
}

func TestPruneEndpoint(t *testing.T) {
	ts, _ := testServer(t)
	var pr PruneResponse
	if code := getJSON(t, ts.URL+"/api/prune?window=30&step=5&r2=0.3", &pr); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(pr.Kept)+len(pr.Removed) != 120 {
		t.Fatalf("partition %d+%d", len(pr.Kept), len(pr.Removed))
	}
	if code := getJSON(t, ts.URL+"/api/prune?r2=7", nil); code != http.StatusBadRequest {
		t.Fatalf("bad threshold gave %d", code)
	}
}

func TestBlocksEndpoint(t *testing.T) {
	ts, _ := testServer(t)
	var br BlocksResponse
	if code := getJSON(t, ts.URL+"/api/blocks?dprime=0.9&frac=0.9", &br); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	for _, b := range br.Blocks {
		if b.Start >= b.End || b.End > 120 {
			t.Fatalf("bad block %+v", b)
		}
	}
	if code := getJSON(t, ts.URL+"/api/blocks?dprime=2", nil); code != http.StatusBadRequest {
		t.Fatalf("bad dprime gave %d", code)
	}
}

func TestOmegaEndpoint(t *testing.T) {
	ts, _ := testServer(t)
	var or OmegaResponse
	if code := getJSON(t, ts.URL+"/api/omega?grid=7&max_each=20", &or); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(or.Points) != 7 {
		t.Fatalf("%d points", len(or.Points))
	}
	for _, p := range or.Points {
		if p.Omega > or.Peak.Omega {
			t.Fatal("peak not the max")
		}
	}
	if code := getJSON(t, ts.URL+"/api/omega?min_each=1", nil); code != http.StatusBadRequest {
		t.Fatalf("bad min_each gave %d", code)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts, _ := testServer(t)
	resp, err := http.Post(ts.URL+"/api/info", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST gave %d", resp.StatusCode)
	}
}

func TestUnknownPath(t *testing.T) {
	ts, _ := testServer(t)
	if code := getJSON(t, ts.URL+"/api/nope", nil); code != http.StatusNotFound {
		t.Fatalf("unknown path gave %d", code)
	}
}

func ExampleServer() {
	// Construct directly (no network) to show the handler shape.
	g, _ := popsim.Mosaic(10, 50, popsim.MosaicConfig{Seed: 1})
	s := New(g, Config{})
	req := httptest.NewRequest("GET", "/api/info", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var info InfoResponse
	json.NewDecoder(rec.Body).Decode(&info)
	fmt.Println(info.SNPs, info.Samples)
	// Output: 10 50
}
