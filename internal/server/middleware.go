package server

import (
	"context"
	"log/slog"
	"net/http"
	"strconv"
	"time"
)

// Request-lifecycle middleware. The serving stack is
//
//	observe(withDeadline(mux))          — every endpoint
//	         └── limitInFlight(handler) — heavy (LD-computing) endpoints
//
// observe records metrics and structured access logs, withDeadline imposes
// the per-request timeout that the kernel drivers honour through context
// cancellation, and limitInFlight sheds load once too many dense-linear-
// algebra requests are already running.

// statusWriter captures the status code and body size for logs/metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// withDeadline bounds each request's handling time: the request context is
// cancelled at the deadline, which the blocked drivers observe at their
// next phase boundary, and the handler answers 504.
func withDeadline(d time.Duration, next http.Handler) http.Handler {
	if d <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// inFlightLimiter builds middleware sharing one semaphore: across every
// endpoint it wraps, at most limit requests execute concurrently; beyond
// that requests are shed with 503 + Retry-After, so a traffic spike
// degrades into fast rejections instead of an unbounded queue of n²
// computations. limit <= 0 disables the cap.
func inFlightLimiter(limit int, retryAfter time.Duration, m *metrics) func(http.Handler) http.Handler {
	if limit <= 0 {
		return func(next http.Handler) http.Handler { return next }
	}
	if retryAfter <= 0 {
		retryAfter = time.Second
	}
	sem := make(chan struct{}, limit)
	secs := max(1, int(retryAfter.Round(time.Second)/time.Second))
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			select {
			case sem <- struct{}{}:
				if m != nil {
					m.inFlight.Add(1)
				}
				defer func() {
					if m != nil {
						m.inFlight.Add(-1)
					}
					<-sem
				}()
				next.ServeHTTP(w, r)
			default:
				if m != nil {
					m.shed.Add(1)
				}
				w.Header().Set("Retry-After", strconv.Itoa(secs))
				httpError(w, http.StatusServiceUnavailable,
					"saturated: %d heavy requests already in flight", limit)
			}
		})
	}
}

// observe wraps the whole mux with metrics accounting and, when an access
// logger is configured, one structured log line per request.
func observe(m *metrics, logger *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		elapsed := time.Since(start)
		m.observe(r.URL.Path, sw.status, elapsed)
		if logger != nil {
			logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.String("query", r.URL.RawQuery),
				slog.Int("status", sw.status),
				slog.Int64("bytes", sw.bytes),
				slog.Duration("duration", elapsed),
				slog.String("remote", r.RemoteAddr),
			)
		}
	})
}
