package ldsparse

import "sync/atomic"

// Package-wide store instrumentation, mirroring ldstore's: cumulative
// atomic counters any observer (the /debug/vars surface, the benchmark
// harness) snapshots with ReadStats and differences over time.
type storeCounters struct {
	tilesRead   atomic.Uint64
	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64
	evictions   atomic.Uint64
	bytesRead   atomic.Uint64
	bytesServed atomic.Uint64

	matVecs        atomic.Uint64
	matVecNanos    atomic.Uint64
	scores         atomic.Uint64
	entriesVisited atomic.Uint64
}

var stats storeCounters

// Stats is a snapshot of the cumulative sparse-store counters.
type Stats struct {
	// TilesRead counts CSR tile payloads decoded from disk (LRU misses);
	// CacheHits/CacheMisses/Evictions describe the decoded-tile LRU.
	TilesRead   uint64
	CacheHits   uint64
	CacheMisses uint64
	Evictions   uint64
	// BytesRead is payload bytes fetched from the file; BytesServed is
	// result bytes produced for callers.
	BytesRead   uint64
	BytesServed uint64
	// MatVecs counts R·v evaluations (Score calls included — a score is
	// a matvec of the squared z vector, and Scores counts those
	// separately), MatVecNanos their total wall time, and EntriesVisited
	// the stored entries folded into outputs — nnz per full matvec, with
	// symmetric off-diagonal entries counted once.
	MatVecs        uint64
	MatVecNanos    uint64
	Scores         uint64
	EntriesVisited uint64
}

// HitRate returns the decoded-tile cache hit fraction, or 0 before the
// first lookup.
func (s Stats) HitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// ReadStats snapshots the cumulative counters. Counters only grow;
// observers difference successive snapshots for rates.
func ReadStats() Stats {
	return Stats{
		TilesRead:      stats.tilesRead.Load(),
		CacheHits:      stats.cacheHits.Load(),
		CacheMisses:    stats.cacheMisses.Load(),
		Evictions:      stats.evictions.Load(),
		BytesRead:      stats.bytesRead.Load(),
		BytesServed:    stats.bytesServed.Load(),
		MatVecs:        stats.matVecs.Load(),
		MatVecNanos:    stats.matVecNanos.Load(),
		Scores:         stats.scores.Load(),
		EntriesVisited: stats.entriesVisited.Load(),
	}
}
