// Package ldsparse is the on-disk sparse LD tier: threshold-pruned CSR
// tiles of one statistic, built in a single pass from the fused GEMM
// epilogue and served through sparse operators (R·v matvec, score
// statistics) instead of dense dumps.
//
// The motivation follows the SparseLD/graphld line of work: genome-scale
// LD matrices are effectively banded — the overwhelming majority of
// |r²| values sit below any threshold a consumer cares about — and the
// high-value downstream workloads are GWAS summary-statistic
// computations (LD-matrix × vector products, Σ r²·χ² score aggregates),
// not dense region dumps. Pruning at |v| ≥ τ while the fused epilogue
// streams rows out of the blocked driver costs no extra pass over the
// data, and cuts the store by orders of magnitude.
//
// File layout ("LDSS", all integers little-endian):
//
//	header (96 bytes)
//	CSR tile payloads, in index order (row-major over the upper tile
//	triangle); tiles with no surviving entry have zero-length payloads
//	index: one 24-byte entry per tile, ending exactly at end-of-file
//
// Each non-empty tile payload is a tile-local CSR block:
//
//	rowPtr  (rows+1) × uint32   entry offsets per tile row
//	cols    nnz × uint16        tile-local column indices, ascending
//	vals    nnz × float64       statistic values
//
// Tiles cover the upper triangle of the SNP×SNP matrix like ldstore's
// LDTS; unlike LDTS, diagonal tiles keep only their upper triangle
// (local row ≤ col) — sparse consumers apply symmetry themselves, so
// mirrored storage would only double the bytes. See DESIGN.md ("Sparse
// tier") for the byte-level tables.
package ldsparse

import (
	"encoding/binary"
	"fmt"
	"math"

	"ldgemm/internal/ldstore"
)

// Stat re-exports ldstore's statistic kind: the sparse tier holds the
// same three measures and shares the CLI spellings.
type Stat = ldstore.Stat

const (
	StatR2     = ldstore.StatR2
	StatD      = ldstore.StatD
	StatDPrime = ldstore.StatDPrime
)

// Container constants. The header is fixed-size so the index offset and
// entry count can be patched in place after the variable-length tile
// section is written.
const (
	headerSize     = 96
	indexEntrySize = 24
	formatVersion  = 1

	// flagBanded marks a store built under a |i−j| ≤ band window: cells
	// outside the band are absent because they were never computed, not
	// because they failed the threshold.
	flagBanded = 1 << 0

	// csrEntryBytes is the per-entry payload cost: one uint16 column
	// plus one float64 value.
	csrEntryBytes = 10
)

var magic = [4]byte{'L', 'D', 'S', 'S'}

// Dimension sanity caps, mirroring ldstore: a corrupt or hostile header
// must not drive an implausible allocation before any payload is
// validated. Tile-local columns are uint16, so NT is additionally capped
// at 65536; the MaxTileBytes bound keeps it far below that anyway.
const (
	maxSNPs     = 1 << 31
	maxSamples  = 1 << 40
	maxTileSide = 1 << 16
)

// header is the decoded fixed-size file header.
//
// Byte layout:
//
//	off size field
//	  0    4 magic "LDSS"
//	  4    4 version (uint32, currently 1)
//	  8    4 flags (bit 0: banded build)
//	 12    4 statistic kind (1 r², 2 D, 3 D′)
//	 16    8 SNPs
//	 24    8 samples
//	 32    4 tile size NT
//	 36    4 reserved (zero)
//	 40    8 dataset fingerprint (FNV-1a 64 over dims + packed words)
//	 48    8 index offset
//	 56    8 tile count
//	 64    8 pruning threshold τ (float64 bits; entries keep |v| ≥ τ)
//	 72    8 band width W (meaningful only when flag bit 0 is set)
//	 80    8 total surviving entries (nnz)
//	 88    8 reserved (zero)
type header struct {
	flags       uint32
	stat        Stat
	snps        uint64
	samples     uint64
	tileSize    uint32
	fingerprint uint64
	indexOffset uint64
	tileCount   uint64
	threshold   float64
	band        uint64
	nnz         uint64
}

func (h header) encode() []byte {
	b := make([]byte, headerSize)
	copy(b[0:4], magic[:])
	binary.LittleEndian.PutUint32(b[4:], formatVersion)
	binary.LittleEndian.PutUint32(b[8:], h.flags)
	binary.LittleEndian.PutUint32(b[12:], uint32(h.stat))
	binary.LittleEndian.PutUint64(b[16:], h.snps)
	binary.LittleEndian.PutUint64(b[24:], h.samples)
	binary.LittleEndian.PutUint32(b[32:], h.tileSize)
	binary.LittleEndian.PutUint64(b[40:], h.fingerprint)
	binary.LittleEndian.PutUint64(b[48:], h.indexOffset)
	binary.LittleEndian.PutUint64(b[56:], h.tileCount)
	binary.LittleEndian.PutUint64(b[64:], math.Float64bits(h.threshold))
	binary.LittleEndian.PutUint64(b[72:], h.band)
	binary.LittleEndian.PutUint64(b[80:], h.nnz)
	return b
}

func decodeHeader(b []byte) (header, error) {
	var h header
	if len(b) < headerSize {
		return h, fmt.Errorf("ldsparse: short header (%d bytes)", len(b))
	}
	if [4]byte(b[0:4]) != magic {
		return h, fmt.Errorf("ldsparse: bad magic %q", b[0:4])
	}
	if v := binary.LittleEndian.Uint32(b[4:]); v != formatVersion {
		return h, fmt.Errorf("ldsparse: unsupported version %d", v)
	}
	h.flags = binary.LittleEndian.Uint32(b[8:])
	h.stat = Stat(binary.LittleEndian.Uint32(b[12:]))
	h.snps = binary.LittleEndian.Uint64(b[16:])
	h.samples = binary.LittleEndian.Uint64(b[24:])
	h.tileSize = binary.LittleEndian.Uint32(b[32:])
	h.fingerprint = binary.LittleEndian.Uint64(b[40:])
	h.indexOffset = binary.LittleEndian.Uint64(b[48:])
	h.tileCount = binary.LittleEndian.Uint64(b[56:])
	h.threshold = math.Float64frombits(binary.LittleEndian.Uint64(b[64:]))
	h.band = binary.LittleEndian.Uint64(b[72:])
	h.nnz = binary.LittleEndian.Uint64(b[80:])
	return h, nil
}

func (h header) banded() bool { return h.flags&flagBanded != 0 }

func validStat(s Stat) bool { return s == StatR2 || s == StatD || s == StatDPrime }

// indexEntry locates and authenticates one CSR tile payload.
//
// Byte layout (24 bytes): offset uint64, length uint32, crc32 (IEEE) of
// the stored payload uint32, then the tile's surviving entry count as a
// uint64 — redundant with the payload length for non-empty tiles, which
// is exactly why the open path can cross-check the two.
type indexEntry struct {
	offset uint64
	length uint32
	crc    uint32
	nnz    uint64
}

func (e indexEntry) encode(b []byte) {
	binary.LittleEndian.PutUint64(b[0:], e.offset)
	binary.LittleEndian.PutUint32(b[8:], e.length)
	binary.LittleEndian.PutUint32(b[12:], e.crc)
	binary.LittleEndian.PutUint64(b[16:], e.nnz)
}

func decodeIndexEntry(b []byte) indexEntry {
	return indexEntry{
		offset: binary.LittleEndian.Uint64(b[0:]),
		length: binary.LittleEndian.Uint32(b[8:]),
		crc:    binary.LittleEndian.Uint32(b[12:]),
		nnz:    binary.LittleEndian.Uint64(b[16:]),
	}
}

// csrBytes returns the payload length of a tile holding nnz entries over
// `rows` tile rows; empty tiles are stored as zero bytes.
func csrBytes(rows int, nnz int64) int64 {
	if nnz == 0 {
		return 0
	}
	return int64(rows+1)*4 + nnz*csrEntryBytes
}

// Tile-grid geometry, identical to ldstore's: tile (ti, tj) with tj ≥ ti
// holds rows [ti·NT, ...) × columns [tj·NT, ...), ordered row-major over
// the upper tile triangle.

func tilesFor(n, nt int) int {
	if n <= 0 {
		return 0
	}
	return (n + nt - 1) / nt
}

func triangleTiles(t int) int64 {
	return int64(t) * int64(t+1) / 2
}

func tileID(t, ti, tj int) int64 {
	return int64(ti)*int64(t) - int64(ti)*int64(ti-1)/2 + int64(tj-ti)
}

// keep is the pruning predicate: an entry survives iff |v| ≥ τ. It is a
// pure value predicate — no positional state, no quota — so entries
// whose magnitudes tie exactly at the threshold are kept
// deterministically, independent of scan order or parallel schedule.
func keep(v, tau float64) bool {
	return math.Abs(v) >= tau
}
