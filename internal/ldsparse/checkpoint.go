package ldsparse

import (
	"encoding/json"
	"fmt"
	"math"
	"os"

	"ldgemm/internal/ldstore"
)

// Checkpointing for out-of-core sparse builds, mirroring ldstore's
// machinery: a manifest (<store>.ckpt) durably advanced after every
// flushed stripe, plus an index sidecar (<store>.idx) of the flushed
// tiles' 24-byte entries. The manifest identity adds the sparse knobs —
// threshold, banded, band — because resuming a half-built store under a
// different pruning rule would mix incompatible tile contents. Resume
// truncates the data file to the manifest offset, reloads the sidecar
// (recovering the running nnz total from the entries), and restarts the
// scan at the next stripe through the stream's row window; payloads are
// deterministic, so the resumed output is byte-identical to an
// uninterrupted build's.

const (
	manifestVersion = 1
	manifestMagic   = "ldsparse-checkpoint"
)

// manifest is the checkpoint record of a partially built sparse store.
type manifest struct {
	Version int    `json:"version"`
	Magic   string `json:"magic"` // "ldsparse-checkpoint"

	// Build identity: a manifest may only resume a build of the same
	// dataset with the same options, otherwise the mixed output would be
	// silently wrong. The threshold is carried as raw float64 bits so
	// identity is exact, never a formatting round trip.
	Fingerprint   uint64 `json:"fingerprint"`
	SNPs          int    `json:"snps"`
	Samples       int    `json:"samples"`
	TileSize      int    `json:"tile_size"`
	Stat          uint32 `json:"stat"`
	ThresholdBits uint64 `json:"threshold_bits"`
	Banded        bool   `json:"banded"`
	Band          int    `json:"band"`

	// Progress: StripesDone stripes are durably flushed, their tile
	// payloads ending at DataOffset in the data file, with TilesWritten
	// index entries in the sidecar.
	StripesDone  int   `json:"stripes_done"`
	DataOffset   int64 `json:"data_offset"`
	TilesWritten int   `json:"tiles_written"`
}

// tilesThrough returns the number of tiles in the first `stripes` tile
// rows of a t-band upper triangle: row s holds t−s tiles.
func tilesThrough(t, stripes int) int64 {
	s := int64(stripes)
	return s*int64(t) - s*(s-1)/2
}

// parseManifest decodes and validates a checkpoint manifest. Every field
// is cross-checked for internal consistency so a corrupt or truncated
// manifest is rejected rather than resumed into a wrong store.
func parseManifest(b []byte) (manifest, error) {
	var m manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return m, fmt.Errorf("ldsparse: checkpoint manifest: %w", err)
	}
	if m.Magic != manifestMagic {
		return m, fmt.Errorf("ldsparse: checkpoint manifest: bad magic %q", m.Magic)
	}
	if m.Version != manifestVersion {
		return m, fmt.Errorf("ldsparse: checkpoint manifest: unsupported version %d", m.Version)
	}
	if m.SNPs < 0 || m.SNPs > maxSNPs || m.Samples < 0 || int64(m.Samples) > maxSamples {
		return m, fmt.Errorf("ldsparse: checkpoint manifest: implausible dimensions %d×%d", m.SNPs, m.Samples)
	}
	if m.TileSize < 1 || m.TileSize > maxTileSide ||
		int64(m.TileSize)*int64(m.TileSize)*8 > ldstore.MaxTileBytes {
		return m, fmt.Errorf("ldsparse: checkpoint manifest: invalid tile size %d", m.TileSize)
	}
	if !validStat(Stat(m.Stat)) {
		return m, fmt.Errorf("ldsparse: checkpoint manifest: invalid statistic %d", m.Stat)
	}
	if tau := math.Float64frombits(m.ThresholdBits); math.IsNaN(tau) || tau < 0 {
		return m, fmt.Errorf("ldsparse: checkpoint manifest: invalid threshold %v", tau)
	}
	if m.Band < 0 || (!m.Banded && m.Band != 0) {
		return m, fmt.Errorf("ldsparse: checkpoint manifest: invalid band %d (banded=%v)", m.Band, m.Banded)
	}
	t := tilesFor(m.SNPs, m.TileSize)
	if m.StripesDone < 0 || m.StripesDone > t {
		return m, fmt.Errorf("ldsparse: checkpoint manifest: %d stripes done of %d", m.StripesDone, t)
	}
	if want := tilesThrough(t, m.StripesDone); int64(m.TilesWritten) != want {
		return m, fmt.Errorf("ldsparse: checkpoint manifest: %d tiles written, want %d for %d stripes",
			m.TilesWritten, want, m.StripesDone)
	}
	if m.DataOffset < headerSize {
		return m, fmt.Errorf("ldsparse: checkpoint manifest: data offset %d inside header", m.DataOffset)
	}
	return m, nil
}

// writeManifest atomically replaces path with the encoded manifest:
// temp file in the same directory, fsync, rename.
func writeManifest(path string, m manifest) error {
	b, err := json.Marshal(m)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// readManifest loads and validates the manifest at path.
func readManifest(path string) (manifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return manifest{}, err
	}
	return parseManifest(b)
}

// loadSidecar reads the first `tiles` index entries from the sidecar file
// and truncates it to exactly that length, discarding any trailing
// entries whose manifest rename never landed.
func loadSidecar(f *os.File, tiles int) ([]indexEntry, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	want := int64(tiles) * indexEntrySize
	if fi.Size() < want {
		return nil, fmt.Errorf("ldsparse: index sidecar holds %d bytes, need %d for %d tiles", fi.Size(), want, tiles)
	}
	b := make([]byte, want)
	if _, err := f.ReadAt(b, 0); err != nil {
		return nil, err
	}
	entries := make([]indexEntry, tiles)
	for i := range entries {
		entries[i] = decodeIndexEntry(b[i*indexEntrySize:])
	}
	if err := f.Truncate(want); err != nil {
		return nil, err
	}
	if _, err := f.Seek(want, 0); err != nil {
		return nil, err
	}
	return entries, nil
}

// appendSidecar appends entries to the sidecar and syncs it.
func appendSidecar(f *os.File, entries []indexEntry) error {
	buf := make([]byte, len(entries)*indexEntrySize)
	for i, e := range entries {
		e.encode(buf[i*indexEntrySize:])
	}
	if _, err := f.Write(buf); err != nil {
		return err
	}
	return f.Sync()
}

// PartialError is ldstore's partial-progress error, shared so callers
// (the ldstore CLI's resume hint among them) handle both tiers' killed
// builds with one errors.As.
type PartialError = ldstore.PartialError
