package ldsparse

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"

	"ldgemm/internal/popsim"
)

// sparseBytes builds a small valid sparse store and returns its raw file
// bytes, the seed every mutation starts from.
func sparseBytes(tb testing.TB, bo BuildOptions) []byte {
	tb.Helper()
	g, err := popsim.Mosaic(20, 16, popsim.MosaicConfig{Seed: 41})
	if err != nil {
		tb.Fatalf("popsim.Mosaic: %v", err)
	}
	path := filepath.Join(tb.TempDir(), "seed.ldss")
	if _, err := BuildFile(path, g, bo); err != nil {
		tb.Fatalf("BuildFile: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// FuzzSparseOpen feeds arbitrary bytes to OpenReader and, when a store
// opens, exercises every query and operator path. The invariant under
// fuzzing: corrupt input produces an error, never a panic, an index out
// of range, or an allocation driven by an unvalidated length field.
func FuzzSparseOpen(f *testing.F) {
	valid := sparseBytes(f, BuildOptions{TileSize: 8, Threshold: 0.05})
	f.Add(valid)
	f.Add(sparseBytes(f, BuildOptions{TileSize: 8, Threshold: 0.02, Banded: true, Band: 6}))
	f.Add(sparseBytes(f, BuildOptions{TileSize: 8, Threshold: 1.5})) // fully pruned store
	f.Add([]byte{})
	f.Add([]byte("LDSS"))
	f.Add(valid[:headerSize])   // header only, no tiles or index
	f.Add(valid[:len(valid)-7]) // truncated index

	corrupt := func(mutate func(b []byte)) []byte {
		b := bytes.Clone(valid)
		mutate(b)
		return b
	}
	f.Add(corrupt(func(b []byte) { b[0] = 'X' }))                                                       // bad magic
	f.Add(corrupt(func(b []byte) { binary.LittleEndian.PutUint32(b[4:], 99) }))                         // bad version
	f.Add(corrupt(func(b []byte) { binary.LittleEndian.PutUint32(b[8:], 0xFFFE) }))                     // band set without flag
	f.Add(corrupt(func(b []byte) { binary.LittleEndian.PutUint32(b[12:], 7) }))                         // bad stat
	f.Add(corrupt(func(b []byte) { binary.LittleEndian.PutUint64(b[16:], 1<<40) }))                     // huge SNPs
	f.Add(corrupt(func(b []byte) { binary.LittleEndian.PutUint64(b[24:], 0) }))                         // zero samples
	f.Add(corrupt(func(b []byte) { binary.LittleEndian.PutUint32(b[32:], 0) }))                         // zero tile size
	f.Add(corrupt(func(b []byte) { binary.LittleEndian.PutUint32(b[32:], 1<<30) }))                     // huge tile size
	f.Add(corrupt(func(b []byte) { binary.LittleEndian.PutUint64(b[48:], 0) }))                         // index inside header
	f.Add(corrupt(func(b []byte) { binary.LittleEndian.PutUint64(b[48:], 1<<50) }))                     // index past EOF
	f.Add(corrupt(func(b []byte) { binary.LittleEndian.PutUint64(b[56:], 1<<40) }))                     // absurd tile count
	f.Add(corrupt(func(b []byte) { binary.LittleEndian.PutUint64(b[64:], math.Float64bits(math.NaN())) })) // NaN threshold
	f.Add(corrupt(func(b []byte) { binary.LittleEndian.PutUint64(b[72:], 7) }))                         // band without banded flag
	f.Add(corrupt(func(b []byte) { binary.LittleEndian.PutUint64(b[80:], 1<<40) }))                     // nnz disagrees with index
	f.Add(corrupt(func(b []byte) { b[headerSize] ^= 0xFF }))                                            // payload bit flip
	f.Add(corrupt(func(b []byte) { binary.LittleEndian.PutUint64(b[len(b)-24:], 1<<40) }))              // entry offset out of range
	f.Add(corrupt(func(b []byte) { binary.LittleEndian.PutUint32(b[len(b)-16:], 1<<28) }))              // entry length out of range
	f.Add(corrupt(func(b []byte) { binary.LittleEndian.PutUint64(b[len(b)-8:], 1<<30) }))               // entry nnz above tile capacity

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := OpenReader(bytes.NewReader(data), int64(len(data)), Options{CacheTiles: 4})
		if err != nil {
			return
		}
		defer s.Close()
		_ = s.Info()
		n := s.SNPs()
		if n == 0 {
			return
		}
		// Query errors (e.g. checksum failures on flipped payload bytes)
		// are fine; panics are not.
		_, _ = s.At(0, n-1)
		_, _, _ = s.Lookup(n/2, n/2)
		x := make([]float64, n)
		for i := range x {
			x[i] = 1
		}
		_, _ = s.MatVec(x)
		_, _ = s.Score(x)
	})
}

// FuzzSparseManifest feeds arbitrary bytes to the sparse checkpoint
// manifest parser: corrupt manifests are rejected, never panicked on or
// resumed into a wrong build.
func FuzzSparseManifest(f *testing.F) {
	valid, err := json.Marshal(manifest{
		Version: manifestVersion, Magic: manifestMagic,
		Fingerprint: 0xdeadbeefcafef00d, SNPs: 120, Samples: 77,
		TileSize: 16, Stat: uint32(StatR2),
		ThresholdBits: math.Float64bits(0.05), Banded: true, Band: 12,
		StripesDone: 3, DataOffset: 4096, TilesWritten: 18,
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("{}"))
	f.Add([]byte("not json"))
	f.Add([]byte(`{"version":1,"magic":"ldsparse-checkpoint"}`))
	f.Add(bytes.Replace(valid, []byte(`"version":1`), []byte(`"version":99`), 1))
	f.Add(bytes.Replace(valid, []byte(`"tile_size":16`), []byte(`"tile_size":0`), 1))
	f.Add(bytes.Replace(valid, []byte(`"snps":120`), []byte(`"snps":-5`), 1))
	f.Add(bytes.Replace(valid, []byte(`"stripes_done":3`), []byte(`"stripes_done":1000`), 1))
	f.Add(bytes.Replace(valid, []byte(`"tiles_written":18`), []byte(`"tiles_written":2`), 1))
	f.Add(bytes.Replace(valid, []byte(`"banded":true`), []byte(`"banded":false`), 1))
	f.Add(bytes.Replace(valid, []byte(`"band":12`), []byte(`"band":-3`), 1))
	f.Add(bytes.Replace(valid, []byte(`"threshold_bits":`), []byte(`"threshold_bits_x":`), 1))
	f.Add(valid[:len(valid)/2])

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := parseManifest(data)
		if err != nil {
			return
		}
		// Accepted manifests must be internally consistent.
		if m.Magic != manifestMagic || m.Version != manifestVersion {
			t.Fatalf("accepted manifest with identity %q v%d", m.Magic, m.Version)
		}
		if m.SNPs < 0 || m.TileSize < 1 || m.StripesDone < 0 || m.DataOffset < headerSize {
			t.Fatalf("accepted inconsistent manifest %+v", m)
		}
		if tau := math.Float64frombits(m.ThresholdBits); math.IsNaN(tau) || tau < 0 {
			t.Fatalf("accepted invalid threshold %v", tau)
		}
		if m.Band < 0 || (!m.Banded && m.Band != 0) {
			t.Fatalf("accepted invalid band %+v", m)
		}
		t0 := tilesFor(m.SNPs, m.TileSize)
		if m.StripesDone > t0 || int64(m.TilesWritten) != tilesThrough(t0, m.StripesDone) {
			t.Fatalf("accepted inconsistent progress %+v", m)
		}
	})
}
