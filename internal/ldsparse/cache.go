package ldsparse

import (
	"container/list"
	"sync"
)

// csrTile is one decoded tile-local CSR block. rowPtr has tileDim(ti)+1
// entries; cols are tile-local and strictly ascending within each row;
// diagonal tiles hold only local row ≤ col. Tiles are immutable once
// decoded.
type csrTile struct {
	rowPtr []uint32
	cols   []uint16
	vals   []float64
}

// tileCache is a mutex-guarded LRU over decoded CSR tiles, keyed by
// linear tile id — the same shape as ldstore's dense tile cache, but
// capacity is approximate (tiles vary in nnz); the resident bound is
// CacheTiles × the largest tile's decoded size. Concurrent misses on the
// same tile may both load it; the second put simply refreshes the entry,
// which is correct because tiles are immutable.
type tileCache struct {
	mu      sync.Mutex
	cap     int
	entries map[int64]*list.Element
	lru     *list.List // front = most recently used
}

type cacheEntry struct {
	id   int64
	tile *csrTile
}

func newTileCache(capTiles int) *tileCache {
	return &tileCache{
		cap:     capTiles,
		entries: make(map[int64]*list.Element),
		lru:     list.New(),
	}
}

func (c *tileCache) get(id int64) (*csrTile, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[id]; ok {
		c.lru.MoveToFront(el)
		stats.cacheHits.Add(1)
		return el.Value.(*cacheEntry).tile, true
	}
	stats.cacheMisses.Add(1)
	return nil, false
}

func (c *tileCache) put(id int64, tile *csrTile) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[id]; ok {
		el.Value.(*cacheEntry).tile = tile
		c.lru.MoveToFront(el)
		return
	}
	c.entries[id] = c.lru.PushFront(&cacheEntry{id: id, tile: tile})
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		delete(c.entries, back.Value.(*cacheEntry).id)
		c.lru.Remove(back)
		stats.evictions.Add(1)
	}
}
