package ldsparse

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sort"
)

// Options configures a Store reader.
type Options struct {
	// CacheTiles is the decoded-tile LRU capacity in tiles (default 64).
	CacheTiles int
}

// Store serves sparse LD operators from a CSR tile file built by Build.
// All query methods are safe for concurrent use: tile reads go through
// ReadAt and the LRU is mutex-guarded.
type Store struct {
	r      io.ReaderAt
	closer io.Closer // nil when opened over a caller-owned reader
	h      header
	tiles  int // tile bands per side
	index  []indexEntry
	coords []tileCoord // linear id → (ti, tj), same order as index
	cache  *tileCache
}

type tileCoord struct{ ti, tj int }

// Open opens the sparse tile store at path.
func Open(path string, opt Options) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	s, err := OpenReader(f, fi.Size(), opt)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("ldsparse: %s: %w", path, err)
	}
	s.closer = f
	return s, nil
}

// OpenReader opens a sparse tile store over an arbitrary random-access
// reader of the given size, validating the header and the whole index
// before any query runs: dimensions, tile size, threshold, and band must
// be plausible, the tile count must match the geometry, the index must
// end exactly at end-of-file, every entry must lie inside the tile
// section with a length exactly consistent with its declared entry
// count, and the per-tile counts must sum to the header's total — so a
// corrupt or hostile file fails here with an error, never with a panic
// or an unbounded allocation. (Per-tile CSR structure — monotone row
// pointers, ascending in-range columns — is validated when the tile is
// first decoded.)
func OpenReader(r io.ReaderAt, size int64, opt Options) (*Store, error) {
	if opt.CacheTiles == 0 {
		opt.CacheTiles = 64
	}
	if opt.CacheTiles < 1 {
		return nil, fmt.Errorf("ldsparse: invalid cache capacity %d", opt.CacheTiles)
	}
	if size < headerSize {
		return nil, fmt.Errorf("ldsparse: file of %d bytes is shorter than the %d-byte header", size, headerSize)
	}
	hb := make([]byte, headerSize)
	if _, err := r.ReadAt(hb, 0); err != nil {
		return nil, fmt.Errorf("ldsparse: reading header: %w", err)
	}
	h, err := decodeHeader(hb)
	if err != nil {
		return nil, err
	}
	if !validStat(h.stat) {
		return nil, fmt.Errorf("ldsparse: unknown statistic kind %d", uint32(h.stat))
	}
	if h.snps > maxSNPs || h.samples > maxSamples {
		return nil, fmt.Errorf("ldsparse: implausible dimensions %d×%d", h.snps, h.samples)
	}
	if h.snps > 0 && h.samples == 0 {
		return nil, fmt.Errorf("ldsparse: %d SNPs with zero samples", h.snps)
	}
	if h.tileSize < 1 || h.tileSize > maxTileSide {
		return nil, fmt.Errorf("ldsparse: invalid tile size %d", h.tileSize)
	}
	if math.IsNaN(h.threshold) || h.threshold < 0 {
		return nil, fmt.Errorf("ldsparse: invalid threshold %v", h.threshold)
	}
	if h.banded() {
		if h.band > maxSNPs {
			return nil, fmt.Errorf("ldsparse: implausible band width %d", h.band)
		}
	} else if h.band != 0 {
		return nil, fmt.Errorf("ldsparse: band width %d without the banded flag", h.band)
	}
	n, nt := int(h.snps), int(h.tileSize)
	t := tilesFor(n, nt)
	if h.tileCount != uint64(triangleTiles(t)) {
		return nil, fmt.Errorf("ldsparse: %d tiles indexed, want %d for %d SNPs at tile size %d",
			h.tileCount, triangleTiles(t), n, nt)
	}
	// The index is the last thing in the file; requiring it to end exactly
	// at EOF both rejects truncation and bounds the index allocation by
	// the input size.
	if h.tileCount > uint64(size)/indexEntrySize {
		return nil, fmt.Errorf("ldsparse: index of %d entries cannot fit a %d-byte file", h.tileCount, size)
	}
	indexBytes := int64(h.tileCount) * indexEntrySize
	if h.indexOffset < headerSize || int64(h.indexOffset) != size-indexBytes {
		return nil, fmt.Errorf("ldsparse: index offset %d inconsistent with file size %d", h.indexOffset, size)
	}

	s := &Store{r: r, h: h, tiles: t,
		index:  make([]indexEntry, h.tileCount),
		coords: make([]tileCoord, 0, h.tileCount),
		cache:  newTileCache(opt.CacheTiles),
	}
	for ti := 0; ti < t; ti++ {
		for tj := ti; tj < t; tj++ {
			s.coords = append(s.coords, tileCoord{ti, tj})
		}
	}
	ib := make([]byte, indexBytes)
	if _, err := r.ReadAt(ib, int64(h.indexOffset)); err != nil {
		return nil, fmt.Errorf("ldsparse: reading index: %w", err)
	}
	var totalNNZ uint64
	for id := range s.index {
		e := decodeIndexEntry(ib[id*indexEntrySize:])
		c := s.coords[id]
		if e.offset < headerSize || e.offset > h.indexOffset ||
			uint64(e.length) > h.indexOffset-e.offset {
			return nil, fmt.Errorf("ldsparse: tile %d at [%d, +%d) escapes the tile section [%d, %d)",
				id, e.offset, e.length, headerSize, h.indexOffset)
		}
		rows := s.tileDim(c.ti)
		if e.nnz > uint64(s.tileCells(c.ti, c.tj)) {
			return nil, fmt.Errorf("ldsparse: tile %d declares %d entries, above its %d cells",
				id, e.nnz, s.tileCells(c.ti, c.tj))
		}
		if int64(e.length) != csrBytes(rows, int64(e.nnz)) {
			return nil, fmt.Errorf("ldsparse: tile %d has %d payload bytes, want %d for %d entries",
				id, e.length, csrBytes(rows, int64(e.nnz)), e.nnz)
		}
		totalNNZ += e.nnz
		s.index[id] = e
	}
	if totalNNZ != h.nnz {
		return nil, fmt.Errorf("ldsparse: index entries sum to %d nnz, header says %d", totalNNZ, h.nnz)
	}
	return s, nil
}

// Close releases the underlying file, if the Store owns one.
func (s *Store) Close() error {
	if s.closer == nil {
		return nil
	}
	return s.closer.Close()
}

// SNPs returns the dataset's SNP count.
func (s *Store) SNPs() int { return int(s.h.snps) }

// Samples returns the dataset's sequence count.
func (s *Store) Samples() int { return int(s.h.samples) }

// Stat returns the statistic the store holds.
func (s *Store) Stat() Stat { return s.h.stat }

// TileSize returns NT.
func (s *Store) TileSize() int { return int(s.h.tileSize) }

// Threshold returns the pruning cutoff τ stamped at build time.
func (s *Store) Threshold() float64 { return s.h.threshold }

// Banded reports whether the store was built under a band window, and
// Band its width (0 unless Banded).
func (s *Store) Banded() bool { return s.h.banded() }
func (s *Store) Band() int    { return int(s.h.band) }

// NNZ returns the number of stored (surviving) upper-triangle entries.
func (s *Store) NNZ() int64 { return int64(s.h.nnz) }

// Fingerprint returns the dataset fingerprint stamped at build time.
func (s *Store) Fingerprint() uint64 { return s.h.fingerprint }

// Info summarizes a sparse store for tooling.
type Info struct {
	SNPs        int     `json:"snps"`
	Samples     int     `json:"samples"`
	Stat        string  `json:"stat"`
	TileSize    int     `json:"tile_size"`
	Tiles       int     `json:"tiles"`
	EmptyTiles  int     `json:"empty_tiles"`
	Threshold   float64 `json:"threshold"`
	Banded      bool    `json:"banded"`
	Band        int     `json:"band"`
	NNZ         int64   `json:"nnz"`
	Density     float64 `json:"density"` // nnz / upper-triangle cells
	Fingerprint string  `json:"fingerprint"`
	TileBytes   int64   `json:"tile_bytes"`
	FileBytes   int64   `json:"file_bytes"`
	DenseBytes  int64   `json:"dense_bytes"` // upper triangle at 8 bytes/cell
}

// Info returns the store's header summary.
func (s *Store) Info() Info {
	empty := 0
	for _, e := range s.index {
		if e.nnz == 0 {
			empty++
		}
	}
	n := int64(s.SNPs())
	cells := n * (n + 1) / 2
	info := Info{
		SNPs: s.SNPs(), Samples: s.Samples(), Stat: s.Stat().String(),
		TileSize: s.TileSize(), Tiles: len(s.index), EmptyTiles: empty,
		Threshold: s.Threshold(), Banded: s.Banded(), Band: s.Band(),
		NNZ:         s.NNZ(),
		Fingerprint: fmt.Sprintf("%016x", s.h.fingerprint),
		TileBytes:   int64(s.h.indexOffset) - headerSize,
		FileBytes:   int64(s.h.indexOffset) + int64(len(s.index)*indexEntrySize),
		DenseBytes:  cells * 8,
	}
	if cells > 0 {
		info.Density = float64(s.NNZ()) / float64(cells)
	}
	return info
}

// tileDim returns the row (or column) count of tile band t.
func (s *Store) tileDim(t int) int {
	return min(int(s.h.tileSize), int(s.h.snps)-t*int(s.h.tileSize))
}

// tileCells returns the cell capacity of tile (ti, tj): full rectangle
// off the diagonal, upper triangle (diagonal included) on it.
func (s *Store) tileCells(ti, tj int) int64 {
	rows, cols := int64(s.tileDim(ti)), int64(s.tileDim(tj))
	if ti == tj {
		return rows * (rows + 1) / 2
	}
	return rows * cols
}

// tile returns the decoded CSR block of tile (ti, tj), ti ≤ tj, loading,
// validating, and caching on miss. The CSR invariants — rowPtr
// monotone from 0 to nnz, columns in range and strictly ascending per
// row, diagonal tiles upper-triangular — are enforced here so every
// consumer can walk the arrays without bounds anxiety.
func (s *Store) tile(ti, tj int) (*csrTile, error) {
	id := tileID(s.tiles, ti, tj)
	if t, ok := s.cache.get(id); ok {
		return t, nil
	}
	e := s.index[id]
	rows := s.tileDim(ti)
	cols := s.tileDim(tj)
	t := &csrTile{rowPtr: make([]uint32, rows+1)}
	if e.length > 0 {
		payload := make([]byte, e.length)
		if _, err := s.r.ReadAt(payload, int64(e.offset)); err != nil {
			return nil, fmt.Errorf("ldsparse: reading tile (%d,%d): %w", ti, tj, err)
		}
		if crc := crc32.ChecksumIEEE(payload); crc != e.crc {
			return nil, fmt.Errorf("ldsparse: tile (%d,%d) checksum %08x, want %08x", ti, tj, crc, e.crc)
		}
		nnz := int(e.nnz)
		for k := range t.rowPtr {
			t.rowPtr[k] = binary.LittleEndian.Uint32(payload[k*4:])
		}
		if t.rowPtr[0] != 0 || t.rowPtr[rows] != uint32(nnz) {
			return nil, fmt.Errorf("ldsparse: tile (%d,%d) row pointers span [%d,%d), want [0,%d)",
				ti, tj, t.rowPtr[0], t.rowPtr[rows], nnz)
		}
		t.cols = make([]uint16, nnz)
		t.vals = make([]float64, nnz)
		colOff := (rows + 1) * 4
		valOff := colOff + nnz*2
		for k := 0; k < nnz; k++ {
			t.cols[k] = binary.LittleEndian.Uint16(payload[colOff+k*2:])
			t.vals[k] = math.Float64frombits(binary.LittleEndian.Uint64(payload[valOff+k*8:]))
		}
		for r := 0; r < rows; r++ {
			lo, hi := t.rowPtr[r], t.rowPtr[r+1]
			if lo > hi {
				return nil, fmt.Errorf("ldsparse: tile (%d,%d) row %d pointers decrease", ti, tj, r)
			}
			for k := lo; k < hi; k++ {
				c := int(t.cols[k])
				if c >= cols || (ti == tj && c < r) {
					return nil, fmt.Errorf("ldsparse: tile (%d,%d) row %d holds column %d outside its range", ti, tj, r, c)
				}
				if k > lo && c <= int(t.cols[k-1]) {
					return nil, fmt.Errorf("ldsparse: tile (%d,%d) row %d columns not ascending", ti, tj, r)
				}
			}
		}
		stats.bytesRead.Add(uint64(len(payload)))
	}
	stats.tilesRead.Add(1)
	s.cache.put(id, t)
	return t, nil
}

func (s *Store) checkSNP(name string, i int) error {
	if i < 0 || i >= s.SNPs() {
		return fmt.Errorf("ldsparse: %s=%d outside 0..%d", name, i, s.SNPs()-1)
	}
	return nil
}

// At returns the stored statistic for the pair (i, j), or 0 when the
// pair was pruned (or out of band). The store is symmetric: argument
// order does not matter.
func (s *Store) At(i, j int) (float64, error) {
	v, _, err := s.Lookup(i, j)
	return v, err
}

// Lookup is At plus an explicit presence flag, distinguishing a stored
// zero from a pruned entry.
func (s *Store) Lookup(i, j int) (float64, bool, error) {
	if err := s.checkSNP("i", i); err != nil {
		return 0, false, err
	}
	if err := s.checkSNP("j", j); err != nil {
		return 0, false, err
	}
	if i > j {
		i, j = j, i
	}
	nt := int(s.h.tileSize)
	ti, tj := i/nt, j/nt
	t, err := s.tile(ti, tj)
	if err != nil {
		return 0, false, err
	}
	r := i - ti*nt
	want := uint16(j - tj*nt)
	lo, hi := int(t.rowPtr[r]), int(t.rowPtr[r+1])
	k := lo + sort.Search(hi-lo, func(k int) bool { return t.cols[lo+k] >= want })
	stats.bytesServed.Add(8)
	if k < hi && t.cols[k] == want {
		return t.vals[k], true, nil
	}
	return 0, false, nil
}
