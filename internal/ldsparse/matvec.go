package ldsparse

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Sparse operators over the CSR tile store. The contract that matters is
// determinism: MatVec must equal, to the exact float64 bit pattern, the
// serial reference
//
//	for i: for j = 0..n−1 ascending: if kept(i,j): y[i] += R[i][j]·x[j]
//
// so a cluster of shards, a single node, and a test oracle can never
// disagree by a ulp. Parallelism therefore follows output ownership: one
// worker owns each output tile band, and within a band every output
// row's contributions are folded in globally ascending source order —
// transposed tiles from bands above (their CSR rows ARE the ascending
// source indices), then the diagonal tile's symmetric walk, then direct
// tiles to the right. No reductions, no races, no reordering.

// MatVec computes y = R·x over the stored entries, treating pruned (and
// out-of-band) cells as zero and applying symmetry — each stored
// upper-triangle entry contributes both (i,j) and (j,i).
func (s *Store) MatVec(x []float64) ([]float64, error) {
	return s.MatVecRange(x, 0, s.SNPs())
}

// MatVecRange computes the output rows [r0, r1) of R·x: the full-length
// input vector goes in, the owned slice of y comes out. A cluster shard
// serving its row strip produces exactly the bytes the full MatVec would
// place there, because per-row fold order does not depend on the range.
func (s *Store) MatVecRange(x []float64, r0, r1 int) ([]float64, error) {
	n := s.SNPs()
	if len(x) != n {
		return nil, fmt.Errorf("ldsparse: vector of %d entries against %d SNPs", len(x), n)
	}
	if r0 < 0 || r1 <= r0 || r1 > n {
		return nil, fmt.Errorf("ldsparse: invalid row range [%d,%d) of %d SNPs", r0, r1, n)
	}
	t0 := time.Now()
	out := make([]float64, r1-r0)
	nt := int(s.h.tileSize)
	tb0, tb1 := r0/nt, (r1-1)/nt

	var (
		next    atomic.Int64
		visited atomic.Int64
		firstMu sync.Mutex
		first   error
	)
	next.Store(int64(tb0))
	workers := min(runtime.GOMAXPROCS(0), tb1-tb0+1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				tb := int(next.Add(1) - 1)
				if tb > tb1 {
					return
				}
				nv, err := s.bandInto(tb, x, out, r0, r1)
				visited.Add(nv)
				if err != nil {
					firstMu.Lock()
					if first == nil {
						first = err
					}
					firstMu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	if first != nil {
		return nil, first
	}
	stats.matVecs.Add(1)
	stats.matVecNanos.Add(uint64(time.Since(t0).Nanoseconds()))
	stats.entriesVisited.Add(uint64(visited.Load()))
	stats.bytesServed.Add(uint64(len(out)) * 8)
	return out, nil
}

// bandInto folds every contribution to output rows owned by tile band tb
// (clipped to [r0, r1)) into out, in globally ascending source-index
// order per output row. Returns the number of stored entries visited.
func (s *Store) bandInto(tb int, x, out []float64, r0, r1 int) (int64, error) {
	nt := int(s.h.tileSize)
	base := tb * nt
	var visited int64
	inRange := func(g int) bool { return g >= r0 && g < r1 }

	// Tiles above the diagonal block, consumed transposed: stored entry
	// (gi, gj) with gi in band ta < tb contributes out[gj] += v·x[gi].
	// CSR row-major order delivers, for each output row gj, its
	// contributions in ascending gi — and ta ascending keeps that order
	// global.
	for ta := 0; ta < tb; ta++ {
		t, err := s.tile(ta, tb)
		if err != nil {
			return visited, err
		}
		aBase := ta * nt
		for r := 0; r < len(t.rowPtr)-1; r++ {
			xi := x[aBase+r]
			for k := t.rowPtr[r]; k < t.rowPtr[r+1]; k++ {
				if gj := base + int(t.cols[k]); inRange(gj) {
					out[gj-r0] += t.vals[k] * xi
				}
			}
			visited += int64(t.rowPtr[r+1] - t.rowPtr[r])
		}
	}

	// Diagonal tile, upper triangle stored once, walked row-major with a
	// symmetric scatter. For output row R this delivers the j < R
	// contributions first (entries (a, R) while scanning rows a < R,
	// ascending), then the j ≥ R ones (row R's own entries, columns
	// ascending) — exactly the serial reference's ascending-j fold.
	t, err := s.tile(tb, tb)
	if err != nil {
		return visited, err
	}
	for r := 0; r < len(t.rowPtr)-1; r++ {
		gi := base + r
		giIn := inRange(gi)
		for k := t.rowPtr[r]; k < t.rowPtr[r+1]; k++ {
			gj := base + int(t.cols[k])
			v := t.vals[k]
			if giIn {
				out[gi-r0] += v * x[gj]
			}
			if gj != gi && inRange(gj) {
				out[gj-r0] += v * x[gi]
			}
		}
		visited += int64(t.rowPtr[r+1] - t.rowPtr[r])
	}

	// Tiles to the right, consumed directly: entry (gi, gj) with gj in
	// band tc > tb contributes out[gi] += v·x[gj], columns ascending
	// within each row and tc ascending across tiles.
	for tc := tb + 1; tc < s.tiles; tc++ {
		t, err := s.tile(tb, tc)
		if err != nil {
			return visited, err
		}
		cBase := tc * nt
		for r := 0; r < len(t.rowPtr)-1; r++ {
			gi := base + r
			if !inRange(gi) {
				continue
			}
			acc := out[gi-r0]
			for k := t.rowPtr[r]; k < t.rowPtr[r+1]; k++ {
				acc += t.vals[k] * x[cBase+int(t.cols[k])]
			}
			out[gi-r0] = acc
			visited += int64(t.rowPtr[r+1] - t.rowPtr[r])
		}
	}
	return visited, nil
}

// Score computes the per-SNP score-statistic aggregate s[i] = Σ_j
// R[i][j]·z[j]² over stored entries — with R holding r², the Σ r²·χ²
// quantity GWAS summary-statistic pipelines consume (LD score regression
// terms, inflation diagnostics). It is exactly MatVec applied to the
// squared z vector, so it inherits MatVec's bit-determinism.
func (s *Store) Score(z []float64) ([]float64, error) {
	return s.ScoreRange(z, 0, s.SNPs())
}

// ScoreRange is Score restricted to output rows [r0, r1).
func (s *Store) ScoreRange(z []float64, r0, r1 int) ([]float64, error) {
	if len(z) != s.SNPs() {
		return nil, fmt.Errorf("ldsparse: vector of %d entries against %d SNPs", len(z), s.SNPs())
	}
	x := make([]float64, len(z))
	for i, v := range z {
		x[i] = v * v
	}
	out, err := s.MatVecRange(x, r0, r1)
	if err == nil {
		stats.scores.Add(1)
	}
	return out, err
}
