package ldsparse

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/blis"
	"ldgemm/internal/core"
)

// SourceBuildOptions configures an out-of-core sparse tile-store build.
type SourceBuildOptions struct {
	BuildOptions
	// IOPanelSNPs is the column-panel width of the out-of-core
	// scheduler's B-side fetches (default 1024 SNPs). In banded mode the
	// schedule caps every stripe's panels at the band edge, so this also
	// bounds the per-stripe I/O to O(Band + panel) columns.
	IOPanelSNPs int
	// Checkpoint maintains a <store>.ckpt manifest and <store>.idx index
	// sidecar, durably advanced after every flushed stripe, so a killed
	// build can restart where it left off instead of from scratch. On
	// failure the partial store and its sidecars are left in place.
	Checkpoint bool
	// Resume restarts from an existing checkpoint manifest (implies
	// Checkpoint). Without a manifest the build starts fresh; with one
	// that does not match this dataset + options, the build refuses.
	Resume bool
}

// CheckpointPath returns the manifest path for a store being built at
// path; SidecarPath the index sidecar's.
func CheckpointPath(path string) string { return path + ".ckpt" }
func SidecarPath(path string) string    { return path + ".idx" }

// BuildFileFromSource builds a sparse tile store at path from any
// bitmat.Source. The scan runs core.StreamSource's double-buffered
// panel-pair schedule (band-capped when Banded) with the Exact fused
// epilogue, so the output is byte-identical to Build on the resident
// matrix; with Checkpoint set, a build killed mid-run and restarted with
// Resume also converges to those exact bytes, re-computing only the
// stripes past the last durable manifest.
//
// On failure after at least one stripe has been flushed, the returned
// error is a *PartialError carrying the progress; with Checkpoint set
// the partial store stays on disk for a later Resume, otherwise it is
// removed like BuildFile's.
func BuildFileFromSource(path string, src bitmat.Source, opt SourceBuildOptions) (BuildStats, error) {
	bo, err := opt.BuildOptions.normalize()
	if err != nil {
		return BuildStats{}, err
	}
	useCkpt := opt.Checkpoint || opt.Resume
	n, samples := src.NumSNPs(), src.NumSamples()
	nt := bo.TileSize
	t := tilesFor(n, nt)
	fp := src.Fingerprint()
	hdr := bo.header(n, samples, fp)

	var (
		f           *os.File
		sidecar     *os.File
		startStripe int
		loaded      []indexEntry
		offset      = int64(headerSize)
	)
	if opt.Resume {
		m, merr := readManifest(CheckpointPath(path))
		switch {
		case merr == nil:
			if m.Fingerprint != fp || m.SNPs != n || m.Samples != samples ||
				m.TileSize != nt || Stat(m.Stat) != bo.Stat ||
				m.ThresholdBits != math.Float64bits(bo.Threshold) ||
				m.Banded != bo.Banded || m.Band != bo.Band {
				return BuildStats{}, fmt.Errorf("ldsparse: checkpoint at %s was written by a different build (dataset or options changed); remove it to start over", CheckpointPath(path))
			}
			if f, err = os.OpenFile(path, os.O_RDWR, 0o644); err != nil {
				return BuildStats{}, fmt.Errorf("ldsparse: resume: %w", err)
			}
			if sidecar, err = os.OpenFile(SidecarPath(path), os.O_RDWR, 0o644); err != nil {
				f.Close()
				return BuildStats{}, fmt.Errorf("ldsparse: resume: %w", err)
			}
			if loaded, err = loadSidecar(sidecar, m.TilesWritten); err != nil {
				f.Close()
				sidecar.Close()
				return BuildStats{}, err
			}
			// Discard anything past the durable offset — tile bytes whose
			// manifest rename never landed — and append from there.
			if err = f.Truncate(m.DataOffset); err == nil {
				_, err = f.Seek(m.DataOffset, io.SeekStart)
			}
			if err != nil {
				f.Close()
				sidecar.Close()
				return BuildStats{}, err
			}
			startStripe, offset = m.StripesDone, m.DataOffset
			blis.NoteResume()
		case errors.Is(merr, os.ErrNotExist):
			// No checkpoint yet: fall through to a fresh (checkpointed) build.
		default:
			return BuildStats{}, merr
		}
	}
	if f == nil {
		if f, err = os.Create(path); err != nil {
			return BuildStats{}, err
		}
		if _, err = f.Write(hdr.encode()); err != nil {
			f.Close()
			os.Remove(path)
			return BuildStats{}, err
		}
		if useCkpt {
			if sidecar, err = os.Create(SidecarPath(path)); err != nil {
				f.Close()
				os.Remove(path)
				return BuildStats{}, err
			}
		}
	}
	closeAll := func() {
		f.Close()
		if sidecar != nil {
			sidecar.Close()
		}
	}

	b := newSparseBuilder(n, bo, bufio.NewWriterSize(writerOnly{f}, 1<<20), offset, loaded, startStripe*nt)
	stripesDone := startStripe
	ckptTiles := len(loaded)
	b.onStripe = func(i0 int) error {
		if useCkpt {
			// Durability order: tile bytes to the OS, tile bytes to disk,
			// index entries to disk, then the manifest rename that makes
			// the stripe count them. A crash between any two steps leaves
			// the previous manifest authoritative.
			if err := b.bw.Flush(); err != nil {
				return err
			}
			if err := f.Sync(); err != nil {
				return err
			}
			if err := appendSidecar(sidecar, b.index[ckptTiles:]); err != nil {
				return err
			}
			ckptTiles = len(b.index)
			if err := writeManifest(CheckpointPath(path), manifest{
				Version: manifestVersion, Magic: manifestMagic,
				Fingerprint: fp, SNPs: n, Samples: samples,
				TileSize: nt, Stat: uint32(bo.Stat),
				ThresholdBits: math.Float64bits(bo.Threshold),
				Banded:        bo.Banded, Band: bo.Band,
				StripesDone: stripesDone + 1, DataOffset: b.offset,
				TilesWritten: ckptTiles,
			}); err != nil {
				return err
			}
		}
		stripesDone++
		return nil
	}

	fail := func(err error) (BuildStats, error) {
		closeAll()
		if stripesDone > startStripe || (startStripe > 0 && useCkpt) {
			err = &PartialError{FlushedStripes: stripesDone, TotalStripes: t, Err: err}
		}
		if !useCkpt {
			os.Remove(path)
		}
		return BuildStats{}, err
	}

	parent := bo.LD.Ctx
	if parent == nil {
		parent = context.Background()
	}
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	so := bo.streamOptions(ctx)
	so.IOPanelSNPs = opt.IOPanelSNPs
	if startStripe > 0 {
		if startStripe*nt >= n {
			// Every stripe already durable: nothing to scan.
			so.RowStart, so.RowEnd = 0, 0
		} else {
			so.RowStart, so.RowEnd = startStripe*nt, n
		}
	}
	var streamErr error
	if !(startStripe > 0 && startStripe*nt >= n) {
		streamErr = core.StreamSource(src, so, func(i, j0 int, row []float64) {
			if b.err != nil {
				return
			}
			if err := b.addRow(i, row); err != nil {
				b.err = err
				cancel()
			}
		})
	}
	if b.err != nil {
		return fail(b.err)
	}
	if streamErr != nil {
		return fail(streamErr)
	}

	tileBytes := b.offset - headerSize
	hdr.indexOffset = uint64(b.offset)
	hdr.nnz = uint64(b.nnz)
	entry := make([]byte, indexEntrySize)
	for _, e := range b.index {
		e.encode(entry)
		if _, err := b.bw.Write(entry); err != nil {
			return fail(err)
		}
	}
	if err := b.bw.Flush(); err != nil {
		return fail(err)
	}
	if _, err := f.WriteAt(hdr.encode(), 0); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	closeAll()
	if useCkpt {
		os.Remove(CheckpointPath(path))
		os.Remove(SidecarPath(path))
	}
	return BuildStats{
		Tiles:       len(b.index),
		NNZ:         b.nnz,
		TileBytes:   tileBytes,
		FileBytes:   b.offset + int64(len(b.index)*indexEntrySize),
		StartStripe: startStripe,
	}, nil
}
