package ldsparse

import (
	"errors"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"ldgemm/internal/bitmat"
)

func ldbmSource(t *testing.T, m *bitmat.Matrix, mapped bool) *bitmat.File {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.ldbm")
	if err := bitmat.WriteFile(path, m); err != nil {
		t.Fatal(err)
	}
	f, err := bitmat.OpenFile(path, mapped)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestSparseSourceBuildByteIdentical: an out-of-core sparse build from a
// file-backed source produces byte-for-byte the store the in-RAM
// builder writes — every access mode and panel width, plain and banded,
// with and without checkpointing.
func TestSparseSourceBuildByteIdentical(t *testing.T) {
	g := testMatrix(t, 131, 97, 5)
	for name, bo := range map[string]BuildOptions{
		"pruned": {TileSize: 24, Threshold: 0.05},
		"banded": {TileSize: 24, Threshold: 0.02, Banded: true, Band: 40},
	} {
		want := filepath.Join(t.TempDir(), "want.ldss")
		if _, err := BuildFile(want, g, bo); err != nil {
			t.Fatal(err)
		}
		ref := mustRead(t, want)
		cases := map[string]struct {
			src bitmat.Source
			opt SourceBuildOptions
		}{
			"mem":               {bitmat.NewMemSource(g), SourceBuildOptions{BuildOptions: bo}},
			"windowed":          {ldbmSource(t, g, false), SourceBuildOptions{BuildOptions: bo, IOPanelSNPs: 16}},
			"windowed-wide":     {ldbmSource(t, g, false), SourceBuildOptions{BuildOptions: bo, IOPanelSNPs: 1000}},
			"mmap":              {ldbmSource(t, g, true), SourceBuildOptions{BuildOptions: bo, IOPanelSNPs: 32}},
			"windowed-ckpt":     {ldbmSource(t, g, false), SourceBuildOptions{BuildOptions: bo, IOPanelSNPs: 16, Checkpoint: true}},
			"mmap-resume-fresh": {ldbmSource(t, g, true), SourceBuildOptions{BuildOptions: bo, IOPanelSNPs: 16, Resume: true}},
		}
		for mode, tc := range cases {
			path := filepath.Join(t.TempDir(), "got.ldss")
			st, err := BuildFileFromSource(path, tc.src, tc.opt)
			if err != nil {
				t.Fatalf("%s %s: %v", name, mode, err)
			}
			if got := mustRead(t, path); string(got) != string(ref) {
				t.Fatalf("%s %s: store bytes differ from in-RAM build (%d vs %d bytes)",
					name, mode, len(got), len(ref))
			}
			if st.Tiles == 0 || st.StartStripe != 0 {
				t.Fatalf("%s %s: stats %+v", name, mode, st)
			}
			if _, err := os.Stat(CheckpointPath(path)); !errors.Is(err, os.ErrNotExist) {
				t.Fatalf("%s %s: checkpoint manifest survived a completed build", name, mode)
			}
			if _, err := os.Stat(SidecarPath(path)); !errors.Is(err, os.ErrNotExist) {
				t.Fatalf("%s %s: index sidecar survived a completed build", name, mode)
			}
		}
	}
}

// flakySource injects an I/O failure after a fixed number of panel
// fetches — the test's stand-in for a mid-build kill.
type flakySource struct {
	bitmat.Source
	remaining atomic.Int64
}

func (s *flakySource) Panel(lo, hi int, buf *bitmat.Matrix) (*bitmat.Matrix, error) {
	if s.remaining.Add(-1) < 0 {
		return nil, errors.New("injected I/O failure")
	}
	return s.Source.Panel(lo, hi, buf)
}

// TestSparseSourceBuildKillAndResume: a checkpointed sparse build killed
// mid-run reports partial progress, leaves a durable manifest, and a
// resumed run converges to bytes identical to an uninterrupted build —
// even with crash garbage past the durable offset.
func TestSparseSourceBuildKillAndResume(t *testing.T) {
	g := testMatrix(t, 120, 77, 9)
	bo := BuildOptions{TileSize: 16, Threshold: 0.04, Banded: true, Band: 50}
	want := filepath.Join(t.TempDir(), "want.ldss")
	if _, err := BuildFile(want, g, bo); err != nil {
		t.Fatal(err)
	}
	ref := mustRead(t, want)

	src := ldbmSource(t, g, false)
	flaky := &flakySource{Source: src}
	flaky.remaining.Store(int64(120/16) + 12)
	path := filepath.Join(t.TempDir(), "got.ldss")
	_, err := BuildFileFromSource(path, flaky, SourceBuildOptions{
		BuildOptions: bo, IOPanelSNPs: 16, Checkpoint: true,
	})
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("killed build returned %v, want *PartialError", err)
	}
	if pe.FlushedStripes <= 0 || pe.FlushedStripes >= pe.TotalStripes {
		t.Fatalf("partial progress %d/%d out of range", pe.FlushedStripes, pe.TotalStripes)
	}
	m, err := readManifest(CheckpointPath(path))
	if err != nil {
		t.Fatalf("manifest after kill: %v", err)
	}
	if m.StripesDone != pe.FlushedStripes {
		t.Fatalf("manifest says %d stripes, error says %d", m.StripesDone, pe.FlushedStripes)
	}

	// Crash window: bytes past the durable offset whose manifest never
	// landed. Resume must truncate them away.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("garbage past the durable offset")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st, err := BuildFileFromSource(path, src, SourceBuildOptions{
		BuildOptions: bo, IOPanelSNPs: 16, Resume: true,
	})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if st.StartStripe != pe.FlushedStripes {
		t.Fatalf("resume started at stripe %d, want %d", st.StartStripe, pe.FlushedStripes)
	}
	if got := mustRead(t, path); string(got) != string(ref) {
		t.Fatal("resumed store differs from uninterrupted build")
	}
}

// TestSparseSourceBuildResumeRefusesMismatch: a manifest from a
// different dataset, threshold, or band must refuse to resume — the
// sparse knobs are part of the build identity.
func TestSparseSourceBuildResumeRefusesMismatch(t *testing.T) {
	g := testMatrix(t, 64, 50, 3)
	src := ldbmSource(t, g, false)
	bo := BuildOptions{TileSize: 16, Threshold: 0.1}
	flaky := &flakySource{Source: src}
	flaky.remaining.Store(int64(64/16) + 5)
	path := filepath.Join(t.TempDir(), "got.ldss")
	if _, err := BuildFileFromSource(path, flaky, SourceBuildOptions{
		BuildOptions: bo, IOPanelSNPs: 16, Checkpoint: true,
	}); err == nil {
		t.Fatal("flaky build should have failed")
	}

	other := testMatrix(t, 64, 50, 99)
	for name, tc := range map[string]struct {
		src bitmat.Source
		bo  BuildOptions
	}{
		"different dataset":   {ldbmSource(t, other, false), bo},
		"different tile size": {src, BuildOptions{TileSize: 32, Threshold: 0.1}},
		"different threshold": {src, BuildOptions{TileSize: 16, Threshold: 0.2}},
		"different stat":      {src, BuildOptions{TileSize: 16, Threshold: 0.1, Stat: StatD}},
		"banded vs not":       {src, BuildOptions{TileSize: 16, Threshold: 0.1, Banded: true, Band: 10}},
	} {
		if _, err := BuildFileFromSource(path, tc.src, SourceBuildOptions{
			BuildOptions: tc.bo, IOPanelSNPs: 16, Resume: true,
		}); err == nil {
			t.Fatalf("resume with %s must refuse", name)
		}
	}

	// The matching configuration still resumes fine.
	if _, err := BuildFileFromSource(path, src, SourceBuildOptions{
		BuildOptions: bo, IOPanelSNPs: 16, Resume: true,
	}); err != nil {
		t.Fatalf("matching resume failed: %v", err)
	}
}
