package ldsparse

import (
	"math"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/core"
	"ldgemm/internal/popsim"
)

func testMatrix(t *testing.T, snps, samples int, seed int64) *bitmat.Matrix {
	t.Helper()
	g, err := popsim.Mosaic(snps, samples, popsim.MosaicConfig{Seed: seed})
	if err != nil {
		t.Fatalf("popsim.Mosaic: %v", err)
	}
	return g
}

// denseRef materializes the full symmetric statistic matrix through the
// same Exact triangular scan the builder rides, so comparisons against
// the store can demand bit equality, not tolerance.
func denseRef(t *testing.T, g *bitmat.Matrix, stat Stat) []float64 {
	t.Helper()
	n := g.SNPs
	out := make([]float64, n*n)
	opt := core.StreamOptions{Triangular: true, Exact: true, StripeRows: 32}
	opt.Measures = stat.Measure()
	err := core.Stream(g, opt, func(i, j0 int, row []float64) {
		for k, v := range row {
			out[i*n+j0+k] = v
			out[(j0+k)*n+i] = v
		}
	})
	if err != nil {
		t.Fatalf("dense reference scan: %v", err)
	}
	return out
}

func buildStore(t *testing.T, g *bitmat.Matrix, bo BuildOptions) (string, *Store) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "r.ldss")
	if _, err := BuildFile(path, g, bo); err != nil {
		t.Fatalf("BuildFile: %v", err)
	}
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return path, s
}

// inBand reports whether the pair (i, j) was computed by a build with
// the given band options.
func inBand(bo BuildOptions, i, j int) bool {
	if !bo.Banded {
		return true
	}
	return max(i-j, j-i) <= bo.Band
}

// checkAgainstDense asserts the store holds exactly the in-band,
// threshold-surviving cells of the dense reference, bit for bit.
func checkAgainstDense(t *testing.T, s *Store, dense []float64, bo BuildOptions) {
	t.Helper()
	n := s.SNPs()
	var nnz int64
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			want := dense[i*n+j]
			wantKept := inBand(bo, i, j) && keep(want, bo.Threshold)
			v, ok, err := s.Lookup(i, j)
			if err != nil {
				t.Fatalf("Lookup(%d,%d): %v", i, j, err)
			}
			if ok != wantKept {
				t.Fatalf("Lookup(%d,%d) present=%v, want %v (|v|=%v τ=%v)", i, j, ok, wantKept, math.Abs(want), bo.Threshold)
			}
			if ok {
				nnz++
				if math.Float64bits(v) != math.Float64bits(want) {
					t.Fatalf("Lookup(%d,%d) = %v, dense %v", i, j, v, want)
				}
				// Symmetry: argument order must not matter.
				if sym, _, _ := s.Lookup(j, i); math.Float64bits(sym) != math.Float64bits(v) {
					t.Fatalf("Lookup(%d,%d) = %v != Lookup(%d,%d) = %v", j, i, sym, i, j, v)
				}
			}
		}
	}
	if s.NNZ() != nnz {
		t.Fatalf("header nnz %d, counted %d surviving cells", s.NNZ(), nnz)
	}
}

// TestBuildMatchesDense: a τ=0 build keeps every upper-triangle cell,
// bit-identical to the Exact dense scan, for every statistic.
func TestBuildMatchesDense(t *testing.T) {
	g := testMatrix(t, 83, 64, 11) // prime SNP count → ragged edge tiles
	for _, stat := range []Stat{StatR2, StatD, StatDPrime} {
		bo := BuildOptions{TileSize: 16, Stat: stat}
		dense := denseRef(t, g, stat)
		_, s := buildStore(t, g, bo)
		if s.Stat() != stat || s.Threshold() != 0 || s.Banded() {
			t.Fatalf("stat=%v: header %v/%v/%v", stat, s.Stat(), s.Threshold(), s.Banded())
		}
		checkAgainstDense(t, s, dense, bo)
		n := int64(s.SNPs())
		if want := n * (n + 1) / 2; s.NNZ() != want {
			t.Fatalf("stat=%v: τ=0 kept %d of %d cells", stat, s.NNZ(), want)
		}
	}
}

// TestThresholdPruning: τ set to a magnitude that actually occurs in the
// data — entries tied exactly at the threshold are kept, everything
// below is pruned, and two builds produce identical bytes.
func TestThresholdPruning(t *testing.T) {
	g := testMatrix(t, 60, 48, 7)
	dense := denseRef(t, g, StatR2)
	n := g.SNPs

	// Pick τ as an off-diagonal magnitude present in the matrix so the
	// |v| ≥ τ tie case is genuinely exercised, not vacuous.
	var mags []float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if v := math.Abs(dense[i*n+j]); v > 0 {
				mags = append(mags, v)
			}
		}
	}
	sort.Float64s(mags)
	tau := mags[len(mags)*7/10]

	bo := BuildOptions{TileSize: 16, Threshold: tau}
	path, s := buildStore(t, g, bo)
	checkAgainstDense(t, s, dense, bo)
	if s.NNZ() == 0 || s.NNZ() == int64(n)*int64(n+1)/2 {
		t.Fatalf("τ=%v pruned nothing or everything (nnz=%d)", tau, s.NNZ())
	}
	// The tie itself: at least one stored entry sits exactly at τ.
	tied := false
	for i := 0; i < n && !tied; i++ {
		for j := i + 1; j < n; j++ {
			if math.Abs(dense[i*n+j]) == tau {
				if _, ok, _ := s.Lookup(i, j); !ok {
					t.Fatalf("entry (%d,%d) tied at τ=%v was pruned", i, j, tau)
				}
				tied = true
				break
			}
		}
	}
	if !tied {
		t.Fatalf("no entry tied at τ=%v — threshold selection broken", tau)
	}

	// Determinism: a second build writes byte-identical output.
	again := filepath.Join(t.TempDir(), "again.ldss")
	if _, err := BuildFile(again, g, bo); err != nil {
		t.Fatal(err)
	}
	if string(mustRead(t, path)) != string(mustRead(t, again)) {
		t.Fatal("two builds with identical options differ byte-wise")
	}
}

// TestEmptyStore: a τ above every magnitude prunes everything; the empty
// store still round-trips — opens, reports itself, serves lookups and
// matvecs (all zero).
func TestEmptyStore(t *testing.T) {
	g := testMatrix(t, 40, 32, 3)
	bo := BuildOptions{TileSize: 16, Threshold: 1.5} // r² ≤ 1 < 1.5
	_, s := buildStore(t, g, bo)
	if s.NNZ() != 0 {
		t.Fatalf("τ=1.5 kept %d entries", s.NNZ())
	}
	info := s.Info()
	if info.EmptyTiles != info.Tiles || info.Density != 0 || info.TileBytes != 0 {
		t.Fatalf("empty store info %+v", info)
	}
	if v, ok, err := s.Lookup(3, 17); err != nil || ok || v != 0 {
		t.Fatalf("Lookup on empty store: %v %v %v", v, ok, err)
	}
	x := make([]float64, s.SNPs())
	for i := range x {
		x[i] = float64(i + 1)
	}
	y, err := s.MatVec(x)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range y {
		if v != 0 {
			t.Fatalf("empty-store MatVec y[%d] = %v", i, v)
		}
	}
}

// TestBandedStoreWideBandIdentical: a banded build with W ≥ n−1 holds
// exactly the unbanded store's entries — same nnz, same values bit for
// bit — and the files differ only in the header's flag and band fields.
func TestBandedStoreWideBandIdentical(t *testing.T) {
	g := testMatrix(t, 57, 40, 13)
	base := BuildOptions{TileSize: 16, Threshold: 0.05}
	densePath, dense := buildStore(t, g, base)

	wide := base
	wide.Banded, wide.Band = true, g.SNPs+5
	bandPath, banded := buildStore(t, g, wide)

	if banded.NNZ() != dense.NNZ() {
		t.Fatalf("wide band kept %d entries, dense %d", banded.NNZ(), dense.NNZ())
	}
	if !banded.Banded() || banded.Band() != g.SNPs+5 {
		t.Fatalf("banded header lost its band: %v %d", banded.Banded(), banded.Band())
	}
	db, bb := mustRead(t, densePath), mustRead(t, bandPath)
	if len(db) != len(bb) {
		t.Fatalf("file sizes differ: %d vs %d", len(db), len(bb))
	}
	if string(db[headerSize:]) != string(bb[headerSize:]) {
		t.Fatal("tile payloads differ between wide-banded and unbanded builds")
	}
	ref := denseRef(t, g, StatR2)
	checkAgainstDense(t, banded, ref, wide)
}

// TestBandedStoreDiagonalOnly: W = 0 keeps only self-pairs.
func TestBandedStoreDiagonalOnly(t *testing.T) {
	g := testMatrix(t, 50, 36, 21)
	bo := BuildOptions{TileSize: 16, Banded: true, Band: 0}
	_, s := buildStore(t, g, bo)
	checkAgainstDense(t, s, denseRef(t, g, StatR2), bo)
	if s.NNZ() > int64(g.SNPs) {
		t.Fatalf("W=0 stored %d entries for %d SNPs", s.NNZ(), g.SNPs)
	}
}

// TestBandedStoreNarrow: an intermediate band prunes by position and
// threshold together.
func TestBandedStoreNarrow(t *testing.T) {
	g := testMatrix(t, 71, 44, 17)
	bo := BuildOptions{TileSize: 16, Banded: true, Band: 9, Threshold: 0.02}
	_, s := buildStore(t, g, bo)
	checkAgainstDense(t, s, denseRef(t, g, StatR2), bo)
}

// TestBuildValidation: malformed options must refuse before any I/O.
func TestBuildValidation(t *testing.T) {
	g := testMatrix(t, 10, 16, 1)
	dir := t.TempDir()
	for name, bo := range map[string]BuildOptions{
		"negative threshold":  {Threshold: -0.5},
		"NaN threshold":       {Threshold: math.NaN()},
		"negative band":       {Banded: true, Band: -2},
		"band without banded": {Band: 5},
		"huge tile":           {TileSize: 1 << 20},
		"bad stat":            {Stat: Stat(9)},
	} {
		path := filepath.Join(dir, "x.ldss")
		if _, err := BuildFile(path, g, bo); err == nil {
			t.Fatalf("%s accepted", name)
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Fatalf("%s left a file behind", name)
		}
	}
}

// TestInfoAndStats: Info's derived fields are consistent and the package
// counters move.
func TestInfoAndStats(t *testing.T) {
	g := testMatrix(t, 48, 32, 5)
	_, s := buildStore(t, g, BuildOptions{TileSize: 16, Threshold: 0.1})
	info := s.Info()
	n := int64(info.SNPs)
	if info.DenseBytes != n*(n+1)/2*8 {
		t.Fatalf("dense bytes %d", info.DenseBytes)
	}
	if info.NNZ != s.NNZ() || info.Tiles != 6 {
		t.Fatalf("info %+v", info)
	}
	before := ReadStats()
	if _, _, err := s.Lookup(0, 47); err != nil {
		t.Fatal(err)
	}
	if after := ReadStats(); after.BytesServed <= before.BytesServed {
		t.Fatal("Lookup did not move BytesServed")
	}
}
