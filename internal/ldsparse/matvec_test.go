package ldsparse

import (
	"math"
	"testing"
)

// oracleMatVec is the serial reference the parallel operator must match
// bit for bit: for each output row, fold contributions in ascending
// source order over the cells the store holds (in-band, |v| ≥ τ).
func oracleMatVec(dense []float64, n int, bo BuildOptions, x []float64) []float64 {
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if v := dense[i*n+j]; inBand(bo, i, j) && keep(v, bo.Threshold) {
				y[i] += v * x[j]
			}
		}
	}
	return y
}

func testVector(n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(float64(3*i+1)) * float64(i%7+1)
	}
	return x
}

// TestMatVecMatchesOracle: the parallel tile-band matvec equals the
// serial ascending-j fold to exact float equality, on dense-ish,
// pruned, and banded stores — and repeats identically, so the parallel
// schedule never reorders a fold.
func TestMatVecMatchesOracle(t *testing.T) {
	g := testMatrix(t, 77, 52, 19)
	n := g.SNPs
	dense := denseRef(t, g, StatR2)
	x := testVector(n)
	for name, bo := range map[string]BuildOptions{
		"full":     {TileSize: 16},
		"pruned":   {TileSize: 16, Threshold: 0.08},
		"banded":   {TileSize: 16, Banded: true, Band: 11, Threshold: 0.02},
		"diagonal": {TileSize: 16, Banded: true, Band: 0},
	} {
		_, s := buildStore(t, g, bo)
		want := oracleMatVec(dense, n, bo, x)
		var first []float64
		for rep := 0; rep < 5; rep++ {
			y, err := s.MatVec(x)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			for i := range y {
				if math.Float64bits(y[i]) != math.Float64bits(want[i]) {
					t.Fatalf("%s rep %d: y[%d] = %v, oracle %v", name, rep, i, y[i], want[i])
				}
			}
			if rep == 0 {
				first = append([]float64(nil), y...)
				continue
			}
			for i := range y {
				if math.Float64bits(y[i]) != math.Float64bits(first[i]) {
					t.Fatalf("%s: rep %d diverged from rep 0 at row %d", name, rep, i)
				}
			}
		}
	}
}

// TestMatVecRangeStrips: shard-style row strips concatenate to exactly
// the full MatVec — the cluster scatter-gather identity.
func TestMatVecRangeStrips(t *testing.T) {
	g := testMatrix(t, 61, 40, 23)
	n := g.SNPs
	_, s := buildStore(t, g, BuildOptions{TileSize: 16, Threshold: 0.03})
	x := testVector(n)
	full, err := s.MatVec(x)
	if err != nil {
		t.Fatal(err)
	}
	for _, strips := range [][]int{{0, 61}, {0, 7, 61}, {0, 16, 32, 48, 61}, {0, 1, 60, 61}} {
		var got []float64
		for k := 0; k+1 < len(strips); k++ {
			part, err := s.MatVecRange(x, strips[k], strips[k+1])
			if err != nil {
				t.Fatalf("strip [%d,%d): %v", strips[k], strips[k+1], err)
			}
			got = append(got, part...)
		}
		for i := range full {
			if math.Float64bits(got[i]) != math.Float64bits(full[i]) {
				t.Fatalf("strips %v: row %d = %v, full %v", strips, i, got[i], full[i])
			}
		}
	}
}

// TestScoreMatchesSquaredMatVec: Score(z) is exactly MatVec(z∘z).
func TestScoreMatchesSquaredMatVec(t *testing.T) {
	g := testMatrix(t, 45, 36, 29)
	n := g.SNPs
	_, s := buildStore(t, g, BuildOptions{TileSize: 16, Threshold: 0.05})
	z := testVector(n)
	x := make([]float64, n)
	for i, v := range z {
		x[i] = v * v
	}
	want, err := s.MatVec(x)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Score(z)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("Score[%d] = %v, MatVec(z²) %v", i, got[i], want[i])
		}
	}
	if part, err := s.ScoreRange(z, 10, 20); err != nil {
		t.Fatal(err)
	} else {
		for i, v := range part {
			if math.Float64bits(v) != math.Float64bits(want[10+i]) {
				t.Fatalf("ScoreRange[%d] = %v, want %v", 10+i, v, want[10+i])
			}
		}
	}
}

// TestMatVecValidation: wrong vector lengths and degenerate ranges are
// rejected.
func TestMatVecValidation(t *testing.T) {
	g := testMatrix(t, 30, 24, 31)
	_, s := buildStore(t, g, BuildOptions{TileSize: 16})
	if _, err := s.MatVec(make([]float64, 29)); err == nil {
		t.Fatal("short vector accepted")
	}
	x := make([]float64, 30)
	for _, r := range [][2]int{{-1, 10}, {5, 5}, {10, 5}, {0, 31}} {
		if _, err := s.MatVecRange(x, r[0], r[1]); err == nil {
			t.Fatalf("range [%d,%d) accepted", r[0], r[1])
		}
	}
	if _, err := s.ScoreRange(make([]float64, 3), 0, 30); err == nil {
		t.Fatal("short score vector accepted")
	}
}
