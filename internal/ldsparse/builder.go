package ldsparse

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/core"
	"ldgemm/internal/ldstore"
)

// BuildOptions configures a sparse tile-store build.
type BuildOptions struct {
	// TileSize is NT, the side of each square tile (default 256). The
	// dense-equivalent NT²×8 bytes must not exceed ldstore.MaxTileBytes,
	// which also keeps NT within the uint16 tile-local column range.
	TileSize int
	// Stat selects the statistic to materialize (default StatR2).
	Stat Stat
	// Threshold is the pruning cutoff τ: entries survive iff |v| ≥ τ,
	// applied inside the build's single streaming pass as the fused
	// epilogue hands rows over — pruning costs no extra sweep. τ = 0
	// keeps every computed cell.
	Threshold float64
	// Banded restricts the build to |i−j| ≤ Band via the streaming
	// scan's banded schedule: far-off-diagonal GEMM work is skipped
	// outright, not computed and discarded, and the resulting tiles
	// beyond the band are stored as zero-length payloads. Band = 0 is
	// legal (diagonal only). Banded is recorded in the header so readers
	// can distinguish "absent because out of band" from "pruned".
	Banded bool
	Band   int
	// LD carries kernel blocking, threading, and context options for the
	// blocked pass that produces the values.
	LD core.Options
}

// BuildStats reports what a build wrote.
type BuildStats struct {
	// Tiles is the number of tiles indexed (empty ones included); NNZ
	// the entries that survived pruning; TileBytes their total CSR
	// payload size; FileBytes the whole container.
	Tiles     int
	NNZ       int64
	TileBytes int64
	FileBytes int64
	// StartStripe is the tile row the build began at: 0 for a fresh
	// build, the checkpoint's stripe count for a resumed one.
	StartStripe int
}

func (o BuildOptions) normalize() (BuildOptions, error) {
	if o.TileSize == 0 {
		o.TileSize = 256
	}
	if o.Stat == 0 {
		o.Stat = StatR2
	}
	if o.TileSize < 1 {
		return o, fmt.Errorf("ldsparse: invalid tile size %d", o.TileSize)
	}
	if raw := int64(o.TileSize) * int64(o.TileSize) * 8; raw > ldstore.MaxTileBytes || o.TileSize > maxTileSide {
		return o, fmt.Errorf("ldsparse: tile size %d needs %d-byte dense-equivalent tiles, above MaxTileBytes (%d)",
			o.TileSize, raw, ldstore.MaxTileBytes)
	}
	if !validStat(o.Stat) {
		return o, fmt.Errorf("ldsparse: invalid statistic kind %d", uint32(o.Stat))
	}
	if math.IsNaN(o.Threshold) || o.Threshold < 0 {
		return o, fmt.Errorf("ldsparse: invalid threshold %v", o.Threshold)
	}
	if o.Banded && o.Band < 0 {
		return o, fmt.Errorf("ldsparse: invalid band width %d", o.Band)
	}
	if !o.Banded && o.Band != 0 {
		return o, fmt.Errorf("ldsparse: Band=%d set without Banded", o.Band)
	}
	return o, nil
}

func (o BuildOptions) header(n, samples int, fp uint64) header {
	t := tilesFor(n, o.TileSize)
	h := header{
		stat:        o.Stat,
		snps:        uint64(n),
		samples:     uint64(samples),
		tileSize:    uint32(o.TileSize),
		fingerprint: fp,
		tileCount:   uint64(triangleTiles(t)),
		threshold:   o.Threshold,
	}
	if o.Banded {
		h.flags |= flagBanded
		h.band = uint64(o.Band)
	}
	return h
}

// streamOptions builds the core scan configuration shared by the
// resident and out-of-core builds: one stripe per tile row, triangular,
// Exact (stored values bit-identical to the dense compute paths), and
// banded when requested.
func (o BuildOptions) streamOptions(ctx context.Context) core.StreamOptions {
	ld := o.LD
	ld.Ctx = ctx
	ld.Measures = o.Stat.Measure()
	return core.StreamOptions{
		Options:    ld,
		StripeRows: o.TileSize,
		Triangular: true,
		Exact:      true,
		Banded:     o.Banded,
		Band:       o.Band,
	}
}

// BuildFile builds a sparse tile store for the matrix at path, removing
// the partial file on failure.
func BuildFile(path string, g *bitmat.Matrix, opt BuildOptions) (BuildStats, error) {
	f, err := os.Create(path)
	if err != nil {
		return BuildStats{}, err
	}
	st, err := Build(f, g, opt)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(path)
		return BuildStats{}, err
	}
	return st, nil
}

// Build computes the selected statistic for every SNP pair of g (or only
// the |i−j| ≤ Band pairs in banded mode) with the blocked driver and
// writes the threshold-pruned CSR tile container to w. The scan rides
// core.Stream's fused tile epilogue with StripeRows = TileSize, so each
// tile row is pruned and serialized from one stripe as the values land —
// result memory stays O(TileSize × SNPs) and pruning costs no pass of
// its own. The Exact epilogue is forced so surviving values are
// bit-identical to the dense core.Matrix path and to ldstore's tiles.
func Build(w io.WriteSeeker, g *bitmat.Matrix, opt BuildOptions) (BuildStats, error) {
	opt, err := opt.normalize()
	if err != nil {
		return BuildStats{}, err
	}
	n := g.SNPs
	hdr := opt.header(n, g.Samples, g.Fingerprint())

	bw := bufio.NewWriterSize(writerOnly{w}, 1<<20)
	if _, err := bw.Write(hdr.encode()); err != nil {
		return BuildStats{}, err
	}
	b := newSparseBuilder(n, opt, bw, headerSize, nil, 0)

	parent := opt.LD.Ctx
	if parent == nil {
		parent = context.Background()
	}
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	streamErr := core.Stream(g, opt.streamOptions(ctx), func(i, j0 int, row []float64) {
		if b.err != nil {
			return
		}
		if err := b.addRow(i, row); err != nil {
			b.err = err
			cancel()
		}
	})
	if b.err != nil {
		return BuildStats{}, b.err
	}
	if streamErr != nil {
		return BuildStats{}, streamErr
	}

	// Index, then the back-patched header carrying its offset and the
	// final entry count.
	tileBytes := b.offset - headerSize
	hdr.indexOffset = uint64(b.offset)
	hdr.nnz = uint64(b.nnz)
	entry := make([]byte, indexEntrySize)
	for _, e := range b.index {
		e.encode(entry)
		if _, err := bw.Write(entry); err != nil {
			return BuildStats{}, err
		}
	}
	if err := bw.Flush(); err != nil {
		return BuildStats{}, err
	}
	if _, err := w.Seek(0, io.SeekStart); err != nil {
		return BuildStats{}, err
	}
	if _, err := w.Write(hdr.encode()); err != nil {
		return BuildStats{}, err
	}
	return BuildStats{
		Tiles:     len(b.index),
		NNZ:       b.nnz,
		TileBytes: tileBytes,
		FileBytes: b.offset + int64(len(b.index)*indexEntrySize),
	}, nil
}

// sparseBuilder accumulates one stripe of statistic rows and flushes it
// as one row of threshold-pruned CSR tiles.
type sparseBuilder struct {
	n     int
	nt    int
	tiles int
	tau   float64

	bw     *bufio.Writer
	offset int64
	index  []indexEntry
	nnz    int64
	err    error

	// onStripe, when set, runs after each stripe's tiles are fully
	// appended — the checkpointing hook of the out-of-core builder.
	onStripe func(i0 int) error

	// buf holds the current stripe: row r (global SNP i0+r) occupies
	// buf[r*width : (r+1)*width] for columns [i0, SNPs), width = SNPs−i0.
	// rowEnd[r] is the exclusive global end column the stream actually
	// delivered for that row — the band edge in banded mode, n otherwise.
	// Cells past rowEnd are stale bytes from an earlier stripe and are
	// never scanned.
	buf    []float64
	rowEnd []int

	ptrBuf []uint32
	colBuf []uint16
	valBuf []float64
	raw    []byte

	next int // expected next global row
}

func newSparseBuilder(n int, opt BuildOptions, bw *bufio.Writer, offset int64, loaded []indexEntry, next int) *sparseBuilder {
	nt := opt.TileSize
	t := tilesFor(n, nt)
	b := &sparseBuilder{
		n: n, nt: nt, tiles: t, tau: opt.Threshold,
		bw:     bw,
		offset: offset,
		index:  append(make([]indexEntry, 0, triangleTiles(t)), loaded...),
		buf:    make([]float64, min(nt, max(n, 1))*n),
		rowEnd: make([]int, min(nt, max(n, 1))),
		next:   next,
	}
	for _, e := range loaded {
		b.nnz += int64(e.nnz)
	}
	return b
}

// addRow copies one streamed row into the stripe buffer and flushes the
// stripe once its last row has arrived. core.Stream delivers rows in
// order; the builder asserts that rather than trusting it silently.
func (b *sparseBuilder) addRow(i int, row []float64) error {
	if i != b.next {
		return fmt.Errorf("ldsparse: stream delivered row %d, want %d", i, b.next)
	}
	b.next++
	i0 := i - i%b.nt
	width := b.n - i0
	r := i - i0
	copy(b.buf[r*width+(i-i0):r*width+(i-i0)+len(row)], row)
	b.rowEnd[r] = i + len(row)
	if i == min(i0+b.nt, b.n)-1 {
		return b.flushStripe(i0)
	}
	return nil
}

// flushStripe prunes and serializes every tile of tile row i0/nt. The
// diagonal tile keeps only its upper triangle — the stripe never held
// the lower half, and sparse consumers apply symmetry themselves.
func (b *sparseBuilder) flushStripe(i0 int) error {
	rows := min(b.nt, b.n-i0)
	width := b.n - i0
	ti := i0 / b.nt
	for tj := ti; tj < b.tiles; tj++ {
		if err := b.writeTile(i0, rows, width, ti, tj); err != nil {
			return err
		}
	}
	if b.onStripe != nil {
		return b.onStripe(i0)
	}
	return nil
}

// writeTile scans tile (ti, tj)'s cells in the stripe buffer, keeps the
// |v| ≥ τ survivors as a tile-local CSR block, and appends payload +
// index entry. Tiles with no survivor — every far-off-band tile of a
// banded build — cost zero payload bytes, only their index entry.
func (b *sparseBuilder) writeTile(i0, rows, width, ti, tj int) error {
	colBase := tj * b.nt
	ncols := min(b.nt, b.n-colBase)
	b.ptrBuf = append(b.ptrBuf[:0], 0)
	b.colBuf = b.colBuf[:0]
	b.valBuf = b.valBuf[:0]
	for r := 0; r < rows; r++ {
		gi := i0 + r
		cStart := colBase
		if ti == tj && gi > cStart {
			cStart = gi // diagonal tile: upper triangle only
		}
		cEnd := min(colBase+ncols, b.rowEnd[r])
		for c := cStart; c < cEnd; c++ {
			if v := b.buf[r*width+(c-i0)]; keep(v, b.tau) {
				b.colBuf = append(b.colBuf, uint16(c-colBase))
				b.valBuf = append(b.valBuf, v)
			}
		}
		b.ptrBuf = append(b.ptrBuf, uint32(len(b.colBuf)))
	}
	nnz := int64(len(b.colBuf))
	var payload []byte
	if nnz > 0 {
		length := int(csrBytes(rows, nnz))
		if cap(b.raw) < length {
			b.raw = make([]byte, length)
		}
		b.raw = b.raw[:length]
		for k, p := range b.ptrBuf {
			binary.LittleEndian.PutUint32(b.raw[k*4:], p)
		}
		off := (rows + 1) * 4
		for k, c := range b.colBuf {
			binary.LittleEndian.PutUint16(b.raw[off+k*2:], c)
		}
		off += len(b.colBuf) * 2
		for k, v := range b.valBuf {
			binary.LittleEndian.PutUint64(b.raw[off+k*8:], math.Float64bits(v))
		}
		payload = b.raw
		if _, err := b.bw.Write(payload); err != nil {
			return err
		}
	}
	b.index = append(b.index, indexEntry{
		offset: uint64(b.offset),
		length: uint32(len(payload)),
		crc:    crc32.ChecksumIEEE(payload),
		nnz:    uint64(nnz),
	})
	b.offset += int64(len(payload))
	b.nnz += nnz
	return nil
}

// writerOnly hides the Seek method from bufio so buffered writes cannot
// interleave with the final header patch unflushed.
type writerOnly struct{ w io.Writer }

func (wo writerOnly) Write(p []byte) (int, error) { return wo.w.Write(p) }
