package omega

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/core"
)

func randomMatrix(rng *rand.Rand, snps, samples int) *bitmat.Matrix {
	m := bitmat.New(snps, samples)
	for i := 0; i < snps; i++ {
		for s := 0; s < samples; s++ {
			if rng.Intn(2) == 1 {
				m.SetBit(i, s)
			}
		}
	}
	return m
}

// naiveOmega computes ω for a fixed split directly from pair r² values.
func naiveOmega(g *bitmat.Matrix, a, c, b int) float64 {
	var withinL, withinR, cross float64
	for i := a; i < c; i++ {
		for j := i + 1; j < c; j++ {
			withinL += core.PairLD(g, i, j).R2
		}
	}
	for i := c; i < b; i++ {
		for j := i + 1; j < b; j++ {
			withinR += core.PairLD(g, i, j).R2
		}
	}
	for i := a; i < c; i++ {
		for j := c; j < b; j++ {
			cross += core.PairLD(g, i, j).R2
		}
	}
	l, r := c-a, b-c
	if cross <= 0 {
		return 0
	}
	pairs := float64(l*(l-1)/2 + r*(r-1)/2)
	return (withinL + withinR) / pairs / (cross / float64(l*r))
}

// naiveBest maximizes naiveOmega over all admissible splits.
func naiveBest(g *bitmat.Matrix, center int, cfg Config) float64 {
	winLo := max(0, center-cfg.MaxEach)
	winHi := min(g.SNPs, center+cfg.MaxEach)
	best := 0.0
	for a := winLo; a <= center-cfg.MinEach; a++ {
		for b := center + cfg.MinEach; b <= winHi; b++ {
			if om := naiveOmega(g, a, center, b); om > best {
				best = om
			}
		}
	}
	return best
}

func TestAtMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randomMatrix(rng, 30, 100)
	cfg := Config{MinEach: 2, MaxEach: 10, GridPoints: 1}
	for _, center := range []int{2, 10, 15, 28} {
		got, err := At(g, center, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := naiveBest(g, center, cfg)
		if math.Abs(got.Omega-want) > 1e-9 {
			t.Fatalf("center %d: ω = %v, want %v", center, got.Omega, want)
		}
		if got.Omega > 0 {
			// The reported split must reproduce the reported value.
			if om := naiveOmega(g, got.Left, center, got.Right); math.Abs(om-got.Omega) > 1e-9 {
				t.Fatalf("center %d: reported split gives %v, not %v", center, om, got.Omega)
			}
		}
	}
}

func TestAtRejectsBadCenter(t *testing.T) {
	g := randomMatrix(rand.New(rand.NewSource(2)), 10, 50)
	if _, err := At(g, 1, Config{}); err == nil {
		t.Fatal("center too close to edge accepted")
	}
	if _, err := At(g, 9, Config{}); err == nil {
		t.Fatal("center too close to right edge accepted")
	}
}

func TestScanGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomMatrix(rng, 60, 80)
	pts, err := Scan(g, Config{GridPoints: 7, MinEach: 2, MaxEach: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 7 {
		t.Fatalf("got %d points", len(pts))
	}
	if pts[0].Center != 2 || pts[len(pts)-1].Center != 58 {
		t.Fatalf("grid endpoints %d..%d", pts[0].Center, pts[len(pts)-1].Center)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Center <= pts[i-1].Center {
			t.Fatal("grid not increasing")
		}
	}
}

func TestScanErrors(t *testing.T) {
	g := randomMatrix(rand.New(rand.NewSource(4)), 3, 20)
	if _, err := Scan(g, Config{}); err == nil {
		t.Fatal("too few SNPs accepted")
	}
	g = randomMatrix(rand.New(rand.NewSource(4)), 30, 20)
	if _, err := Scan(g, Config{MinEach: 1}); err == nil {
		t.Fatal("MinEach=1 accepted")
	}
	if _, err := Scan(g, Config{MinEach: 5, MaxEach: 3}); err == nil {
		t.Fatal("MaxEach<MinEach accepted")
	}
}

// TestSweepSignal builds the textbook sweep signature — perfect LD within
// each flank, independence across — and checks ω peaks at the true center.
func TestSweepSignal(t *testing.T) {
	const samples = 200
	rng := rand.New(rand.NewSource(5))
	left := make([]byte, samples)
	right := make([]byte, samples)
	for s := range left {
		left[s] = byte(rng.Intn(2))
		right[s] = byte(rng.Intn(2))
	}
	cols := make([][]byte, 20)
	for i := range cols {
		if i < 10 {
			cols[i] = left
		} else {
			cols[i] = right
		}
	}
	g, err := bitmat.FromColumns(cols)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{GridPoints: 17, MinEach: 2, MaxEach: 10}
	pts, err := Scan(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	best := pts[0]
	for _, p := range pts {
		if p.Omega > best.Omega {
			best = p
		}
	}
	if best.Center != 10 {
		t.Fatalf("ω peak at %d (ω=%v), want 10; points %+v", best.Center, best.Omega, pts)
	}
	// The peak must dominate an off-center boundary decisively.
	off, err := At(g, 5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if best.Omega < 2*off.Omega {
		t.Fatalf("peak ω %v does not dominate off-center ω %v", best.Omega, off.Omega)
	}
}

func TestPrefixSum(t *testing.T) {
	m := []float64{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}
	ps := newPrefixSum(m, 3)
	if got := ps.rect(0, 3, 0, 3); got != 45 {
		t.Fatalf("full rect = %v", got)
	}
	if got := ps.rect(1, 3, 0, 2); got != 4+5+7+8 {
		t.Fatalf("sub rect = %v", got)
	}
	if got := ps.diag(0, 3); got != 15 {
		t.Fatalf("diag = %v", got)
	}
	if got := ps.within(0, 3); got != (45-15)/2 {
		t.Fatalf("within = %v", got)
	}
	if got := ps.rect(2, 2, 0, 3); got != 0 {
		t.Fatalf("empty rect = %v", got)
	}
}

// Property: At never returns a larger ω than the brute-force maximum, and
// matches it exactly.
func TestQuickAt(t *testing.T) {
	f := func(seed int64, n8, s8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(n8%15) + 8
		samples := int(s8%60) + 10
		g := randomMatrix(rng, n, samples)
		cfg := Config{MinEach: 2, MaxEach: 5, GridPoints: 1}
		center := n / 2
		got, err := At(g, center, cfg)
		if err != nil {
			return false
		}
		return math.Abs(got.Omega-naiveBest(g, center, cfg)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestScanParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := randomMatrix(rng, 80, 120)
	serial, err := Scan(g, Config{GridPoints: 15, MinEach: 3, MaxEach: 12, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Scan(g, Config{GridPoints: 15, MinEach: 3, MaxEach: 12, Threads: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("lengths %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("point %d: %+v vs %+v", i, serial[i], parallel[i])
		}
	}
}

func TestScanInvalidThreads(t *testing.T) {
	g := randomMatrix(rand.New(rand.NewSource(7)), 30, 40)
	if _, err := Scan(g, Config{Threads: -1}); err == nil {
		t.Fatal("negative threads accepted")
	}
}
