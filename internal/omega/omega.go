// Package omega implements the Kim–Nielsen ω statistic for selective-sweep
// detection — the LD consumer that OmegaPlus (one of the paper's two
// comparison codes) is built around.
//
// Selective sweep theory (Section I of the paper) predicts high LD on each
// side of a positively selected site and low LD across it. For a candidate
// site splitting a window of SNPs into a left set L and right set R, with
// l = |L| and r = |R|:
//
//	        ( C(l,2)+C(r,2) )⁻¹ · ( Σ_{i<j∈L} r²ᵢⱼ + Σ_{i<j∈R} r²ᵢⱼ )
//	ω = ─────────────────────────────────────────────────────────────
//	        ( l·r )⁻¹ · Σ_{i∈L, j∈R} r²ᵢⱼ
//
// The scan maximizes ω over the window split for every grid position,
// exactly the "only the LD values required for the ω statistic" workload
// the paper contrasts with all-pairs computation. The r² sub-matrices come
// from the blocked GEMM path; block sums use 2-D prefix sums so each
// (left, right) candidate costs O(1).
package omega

import (
	"fmt"
	"sync"
	"sync/atomic"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/core"
)

// Config controls the grid scan.
type Config struct {
	// GridPoints is the number of evaluation positions spread evenly
	// across the SNP index range (default 100, capped by SNPs−1).
	GridPoints int
	// MinEach is the minimum number of SNPs required on each side of a
	// candidate site (default 2; values below 2 make ω undefined).
	MinEach int
	// MaxEach is the maximum number of SNPs considered on each side
	// (default 100). The r² window is 2·MaxEach wide.
	MaxEach int
	// Threads parallelizes the grid scan across goroutines (default 1).
	// Grid positions are independent, so this is OmegaPlus's coarse-grain
	// parallelization scheme.
	Threads int
	// LD carries the blocking/threading options for the per-window r²
	// computations (fine-grain parallelism; usually leave single-threaded
	// when Threads > 1).
	LD core.Options
}

func (c Config) normalize(snps int) (Config, error) {
	if c.GridPoints == 0 {
		c.GridPoints = 100
	}
	if c.MinEach == 0 {
		c.MinEach = 2
	}
	if c.MaxEach == 0 {
		c.MaxEach = 100
	}
	if c.Threads == 0 {
		c.Threads = 1
	}
	if c.GridPoints < 1 || c.MinEach < 2 || c.MaxEach < c.MinEach || c.Threads < 1 {
		return c, fmt.Errorf("omega: invalid config %+v", c)
	}
	if snps < 2*c.MinEach {
		return c, fmt.Errorf("omega: %d SNPs is too few for MinEach=%d", snps, c.MinEach)
	}
	return c, nil
}

// Point is the scan result at one grid position.
type Point struct {
	// Center is the SNP boundary index: the candidate site lies between
	// SNP Center−1 and SNP Center.
	Center int
	// Omega is the maximized ω value (0 when undefined everywhere).
	Omega float64
	// Left and Right are the SNP index bounds [Left, Center) and
	// [Center, Right) of the maximizing split.
	Left, Right int
}

// Scan evaluates the maximized ω statistic at GridPoints boundaries evenly
// spaced over the SNP range of g.
func Scan(g *bitmat.Matrix, cfg Config) ([]Point, error) {
	cfg, err := cfg.normalize(g.SNPs)
	if err != nil {
		return nil, err
	}
	n := g.SNPs
	// Candidate boundaries range over [MinEach, n−MinEach].
	lo, hi := cfg.MinEach, n-cfg.MinEach
	points := min(cfg.GridPoints, hi-lo+1)
	out := make([]Point, points)

	eval := func(p int) error {
		center := lo
		if points > 1 {
			center = lo + p*(hi-lo)/(points-1)
		}
		pt, err := At(g, center, cfg)
		if err != nil {
			return err
		}
		out[p] = pt
		return nil
	}

	if cfg.Threads == 1 {
		for p := 0; p < points; p++ {
			if err := eval(p); err != nil {
				return nil, err
			}
		}
		return out, nil
	}

	// Coarse-grain parallelism: independent grid positions on a shared
	// atomic cursor.
	var (
		wg      sync.WaitGroup
		cursor  atomic.Int64
		errOnce sync.Once
		scanErr error
	)
	workers := min(cfg.Threads, points)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				p := int(cursor.Add(1)) - 1
				if p >= points {
					return
				}
				if err := eval(p); err != nil {
					errOnce.Do(func() { scanErr = err })
					return
				}
			}
		}()
	}
	wg.Wait()
	if scanErr != nil {
		return nil, scanErr
	}
	return out, nil
}

// At computes the maximized ω for a single candidate boundary.
func At(g *bitmat.Matrix, center int, cfg Config) (Point, error) {
	cfg, err := cfg.normalize(g.SNPs)
	if err != nil {
		return Point{}, err
	}
	if center < cfg.MinEach || center > g.SNPs-cfg.MinEach {
		return Point{}, fmt.Errorf("omega: center %d leaves fewer than %d SNPs on a side", center, cfg.MinEach)
	}
	winLo := max(0, center-cfg.MaxEach)
	winHi := min(g.SNPs, center+cfg.MaxEach)
	ld := cfg.LD
	ld.Measures = core.MeasureR2
	res, err := core.Matrix(g.Slice(winLo, winHi), ld)
	if err != nil {
		return Point{}, err
	}
	w := winHi - winLo
	ps := newPrefixSum(res.R2, w)
	c := center - winLo

	best := Point{Center: center}
	for l := cfg.MinEach; l <= c; l++ {
		a := c - l
		withinL := ps.within(a, c)
		for r := cfg.MinEach; r <= w-c; r++ {
			b := c + r
			cross := ps.rect(a, c, c, b)
			if cross <= 0 {
				continue
			}
			withinR := ps.within(c, b)
			numPairs := float64(l*(l-1)/2 + r*(r-1)/2)
			om := ((withinL + withinR) / numPairs) / (cross / float64(l*r))
			if om > best.Omega {
				best.Omega = om
				best.Left = winLo + a
				best.Right = winLo + b
			}
		}
	}
	return best, nil
}

// prefixSum supports O(1) rectangle sums over a dense w×w matrix.
type prefixSum struct {
	w int
	p []float64 // (w+1)×(w+1)
}

func newPrefixSum(m []float64, w int) *prefixSum {
	ps := &prefixSum{w: w, p: make([]float64, (w+1)*(w+1))}
	for i := 0; i < w; i++ {
		rowSum := 0.0
		for j := 0; j < w; j++ {
			rowSum += m[i*w+j]
			ps.p[(i+1)*(w+1)+j+1] = ps.p[i*(w+1)+j+1] + rowSum
		}
	}
	return ps
}

// rect returns the sum over rows [r0,r1) × cols [c0,c1).
func (ps *prefixSum) rect(r0, r1, c0, c1 int) float64 {
	w1 := ps.w + 1
	return ps.p[r1*w1+c1] - ps.p[r0*w1+c1] - ps.p[r1*w1+c0] + ps.p[r0*w1+c0]
}

// diag returns the sum of diagonal entries in [a, b).
func (ps *prefixSum) diag(a, b int) float64 {
	// The diagonal is not in the prefix table; recompute it from unit
	// rectangles (b−a of them, still cheap relative to the scan).
	s := 0.0
	for i := a; i < b; i++ {
		s += ps.rect(i, i+1, i, i+1)
	}
	return s
}

// within returns Σ_{a ≤ i < j < b} r²ᵢⱼ for the symmetric matrix.
func (ps *prefixSum) within(a, b int) float64 {
	return (ps.rect(a, b, a, b) - ps.diag(a, b)) / 2
}
