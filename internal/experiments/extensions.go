package experiments

import (
	"fmt"
	"math/rand"

	"ldgemm/internal/baselines"
	"ldgemm/internal/bitmat"
	"ldgemm/internal/blis"
	"ldgemm/internal/core"
	"ldgemm/internal/harness"
	"ldgemm/internal/kernel"
	"ldgemm/internal/perfmodel"
	"ldgemm/internal/popcount"
	"ldgemm/internal/simdsim"
	"ldgemm/internal/tanimoto"
)

// SIMD reproduces the Section V analysis: the analytical model's predicted
// cycles per word next to the instruction-stream simulator's measured
// cycles, for scalar and for SIMD widths with and without a hardware
// vector popcount.
func SIMD(cfg Config) (*harness.Table, error) {
	model := perfmodel.Default()
	tbl := &harness.Table{
		Title: "Section V: SIMD benefit analysis (cycles per 64-bit word; lower is better)",
		Headers: []string{
			"lanes v", "scenario", "model cyc/word", "simulated cyc/word",
			"speedup vs scalar", "share of v-lane peak",
		},
	}
	const words = 1024
	scalarSim, err := simdsim.Run(simdsim.Scalar, words, 1)
	if err != nil {
		return nil, err
	}
	scalarModel := model.ScalarCyclesPerWord()
	tbl.AddRow("1", "scalar (Section IV kernel)",
		harness.F(scalarModel, 2), harness.F(scalarSim.CyclesPerWord, 2), "1.00", "100.0%")
	for _, v := range []int{2, 4, 8} {
		simdModel, err := model.SIMDCyclesPerWord(v)
		if err != nil {
			return nil, err
		}
		simdSim, err := simdsim.Run(simdsim.SIMDNoHW, words, v)
		if err != nil {
			return nil, err
		}
		hwModel, err := model.HWCyclesPerWord(v)
		if err != nil {
			return nil, err
		}
		hwSim, err := simdsim.Run(simdsim.SIMDHW, words, v)
		if err != nil {
			return nil, err
		}
		tbl.AddRow(fmt.Sprint(v), "SIMD, scalar POPCNT (extract/insert)",
			harness.F(simdModel, 2), harness.F(simdSim.CyclesPerWord, 2),
			harness.F(scalarSim.CyclesPerWord/simdSim.CyclesPerWord, 2),
			harness.F(100*hwSim.CyclesPerWord/simdSim.CyclesPerWord, 1)+"%")
		tbl.AddRow(fmt.Sprint(v), "SIMD, hardware vector POPCNT",
			harness.F(hwModel, 2), harness.F(hwSim.CyclesPerWord, 2),
			harness.F(scalarSim.CyclesPerWord/hwSim.CyclesPerWord, 2), "100.0%")
	}
	return tbl, nil
}

// Gaps is the Section VII alignment-gaps ablation: gap-aware (masked) LD
// versus plain LD on the same matrix. The fused masked kernel does 4
// popcounts + 4 ANDs per word pair instead of 1+1, so the expected ratio
// is roughly 3–5×; computing the four counts as separate unmasked passes
// would pay packing and traversal four times instead.
func Gaps(cfg Config) (*harness.Table, error) {
	cfg = cfg.normalize()
	n := max(4096/cfg.Scale, 64)
	k := max(8192/cfg.Scale, 128)
	g := randomMatrix(99, n, k)
	mask := bitmat.NewMask(n, k)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < n; i++ {
		for s := 0; s < k; s += 17 {
			if rng.Intn(3) == 0 {
				mask.Invalidate(i, s)
			}
		}
	}
	gm := g.Clone()
	if err := mask.ApplyTo(gm); err != nil {
		return nil, err
	}

	plain := make([]uint32, n*n)
	quad := make([]uint32, n*n*4)
	// Warm-up: the first driver call of each family pays one-time costs
	// (pack-arena allocation); keep them out of the timed comparison.
	if err := blis.Syrk(blis.Config{Threads: 1}, gm, plain, n, false); err != nil {
		return nil, err
	}
	if err := blis.MaskedSyrk(blis.Config{Threads: 1}, gm, mask, quad, n); err != nil {
		return nil, err
	}
	// The reported number is a ratio of two short runs, so a one-off
	// scheduler blip on either side inverts it; best-of-3 minimum.
	reps := max(cfg.Reps, 3)
	tPlain, err := harness.Best(reps, syrkTriples(n, g.Words), func() error {
		clear(plain)
		return blis.Syrk(blis.Config{Threads: 1}, gm, plain, n, false)
	})
	if err != nil {
		return nil, err
	}
	tMasked, err := harness.Best(reps, 4*syrkTriples(n, g.Words), func() error {
		clear(quad)
		return blis.MaskedSyrk(blis.Config{Threads: 1}, gm, mask, quad, n)
	})
	if err != nil {
		return nil, err
	}
	tbl := &harness.Table{
		Title:   fmt.Sprintf("Section VII (gaps): masked vs unmasked LD, %d SNPs × %d samples", n, k),
		Headers: []string{"kernel", "counts/pair", "pairs computed", "time (s)", "slowdown vs plain"},
	}
	tbl.AddRow("plain Syrk (upper triangle)", "1", fmt.Sprint(int64(n)*int64(n+1)/2),
		harness.F(tPlain.Elapsed.Seconds(), 3), "1.00")
	tbl.AddRow("fused masked Syrk (upper triangle)", "4", fmt.Sprint(int64(n)*int64(n+1)/2),
		harness.F(tMasked.Elapsed.Seconds(), 3),
		harness.F(tMasked.Elapsed.Seconds()/tPlain.Elapsed.Seconds(), 2))
	return tbl, nil
}

// FSM is the Section VII finite-sites ablation: multi-allelic LD (Zaykin's
// T over 16 plane-pair GEMMs plus a validity GEMM) versus the ISM kernel
// on the same dimensions. The paper bounds the worst case at 16×.
func FSM(cfg Config) (*harness.Table, error) {
	cfg = cfg.normalize()
	n := max(2048/cfg.Scale, 48)
	k := max(2048/cfg.Scale, 64)
	rng := rand.New(rand.NewSource(6))
	cols := make([][]byte, n)
	alpha := []byte("ACGT")
	for i := range cols {
		cols[i] = make([]byte, k)
		for s := range cols[i] {
			if rng.Intn(20) == 0 {
				cols[i][s] = '-'
			} else {
				cols[i][s] = alpha[rng.Intn(4)]
			}
		}
	}
	fsm, err := core.FromDNA(cols)
	if err != nil {
		return nil, err
	}
	g := randomMatrix(123, n, k)

	tISM, err := harness.Time(0, func() error {
		_, err := core.Matrix(g, core.Options{Measures: core.MeasureR2, Blis: blis.Config{Threads: 1}, Epilogue: cfg.Epilogue})
		return err
	})
	if err != nil {
		return nil, err
	}
	tFSM, err := harness.Time(0, func() error {
		_, err := core.FSMLD(fsm, core.Options{Blis: blis.Config{Threads: 1}, Epilogue: cfg.Epilogue})
		return err
	})
	if err != nil {
		return nil, err
	}
	tbl := &harness.Table{
		Title:   fmt.Sprintf("Section VII (finite sites): FSM vs ISM LD, %d SNPs × %d samples", n, k),
		Headers: []string{"model", "GEMMs", "time (s)", "ratio vs ISM", "paper bound"},
	}
	tbl.AddRow("infinite sites (1-bit)", "1", harness.F(tISM.Elapsed.Seconds(), 3), "1.00", "1x")
	tbl.AddRow("finite sites (4-state, T statistic)", "17",
		harness.F(tFSM.Elapsed.Seconds(), 3),
		harness.F(tFSM.Elapsed.Seconds()/tISM.Elapsed.Seconds(), 2), "≤16x + epilogue")
	return tbl, nil
}

// Tanimoto is the Section VII cross-domain demonstration: all-pairs 2-D
// fingerprint similarity through the same GEMM machinery versus a naive
// per-pair kernel.
func Tanimoto(cfg Config) (*harness.Table, error) {
	cfg = cfg.normalize()
	compounds := max(8192/cfg.Scale, 256)
	// Fingerprint width is a domain constant (2-D fingerprints are
	// 512–2048 bits regardless of library size); only the library scales.
	const bits = 1024
	fp, err := tanimoto.Random(compounds, bits, 0.3, 7)
	if err != nil {
		return nil, err
	}
	tGemm, err := harness.Time(0, func() error {
		_, err := fp.AllPairs(blis.Config{Threads: 1})
		return err
	})
	if err != nil {
		return nil, err
	}
	// Both kernels materialize the full symmetric similarity matrix so the
	// comparison is output-for-output.
	out := make([]float64, compounds*compounds)
	tNaive, err := harness.Time(0, func() error {
		for i := 0; i < compounds; i++ {
			for j := i; j < compounds; j++ {
				v := fp.Pair(i, j)
				out[i*compounds+j] = v
				out[j*compounds+i] = v
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	tbl := &harness.Table{
		Title:   fmt.Sprintf("Section VII (chemistry): Tanimoto all-pairs, %d compounds × %d bits", compounds, bits),
		Headers: []string{"kernel", "time (s)", "Mpairs/s", "speedup"},
	}
	pairs := float64(compounds) * float64(compounds+1) / 2
	tbl.AddRow("per-pair popcount", harness.F(tNaive.Elapsed.Seconds(), 3),
		harness.F(pairs/tNaive.Elapsed.Seconds()/1e6, 2), "1.00")
	tbl.AddRow("blocked GEMM", harness.F(tGemm.Elapsed.Seconds(), 3),
		harness.F(pairs/tGemm.Elapsed.Seconds()/1e6, 2),
		harness.F(tNaive.Elapsed.Seconds()/tGemm.Elapsed.Seconds(), 2))
	return tbl, nil
}

// Ablation quantifies the design choices DESIGN.md calls out: cache
// blocking (GEMM vs unblocked vector kernel vs per-sample naive), the
// micro-kernel register shape, and the popcount implementation.
func Ablation(cfg Config) (*harness.Table, error) {
	cfg = cfg.normalize()
	n := max(2048/cfg.Scale, 64)
	k := max(16384/cfg.Scale, 256)
	g := randomMatrix(321, n, k)
	tbl := &harness.Table{
		Title:   fmt.Sprintf("Ablations on %d SNPs × %d samples (single thread)", n, k),
		Headers: []string{"variant", "time (s)", "Gtriples/s", "% of peak"},
	}
	triples := syrkTriples(n, g.Words)

	addRow := func(name string, fn func() error) error {
		m, err := harness.Best(cfg.Reps, triples, fn)
		if err != nil {
			return err
		}
		tbl.AddRow(name,
			harness.F(m.Elapsed.Seconds(), 3),
			harness.F(m.TriplesPerSecond()/1e9, 2),
			harness.F(100*m.PeakFraction(cfg.Peak), 1))
		return nil
	}

	// Blocking ablation.
	if err := addRow("unblocked vector kernel (OmegaPlus-like)", func() error {
		baselines.Vector{Threads: 1}.R2Sum(g)
		return nil
	}); err != nil {
		return nil, err
	}
	// Micro-kernel shape ablation under full blocking.
	for _, kn := range kernel.Fixed {
		kn := kn
		c := make([]uint32, n*n)
		if err := addRow(fmt.Sprintf("blocked GEMM, micro-kernel %s", kn.Name), func() error {
			clear(c)
			return blis.Syrk(blis.Config{Kernel: kn, Threads: 1}, g, c, n, false)
		}); err != nil {
			return nil, err
		}
	}
	return tbl, nil
}

// PopcountAblation compares the popcount implementations of [17, 18]: the
// hardware instruction versus SWAR, table lookups, and Harley–Seal, on the
// AND-count inner loop.
func PopcountAblation(cfg Config) (*harness.Table, error) {
	cfg = cfg.normalize()
	words := 1 << 16
	a := randomMatrix(11, 1, words*64).SNP(0)
	b := randomMatrix(13, 1, words*64).SNP(0)
	tbl := &harness.Table{
		Title:   "Popcount implementation ablation (AND-count over 64 KiW)",
		Headers: []string{"counter", "time/pass (ms)", "Gwords/s", "vs hardware"},
	}
	var hwSec float64
	type entry struct {
		name string
		fn   func() int
	}
	entries := []entry{
		{"hardware POPCNT", func() int { return popcount.AndCount(a, b) }},
		{"SWAR", func() int { return popcount.AndCountWith(popcount.SWAR, a, b) }},
		{"8-bit lookup", func() int { return popcount.AndCountWith(popcount.Lookup8, a, b) }},
		{"16-bit lookup", func() int { return popcount.AndCountWith(popcount.Lookup16, a, b) }},
	}
	sink := 0
	for _, e := range entries {
		m, err := harness.Best(cfg.Reps, int64(words), func() error {
			sink += e.fn()
			return nil
		})
		if err != nil {
			return nil, err
		}
		sec := m.Elapsed.Seconds()
		if e.name == "hardware POPCNT" {
			hwSec = sec
		}
		tbl.AddRow(e.name,
			harness.F(sec*1e3, 3),
			harness.F(float64(words)/sec/1e9, 2),
			harness.F(sec/hwSec, 2)+"x")
	}
	_ = sink
	return tbl, nil
}

// Tuned quantifies the auto-tuning extension: the default dgemm-oriented
// blocking (which the paper used as-is) versus the empirically tuned
// configuration on the same problem.
func Tuned(cfg Config) (*harness.Table, error) {
	cfg = cfg.normalize()
	n := max(4096/cfg.Scale, 64)
	k := max(16384/cfg.Scale, 256)
	g := randomMatrix(777, n, k)
	triples := syrkTriples(n, g.Words)
	c := make([]uint32, n*n)

	tbl := &harness.Table{
		Title:   fmt.Sprintf("Auto-tuning ablation, %d SNPs × %d samples (single thread)", n, k),
		Headers: []string{"configuration", "MC", "NC", "KC", "kernel", "time (s)", "% of peak"},
	}
	run := func(name string, bc blis.Config) error {
		bc.Threads = 1
		m, err := harness.Best(cfg.Reps, triples, func() error {
			clear(c)
			return blis.Syrk(bc, g, c, n, false)
		})
		if err != nil {
			return err
		}
		resolved := bc
		if resolved.MC == 0 {
			resolved = blis.DefaultConfig()
		}
		kernelName := resolved.Kernel.Name
		if kernelName == "" {
			kernelName = "default"
		}
		tbl.AddRow(name,
			fmt.Sprint(resolved.MC), fmt.Sprint(resolved.NC), fmt.Sprint(resolved.KC), kernelName,
			harness.F(m.Elapsed.Seconds(), 3),
			harness.F(100*m.PeakFraction(cfg.Peak), 1))
		return nil
	}
	if err := run("default (untuned, as in the paper)", blis.Config{}); err != nil {
		return nil, err
	}
	tuned, err := blis.Tune(blis.TuneOptions{SNPs: n, Samples: k})
	if err != nil {
		return nil, err
	}
	if err := run("auto-tuned", tuned.Config); err != nil {
		return nil, err
	}
	return tbl, nil
}

// Banded demonstrates the chromosome-scale banded scan: LD restricted to
// pairs within a window (PLINK --ld-window), whose cost is linear in n
// rather than quadratic. The table contrasts the full triangle with two
// band widths on the same matrix.
func Banded(cfg Config) (*harness.Table, error) {
	cfg = cfg.normalize()
	n := max(20000/cfg.Scale, 256)
	k := max(4096/cfg.Scale, 128)
	g := randomMatrix(555, n, k)
	tbl := &harness.Table{
		Title:   fmt.Sprintf("Banded LD scan, %d SNPs × %d samples (single thread)", n, k),
		Headers: []string{"scan", "pairs", "time (s)", "MLD/s"},
	}
	addRow := func(name string, fn func() (int64, error)) error {
		var pairs int64
		m, err := harness.Time(0, func() error {
			var err error
			pairs, err = fn()
			return err
		})
		if err != nil {
			return err
		}
		tbl.AddRow(name, fmt.Sprint(pairs),
			harness.F(m.Elapsed.Seconds(), 3),
			harness.F(float64(pairs)/m.Elapsed.Seconds()/1e6, 2))
		return nil
	}
	opt := core.Options{Blis: blis.Config{Threads: 1}, Epilogue: cfg.Epilogue}
	if err := addRow("full triangle", func() (int64, error) {
		_, p, err := core.SumR2(g, core.StreamOptions{Options: opt})
		return p, err
	}); err != nil {
		return nil, err
	}
	for _, band := range []int{500, 100} {
		band := band
		if err := addRow(fmt.Sprintf("band ±%d SNPs", band), func() (int64, error) {
			_, p, err := core.BandedSumR2(g, core.BandOptions{Options: opt, Band: band})
			return p, err
		}); err != nil {
			return nil, err
		}
	}
	return tbl, nil
}
