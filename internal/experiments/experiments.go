// Package experiments regenerates every table and figure of the paper's
// evaluation (Sections IV–VII). Each experiment returns a harness.Table
// whose rows mirror what the paper reports; cmd/ldbench prints them and
// the root benchmarks wrap them in testing.B loops.
//
// Scaling: the paper's full datasets (10,000 SNPs × up to 100,000
// sequences) run in minutes on this package's kernels; Config.Scale
// divides both dimensions for quicker runs. Absolute numbers depend on
// the host; the shapes the paper demonstrates (kernel % of peak flat in k
// and n, GEMM ≫ vector-kernel ≫ genotype-kernel, no SIMD benefit without
// hardware popcount) are host-independent.
package experiments

import (
	"fmt"
	"runtime"
	"time"

	"ldgemm/internal/baselines"
	"ldgemm/internal/bitmat"
	"ldgemm/internal/blis"
	"ldgemm/internal/core"
	"ldgemm/internal/harness"
	"ldgemm/internal/popsim"
)

// Config controls experiment size and execution.
type Config struct {
	// Scale divides the paper's dataset dimensions (default 10; 1 is the
	// full paper size).
	Scale int
	// Threads is the thread grid for the comparison tables (default the
	// paper's {1, 2, 4, 8, 12}).
	Threads []int
	// Reps is the best-of repetition count for the peak-fraction figures
	// (default 3).
	Reps int
	// Peak is the calibrated single-core triple rate; 0 means calibrate
	// now.
	Peak float64
	// Epilogue selects the count-to-measure conversion mode for the
	// experiments that run the full LD pipeline (fused by default; the
	// ldbench -epilogue flag sets split for A/B comparisons).
	Epilogue core.EpilogueMode
	// CalibrationTime bounds the peak calibration (default 200ms).
	CalibrationTime time.Duration
}

func (c Config) normalize() Config {
	if c.Scale == 0 {
		c.Scale = 10
	}
	if len(c.Threads) == 0 {
		c.Threads = []int{1, 2, 4, 8, 12}
	}
	if c.Reps == 0 {
		c.Reps = 3
	}
	if c.CalibrationTime == 0 {
		c.CalibrationTime = 200 * time.Millisecond
	}
	if c.Peak == 0 {
		c.Peak = harness.CalibratePeak(c.CalibrationTime)
	}
	return c
}

// randomMatrix builds a dense random matrix (for the peak-fraction
// figures, where content is irrelevant and generation speed matters).
func randomMatrix(seed uint64, snps, samples int) *bitmat.Matrix {
	m := bitmat.New(snps, samples)
	state := seed*0x9e3779b97f4a7c15 + 1
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	pad := m.PadMask()
	for i := 0; i < snps; i++ {
		w := m.SNP(i)
		for j := range w {
			w[j] = next()
		}
		if len(w) > 0 {
			w[len(w)-1] &= pad
		}
	}
	return m
}

// syrkTriples is the word-triple count of an upper-triangle rank-k update.
func syrkTriples(n, words int) int64 {
	return int64(n) * int64(n+1) / 2 * int64(words)
}

// Fig3 reproduces Figure 3: the scalar blocked kernel's fraction of the
// calibrated peak as the sample dimension k grows, for square haplotype
// matrices m = n ∈ {4096, 8192, 16384}/Scale. The paper reports 84–90%,
// flat in both k and n.
func Fig3(cfg Config) (*harness.Table, error) {
	cfg = cfg.normalize()
	tbl := &harness.Table{
		Title:   fmt.Sprintf("Figure 3: haplotype matrix construction, %% of calibrated peak (scale 1/%d)", cfg.Scale),
		Headers: []string{"m=n", "k (samples)", "time (s)", "Gtriples/s", "% of peak"},
	}
	for _, baseN := range []int{4096, 8192, 16384} {
		n := max(baseN/cfg.Scale, 64)
		for _, baseK := range []int{1024, 2048, 4096, 8192, 16384} {
			k := max(baseK/cfg.Scale, 128)
			g := randomMatrix(uint64(n*31+k), n, k)
			c := make([]uint32, n*n)
			blisCfg := blis.Config{Threads: 1}
			m, err := harness.Best(cfg.Reps, syrkTriples(n, g.Words), func() error {
				clear(c)
				return blis.Syrk(blisCfg, g, c, n, false)
			})
			if err != nil {
				return nil, err
			}
			tbl.AddRow(
				fmt.Sprint(n), fmt.Sprint(k),
				harness.F(m.Elapsed.Seconds(), 3),
				harness.F(m.TriplesPerSecond()/1e9, 2),
				harness.F(100*m.PeakFraction(cfg.Peak), 1),
			)
		}
	}
	return tbl, nil
}

// Fig4 reproduces Figure 4: the same sweep with two *different* genomic
// matrices, computing all m×n outputs (twice the values of the symmetric
// case); attained fraction of peak should stay in the same band.
func Fig4(cfg Config) (*harness.Table, error) {
	cfg = cfg.normalize()
	tbl := &harness.Table{
		Title:   fmt.Sprintf("Figure 4: two different genomic matrices, %% of calibrated peak (scale 1/%d)", cfg.Scale),
		Headers: []string{"m=n", "k (samples)", "time (s)", "Gtriples/s", "% of peak"},
	}
	for _, baseN := range []int{4096, 8192, 16384} {
		n := max(baseN/cfg.Scale, 64)
		for _, baseK := range []int{1024, 2048, 4096, 8192, 16384} {
			k := max(baseK/cfg.Scale, 128)
			a := randomMatrix(uint64(n*17+k), n, k)
			b := randomMatrix(uint64(n*29+k), n, k)
			c := make([]uint32, n*n)
			blisCfg := blis.Config{Threads: 1}
			triples := int64(n) * int64(n) * int64(a.Words)
			m, err := harness.Best(cfg.Reps, triples, func() error {
				clear(c)
				return blis.Gemm(blisCfg, a, b, c, n)
			})
			if err != nil {
				return nil, err
			}
			tbl.AddRow(
				fmt.Sprint(n), fmt.Sprint(k),
				harness.F(m.Elapsed.Seconds(), 3),
				harness.F(m.TriplesPerSecond()/1e9, 2),
				harness.F(100*m.PeakFraction(cfg.Peak), 1),
			)
		}
	}
	return tbl, nil
}

// ComparisonTable reproduces Tables I, II, or III: execution time, LD
// values per second, and GEMM speedups versus the PLINK-like and
// OmegaPlus-like kernels over the thread grid.
func ComparisonTable(ds popsim.Dataset, cfg Config) (*harness.Table, error) {
	cfg = cfg.normalize()
	g, err := ds.Generate(cfg.Scale)
	if err != nil {
		return nil, err
	}
	// The PLINK-like kernel is genotype-based: pair haplotypes (dropping
	// one if odd) into diploids.
	hap := g
	if hap.Samples%2 != 0 {
		hap = hap.Clone()
		hap.Samples--
		hap = hap.Slice(0, hap.SNPs)
	}
	geno, err := bitmat.FromHaplotypes(hap)
	if err != nil {
		return nil, err
	}
	pairs := int64(g.SNPs) * int64(g.SNPs+1) / 2

	tbl := &harness.Table{
		Title: fmt.Sprintf("%s — %d SNPs × %d sequences, %d pairwise LDs (scale 1/%d, GOMAXPROCS=%d)",
			ds, g.SNPs, g.Samples, pairs, cfg.Scale, runtime.GOMAXPROCS(0)),
		Headers: []string{
			"Threads",
			"PLINK-like (s)", "OmegaPlus-like (s)", "GEMM (s)",
			"PLINK MLDs/s", "Omega MLDs/s", "GEMM MLDs/s",
			"GEMM vs PLINK", "GEMM vs Omega",
		},
	}
	for _, threads := range cfg.Threads {
		tp, err := harness.Time(0, func() error {
			baselines.Plink{Threads: threads}.R2Sum(geno)
			return nil
		})
		if err != nil {
			return nil, err
		}
		tv, err := harness.Time(0, func() error {
			baselines.Vector{Threads: threads}.R2Sum(g)
			return nil
		})
		if err != nil {
			return nil, err
		}
		tg, err := harness.Time(0, func() error {
			_, _, err := core.SumR2(g, core.StreamOptions{
				Options: core.Options{Blis: blis.Config{Threads: threads}, Epilogue: cfg.Epilogue},
			})
			return err
		})
		if err != nil {
			return nil, err
		}
		mld := func(d time.Duration) float64 { return float64(pairs) / d.Seconds() / 1e6 }
		tbl.AddRow(
			fmt.Sprint(threads),
			harness.F(tp.Elapsed.Seconds(), 2),
			harness.F(tv.Elapsed.Seconds(), 2),
			harness.F(tg.Elapsed.Seconds(), 2),
			harness.F(mld(tp.Elapsed), 2),
			harness.F(mld(tv.Elapsed), 2),
			harness.F(mld(tg.Elapsed), 2),
			harness.F(tp.Elapsed.Seconds()/tg.Elapsed.Seconds(), 2),
			harness.F(tv.Elapsed.Seconds()/tg.Elapsed.Seconds(), 2),
		)
	}
	return tbl, nil
}

// Fig5 reproduces Figure 5: LDs/second on Dataset C as threads grow past
// the physical core count. On the paper's 12-core host GEMM saturates at
// 12 threads while the underutilizing baselines keep improving; on hosts
// with fewer cores the saturation point moves accordingly.
func Fig5(cfg Config) (*harness.Table, error) {
	cfg = cfg.normalize()
	cores := runtime.GOMAXPROCS(0)
	var threads []int
	for t := 1; t <= 2*cores; t *= 2 {
		threads = append(threads, t)
	}
	if len(threads) == 0 || threads[len(threads)-1] != 2*cores {
		threads = append(threads, 2*cores)
	}
	cfg.Threads = threads
	tbl, err := ComparisonTable(popsim.DatasetC, cfg)
	if err != nil {
		return nil, err
	}
	tbl.Title = fmt.Sprintf("Figure 5: thread scaling beyond physical cores (%d) — %s", cores, tbl.Title)
	return tbl, nil
}
