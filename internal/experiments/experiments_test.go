package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
	"time"

	"ldgemm/internal/popsim"
)

// fastConfig keeps experiment tests quick: tiny dims, one rep.
func fastConfig() Config {
	return Config{
		Scale:           64,
		Threads:         []int{1, 2},
		Reps:            1,
		CalibrationTime: 10 * time.Millisecond,
	}
}

func TestFig3Shape(t *testing.T) {
	tbl, err := Fig3(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 15 { // 3 sizes × 5 k values
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		frac, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatal(err)
		}
		if frac <= 0 || frac > 130 {
			t.Fatalf("implausible peak fraction %v%%", frac)
		}
	}
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 3") {
		t.Fatal("missing title")
	}
}

func TestFig4Shape(t *testing.T) {
	tbl, err := Fig4(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 15 {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
}

func TestComparisonTable(t *testing.T) {
	tbl, err := ComparisonTable(popsim.DatasetA, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		// All numeric cells must parse; the speedup claim itself only
		// holds at realistic sizes (see TestSpeedupAtModerateScale).
		for c := 1; c < len(row); c++ {
			if _, err := strconv.ParseFloat(row[c], 64); err != nil {
				t.Fatalf("cell %q does not parse: %v", row[c], err)
			}
		}
	}
}

func TestFig5(t *testing.T) {
	cfg := fastConfig()
	tbl, err := Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 2 {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	if !strings.Contains(tbl.Title, "Figure 5") {
		t.Fatal("missing title")
	}
}

func TestSIMDTable(t *testing.T) {
	tbl, err := SIMD(Config{Peak: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 7 { // scalar + 3 widths × 2 scenarios
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	// Every no-HW SIMD row must have speedup ≤ 1 (the paper's claim).
	for _, row := range tbl.Rows {
		if !strings.Contains(row[1], "extract/insert") {
			continue
		}
		sp, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatal(err)
		}
		if sp > 1.001 {
			t.Fatalf("SIMD without HW popcount shows speedup %v", sp)
		}
	}
}

func TestGapsTable(t *testing.T) {
	tbl, err := Gaps(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	slow, err := strconv.ParseFloat(tbl.Rows[1][4], 64)
	if err != nil {
		t.Fatal(err)
	}
	if slow < 1 || slow > 30 {
		t.Fatalf("implausible masked slowdown %v", slow)
	}
}

func TestFSMTable(t *testing.T) {
	tbl, err := FSM(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	ratio, err := strconv.ParseFloat(tbl.Rows[1][3], 64)
	if err != nil {
		t.Fatal(err)
	}
	if ratio < 1 {
		t.Fatalf("FSM faster than ISM: %v", ratio)
	}
}

func TestTanimotoTable(t *testing.T) {
	tbl, err := Tanimoto(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
}

func TestAblationTables(t *testing.T) {
	tbl, err := Ablation(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 7 { // vector + 6 micro-kernels
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	pc, err := PopcountAblation(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(pc.Rows) != 4 {
		t.Fatalf("%d popcount rows", len(pc.Rows))
	}
}

// TestSpeedupAtModerateScale checks the paper's headline ordering (GEMM
// faster than both baselines) at a size where blocking pays. Kept modest
// so the suite stays fast.
func TestSpeedupAtModerateScale(t *testing.T) {
	if testing.Short() {
		t.Skip("moderate-scale comparison skipped in -short")
	}
	cfg := Config{Scale: 8, Threads: []int{1}, Reps: 1, CalibrationTime: 20 * time.Millisecond}
	tbl, err := ComparisonTable(popsim.DatasetB, cfg) // 1250 SNPs × 1250 samples
	if err != nil {
		t.Fatal(err)
	}
	row := tbl.Rows[0]
	vsPlink, _ := strconv.ParseFloat(row[7], 64)
	vsOmega, _ := strconv.ParseFloat(row[8], 64)
	// The PLINK gap is algorithmic (genotype plane decomposition ≈ 10
	// popcounts/word) and shows at any size. The OmegaPlus gap combines
	// ILP (micro-kernel accumulator fan-out) with cache blocking; on
	// hosts whose LLC swallows the whole matrix only the ILP part is
	// visible, so the bar here is parity, with the full-scale gap
	// recorded in EXPERIMENTS.md.
	if vsPlink <= 1.5 || vsOmega <= 0.8 {
		t.Fatalf("expected GEMM to dominate at scale 8: vs PLINK %v, vs Omega %v", vsPlink, vsOmega)
	}
}

func TestTunedTable(t *testing.T) {
	cfg := fastConfig()
	tbl, err := Tuned(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if _, err := strconv.ParseFloat(row[5], 64); err != nil {
			t.Fatalf("time cell %q", row[5])
		}
	}
}

func TestBandedTable(t *testing.T) {
	tbl, err := Banded(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	full, _ := strconv.ParseInt(tbl.Rows[0][1], 10, 64)
	band, _ := strconv.ParseInt(tbl.Rows[2][1], 10, 64)
	if band >= full {
		t.Fatalf("band pairs %d not below full %d", band, full)
	}
}
