package cluster

import (
	"sync"
	"time"
)

// breakerState is the classic three-state circuit.
type breakerState int32

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is a per-shard circuit breaker. Closed passes every call and
// counts consecutive failures; at the threshold it opens and fails fast
// for the cooldown; the first call after the cooldown runs as a half-open
// probe whose outcome either closes the circuit or re-opens it for
// another cooldown. Only shard-side failures (transport errors, 5xx)
// count — a 4xx means the shard is healthy and the request was wrong.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable for tests

	state breakerState
	fails int       // consecutive failures while closed
	until time.Time // when the open state may probe again
	trips int64     // cumulative open transitions
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// allow reports whether a call may proceed. In the open state it flips to
// half-open once the cooldown has passed, admitting exactly one probe;
// further calls fail fast until the probe reports.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if !b.now().Before(b.until) {
			b.state = breakerHalfOpen
			return true
		}
		return false
	default: // half-open: the probe is already in flight
		return false
	}
}

// record reports a call outcome.
func (b *breaker) record(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		b.state = breakerClosed
		b.fails = 0
		return
	}
	switch b.state {
	case breakerHalfOpen:
		b.trip()
	case breakerClosed:
		if b.fails++; b.fails >= b.threshold {
			b.trip()
		}
	default:
		// Already open: a straggler from a call admitted before the trip
		// adds no new information.
	}
}

// neutral reports a call that ended without any shard-side information —
// the caller cancelled before the shard could answer. The failure streak
// is left untouched, and a half-open probe slot is handed back (the
// cooldown deadline has already passed, so the next call probes again)
// rather than counting an aborted probe as a shard verdict.
func (b *breaker) neutral() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		b.state = breakerOpen
	}
}

func (b *breaker) trip() {
	b.state = breakerOpen
	b.until = b.now().Add(b.cooldown)
	b.fails = 0
	b.trips++
}

// snapshot returns the current state and cumulative trip count.
func (b *breaker) snapshot() (breakerState, int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.trips
}
