package cluster

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ldgemm/internal/server"
)

// countingShard wraps a shard server, counting (and optionally delaying)
// the heavy LD endpoints so tests can assert how many round trips the
// coordinator actually made.
func countingShard(t *testing.T, lo, hi int, delay time.Duration) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	s := server.New(testGenotypes(t), server.Config{
		MaxRegionSNPs: 128, MaxTopK: 100, Threads: 2, ShardStart: lo, ShardEnd: hi,
	})
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/api/ld") {
			calls.Add(1)
			if delay > 0 {
				time.Sleep(delay)
			}
		}
		s.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	return ts, &calls
}

// clusterVars decodes the counters the cache/coalesce tests assert on.
type clusterVars struct {
	CacheHits      int64 `json:"result_cache_hits"`
	CacheMisses    int64 `json:"result_cache_misses"`
	CacheBytes     int64 `json:"result_cache_bytes"`
	CacheEvictions int64 `json:"result_cache_evictions"`
	Coalesced      int64 `json:"coalesced_requests"`
}

func readVars(t *testing.T, base string) clusterVars {
	t.Helper()
	var v clusterVars
	if code, _ := get(t, base+"/debug/vars", &v); code != http.StatusOK {
		t.Fatal("/debug/vars failed")
	}
	return v
}

// TestResultCacheServesRepeats: a repeated identical region request is
// answered from the result cache with zero shard round trips and an
// identical body.
func TestResultCacheServesRepeats(t *testing.T) {
	shardA, callsA := countingShard(t, 0, 60, 0)
	shardB, callsB := countingShard(t, 60, 120, 0)
	cluster := newTestCluster(t, fastConfig(), shardA.URL, shardB.URL)

	fetch := func(q string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(cluster.URL + q)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	for _, q := range []string{"/api/ld/region?start=30&end=90&measure=r2", "/api/ld/top?k=15", "/api/ld?i=3&j=45"} {
		code, first := fetch(q)
		if code != http.StatusOK {
			t.Fatalf("%s status %d", q, code)
		}
		before := callsA.Load() + callsB.Load()
		code, second := fetch(q)
		if code != http.StatusOK {
			t.Fatalf("%s repeat status %d", q, code)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("%s cached body differs from computed body", q)
		}
		if after := callsA.Load() + callsB.Load(); after != before {
			t.Fatalf("%s repeat reached the shards (%d new round trips)", q, after-before)
		}
	}

	v := readVars(t, cluster.URL)
	if v.CacheHits != 3 {
		t.Fatalf("result_cache_hits = %d, want 3", v.CacheHits)
	}
	if v.CacheMisses < 3 {
		t.Fatalf("result_cache_misses = %d, want ≥3", v.CacheMisses)
	}
	if v.CacheBytes <= 0 {
		t.Fatalf("result_cache_bytes = %d, want > 0", v.CacheBytes)
	}
}

// TestResultCacheSkipsPartial: a degraded (partial) answer must never be
// admitted — the next identical request re-scatters and heals once the
// strip returns.
func TestResultCacheSkipsPartial(t *testing.T) {
	shardA, callsA := countingShard(t, 0, 60, 0)
	shardB := shardServer(t, 60, 120)
	cluster := newTestCluster(t, fastConfig(), shardA.URL, shardB.URL)
	shardB.Close()

	q := "/api/ld/region?start=30&end=90"
	var first map[string]any
	if code, _ := get(t, cluster.URL+q, &first); code != http.StatusOK {
		t.Fatalf("degraded region status %d", code)
	}
	if partial, _ := first["partial"].(bool); !partial {
		t.Fatal("degraded region not marked partial")
	}
	before := callsA.Load()
	var second map[string]any
	if code, _ := get(t, cluster.URL+q, &second); code != http.StatusOK {
		t.Fatalf("repeat degraded region status %d", code)
	}
	if callsA.Load() == before {
		t.Fatal("partial response was served from the cache")
	}
}

// TestCoalesceConcurrentIdentical: N concurrent identical region
// requests reach the shard exactly once; every caller gets the same
// bytes. The cache is disabled so the assertion is strictly about
// in-flight coalescing.
func TestCoalesceConcurrentIdentical(t *testing.T) {
	shardA, callsA := countingShard(t, 0, 60, 300*time.Millisecond)
	shardB, callsB := countingShard(t, 60, 120, 0)
	cfg := fastConfig()
	cfg.ResultCacheBytes = -1
	cluster := newTestCluster(t, cfg, shardA.URL, shardB.URL)

	const n = 8
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			resp, err := http.Get(cluster.URL + "/api/ld/region?start=5&end=40")
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status %d", resp.StatusCode)
				return
			}
			bodies[i], _ = io.ReadAll(resp.Body)
		}()
	}
	close(start)
	wg.Wait()

	// The region lives entirely in strip A: exactly one scatter, no
	// traffic to strip B.
	if got := callsA.Load(); got != 1 {
		t.Fatalf("shard A saw %d region calls, want 1", got)
	}
	if got := callsB.Load(); got != 0 {
		t.Fatalf("shard B saw %d calls, want 0", got)
	}
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("caller %d got different bytes", i)
		}
	}
	if v := readVars(t, cluster.URL); v.Coalesced != n-1 {
		t.Fatalf("coalesced_requests = %d, want %d", v.Coalesced, n-1)
	}
}

// TestResultCacheAdmission drives the LRU unit directly: byte budget,
// oversize rejection, LRU eviction order, and replacement accounting.
func TestResultCacheAdmission(t *testing.T) {
	body := func(n int) *clusterResponse {
		return &clusterResponse{status: http.StatusOK, body: bytes.Repeat([]byte("x"), n)}
	}
	c := newResultCache(8 << 10) // 8 KiB, max entry 1 KiB

	// Oversize entries are refused.
	c.put("big", body(2<<10))
	if _, ok := c.get("big"); ok {
		t.Fatal("oversize entry admitted")
	}
	if s := c.stats(); s.Rejected != 1 || s.Bytes != 0 {
		t.Fatalf("after oversize put: %+v", s)
	}

	// Fill past the budget: the oldest entries are evicted.
	for i := 0; i < 20; i++ {
		c.put(fmt.Sprintf("k%d", i), body(512))
	}
	s := c.stats()
	if s.Bytes > 8<<10 {
		t.Fatalf("cache bytes %d over budget", s.Bytes)
	}
	if s.Evictions == 0 {
		t.Fatal("no evictions despite overflow")
	}
	if _, ok := c.get("k0"); ok {
		t.Fatal("oldest entry survived eviction")
	}
	if _, ok := c.get("k19"); !ok {
		t.Fatal("newest entry was evicted")
	}

	// get refreshes recency: touch an old survivor, add pressure, and the
	// untouched sibling goes first.
	var kept string
	for i := 19; i >= 0; i-- {
		if _, ok := c.get(fmt.Sprintf("k%d", i)); ok {
			kept = fmt.Sprintf("k%d", i)
		}
	}
	c.get(kept)
	for i := 20; i < 30; i++ {
		c.put(fmt.Sprintf("k%d", i), body(512))
	}
	if _, ok := c.get(kept); !ok {
		t.Fatalf("recently-touched entry %s evicted before colder ones", kept)
	}

	// Replacement keeps accounting exact.
	before := c.stats().Bytes
	c.put(kept, body(600))
	if diff := c.stats().Bytes - before; diff != 600-512 {
		t.Fatalf("replacement changed bytes by %d, want %d", diff, 600-512)
	}
}

// TestFlightGroupSharesLeader drives the singleflight unit: concurrent
// callers for one key run fn once; a later caller runs it again.
func TestFlightGroupSharesLeader(t *testing.T) {
	g := newFlightGroup()
	var runs atomic.Int64
	gate := make(chan struct{})
	fn := func() *clusterResponse {
		runs.Add(1)
		<-gate
		return &clusterResponse{status: http.StatusOK, body: []byte("r")}
	}
	const n = 6
	var wg sync.WaitGroup
	sharedCount := atomic.Int64{}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, shared := g.do("key", fn)
			if string(resp.body) != "r" {
				t.Error("wrong response")
			}
			if shared {
				sharedCount.Add(1)
			}
		}()
	}
	// Let every goroutine reach the flight group before releasing the
	// leader; followers park on the done channel.
	for int(sharedCount.Load())+int(runs.Load()) == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	close(gate)
	wg.Wait()
	if runs.Load() != 1 {
		t.Fatalf("fn ran %d times, want 1", runs.Load())
	}
	if sharedCount.Load() != n-1 {
		t.Fatalf("%d callers shared, want %d", sharedCount.Load(), n-1)
	}
	// After completion the key is free again.
	if _, shared := g.do("key", func() *clusterResponse { runs.Add(1); return &clusterResponse{} }); shared {
		t.Fatal("fresh call reported shared")
	}
	if runs.Load() != 2 {
		t.Fatalf("fresh call did not run fn")
	}
}
