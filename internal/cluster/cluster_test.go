package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/popsim"
	"ldgemm/internal/server"
)

// testGenotypes builds the shared matrix every node serves. Each caller
// gets an identical copy (same generator, same seed), mirroring a real
// deployment where every shard loads the same input file.
func testGenotypes(t *testing.T) *bitmat.Matrix {
	t.Helper()
	g, err := popsim.Mosaic(120, 200, popsim.MosaicConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func shardServer(t *testing.T, lo, hi int) *httptest.Server {
	t.Helper()
	s := server.New(testGenotypes(t), server.Config{
		MaxRegionSNPs: 128, MaxTopK: 100, Threads: 2, ShardStart: lo, ShardEnd: hi,
	})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts
}

func singleServer(t *testing.T) *httptest.Server {
	t.Helper()
	s := server.New(testGenotypes(t), server.Config{MaxRegionSNPs: 128, MaxTopK: 100, Threads: 2})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts
}

// fastConfig keeps failure paths quick in tests.
func fastConfig() Config {
	return Config{ShardTimeout: 5 * time.Second, Retries: -1, RetryBackoff: time.Millisecond,
		HedgeAfter: -1, BreakerFailures: 100}
}

func newTestCluster(t *testing.T, cfg Config, shardURLs ...string) *httptest.Server {
	t.Helper()
	co, err := New(context.Background(), shardURLs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(co.Close)
	ts := httptest.NewServer(co)
	t.Cleanup(ts.Close)
	return ts
}

func get(t *testing.T, url string, v any) (int, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp.StatusCode, resp.Header
}

// TestClusterBitIdentity is the core acceptance check: a 2-shard cluster
// answers pair, region, and top queries bit-identically to one unsharded
// server over the same matrix.
func TestClusterBitIdentity(t *testing.T) {
	single := singleServer(t)
	cluster := newTestCluster(t, fastConfig(), shardServer(t, 0, 60).URL, shardServer(t, 60, 120).URL)

	// Pair lookups on both sides of the shard boundary, including a
	// cross-shard pair (owned by min(i, j)).
	for _, q := range []string{"/api/ld?i=3&j=45", "/api/ld?i=70&j=110", "/api/ld?i=30&j=90",
		"/api/ld?i=90&j=30", "/api/freq?i=59", "/api/freq?i=60"} {
		var want, got map[string]any
		if code, _ := get(t, single.URL+q, &want); code != http.StatusOK {
			t.Fatalf("single %s status %d", q, code)
		}
		if code, _ := get(t, cluster.URL+q, &got); code != http.StatusOK {
			t.Fatalf("cluster %s status %d", q, code)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: cluster %v, single %v", q, got, want)
		}
	}

	// A region spanning the shard boundary, every measure.
	for _, measure := range []string{"r2", "d", "dprime"} {
		q := fmt.Sprintf("/api/ld/region?start=30&end=90&measure=%s", measure)
		var want, got server.RegionResponse
		if code, _ := get(t, single.URL+q, &want); code != http.StatusOK {
			t.Fatalf("single %s status %d", q, code)
		}
		if code, hdr := get(t, cluster.URL+q, &got); code != http.StatusOK {
			t.Fatalf("cluster %s status %d", q, code)
		} else if hdr.Get("X-LD-Shards-Failed") != "" {
			t.Fatalf("%s unexpectedly partial", q)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: cluster response differs from single node", q)
		}
	}

	// Top-K ranking across the whole matrix.
	var wantTop, gotTop server.TopResponse
	if code, _ := get(t, single.URL+"/api/ld/top?k=25", &wantTop); code != http.StatusOK {
		t.Fatalf("single top status %d", code)
	}
	if code, _ := get(t, cluster.URL+"/api/ld/top?k=25", &gotTop); code != http.StatusOK {
		t.Fatalf("cluster top status %d", code)
	}
	if len(gotTop.Pairs) != 25 {
		t.Fatalf("cluster top returned %d pairs", len(gotTop.Pairs))
	}
	if !reflect.DeepEqual(gotTop, wantTop) {
		t.Fatalf("cluster top differs from single node:\n got %+v\nwant %+v", gotTop, wantTop)
	}

	// Windowed region through the coordinator matches the single node too.
	q := "/api/ld/region?start=30&end=90&rows=50:70"
	var want, got server.RegionResponse
	if code, _ := get(t, single.URL+q, &want); code != http.StatusOK {
		t.Fatalf("single %s status %d", q, code)
	}
	if code, _ := get(t, cluster.URL+q, &got); code != http.StatusOK {
		t.Fatalf("cluster %s status %d", q, code)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: windowed cluster response differs from single node", q)
	}

	// Info reports the assembled topology.
	var info InfoResponse
	if code, _ := get(t, cluster.URL+"/api/info", &info); code != http.StatusOK {
		t.Fatal("cluster info failed")
	}
	if info.SNPs != 120 || len(info.Shards) != 2 ||
		info.Shards[0].Start != 0 || info.Shards[0].End != 60 ||
		info.Shards[1].Start != 60 || info.Shards[1].End != 120 {
		t.Fatalf("cluster info %+v", info)
	}
}

// TestClusterPartial kills one shard: scatter-gathered endpoints must
// degrade (partial: true, X-LD-Shards-Failed) instead of failing, while
// routes owned solely by the dead shard turn into 502s.
func TestClusterPartial(t *testing.T) {
	shardA := shardServer(t, 0, 60)
	shardB := shardServer(t, 60, 120)
	cluster := newTestCluster(t, fastConfig(), shardA.URL, shardB.URL)

	shardB.Close()

	var region server.RegionResponse
	code, hdr := get(t, cluster.URL+"/api/ld/region?start=30&end=90", &region)
	if code != http.StatusOK {
		t.Fatalf("degraded region status %d", code)
	}
	if !region.Partial {
		t.Fatal("degraded region not marked partial")
	}
	if failed := hdr.Get("X-LD-Shards-Failed"); failed != shardB.URL {
		t.Fatalf("X-LD-Shards-Failed = %q, want %q", failed, shardB.URL)
	}
	if len(region.Values) != 60 {
		t.Fatalf("degraded region has %d rows", len(region.Values))
	}
	for i, row := range region.Values {
		if absRow := 30 + i; absRow < 60 && row == nil {
			t.Fatalf("surviving shard's row %d is null", absRow)
		} else if absRow >= 60 && row != nil {
			t.Fatalf("dead shard's row %d is populated", absRow)
		}
	}

	var top server.TopResponse
	code, hdr = get(t, cluster.URL+"/api/ld/top?k=10", &top)
	if code != http.StatusOK {
		t.Fatalf("degraded top status %d", code)
	}
	if !top.Partial || hdr.Get("X-LD-Shards-Failed") != shardB.URL {
		t.Fatal("degraded top not marked partial")
	}
	for _, p := range top.Pairs {
		if o := min(p.I, p.J); o >= 60 {
			t.Fatalf("degraded top includes dead shard's pair (%d,%d)", p.I, p.J)
		}
	}

	// The dead shard exclusively owns pair (70, 110): no degradation
	// possible, the route fails.
	if code, _ := get(t, cluster.URL+"/api/ld?i=70&j=110", nil); code != http.StatusBadGateway {
		t.Fatalf("dead-shard pair status %d, want 502", code)
	}
	// A pair owned by the survivor still works.
	if code, _ := get(t, cluster.URL+"/api/ld?i=3&j=45", nil); code != http.StatusOK {
		t.Fatalf("surviving pair status %d", code)
	}
	// Whole-matrix proxies fail over to the survivor.
	if code, _ := get(t, cluster.URL+"/api/prune?window=20&step=5&r2=0.5", nil); code != http.StatusOK {
		t.Fatalf("proxied prune status %d", code)
	}
}

// TestClusterRelaysTerminal checks that shard-side 4xx responses pass
// through the coordinator verbatim instead of being retried or masked.
func TestClusterRelaysTerminal(t *testing.T) {
	cluster := newTestCluster(t, fastConfig(), shardServer(t, 0, 60).URL, shardServer(t, 60, 120).URL)
	cases := []struct {
		q    string
		want int
	}{
		{"/api/ld?i=0&j=999", http.StatusBadRequest}, // coordinator-side bounds check
		{"/api/ld/region?start=0&end=999", http.StatusBadRequest},
		{"/api/ld/region?start=0&end=120&measure=nope", http.StatusBadRequest}, // relayed from shard
		{"/api/ld/top?k=0", http.StatusBadRequest},
		{"/api/nope", http.StatusNotFound},
	}
	for _, c := range cases {
		resp, err := http.Get(cluster.URL + c.q)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != c.want {
			t.Fatalf("%s status %d, want %d", c.q, resp.StatusCode, c.want)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Fatalf("%s Content-Type %q", c.q, ct)
		}
		var body struct {
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body.Error == "" {
			t.Fatalf("%s body is not a JSON error (%v)", c.q, err)
		}
		resp.Body.Close()
	}
}

// TestPartitionValidation rejects shard sets that do not tile the index
// range, and New rejects mismatched matrices.
func TestPartitionValidation(t *testing.T) {
	if _, _, err := newPartition([]Range{{0, 60}, {50, 120}}, 120); err == nil {
		t.Fatal("overlapping strips accepted")
	}
	if _, _, err := newPartition([]Range{{0, 50}, {60, 120}}, 120); err == nil {
		t.Fatal("gapped strips accepted")
	}
	if _, _, err := newPartition([]Range{{0, 60}, {60, 100}}, 120); err == nil {
		t.Fatal("short strips accepted")
	}
	if _, _, err := newPartition(nil, 120); err == nil {
		t.Fatal("empty shard set accepted")
	}
	p, order, err := newPartition([]Range{{60, 120}, {0, 60}}, 120)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(order, []int{1, 0}) {
		t.Fatalf("sort order %v", order)
	}
	if p.owner(0) != 0 || p.owner(59) != 0 || p.owner(60) != 1 || p.owner(119) != 1 {
		t.Fatal("owner lookup broken")
	}
	if ov := p.overlapping(50, 70); !reflect.DeepEqual(ov, []int{0, 1}) {
		t.Fatalf("overlapping(50,70) = %v", ov)
	}
	if ov := p.overlapping(0, 60); !reflect.DeepEqual(ov, []int{0}) {
		t.Fatalf("overlapping(0,60) = %v", ov)
	}

	// Two shards covering only half the range each, but with a dimension
	// mismatch against each other, must fail bootstrap.
	g, err := popsim.Mosaic(100, 200, popsim.MosaicConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	other := httptest.NewServer(server.New(g, server.Config{ShardStart: 60, ShardEnd: 100}))
	defer other.Close()
	if _, err := New(context.Background(), []string{shardServer(t, 0, 60).URL, other.URL}, fastConfig()); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

// TestRetry: a shard that fails twice with 503 and then recovers is
// retried transparently; the client answers 200 and counts the retries.
func TestRetry(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "warming up", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"ok":true}`))
	}))
	defer ts.Close()
	m := &shardMetrics{}
	c := newShardClient(ts.URL, ts.Client(), Config{Retries: 2, RetryBackoff: time.Millisecond, HedgeAfter: -1}.normalize(), m)
	body, err := c.get(context.Background(), "/")
	if err != nil {
		t.Fatalf("get after retries: %v", err)
	}
	if string(body) != `{"ok":true}` {
		t.Fatalf("body %q", body)
	}
	if got := m.retries.Value(); got != 2 {
		t.Fatalf("retries = %d, want 2", got)
	}
	if got := m.failures.Value(); got != 2 {
		t.Fatalf("failures = %d, want 2", got)
	}
}

// TestHedge: with a fixed hedge delay, a one-off slow primary loses to
// its hedge and the call returns fast.
func TestHedge(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			select { // first request stalls until the test ends
			case <-release:
			case <-r.Context().Done():
			}
		}
		w.Write([]byte(`{"ok":true}`))
	}))
	defer ts.Close()
	defer close(release)
	m := &shardMetrics{}
	c := newShardClient(ts.URL, ts.Client(), Config{HedgeAfter: 5 * time.Millisecond, Retries: -1}.normalize(), m)
	if _, err := c.get(context.Background(), "/"); err != nil {
		t.Fatalf("hedged get: %v", err)
	}
	if m.hedges.Value() < 1 || m.hedgeWins.Value() < 1 {
		t.Fatalf("hedges = %d, hedge wins = %d, want ≥1 each", m.hedges.Value(), m.hedgeWins.Value())
	}
}

// TestBreakerTripRecover drives the full circuit life cycle through the
// shard client: consecutive failures trip it, calls fail fast while it is
// open, and a half-open probe after the cooldown closes it again.
func TestBreakerTripRecover(t *testing.T) {
	var failing atomic.Bool
	failing.Store(true)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failing.Load() {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{"ok":true}`))
	}))
	defer ts.Close()
	m := &shardMetrics{}
	c := newShardClient(ts.URL, ts.Client(), Config{
		Retries: -1, HedgeAfter: -1, BreakerFailures: 2, BreakerCooldown: 50 * time.Millisecond,
	}.normalize(), m)

	for i := 0; i < 2; i++ {
		if _, err := c.get(context.Background(), "/"); err == nil {
			t.Fatal("failing shard answered")
		}
	}
	if state, trips := c.breaker.snapshot(); state != breakerOpen || trips != 1 {
		t.Fatalf("after failures: state %v, trips %d", state, trips)
	}
	// Open circuit: fail fast, no network.
	before := m.requests.Value()
	if _, err := c.get(context.Background(), "/"); err == nil {
		t.Fatal("open breaker admitted a call")
	}
	if m.requests.Value() != before {
		t.Fatal("fast-fail still hit the network")
	}
	if m.fastFails.Value() != 1 {
		t.Fatalf("fast fails = %d, want 1", m.fastFails.Value())
	}

	failing.Store(false)
	time.Sleep(60 * time.Millisecond)
	if _, err := c.get(context.Background(), "/"); err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if state, _ := c.breaker.snapshot(); state != breakerClosed {
		t.Fatalf("after recovery: state %v", state)
	}
}

// TestBreakerClock drives the state machine with a fake clock.
func TestBreakerClock(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newBreaker(3, time.Minute)
	b.now = func() time.Time { return now }

	for i := 0; i < 3; i++ {
		if !b.allow() {
			t.Fatal("closed breaker denied a call")
		}
		b.record(false)
	}
	if state, trips := b.snapshot(); state != breakerOpen || trips != 1 {
		t.Fatalf("state %v, trips %d", state, trips)
	}
	if b.allow() {
		t.Fatal("open breaker admitted a call before cooldown")
	}
	now = now.Add(time.Minute)
	if !b.allow() {
		t.Fatal("cooled-down breaker denied the probe")
	}
	if b.allow() {
		t.Fatal("half-open breaker admitted a second probe")
	}
	b.record(false) // probe failed: re-open for another cooldown
	if state, trips := b.snapshot(); state != breakerOpen || trips != 2 {
		t.Fatalf("after failed probe: state %v, trips %d", state, trips)
	}
	now = now.Add(time.Minute)
	if !b.allow() {
		t.Fatal("second probe denied")
	}
	b.record(true)
	if state, _ := b.snapshot(); state != breakerClosed {
		t.Fatalf("after successful probe: state %v", state)
	}
	if !b.allow() {
		t.Fatal("closed breaker denied a call after recovery")
	}
}

// TestMergeTop checks the k-way merge directly, ties included.
func TestMergeTop(t *testing.T) {
	p := func(i, j int, r2 float64) server.PairResponse { return server.PairResponse{I: i, J: j, R2: r2} }
	lists := [][]server.PairResponse{
		{p(0, 1, 0.9), p(0, 2, 0.5), p(1, 2, 0.5)},
		{p(5, 6, 0.9), p(5, 7, 0.7)},
		nil,
	}
	got := mergeTop(4, lists)
	want := []server.PairResponse{p(0, 1, 0.9), p(5, 6, 0.9), p(5, 7, 0.7), p(0, 2, 0.5)}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merge = %+v, want %+v", got, want)
	}
	if got := mergeTop(10, lists); len(got) != 5 {
		t.Fatalf("exhaustive merge returned %d pairs", len(got))
	}
}

// TestClusterProbesAndVars covers the ops surface: probes answer, and
// /debug/vars exposes the per-shard resilience counters.
func TestClusterProbesAndVars(t *testing.T) {
	shardA := shardServer(t, 0, 60)
	cluster := newTestCluster(t, fastConfig(), shardA.URL, shardServer(t, 60, 120).URL)

	for _, path := range []string{"/healthz", "/readyz"} {
		if code, _ := get(t, cluster.URL+path, nil); code != http.StatusOK {
			t.Fatalf("%s status %d", path, code)
		}
	}
	if code, _ := get(t, cluster.URL+"/api/ld?i=3&j=45", nil); code != http.StatusOK {
		t.Fatal("pair warm-up failed")
	}
	var vars struct {
		Shards map[string]struct {
			Requests     int64  `json:"requests"`
			BreakerState string `json:"breaker_state"`
		} `json:"shards"`
	}
	if code, _ := get(t, cluster.URL+"/debug/vars", &vars); code != http.StatusOK {
		t.Fatal("/debug/vars failed")
	}
	if len(vars.Shards) != 2 {
		t.Fatalf("vars list %d shards", len(vars.Shards))
	}
	sa := vars.Shards[shardA.URL]
	if sa.Requests < 1 || sa.BreakerState != "closed" {
		t.Fatalf("shard A vars %+v", sa)
	}
}
