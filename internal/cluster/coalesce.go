package cluster

import "sync"

// flightGroup coalesces identical in-flight requests: the first caller
// for a key becomes the leader and runs the shard fan-out, every
// concurrent caller with the same key waits for the leader's response
// and shares it. Responses are immutable for a fixed dataset fingerprint
// (which is part of every key), so a follower receiving the leader's
// bytes is indistinguishable from having scattered itself — except the
// shards see one request instead of N when a hot region spikes.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	resp *clusterResponse
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// do returns fn's response for key, running fn at most once across all
// concurrent callers. shared reports whether this caller piggybacked on
// another's in-flight work.
func (g *flightGroup) do(key string, fn func() *clusterResponse) (resp *clusterResponse, shared bool) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.resp, true
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.resp = fn()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.resp, false
}
