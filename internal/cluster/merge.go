package cluster

import (
	"container/heap"

	"ldgemm/internal/server"
)

// pairStronger is the canonical ranking order (R2 desc, then I, then J) —
// the same comparator core.PairStronger and the store's top-K heap use,
// so a merge of per-shard rankings reproduces the single-node order
// exactly.
func pairStronger(a, b server.PairResponse) bool {
	if a.R2 != b.R2 {
		return a.R2 > b.R2
	}
	if a.I != b.I {
		return a.I < b.I
	}
	return a.J < b.J
}

// mergeHeap is a k-way merge frontier over per-shard rankings: one cursor
// per non-empty list, ordered by the strength of the pair it points at.
type mergeHeap struct {
	lists [][]server.PairResponse
	head  []int // heap of list indices
	pos   []int // cursor into each list
}

func (h *mergeHeap) Len() int { return len(h.head) }
func (h *mergeHeap) Less(a, b int) bool {
	la, lb := h.head[a], h.head[b]
	return pairStronger(h.lists[la][h.pos[la]], h.lists[lb][h.pos[lb]])
}
func (h *mergeHeap) Swap(a, b int) { h.head[a], h.head[b] = h.head[b], h.head[a] }
func (h *mergeHeap) Push(x any)    { h.head = append(h.head, x.(int)) }
func (h *mergeHeap) Pop() any {
	x := h.head[len(h.head)-1]
	h.head = h.head[:len(h.head)-1]
	return x
}

// mergeTop streams the k strongest pairs out of per-shard rankings, each
// already sorted by pairStronger. Because shard strips partition the pair
// set disjointly, no deduplication is needed: every pair appears in
// exactly one list.
func mergeTop(k int, lists [][]server.PairResponse) []server.PairResponse {
	h := &mergeHeap{lists: lists, pos: make([]int, len(lists))}
	for i, l := range lists {
		if len(l) > 0 {
			h.head = append(h.head, i)
		}
	}
	heap.Init(h)
	out := make([]server.PairResponse, 0, k)
	for len(out) < k && h.Len() > 0 {
		l := h.head[0]
		out = append(out, h.lists[l][h.pos[l]])
		if h.pos[l]++; h.pos[l] < len(h.lists[l]) {
			heap.Fix(h, 0)
		} else {
			heap.Pop(h)
		}
	}
	return out
}
