package cluster

import (
	"expvar"
	"fmt"
	"net/http"
	"time"
)

// shardMetrics is the resilience ledger of one shard, published under the
// shards map on /debug/vars:
//
//	requests       HTTP round trips attempted (hedges included)
//	failures       attempts lost to transport errors or 5xx
//	retries        backoff re-attempts after a failed attempt
//	hedges         duplicate requests launched for slow primaries
//	hedge_wins     hedges that answered before their primary
//	fast_fails     calls refused locally while the breaker was open
//	breaker_trips  closed/half-open → open transitions
//	breaker_state  current circuit state
type shardMetrics struct {
	requests  expvar.Int
	failures  expvar.Int
	retries   expvar.Int
	hedges    expvar.Int
	hedgeWins expvar.Int
	fastFails expvar.Int
}

// metrics is the coordinator's ops surface, mirroring internal/server's
// private-expvar-map pattern so many coordinators can coexist in one
// process without duplicate-name panics.
type metrics struct {
	start     time.Time
	root      *expvar.Map
	requests  *expvar.Map
	statuses  *expvar.Map
	latency   *expvar.Map
	partials  expvar.Int // scatter-gathers answered with partial: true
	proxied   expvar.Int // whole-matrix requests forwarded to a single replica
	coalesced expvar.Int // requests that shared another caller's in-flight fan-out
}

// newMetrics builds the metric tree over the coordinator's replica
// groups: one entry per replica (keyed by URL, flat, so dashboards see
// every backend) under "shards", plus the result-cache and coalescing
// counters on the root.
func newMetrics(coord *Coordinator) *metrics {
	m := &metrics{
		start:    time.Now(),
		root:     new(expvar.Map).Init(),
		requests: new(expvar.Map).Init(),
		statuses: new(expvar.Map).Init(),
		latency:  new(expvar.Map).Init(),
	}
	m.root.Set("requests", m.requests)
	m.root.Set("statuses", m.statuses)
	m.root.Set("latency_ns", m.latency)
	m.root.Set("partial_responses", &m.partials)
	m.root.Set("proxied", &m.proxied)
	m.root.Set("coalesced_requests", &m.coalesced)
	m.root.Set("uptime_seconds", expvar.Func(func() any {
		return time.Since(m.start).Seconds()
	}))
	cacheVar := func(pick func(cacheStats) int64) expvar.Func {
		return func() any {
			if coord.cache == nil {
				return int64(0)
			}
			return pick(coord.cache.stats())
		}
	}
	m.root.Set("result_cache_hits", cacheVar(func(s cacheStats) int64 { return s.Hits }))
	m.root.Set("result_cache_misses", cacheVar(func(s cacheStats) int64 { return s.Misses }))
	m.root.Set("result_cache_bytes", cacheVar(func(s cacheStats) int64 { return s.Bytes }))
	m.root.Set("result_cache_entries", cacheVar(func(s cacheStats) int64 { return s.Entries }))
	m.root.Set("result_cache_evictions", cacheVar(func(s cacheStats) int64 { return s.Evictions }))
	m.root.Set("result_cache_rejected", cacheVar(func(s cacheStats) int64 { return s.Rejected }))
	shards := new(expvar.Map).Init()
	for gi, g := range coord.groups {
		for _, rep := range g.replicas {
			sm := rep.m
			sv := new(expvar.Map).Init()
			sv.Set("strip", expvar.Func(func() any { return gi }))
			sv.Set("requests", &sm.requests)
			sv.Set("failures", &sm.failures)
			sv.Set("retries", &sm.retries)
			sv.Set("hedges", &sm.hedges)
			sv.Set("hedge_wins", &sm.hedgeWins)
			sv.Set("fast_fails", &sm.fastFails)
			breaker := rep.breaker
			sv.Set("breaker_trips", expvar.Func(func() any {
				_, trips := breaker.snapshot()
				return trips
			}))
			sv.Set("breaker_state", expvar.Func(func() any {
				state, _ := breaker.snapshot()
				return state.String()
			}))
			shards.Set(rep.base, sv)
		}
	}
	m.root.Set("shards", shards)
	return m
}

// observe records one finished coordinator request.
func (m *metrics) observe(path string, status int, d time.Duration) {
	m.requests.Add(path, 1)
	m.statuses.Add(fmt.Sprintf("%d", status), 1)
	m.latency.Add(path, int64(d))
}

// serveVars writes the metric tree in expvar's JSON format.
func (m *metrics) serveVars(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	fmt.Fprintln(w, m.root.String())
}

// statusWriter captures the response status for metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// observeMiddleware wraps the coordinator mux with request accounting.
func observeMiddleware(m *metrics, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		m.observe(r.URL.Path, sw.status, time.Since(start))
	})
}
