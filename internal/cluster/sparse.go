package cluster

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync"

	"ldgemm/internal/server"
)

// Sparse-tier scatter-gather: the coordinator accepts the same POST
// bodies as a single node (/api/sparse/matvec, /api/sparse/score),
// fans the full vector out to every replica group whose strip overlaps
// the requested row window — each shard computing only its own rows —
// and concatenates the returned segments in strip order. MatVecRange's
// deterministic fold makes the assembled vector bit-identical to a
// single node's answer. Unlike region queries, a flat float vector has
// no way to mark lost rows, so a strip whose whole replica group is
// down fails the request instead of degrading it.

func (co *Coordinator) handleSparseMatVec(w http.ResponseWriter, r *http.Request) {
	co.serveSparse(w, r, false)
}

func (co *Coordinator) handleSparseScore(w http.ResponseWriter, r *http.Request) {
	co.serveSparse(w, r, true)
}

func (co *Coordinator) serveSparse(w http.ResponseWriter, r *http.Request, score bool) {
	name := "matvec"
	if score {
		name = "score"
	}
	// Same body cap as the single-node endpoints: ~20 bytes/entry as
	// JSON, 64/entry of headroom.
	raw, err := readPostBody(r, int64(co.n)*64+4096)
	if err != nil {
		httpError(w, http.StatusRequestEntityTooLarge, "%v", err)
		return
	}
	var req struct {
		X []float64 `json:"x"`
		Z []float64 `json:"z"`
	}
	if err := json.Unmarshal(raw, &req); err != nil {
		httpError(w, http.StatusBadRequest, "request body: %v", err)
		return
	}
	vec := req.X
	if score {
		vec = req.Z
	}
	if len(vec) != co.n {
		httpError(w, http.StatusBadRequest, "vector holds %d entries, dataset has %d SNPs", len(vec), co.n)
		return
	}
	rlo, rhi, windowed, err := rowsQuery(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if windowed {
		if rlo < 0 || rhi <= rlo || rhi > co.n {
			httpError(w, http.StatusBadRequest, "rows [%d,%d) outside 0..%d", rlo, rhi, co.n)
			return
		}
	} else {
		rlo, rhi = 0, co.n
	}

	// Re-marshal the decoded vector so every shard sees one canonical
	// body regardless of how the client spelled its JSON.
	var shardBody []byte
	if score {
		shardBody, err = json.Marshal(server.ScoreRequest{Z: vec})
	} else {
		shardBody, err = json.Marshal(server.MatVecRequest{X: vec})
	}
	if err != nil {
		httpError(w, http.StatusInternalServerError, "encoding shard request: %v", err)
		return
	}

	// The result cache and coalescer key on the query string for GET
	// routes; here the vector is the query, so its digest joins the key.
	key := fmt.Sprintf("sparse/%s rows=%d:%d vec=%s", name, rlo, rhi, vecDigest(vec))
	co.serve(w, r, key, func(ctx context.Context) *clusterResponse {
		owners := co.part.overlapping(rlo, rhi)
		results := co.scatterPost(ctx, owners, func(shard int) string {
			strip := co.part.ranges[shard]
			return fmt.Sprintf("/api/sparse/%s?rows=%d:%d", name, max(strip.Start, rlo), min(strip.End, rhi))
		}, shardBody, func(res *stripResult) any {
			if score {
				return &res.score
			}
			return &res.matvec
		})
		failed, terminal := co.gatherVerdict(owners, results)
		if terminal != nil {
			return terminal
		}
		if len(failed) > 0 {
			return errorResponse(http.StatusBadGateway,
				"sparse %s lost strips served by %s", name, co.failedNames(failed))
		}

		out := make([]float64, rhi-rlo)
		for k, shard := range owners {
			strip := co.part.ranges[shard]
			wlo, whi := max(strip.Start, rlo), min(strip.End, rhi)
			rs, re, seg := results[k].sparseWindow(score)
			if rs != wlo || re != whi || len(seg) != whi-wlo {
				return errorResponse(http.StatusBadGateway,
					"shard %s answered window [%d,%d) with %d rows, want [%d,%d)",
					co.groups[shard].names(), rs, re, len(seg), wlo, whi)
			}
			copy(out[wlo-rlo:], seg)
		}
		if score {
			return okResponse(server.ScoreResponse{RowStart: rlo, RowEnd: rhi, Scores: out}, "")
		}
		return okResponse(server.MatVecResponse{RowStart: rlo, RowEnd: rhi, Y: out}, "")
	})
}

// scatterPost fans one canonical JSON body out to the given groups
// concurrently, decoding each response into the slot decode selects.
// Within each group the call routes to the healthiest replica and fails
// over through the rest.
func (co *Coordinator) scatterPost(ctx context.Context, owners []int, query func(shard int) string, body []byte, decode func(*stripResult) any) []stripResult {
	results := make([]stripResult, len(owners))
	var wg sync.WaitGroup
	for k, shard := range owners {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[k].err = co.groups[shard].postJSON(ctx, query(shard), body, decode(&results[k]))
		}()
	}
	wg.Wait()
	return results
}

// sparseWindow returns the answered window and segment of one strip.
func (res *stripResult) sparseWindow(score bool) (rs, re int, seg []float64) {
	if score {
		return res.score.RowStart, res.score.RowEnd, res.score.Scores
	}
	return res.matvec.RowStart, res.matvec.RowEnd, res.matvec.Y
}

// vecDigest hashes a vector's exact bit pattern for cache/coalesce keys:
// two requests share an entry only when every entry is bit-identical.
func vecDigest(v []float64) string {
	h := sha256.New()
	var buf [8]byte
	for _, x := range v {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// readPostBody drains a request body under a hard byte cap.
func readPostBody(r *http.Request, limit int64) ([]byte, error) {
	defer r.Body.Close()
	b, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, limit))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return nil, fmt.Errorf("request body exceeds %d bytes", limit)
		}
		return nil, err
	}
	return b, nil
}

// postOnlyFallback answers non-POST requests to a POST-only path.
func postOnlyFallback(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Allow", http.MethodPost)
	httpError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
}
