package cluster

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"ldgemm/internal/ldsparse"
	"ldgemm/internal/server"
)

// sparseTestStore builds one threshold-pruned store over the shared test
// matrix and opens an independent handle per caller, mirroring a real
// deployment where every shard opens the same store file.
func sparseTestStore(t *testing.T) *ldsparse.Store {
	t.Helper()
	path := filepath.Join(t.TempDir(), "r.ldss")
	if _, err := ldsparse.BuildFile(path, testGenotypes(t), ldsparse.BuildOptions{
		TileSize: 32, Threshold: 0.02,
	}); err != nil {
		t.Fatal(err)
	}
	sp, err := ldsparse.Open(path, ldsparse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sp.Close() })
	return sp
}

func sparseShardServer(t *testing.T, lo, hi int) *httptest.Server {
	t.Helper()
	s := server.New(testGenotypes(t), server.Config{
		Threads: 2, ShardStart: lo, ShardEnd: hi, Sparse: sparseTestStore(t),
	})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts
}

func postSparse(t *testing.T, url string, body any, v any) (int, http.Header) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp.StatusCode, resp.Header
}

// TestClusterSparseBitIdentity: a 3-shard cluster's matvec and score
// answers are bit-identical to one unsharded sparse-serving node, with
// and without an explicit row window.
func TestClusterSparseBitIdentity(t *testing.T) {
	single := httptest.NewServer(server.New(testGenotypes(t),
		server.Config{Threads: 2, Sparse: sparseTestStore(t)}))
	defer single.Close()
	cluster := newTestCluster(t, fastConfig(),
		sparseShardServer(t, 0, 40).URL,
		sparseShardServer(t, 40, 80).URL,
		sparseShardServer(t, 80, 120).URL)

	n := 120
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(float64(3*i+1)) + 0.25
	}

	for _, q := range []string{"", "?rows=25:95"} {
		var want, got server.MatVecResponse
		if code, _ := postSparse(t, single.URL+"/api/sparse/matvec"+q, server.MatVecRequest{X: x}, &want); code != http.StatusOK {
			t.Fatalf("single matvec%s status %d", q, code)
		}
		if code, hdr := postSparse(t, cluster.URL+"/api/sparse/matvec"+q, server.MatVecRequest{X: x}, &got); code != http.StatusOK {
			t.Fatalf("cluster matvec%s status %d", q, code)
		} else if hdr.Get("X-LD-Shards-Failed") != "" {
			t.Fatalf("matvec%s unexpectedly partial", q)
		}
		if got.RowStart != want.RowStart || got.RowEnd != want.RowEnd || len(got.Y) != len(want.Y) {
			t.Fatalf("matvec%s window [%d,%d)×%d, want [%d,%d)×%d", q,
				got.RowStart, got.RowEnd, len(got.Y), want.RowStart, want.RowEnd, len(want.Y))
		}
		for i := range want.Y {
			if math.Float64bits(got.Y[i]) != math.Float64bits(want.Y[i]) {
				t.Fatalf("matvec%s y[%d] = %v, single %v", q, i, got.Y[i], want.Y[i])
			}
		}
	}

	var wantS, gotS server.ScoreResponse
	if code, _ := postSparse(t, single.URL+"/api/sparse/score", server.ScoreRequest{Z: x}, &wantS); code != http.StatusOK {
		t.Fatalf("single score status %d", code)
	}
	if code, _ := postSparse(t, cluster.URL+"/api/sparse/score", server.ScoreRequest{Z: x}, &gotS); code != http.StatusOK {
		t.Fatalf("cluster score status %d", code)
	}
	for i := range wantS.Scores {
		if math.Float64bits(gotS.Scores[i]) != math.Float64bits(wantS.Scores[i]) {
			t.Fatalf("scores[%d] = %v, single %v", i, gotS.Scores[i], wantS.Scores[i])
		}
	}

	// A repeated identical request is served from the result cache and
	// stays bit-identical.
	var again server.ScoreResponse
	if code, _ := postSparse(t, cluster.URL+"/api/sparse/score", server.ScoreRequest{Z: x}, &again); code != http.StatusOK {
		t.Fatalf("cached score status %d", code)
	}
	for i := range gotS.Scores {
		if math.Float64bits(again.Scores[i]) != math.Float64bits(gotS.Scores[i]) {
			t.Fatalf("cached scores[%d] differs", i)
		}
	}

	// A different vector must not hit the first vector's cache entry.
	y := make([]float64, n)
	copy(y, x)
	y[7] += 0.5
	var wantY, gotY server.MatVecResponse
	if code, _ := postSparse(t, single.URL+"/api/sparse/matvec", server.MatVecRequest{X: y}, &wantY); code != http.StatusOK {
		t.Fatalf("single matvec(y) status %d", code)
	}
	if code, _ := postSparse(t, cluster.URL+"/api/sparse/matvec", server.MatVecRequest{X: y}, &gotY); code != http.StatusOK {
		t.Fatalf("cluster matvec(y) status %d", code)
	}
	for i := range wantY.Y {
		if math.Float64bits(gotY.Y[i]) != math.Float64bits(wantY.Y[i]) {
			t.Fatalf("matvec(y) y[%d] = %v, single %v", i, gotY.Y[i], wantY.Y[i])
		}
	}
}

// TestClusterSparseValidation: bad vectors, bad windows, and wrong
// methods are rejected by the coordinator itself.
func TestClusterSparseValidation(t *testing.T) {
	cluster := newTestCluster(t, fastConfig(),
		sparseShardServer(t, 0, 60).URL, sparseShardServer(t, 60, 120).URL)

	if code, _ := postSparse(t, cluster.URL+"/api/sparse/matvec", server.MatVecRequest{X: make([]float64, 7)}, nil); code != http.StatusBadRequest {
		t.Fatalf("short vector gave %d", code)
	}
	if code, _ := postSparse(t, cluster.URL+"/api/sparse/matvec?rows=90:10", server.MatVecRequest{X: make([]float64, 120)}, nil); code != http.StatusBadRequest {
		t.Fatalf("inverted window gave %d", code)
	}
	resp, err := http.Post(cluster.URL+"/api/sparse/score", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body gave %d", resp.StatusCode)
	}
	if code, _ := get(t, cluster.URL+"/api/sparse/matvec", nil); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET gave %d", code)
	}
}

// TestClusterSparseLostStrip: a flat vector cannot carry holes, so a
// down strip fails the whole request instead of degrading it.
func TestClusterSparseLostStrip(t *testing.T) {
	alive := sparseShardServer(t, 0, 60)
	dead := sparseShardServer(t, 60, 120)
	cluster := newTestCluster(t, fastConfig(), alive.URL, dead.URL)
	dead.Close()

	if code, _ := postSparse(t, cluster.URL+"/api/sparse/matvec", server.MatVecRequest{X: make([]float64, 120)}, nil); code != http.StatusBadGateway {
		t.Fatalf("lost strip gave %d", code)
	}
}
