package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"sort"
	"strings"
	"sync/atomic"
)

// replicaGroup is the serving unit for one strip of the partition: a set
// of interchangeable replicas, each advertising the same dataset
// fingerprint and shard range (validated at bootstrap). Calls route to
// the healthiest replica — breaker state first, then observed p95
// latency — and fail over through the rest of the group before the strip
// is declared lost, so a single dead replica never degrades an answer.
type replicaGroup struct {
	replicas []*shardClient
	rr       atomic.Uint64 // rotation cursor breaking health ties
}

// parseGroupSpecs splits coordinator URL specs into replica groups:
// groups are comma-separated at the CLI (already split by the caller),
// replicas within a group are separated by "|", e.g. "urlA|urlB".
func parseGroupSpecs(specs []string) ([][]string, error) {
	groups := make([][]string, 0, len(specs))
	for _, spec := range specs {
		var group []string
		for _, u := range strings.Split(spec, "|") {
			u = strings.TrimSuffix(strings.TrimSpace(u), "/")
			if u == "" {
				continue
			}
			if !strings.Contains(u, "://") {
				u = "http://" + u // bare host:port is the common CLI spelling
			}
			group = append(group, u)
		}
		if len(group) == 0 {
			return nil, errors.New("cluster: empty replica group in shard URL list")
		}
		groups = append(groups, group)
	}
	if len(groups) == 0 {
		return nil, errors.New("cluster: no shard URLs")
	}
	return groups, nil
}

// healthRank orders breaker states healthiest-first: a closed circuit
// beats a half-open one probing its way back, which beats an open one
// that would fail fast anyway.
func healthRank(s breakerState) int {
	switch s {
	case breakerClosed:
		return 0
	case breakerHalfOpen:
		return 1
	default:
		return 2
	}
}

// ranked returns the replicas in routing order: breaker state first,
// then p95 latency, with replicas lacking a latency window tried before
// measured ones (they need samples before they can compete, which also
// spreads cold-start load). Replicas of comparable health — p95 within
// 25% of each other — keep a rotating round-robin order so steady-state
// load spreads across the group instead of pinning to one replica.
func (g *replicaGroup) ranked() []*shardClient {
	n := len(g.replicas)
	if n == 1 {
		return g.replicas
	}
	out := make([]*shardClient, n)
	start := int(g.rr.Add(1) % uint64(n))
	for i := range out {
		out[i] = g.replicas[(start+i)%n]
	}
	sort.SliceStable(out, func(a, b int) bool {
		sa, pa, ka := out[a].health()
		sb, pb, kb := out[b].health()
		if ra, rb := healthRank(sa), healthRank(sb); ra != rb {
			return ra < rb
		}
		if ka != kb {
			return !ka
		}
		if !ka {
			return false // both unmeasured: keep the rotation order
		}
		// Prefer a clearly faster replica; within 25% they are peers and
		// the rotation order stands.
		return pa*4 < pb*3
	})
	return out
}

// get fetches pathQuery from the healthiest replica, failing over
// through the rest of the group on shard-side failures. A terminal 4xx
// returns immediately — it is deterministic for the query, and every
// replica would answer the same — and only when every replica has
// failed is the strip reported lost.
func (g *replicaGroup) get(ctx context.Context, pathQuery string) ([]byte, error) {
	return g.call(ctx, func(ctx context.Context, r *shardClient) ([]byte, error) {
		return r.get(ctx, pathQuery)
	})
}

// post sends the same JSON body to replicas in health order until one
// answers. The sparse POST endpoints are pure functions of the dataset
// and body, so replaying the body on the next replica is safe.
func (g *replicaGroup) post(ctx context.Context, pathQuery string, body []byte) ([]byte, error) {
	return g.call(ctx, func(ctx context.Context, r *shardClient) ([]byte, error) {
		return r.post(ctx, pathQuery, body)
	})
}

func (g *replicaGroup) call(ctx context.Context, do func(context.Context, *shardClient) ([]byte, error)) ([]byte, error) {
	var lastErr error
	for _, r := range g.ranked() {
		body, err := do(ctx, r)
		if err == nil {
			return body, nil
		}
		var he *HTTPError
		if errors.As(err, &he) && he.Status < 500 {
			return nil, err
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, lastErr
		}
	}
	return nil, lastErr
}

// getJSON fetches and decodes a 200 response with in-group failover.
func (g *replicaGroup) getJSON(ctx context.Context, pathQuery string, v any) error {
	body, err := g.get(ctx, pathQuery)
	if err != nil {
		return err
	}
	return json.Unmarshal(body, v)
}

// postJSON posts body and decodes a 200 response with in-group failover.
func (g *replicaGroup) postJSON(ctx context.Context, pathQuery string, body []byte, v any) error {
	resp, err := g.post(ctx, pathQuery, body)
	if err != nil {
		return err
	}
	return json.Unmarshal(resp, v)
}

// admitting reports whether any replica's breaker would let a call
// through right now.
func (g *replicaGroup) admitting() bool {
	for _, r := range g.replicas {
		if state, _ := r.breaker.snapshot(); state != breakerOpen {
			return true
		}
	}
	return false
}

// names joins the group's replica URLs for topology-facing surfaces
// (X-LD-Shards-Failed, error messages).
func (g *replicaGroup) names() string {
	urls := make([]string, len(g.replicas))
	for i, r := range g.replicas {
		urls[i] = r.base
	}
	return strings.Join(urls, "|")
}
