package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// HTTPError is a non-200 shard response. Status < 500 is terminal — the
// shard is healthy and the request itself was rejected — and is relayed
// to the client verbatim; 5xx is a shard failure and retried.
type HTTPError struct {
	Status int
	Body   []byte
}

func (e *HTTPError) Error() string {
	return fmt.Sprintf("shard returned %d: %s", e.Status, e.Body)
}

// errShardDown is returned without touching the network while a shard's
// circuit breaker is open.
var errShardDown = errors.New("cluster: shard circuit open")

// latencyRing keeps the most recent successful round-trip times of one
// shard, feeding the adaptive hedge delay.
type latencyRing struct {
	mu   sync.Mutex
	buf  [64]time.Duration
	n    int // valid entries
	next int
}

// hedgeMinSamples gates adaptive hedging: until a shard has this many
// observed round trips there is no percentile worth acting on.
const hedgeMinSamples = 16

func (l *latencyRing) add(d time.Duration) {
	l.mu.Lock()
	l.buf[l.next] = d
	l.next = (l.next + 1) % len(l.buf)
	if l.n < len(l.buf) {
		l.n++
	}
	l.mu.Unlock()
}

// quantile returns the q-quantile of the recorded window, or false while
// the window holds fewer than hedgeMinSamples entries.
func (l *latencyRing) quantile(q float64) (time.Duration, bool) {
	l.mu.Lock()
	n := l.n
	tmp := make([]time.Duration, n)
	copy(tmp, l.buf[:n])
	l.mu.Unlock()
	if n < hedgeMinSamples {
		return 0, false
	}
	sort.Slice(tmp, func(a, b int) bool { return tmp[a] < tmp[b] })
	idx := int(q * float64(n-1))
	return tmp[idx], true
}

// shardClient is the resilient HTTP client for one shard: every get runs
// under the per-attempt timeout, transport errors and 5xx are retried
// with bounded exponential backoff, a slow first attempt is hedged with a
// duplicate request after the shard's recent latency percentile, and the
// circuit breaker fails the whole call fast while the shard is down.
type shardClient struct {
	base    string // http://host:port, no trailing slash
	hc      *http.Client
	cfg     Config
	breaker *breaker
	lat     *latencyRing
	m       *shardMetrics
}

func newShardClient(base string, hc *http.Client, cfg Config, m *shardMetrics) *shardClient {
	return &shardClient{
		base: base, hc: hc, cfg: cfg,
		breaker: newBreaker(cfg.BreakerFailures, cfg.BreakerCooldown),
		lat:     &latencyRing{},
		m:       m,
	}
}

// health summarizes the routing signals this client already collects:
// the breaker state and the recent p95 round-trip latency (known=false
// until the ring holds enough samples). Replica groups rank on it to
// pick the healthiest replica for each call.
func (c *shardClient) health() (state breakerState, p95 time.Duration, known bool) {
	state, _ = c.breaker.snapshot()
	p95, known = c.lat.quantile(0.95)
	return state, p95, known
}

// get fetches pathQuery (e.g. "/api/ld?i=3&j=5") from the shard and
// returns the 200 body.
func (c *shardClient) get(ctx context.Context, pathQuery string) ([]byte, error) {
	return c.call(ctx, http.MethodGet, pathQuery, nil)
}

// post sends body (JSON) to pathQuery. The cluster's POST endpoints are
// pure functions of the dataset and the request body, so posts ride the
// same retry, hedge, and failover machinery as gets — a duplicated or
// replayed request answers identically.
func (c *shardClient) post(ctx context.Context, pathQuery string, body []byte) ([]byte, error) {
	return c.call(ctx, http.MethodPost, pathQuery, body)
}

// call runs one logical request. The breaker is consulted once per call
// and fed one outcome per attempt, so a string of failed retries trips
// it as fast as a string of failed calls.
func (c *shardClient) call(ctx context.Context, method, pathQuery string, reqBody []byte) ([]byte, error) {
	if !c.breaker.allow() {
		c.m.fastFails.Add(1)
		return nil, fmt.Errorf("%w: %s", errShardDown, c.base)
	}
	backoff := c.cfg.RetryBackoff
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			c.m.retries.Add(1)
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > maxBackoff {
				backoff = maxBackoff
			}
		}
		body, err := c.hedgedDo(ctx, method, pathQuery, reqBody)
		if err == nil {
			c.breaker.record(true)
			return body, nil
		}
		var he *HTTPError
		if errors.As(err, &he) && he.Status < 500 {
			// The shard answered deliberately: healthy for the breaker,
			// pointless to retry.
			c.breaker.record(true)
			return nil, err
		}
		if ctx.Err() != nil {
			// The caller went away, so the failure says nothing about the
			// shard: hand a half-open probe slot back instead of feeding
			// the cancellation into the breaker, or a burst of abandoned
			// requests would trip the circuit against a healthy shard.
			c.breaker.neutral()
			return nil, err
		}
		c.breaker.record(false)
		c.m.failures.Add(1)
		lastErr = err
		if attempt == c.cfg.Retries {
			return nil, lastErr
		}
	}
}

const maxBackoff = time.Second

// hedgedDo runs one logical attempt: the primary request, plus — once the
// primary has been in flight past the hedge delay — a duplicate, with the
// first success winning and the straggler cancelled. The delay comes from
// the shard's own recent latency percentile, so hedges fire only for
// outlier-slow requests, spending at most a few percent extra load to cut
// the tail.
func (c *shardClient) hedgedDo(ctx context.Context, method, pathQuery string, reqBody []byte) ([]byte, error) {
	delay, hedge := c.hedgeDelay()
	if !hedge {
		return c.do(ctx, method, pathQuery, reqBody)
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel() // releases the straggler once a winner returns
	type result struct {
		body   []byte
		err    error
		hedged bool
	}
	ch := make(chan result, 2)
	launch := func(hedged bool) {
		go func() {
			// reqBody is a shared read-only slice; each attempt wraps it in
			// its own reader, so the hedge re-sends the identical bytes.
			body, err := c.do(ctx, method, pathQuery, reqBody)
			ch <- result{body: body, err: err, hedged: hedged}
		}()
	}
	launch(false)
	timer := time.NewTimer(delay)
	defer timer.Stop()
	inFlight := 1
	var firstErr error
	for {
		select {
		case <-timer.C:
			if inFlight == 1 {
				inFlight = 2
				c.m.hedges.Add(1)
				launch(true)
			}
		case r := <-ch:
			if r.err == nil {
				if r.hedged {
					c.m.hedgeWins.Add(1)
				}
				return r.body, nil
			}
			var he *HTTPError
			if errors.As(r.err, &he) && he.Status < 500 {
				// Terminal: the shard rejected the request itself, which is
				// deterministic for the same query, so the straggler cannot
				// answer differently. Return now and let the deferred cancel
				// release it instead of burning a full extra round trip.
				return nil, r.err
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if inFlight--; inFlight == 0 {
				return nil, firstErr
			}
			// One request failed while the other is still running: let the
			// survivor decide the attempt.
		}
	}
}

// hedgeDelay resolves the hedge trigger: a fixed configured delay, the
// shard's recent latency percentile, or disabled entirely.
func (c *shardClient) hedgeDelay() (time.Duration, bool) {
	switch {
	case c.cfg.HedgeAfter < 0:
		return 0, false
	case c.cfg.HedgeAfter > 0:
		return c.cfg.HedgeAfter, true
	}
	q, ok := c.lat.quantile(c.cfg.HedgeQuantile)
	if !ok {
		return 0, false // not enough history yet
	}
	return max(q, time.Millisecond), true
}

// do performs one HTTP round trip under the per-attempt timeout.
func (c *shardClient) do(ctx context.Context, method, pathQuery string, reqBody []byte) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, c.cfg.ShardTimeout)
	defer cancel()
	var rd io.Reader
	if reqBody != nil {
		rd = bytes.NewReader(reqBody)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+pathQuery, rd)
	if err != nil {
		return nil, err
	}
	if reqBody != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	c.m.requests.Add(1)
	start := time.Now()
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		// Not a successful round trip: a shard failing fast with 5xx must
		// not drag the hedge trigger down, or hedges fire hardest exactly
		// when a shard is partially broken (and a 4xx says nothing about
		// how long real answers take either).
		return nil, &HTTPError{Status: resp.StatusCode, Body: body}
	}
	c.lat.add(time.Since(start))
	return body, nil
}

// getJSON fetches and decodes a 200 response.
func (c *shardClient) getJSON(ctx context.Context, pathQuery string, v any) error {
	body, err := c.get(ctx, pathQuery)
	if err != nil {
		return err
	}
	return json.Unmarshal(body, v)
}
