package cluster

import (
	"container/list"
	"net/http"
	"sync"
)

// clusterResponse is a fully materialized coordinator answer: the status,
// the JSON body, and the degradation marker. It is the unit the result
// cache stores and the singleflight group shares between coalesced
// callers, so one shard fan-out can answer many clients byte-identically.
type clusterResponse struct {
	status  int
	body    []byte
	partial bool
	failed  string // X-LD-Shards-Failed header value, "" when complete
}

// cacheable reports whether the response may be admitted to the result
// cache. Only complete 200 answers qualify: for a fixed dataset
// fingerprint they are immutable, so they can live until the coordinator
// is rebootstrapped against a new fingerprint. Partial answers reflect a
// transient outage and errors reflect transient or caller state — caching
// either would pin a bad answer forever.
func (cr *clusterResponse) cacheable() bool {
	return cr.status == http.StatusOK && !cr.partial
}

// write relays the response to one client.
func (cr *clusterResponse) write(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json")
	if cr.failed != "" {
		w.Header().Set("X-LD-Shards-Failed", cr.failed)
	}
	if cr.status != http.StatusOK {
		w.WriteHeader(cr.status)
	}
	w.Write(cr.body)
}

// cacheEntryOverhead approximates the bookkeeping cost of one entry
// (map slot, list element, struct headers) so many tiny bodies cannot
// blow past the byte budget through accounting that only sees payloads.
const cacheEntryOverhead = 128

// resultCache is the coordinator's fingerprint-keyed LRU over complete
// responses. Admission is cost-aware: every entry is charged its body
// and key bytes plus fixed overhead against a byte capacity, entries
// costing more than maxEntryFraction of the capacity are refused
// outright (one giant region must not evict the whole working set), and
// the least-recently-used entries are evicted until the budget holds.
// Entries never expire by time — responses are immutable for a given
// dataset fingerprint, and the fingerprint is part of every key — so
// invalidation happens only by rebootstrapping against a new dataset.
type resultCache struct {
	mu      sync.Mutex
	cap     int64
	bytes   int64
	entries map[string]*list.Element
	lru     *list.List // front = most recently used

	hits, misses, evictions, rejected int64
}

// maxEntryFraction caps a single entry at 1/8 of the cache capacity.
const maxEntryFraction = 8

type cacheEntry struct {
	key  string
	resp *clusterResponse
	cost int64
}

func newResultCache(capBytes int64) *resultCache {
	return &resultCache{cap: capBytes, entries: make(map[string]*list.Element), lru: list.New()}
}

// get returns the cached response for key, refreshing its recency.
func (c *resultCache) get(key string) (*clusterResponse, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).resp, true
}

// put admits resp under key, evicting least-recently-used entries until
// the byte budget holds. Oversized entries are rejected.
func (c *resultCache) put(key string, resp *clusterResponse) {
	cost := int64(len(resp.body)+len(key)) + cacheEntryOverhead
	c.mu.Lock()
	defer c.mu.Unlock()
	if cost > c.cap/maxEntryFraction {
		c.rejected++
		return
	}
	if el, ok := c.entries[key]; ok {
		// Replace in place (same key can race through the singleflight
		// boundary); the body is identical by construction, but keep the
		// accounting exact anyway.
		c.bytes += cost - el.Value.(*cacheEntry).cost
		el.Value = &cacheEntry{key: key, resp: resp, cost: cost}
		c.lru.MoveToFront(el)
	} else {
		c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, resp: resp, cost: cost})
		c.bytes += cost
	}
	for c.bytes > c.cap {
		back := c.lru.Back()
		if back == nil {
			break
		}
		e := back.Value.(*cacheEntry)
		c.lru.Remove(back)
		delete(c.entries, e.key)
		c.bytes -= e.cost
		c.evictions++
	}
}

// cacheStats is a point-in-time snapshot for /debug/vars.
type cacheStats struct {
	Hits, Misses, Bytes, Entries, Evictions, Rejected int64
}

func (c *resultCache) stats() cacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return cacheStats{
		Hits: c.hits, Misses: c.misses, Bytes: c.bytes,
		Entries: int64(len(c.entries)), Evictions: c.evictions, Rejected: c.rejected,
	}
}
