package cluster

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestLatencyRingWraparound: after the 64-slot ring wraps (100 adds),
// quantiles are computed over the most recent window, and a ring below
// hedgeMinSamples reports no quantile at all.
func TestLatencyRingWraparound(t *testing.T) {
	var l latencyRing
	for i := 1; i <= 100; i++ {
		l.add(time.Duration(i) * time.Millisecond)
	}
	// The ring holds samples 37ms..100ms (the most recent 64).
	if q, ok := l.quantile(0); !ok || q != 37*time.Millisecond {
		t.Fatalf("min quantile = %v ok=%t, want 37ms", q, ok)
	}
	if q, ok := l.quantile(1); !ok || q != 100*time.Millisecond {
		t.Fatalf("max quantile = %v ok=%t, want 100ms", q, ok)
	}
	// p95 over the 64-sample window: index int(0.95·63) = 59 → 96ms.
	if q, ok := l.quantile(0.95); !ok || q != 96*time.Millisecond {
		t.Fatalf("p95 = %v ok=%t, want 96ms", q, ok)
	}

	var sparse latencyRing
	for i := 0; i < hedgeMinSamples-1; i++ {
		sparse.add(time.Millisecond)
	}
	if _, ok := sparse.quantile(0.95); ok {
		t.Fatal("quantile reported below the minimum sample count")
	}
	sparse.add(time.Millisecond)
	if _, ok := sparse.quantile(0.95); !ok {
		t.Fatal("quantile unavailable at the minimum sample count")
	}
}

// TestBreakerIgnoresCallerCancellation: a burst of caller-cancelled
// requests interleaved with real 5xx failures must neither trip the
// breaker on its own nor reset the genuine failure streak — only
// shard-side outcomes count.
func TestBreakerIgnoresCallerCancellation(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()
	m := &shardMetrics{}
	c := newShardClient(ts.URL, ts.Client(), Config{
		Retries: -1, HedgeAfter: -1, BreakerFailures: 3,
	}.normalize(), m)

	// Two genuine failures: one short of the threshold.
	for i := 0; i < 2; i++ {
		if _, err := c.get(context.Background(), "/"); err == nil {
			t.Fatal("failing shard answered")
		}
	}
	if got := m.failures.Value(); got != 2 {
		t.Fatalf("failures = %d, want 2", got)
	}

	// A burst of cancelled callers: no shard information, no outcome.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	for i := 0; i < 10; i++ {
		if _, err := c.get(cancelled, "/"); err == nil {
			t.Fatal("cancelled call answered")
		}
	}
	if state, trips := c.breaker.snapshot(); state != breakerClosed || trips != 0 {
		t.Fatalf("after cancellations: state %v trips %d, want closed/0", state, trips)
	}
	if got := m.failures.Value(); got != 2 {
		t.Fatalf("cancellations were counted as failures (failures = %d)", got)
	}

	// The cancellations also must not have reset the streak: one more
	// genuine failure reaches the threshold.
	if _, err := c.get(context.Background(), "/"); err == nil {
		t.Fatal("failing shard answered")
	}
	if state, trips := c.breaker.snapshot(); state != breakerOpen || trips != 1 {
		t.Fatalf("after third genuine failure: state %v trips %d, want open/1", state, trips)
	}
}

// TestBreakerHalfOpenSurvivesCancelledProbe: when the probe admitted
// after the cooldown is abandoned by its caller, the breaker hands the
// probe slot back instead of wedging in half-open, and the next call
// probes again.
func TestBreakerHalfOpenSurvivesCancelledProbe(t *testing.T) {
	var failing atomic.Bool
	failing.Store(true)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failing.Load() {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{"ok":true}`))
	}))
	defer ts.Close()
	m := &shardMetrics{}
	c := newShardClient(ts.URL, ts.Client(), Config{
		Retries: -1, HedgeAfter: -1, BreakerFailures: 1, BreakerCooldown: 20 * time.Millisecond,
	}.normalize(), m)

	if _, err := c.get(context.Background(), "/"); err == nil {
		t.Fatal("failing shard answered")
	}
	if state, _ := c.breaker.snapshot(); state != breakerOpen {
		t.Fatal("breaker did not open")
	}
	time.Sleep(30 * time.Millisecond)

	// The half-open probe is cancelled by its caller.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.get(cancelled, "/"); err == nil {
		t.Fatal("cancelled probe answered")
	}
	// The shard recovers; the next call must be admitted as a fresh probe
	// rather than failing fast against a wedged half-open circuit.
	failing.Store(false)
	if _, err := c.get(context.Background(), "/"); err != nil {
		t.Fatalf("probe after cancelled probe failed: %v", err)
	}
	if state, _ := c.breaker.snapshot(); state != breakerClosed {
		t.Fatalf("state %v after successful probe, want closed", state)
	}
}

// TestLatencyRingRecordsOnlySuccesses: fast 5xx responses must not feed
// the hedge ring — a partially failing shard would otherwise drag the
// "successful round trip" p95 down and trigger a hedge storm.
func TestLatencyRingRecordsOnlySuccesses(t *testing.T) {
	var fail atomic.Bool
	fail.Store(true)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if fail.Load() {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{"ok":true}`))
	}))
	defer ts.Close()
	m := &shardMetrics{}
	c := newShardClient(ts.URL, ts.Client(), Config{
		Retries: -1, HedgeAfter: -1, BreakerFailures: 1000,
	}.normalize(), m)

	for i := 0; i < 2*hedgeMinSamples; i++ {
		c.get(context.Background(), "/")
	}
	c.lat.mu.Lock()
	n := c.lat.n
	c.lat.mu.Unlock()
	if n != 0 {
		t.Fatalf("latency ring holds %d samples from 5xx responses, want 0", n)
	}

	fail.Store(false)
	for i := 0; i < 3; i++ {
		if _, err := c.get(context.Background(), "/"); err != nil {
			t.Fatal(err)
		}
	}
	c.lat.mu.Lock()
	n = c.lat.n
	c.lat.mu.Unlock()
	if n != 3 {
		t.Fatalf("latency ring holds %d samples after 3 successes, want 3", n)
	}
}

// TestHedgeTerminalReturnsImmediately: when the hedged duplicate gets a
// terminal 4xx while the primary is still in flight, the call returns
// the 4xx at once — it is deterministic for the query — instead of
// waiting out the straggler.
func TestHedgeTerminalReturnsImmediately(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			select { // primary stalls until the test ends
			case <-release:
			case <-r.Context().Done():
			}
		}
		http.Error(w, `{"error":"no such pair"}`, http.StatusNotFound)
	}))
	defer ts.Close()
	m := &shardMetrics{}
	c := newShardClient(ts.URL, ts.Client(), Config{
		HedgeAfter: 5 * time.Millisecond, Retries: -1, ShardTimeout: time.Minute,
	}.normalize(), m)

	start := time.Now()
	_, err := c.get(context.Background(), "/")
	elapsed := time.Since(start)
	var he *HTTPError
	if !errors.As(err, &he) || he.Status != http.StatusNotFound {
		t.Fatalf("err = %v, want HTTP 404", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("terminal 4xx took %v — the call waited for the stalled straggler", elapsed)
	}
	// The terminal answer is a shard-side verdict: healthy breaker.
	if state, _ := c.breaker.snapshot(); state != breakerClosed {
		t.Fatalf("breaker state %v after 4xx, want closed", state)
	}
}
