// Package cluster is the horizontal tier over internal/server: a
// coordinator fronting N replica groups, each group a set of
// interchangeable shard servers owning the same contiguous strip of the
// SNP index range over the same genotype matrix (identical dataset
// fingerprints, validated at bootstrap). Ownership goes by a pair's
// smaller index, which partitions the n(n−1)/2 pair set disjointly and
// completely across strips, so pair lookups route to one group and
// region/top queries scatter-gather with no overlap to deduplicate.
// Within a group, each call routes to the healthiest replica — breaker
// state first, then observed p95 latency — and fails over through the
// rest before the strip is declared lost. Every replica call runs
// through a resilient client: per-attempt timeout, bounded
// exponential-backoff retry on transport errors and 5xx, a hedged second
// request once the first outlives the replica's recent latency
// percentile, and a per-replica circuit breaker that fails fast while a
// replica is down. Identical in-flight pair/region/top requests coalesce
// into one shard fan-out, and complete responses land in a
// fingerprint-keyed, byte-budgeted LRU result cache (responses are
// immutable for a fixed dataset, so entries live until the coordinator
// is rebootstrapped). Only when a whole replica group is lost do
// scatter-gathered responses degrade instead of failing: the coordinator
// answers from the surviving strips with partial: true and an
// X-LD-Shards-Failed header.
package cluster

import (
	"fmt"
	"sort"
)

// Range is a half-open row strip [Start, End) of the SNP index range.
type Range struct {
	Start, End int
}

// partition maps SNP rows to owning shards. ranges[i] is the strip owned
// by shard i (after construction, sorted, disjoint, and covering [0, n)
// exactly).
type partition struct {
	ranges []Range
	n      int
}

// newPartition validates that the advertised strips tile [0, n) exactly.
// order maps each range back to its shard index: ranges are sorted here,
// but shard identity must follow the sort.
func newPartition(ranges []Range, n int) (partition, []int, error) {
	if len(ranges) == 0 {
		return partition{}, nil, fmt.Errorf("cluster: no shards")
	}
	order := make([]int, len(ranges))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return ranges[order[a]].Start < ranges[order[b]].Start })
	sorted := make([]Range, len(ranges))
	next := 0
	for k, idx := range order {
		r := ranges[idx]
		if r.Start != next || r.End <= r.Start {
			return partition{}, nil, fmt.Errorf(
				"cluster: shard strips do not tile the index range: strip [%d,%d) after row %d", r.Start, r.End, next)
		}
		sorted[k] = r
		next = r.End
	}
	if next != n {
		return partition{}, nil, fmt.Errorf("cluster: shard strips cover [0,%d) of %d SNPs", next, n)
	}
	return partition{ranges: sorted, n: n}, order, nil
}

// owner returns the shard index owning row i.
func (p partition) owner(i int) int {
	return sort.Search(len(p.ranges), func(s int) bool { return p.ranges[s].End > i })
}

// overlapping returns the shard indices whose strips intersect rows
// [lo, hi), in ascending strip order.
func (p partition) overlapping(lo, hi int) []int {
	var out []int
	for s, r := range p.ranges {
		if r.Start < hi && r.End > lo {
			out = append(out, s)
		}
	}
	return out
}
