package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"ldgemm/internal/popsim"
	"ldgemm/internal/server"
)

// replicaSpec joins shard URLs into one replica-group spec.
func replicaSpec(urls ...string) string {
	spec := urls[0]
	for _, u := range urls[1:] {
		spec += "|" + u
	}
	return spec
}

// TestReplicaFailoverBitIdentity is the replica-tier acceptance check: a
// 2-strip × 2-replica cluster with one replica killed mid-run keeps
// answering pair/region/top completely (no partial: true) and
// bit-identically to a single node. The cache is disabled so every
// request exercises live routing, not a stored body.
func TestReplicaFailoverBitIdentity(t *testing.T) {
	single := singleServer(t)
	a1 := shardServer(t, 0, 60)
	a2 := shardServer(t, 0, 60)
	b1 := shardServer(t, 60, 120)
	b2 := shardServer(t, 60, 120)
	cfg := fastConfig()
	cfg.ResultCacheBytes = -1
	cluster := newTestCluster(t, cfg, replicaSpec(a1.URL, a2.URL), replicaSpec(b1.URL, b2.URL))

	queries := []string{
		"/api/ld?i=3&j=45", "/api/ld?i=70&j=110", "/api/ld?i=30&j=90",
		"/api/ld/region?start=30&end=90&measure=r2",
		"/api/ld/region?start=70&end=110",
		"/api/ld/top?k=25",
	}
	check := func(phase string) {
		t.Helper()
		for _, q := range queries {
			var want, got map[string]any
			if code, _ := get(t, single.URL+q, &want); code != http.StatusOK {
				t.Fatalf("%s: single %s status %d", phase, q, code)
			}
			code, hdr := get(t, cluster.URL+q, &got)
			if code != http.StatusOK {
				t.Fatalf("%s: cluster %s status %d", phase, q, code)
			}
			if hdr.Get("X-LD-Shards-Failed") != "" {
				t.Fatalf("%s: %s marked partial with a live replica remaining", phase, q)
			}
			if partial, _ := got["partial"].(bool); partial {
				t.Fatalf("%s: %s partial: true with a live replica remaining", phase, q)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: %s cluster response differs from single node", phase, q)
			}
		}
	}

	check("all replicas up")

	// Kill one replica of each strip: every strip still has a survivor,
	// so nothing may degrade. Repeat to let breakers and rotation see the
	// dead replicas more than once.
	a2.Close()
	b1.Close()
	for i := 0; i < 3; i++ {
		check(fmt.Sprintf("one replica down, pass %d", i))
	}

	// Kill the second replica of strip B: now the strip is lost and
	// region/top degrade to partial while strip-A pairs still answer.
	b2.Close()
	var region server.RegionResponse
	code, hdr := get(t, cluster.URL+"/api/ld/region?start=30&end=90", &region)
	if code != http.StatusOK || !region.Partial {
		t.Fatalf("lost strip: region status %d partial %t", code, region.Partial)
	}
	if failed := hdr.Get("X-LD-Shards-Failed"); failed != b1.URL+"|"+b2.URL {
		t.Fatalf("X-LD-Shards-Failed = %q, want %q", failed, b1.URL+"|"+b2.URL)
	}
	if code, _ := get(t, cluster.URL+"/api/ld?i=70&j=110", nil); code != http.StatusBadGateway {
		t.Fatalf("lost-strip pair status %d, want 502", code)
	}
	if code, _ := get(t, cluster.URL+"/api/ld?i=3&j=45", nil); code != http.StatusOK {
		t.Fatal("surviving strip stopped answering")
	}
}

// TestReplicaBootstrapValidation: replicas within a group must advertise
// identical shard ranges and identical dataset fingerprints.
func TestReplicaBootstrapValidation(t *testing.T) {
	// Range mismatch inside one group.
	_, err := New(context.Background(),
		[]string{replicaSpec(shardServer(t, 0, 60).URL, shardServer(t, 0, 50).URL), shardServer(t, 60, 120).URL},
		fastConfig())
	if err == nil {
		t.Fatal("replica group with mismatched shard ranges accepted")
	}

	// Fingerprint mismatch: same dimensions, different dataset.
	g, err2 := popsim.Mosaic(120, 200, popsim.MosaicConfig{Seed: 42})
	if err2 != nil {
		t.Fatal(err2)
	}
	other := httptest.NewServer(server.New(g, server.Config{ShardStart: 0, ShardEnd: 60}))
	defer other.Close()
	_, err = New(context.Background(),
		[]string{replicaSpec(shardServer(t, 0, 60).URL, other.URL), shardServer(t, 60, 120).URL},
		fastConfig())
	if err == nil {
		t.Fatal("replica group with mismatched fingerprints accepted")
	}

	// Empty group spec.
	if _, err := New(context.Background(), []string{""}, fastConfig()); err == nil {
		t.Fatal("empty group spec accepted")
	}
	if _, err := New(context.Background(), nil, fastConfig()); err == nil {
		t.Fatal("empty shard list accepted")
	}
}

// TestReplicaInfoTopology: /api/info lists the replicas of each strip.
func TestReplicaInfoTopology(t *testing.T) {
	a1 := shardServer(t, 0, 60)
	a2 := shardServer(t, 0, 60)
	b := shardServer(t, 60, 120)
	cluster := newTestCluster(t, fastConfig(), replicaSpec(a1.URL, a2.URL), b.URL)

	var info InfoResponse
	if code, _ := get(t, cluster.URL+"/api/info", &info); code != http.StatusOK {
		t.Fatal("cluster info failed")
	}
	if len(info.Shards) != 2 {
		t.Fatalf("info lists %d strips", len(info.Shards))
	}
	if info.Fingerprint == "" {
		t.Fatal("cluster info missing dataset fingerprint")
	}
	if got := len(info.Shards[0].Replicas); got != 2 {
		t.Fatalf("strip 0 lists %d replicas, want 2", got)
	}
	if info.Shards[0].Replicas[0].URL != a1.URL || info.Shards[0].Replicas[1].URL != a2.URL {
		t.Fatalf("strip 0 replicas %+v", info.Shards[0].Replicas)
	}
	if len(info.Shards[1].Replicas) != 0 {
		t.Fatal("single-replica strip should omit the replicas list")
	}
}

// TestReplicaRankedRouting drives the health ranking directly: an open
// breaker demotes a replica, a clearly slower p95 demotes a replica, and
// equally healthy replicas rotate.
func TestReplicaRankedRouting(t *testing.T) {
	hc := &http.Client{}
	cfg := fastConfig().normalize()
	mk := func(base string) *shardClient {
		return newShardClient(base, hc, cfg, &shardMetrics{})
	}
	fast, slow := mk("http://fast"), mk("http://slow")
	for i := 0; i < 2*hedgeMinSamples; i++ {
		fast.lat.add(10 * time.Millisecond)
		slow.lat.add(100 * time.Millisecond)
	}
	g := &replicaGroup{replicas: []*shardClient{slow, fast}}
	for i := 0; i < 4; i++ {
		if got := g.ranked()[0]; got != fast {
			t.Fatalf("pass %d: ranked[0] = %s, want the fast replica", i, got.base)
		}
	}

	// An open breaker beats any latency edge.
	for i := 0; i < cfg.BreakerFailures; i++ {
		fast.breaker.record(false)
	}
	if state, _ := fast.breaker.snapshot(); state != breakerOpen {
		t.Fatal("breaker setup failed")
	}
	if got := g.ranked()[0]; got != slow {
		t.Fatalf("ranked[0] = %s, want the slow-but-closed replica", got.base)
	}

	// Equal health (no latency window yet): rotation alternates.
	x, y := mk("http://x"), mk("http://y")
	rot := &replicaGroup{replicas: []*shardClient{x, y}}
	seen := map[string]int{}
	for i := 0; i < 10; i++ {
		seen[rot.ranked()[0].base]++
	}
	if seen["http://x"] == 0 || seen["http://y"] == 0 {
		t.Fatalf("rotation pinned to one replica: %v", seen)
	}
}
