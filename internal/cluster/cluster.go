package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ldgemm/internal/server"
)

// Config tunes the coordinator's resilient shard client. The zero value
// picks sane defaults everywhere.
type Config struct {
	// ShardTimeout bounds each HTTP attempt to a shard. Default 30s.
	ShardTimeout time.Duration
	// Retries is the number of re-attempts after a failed attempt
	// (transport error or 5xx). Default 2; negative disables retries.
	Retries int
	// RetryBackoff is the sleep before the first retry, doubling per
	// retry up to one second. Default 25ms.
	RetryBackoff time.Duration
	// HedgeAfter controls the hedged second request: 0 hedges adaptively
	// once the primary outlives the shard's recent HedgeQuantile latency,
	// a positive duration hedges after that fixed delay, and a negative
	// value disables hedging.
	HedgeAfter time.Duration
	// HedgeQuantile is the latency quantile driving adaptive hedging.
	// Default 0.95.
	HedgeQuantile float64
	// BreakerFailures is the consecutive-failure count that opens a
	// shard's circuit breaker. Default 5.
	BreakerFailures int
	// BreakerCooldown is how long an open breaker fails fast before
	// admitting a half-open probe. Default 5s.
	BreakerCooldown time.Duration
	// BootstrapTimeout bounds the initial /api/info sweep in New.
	// Default 10s.
	BootstrapTimeout time.Duration
	// ResultCacheBytes caps the fingerprint-keyed result cache over
	// complete pair/region/top responses. 0 picks the 64 MiB default;
	// negative disables the cache.
	ResultCacheBytes int64
	// Client overrides the HTTP client used for shard calls.
	Client *http.Client
}

func (c Config) normalize() Config {
	if c.ShardTimeout <= 0 {
		c.ShardTimeout = 30 * time.Second
	}
	switch {
	case c.Retries == 0:
		c.Retries = 2
	case c.Retries < 0:
		c.Retries = 0
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 25 * time.Millisecond
	}
	if c.HedgeQuantile <= 0 || c.HedgeQuantile >= 1 {
		c.HedgeQuantile = 0.95
	}
	if c.BreakerFailures <= 0 {
		c.BreakerFailures = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.BootstrapTimeout <= 0 {
		c.BootstrapTimeout = 10 * time.Second
	}
	if c.ResultCacheBytes == 0 {
		c.ResultCacheBytes = 64 << 20
	}
	return c
}

// Coordinator fronts a set of shard replica groups with the single-node
// HTTP API: pair lookups route to the group owning the strip, region and
// top queries scatter to the owning strips and gather bit-identical
// merged answers, and whole-matrix endpoints proxy to any healthy
// replica. Within a group, calls go to the healthiest replica and fail
// over through the rest before the strip is declared lost. Identical
// in-flight pair/region/top requests coalesce into one shard fan-out,
// and complete responses are cached under the dataset fingerprint.
type Coordinator struct {
	cfg     Config
	hc      *http.Client
	part    partition
	groups  []*replicaGroup // ordered by strip, parallel to part.ranges
	info    server.InfoResponse
	fp      string // dataset fingerprint every replica advertised
	n       int
	m       *metrics
	cache   *resultCache // nil when disabled
	flight  *flightGroup
	handler http.Handler
	rr      atomic.Uint64 // round-robin cursor for proxied endpoints
}

// New bootstraps a coordinator. Each shard URL spec names one replica
// group — `|`-separated replicas serving the same strip, e.g.
// "urlA|urlB" — and New fetches /api/info from every replica, checks
// that all advertise the same matrix and dataset fingerprint and that
// replicas within a group advertise the same shard range, then assembles
// the partition map from the per-group ranges. A single group with no
// advertised range is treated as owning the whole index range. Every
// replica must be reachable during bootstrap; afterwards the cluster
// degrades gracefully.
func New(ctx context.Context, shardURLs []string, cfg Config) (*Coordinator, error) {
	cfg = cfg.normalize()
	groups, err := parseGroupSpecs(shardURLs)
	if err != nil {
		return nil, err
	}
	hc := cfg.Client
	if hc == nil {
		hc = &http.Client{}
	}

	ctx, cancel := context.WithTimeout(ctx, cfg.BootstrapTimeout)
	defer cancel()
	infos := make([][]server.InfoResponse, len(groups))
	for gi, group := range groups {
		infos[gi] = make([]server.InfoResponse, len(group))
		for ri, base := range group {
			if err := fetchJSON(ctx, hc, base+"/api/info", &infos[gi][ri]); err != nil {
				return nil, fmt.Errorf("cluster: bootstrapping shard %s: %w", base, err)
			}
		}
	}

	first := infos[0][0]
	n := first.SNPs
	ranges := make([]Range, len(groups))
	for gi, group := range groups {
		for ri, info := range infos[gi] {
			base := group[ri]
			if info.SNPs != n || info.Samples != first.Samples {
				return nil, fmt.Errorf("cluster: shard %s serves a %d×%d matrix, shard %s a %d×%d one",
					base, info.SNPs, info.Samples, groups[0][0], n, first.Samples)
			}
			if info.Fingerprint != first.Fingerprint {
				return nil, fmt.Errorf("cluster: shard %s advertises dataset fingerprint %q, shard %s %q — replicas must serve the same dataset",
					base, info.Fingerprint, groups[0][0], first.Fingerprint)
			}
			if ri > 0 && !sameShardRange(info.Shard, infos[gi][0].Shard) {
				return nil, fmt.Errorf("cluster: replicas %s and %s advertise different shard ranges (%s vs %s) — a replica group must serve one strip",
					base, group[0], shardRangeString(info.Shard), shardRangeString(infos[gi][0].Shard))
			}
		}
		switch {
		case infos[gi][0].Shard != nil:
			ranges[gi] = Range{Start: infos[gi][0].Shard.Start, End: infos[gi][0].Shard.End}
		case len(groups) == 1:
			ranges[gi] = Range{Start: 0, End: n} // lone unsharded group
		default:
			return nil, fmt.Errorf("cluster: shard %s advertises no shard range", group[0])
		}
	}
	part, order, err := newPartition(ranges, n)
	if err != nil {
		return nil, err
	}

	co := &Coordinator{
		cfg: cfg, hc: hc, part: part, n: n,
		info:   first,
		fp:     first.Fingerprint,
		flight: newFlightGroup(),
	}
	co.info.Shard = nil
	if cfg.ResultCacheBytes > 0 {
		co.cache = newResultCache(cfg.ResultCacheBytes)
	}
	co.groups = make([]*replicaGroup, len(order))
	for k, idx := range order {
		g := &replicaGroup{}
		for _, base := range groups[idx] {
			g.replicas = append(g.replicas, newShardClient(base, hc, cfg, &shardMetrics{}))
		}
		co.groups[k] = g
	}
	co.m = newMetrics(co)
	co.handler = observeMiddleware(co.m, co.routes())
	return co, nil
}

// sameShardRange reports whether two advertised shard ranges agree
// (both absent counts as agreement: the unsharded lone-group case).
func sameShardRange(a, b *server.ShardRange) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.Start == b.Start && a.End == b.End
}

func shardRangeString(r *server.ShardRange) string {
	if r == nil {
		return "none"
	}
	return fmt.Sprintf("[%d,%d)", r.Start, r.End)
}

// fetchJSON is the plain bootstrap fetch — no breaker or hedging yet,
// because the partition map that organises them does not exist until the
// info sweep completes.
func fetchJSON(ctx context.Context, hc *http.Client, url string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func (co *Coordinator) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", co.handleReadyz)
	mux.HandleFunc("/", handleFallback)
	mux.HandleFunc("GET /api/info", co.handleInfo)
	mux.HandleFunc("GET /api/freq", co.handleFreq)
	mux.HandleFunc("GET /api/ld", co.handlePair)
	mux.HandleFunc("GET /api/ld/region", co.handleRegion)
	mux.HandleFunc("GET /api/ld/top", co.handleTop)
	mux.HandleFunc("POST /api/sparse/matvec", co.handleSparseMatVec)
	mux.HandleFunc("POST /api/sparse/score", co.handleSparseScore)
	mux.HandleFunc("/api/sparse/matvec", postOnlyFallback)
	mux.HandleFunc("/api/sparse/score", postOnlyFallback)
	mux.HandleFunc("GET /api/prune", co.handleProxy)
	mux.HandleFunc("GET /api/blocks", co.handleProxy)
	mux.HandleFunc("GET /api/omega", co.handleProxy)
	mux.HandleFunc("GET /debug/vars", co.m.serveVars)
	return mux
}

// ServeHTTP implements http.Handler.
func (co *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	co.handler.ServeHTTP(w, r)
}

// VarsHandler exposes the coordinator metric surface for a separate
// admin listener.
func (co *Coordinator) VarsHandler() http.Handler { return http.HandlerFunc(co.m.serveVars) }

// Close releases idle shard connections.
func (co *Coordinator) Close() { co.hc.CloseIdleConnections() }

func handleFallback(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		httpError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	httpError(w, http.StatusNotFound, "no such endpoint %s", r.URL.Path)
}

// handleReadyz reports ready while at least one replica's breaker admits
// traffic: a degraded cluster still serves partial answers, but a cluster
// with every circuit open cannot answer anything.
func (co *Coordinator) handleReadyz(w http.ResponseWriter, r *http.Request) {
	for _, g := range co.groups {
		if g.admitting() {
			writeJSON(w, map[string]string{"status": "ok"})
			return
		}
	}
	httpError(w, http.StatusServiceUnavailable, "all shard breakers open")
}

// ReplicaInfo is one replica's entry in the cluster info payload.
type ReplicaInfo struct {
	URL     string `json:"url"`
	Breaker string `json:"breaker"`
}

// ShardInfo is one replica group's entry in the cluster info payload.
// URL and Breaker describe the first-configured replica, kept for
// compatibility with single-replica deployments.
type ShardInfo struct {
	URL      string        `json:"url"`
	Start    int           `json:"start"`
	End      int           `json:"end"`
	Breaker  string        `json:"breaker"`
	Replicas []ReplicaInfo `json:"replicas,omitempty"`
}

// InfoResponse is the coordinator's /api/info payload: the single-node
// info fields (from bootstrap) plus the cluster topology.
type InfoResponse struct {
	server.InfoResponse
	Shards []ShardInfo `json:"shards"`
}

func (co *Coordinator) handleInfo(w http.ResponseWriter, r *http.Request) {
	resp := InfoResponse{InfoResponse: co.info}
	for i, g := range co.groups {
		state, _ := g.replicas[0].breaker.snapshot()
		si := ShardInfo{
			URL:   g.replicas[0].base,
			Start: co.part.ranges[i].Start, End: co.part.ranges[i].End,
			Breaker: state.String(),
		}
		if len(g.replicas) > 1 {
			for _, rep := range g.replicas {
				rstate, _ := rep.breaker.snapshot()
				si.Replicas = append(si.Replicas, ReplicaInfo{URL: rep.base, Breaker: rstate.String()})
			}
		}
		resp.Shards = append(resp.Shards, si)
	}
	writeJSON(w, resp)
}

// handleFreq serves per-SNP frequencies. Every replica holds the full
// matrix, so the owning group is only a preference: on failure the
// request fails over to the remaining groups (and within each group to
// its remaining replicas).
func (co *Coordinator) handleFreq(w http.ResponseWriter, r *http.Request) {
	i, err := intQuery(r, "i")
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if i < 0 || i >= co.n {
		httpError(w, http.StatusBadRequest, "snp i=%d outside 0..%d", i, co.n-1)
		return
	}
	first := co.part.owner(i)
	var lastErr error
	for k := range co.groups {
		g := co.groups[(first+k)%len(co.groups)]
		body, err := g.get(r.Context(), "/api/freq?i="+strconv.Itoa(i))
		if err == nil {
			relayBody(w, body)
			return
		}
		var he *HTTPError
		if errors.As(err, &he) && he.Status < 500 {
			relayError(w, he)
			return
		}
		lastErr = err
	}
	httpError(w, http.StatusBadGateway, "all shards failed: %v", lastErr)
}

// serve answers a cacheable, coalescable endpoint (pair/region/top):
// the result cache is consulted first, then concurrent identical
// requests collapse into one execution of fetch whose response every
// caller shares, and complete 200 answers are admitted to the cache.
// The key is the normalized query prefixed by the dataset fingerprint,
// so equivalent requests coalesce regardless of parameter spelling and
// a coordinator bootstrapped against a different dataset can never
// collide. fetch runs detached from any single caller's context — its
// result is shared work — but stays bounded by the per-attempt shard
// timeouts and retry budget.
func (co *Coordinator) serve(w http.ResponseWriter, r *http.Request, key string, fetch func(ctx context.Context) *clusterResponse) {
	key = co.fp + " " + key
	if co.cache != nil {
		if resp, ok := co.cache.get(key); ok {
			resp.write(w)
			return
		}
	}
	ctx := context.WithoutCancel(r.Context())
	resp, shared := co.flight.do(key, func() *clusterResponse {
		resp := fetch(ctx)
		if co.cache != nil && resp.cacheable() {
			co.cache.put(key, resp)
		}
		return resp
	})
	if shared {
		co.m.coalesced.Add(1)
	}
	resp.write(w)
}

// errorResponse builds a non-cached JSON error in clusterResponse form.
func errorResponse(code int, format string, args ...any) *clusterResponse {
	body, _ := json.Marshal(map[string]string{"error": fmt.Sprintf(format, args...)})
	return &clusterResponse{status: code, body: append(body, '\n')}
}

// okResponse marshals a complete or partial 200 payload.
func okResponse(v any, failed string) *clusterResponse {
	body, err := json.Marshal(v)
	if err != nil {
		return errorResponse(http.StatusInternalServerError, "encoding response: %v", err)
	}
	return &clusterResponse{
		status: http.StatusOK, body: append(body, '\n'),
		partial: failed != "", failed: failed,
	}
}

// handlePair routes a pair lookup to the group owning min(i, j).
func (co *Coordinator) handlePair(w http.ResponseWriter, r *http.Request) {
	i, err := intQuery(r, "i")
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	j, err := intQuery(r, "j")
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if i < 0 || i >= co.n || j < 0 || j >= co.n {
		httpError(w, http.StatusBadRequest, "pair (%d,%d) outside 0..%d", i, j, co.n-1)
		return
	}
	query := fmt.Sprintf("/api/ld?i=%d&j=%d", i, j)
	co.serve(w, r, query, func(ctx context.Context) *clusterResponse {
		g := co.groups[co.part.owner(min(i, j))]
		body, err := g.get(ctx, query)
		if err != nil {
			return co.stripFailure(g, err)
		}
		return &clusterResponse{status: http.StatusOK, body: body}
	})
}

// stripResult is one replica group's share of a scatter-gather.
type stripResult struct {
	region server.RegionResponse
	top    server.TopResponse
	matvec server.MatVecResponse
	score  server.ScoreResponse
	err    error
}

// scatter fans query out to the given groups concurrently, decoding each
// response into the slot decode selects. Within each group the call
// routes to the healthiest replica and fails over through the rest.
func (co *Coordinator) scatter(ctx context.Context, owners []int, query func(shard int) string, decode func(*stripResult) any) []stripResult {
	results := make([]stripResult, len(owners))
	var wg sync.WaitGroup
	for k, shard := range owners {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[k].err = co.groups[shard].getJSON(ctx, query(shard), decode(&results[k]))
		}()
	}
	wg.Wait()
	return results
}

// gatherVerdict classifies a scatter: a terminal 4xx anywhere is relayed
// verbatim (the request itself is wrong, and every shard would say so); a
// strip whose whole replica group is down degrades the answer; all strips
// down fails it. terminal is the relayable error response when done.
func (co *Coordinator) gatherVerdict(owners []int, results []stripResult) (failed []int, terminal *clusterResponse) {
	var lastErr error
	for k, res := range results {
		if res.err == nil {
			continue
		}
		var he *HTTPError
		if errors.As(res.err, &he) && he.Status < 500 {
			return nil, &clusterResponse{status: he.Status, body: he.Body}
		}
		failed = append(failed, owners[k])
		lastErr = res.err
	}
	if len(failed) == len(owners) {
		return nil, errorResponse(http.StatusBadGateway, "all owner shards failed: %v", lastErr)
	}
	return failed, nil
}

// failedNames joins the replica-group names of lost strips for the
// X-LD-Shards-Failed header; empty when the answer is complete.
func (co *Coordinator) failedNames(failed []int) string {
	if len(failed) == 0 {
		return ""
	}
	names := make([]string, len(failed))
	for k, shard := range failed {
		names[k] = co.groups[shard].names()
	}
	co.m.partials.Add(1)
	return strings.Join(names, ",")
}

func (co *Coordinator) handleRegion(w http.ResponseWriter, r *http.Request) {
	start, err := intQuery(r, "start")
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	end, err := intQuery(r, "end")
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if start < 0 || end <= start || end > co.n {
		httpError(w, http.StatusBadRequest, "invalid region [%d,%d) of %d SNPs", start, end, co.n)
		return
	}
	rlo, rhi, windowed, err := rowsQuery(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if windowed {
		if rlo < start || rhi <= rlo || rhi > end {
			httpError(w, http.StatusBadRequest,
				"rows [%d,%d) outside region [%d,%d)", rlo, rhi, start, end)
			return
		}
	} else {
		rlo, rhi = start, end
	}

	measure := r.URL.Query().Get("measure")
	key := fmt.Sprintf("region start=%d end=%d measure=%s rows=%d:%d windowed=%t",
		start, end, measure, rlo, rhi, windowed)
	co.serve(w, r, key, func(ctx context.Context) *clusterResponse {
		owners := co.part.overlapping(rlo, rhi)
		results := co.scatter(ctx, owners, func(shard int) string {
			strip := co.part.ranges[shard]
			q := url.Values{}
			q.Set("start", strconv.Itoa(start))
			q.Set("end", strconv.Itoa(end))
			if measure != "" {
				q.Set("measure", measure)
			}
			q.Set("rows", fmt.Sprintf("%d:%d", max(strip.Start, rlo), min(strip.End, rhi)))
			return "/api/ld/region?" + q.Encode()
		}, func(res *stripResult) any { return &res.region })
		failed, terminal := co.gatherVerdict(owners, results)
		if terminal != nil {
			return terminal
		}

		resp := server.RegionResponse{Start: start, End: end, Partial: len(failed) > 0}
		if windowed && !(rlo == start && rhi == end) {
			resp.RowStart, resp.RowEnd = rlo, rhi
		}
		resp.Values = make([][]float64, rhi-rlo)
		for k, shard := range owners {
			if results[k].err != nil {
				continue
			}
			resp.Measure = results[k].region.Measure
			strip := co.part.ranges[shard]
			for i, row := range results[k].region.Values {
				resp.Values[max(strip.Start, rlo)-rlo+i] = row
			}
		}
		return okResponse(resp, co.failedNames(failed))
	})
}

func (co *Coordinator) handleTop(w http.ResponseWriter, r *http.Request) {
	k := 20
	if v := r.URL.Query().Get("k"); v != "" {
		var err error
		if k, err = strconv.Atoi(v); err != nil {
			httpError(w, http.StatusBadRequest, "parameter %q: %v", "k", err)
			return
		}
	}
	if k < 1 {
		httpError(w, http.StatusBadRequest, "k=%d below 1", k)
		return
	}
	rlo, rhi, windowed, err := rowsQuery(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if windowed {
		if rlo < 0 || rhi <= rlo || rhi > co.n {
			httpError(w, http.StatusBadRequest, "rows [%d,%d) outside 0..%d", rlo, rhi, co.n)
			return
		}
	} else {
		rlo, rhi = 0, co.n
	}

	key := fmt.Sprintf("top k=%d rows=%d:%d windowed=%t", k, rlo, rhi, windowed)
	co.serve(w, r, key, func(ctx context.Context) *clusterResponse {
		owners := co.part.overlapping(rlo, rhi)
		results := co.scatter(ctx, owners, func(shard int) string {
			strip := co.part.ranges[shard]
			q := url.Values{}
			q.Set("k", strconv.Itoa(k))
			q.Set("rows", fmt.Sprintf("%d:%d", max(strip.Start, rlo), min(strip.End, rhi)))
			return "/api/ld/top?" + q.Encode()
		}, func(res *stripResult) any { return &res.top })
		failed, terminal := co.gatherVerdict(owners, results)
		if terminal != nil {
			return terminal
		}

		lists := make([][]server.PairResponse, 0, len(results))
		for _, res := range results {
			if res.err == nil {
				lists = append(lists, res.top.Pairs)
			}
		}
		return okResponse(
			server.TopResponse{K: k, Partial: len(failed) > 0, Pairs: mergeTop(k, lists)},
			co.failedNames(failed))
	})
}

// handleProxy forwards whole-matrix endpoints (prune, blocks, omega) —
// every replica holds the full matrix, so any healthy one can answer.
// The round-robin cursor spreads the load across groups; breaker-open
// replicas fail fast and the next candidate is tried.
func (co *Coordinator) handleProxy(w http.ResponseWriter, r *http.Request) {
	pathQuery := r.URL.Path
	if r.URL.RawQuery != "" {
		pathQuery += "?" + r.URL.RawQuery
	}
	first := int(co.rr.Add(1)) % len(co.groups)
	var lastErr error
	for k := range co.groups {
		g := co.groups[(first+k)%len(co.groups)]
		body, err := g.get(r.Context(), pathQuery)
		if err == nil {
			co.m.proxied.Add(1)
			relayBody(w, body)
			return
		}
		var he *HTTPError
		if errors.As(err, &he) && he.Status < 500 {
			relayError(w, he)
			return
		}
		lastErr = err
	}
	httpError(w, http.StatusBadGateway, "all shards failed: %v", lastErr)
}

// stripFailure builds the response for a single-strip route that could
// not be served by any replica: terminal shard responses relay verbatim,
// everything else is a 502.
func (co *Coordinator) stripFailure(g *replicaGroup, err error) *clusterResponse {
	var he *HTTPError
	if errors.As(err, &he) && he.Status < 500 {
		return &clusterResponse{status: he.Status, body: he.Body}
	}
	return errorResponse(http.StatusBadGateway, "shard %s failed: %v", g.names(), err)
}

// relayBody forwards a shard's 200 response verbatim, preserving
// bit-identity with the single-node API.
func relayBody(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// relayError forwards a terminal shard error (status and body) verbatim.
func relayError(w http.ResponseWriter, he *HTTPError) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(he.Status)
	w.Write(he.Body)
}

func writeJSON(w http.ResponseWriter, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "encoding response: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(b, '\n'))
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func intQuery(r *http.Request, name string) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return 0, fmt.Errorf("missing parameter %q", name)
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %v", name, err)
	}
	return n, nil
}

// rowsQuery parses an optional rows=a:b window.
func rowsQuery(r *http.Request) (lo, hi int, ok bool, err error) {
	v := r.URL.Query().Get("rows")
	if v == "" {
		return 0, 0, false, nil
	}
	a, b, found := strings.Cut(v, ":")
	if !found {
		return 0, 0, false, fmt.Errorf("parameter %q: want a:b, got %q", "rows", v)
	}
	if lo, err = strconv.Atoi(a); err != nil {
		return 0, 0, false, fmt.Errorf("parameter %q: %v", "rows", err)
	}
	if hi, err = strconv.Atoi(b); err != nil {
		return 0, 0, false, fmt.Errorf("parameter %q: %v", "rows", err)
	}
	return lo, hi, true, nil
}
