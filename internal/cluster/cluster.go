package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ldgemm/internal/server"
)

// Config tunes the coordinator's resilient shard client. The zero value
// picks sane defaults everywhere.
type Config struct {
	// ShardTimeout bounds each HTTP attempt to a shard. Default 30s.
	ShardTimeout time.Duration
	// Retries is the number of re-attempts after a failed attempt
	// (transport error or 5xx). Default 2; negative disables retries.
	Retries int
	// RetryBackoff is the sleep before the first retry, doubling per
	// retry up to one second. Default 25ms.
	RetryBackoff time.Duration
	// HedgeAfter controls the hedged second request: 0 hedges adaptively
	// once the primary outlives the shard's recent HedgeQuantile latency,
	// a positive duration hedges after that fixed delay, and a negative
	// value disables hedging.
	HedgeAfter time.Duration
	// HedgeQuantile is the latency quantile driving adaptive hedging.
	// Default 0.95.
	HedgeQuantile float64
	// BreakerFailures is the consecutive-failure count that opens a
	// shard's circuit breaker. Default 5.
	BreakerFailures int
	// BreakerCooldown is how long an open breaker fails fast before
	// admitting a half-open probe. Default 5s.
	BreakerCooldown time.Duration
	// BootstrapTimeout bounds the initial /api/info sweep in New.
	// Default 10s.
	BootstrapTimeout time.Duration
	// Client overrides the HTTP client used for shard calls.
	Client *http.Client
}

func (c Config) normalize() Config {
	if c.ShardTimeout <= 0 {
		c.ShardTimeout = 30 * time.Second
	}
	switch {
	case c.Retries == 0:
		c.Retries = 2
	case c.Retries < 0:
		c.Retries = 0
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 25 * time.Millisecond
	}
	if c.HedgeQuantile <= 0 || c.HedgeQuantile >= 1 {
		c.HedgeQuantile = 0.95
	}
	if c.BreakerFailures <= 0 {
		c.BreakerFailures = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.BootstrapTimeout <= 0 {
		c.BootstrapTimeout = 10 * time.Second
	}
	return c
}

// Coordinator fronts a set of shard servers with the single-node HTTP
// API: pair lookups route to the owning shard, region and top queries
// scatter to the owning strips and gather bit-identical merged answers,
// and whole-matrix endpoints proxy to any healthy shard.
type Coordinator struct {
	cfg     Config
	hc      *http.Client
	part    partition
	shards  []*shardClient // ordered by strip, parallel to part.ranges
	info    server.InfoResponse
	n       int
	m       *metrics
	handler http.Handler
	rr      atomic.Uint64 // round-robin cursor for proxied endpoints
}

// New bootstraps a coordinator: it fetches /api/info from every shard,
// checks that all advertise the same matrix, and assembles the partition
// map from the advertised shard ranges. A single shard with no advertised
// range is treated as owning the whole index range. Every shard must be
// reachable during bootstrap; afterwards the cluster degrades gracefully.
func New(ctx context.Context, shardURLs []string, cfg Config) (*Coordinator, error) {
	cfg = cfg.normalize()
	if len(shardURLs) == 0 {
		return nil, fmt.Errorf("cluster: no shard URLs")
	}
	hc := cfg.Client
	if hc == nil {
		hc = &http.Client{}
	}
	bases := make([]string, len(shardURLs))
	for i, u := range shardURLs {
		u = strings.TrimSuffix(strings.TrimSpace(u), "/")
		if !strings.Contains(u, "://") {
			u = "http://" + u // bare host:port is the common CLI spelling
		}
		bases[i] = u
	}

	ctx, cancel := context.WithTimeout(ctx, cfg.BootstrapTimeout)
	defer cancel()
	infos := make([]server.InfoResponse, len(bases))
	for i, base := range bases {
		if err := fetchJSON(ctx, hc, base+"/api/info", &infos[i]); err != nil {
			return nil, fmt.Errorf("cluster: bootstrapping shard %s: %w", base, err)
		}
	}

	n := infos[0].SNPs
	ranges := make([]Range, len(infos))
	for i, info := range infos {
		if info.SNPs != n || info.Samples != infos[0].Samples {
			return nil, fmt.Errorf("cluster: shard %s serves a %d×%d matrix, shard %s a %d×%d one",
				bases[i], info.SNPs, info.Samples, bases[0], n, infos[0].Samples)
		}
		switch {
		case info.Shard != nil:
			ranges[i] = Range{Start: info.Shard.Start, End: info.Shard.End}
		case len(infos) == 1:
			ranges[i] = Range{Start: 0, End: n} // lone unsharded server
		default:
			return nil, fmt.Errorf("cluster: shard %s advertises no shard range", bases[i])
		}
	}
	part, order, err := newPartition(ranges, n)
	if err != nil {
		return nil, err
	}

	co := &Coordinator{cfg: cfg, hc: hc, part: part, n: n, info: infos[order[0]]}
	co.info.Shard = nil
	ordered := make([]string, len(order))
	for k, idx := range order {
		ordered[k] = bases[idx]
	}
	co.m = newMetrics(co, ordered)
	co.shards = make([]*shardClient, len(ordered))
	for i, base := range ordered {
		co.shards[i] = newShardClient(base, hc, cfg, co.m.shards[i])
	}
	co.handler = observeMiddleware(co.m, co.routes())
	return co, nil
}

// fetchJSON is the plain bootstrap fetch — no breaker or hedging yet,
// because the partition map that organises them does not exist until the
// info sweep completes.
func fetchJSON(ctx context.Context, hc *http.Client, url string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func (co *Coordinator) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", co.handleReadyz)
	mux.HandleFunc("/", handleFallback)
	mux.HandleFunc("GET /api/info", co.handleInfo)
	mux.HandleFunc("GET /api/freq", co.handleFreq)
	mux.HandleFunc("GET /api/ld", co.handlePair)
	mux.HandleFunc("GET /api/ld/region", co.handleRegion)
	mux.HandleFunc("GET /api/ld/top", co.handleTop)
	mux.HandleFunc("GET /api/prune", co.handleProxy)
	mux.HandleFunc("GET /api/blocks", co.handleProxy)
	mux.HandleFunc("GET /api/omega", co.handleProxy)
	mux.HandleFunc("GET /debug/vars", co.m.serveVars)
	return mux
}

// ServeHTTP implements http.Handler.
func (co *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	co.handler.ServeHTTP(w, r)
}

// VarsHandler exposes the coordinator metric surface for a separate
// admin listener.
func (co *Coordinator) VarsHandler() http.Handler { return http.HandlerFunc(co.m.serveVars) }

// Close releases idle shard connections.
func (co *Coordinator) Close() { co.hc.CloseIdleConnections() }

func handleFallback(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		httpError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	httpError(w, http.StatusNotFound, "no such endpoint %s", r.URL.Path)
}

// handleReadyz reports ready while at least one shard's breaker admits
// traffic: a degraded cluster still serves partial answers, but a cluster
// with every circuit open cannot answer anything.
func (co *Coordinator) handleReadyz(w http.ResponseWriter, r *http.Request) {
	for _, s := range co.shards {
		if state, _ := s.breaker.snapshot(); state != breakerOpen {
			writeJSON(w, map[string]string{"status": "ok"})
			return
		}
	}
	httpError(w, http.StatusServiceUnavailable, "all shard breakers open")
}

// ShardInfo is one shard's entry in the cluster info payload.
type ShardInfo struct {
	URL     string `json:"url"`
	Start   int    `json:"start"`
	End     int    `json:"end"`
	Breaker string `json:"breaker"`
}

// InfoResponse is the coordinator's /api/info payload: the single-node
// info fields (from bootstrap) plus the cluster topology.
type InfoResponse struct {
	server.InfoResponse
	Shards []ShardInfo `json:"shards"`
}

func (co *Coordinator) handleInfo(w http.ResponseWriter, r *http.Request) {
	resp := InfoResponse{InfoResponse: co.info}
	for i, s := range co.shards {
		state, _ := s.breaker.snapshot()
		resp.Shards = append(resp.Shards, ShardInfo{
			URL:   s.base,
			Start: co.part.ranges[i].Start, End: co.part.ranges[i].End,
			Breaker: state.String(),
		})
	}
	writeJSON(w, resp)
}

// handleFreq serves per-SNP frequencies. Every shard holds the full
// matrix, so the owner is only a preference: on failure the request fails
// over to the remaining shards.
func (co *Coordinator) handleFreq(w http.ResponseWriter, r *http.Request) {
	i, err := intQuery(r, "i")
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if i < 0 || i >= co.n {
		httpError(w, http.StatusBadRequest, "snp i=%d outside 0..%d", i, co.n-1)
		return
	}
	first := co.part.owner(i)
	var lastErr error
	for k := range co.shards {
		s := co.shards[(first+k)%len(co.shards)]
		body, err := s.get(r.Context(), "/api/freq?"+r.URL.RawQuery)
		if err == nil {
			relayBody(w, body)
			return
		}
		var he *HTTPError
		if errors.As(err, &he) && he.Status < 500 {
			relayError(w, he)
			return
		}
		lastErr = err
	}
	httpError(w, http.StatusBadGateway, "all shards failed: %v", lastErr)
}

// handlePair routes a pair lookup to the shard owning min(i, j).
func (co *Coordinator) handlePair(w http.ResponseWriter, r *http.Request) {
	i, err := intQuery(r, "i")
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	j, err := intQuery(r, "j")
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if i < 0 || i >= co.n || j < 0 || j >= co.n {
		httpError(w, http.StatusBadRequest, "pair (%d,%d) outside 0..%d", i, j, co.n-1)
		return
	}
	s := co.shards[co.part.owner(min(i, j))]
	body, err := s.get(r.Context(), "/api/ld?"+r.URL.RawQuery)
	if err != nil {
		co.shardFailure(w, s, err)
		return
	}
	relayBody(w, body)
}

// stripResult is one shard's share of a scatter-gather.
type stripResult struct {
	region server.RegionResponse
	top    server.TopResponse
	err    error
}

// scatter fans query out to the given shards concurrently, decoding each
// response into the slot decode selects.
func (co *Coordinator) scatter(ctx context.Context, owners []int, query func(shard int) string, decode func(*stripResult) any) []stripResult {
	results := make([]stripResult, len(owners))
	var wg sync.WaitGroup
	for k, shard := range owners {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[k].err = co.shards[shard].getJSON(ctx, query(shard), decode(&results[k]))
		}()
	}
	wg.Wait()
	return results
}

// gatherVerdict classifies a scatter: a terminal 4xx anywhere is relayed
// verbatim (the request itself is wrong, and every shard would say so); a
// down shard degrades the answer; all shards down fails it.
func (co *Coordinator) gatherVerdict(w http.ResponseWriter, owners []int, results []stripResult) (failed []int, done bool) {
	var lastErr error
	for k, res := range results {
		if res.err == nil {
			continue
		}
		var he *HTTPError
		if errors.As(res.err, &he) && he.Status < 500 {
			relayError(w, he)
			return nil, true
		}
		failed = append(failed, owners[k])
		lastErr = res.err
	}
	if len(failed) == len(owners) {
		httpError(w, http.StatusBadGateway, "all owner shards failed: %v", lastErr)
		return nil, true
	}
	return failed, false
}

// markPartial stamps a degraded response: the X-LD-Shards-Failed header
// names the lost shards so clients can tell which strips are missing.
func (co *Coordinator) markPartial(w http.ResponseWriter, failed []int) {
	if len(failed) == 0 {
		return
	}
	urls := make([]string, len(failed))
	for k, shard := range failed {
		urls[k] = co.shards[shard].base
	}
	w.Header().Set("X-LD-Shards-Failed", strings.Join(urls, ","))
	co.m.partials.Add(1)
}

func (co *Coordinator) handleRegion(w http.ResponseWriter, r *http.Request) {
	start, err := intQuery(r, "start")
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	end, err := intQuery(r, "end")
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if start < 0 || end <= start || end > co.n {
		httpError(w, http.StatusBadRequest, "invalid region [%d,%d) of %d SNPs", start, end, co.n)
		return
	}
	rlo, rhi, windowed, err := rowsQuery(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if windowed {
		if rlo < start || rhi <= rlo || rhi > end {
			httpError(w, http.StatusBadRequest,
				"rows [%d,%d) outside region [%d,%d)", rlo, rhi, start, end)
			return
		}
	} else {
		rlo, rhi = start, end
	}

	measure := r.URL.Query().Get("measure")
	owners := co.part.overlapping(rlo, rhi)
	results := co.scatter(r.Context(), owners, func(shard int) string {
		strip := co.part.ranges[shard]
		q := url.Values{}
		q.Set("start", strconv.Itoa(start))
		q.Set("end", strconv.Itoa(end))
		if measure != "" {
			q.Set("measure", measure)
		}
		q.Set("rows", fmt.Sprintf("%d:%d", max(strip.Start, rlo), min(strip.End, rhi)))
		return "/api/ld/region?" + q.Encode()
	}, func(res *stripResult) any { return &res.region })
	failed, done := co.gatherVerdict(w, owners, results)
	if done {
		return
	}

	resp := server.RegionResponse{Start: start, End: end, Partial: len(failed) > 0}
	if windowed && !(rlo == start && rhi == end) {
		resp.RowStart, resp.RowEnd = rlo, rhi
	}
	resp.Values = make([][]float64, rhi-rlo)
	for k, shard := range owners {
		if results[k].err != nil {
			continue
		}
		resp.Measure = results[k].region.Measure
		strip := co.part.ranges[shard]
		for i, row := range results[k].region.Values {
			resp.Values[max(strip.Start, rlo)-rlo+i] = row
		}
	}
	co.markPartial(w, failed)
	writeJSON(w, resp)
}

func (co *Coordinator) handleTop(w http.ResponseWriter, r *http.Request) {
	k := 20
	if v := r.URL.Query().Get("k"); v != "" {
		var err error
		if k, err = strconv.Atoi(v); err != nil {
			httpError(w, http.StatusBadRequest, "parameter %q: %v", "k", err)
			return
		}
	}
	if k < 1 {
		httpError(w, http.StatusBadRequest, "k=%d below 1", k)
		return
	}
	rlo, rhi, windowed, err := rowsQuery(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if windowed {
		if rlo < 0 || rhi <= rlo || rhi > co.n {
			httpError(w, http.StatusBadRequest, "rows [%d,%d) outside 0..%d", rlo, rhi, co.n)
			return
		}
	} else {
		rlo, rhi = 0, co.n
	}

	owners := co.part.overlapping(rlo, rhi)
	results := co.scatter(r.Context(), owners, func(shard int) string {
		strip := co.part.ranges[shard]
		q := url.Values{}
		q.Set("k", strconv.Itoa(k))
		q.Set("rows", fmt.Sprintf("%d:%d", max(strip.Start, rlo), min(strip.End, rhi)))
		return "/api/ld/top?" + q.Encode()
	}, func(res *stripResult) any { return &res.top })
	failed, done := co.gatherVerdict(w, owners, results)
	if done {
		return
	}

	lists := make([][]server.PairResponse, 0, len(results))
	for _, res := range results {
		if res.err == nil {
			lists = append(lists, res.top.Pairs)
		}
	}
	co.markPartial(w, failed)
	writeJSON(w, server.TopResponse{K: k, Partial: len(failed) > 0, Pairs: mergeTop(k, lists)})
}

// handleProxy forwards whole-matrix endpoints (prune, blocks, omega) —
// every shard holds the full matrix, so any healthy one can answer. The
// round-robin cursor spreads the load; breaker-open shards fail fast and
// the next shard is tried.
func (co *Coordinator) handleProxy(w http.ResponseWriter, r *http.Request) {
	pathQuery := r.URL.Path
	if r.URL.RawQuery != "" {
		pathQuery += "?" + r.URL.RawQuery
	}
	first := int(co.rr.Add(1)) % len(co.shards)
	var lastErr error
	for k := range co.shards {
		s := co.shards[(first+k)%len(co.shards)]
		body, err := s.get(r.Context(), pathQuery)
		if err == nil {
			co.m.proxied.Add(1)
			relayBody(w, body)
			return
		}
		var he *HTTPError
		if errors.As(err, &he) && he.Status < 500 {
			relayError(w, he)
			return
		}
		lastErr = err
	}
	httpError(w, http.StatusBadGateway, "all shards failed: %v", lastErr)
}

// shardFailure answers for a single-shard route that could not be served:
// terminal shard responses relay verbatim, everything else is a 502.
func (co *Coordinator) shardFailure(w http.ResponseWriter, s *shardClient, err error) {
	var he *HTTPError
	if errors.As(err, &he) && he.Status < 500 {
		relayError(w, he)
		return
	}
	httpError(w, http.StatusBadGateway, "shard %s failed: %v", s.base, err)
}

// relayBody forwards a shard's 200 response verbatim, preserving
// bit-identity with the single-node API.
func relayBody(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// relayError forwards a terminal shard error (status and body) verbatim.
func relayError(w http.ResponseWriter, he *HTTPError) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(he.Status)
	w.Write(he.Body)
}

func writeJSON(w http.ResponseWriter, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "encoding response: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(b, '\n'))
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func intQuery(r *http.Request, name string) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return 0, fmt.Errorf("missing parameter %q", name)
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %v", name, err)
	}
	return n, nil
}

// rowsQuery parses an optional rows=a:b window.
func rowsQuery(r *http.Request) (lo, hi int, ok bool, err error) {
	v := r.URL.Query().Get("rows")
	if v == "" {
		return 0, 0, false, nil
	}
	a, b, found := strings.Cut(v, ":")
	if !found {
		return 0, 0, false, fmt.Errorf("parameter %q: want a:b, got %q", "rows", v)
	}
	if lo, err = strconv.Atoi(a); err != nil {
		return 0, 0, false, fmt.Errorf("parameter %q: %v", "rows", err)
	}
	if hi, err = strconv.Atoi(b); err != nil {
		return 0, 0, false, fmt.Errorf("parameter %q: %v", "rows", err)
	}
	return lo, hi, true, nil
}
