package blis

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/kernel"
)

// gatherEpilogue is a TileEpilogue that scatters finished tiles into a
// dense matrix. Tile writes are disjoint by contract, so no locking.
func gatherEpilogue(out []uint32, ldc int) TileEpilogue {
	return func(_ int, tile []uint32, ldt, i0, j0, mm, nn int) {
		for r := 0; r < mm; r++ {
			copy(out[(i0+r)*ldc+j0:(i0+r)*ldc+j0+nn], tile[r*ldt:r*ldt+nn])
		}
	}
}

func TestGemmEpilogueMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	shapes := []struct{ m, n, samples int }{
		{1, 1, 1}, {1, 1, 64}, {5, 7, 65}, {16, 16, 128},
		{33, 47, 200}, {64, 64, 1000}, {100, 30, 64*7 + 13},
	}
	for _, k := range kernel.Fixed {
		for _, sh := range shapes {
			a := randomMatrix(rng, sh.m, sh.samples)
			b := randomMatrix(rng, sh.n, sh.samples)
			got := make([]uint32, sh.m*sh.n)
			if err := GemmEpilogue(smallConfig(k, 3), a, b, gatherEpilogue(got, sh.n)); err != nil {
				t.Fatalf("%s %v: %v", k.Name, sh, err)
			}
			want := make([]uint32, sh.m*sh.n)
			if err := Reference(a, b, want, sh.n); err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s %v: C[%d] = %d, want %d", k.Name, sh, i, got[i], want[i])
				}
			}
		}
	}
}

// Every output cell must be handed to the epilogue exactly once, whatever
// the blocking fringes and thread interleaving do.
func TestGemmEpilogueCoversEachCellOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randomMatrix(rng, 61, 150)
	b := randomMatrix(rng, 43, 150)
	seen := make([]atomic.Int32, 61*43)
	epi := func(_ int, _ []uint32, _, i0, j0, mm, nn int) {
		for r := 0; r < mm; r++ {
			for c := 0; c < nn; c++ {
				seen[(i0+r)*43+j0+c].Add(1)
			}
		}
	}
	if err := GemmEpilogue(smallConfig(kernel.Default, 4), a, b, epi); err != nil {
		t.Fatal(err)
	}
	for i := range seen {
		if got := seen[i].Load(); got != 1 {
			t.Fatalf("cell %d visited %d times, want exactly once", i, got)
		}
	}
}

func TestSyrkEpilogueUpperTriangle(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, n := range []int{1, 7, 16, 33, 65, 130} {
		a := randomMatrix(rng, n, 257)
		const sentinel = ^uint32(0)
		got := make([]uint32, n*n)
		for i := range got {
			got[i] = sentinel
		}
		if err := SyrkEpilogue(smallConfig(kernel.Default, 4), a, gatherEpilogue(got, n)); err != nil {
			t.Fatal(err)
		}
		want := make([]uint32, n*n)
		if err := Reference(a, a, want, n); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				switch v := got[i*n+j]; {
				case j >= i && v != want[i*n+j]:
					t.Fatalf("n=%d: upper C[%d,%d] = %d, want %d", n, i, j, v, want[i*n+j])
				case j < i && v != sentinel && v != want[i*n+j]:
					// Diagonal-crossing tiles may deliver below-diagonal
					// cells; when they do, the by-product must be correct.
					t.Fatalf("n=%d: crossing-tile C[%d,%d] = %d, want %d", n, i, j, v, want[i*n+j])
				}
			}
		}
	}
}

// Shrinking maxGroupWords forces every column block through many KC slab
// groups, exercising cross-group accumulation in the per-job scratch: the
// epilogue must still see fully reduced counts, fired only after the
// final group.
func TestEpilogueManySlabGroups(t *testing.T) {
	old := maxGroupWords
	maxGroupWords = 2
	defer func() { maxGroupWords = old }()

	rng := rand.New(rand.NewSource(13))
	a := randomMatrix(rng, 37, 64*11+5) // 12 words → ≥6 slab groups
	b := randomMatrix(rng, 29, 64*11+5)
	got := make([]uint32, 37*29)
	if err := GemmEpilogue(Config{MC: 8, NC: 12, KC: 1, Threads: 3}, a, b, gatherEpilogue(got, 29)); err != nil {
		t.Fatal(err)
	}
	want := make([]uint32, 37*29)
	if err := Reference(a, b, want, 29); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("C[%d] = %d, want %d", i, got[i], want[i])
		}
	}

	sgot := make([]uint32, 37*37)
	if err := SyrkEpilogue(Config{MC: 8, NC: 12, KC: 1, Threads: 3}, a, gatherEpilogue(sgot, 37)); err != nil {
		t.Fatal(err)
	}
	swant := make([]uint32, 37*37)
	if err := Reference(a, a, swant, 37); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 37; i++ {
		for j := i; j < 37; j++ {
			if sgot[i*37+j] != swant[i*37+j] {
				t.Fatalf("syrk C[%d,%d] = %d, want %d", i, j, sgot[i*37+j], swant[i*37+j])
			}
		}
	}
}

func TestMaskedGemmEpilogueMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	shapes := []struct{ m, n, samples int }{
		{1, 1, 10}, {3, 5, 64}, {17, 9, 130}, {40, 40, 333},
	}
	for _, sh := range shapes {
		a, ka := randomMasked(rng, sh.m, sh.samples)
		b, kb := randomMasked(rng, sh.n, sh.samples)
		got := make([]uint32, sh.m*sh.n*4)
		epi := func(_ int, tile []uint32, ldt, i0, j0, mm, nn int) {
			for r := 0; r < mm; r++ {
				copy(got[((i0+r)*sh.n+j0)*4:((i0+r)*sh.n+j0+nn)*4], tile[r*ldt*4:(r*ldt+nn)*4])
			}
		}
		cfg := Config{MC: 7, NC: 9, KC: 2, Threads: 3}
		if err := MaskedGemmEpilogue(cfg, a, b, ka, kb, epi); err != nil {
			t.Fatal(err)
		}
		want := make([]uint32, sh.m*sh.n*4)
		if err := MaskedReference(a, b, ka, kb, want, sh.n); err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%v: masked C[%d] = %d, want %d", sh, i, got[i], want[i])
			}
		}
	}
}

func TestMaskedSyrkEpilogueUpperTriangle(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	const n = 25
	a, ka := randomMasked(rng, n, 200)
	got := make([]uint32, n*n*4)
	epi := func(_ int, tile []uint32, ldt, i0, j0, mm, nn int) {
		for r := 0; r < mm; r++ {
			copy(got[((i0+r)*n+j0)*4:((i0+r)*n+j0+nn)*4], tile[r*ldt*4:(r*ldt+nn)*4])
		}
	}
	if err := MaskedSyrkEpilogue(Config{MC: 6, NC: 10, KC: 1, Threads: 2}, a, ka, epi); err != nil {
		t.Fatal(err)
	}
	want := make([]uint32, n*n*4)
	if err := MaskedReference(a, a, ka, ka, want, n); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			for k := 0; k < 4; k++ {
				if got[(i*n+j)*4+k] != want[(i*n+j)*4+k] {
					t.Fatalf("masked C[%d,%d][%d] = %d, want %d",
						i, j, k, got[(i*n+j)*4+k], want[(i*n+j)*4+k])
				}
			}
		}
	}
}

func TestEpilogueErrors(t *testing.T) {
	a := bitmat.New(3, 10)
	if err := GemmEpilogue(Config{}, a, bitmat.New(3, 11), func(int, []uint32, int, int, int, int, int) {}); err == nil {
		t.Fatal("sample mismatch accepted")
	}
	if err := GemmEpilogue(Config{}, a, bitmat.New(3, 10), nil); err == nil {
		t.Fatal("nil epilogue accepted")
	}
	if err := SyrkEpilogue(Config{}, a, nil); err == nil {
		t.Fatal("nil epilogue accepted")
	}
}

// The fused path must report its work on the driver counters: tiles
// fused, time spent in epilogues, and the count-matrix bytes it avoided
// materializing.
func TestEpilogueStats(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	a := randomMatrix(rng, 50, 300)
	b := randomMatrix(rng, 40, 300)
	before := ReadStats()
	if err := GemmEpilogue(Config{Threads: 2}, a, b, func(int, []uint32, int, int, int, int, int) {}); err != nil {
		t.Fatal(err)
	}
	after := ReadStats()
	if after.EpilogueTiles <= before.EpilogueTiles {
		t.Fatalf("EpilogueTiles did not advance: %d -> %d", before.EpilogueTiles, after.EpilogueTiles)
	}
	if want := before.EpilogueBytesAvoided + 50*40*4; after.EpilogueBytesAvoided != want {
		t.Fatalf("EpilogueBytesAvoided = %d, want %d", after.EpilogueBytesAvoided, want)
	}
}

// Race check: many workers firing epilogues that write a shared output
// through the disjoint-tile contract. Run with -race.
func TestEpilogueConcurrentWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := randomMatrix(rng, 160, 500)
	b := randomMatrix(rng, 140, 500)
	got := make([]uint32, 160*140)
	if err := GemmEpilogue(Config{MC: 16, NC: 24, KC: 2, Threads: 8}, a, b, gatherEpilogue(got, 140)); err != nil {
		t.Fatal(err)
	}
	want := make([]uint32, 160*140)
	if err := Reference(a, b, want, 140); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("C[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}
