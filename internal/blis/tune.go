package blis

import (
	"context"
	"fmt"
	"time"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/kernel"
)

// The paper notes (Section IV) that "no attempt was made to tune the
// parameters within BLIS to obtain an optimized LD kernel" — the default
// dgemm-oriented blocking already lands in the 84–90% band. Tune supplies
// the missing step: an empirical search over micro-kernel shape and cache
// block sizes on a probe problem shaped like the caller's workload.

// TuneOptions bounds the auto-tuning search.
type TuneOptions struct {
	// SNPs and Samples describe the workload shape the tuned config will
	// be used for (defaults 2048 × 8192).
	SNPs, Samples int
	// Budget caps total measurement time (default 2s). The search is
	// greedy coordinate descent, so it degrades gracefully when the
	// budget runs out.
	Budget time.Duration
	// Threads for the probe runs (default 1: tuning targets the
	// per-core kernel, as the paper's peak analysis does).
	Threads int
	// MaxThreads enables the multi-threaded phase: after the single-core
	// descent, thread counts up to MaxThreads and work-queue chunk sizes
	// are searched against the block-size winner. 0 skips the phase and
	// the returned config leaves Threads unpinned.
	MaxThreads int
	// Ctx, when non-nil, aborts the search: probe runs are cancelled
	// in-flight (through Config.Ctx) and Tune returns Ctx.Err().
	Ctx context.Context
}

func (o TuneOptions) normalize() TuneOptions {
	if o.SNPs == 0 {
		o.SNPs = 2048
	}
	if o.Samples == 0 {
		o.Samples = 8192
	}
	if o.Budget == 0 {
		o.Budget = 2 * time.Second
	}
	if o.Threads == 0 {
		o.Threads = 1
	}
	return o
}

// TuneResult reports the winning configuration and its measured rate.
type TuneResult struct {
	Config Config
	// TriplesPerSecond is the probe throughput of the winner.
	TriplesPerSecond float64
	// Evaluated is the number of configurations measured.
	Evaluated int
}

// Tune searches micro-kernel shapes and cache block sizes for the fastest
// symmetric rank-k update on a probe matrix of the given shape. The probe
// is capped so tuning stays cheap even for huge target shapes.
func Tune(opt TuneOptions) (*TuneResult, error) {
	opt = opt.normalize()
	if opt.SNPs < 1 || opt.Samples < 1 || opt.Budget <= 0 || opt.Threads < 1 || opt.MaxThreads < 0 {
		return nil, fmt.Errorf("blis: invalid tune options %+v", opt)
	}
	probeN := min(opt.SNPs, 768)
	probeK := min(opt.Samples, 16384)
	g := probeMatrix(probeN, probeK)
	c := make([]uint32, probeN*probeN)
	deadline := time.Now().Add(opt.Budget)

	res := &TuneResult{}
	measure := func(cfg Config, threads int) (float64, error) {
		if err := ctxErr(opt.Ctx); err != nil {
			return 0, err
		}
		cfg.Threads = threads
		cfg.Ctx = opt.Ctx
		clear(c)
		start := time.Now()
		if err := Syrk(cfg, g, c, probeN, false); err != nil {
			return 0, err
		}
		el := time.Since(start)
		res.Evaluated++
		triples := float64(probeN) * float64(probeN+1) / 2 * float64(g.Words)
		return triples / el.Seconds(), nil
	}

	best := DefaultConfig()
	bestRate, err := measure(best, opt.Threads)
	if err != nil {
		return nil, err
	}

	// Phase 1: micro-kernel shape.
	for _, k := range kernel.Fixed {
		if time.Now().After(deadline) {
			break
		}
		cfg := best
		cfg.Kernel = k
		rate, err := measure(cfg, opt.Threads)
		if err != nil {
			return nil, err
		}
		if rate > bestRate {
			best, bestRate = cfg, rate
		}
	}

	// Phase 2: greedy coordinate descent over the block sizes. An exhausted
	// budget aborts the whole descent, not just the current axis.
	axes := []struct {
		name   string
		values []int
		set    func(*Config, int)
	}{
		{"KC", []int{64, 128, 256, 512, 1024}, func(c *Config, v int) { c.KC = v }},
		{"MC", []int{32, 64, 128, 256, 512}, func(c *Config, v int) { c.MC = v }},
		{"NC", []int{512, 1024, 2048, 4096, 8192}, func(c *Config, v int) { c.NC = v }},
	}
descent:
	for _, axis := range axes {
		for _, v := range axis.values {
			if time.Now().After(deadline) {
				break descent
			}
			cfg := best
			axis.set(&cfg, v)
			rate, err := measure(cfg, opt.Threads)
			if err != nil {
				return nil, err
			}
			if rate > bestRate {
				best, bestRate = cfg, rate
			}
		}
	}

	best.Threads = 0 // leave thread choice to the caller
	// Phase 3 (MaxThreads > 0): search thread counts and work-queue chunk
	// granularity against the single-core winner. Pins Threads/ChunkTiles
	// only when a parallel config beats it.
	if opt.MaxThreads > 1 {
		var grid []int
		for t := 2; t < opt.MaxThreads; t *= 2 {
			grid = append(grid, t)
		}
		grid = append(grid, opt.MaxThreads)
	threaded:
		for _, threads := range grid {
			for _, chunk := range []int{0, 8, 32, 128} {
				if time.Now().After(deadline) {
					break threaded
				}
				cfg := best
				cfg.ChunkTiles = chunk
				rate, err := measure(cfg, threads)
				if err != nil {
					return nil, err
				}
				if rate > bestRate {
					cfg.Threads = threads
					best, bestRate = cfg, rate
				}
			}
		}
	}
	res.Config = best
	res.TriplesPerSecond = bestRate
	return res, nil
}

// probeMatrix builds a deterministic dense probe input.
func probeMatrix(snps, samples int) *bitmat.Matrix {
	m := bitmat.New(snps, samples)
	state := uint64(0x2545f4914f6cdd1d)
	pad := m.PadMask()
	for i := 0; i < snps; i++ {
		w := m.SNP(i)
		for j := range w {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			w[j] = state
		}
		if len(w) > 0 {
			w[len(w)-1] &= pad
		}
	}
	return m
}
