package blis

import (
	"context"
	"fmt"
	"time"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/kernel"
	"ldgemm/internal/popcount"
)

// The paper notes (Section IV) that "no attempt was made to tune the
// parameters within BLIS to obtain an optimized LD kernel" — the default
// dgemm-oriented blocking already lands in the 84–90% band. Tune supplies
// the missing step: an empirical search on a probe problem shaped like
// the caller's workload, jointly over micro-kernel shape × popcount
// strategy (the two interact: the batched strategies shift work from the
// register tile to the slice engine), then cache blocking, pipeline
// shape (fused vs split epilogue), and thread/chunk parallelism. The
// winner can be persisted as a per-host profile (profile.go) so serving
// binaries skip the search at startup.

// TuneOptions bounds the auto-tuning search.
type TuneOptions struct {
	// SNPs and Samples describe the workload shape the tuned config will
	// be used for (defaults 2048 × 8192).
	SNPs, Samples int
	// Budget caps total measurement time (default 2s). The search is
	// greedy coordinate descent, so it degrades gracefully when the
	// budget runs out.
	Budget time.Duration
	// Threads for the probe runs (default 1: tuning targets the
	// per-core kernel, as the paper's peak analysis does).
	Threads int
	// MaxThreads enables the multi-threaded phase: after the single-core
	// descent, thread counts up to MaxThreads and work-queue chunk sizes
	// are searched against the block-size winner. 0 skips the phase and
	// the returned config leaves Threads unpinned.
	MaxThreads int
	// ProfilePath, when non-empty, persists the winner there as a
	// host-fingerprinted JSON profile (SaveProfile) after the search.
	ProfilePath string
	// Ctx, when non-nil, aborts the search: probe runs are cancelled
	// in-flight (through Config.Ctx) and Tune returns Ctx.Err().
	Ctx context.Context
}

func (o TuneOptions) normalize() TuneOptions {
	if o.SNPs == 0 {
		o.SNPs = 2048
	}
	if o.Samples == 0 {
		o.Samples = 8192
	}
	if o.Budget == 0 {
		o.Budget = 2 * time.Second
	}
	if o.Threads == 0 {
		o.Threads = 1
	}
	return o
}

// TuneProbe records one measured configuration: which variant ran and
// how fast. The log answers "what did the tuner actually try" — without
// it a surprising winner is indistinguishable from a search bug.
type TuneProbe struct {
	// Kernel is the micro-kernel shape name; Variant the full kernel
	// variant measured (shape plus panel layout, e.g. "4x4-runs");
	// Popcount the concrete AND-count engine.
	Kernel   string
	Variant  string
	Popcount string
	// Phase names the search phase that issued the probe.
	Phase            string
	MC, NC, KC       int
	Threads          int
	ChunkTiles       int
	TriplesPerSecond float64
}

// TuneResult reports the winning configuration and its measured rate.
type TuneResult struct {
	Config Config
	// Variant and Popcount name the winner's kernel variant and concrete
	// AND-count engine, as they will appear in DriverStats.
	Variant  string
	Popcount string
	// Epilogue is the faster pipeline shape on the probe: "fused" (tile
	// epilogue, no materialized count matrix) or "split". Empty when the
	// budget ran out before the epilogue phase.
	Epilogue string
	// TriplesPerSecond is the probe throughput of the winner.
	TriplesPerSecond float64
	// Evaluated is the number of configurations measured.
	Evaluated int
	// Probes is the full measurement log, one entry per evaluation.
	Probes []TuneProbe
}

// variantName is the DriverStats variant label of a (kernel, strategy)
// pair — the batched family repacks panels into runs, hence the suffix.
func variantName(k kernel.Kernel, s PopcountStrategy) string {
	if s == PopcountScalar {
		return k.Name
	}
	return k.Name + "-runs"
}

// tuneStrategies returns the distinct concrete strategies worth probing
// on this host: vector and CSA coincide when no SIMD tier exists.
func tuneStrategies() []PopcountStrategy {
	if popcount.HasVector() {
		return []PopcountStrategy{PopcountScalar, PopcountCSA, PopcountVector}
	}
	return []PopcountStrategy{PopcountScalar, PopcountCSA}
}

// Tune searches kernel variants and cache block sizes for the fastest
// symmetric rank-k update on a probe matrix of the given shape. The probe
// is capped so tuning stays cheap even for huge target shapes.
func Tune(opt TuneOptions) (*TuneResult, error) {
	opt = opt.normalize()
	if opt.SNPs < 1 || opt.Samples < 1 || opt.Budget <= 0 || opt.Threads < 1 || opt.MaxThreads < 0 {
		return nil, fmt.Errorf("blis: invalid tune options %+v", opt)
	}
	probeN := min(opt.SNPs, 768)
	probeK := min(opt.Samples, 16384)
	g := probeMatrix(probeN, probeK)
	c := make([]uint32, probeN*probeN)
	deadline := time.Now().Add(opt.Budget)

	res := &TuneResult{}
	triples := float64(probeN) * float64(probeN+1) / 2 * float64(g.Words)
	record := func(cfg Config, phase string, rate float64) {
		k := cfg.Kernel
		if k.Fn == nil {
			k = kernel.Default
		}
		res.Evaluated++
		res.Probes = append(res.Probes, TuneProbe{
			Kernel:   k.Name,
			Variant:  variantName(k, resolvePopcount(cfg.Popcount, g.Words)),
			Popcount: strategyTag(resolvePopcount(cfg.Popcount, g.Words)),
			Phase:    phase,
			MC:       cfg.MC, NC: cfg.NC, KC: cfg.KC,
			Threads: cfg.Threads, ChunkTiles: cfg.ChunkTiles,
			TriplesPerSecond: rate,
		})
	}
	measure := func(cfg Config, threads int, phase string) (float64, error) {
		if err := ctxErr(opt.Ctx); err != nil {
			return 0, err
		}
		cfg.Threads = threads
		cfg.Ctx = opt.Ctx
		clear(c)
		start := time.Now()
		if err := Syrk(cfg, g, c, probeN, false); err != nil {
			return 0, err
		}
		rate := triples / time.Since(start).Seconds()
		record(cfg, phase, rate)
		return rate, nil
	}

	best := DefaultConfig()
	best.Popcount = PopcountScalar
	bestRate, err := measure(best, opt.Threads, "baseline")
	if err != nil {
		return nil, err
	}

	// Phase 1: joint micro-kernel shape × popcount strategy. The two are
	// searched together because the best shape under the scalar kernel
	// (accumulator pressure) need not be the best under the batched
	// family (slice-call amortization).
	for _, strat := range tuneStrategies() {
		for _, k := range kernel.Fixed {
			if strat == PopcountScalar && k.Name == best.Kernel.Name {
				continue // the baseline already measured it
			}
			if time.Now().After(deadline) {
				break
			}
			cfg := best
			cfg.Kernel = k
			cfg.Popcount = strat
			rate, err := measure(cfg, opt.Threads, "kernel-variant")
			if err != nil {
				return nil, err
			}
			if rate > bestRate {
				best, bestRate = cfg, rate
			}
		}
	}

	// Phase 2: greedy coordinate descent over the block sizes. An exhausted
	// budget aborts the whole descent, not just the current axis.
	axes := []struct {
		name   string
		values []int
		set    func(*Config, int)
	}{
		{"KC", []int{64, 128, 256, 512, 1024}, func(c *Config, v int) { c.KC = v }},
		{"MC", []int{32, 64, 128, 256, 512}, func(c *Config, v int) { c.MC = v }},
		{"NC", []int{512, 1024, 2048, 4096, 8192}, func(c *Config, v int) { c.NC = v }},
	}
descent:
	for _, axis := range axes {
		for _, v := range axis.values {
			if time.Now().After(deadline) {
				break descent
			}
			cfg := best
			axis.set(&cfg, v)
			rate, err := measure(cfg, opt.Threads, "blocking-"+axis.name)
			if err != nil {
				return nil, err
			}
			if rate > bestRate {
				best, bestRate = cfg, rate
			}
		}
	}

	// Phase 3: pipeline shape — is the fused tile epilogue faster than
	// materializing the count matrix on this host? The fused probe pays
	// for the per-tile hook dispatch; split pays for the dense C traffic.
	if !time.Now().After(deadline) {
		cfg := best
		cfg.Threads = opt.Threads
		cfg.Ctx = opt.Ctx
		start := time.Now()
		err := SyrkEpilogue(cfg, g, func(int, []uint32, int, int, int, int, int) {})
		if err != nil {
			return nil, err
		}
		fusedRate := triples / time.Since(start).Seconds()
		record(cfg, "epilogue-fused", fusedRate)
		res.Epilogue = "split"
		if fusedRate >= bestRate {
			res.Epilogue = "fused"
		}
	}

	best.Threads = 0 // leave thread choice to the caller
	// Phase 4 (MaxThreads > 0): search thread counts and work-queue chunk
	// granularity against the single-core winner. Pins Threads/ChunkTiles
	// only when a parallel config beats it.
	if opt.MaxThreads > 1 {
		var grid []int
		for t := 2; t < opt.MaxThreads; t *= 2 {
			grid = append(grid, t)
		}
		grid = append(grid, opt.MaxThreads)
	threaded:
		for _, threads := range grid {
			for _, chunk := range []int{0, 8, 32, 128} {
				if time.Now().After(deadline) {
					break threaded
				}
				cfg := best
				cfg.ChunkTiles = chunk
				rate, err := measure(cfg, threads, "threads")
				if err != nil {
					return nil, err
				}
				if rate > bestRate {
					cfg.Threads = threads
					best, bestRate = cfg, rate
				}
			}
		}
	}
	res.Config = best
	res.TriplesPerSecond = bestRate
	res.Variant = variantName(best.Kernel, resolvePopcount(best.Popcount, g.Words))
	res.Popcount = strategyTag(resolvePopcount(best.Popcount, g.Words))

	if opt.ProfilePath != "" {
		p := Profile{
			Kernel:           best.Kernel.Name,
			Popcount:         best.Popcount.String(),
			MC:               best.MC,
			NC:               best.NC,
			KC:               best.KC,
			Threads:          best.Threads,
			ChunkTiles:       best.ChunkTiles,
			Epilogue:         res.Epilogue,
			TriplesPerSecond: bestRate,
		}
		if err := SaveProfile(opt.ProfilePath, p); err != nil {
			return nil, fmt.Errorf("blis: saving tune profile: %w", err)
		}
	}
	return res, nil
}

// probeMatrix builds a deterministic dense probe input.
func probeMatrix(snps, samples int) *bitmat.Matrix {
	m := bitmat.New(snps, samples)
	state := uint64(0x2545f4914f6cdd1d)
	pad := m.PadMask()
	for i := 0; i < snps; i++ {
		w := m.SNP(i)
		for j := range w {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			w[j] = state
		}
		if len(w) > 0 {
			w[len(w)-1] &= pad
		}
	}
	return m
}
