package blis

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/kernel"
)

// slowKernel wraps the default micro-kernel with a per-tile delay and a
// started signal, so tests can cancel a driver call that is provably
// mid-flight instead of racing a real kernel to completion.
func slowKernel(started chan<- struct{}, delay time.Duration) kernel.Kernel {
	k := kernel.Default
	inner := k.Fn
	var first atomic.Bool
	k.Fn = func(kc int, aw, bw []uint64, c []uint32, ldc int) {
		if first.CompareAndSwap(false, true) {
			select {
			case started <- struct{}{}:
			default:
			}
		}
		time.Sleep(delay)
		inner(kc, aw, bw, c, ldc)
	}
	return k
}

func TestDriverPreCancelled(t *testing.T) {
	g := probeMatrix(64, 256)
	c := make([]uint32, 64*64)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Syrk(Config{Threads: 2, Ctx: ctx}, g, c, 64, true)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled driver returned %v, want context.Canceled", err)
	}
	for i, v := range c {
		if v != 0 {
			t.Fatalf("pre-cancelled driver wrote c[%d]=%d", i, v)
		}
	}
}

func TestDriverCancelMidFlight(t *testing.T) {
	base := runtime.NumGoroutine()
	g := probeMatrix(128, 512)
	c := make([]uint32, 128*128)
	started := make(chan struct{}, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Small KC so the call has many slab-group phases; the slow kernel
	// guarantees plenty of them remain when the cancel lands.
	cfg := Config{Threads: 4, KC: 1, ChunkTiles: 1, Ctx: ctx,
		Kernel: slowKernel(started, 200*time.Microsecond)}
	done := make(chan error, 1)
	go func() { done <- Syrk(cfg, g, c, 128, true) }()

	<-started
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled driver returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled driver did not return within 10s")
	}

	// The pool's workers and the context watcher must all have exited.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after cancellation: %d > %d baseline",
				runtime.NumGoroutine(), base)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestDriverDeadlineExceeded(t *testing.T) {
	g := probeMatrix(96, 512)
	c := make([]uint32, 96*96)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond) // let the deadline pass
	err := Syrk(Config{Threads: 2, Ctx: ctx}, g, c, 96, true)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired driver returned %v, want context.DeadlineExceeded", err)
	}
}

// TestDriverCancelMasked covers the masked instantiation of the unified
// driver: the same cooperative-cancel machinery must serve both kernels.
func TestDriverCancelMasked(t *testing.T) {
	g := probeMatrix(64, 256)
	mask := bitmat.NewMask(64, 256)
	c := make([]uint32, 64*64*4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := MaskedSyrk(Config{Threads: 2, Ctx: ctx}, g, mask, c, 64)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled masked driver returned %v, want context.Canceled", err)
	}
}

func TestStatsAccumulate(t *testing.T) {
	before := ReadStats()
	g := probeMatrix(64, 512)
	c := make([]uint32, 64*64)
	if err := Syrk(Config{Threads: 2}, g, c, 64, true); err != nil {
		t.Fatal(err)
	}
	after := ReadStats()
	if after.Calls <= before.Calls {
		t.Fatalf("calls did not advance: %d -> %d", before.Calls, after.Calls)
	}
	wantCells := uint64(64) * 65 / 2 * uint64(g.Words)
	if after.Cells < before.Cells+wantCells {
		t.Fatalf("cells advanced by %d, want at least %d", after.Cells-before.Cells, wantCells)
	}
	if after.ArenaGets <= before.ArenaGets {
		t.Fatalf("arena gets did not advance")
	}
	if after.CellRate() <= 0 {
		t.Fatalf("cell rate %v", after.CellRate())
	}
	if hr := after.ArenaHitRate(); hr < 0 || hr > 1 {
		t.Fatalf("arena hit rate %v", hr)
	}
}

func TestTuneCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Tune(TuneOptions{SNPs: 64, Samples: 512, Budget: time.Second, Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled tune returned %v, want context.Canceled", err)
	}
}
