package blis

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestTuneProfileRoundTrip runs a small tune with persistence and checks
// the written profile loads back into the same configuration on this
// host.
func TestTuneProfileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tune.json")
	res, err := Tune(TuneOptions{
		SNPs: 128, Samples: 2048, Budget: 300 * time.Millisecond,
		ProfilePath: path,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := LoadProfile(path)
	if err != nil {
		t.Fatalf("loading just-written profile: %v", err)
	}
	if p.Fingerprint != HostFingerprint() {
		t.Fatalf("fingerprint %q, want %q", p.Fingerprint, HostFingerprint())
	}
	cfg, err := p.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Kernel.Name != res.Config.Kernel.Name || cfg.Popcount != res.Config.Popcount ||
		cfg.MC != res.Config.MC || cfg.NC != res.Config.NC || cfg.KC != res.Config.KC {
		t.Fatalf("profile config %+v does not round-trip tune winner %+v", cfg, res.Config)
	}
}

// TestTuneProbeLogReportsVariants pins the satellite fix: every probe
// entry must say which kernel variant and popcount engine it measured.
func TestTuneProbeLogReportsVariants(t *testing.T) {
	res, err := Tune(TuneOptions{SNPs: 96, Samples: 2048, Budget: 400 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Probes) != res.Evaluated {
		t.Fatalf("probe log has %d entries for %d evaluations", len(res.Probes), res.Evaluated)
	}
	variants := map[string]bool{}
	for i, pr := range res.Probes {
		if pr.Variant == "" || pr.Popcount == "" || pr.Phase == "" {
			t.Fatalf("probe %d missing identity: %+v", i, pr)
		}
		if pr.TriplesPerSecond <= 0 {
			t.Fatalf("probe %d has no rate: %+v", i, pr)
		}
		variants[pr.Variant] = true
	}
	// The joint phase must have tried both panel layouts.
	var sawRuns, sawScalar bool
	for v := range variants {
		if strings.HasSuffix(v, "-runs") {
			sawRuns = true
		} else {
			sawScalar = true
		}
	}
	if !sawRuns || !sawScalar {
		t.Fatalf("joint phase did not cover both families: %v", variants)
	}
	if res.Variant == "" || res.Popcount == "" {
		t.Fatalf("winner identity missing: %+v", res)
	}
}

// TestLoadProfileCorrupt pins the failure mode: malformed JSON is an
// error (for the caller to log), never a panic, and never a half-parsed
// profile.
func TestLoadProfileCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corrupt.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadProfile(path); err == nil {
		t.Fatal("corrupt profile loaded without error")
	}
	// Structurally valid JSON with an unknown kernel is also rejected.
	if err := os.WriteFile(path, []byte(`{"version":1,"fingerprint":"`+HostFingerprint()+`","kernel":"13x13","popcount":"auto"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadProfile(path); err == nil {
		t.Fatal("profile with unknown kernel loaded without error")
	}
}

// TestLoadProfileStaleFingerprint pins that a profile from another host
// (or another format version) is rejected with ErrProfileStale.
func TestLoadProfileStaleFingerprint(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tune.json")
	p := Profile{
		Fingerprint: "linux/riscv64/cpu64/simd-none/v1",
		Kernel:      "4x4",
		Popcount:    "vector",
		MC:          128, NC: 4096, KC: 256,
	}
	if err := SaveProfile(path, p); err != nil {
		t.Fatal(err)
	}
	_, err := LoadProfile(path)
	if !errors.Is(err, ErrProfileStale) {
		t.Fatalf("stale profile error = %v, want ErrProfileStale", err)
	}

	// Same host, wrong version.
	stale := Profile{Fingerprint: HostFingerprint(), Kernel: "4x4", Popcount: "scalar", MC: 1, NC: 1, KC: 1}
	if err := SaveProfile(path, stale); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(strings.Replace(string(raw), `"version": 1`, `"version": 99`, 1)), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadProfile(path); !errors.Is(err, ErrProfileStale) {
		t.Fatalf("wrong-version profile error = %v, want ErrProfileStale", err)
	}
}

// TestSaveProfileAtomic checks the temp+rename write leaves no temp
// litter and an existing profile is replaced, not appended.
func TestSaveProfileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tune.json")
	p := Profile{Kernel: "4x4", Popcount: "auto", MC: 128, NC: 4096, KC: 256}
	for i := 0; i < 2; i++ {
		if err := SaveProfile(path, p); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "tune.json" {
		t.Fatalf("unexpected directory contents: %v", entries)
	}
	if _, err := LoadProfile(path); err != nil {
		t.Fatal(err)
	}
}

// TestTuneEpilogueProbe checks the pipeline-shape phase reports a
// verdict when the budget allows it.
func TestTuneEpilogueProbe(t *testing.T) {
	res, err := Tune(TuneOptions{SNPs: 96, Samples: 1024, Budget: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epilogue != "fused" && res.Epilogue != "split" {
		t.Fatalf("epilogue verdict %q, want fused or split", res.Epilogue)
	}
}
