package blis

import (
	"fmt"
	"sync"
	"sync/atomic"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/kernel"
)

// MaskedGemm computes, for every SNP pair (i of a, j of b), the four
// Section VII counts needed for gap-aware LD:
//
//	c[(i*ldc+j)*4 + kernel.MaskedValid] += popcount(cᵢ & cⱼ)
//	c[(i*ldc+j)*4 + kernel.MaskedI]     += popcount(cᵢⱼ & sᵢ)
//	c[(i*ldc+j)*4 + kernel.MaskedJ]     += popcount(cᵢⱼ & sⱼ)
//	c[(i*ldc+j)*4 + kernel.MaskedIJ]    += popcount(cᵢⱼ & sᵢ & sⱼ)
//
// It uses the same five-loop blocked structure as Gemm with the fused
// masked micro-kernel, packing (value, mask) word pairs. Callers must have
// applied the masks to the matrices (s = s & c); bitmat.Mask.ApplyTo does
// this.
func MaskedGemm(cfg Config, a, b *bitmat.Matrix, ka, kb *bitmat.Mask, c []uint32, ldc int) error {
	cfg, err := cfg.normalize()
	if err != nil {
		return err
	}
	if a.Samples != b.Samples {
		return fmt.Errorf("blis: sample mismatch %d vs %d", a.Samples, b.Samples)
	}
	if ka.SNPs != a.SNPs || ka.Samples != a.Samples {
		return fmt.Errorf("blis: mask A shape %dx%d vs matrix %dx%d", ka.SNPs, ka.Samples, a.SNPs, a.Samples)
	}
	if kb.SNPs != b.SNPs || kb.Samples != b.Samples {
		return fmt.Errorf("blis: mask B shape %dx%d vs matrix %dx%d", kb.SNPs, kb.Samples, b.SNPs, b.Samples)
	}
	if ldc < b.SNPs {
		return fmt.Errorf("blis: ldc %d < n %d", ldc, b.SNPs)
	}
	if a.SNPs > 0 && len(c) < ((a.SNPs-1)*ldc+b.SNPs)*4 {
		return fmt.Errorf("blis: masked C has %d entries, need %d", len(c), ((a.SNPs-1)*ldc+b.SNPs)*4)
	}
	return driveMasked(cfg, a, b, ka, kb, c, ldc, false)
}

// MaskedSyrk is the single-matrix gap-aware rank-k update: like Syrk it
// fills the upper triangle (j ≥ i) of the four-count matrix, skipping
// blocks and register tiles strictly below the diagonal. MirrorMasked
// fills the lower triangle afterwards (the counts are symmetric up to
// swapping the MaskedI/MaskedJ roles).
func MaskedSyrk(cfg Config, a *bitmat.Matrix, ka *bitmat.Mask, c []uint32, ldc int) error {
	cfg, err := cfg.normalize()
	if err != nil {
		return err
	}
	if ka.SNPs != a.SNPs || ka.Samples != a.Samples {
		return fmt.Errorf("blis: mask shape %dx%d vs matrix %dx%d", ka.SNPs, ka.Samples, a.SNPs, a.Samples)
	}
	if ldc < a.SNPs {
		return fmt.Errorf("blis: ldc %d < n %d", ldc, a.SNPs)
	}
	if a.SNPs > 0 && len(c) < ((a.SNPs-1)*ldc+a.SNPs)*4 {
		return fmt.Errorf("blis: masked C has %d entries, need %d", len(c), ((a.SNPs-1)*ldc+a.SNPs)*4)
	}
	return driveMasked(cfg, a, a, ka, ka, c, ldc, true)
}

// MirrorMasked copies the strict upper triangle of an n×n four-count
// matrix onto the strict lower triangle, swapping the per-SNP counts so
// that cell (j, i) reads correctly: MaskedI and MaskedJ exchange roles.
func MirrorMasked(c []uint32, n, ldc int) {
	for i := 1; i < n; i++ {
		for j := 0; j < i; j++ {
			src := c[(j*ldc+i)*4:]
			dst := c[(i*ldc+j)*4:]
			dst[kernel.MaskedValid] = src[kernel.MaskedValid]
			dst[kernel.MaskedI] = src[kernel.MaskedJ]
			dst[kernel.MaskedJ] = src[kernel.MaskedI]
			dst[kernel.MaskedIJ] = src[kernel.MaskedIJ]
		}
	}
}

func driveMasked(cfg Config, a, b *bitmat.Matrix, ka, kb *bitmat.Mask, c []uint32, ldc int, syrk bool) error {
	mk := kernel.Masked2x2()
	m, n, kw := a.SNPs, b.SNPs, a.Words
	if m == 0 || n == 0 || kw == 0 {
		return nil
	}
	mr, nr := mk.MR, mk.NR
	kcMax := min(cfg.KC, kw)

	nc0 := min(cfg.NC, n)
	bpanels := (nc0 + nr - 1) / nr
	bpack := make([]uint64, bpanels*nr*kcMax*2)

	workers := cfg.Threads
	type job struct{ ic, mc int }
	var (
		wg     sync.WaitGroup
		cursor atomic.Int64
		jobs   []job
	)
	apacks := make([][]uint64, workers)
	tiles := make([][]uint32, workers)
	for w := range apacks {
		apanels := (min(cfg.MC, m) + mr - 1) / mr
		apacks[w] = make([]uint64, apanels*mr*kcMax*2)
		tiles[w] = make([]uint32, mr*nr*4)
	}

	for jc := 0; jc < n; jc += cfg.NC {
		nc := min(cfg.NC, n-jc)
		jobs = jobs[:0]
		for ic := 0; ic < m; ic += cfg.MC {
			if syrk && ic >= jc+nc {
				continue
			}
			jobs = append(jobs, job{ic, min(cfg.MC, m-ic)})
		}
		if len(jobs) == 0 {
			continue
		}
		for pc := 0; pc < kw; pc += cfg.KC {
			kc := min(cfg.KC, kw-pc)
			for jr := 0; jr < nc; jr += nr {
				kernel.PackMaskedPanel(bpack[(jr/nr)*nr*kcMax*2:], b, kb, jc+jr, min(nr, nc-jr), nr, pc, kc)
			}
			cursor.Store(0)
			nw := min(workers, len(jobs))
			wg.Add(nw)
			for w := 0; w < nw; w++ {
				go func(w int) {
					defer wg.Done()
					for {
						idx := int(cursor.Add(1)) - 1
						if idx >= len(jobs) {
							return
						}
						jb := jobs[idx]
						runMaskedBlock(cfg, mk, kcMax, a, ka, jb.ic, jb.mc, jc, nc, pc, kc,
							apacks[w], bpack, tiles[w], c, ldc, syrk)
					}
				}(w)
			}
			wg.Wait()
		}
	}
	return nil
}

func runMaskedBlock(cfg Config, mk kernel.MaskedKernel, kcMax int, a *bitmat.Matrix, ka *bitmat.Mask,
	ic, mc, jc, nc, pc, kc int, apack, bpack []uint64, tile []uint32, c []uint32, ldc int, syrk bool) {
	mr, nr := mk.MR, mk.NR
	for ir := 0; ir < mc; ir += mr {
		kernel.PackMaskedPanel(apack[(ir/mr)*mr*kcMax*2:], a, ka, ic+ir, min(mr, mc-ir), mr, pc, kc)
	}
	for jr := 0; jr < nc; jr += nr {
		bw := bpack[(jr/nr)*nr*kcMax*2 : (jr/nr)*nr*kcMax*2+kc*nr*2]
		for ir := 0; ir < mc; ir += mr {
			i0, j0 := ic+ir, jc+jr
			if syrk && i0 >= j0+nr {
				continue
			}
			aw := apack[(ir/mr)*mr*kcMax*2 : (ir/mr)*mr*kcMax*2+kc*mr*2]
			mm, nn := min(mr, mc-ir), min(nr, nc-jr)
			if mm == mr && nn == nr {
				mk.Fn(kc, aw, bw, c[(i0*ldc+j0)*4:], ldc)
				continue
			}
			for t := range tile {
				tile[t] = 0
			}
			mk.Fn(kc, aw, bw, tile, nr)
			for i := 0; i < mm; i++ {
				for j := 0; j < nn; j++ {
					dst := c[((i0+i)*ldc+j0+j)*4:]
					src := tile[(i*nr+j)*4:]
					for t := 0; t < 4; t++ {
						dst[t] += src[t]
					}
				}
			}
		}
	}
}

// MaskedReference computes the four counts with plain loops; oracle for the
// masked driver.
func MaskedReference(a, b *bitmat.Matrix, ka, kb *bitmat.Mask, c []uint32, ldc int) error {
	if a.Samples != b.Samples {
		return fmt.Errorf("blis: sample mismatch %d vs %d", a.Samples, b.Samples)
	}
	for i := 0; i < a.SNPs; i++ {
		si, ci := a.SNP(i), ka.SNP(i)
		for j := 0; j < b.SNPs; j++ {
			sj, cj := b.SNP(j), kb.SNP(j)
			cell := c[(i*ldc+j)*4:]
			for w := range si {
				cij := ci[w] & cj[w]
				cell[kernel.MaskedValid] += popc(cij)
				cell[kernel.MaskedI] += popc(cij & si[w])
				cell[kernel.MaskedJ] += popc(cij & sj[w])
				cell[kernel.MaskedIJ] += popc(cij & si[w] & sj[w])
			}
		}
	}
	return nil
}
