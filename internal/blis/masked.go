package blis

import (
	"fmt"
	"runtime"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/kernel"
)

// MaskedGemm computes, for every SNP pair (i of a, j of b), the four
// Section VII counts needed for gap-aware LD:
//
//	c[(i*ldc+j)*4 + kernel.MaskedValid] += popcount(cᵢ & cⱼ)
//	c[(i*ldc+j)*4 + kernel.MaskedI]     += popcount(cᵢⱼ & sᵢ)
//	c[(i*ldc+j)*4 + kernel.MaskedJ]     += popcount(cᵢⱼ & sⱼ)
//	c[(i*ldc+j)*4 + kernel.MaskedIJ]    += popcount(cᵢⱼ & sᵢ & sⱼ)
//
// It uses the same five-loop blocked structure as Gemm with the fused
// masked micro-kernel, packing (value, mask) word pairs. Callers must have
// applied the masks to the matrices (s = s & c); bitmat.Mask.ApplyTo does
// this.
func MaskedGemm(cfg Config, a, b *bitmat.Matrix, ka, kb *bitmat.Mask, c []uint32, ldc int) error {
	cfg, err := cfg.normalize()
	if err != nil {
		return err
	}
	if a.Samples != b.Samples {
		return fmt.Errorf("blis: sample mismatch %d vs %d", a.Samples, b.Samples)
	}
	if ka.SNPs != a.SNPs || ka.Samples != a.Samples {
		return fmt.Errorf("blis: mask A shape %dx%d vs matrix %dx%d", ka.SNPs, ka.Samples, a.SNPs, a.Samples)
	}
	if kb.SNPs != b.SNPs || kb.Samples != b.Samples {
		return fmt.Errorf("blis: mask B shape %dx%d vs matrix %dx%d", kb.SNPs, kb.Samples, b.SNPs, b.Samples)
	}
	if ldc < b.SNPs {
		return fmt.Errorf("blis: ldc %d < n %d", ldc, b.SNPs)
	}
	if a.SNPs > 0 && len(c) < ((a.SNPs-1)*ldc+b.SNPs)*4 {
		return fmt.Errorf("blis: masked C has %d entries, need %d", len(c), ((a.SNPs-1)*ldc+b.SNPs)*4)
	}
	return driveMasked(cfg, a, b, ka, kb, c, ldc, false, nil)
}

// MaskedGemmEpilogue runs MaskedGemm fused (see GemmEpilogue): the four-
// count matrix is never materialized; epi receives each finished register
// tile with cell (r, c, k) at tile[(r*ldt+c)*4+k].
func MaskedGemmEpilogue(cfg Config, a, b *bitmat.Matrix, ka, kb *bitmat.Mask, epi TileEpilogue) error {
	cfg, err := cfg.normalize()
	if err != nil {
		return err
	}
	if a.Samples != b.Samples {
		return fmt.Errorf("blis: sample mismatch %d vs %d", a.Samples, b.Samples)
	}
	if ka.SNPs != a.SNPs || ka.Samples != a.Samples {
		return fmt.Errorf("blis: mask A shape %dx%d vs matrix %dx%d", ka.SNPs, ka.Samples, a.SNPs, a.Samples)
	}
	if kb.SNPs != b.SNPs || kb.Samples != b.Samples {
		return fmt.Errorf("blis: mask B shape %dx%d vs matrix %dx%d", kb.SNPs, kb.Samples, b.SNPs, b.Samples)
	}
	if epi == nil {
		return fmt.Errorf("blis: nil epilogue")
	}
	return driveMasked(cfg, a, b, ka, kb, nil, b.SNPs, false, epi)
}

// MaskedSyrk is the single-matrix gap-aware rank-k update: like Syrk it
// fills the upper triangle (j ≥ i) of the four-count matrix, skipping
// blocks and register tiles strictly below the diagonal. MirrorMasked
// fills the lower triangle afterwards (the counts are symmetric up to
// swapping the MaskedI/MaskedJ roles).
func MaskedSyrk(cfg Config, a *bitmat.Matrix, ka *bitmat.Mask, c []uint32, ldc int) error {
	cfg, err := cfg.normalize()
	if err != nil {
		return err
	}
	if ka.SNPs != a.SNPs || ka.Samples != a.Samples {
		return fmt.Errorf("blis: mask shape %dx%d vs matrix %dx%d", ka.SNPs, ka.Samples, a.SNPs, a.Samples)
	}
	if ldc < a.SNPs {
		return fmt.Errorf("blis: ldc %d < n %d", ldc, a.SNPs)
	}
	if a.SNPs > 0 && len(c) < ((a.SNPs-1)*ldc+a.SNPs)*4 {
		return fmt.Errorf("blis: masked C has %d entries, need %d", len(c), ((a.SNPs-1)*ldc+a.SNPs)*4)
	}
	return driveMasked(cfg, a, a, ka, ka, c, ldc, true, nil)
}

// MaskedSyrkEpilogue runs MaskedSyrk fused (see SyrkEpilogue): epi
// receives every tile of the triangle sweep; there is no count mirror, and
// epilogues that need the (j, i) view swap the MaskedI/MaskedJ roles
// themselves, as MirrorMasked does.
func MaskedSyrkEpilogue(cfg Config, a *bitmat.Matrix, ka *bitmat.Mask, epi TileEpilogue) error {
	cfg, err := cfg.normalize()
	if err != nil {
		return err
	}
	if ka.SNPs != a.SNPs || ka.Samples != a.Samples {
		return fmt.Errorf("blis: mask shape %dx%d vs matrix %dx%d", ka.SNPs, ka.Samples, a.SNPs, a.Samples)
	}
	if epi == nil {
		return fmt.Errorf("blis: nil epilogue")
	}
	return driveMasked(cfg, a, a, ka, ka, nil, a.SNPs, true, epi)
}

// MirrorMasked copies the strict upper triangle of an n×n four-count
// matrix onto the strict lower triangle, swapping the per-SNP counts so
// that cell (j, i) reads correctly: MaskedI and MaskedJ exchange roles.
// Large matrices are mirrored in parallel, like Mirror.
func MirrorMasked(c []uint32, n, ldc int) {
	forEachTriangleSpan(n, runtime.GOMAXPROCS(0), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := 0; j < i; j++ {
				src := c[(j*ldc+i)*4:]
				dst := c[(i*ldc+j)*4:]
				dst[kernel.MaskedValid] = src[kernel.MaskedValid]
				dst[kernel.MaskedI] = src[kernel.MaskedJ]
				dst[kernel.MaskedJ] = src[kernel.MaskedI]
				dst[kernel.MaskedIJ] = src[kernel.MaskedIJ]
			}
		}
	})
}

// driveMasked instantiates the slab-pipelined parallel driver (parallel.go)
// for the fused masked kernel, selecting the AND-count engine by the
// resolved popcount strategy: the interleaved scalar kernel packs
// (value, mask) word pairs, the batched family (dispatch.go) packs
// per-SNP runs; every C entry is the four Section VII counts either way.
func driveMasked(cfg Config, a, b *bitmat.Matrix, ka, kb *bitmat.Mask, c []uint32, ldc int, syrk bool, epi TileEpilogue) error {
	mk := kernel.Masked2x2()
	strat := resolvePopcount(cfg.Popcount, a.Words)
	var ops tileOps
	if strat == PopcountScalar {
		ops = maskedScalarOps(mk, a, b, ka, kb)
		stats.setVariant(mk.Name, strategyTag(strat))
	} else {
		ops = maskedRunOps(mk, a, b, ka, kb, strat)
		stats.setVariant(mk.Name+"-runs", strategyTag(strat))
	}
	return driveTiles(cfg, ops, a.SNPs, b.SNPs, a.Words, c, ldc, syrk, epi)
}

// maskedScalarOps is the original interleaved masked tileOps — the
// short-k dispatch target and the oracle for the batched masked family.
func maskedScalarOps(mk kernel.MaskedKernel, a, b *bitmat.Matrix, ka, kb *bitmat.Mask) tileOps {
	mr, nr := mk.MR, mk.NR
	return tileOps{
		mr: mr, nr: nr, stride: 2, cells: 4,
		popcPerWord: 4, popcFold: 1,
		shareable: a == b && ka == kb && mr == nr,
		packA: func(dst []uint64, snp, count, pc, kc int) {
			kernel.PackMaskedPanel(dst, a, ka, snp, count, mr, pc, kc)
		},
		packB: func(dst []uint64, snp, count, pc, kc int) {
			kernel.PackMaskedPanel(dst, b, kb, snp, count, nr, pc, kc)
		},
		full: func(kc int, aw, bw []uint64, c []uint32, i0, j0, ldc int) {
			mk.Fn(kc, aw, bw, c[(i0*ldc+j0)*4:], ldc)
		},
		fringe: func(kc int, aw, bw []uint64, tile, c []uint32, i0, j0, mm, nn, ldc int) {
			for t := range tile {
				tile[t] = 0
			}
			mk.Fn(kc, aw, bw, tile, nr)
			for i := 0; i < mm; i++ {
				for j := 0; j < nn; j++ {
					dst := c[((i0+i)*ldc+j0+j)*4:]
					src := tile[(i*nr+j)*4:]
					for t := 0; t < 4; t++ {
						dst[t] += src[t]
					}
				}
			}
		},
	}
}

// MaskedReference computes the four counts with plain loops; oracle for the
// masked driver.
func MaskedReference(a, b *bitmat.Matrix, ka, kb *bitmat.Mask, c []uint32, ldc int) error {
	if a.Samples != b.Samples {
		return fmt.Errorf("blis: sample mismatch %d vs %d", a.Samples, b.Samples)
	}
	for i := 0; i < a.SNPs; i++ {
		si, ci := a.SNP(i), ka.SNP(i)
		for j := 0; j < b.SNPs; j++ {
			sj, cj := b.SNP(j), kb.SNP(j)
			cell := c[(i*ldc+j)*4:]
			for w := range si {
				cij := ci[w] & cj[w]
				cell[kernel.MaskedValid] += popc(cij)
				cell[kernel.MaskedI] += popc(cij & si[w])
				cell[kernel.MaskedJ] += popc(cij & sj[w])
				cell[kernel.MaskedIJ] += popc(cij & si[w] & sj[w])
			}
		}
	}
	return nil
}
