// Package blis implements the GotoBLAS/BLIS layered blocking approach of
// Section III of the paper for the haplotype-count "GEMM": given genomic
// matrices whose columns are bit-packed SNPs, it computes
//
//	C[i,j] += Σ_l POPCNT(A.SNP(i)[l] & B.SNP(j)[l])
//
// using the canonical five-loop structure: the n dimension is partitioned
// into NC-wide column blocks (loop 5), the k dimension (sample words) into
// KC-deep slabs (loop 4, the rank-k updates that the paper notes genomic
// matrices already have the right shape for), the m dimension into MC-tall
// row blocks (loop 3), and each block-panel multiplication is swept by the
// register-blocked micro-kernel (loops 2 and 1). Fringe tiles are handled
// by zero-padding panels to full MR/NR and scattering through a scratch
// tile, so the micro-kernel never reads or writes out of bounds.
//
// Parallel execution uses a persistent worker pool per call: B-slab
// packing is a parallel phase, compute work is distributed as fine-grained
// tile-range chunks (cost-balanced under the SYRK triangle), successive
// KC slab groups are pipelined through a double buffer, and pack buffers
// are recycled across calls through a pooled arena. See parallel.go and
// pool.go.
package blis

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/kernel"
)

// Config carries the cache blocking parameters and parallelism degree.
// MC and NC are in SNPs; KC is in 64-bit words of the sample dimension.
type Config struct {
	MC int // rows of A packed per L2-resident block
	NC int // columns of B packed per slab
	KC int // words per rank-k slab (KC*8 bytes of each SNP)
	// Kernel is the register-blocked micro-kernel (Default if zero).
	Kernel kernel.Kernel
	// Popcount selects the AND-count engine of the micro-kernel sweep
	// (see PopcountStrategy). The zero value is PopcountAuto: k-dispatch
	// between the scalar kernel and the batched CSA/vector family.
	Popcount PopcountStrategy
	// Threads is the number of worker goroutines (GOMAXPROCS if 0).
	Threads int
	// ChunkTiles is the work-queue granularity of the parallel driver:
	// the target number of micro-tiles per scheduler chunk. 0 derives it
	// from the workload and thread count (tiles per column block divided
	// by 4·Threads). Smaller chunks balance the triangular SYRK workload
	// better at the cost of more queue traffic.
	ChunkTiles int
	// Ctx, when non-nil, cancels an in-flight driver call cooperatively:
	// workers observe the cancellation between tile jobs and the driver
	// returns Ctx.Err() at the next phase or slab-group boundary, with
	// its packing arena still recycled. A nil Ctx (the zero value) means
	// the call runs to completion, exactly as before.
	Ctx context.Context
}

// DefaultConfig returns blocking parameters sized for common x86 cache
// hierarchies: the B micro-panel (KC·NR words) stays L1-resident, the
// packed A block (MC·KC words) L2-resident.
func DefaultConfig() Config {
	return Config{
		MC:     128,
		NC:     4096,
		KC:     256, // 2 KiB per SNP slab
		Kernel: kernel.Default,
	}
}

// normalize fills zero fields with defaults and validates the rest.
func (c Config) normalize() (Config, error) {
	d := DefaultConfig()
	if c.MC == 0 {
		c.MC = d.MC
	}
	if c.NC == 0 {
		c.NC = d.NC
	}
	if c.KC == 0 {
		c.KC = d.KC
	}
	if c.Kernel.Fn == nil {
		c.Kernel = d.Kernel
	}
	if c.Threads == 0 {
		c.Threads = runtime.GOMAXPROCS(0)
	}
	if c.MC < 1 || c.NC < 1 || c.KC < 1 || c.Threads < 1 || c.ChunkTiles < 0 {
		return c, fmt.Errorf("blis: invalid config %+v", c)
	}
	if c.Kernel.MR < 1 || c.Kernel.NR < 1 {
		return c, fmt.Errorf("blis: invalid kernel shape %dx%d", c.Kernel.MR, c.Kernel.NR)
	}
	if c.Popcount < PopcountAuto || c.Popcount > PopcountVector {
		return c, fmt.Errorf("blis: invalid popcount strategy %d", int(c.Popcount))
	}
	// Blocks must hold at least one register tile.
	if c.MC < c.Kernel.MR {
		c.MC = c.Kernel.MR
	}
	if c.NC < c.Kernel.NR {
		c.NC = c.Kernel.NR
	}
	return c, nil
}

// TileEpilogue is the fused-epilogue hook of GemmEpilogue/SyrkEpilogue
// (and their masked variants): the driver invokes it once per finished
// mm×nn register tile, immediately after the tile's final rank-k update,
// from the worker goroutine that computed it. tile addresses the finished
// counts with row stride ldt in C entries — for the plain kernel the cell
// (r, c) of the tile is tile[r*ldt+c]; for the masked kernel each C entry
// is four uint32 counts and cell (r, c, k) is tile[(r*ldt+c)*4+k]. (i0,
// j0) are the tile's global output coordinates. worker identifies the
// calling worker (0 ≤ worker < Config.Threads) so implementations can use
// per-worker state without locking; distinct calls may touch the same
// output rows (different column ranges), so writes the hook performs must
// be disjoint by (i0, j0) — which they are when it writes only its own
// tile's cells, plus SYRK mirror cells owned by that tile.
type TileEpilogue func(worker int, tile []uint32, ldt, i0, j0, mm, nn int)

// Gemm computes the full m×n count matrix between the SNPs of a and b:
// c[i*ldc+j] += dot(a.SNP(i), b.SNP(j)). The matrices must have the same
// sample count. c must have at least (a.SNPs-1)*ldc + b.SNPs entries.
func Gemm(cfg Config, a, b *bitmat.Matrix, c []uint32, ldc int) error {
	cfg, err := cfg.normalize()
	if err != nil {
		return err
	}
	if a.Samples != b.Samples {
		return fmt.Errorf("blis: sample mismatch %d vs %d", a.Samples, b.Samples)
	}
	if err := checkC(a.SNPs, b.SNPs, c, ldc); err != nil {
		return err
	}
	return drive(cfg, a, b, c, ldc, false, nil)
}

// GemmEpilogue runs the blocked GEMM of Gemm fused: no count matrix is
// materialized — counts accumulate in pooled per-job scratch and every
// finished register tile is handed to epi while cache-hot. Callers
// convert counts to their final representation (LD measures, summaries)
// inside epi; the dense m×n uint32 intermediate never exists.
func GemmEpilogue(cfg Config, a, b *bitmat.Matrix, epi TileEpilogue) error {
	cfg, err := cfg.normalize()
	if err != nil {
		return err
	}
	if a.Samples != b.Samples {
		return fmt.Errorf("blis: sample mismatch %d vs %d", a.Samples, b.Samples)
	}
	if epi == nil {
		return fmt.Errorf("blis: nil epilogue")
	}
	return drive(cfg, a, b, nil, b.SNPs, false, epi)
}

// Syrk computes the upper triangle (j >= i) of the symmetric count matrix
// GᵀG of a single genomic matrix — the rank-k update of Section III-B.
// Off-diagonal blocks strictly below the diagonal are skipped entirely;
// diagonal blocks are computed in full (their lower halves receive correct
// values as a by-product). With mirror set, the strict lower triangle is
// filled from the upper triangle afterwards.
func Syrk(cfg Config, a *bitmat.Matrix, c []uint32, ldc int, mirror bool) error {
	cfg, err := cfg.normalize()
	if err != nil {
		return err
	}
	if err := checkC(a.SNPs, a.SNPs, c, ldc); err != nil {
		return err
	}
	if err := drive(cfg, a, a, c, ldc, true, nil); err != nil {
		return err
	}
	if mirror {
		mirrorThreads(c, a.SNPs, ldc, cfg.Threads)
	}
	return nil
}

// SyrkEpilogue runs the blocked SYRK of Syrk fused (see GemmEpilogue):
// epi receives every register tile the triangle sweep computes — tiles
// with i0 < j0+nr, i.e. the upper triangle plus the diagonal-crossing
// tiles, whose below-diagonal cells hold correct counts as a by-product.
// There is no count mirror; epilogues that need the lower triangle mirror
// their own converted values (bit-safe for the LD measures because the
// denominator grouping is symmetric under SNP exchange).
func SyrkEpilogue(cfg Config, a *bitmat.Matrix, epi TileEpilogue) error {
	cfg, err := cfg.normalize()
	if err != nil {
		return err
	}
	if epi == nil {
		return fmt.Errorf("blis: nil epilogue")
	}
	return drive(cfg, a, a, nil, a.SNPs, true, epi)
}

// Mirror copies the strict upper triangle of an n×n matrix onto the strict
// lower triangle. Large matrices are mirrored in parallel (up to
// GOMAXPROCS goroutines); use Syrk's mirror argument to bound the
// parallelism by Config.Threads instead.
func Mirror(c []uint32, n, ldc int) {
	mirrorThreads(c, n, ldc, runtime.GOMAXPROCS(0))
}

func mirrorThreads(c []uint32, n, ldc, threads int) {
	forEachTriangleSpan(n, threads, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := 0; j < i; j++ {
				c[i*ldc+j] = c[j*ldc+i]
			}
		}
	})
}

// mirrorParallelMin is the matrix order below which mirroring runs on the
// calling goroutine: an n² pointer-chase over less than ~a megabyte is
// cheaper than any fork/join.
const mirrorParallelMin = 512

// forEachTriangleSpan partitions rows [1, n) into at most parts contiguous
// spans of roughly equal strict-lower-triangle area (row i holds i cells,
// so span boundaries follow a square-root law) and runs fn on each span,
// concurrently when it helps.
func forEachTriangleSpan(n, parts int, fn func(lo, hi int)) {
	if n < 2 {
		return
	}
	if parts > n-1 {
		parts = n - 1
	}
	if parts <= 1 || n < mirrorParallelMin {
		fn(1, n)
		return
	}
	spans := make([][2]int, 0, parts)
	lo := 1
	for p := 1; p <= parts && lo < n; p++ {
		hi := n
		if p < parts {
			// Rows [1, hi) hold hi(hi−1)/2 ≈ hi²/2 of the n(n−1)/2 total;
			// give each span an equal share of the area.
			hi = isqrt(int64(n) * int64(n-1) * int64(p) / int64(parts))
			if hi <= lo {
				hi = lo + 1
			}
			if hi > n {
				hi = n
			}
		}
		spans = append(spans, [2]int{lo, hi})
		lo = hi
	}
	var wg sync.WaitGroup
	for _, sp := range spans[1:] {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(sp[0], sp[1])
	}
	fn(spans[0][0], spans[0][1])
	wg.Wait()
}

// isqrt returns ⌊√x⌋ for non-negative x.
func isqrt(x int64) int {
	r := int64(math.Sqrt(float64(x)))
	for r*r > x {
		r--
	}
	for (r+1)*(r+1) <= x {
		r++
	}
	return int(r)
}

func checkC(m, n int, c []uint32, ldc int) error {
	if ldc < n {
		return fmt.Errorf("blis: ldc %d < n %d", ldc, n)
	}
	if m > 0 && len(c) < (m-1)*ldc+n {
		return fmt.Errorf("blis: C has %d entries, need %d", len(c), (m-1)*ldc+n)
	}
	return nil
}

// drive instantiates the slab-pipelined parallel driver (parallel.go) for
// the plain count kernel, selecting the AND-count engine by the resolved
// popcount strategy: the interleaved scalar micro-kernel, or the batched
// run-packed family (dispatch.go). With syrk set, register tiles strictly
// below the diagonal are skipped and — when the column block spans the
// whole matrix and the register tile is square — the packed B slab
// doubles as the packed A panels.
func drive(cfg Config, a, b *bitmat.Matrix, c []uint32, ldc int, syrk bool, epi TileEpilogue) error {
	k := cfg.Kernel
	strat := resolvePopcount(cfg.Popcount, a.Words)
	var ops tileOps
	if strat == PopcountScalar {
		ops = scalarOps(k, a, b)
		stats.setVariant(k.Name, strategyTag(strat))
	} else {
		ops = runOps(k, a, b, strat)
		stats.setVariant(k.Name+"-runs", strategyTag(strat))
	}
	return driveTiles(cfg, ops, a.SNPs, b.SNPs, a.Words, c, ldc, syrk, epi)
}

// scalarOps is the original interleaved-panel tileOps: one hardware
// POPCNT per word-pair inside the register-blocked micro-kernel. It is
// the short-k dispatch target and the bit-exactness oracle the batched
// family is tested against.
func scalarOps(k kernel.Kernel, a, b *bitmat.Matrix) tileOps {
	mr, nr := k.MR, k.NR
	return tileOps{
		mr: mr, nr: nr, stride: 1, cells: 1,
		popcPerWord: 1, popcFold: 1,
		shareable: a == b && mr == nr,
		packA: func(dst []uint64, snp, count, pc, kc int) {
			kernel.PackPanel(dst, a, snp, count, mr, pc, kc)
		},
		packB: func(dst []uint64, snp, count, pc, kc int) {
			kernel.PackPanel(dst, b, snp, count, nr, pc, kc)
		},
		full: func(kc int, aw, bw []uint64, c []uint32, i0, j0, ldc int) {
			k.Fn(kc, aw, bw, c[i0*ldc+j0:], ldc)
		},
		fringe: func(kc int, aw, bw []uint64, tile, c []uint32, i0, j0, mm, nn, ldc int) {
			// Compute into scratch, scatter the valid region.
			for t := range tile {
				tile[t] = 0
			}
			k.Fn(kc, aw, bw, tile, nr)
			for i := 0; i < mm; i++ {
				row := c[(i0+i)*ldc+j0:]
				for j := 0; j < nn; j++ {
					row[j] += tile[i*nr+j]
				}
			}
		},
	}
}

// Reference computes the count matrix with plain per-pair word loops; it is
// the oracle the blocked drivers are tested against and the "unblocked
// vector kernel" the ablation benchmarks compare with.
func Reference(a, b *bitmat.Matrix, c []uint32, ldc int) error {
	if a.Samples != b.Samples {
		return fmt.Errorf("blis: sample mismatch %d vs %d", a.Samples, b.Samples)
	}
	if err := checkC(a.SNPs, b.SNPs, c, ldc); err != nil {
		return err
	}
	for i := 0; i < a.SNPs; i++ {
		ai := a.SNP(i)
		for j := 0; j < b.SNPs; j++ {
			bj := b.SNP(j)
			var n uint32
			for w := range ai {
				n += popc(ai[w] & bj[w])
			}
			c[i*ldc+j] += n
		}
	}
	return nil
}
