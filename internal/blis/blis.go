// Package blis implements the GotoBLAS/BLIS layered blocking approach of
// Section III of the paper for the haplotype-count "GEMM": given genomic
// matrices whose columns are bit-packed SNPs, it computes
//
//	C[i,j] += Σ_l POPCNT(A.SNP(i)[l] & B.SNP(j)[l])
//
// using the canonical five-loop structure: the n dimension is partitioned
// into NC-wide column blocks (loop 5), the k dimension (sample words) into
// KC-deep slabs (loop 4, the rank-k updates that the paper notes genomic
// matrices already have the right shape for), the m dimension into MC-tall
// row blocks (loop 3), and each block-panel multiplication is swept by the
// register-blocked micro-kernel (loops 2 and 1). B blocks are packed once
// per (jc, pc) slab and shared by all workers; each worker packs its own A
// block. Fringe tiles are handled by zero-padding panels to full MR/NR and
// scattering through a scratch tile, so the micro-kernel never reads or
// writes out of bounds.
package blis

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/kernel"
)

// Config carries the cache blocking parameters and parallelism degree.
// MC and NC are in SNPs; KC is in 64-bit words of the sample dimension.
type Config struct {
	MC int // rows of A packed per L2-resident block
	NC int // columns of B packed per slab
	KC int // words per rank-k slab (KC*8 bytes of each SNP)
	// Kernel is the register-blocked micro-kernel (Default if zero).
	Kernel kernel.Kernel
	// Threads is the number of worker goroutines (GOMAXPROCS if 0).
	Threads int
}

// DefaultConfig returns blocking parameters sized for common x86 cache
// hierarchies: the B micro-panel (KC·NR words) stays L1-resident, the
// packed A block (MC·KC words) L2-resident.
func DefaultConfig() Config {
	return Config{
		MC:     128,
		NC:     4096,
		KC:     256, // 2 KiB per SNP slab
		Kernel: kernel.Default,
	}
}

// normalize fills zero fields with defaults and validates the rest.
func (c Config) normalize() (Config, error) {
	d := DefaultConfig()
	if c.MC == 0 {
		c.MC = d.MC
	}
	if c.NC == 0 {
		c.NC = d.NC
	}
	if c.KC == 0 {
		c.KC = d.KC
	}
	if c.Kernel.Fn == nil {
		c.Kernel = d.Kernel
	}
	if c.Threads == 0 {
		c.Threads = runtime.GOMAXPROCS(0)
	}
	if c.MC < 1 || c.NC < 1 || c.KC < 1 || c.Threads < 1 {
		return c, fmt.Errorf("blis: invalid config %+v", c)
	}
	if c.Kernel.MR < 1 || c.Kernel.NR < 1 {
		return c, fmt.Errorf("blis: invalid kernel shape %dx%d", c.Kernel.MR, c.Kernel.NR)
	}
	// Blocks must hold at least one register tile.
	if c.MC < c.Kernel.MR {
		c.MC = c.Kernel.MR
	}
	if c.NC < c.Kernel.NR {
		c.NC = c.Kernel.NR
	}
	return c, nil
}

// Gemm computes the full m×n count matrix between the SNPs of a and b:
// c[i*ldc+j] += dot(a.SNP(i), b.SNP(j)). The matrices must have the same
// sample count. c must have at least (a.SNPs-1)*ldc + b.SNPs entries.
func Gemm(cfg Config, a, b *bitmat.Matrix, c []uint32, ldc int) error {
	cfg, err := cfg.normalize()
	if err != nil {
		return err
	}
	if a.Samples != b.Samples {
		return fmt.Errorf("blis: sample mismatch %d vs %d", a.Samples, b.Samples)
	}
	if err := checkC(a.SNPs, b.SNPs, c, ldc); err != nil {
		return err
	}
	return drive(cfg, a, b, c, ldc, false)
}

// Syrk computes the upper triangle (j >= i) of the symmetric count matrix
// GᵀG of a single genomic matrix — the rank-k update of Section III-B.
// Off-diagonal blocks strictly below the diagonal are skipped entirely;
// diagonal blocks are computed in full (their lower halves receive correct
// values as a by-product). With mirror set, the strict lower triangle is
// filled from the upper triangle afterwards.
func Syrk(cfg Config, a *bitmat.Matrix, c []uint32, ldc int, mirror bool) error {
	cfg, err := cfg.normalize()
	if err != nil {
		return err
	}
	if err := checkC(a.SNPs, a.SNPs, c, ldc); err != nil {
		return err
	}
	if err := drive(cfg, a, a, c, ldc, true); err != nil {
		return err
	}
	if mirror {
		Mirror(c, a.SNPs, ldc)
	}
	return nil
}

// Mirror copies the strict upper triangle of an n×n matrix onto the strict
// lower triangle.
func Mirror(c []uint32, n, ldc int) {
	for i := 1; i < n; i++ {
		for j := 0; j < i; j++ {
			c[i*ldc+j] = c[j*ldc+i]
		}
	}
}

func checkC(m, n int, c []uint32, ldc int) error {
	if ldc < n {
		return fmt.Errorf("blis: ldc %d < n %d", ldc, n)
	}
	if m > 0 && len(c) < (m-1)*ldc+n {
		return fmt.Errorf("blis: C has %d entries, need %d", len(c), (m-1)*ldc+n)
	}
	return nil
}

// drive runs the five-loop blocked multiplication. With syrk set, (ic, jc)
// row blocks entirely below the current column block are skipped.
func drive(cfg Config, a, b *bitmat.Matrix, c []uint32, ldc int, syrk bool) error {
	m, n, kw := a.SNPs, b.SNPs, a.Words
	if m == 0 || n == 0 {
		return nil
	}
	if kw == 0 {
		return nil // zero samples: all counts stay zero
	}
	mr, nr := cfg.Kernel.MR, cfg.Kernel.NR
	// Buffers are sized by the *effective* slab depth, not the nominal
	// KC: small-k problems (few words per SNP) must not pay a KC-sized
	// allocation.
	kcMax := min(cfg.KC, kw)

	// One packed-B slab shared by all workers, repacked per (jc, pc).
	nc0 := min(cfg.NC, n)
	// Round the panel count up so fringe packing has room.
	bpanels := (nc0 + nr - 1) / nr
	bpack := make([]uint64, bpanels*nr*kcMax)

	workers := cfg.Threads
	type job struct{ ic, mc int }
	var (
		wg     sync.WaitGroup
		cursor atomic.Int64
		jobs   []job
	)
	apacks := make([][]uint64, workers)
	tiles := make([][]uint32, workers)
	for w := range apacks {
		apanels := (min(cfg.MC, m) + mr - 1) / mr
		apacks[w] = make([]uint64, apanels*mr*kcMax)
		tiles[w] = make([]uint32, mr*nr)
	}

	for jc := 0; jc < n; jc += cfg.NC {
		nc := min(cfg.NC, n-jc)
		// Row blocks for this column block. Under syrk, a row block is
		// needed only if it intersects or precedes the column block's
		// upper-triangle span: skip when ic >= jc+nc ⇒ every (i,j) in the
		// block has i > j.
		jobs = jobs[:0]
		for ic := 0; ic < m; ic += cfg.MC {
			if syrk && ic >= jc+nc {
				continue
			}
			jobs = append(jobs, job{ic, min(cfg.MC, m-ic)})
		}
		if len(jobs) == 0 {
			continue
		}
		for pc := 0; pc < kw; pc += cfg.KC {
			kc := min(cfg.KC, kw-pc)
			// Pack the B slab once.
			packB(cfg, b, bpack, kcMax, jc, nc, pc, kc)

			cursor.Store(0)
			nw := min(workers, len(jobs))
			wg.Add(nw)
			for w := 0; w < nw; w++ {
				go func(w int) {
					defer wg.Done()
					for {
						idx := int(cursor.Add(1)) - 1
						if idx >= len(jobs) {
							return
						}
						jb := jobs[idx]
						runBlock(cfg, a, kcMax, jb.ic, jb.mc, jc, nc, pc, kc,
							apacks[w], bpack, tiles[w], c, ldc, syrk)
					}
				}(w)
			}
			wg.Wait()
		}
	}
	return nil
}

// packB packs the (jc, pc) slab of B into nr-wide interleaved panels with
// panel stride nr·kcMax.
func packB(cfg Config, b *bitmat.Matrix, bpack []uint64, kcMax, jc, nc, pc, kc int) {
	nr := cfg.Kernel.NR
	for jr := 0; jr < nc; jr += nr {
		pw := bpack[(jr/nr)*nr*kcMax:]
		kernel.PackPanel(pw, b, jc+jr, min(nr, nc-jr), nr, pc, kc)
	}
}

// runBlock packs one MC×KC block of A and sweeps it against the packed B
// slab with the micro-kernel (loops 2 and 1 of the BLIS structure).
func runBlock(cfg Config, a *bitmat.Matrix, kcMax, ic, mc, jc, nc, pc, kc int,
	apack, bpack []uint64, tile []uint32, c []uint32, ldc int, syrk bool) {
	mr, nr := cfg.Kernel.MR, cfg.Kernel.NR
	for ir := 0; ir < mc; ir += mr {
		kernel.PackPanel(apack[(ir/mr)*mr*kcMax:], a, ic+ir, min(mr, mc-ir), mr, pc, kc)
	}
	for jr := 0; jr < nc; jr += nr {
		bw := bpack[(jr/nr)*nr*kcMax : (jr/nr)*nr*kcMax+kc*nr]
		for ir := 0; ir < mc; ir += mr {
			i0, j0 := ic+ir, jc+jr
			// Under syrk, skip register tiles strictly below the diagonal.
			if syrk && i0 >= j0+nr {
				continue
			}
			aw := apack[(ir/mr)*mr*kcMax : (ir/mr)*mr*kcMax+kc*mr]
			mm, nn := min(mr, mc-ir), min(nr, nc-jr)
			if mm == mr && nn == nr {
				cfg.Kernel.Fn(kc, aw, bw, c[i0*ldc+j0:], ldc)
				continue
			}
			// Fringe tile: compute into scratch, scatter the valid region.
			for t := range tile {
				tile[t] = 0
			}
			cfg.Kernel.Fn(kc, aw, bw, tile, nr)
			for i := 0; i < mm; i++ {
				row := c[(i0+i)*ldc+j0:]
				for j := 0; j < nn; j++ {
					row[j] += tile[i*nr+j]
				}
			}
		}
	}
}

// Reference computes the count matrix with plain per-pair word loops; it is
// the oracle the blocked drivers are tested against and the "unblocked
// vector kernel" the ablation benchmarks compare with.
func Reference(a, b *bitmat.Matrix, c []uint32, ldc int) error {
	if a.Samples != b.Samples {
		return fmt.Errorf("blis: sample mismatch %d vs %d", a.Samples, b.Samples)
	}
	if err := checkC(a.SNPs, b.SNPs, c, ldc); err != nil {
		return err
	}
	for i := 0; i < a.SNPs; i++ {
		ai := a.SNP(i)
		for j := 0; j < b.SNPs; j++ {
			bj := b.SNP(j)
			var n uint32
			for w := range ai {
				n += popc(ai[w] & bj[w])
			}
			c[i*ldc+j] += n
		}
	}
	return nil
}
