package blis

import (
	"math/rand"
	"sync"
	"testing"

	"ldgemm/internal/popcount"
)

// explicitStrategies is every engine an operator can force; Auto is
// covered separately because its resolution depends on k.
var explicitStrategies = []PopcountStrategy{PopcountScalar, PopcountCSA, PopcountVector}

// dispatchShapes stresses the batched family at its boundaries: m, n not
// multiples of MR/NR, and sample words not multiples of the fold widths
// (16 for CSA, 8/4 for the SIMD tiers). Samples are in bits; 64 samples
// = 1 word.
var dispatchShapes = [][3]int{
	{1, 1, 64},
	{1, 5, 320},      // 5 words: below every fold width
	{5, 3, 1024},     // 16 words: exactly one CSA fold
	{7, 13, 1088},    // 17 words: fold + 1
	{33, 47, 2112},   // 33 words: past the k-dispatch threshold, odd
	{66, 67, 4288},   // 67 words
	{13, 9, 64 * 67}, // fringe rows/cols with many slabs
}

func TestGemmStrategiesMatchScalarOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	for _, sh := range dispatchShapes {
		m, n, samples := sh[0], sh[1], sh[2]
		a := randomMatrix(rng, m, samples)
		b := randomMatrix(rng, n, samples)
		ldc := n + rng.Intn(3)
		want := make([]uint32, m*ldc)
		if err := Reference(a, b, want, ldc); err != nil {
			t.Fatal(err)
		}
		for _, strat := range explicitStrategies {
			for _, cfg := range []Config{
				{Popcount: strat},
				{Popcount: strat, MC: 5, NC: 7, KC: 3, Threads: 3},
				{Popcount: strat, MC: 8, NC: 16, KC: 7, Threads: 2, ChunkTiles: 1},
			} {
				got := make([]uint32, m*ldc)
				if err := Gemm(cfg, a, b, got, ldc); err != nil {
					t.Fatalf("shape %v %v: %v", sh, strat, err)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("shape %v strategy %v cfg %+v: mismatch at %d: %d != %d",
							sh, strat, cfg, i, got[i], want[i])
					}
				}
			}
		}
	}
}

func TestSyrkStrategiesMatchScalarOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for _, sh := range dispatchShapes {
		n, samples := sh[0]+sh[1], sh[2]
		g := randomMatrix(rng, n, samples)
		want := make([]uint32, n*n)
		if err := Reference(g, g, want, n); err != nil {
			t.Fatal(err)
		}
		for _, strat := range explicitStrategies {
			// Defaults keep NC wide, exercising the pack-sharing path the
			// run layout must preserve; the small config forces fringe
			// tiles and multi-slab groups.
			for _, cfg := range []Config{
				{Popcount: strat},
				{Popcount: strat, MC: 4, NC: 8, KC: 5, Threads: 3, ChunkTiles: 1},
			} {
				got := make([]uint32, n*n)
				if err := Syrk(cfg, g, got, n, true); err != nil {
					t.Fatalf("n=%d %v: %v", n, strat, err)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("n=%d strategy %v: mismatch at %d: %d != %d",
							n, strat, i, got[i], want[i])
					}
				}
			}
		}
	}
}

func TestMaskedStrategiesMatchScalarOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for _, sh := range dispatchShapes {
		m, n, samples := sh[0], sh[1], sh[2]
		a, ka := randomMasked(rng, m, samples)
		b, kb := randomMasked(rng, n, samples)
		want := make([]uint32, m*n*4)
		if err := MaskedReference(a, b, ka, kb, want, n); err != nil {
			t.Fatal(err)
		}
		for _, strat := range explicitStrategies {
			for _, cfg := range []Config{
				{Popcount: strat},
				{Popcount: strat, MC: 4, NC: 6, KC: 5, Threads: 2, ChunkTiles: 1},
			} {
				got := make([]uint32, m*n*4)
				if err := MaskedGemm(cfg, a, b, ka, kb, got, n); err != nil {
					t.Fatalf("shape %v %v: %v", sh, strat, err)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("shape %v strategy %v: mismatch at %d: %d != %d",
							sh, strat, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestBatchedMultiSlabGroups shrinks maxGroupWords so the batched family
// runs a real multi-group pipeline — accumulation across slab groups
// through the double buffer must stay exact.
func TestBatchedMultiSlabGroups(t *testing.T) {
	saved := maxGroupWords
	maxGroupWords = 512
	defer func() { maxGroupWords = saved }()

	rng := rand.New(rand.NewSource(63))
	m, n, samples := 37, 41, 64*70 // many KC slabs per group budget
	a := randomMatrix(rng, m, samples)
	b := randomMatrix(rng, n, samples)
	want := make([]uint32, m*n)
	if err := Reference(a, b, want, n); err != nil {
		t.Fatal(err)
	}
	for _, strat := range explicitStrategies {
		got := make([]uint32, m*n)
		cfg := Config{Popcount: strat, KC: 8, Threads: 3}
		if err := Gemm(cfg, a, b, got, n); err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%v: mismatch at %d: %d != %d", strat, i, got[i], want[i])
			}
		}
	}
}

// TestAutoDispatchPicksByK pins the k-dispatch rule: short k runs the
// scalar kernel, long k the batched family (when a SIMD tier exists),
// observable through the driver's variant stats.
func TestAutoDispatchPicksByK(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	run := func(words int) DriverStats {
		g := randomMatrix(rng, 16, words*64)
		c := make([]uint32, 16*16)
		if err := Gemm(Config{}, g, g, c, 16); err != nil {
			t.Fatal(err)
		}
		return ReadStats()
	}

	short := run(CSAMinWords / 8) // k = 4 words on the default threshold
	if short.Variant != "4x4" || short.Popcount != "scalar" {
		t.Fatalf("short k dispatched to %q/%q, want 4x4/scalar", short.Variant, short.Popcount)
	}

	before := ReadStats().PopcountsAvoided
	long := run(CSAMinWords * 2)
	if !popcount.HasVector() {
		if long.Variant != "4x4" || long.Popcount != "scalar" {
			t.Skipf("no SIMD tier; long k stays scalar (%q/%q)", long.Variant, long.Popcount)
		}
		return
	}
	if long.Variant != "4x4-runs" || long.Popcount != "vector-"+popcount.VectorName() {
		t.Fatalf("long k dispatched to %q/%q, want 4x4-runs/vector-%s",
			long.Variant, long.Popcount, popcount.VectorName())
	}
	if long.PopcountsAvoided <= before {
		t.Fatal("batched call did not grow PopcountsAvoided")
	}
}

// TestVectorDegradesWithoutSIMD pins the explicit-vector fallback: a host
// with no SIMD tier must land on the CSA engine, never fail.
func TestVectorDegradesWithoutSIMD(t *testing.T) {
	got := resolvePopcount(PopcountVector, 1024)
	if popcount.HasVector() {
		if got != PopcountVector {
			t.Fatalf("resolvePopcount(Vector) = %v with SIMD available", got)
		}
	} else if got != PopcountCSA {
		t.Fatalf("resolvePopcount(Vector) = %v without SIMD, want CSA", got)
	}
}

func TestParsePopcountRoundTrip(t *testing.T) {
	for _, s := range []PopcountStrategy{PopcountAuto, PopcountScalar, PopcountCSA, PopcountVector} {
		got, err := ParsePopcount(s.String())
		if err != nil || got != s {
			t.Fatalf("ParsePopcount(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParsePopcount("simd"); err == nil {
		t.Fatal("unknown strategy accepted")
	}
	if got, err := ParsePopcount(""); err != nil || got != PopcountAuto {
		t.Fatalf("empty strategy = %v, %v; want auto", got, err)
	}
}

// TestConcurrentBatchedSyrk mirrors the PR 4 shared-arena race exercise
// with the batched family forced: 8 workers drive Syrk and MaskedSyrk
// through the vector engine concurrently, all sharing the arena pool.
func TestConcurrentBatchedSyrk(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	n, samples := 70, 64 * 40
	g := randomMatrix(rng, n, samples)
	mg, mk := randomMasked(rng, n, samples)
	want := make([]uint32, n*n)
	if err := Reference(g, g, want, n); err != nil {
		t.Fatal(err)
	}
	mwant := make([]uint32, n*n*4)
	if err := MaskedReference(mg, mg, mk, mk, mwant, n); err != nil {
		t.Fatal(err)
	}

	cfg := Config{Popcount: PopcountVector, MC: 16, NC: 32, KC: 7, Threads: 3, ChunkTiles: 1}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for call := 0; call < 8; call++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			got := make([]uint32, n*n)
			if err := Syrk(cfg, g, got, n, true); err != nil {
				errs <- err
				return
			}
			for i := range got {
				if got[i] != want[i] {
					t.Errorf("concurrent batched Syrk mismatch at %d", i)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			got := make([]uint32, n*n*4)
			if err := MaskedSyrk(cfg, mg, mk, got, n); err != nil {
				errs <- err
				return
			}
			MirrorMasked(got, n, n)
			for i := range got {
				if got[i] != mwant[i] {
					t.Errorf("concurrent batched MaskedSyrk mismatch at %d", i)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestBatchedEpilogueFusion checks the batched family composes with the
// fused tile epilogue: per-tile counts handed to the hook must equal the
// materialized matrix.
func TestBatchedEpilogueFusion(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	n, samples := 45, 64*36
	g := randomMatrix(rng, n, samples)
	want := make([]uint32, n*n)
	if err := Reference(g, g, want, n); err != nil {
		t.Fatal(err)
	}
	for _, strat := range explicitStrategies {
		got := make([]uint32, n*n)
		var mu sync.Mutex
		cfg := Config{Popcount: strat, MC: 8, NC: 16, KC: 9, Threads: 3}
		err := SyrkEpilogue(cfg, g, func(_ int, tile []uint32, ldt, i0, j0, mm, nn int) {
			mu.Lock()
			defer mu.Unlock()
			for i := 0; i < mm; i++ {
				for j := 0; j < nn; j++ {
					got[(i0+i)*n+j0+j] = tile[i*ldt+j]
				}
			}
		})
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				if got[i*n+j] != want[i*n+j] {
					t.Fatalf("%v: fused mismatch at (%d,%d): %d != %d",
						strat, i, j, got[i*n+j], want[i*n+j])
				}
			}
		}
	}
}
