package blis

import (
	"context"
	"time"
)

// The slab-pipelined parallel driver. Both the plain and the masked
// five-loop drivers are instances of the same structure, differing only in
// panel layout (one word per (SNP, sample-word) versus interleaved
// (value, mask) pairs), micro-kernel, and C-cell width (1 count versus the
// four Section VII counts). tileOps captures those differences so drive
// logic — blocking, packing, scheduling, the triangle skip — lives here
// once.
//
// Scheduling replaces the original fork/join-per-slab design:
//
//   - Workers are persistent for the whole call (workerPool) and pull
//     fine-grained tile-range jobs from an atomic cursor instead of whole
//     MC row blocks, so the triangular SYRK workload stays balanced.
//   - B-slab packing is itself a parallel phase over (slab, panel) pairs.
//   - Slabs are processed in groups sized to a packing budget; while a
//     group is being computed, the next group's B panels are packed into
//     the other half of a double buffer by the same job queue, so there is
//     a single wait per slab group rather than a pack barrier plus a
//     compute barrier per slab.
//   - Under SYRK with a square register tile, the packed B slab of a
//     column block that spans the whole matrix is byte-identical to the
//     packed A slab, so A packing is skipped entirely and the micro-kernel
//     reads both panels out of the shared B buffer.

// tileOps specializes the unified driver for one kernel family.
type tileOps struct {
	mr, nr int
	// stride is packed uint64 words per (SNP, sample-word): 1 for the
	// plain kernel, 2 for the masked (value, mask) layout.
	stride int
	// cells is uint32 outputs per C entry: 1 plain, 4 masked.
	cells int
	// popcPerWord is the single-word popcounts the scalar kernel would
	// execute per (cell, word) triple (1 plain, 4 masked); popcFold is
	// how many of those the selected engine folds into one popcount
	// (1 scalar, 16 CSA, the SIMD lane width vectorized). Together they
	// feed the popcounts-avoided counter.
	popcPerWord int
	popcFold    int
	// shareable reports that A and B are the same matrix with a square
	// register tile, so packed row panels equal packed column panels.
	shareable bool
	// packA/packB pack one micro-panel over the word range [pc, pc+kc).
	packA func(dst []uint64, snp, count, pc, kc int)
	packB func(dst []uint64, snp, count, pc, kc int)
	// full applies the micro-kernel to a full tile at (i0, j0) in C.
	full func(kc int, aw, bw []uint64, c []uint32, i0, j0, ldc int)
	// fringe computes a partial mm×nn tile through the scratch tile.
	fringe func(kc int, aw, bw []uint64, tile, c []uint32, i0, j0, mm, nn, ldc int)
}

// tileJob is one scheduler chunk: micro-tile columns [jr0, jr1) of row
// block [ic, ic+mc), across every slab of the current slab group. Chunk
// boundaries are cost-adapted (see buildTileJobs) so jobs near the SYRK
// diagonal, which hold fewer active tiles, cover more columns. Under a
// fused epilogue, off is the job's cell offset into the per-column-block
// count scratch; jobs are stable across the slab groups of one column
// block, so the offset identifies the same accumulator region in every
// group.
type tileJob struct {
	ic, mc, jr0, jr1 int
	off              int
}

// maxGroupWords bounds the packed-B storage of one slab group (4 Mi words
// = 32 MiB); it controls how many KC-deep slabs are packed per phase. A
// variable rather than a constant so tests can shrink it to force
// multi-group pipelines on small inputs.
var maxGroupWords = 4 << 20

// chunksPerWorker is the default work-queue overpartition factor: the
// target chunk cost is totalTiles/(workers·chunksPerWorker) unless
// Config.ChunkTiles overrides it.
const chunksPerWorker = 4

func roundUp(x, m int) int { return (x + m - 1) / m * m }

// activeTiles counts the micro-tiles of micro-column jr within row block
// [ic, ic+mc) that survive the SYRK triangle skip (i0 < j0+nr).
func activeTiles(ic, mc, jc, jr, mr, nr int, syrk bool) int {
	apanels := (mc + mr - 1) / mr
	if !syrk {
		return apanels
	}
	span := jc + jr + nr - ic
	if span <= 0 {
		return 0
	}
	if span > mc {
		span = mc
	}
	return (span + mr - 1) / mr
}

// buildTileJobs chunks the active micro-tiles of column block [jc, jc+nc)
// into jobs of roughly target cost each, appending to jobs.
func buildTileJobs(jobs []tileJob, m, jc, nc, mcBlk, mr, nr, target int, syrk bool) []tileJob {
	if target < 1 {
		target = 1
	}
	for ic := 0; ic < m; ic += mcBlk {
		mc := min(mcBlk, m-ic)
		cur := tileJob{ic: ic, mc: mc, jr0: -1}
		acc := 0
		for jr := 0; jr < nc; jr += nr {
			t := activeTiles(ic, mc, jc, jr, mr, nr, syrk)
			if t == 0 {
				continue // tiles activate monotonically in jr
			}
			if cur.jr0 < 0 {
				cur.jr0 = jr
			}
			acc += t
			if acc >= target {
				cur.jr1 = jr + nr
				jobs = append(jobs, cur)
				cur = tileJob{ic: ic, mc: mc, jr0: -1}
				acc = 0
			}
		}
		if cur.jr0 >= 0 {
			cur.jr1 = nc
			jobs = append(jobs, cur)
		}
	}
	return jobs
}

// countTiles sums the active micro-tiles of one column block.
func countTiles(m, jc, nc, mcBlk, mr, nr int, syrk bool) int {
	total := 0
	for ic := 0; ic < m; ic += mcBlk {
		mc := min(mcBlk, m-ic)
		for jr := 0; jr < nc; jr += nr {
			total += activeTiles(ic, mc, jc, jr, mr, nr, syrk)
		}
	}
	return total
}

// tileDriver carries the per-call invariants of driveTiles.
type tileDriver struct {
	cfg       Config
	ops       tileOps
	m, n, kw  int
	c         []uint32
	ldc       int
	syrk      bool
	mcBlk     int
	kcMax     int
	slabWords int // packed words of one slab at the widest column block
	apanelLen int // packed words of one A micro-panel per slab
	// epi, when non-nil, is the fused epilogue: counts accumulate in
	// per-job scratch instead of a caller matrix, and finished tiles are
	// handed to the hook during the final slab group while still hot.
	epi     TileEpilogue
	scratch []uint32 // per-column-block count scratch (epi mode only)
}

// ctxErr reports the context's error, tolerating a nil context.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// driveTiles runs the five-loop blocked multiplication for any tileOps.
//
// Cancellation is cooperative: a watcher goroutine trips the pool's stop
// flag the moment cfg.Ctx is done, workers abandon their phase at the
// next job boundary, and the driver observes the context after every
// phase wait — so a cancelled call returns ctx.Err() within one
// slab-group phase, with its arena still recycled through the pool.
//
// With epi non-nil the call runs fused: c is ignored (callers pass nil),
// every job accumulates its counts in a slice of the per-column-block
// scratch buffer, and during the final slab group the worker that
// finishes a job immediately walks the job's register tiles and hands
// each one to epi — the counts are at most one job region behind the
// kernel's last store, so the conversion reads cache-resident data and
// the full m×n count matrix never exists.
func driveTiles(cfg Config, ops tileOps, m, n, kw int, c []uint32, ldc int, syrk bool, epi TileEpilogue) error {
	if m == 0 || n == 0 || kw == 0 {
		return nil
	}
	ctx := cfg.Ctx
	if err := ctxErr(ctx); err != nil {
		stats.cancelled.Add(1)
		return err
	}
	start := time.Now()
	mr, nr := ops.mr, ops.nr
	// Row and column blocks are rounded to whole micro-tiles so block
	// boundaries always align with panel boundaries (required for the
	// SYRK pack-sharing path, and harmless otherwise).
	mcBlk := roundUp(max(cfg.MC, mr), mr)
	ncBlk := roundUp(max(cfg.NC, nr), nr)
	kcMax := min(cfg.KC, kw)
	nslabs := (kw + cfg.KC - 1) / cfg.KC

	bpanelsMax := (min(ncBlk, roundUp(n, nr)) + nr - 1) / nr
	slabWords := bpanelsMax * nr * kcMax * ops.stride
	group := max(1, min(maxGroupWords/slabWords, nslabs))
	ngroups := (nslabs + group - 1) / group
	nbufs := 1
	if ngroups > 1 {
		nbufs = 2 // double buffer: pack group g+1 while computing group g
	}

	workers := cfg.Threads
	// When every column block can share the packed B slab as A panels, no
	// worker ever packs an A block.
	allShare := ops.shareable && syrk && n <= ncBlk && m == n
	apanelLen := mr * kcMax * ops.stride
	apackWords := 0
	if !allShare {
		apackWords = (mcBlk / mr) * apanelLen * group
	}

	ar := getArena()
	defer ar.release()
	ar.prepare(workers, nbufs*group*slabWords, apackWords, mr*nr*ops.cells)
	bpack := ar.bpack

	pool := newWorkerPool(workers)
	defer pool.close()
	if ctx != nil {
		if done := ctx.Done(); done != nil {
			unwatch := make(chan struct{})
			defer close(unwatch)
			go func() {
				select {
				case <-done:
					pool.stop.Store(true)
				case <-unwatch:
				}
			}()
		}
	}

	d := &tileDriver{
		cfg: cfg, ops: ops, m: m, n: n, kw: kw, c: c, ldc: ldc, syrk: syrk,
		mcBlk: mcBlk, kcMax: kcMax, slabWords: slabWords, apanelLen: apanelLen,
		epi: epi,
	}

	var jobs []tileJob
	for jc := 0; jc < n; jc += ncBlk {
		nc := min(ncBlk, n-jc)
		target := cfg.ChunkTiles
		if target == 0 {
			target = countTiles(m, jc, nc, mcBlk, mr, nr, syrk) / (workers * chunksPerWorker)
		}
		jobs = buildTileJobs(jobs[:0], m, jc, nc, mcBlk, mr, nr, target, syrk)
		if len(jobs) == 0 {
			continue
		}
		if epi != nil {
			// Lay the jobs' count accumulators end to end in the scratch
			// buffer: O(active area of one column block), recycled through
			// the arena, instead of the full m×n matrix. The previous
			// column block is fully drained (its last group's pool.do has
			// returned), so reusing — or growing — the buffer is safe.
			off := 0
			for i := range jobs {
				jobs[i].off = off
				off += jobs[i].mc * (jobs[i].jr1 - jobs[i].jr0) * ops.cells
			}
			ar.cscratch = growU32(ar.cscratch, off)
			d.scratch = ar.cscratch
		}
		bpanels := (nc + nr - 1) / nr
		share := ops.shareable && syrk && jc == 0 && nc == n && m == n

		// packGroup returns the job count and job body that pack every B
		// panel of slab group gi into its half of the double buffer.
		packGroup := func(gi int) (int, func(worker, job int)) {
			pg := gi * group * cfg.KC
			gs := min(group, nslabs-gi*group)
			buf := bpack[(gi%nbufs)*group*slabWords:]
			return gs * bpanels, func(_, idx int) {
				s, p := idx/bpanels, idx%bpanels
				pc := pg + s*cfg.KC
				kc := min(cfg.KC, d.kw-pc)
				dst := buf[s*slabWords+p*nr*kcMax*ops.stride:]
				ops.packB(dst, jc+p*nr, min(nr, nc-p*nr), pc, kc)
			}
		}

		np, prun := packGroup(0)
		pool.do(np, prun)
		if err := ctxErr(ctx); err != nil {
			stats.cancelled.Add(1)
			return err
		}
		for gi := 0; gi < ngroups; gi++ {
			pg := gi * group * cfg.KC
			gs := min(group, nslabs-gi*group)
			buf := bpack[(gi%nbufs)*group*slabWords:]
			nextN := 0
			var nextRun func(worker, job int)
			if gi+1 < ngroups {
				nextN, nextRun = packGroup(gi + 1)
			}
			// One queue, one wait: the next group's pack jobs ride ahead
			// of this group's compute jobs (they touch disjoint buffers).
			final := gi == ngroups-1
			pool.do(nextN+len(jobs), func(w, idx int) {
				if idx < nextN {
					nextRun(w, idx)
					return
				}
				d.runJob(ar.ws[w], w, jobs[idx-nextN], jc, nc, pg, gs, buf, share, final)
			})
			if err := ctxErr(ctx); err != nil {
				stats.cancelled.Add(1)
				return err
			}
		}
	}
	cells := uint64(m) * uint64(n) * uint64(kw)
	if syrk {
		// Only the upper triangle (plus diagonal blocks' mirrors) is
		// computed; count the triangle as the useful work.
		cells = uint64(n) * uint64(n+1) / 2 * uint64(kw)
	}
	stats.calls.Add(1)
	stats.cells.Add(cells)
	stats.nanos.Add(uint64(time.Since(start)))
	if ops.popcFold > 1 {
		avoided := uint64(ops.popcPerWord) * (cells - cells/uint64(ops.popcFold))
		stats.popcAvoided.Add(avoided)
	}
	if epi != nil {
		// The split pipeline would have materialized the full m×n count
		// matrix (cells uint32s per C entry) just to read it once.
		stats.epiBytesAvoided.Add(uint64(m) * uint64(n) * 4 * uint64(ops.cells))
	}
	return nil
}

// runJob computes one tile-range chunk over every slab of the current
// group. Unless the SYRK pack-sharing path is active, the worker lazily
// packs (and memoizes) the A panels of the job's row block first. Under a
// fused epilogue the kernel accumulates into the job's scratch region
// (local coordinates, row stride = job width); when the final slab group
// completes, the worker converts the job's finished tiles in place via
// the epilogue hook.
func (d *tileDriver) runJob(st *tileWorker, w int, jb tileJob, jc, nc, pg, gs int, buf []uint64, share, final bool) {
	ops := &d.ops
	mr, nr := ops.mr, ops.nr
	apanels := (jb.mc + mr - 1) / mr
	if !share && (st.lastIC != jb.ic || st.lastPG != pg) {
		for s := 0; s < gs; s++ {
			pc := pg + s*d.cfg.KC
			kc := min(d.cfg.KC, d.kw-pc)
			base := s * apanels * d.apanelLen
			for ir := 0; ir < jb.mc; ir += mr {
				ops.packA(st.apack[base+(ir/mr)*d.apanelLen:], jb.ic+ir, min(mr, jb.mc-ir), pc, kc)
			}
		}
		st.lastIC, st.lastPG = jb.ic, pg
	}
	// Output routing: caller matrix with global coordinates, or — fused —
	// the job's scratch region with job-local coordinates.
	cdst, ldc := d.c, d.ldc
	width := jb.jr1 - jb.jr0
	fused := d.epi != nil
	if fused {
		cdst, ldc = d.scratch[jb.off:jb.off+jb.mc*width*ops.cells], width
		if pg == 0 {
			clear(cdst) // kernels accumulate; first group starts from zero
		}
	}
	panelB := nr * d.kcMax * ops.stride
	for s := 0; s < gs; s++ {
		pc := pg + s*d.cfg.KC
		kc := min(d.cfg.KC, d.kw-pc)
		sbase := s * d.slabWords
		abase := s * apanels * d.apanelLen
		for jr := jb.jr0; jr < jb.jr1; jr += nr {
			j0 := jc + jr
			bw := buf[sbase+(jr/nr)*panelB:][:kc*nr*ops.stride]
			nn := min(nr, nc-jr)
			jl := j0
			if fused {
				jl = jr - jb.jr0
			}
			for ir := 0; ir < jb.mc; ir += mr {
				i0 := jb.ic + ir
				if d.syrk && i0 >= j0+nr {
					break // rows only sink further below the diagonal
				}
				var aw []uint64
				if share {
					aw = buf[sbase+(i0/mr)*panelB:][:kc*mr*ops.stride]
				} else {
					aw = st.apack[abase+(ir/mr)*d.apanelLen:][:kc*mr*ops.stride]
				}
				il := i0
				if fused {
					il = ir
				}
				mm := min(mr, jb.mc-ir)
				if mm == mr && nn == nr {
					ops.full(kc, aw, bw, cdst, il, jl, ldc)
				} else {
					ops.fringe(kc, aw, bw, st.tile, cdst, il, jl, mm, nn, ldc)
				}
			}
		}
	}
	if fused && final {
		d.fuseJob(w, jb, jc, nc, cdst, width)
	}
}

// fuseJob walks the finished register tiles of one job — its counts just
// received their last rank-k update, so the region is cache-resident —
// and hands each to the epilogue hook with global output coordinates.
func (d *tileDriver) fuseJob(w int, jb tileJob, jc, nc int, cdst []uint32, width int) {
	ops := &d.ops
	mr, nr := ops.mr, ops.nr
	start := time.Now()
	tiles := uint64(0)
	for jr := jb.jr0; jr < jb.jr1; jr += nr {
		j0 := jc + jr
		nn := min(nr, nc-jr)
		for ir := 0; ir < jb.mc; ir += mr {
			i0 := jb.ic + ir
			if d.syrk && i0 >= j0+nr {
				break // same skip rule as the compute sweep
			}
			mm := min(mr, jb.mc-ir)
			off := (ir*width + (jr - jb.jr0)) * ops.cells
			d.epi(w, cdst[off:], width, i0, j0, mm, nn)
			tiles++
		}
	}
	stats.epiTiles.Add(tiles)
	stats.epiNanos.Add(uint64(time.Since(start)))
}
