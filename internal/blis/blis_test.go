package blis

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/kernel"
)

func randomMatrix(rng *rand.Rand, snps, samples int) *bitmat.Matrix {
	m := bitmat.New(snps, samples)
	mask := m.PadMask()
	for i := 0; i < snps; i++ {
		words := m.SNP(i)
		for w := range words {
			words[w] = rng.Uint64()
		}
		if len(words) > 0 {
			words[len(words)-1] &= mask
		}
	}
	return m
}

// smallConfig forces many blocking fringes on small inputs.
func smallConfig(k kernel.Kernel, threads int) Config {
	return Config{MC: 12, NC: 20, KC: 3, Kernel: k, Threads: threads}
}

func TestGemmMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	shapes := []struct{ m, n, samples int }{
		{1, 1, 1}, {1, 1, 64}, {5, 7, 65}, {16, 16, 128},
		{33, 47, 200}, {64, 64, 1000}, {100, 30, 64*7 + 13},
	}
	for _, k := range kernel.Fixed {
		for _, sh := range shapes {
			a := randomMatrix(rng, sh.m, sh.samples)
			b := randomMatrix(rng, sh.n, sh.samples)
			got := make([]uint32, sh.m*sh.n)
			if err := Gemm(smallConfig(k, 3), a, b, got, sh.n); err != nil {
				t.Fatalf("%s %v: %v", k.Name, sh, err)
			}
			want := make([]uint32, sh.m*sh.n)
			if err := Reference(a, b, want, sh.n); err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s %v: C[%d] = %d, want %d", k.Name, sh, i, got[i], want[i])
				}
			}
		}
	}
}

func TestGemmDefaultConfigLargerInput(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomMatrix(rng, 301, 700)
	b := randomMatrix(rng, 257, 700)
	got := make([]uint32, 301*257)
	if err := Gemm(Config{}, a, b, got, 257); err != nil {
		t.Fatal(err)
	}
	want := make([]uint32, 301*257)
	if err := Reference(a, b, want, 257); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("C[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestGemmAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomMatrix(rng, 10, 100)
	b := randomMatrix(rng, 10, 100)
	c := make([]uint32, 100)
	if err := Gemm(Config{}, a, b, c, 10); err != nil {
		t.Fatal(err)
	}
	first := append([]uint32(nil), c...)
	if err := Gemm(Config{}, a, b, c, 10); err != nil {
		t.Fatal(err)
	}
	for i := range c {
		if c[i] != 2*first[i] {
			t.Fatalf("C[%d] = %d after second call, want %d", i, c[i], 2*first[i])
		}
	}
}

func TestGemmLdcStride(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randomMatrix(rng, 9, 77)
	b := randomMatrix(rng, 7, 77)
	const ldc = 11
	c := make([]uint32, 9*ldc)
	sentinel := uint32(0x77777777)
	for i := 0; i < 9; i++ {
		for j := 7; j < ldc; j++ {
			c[i*ldc+j] = sentinel
		}
	}
	if err := Gemm(smallConfig(kernel.Default, 2), a, b, c, ldc); err != nil {
		t.Fatal(err)
	}
	want := make([]uint32, 9*7)
	if err := Reference(a, b, want, 7); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		for j := 0; j < 7; j++ {
			if c[i*ldc+j] != want[i*7+j] {
				t.Fatalf("C[%d,%d] = %d, want %d", i, j, c[i*ldc+j], want[i*7+j])
			}
		}
		for j := 7; j < ldc; j++ {
			if c[i*ldc+j] != sentinel {
				t.Fatalf("stride gap overwritten at (%d,%d)", i, j)
			}
		}
	}
}

func TestGemmErrors(t *testing.T) {
	a := bitmat.New(3, 10)
	b := bitmat.New(3, 11)
	if err := Gemm(Config{}, a, b, make([]uint32, 9), 3); err == nil {
		t.Fatal("sample mismatch accepted")
	}
	b = bitmat.New(3, 10)
	if err := Gemm(Config{}, a, b, make([]uint32, 8), 3); err == nil {
		t.Fatal("short C accepted")
	}
	if err := Gemm(Config{}, a, b, make([]uint32, 9), 2); err == nil {
		t.Fatal("ldc < n accepted")
	}
	if err := Gemm(Config{MC: -1}, a, b, make([]uint32, 9), 3); err == nil {
		t.Fatal("negative MC accepted")
	}
}

func TestGemmEmpty(t *testing.T) {
	a := bitmat.New(0, 10)
	b := bitmat.New(5, 10)
	if err := Gemm(Config{}, a, b, nil, 5); err != nil {
		t.Fatalf("empty m: %v", err)
	}
	z := bitmat.New(4, 0) // zero samples
	c := make([]uint32, 16)
	if err := Gemm(Config{}, z, bitmat.New(4, 0), c, 4); err != nil {
		t.Fatal(err)
	}
	for _, v := range c {
		if v != 0 {
			t.Fatal("zero-sample GEMM produced nonzero counts")
		}
	}
}

func TestSyrkUpperTriangle(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{1, 7, 16, 33, 65, 130} {
		a := randomMatrix(rng, n, 257)
		got := make([]uint32, n*n)
		if err := Syrk(smallConfig(kernel.Default, 4), a, got, n, false); err != nil {
			t.Fatal(err)
		}
		want := make([]uint32, n*n)
		if err := Reference(a, a, want, n); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				if got[i*n+j] != want[i*n+j] {
					t.Fatalf("n=%d: upper C[%d,%d] = %d, want %d", n, i, j, got[i*n+j], want[i*n+j])
				}
			}
		}
	}
}

func TestSyrkMirror(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 45
	a := randomMatrix(rng, n, 100)
	got := make([]uint32, n*n)
	if err := Syrk(Config{MC: 8, NC: 8, KC: 1, Threads: 2}, a, got, n, true); err != nil {
		t.Fatal(err)
	}
	want := make([]uint32, n*n)
	if err := Reference(a, a, want, n); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("mirrored C[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestSyrkDiagonalIsDerivedCount(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomMatrix(rng, 20, 333)
	c := make([]uint32, 400)
	if err := Syrk(Config{}, a, c, 20, false); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if int(c[i*20+i]) != a.DerivedCount(i) {
			t.Fatalf("diag[%d] = %d, want %d", i, c[i*20+i], a.DerivedCount(i))
		}
	}
}

func TestMirror(t *testing.T) {
	c := []uint32{
		1, 2, 3,
		0, 4, 5,
		0, 0, 6,
	}
	Mirror(c, 3, 3)
	want := []uint32{1, 2, 3, 2, 4, 5, 3, 5, 6}
	for i := range c {
		if c[i] != want[i] {
			t.Fatalf("Mirror[%d] = %d, want %d", i, c[i], want[i])
		}
	}
}

func TestGemmSingleVsMultiThread(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randomMatrix(rng, 120, 500)
	b := randomMatrix(rng, 90, 500)
	c1 := make([]uint32, 120*90)
	c8 := make([]uint32, 120*90)
	if err := Gemm(Config{MC: 16, NC: 24, KC: 2, Threads: 1}, a, b, c1, 90); err != nil {
		t.Fatal(err)
	}
	if err := Gemm(Config{MC: 16, NC: 24, KC: 2, Threads: 8}, a, b, c8, 90); err != nil {
		t.Fatal(err)
	}
	for i := range c1 {
		if c1[i] != c8[i] {
			t.Fatalf("thread count changed result at %d: %d vs %d", i, c1[i], c8[i])
		}
	}
}

// Property: for random shapes, blocking parameters, and kernels, Gemm
// equals Reference.
func TestQuickGemm(t *testing.T) {
	f := func(seed int64, m8, n8, s8, mc8, nc8, kc8 uint8, kidx uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := int(m8%40) + 1
		n := int(n8%40) + 1
		samples := int(s8)*3 + 1
		k := kernel.Fixed[int(kidx)%len(kernel.Fixed)]
		cfg := Config{
			MC: int(mc8%30) + 1, NC: int(nc8%30) + 1, KC: int(kc8%5) + 1,
			Kernel: k, Threads: int(seed%4) + 1,
		}
		if cfg.Threads < 1 {
			cfg.Threads = 1
		}
		a := randomMatrix(rng, m, samples)
		b := randomMatrix(rng, n, samples)
		got := make([]uint32, m*n)
		if err := Gemm(cfg, a, b, got, n); err != nil {
			return false
		}
		want := make([]uint32, m*n)
		if err := Reference(a, b, want, n); err != nil {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Syrk upper triangle equals Reference for random shapes/configs.
func TestQuickSyrk(t *testing.T) {
	f := func(seed int64, n8, s8, mc8, nc8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(n8%50) + 1
		samples := int(s8)*2 + 1
		cfg := Config{MC: int(mc8%20) + 1, NC: int(nc8%20) + 1, KC: 2, Threads: 3}
		a := randomMatrix(rng, n, samples)
		got := make([]uint32, n*n)
		if err := Syrk(cfg, a, got, n, true); err != nil {
			return false
		}
		want := make([]uint32, n*n)
		if err := Reference(a, a, want, n); err != nil {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
