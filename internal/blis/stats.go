package blis

import "sync/atomic"

// Package-wide driver instrumentation. The serving path needs to answer
// "how fast is the kernel actually running" and "is the arena pool doing
// its job" without per-call plumbing, so the driver maintains cumulative
// atomic counters that any observer (the HTTP /debug/vars surface, a
// benchmark harness) can snapshot with ReadStats and difference over time.
type driverCounters struct {
	calls     atomic.Uint64
	cancelled atomic.Uint64
	cells     atomic.Uint64
	nanos     atomic.Uint64

	arenaGets   atomic.Uint64
	arenaMisses atomic.Uint64

	epiTiles        atomic.Uint64
	epiNanos        atomic.Uint64
	epiBytesAvoided atomic.Uint64

	popcAvoided atomic.Uint64
	variant     atomic.Pointer[string]
	popcount    atomic.Pointer[string]

	panelsRead         atomic.Uint64
	panelBytesRead     atomic.Uint64
	prefetchStallNanos atomic.Uint64
	resumes            atomic.Uint64

	bandPanelsSkipped atomic.Uint64
	bandCellsSkipped  atomic.Uint64
}

var stats driverCounters

// setVariant records the kernel variant and concrete popcount engine of
// the most recent driver call, for ReadStats and /debug/vars.
func (s *driverCounters) setVariant(variant, popcount string) {
	s.variant.Store(&variant)
	s.popcount.Store(&popcount)
}

// DriverStats is a snapshot of the cumulative driver counters.
type DriverStats struct {
	// Calls counts completed driver invocations (Gemm/Syrk, plain and
	// masked); Cancelled counts invocations aborted by their context.
	Calls     uint64
	Cancelled uint64
	// Cells is Σ C-cells × k-words over completed calls — the paper's
	// (SNP, SNP, word) triple count, the unit of kernel work. Dividing a
	// Cells delta by the matching Nanos delta gives the giga-cell rate.
	Cells uint64
	// Nanos is the total wall time spent inside completed driver calls.
	Nanos uint64
	// ArenaGets/ArenaMisses count arena-pool checkouts and the subset
	// that had to allocate fresh storage; 1 − misses/gets is the pool
	// hit rate the HTTP path relies on.
	ArenaGets   uint64
	ArenaMisses uint64
	// EpilogueTiles counts register tiles converted in place by a fused
	// tile epilogue, EpilogueNanos the wall time workers spent inside the
	// hook, and EpilogueBytesAvoided the dense count-matrix bytes that
	// fused calls never materialized (m·n·4 per cell per call).
	EpilogueTiles        uint64
	EpilogueNanos        uint64
	EpilogueBytesAvoided uint64
	// PopcountsAvoided counts the single-word popcount executions the
	// batched (CSA/vector) strategies folded away relative to the scalar
	// kernel: popcPerWord · cells · (1 − 1/fold) per call.
	PopcountsAvoided uint64
	// PanelsRead/PanelBytesRead count the I/O panels (and their packed
	// bytes) an out-of-core scheduler fetched from a file-backed bit
	// matrix, and PrefetchStallNanos the wall time its compute loop spent
	// blocked waiting for a panel the prefetcher had not finished reading —
	// the GEMM-starved-on-I/O fraction of an out-of-core build.
	PanelsRead         uint64
	PanelBytesRead     uint64
	PrefetchStallNanos uint64
	// Resumes counts builder runs that restarted from a checkpoint
	// manifest instead of from scratch.
	Resumes uint64
	// BandPanelsSkipped/BandCellsSkipped count the far-off-diagonal
	// column panels a banded schedule never fetched and the (row, col)
	// result cells it never computed — the GEMM work a |i−j| ≤ W window
	// eliminated outright rather than computed and discarded.
	BandPanelsSkipped uint64
	BandCellsSkipped  uint64
	// Variant names the kernel variant of the most recent driver call
	// (e.g. "4x4", "4x4-runs", "masked2x2-runs"); Popcount names its
	// concrete AND-count engine ("scalar", "csa", "vector-avx512-
	// vpopcntdq"). Empty until the first call.
	Variant  string
	Popcount string
}

// CellRate returns the mean throughput over the counted work in cells
// (SNP-pair-word triples) per second, or 0 when nothing has run.
func (s DriverStats) CellRate() float64 {
	if s.Nanos == 0 {
		return 0
	}
	return float64(s.Cells) / (float64(s.Nanos) * 1e-9)
}

// ArenaHitRate returns the fraction of arena checkouts served from the
// pool, or 0 before the first checkout.
func (s DriverStats) ArenaHitRate() float64 {
	if s.ArenaGets == 0 {
		return 0
	}
	return 1 - float64(s.ArenaMisses)/float64(s.ArenaGets)
}

// NotePanelRead records one I/O panel fetch of the given packed size.
// Called by the out-of-core panel scheduler, which lives above this
// package but reports through the same counter surface the driver uses.
func NotePanelRead(bytes int64) {
	stats.panelsRead.Add(1)
	stats.panelBytesRead.Add(uint64(bytes))
}

// NotePrefetchStall records wall time a compute loop spent blocked on a
// panel read the prefetcher had not yet completed.
func NotePrefetchStall(nanos int64) {
	stats.prefetchStallNanos.Add(uint64(nanos))
}

// NoteResume records a builder run restarted from a checkpoint.
func NoteResume() { stats.resumes.Add(1) }

// NoteBandSkip records far-off-diagonal work a banded schedule skipped:
// panels column panels never fetched, cells result cells never computed.
func NoteBandSkip(panels, cells int64) {
	stats.bandPanelsSkipped.Add(uint64(panels))
	stats.bandCellsSkipped.Add(uint64(cells))
}

// ReadStats snapshots the cumulative driver counters. Counters only grow;
// observers difference successive snapshots for rates.
func ReadStats() DriverStats {
	d := DriverStats{
		Calls:                stats.calls.Load(),
		Cancelled:            stats.cancelled.Load(),
		Cells:                stats.cells.Load(),
		Nanos:                stats.nanos.Load(),
		ArenaGets:            stats.arenaGets.Load(),
		ArenaMisses:          stats.arenaMisses.Load(),
		EpilogueTiles:        stats.epiTiles.Load(),
		EpilogueNanos:        stats.epiNanos.Load(),
		EpilogueBytesAvoided: stats.epiBytesAvoided.Load(),
		PopcountsAvoided:     stats.popcAvoided.Load(),
		PanelsRead:           stats.panelsRead.Load(),
		PanelBytesRead:       stats.panelBytesRead.Load(),
		PrefetchStallNanos:   stats.prefetchStallNanos.Load(),
		Resumes:              stats.resumes.Load(),
		BandPanelsSkipped:    stats.bandPanelsSkipped.Load(),
		BandCellsSkipped:     stats.bandCellsSkipped.Load(),
	}
	if p := stats.variant.Load(); p != nil {
		d.Variant = *p
	}
	if p := stats.popcount.Load(); p != nil {
		d.Popcount = *p
	}
	return d
}
