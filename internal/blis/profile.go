package blis

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"ldgemm/internal/kernel"
	"ldgemm/internal/popcount"
)

// Persistent tune profiles. Tune is too slow to run at every process
// start, so its winner can be saved to a small per-host JSON file and
// auto-loaded by the serving binaries. A profile is only valid on the
// hardware it was measured on: it embeds a host fingerprint (OS, arch,
// CPU count, SIMD tier, format version) and LoadProfile rejects a
// mismatch with ErrProfileStale — a stale profile is ignored, never
// misapplied.

// profileVersion is bumped whenever the profile semantics change in a
// way that invalidates old measurements (e.g. a new kernel family).
const profileVersion = 1

// ErrProfileStale reports a structurally valid profile measured on a
// different host or by an incompatible version; callers fall back to
// defaults.
var ErrProfileStale = errors.New("blis: tune profile is stale for this host")

// Profile is the on-disk form of a tuned configuration.
type Profile struct {
	Version     int    `json:"version"`
	Fingerprint string `json:"fingerprint"`
	CreatedAt   string `json:"created_at,omitempty"`
	// Kernel and Popcount name the winning micro-kernel shape and
	// popcount strategy (kernel.ByName / ParsePopcount forms).
	Kernel   string `json:"kernel"`
	Popcount string `json:"popcount"`
	MC       int    `json:"mc"`
	NC       int    `json:"nc"`
	KC       int    `json:"kc"`
	// Threads and ChunkTiles are recorded only when the tuner's threaded
	// phase beat the single-core winner (0 otherwise).
	Threads    int `json:"threads,omitempty"`
	ChunkTiles int `json:"chunk_tiles,omitempty"`
	// Epilogue records the faster pipeline shape on this host: "fused"
	// or "split". Informational for servers whose epilogue mode is
	// chosen per deployment.
	Epilogue string `json:"epilogue,omitempty"`
	// TriplesPerSecond is the winner's probe throughput, for humans
	// diffing profiles.
	TriplesPerSecond float64 `json:"triples_per_second,omitempty"`
}

// HostFingerprint identifies the hardware/runtime a profile was measured
// on. Geometry (CPU count) and the SIMD tier are part of it: a profile
// tuned with AVX-512 kernels must not steer a host without them.
func HostFingerprint() string {
	return fmt.Sprintf("%s/%s/cpu%d/simd-%s/v%d",
		runtime.GOOS, runtime.GOARCH, runtime.NumCPU(), popcount.VectorName(), profileVersion)
}

// Config converts a loaded profile into a driver configuration.
func (p Profile) Config() (Config, error) {
	k, err := kernel.ByName(p.Kernel)
	if err != nil {
		return Config{}, fmt.Errorf("blis: profile kernel: %w", err)
	}
	strat, err := ParsePopcount(p.Popcount)
	if err != nil {
		return Config{}, fmt.Errorf("blis: profile popcount: %w", err)
	}
	cfg := Config{
		MC: p.MC, NC: p.NC, KC: p.KC,
		Kernel:     k,
		Popcount:   strat,
		Threads:    p.Threads,
		ChunkTiles: p.ChunkTiles,
	}
	if _, err := cfg.normalize(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// SaveProfile writes the profile atomically (temp file + rename), so a
// crash mid-write never leaves a truncated profile for the next startup
// to trip over.
func SaveProfile(path string, p Profile) error {
	p.Version = profileVersion
	if p.Fingerprint == "" {
		p.Fingerprint = HostFingerprint()
	}
	if p.CreatedAt == "" {
		p.CreatedAt = time.Now().UTC().Format(time.RFC3339)
	}
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tune-profile-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadProfile reads and validates a profile. A file measured on another
// host or by an incompatible version returns ErrProfileStale (wrapped
// with the fingerprints); malformed JSON or an unknown kernel/strategy
// returns the underlying error. Either way callers are expected to log
// and fall back to defaults rather than fail startup.
func LoadProfile(path string) (Profile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Profile{}, err
	}
	var p Profile
	if err := json.Unmarshal(data, &p); err != nil {
		return Profile{}, fmt.Errorf("blis: parsing tune profile %s: %w", path, err)
	}
	if want := HostFingerprint(); p.Version != profileVersion || p.Fingerprint != want {
		return Profile{}, fmt.Errorf("%w: profile %q, host %q", ErrProfileStale, p.Fingerprint, want)
	}
	if _, err := p.Config(); err != nil {
		return Profile{}, err
	}
	return p, nil
}
