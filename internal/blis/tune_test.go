package blis

import (
	"math/rand"
	"testing"
	"time"
)

func TestTuneReturnsValidConfig(t *testing.T) {
	res, err := Tune(TuneOptions{SNPs: 128, Samples: 512, Budget: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated < 2 {
		t.Fatalf("only %d configurations evaluated", res.Evaluated)
	}
	if res.TriplesPerSecond <= 0 {
		t.Fatalf("rate %v", res.TriplesPerSecond)
	}
	cfg := res.Config
	if cfg.Kernel.Fn == nil || cfg.MC < 1 || cfg.NC < 1 || cfg.KC < 1 {
		t.Fatalf("invalid tuned config %+v", cfg)
	}
	if cfg.Threads != 0 {
		t.Fatalf("tuned config pins threads: %d", cfg.Threads)
	}
	// The tuned config must still compute correct results.
	rng := rand.New(rand.NewSource(1))
	g := randomMatrix(rng, 60, 300)
	got := make([]uint32, 60*60)
	if err := Syrk(cfg, g, got, 60, true); err != nil {
		t.Fatal(err)
	}
	want := make([]uint32, 60*60)
	if err := Reference(g, g, want, 60); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("tuned config wrong at %d", i)
		}
	}
}

func TestTuneRespectsBudget(t *testing.T) {
	start := time.Now()
	_, err := Tune(TuneOptions{SNPs: 256, Samples: 2048, Budget: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// Greedy descent may finish its in-flight measurement; allow slack.
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("tuning took %v with a 100ms budget", el)
	}
}

func TestTuneInvalidOptions(t *testing.T) {
	if _, err := Tune(TuneOptions{SNPs: -1}); err == nil {
		t.Fatal("negative SNPs accepted")
	}
	if _, err := Tune(TuneOptions{Threads: -2}); err == nil {
		t.Fatal("negative threads accepted")
	}
}
