package blis

import (
	"fmt"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/kernel"
	"ldgemm/internal/popcount"
)

// Popcount strategy selection: which AND-count engine the register-tile
// sweep uses. The scalar strategy is the original interleaved-panel
// micro-kernel (one hardware POPCNT per word-pair) and stays the
// bit-exactness oracle. The batched strategies repack panels into
// per-SNP kc-word runs (kernel.PackPanelRuns) so every register-tile
// cell becomes one slice AND-count, which the CSA strategy feeds through
// the Harley–Seal fold-16 tree and the vector strategy through the SIMD
// tier (AVX-512 VPOPCNTQ or the AVX2 nibble LUT). All three produce
// bit-identical counts; they differ only in popcounts executed per word.
//
// Dispatch keys on k: a batched cell amortizes its setup over kc words,
// so short slabs (k below CSAMinWords) run scalar even under Auto — the
// fold would drain mostly-empty accumulators. Fringe tiles under the
// batched family fall out naturally: the run layout counts partial
// tiles cell-by-cell straight into C, no scratch scatter needed, and
// zero-padded runs contribute nothing.

// PopcountStrategy selects the AND-count engine of the micro-kernel
// sweep.
type PopcountStrategy int

const (
	// PopcountAuto k-dispatches: the vector strategy when the sample
	// dimension has at least CSAMinWords words and a SIMD tier exists,
	// the scalar kernel otherwise. The zero value, so existing Configs
	// keep working and pick up the dispatch.
	PopcountAuto PopcountStrategy = iota
	// PopcountScalar forces the interleaved scalar micro-kernel.
	PopcountScalar
	// PopcountCSA forces the portable Harley–Seal fold-16 kernels.
	PopcountCSA
	// PopcountVector forces the SIMD kernels, degrading to CSA when the
	// host has no usable SIMD tier.
	PopcountVector
)

// CSAMinWords is the k-dispatch threshold: Auto picks a batched strategy
// only when the sample dimension spans at least this many 64-bit words
// (2048 samples). Below it the per-cell call overhead of the batched
// family outweighs the folded popcounts. A variable so Tune probes and
// tests can move the boundary.
var CSAMinWords = 32

// String names the strategy as accepted by ParsePopcount.
func (s PopcountStrategy) String() string {
	switch s {
	case PopcountAuto:
		return "auto"
	case PopcountScalar:
		return "scalar"
	case PopcountCSA:
		return "csa"
	case PopcountVector:
		return "vector"
	default:
		return fmt.Sprintf("popcount(%d)", int(s))
	}
}

// ParsePopcount parses a strategy name as it appears in flags and tune
// profiles.
func ParsePopcount(name string) (PopcountStrategy, error) {
	switch name {
	case "", "auto":
		return PopcountAuto, nil
	case "scalar":
		return PopcountScalar, nil
	case "csa":
		return PopcountCSA, nil
	case "vector":
		return PopcountVector, nil
	default:
		return 0, fmt.Errorf("blis: unknown popcount strategy %q (have auto, scalar, csa, vector)", name)
	}
}

// resolvePopcount maps a requested strategy to the concrete engine for a
// call over kw sample words.
func resolvePopcount(s PopcountStrategy, kw int) PopcountStrategy {
	switch s {
	case PopcountAuto:
		if kw >= CSAMinWords && popcount.HasVector() {
			return PopcountVector
		}
		return PopcountScalar
	case PopcountVector:
		if !popcount.HasVector() {
			return PopcountCSA
		}
		return PopcountVector
	default:
		return s
	}
}

// strategyTag names the concrete engine for stats and /debug/vars,
// qualifying the vector strategy with its SIMD tier.
func strategyTag(s PopcountStrategy) string {
	if s == PopcountVector {
		return "vector-" + popcount.VectorName()
	}
	return s.String()
}

// popcFold reports the words folded per popcount by the engine: the
// denominator of the popcounts-avoided counter.
func popcFold(s PopcountStrategy) int {
	switch s {
	case PopcountCSA:
		return 16
	case PopcountVector:
		if f := popcount.VectorFold(); f > 0 {
			return f
		}
		return 16 // degraded to CSA
	default:
		return 1
	}
}

// runOps builds the tileOps of the batched plain kernel family: run-
// packed panels, one slice AND-count per register-tile cell. The panel
// footprint (kc·rr words) matches the interleaved layout, so the blocked
// driver's slab sizing and SYRK pack sharing apply unchanged.
func runOps(k kernel.Kernel, a, b *bitmat.Matrix, s PopcountStrategy) tileOps {
	mr, nr := k.MR, k.NR
	count := popcount.AndCountVector
	if s == PopcountCSA {
		count = popcount.AndCountCSA
	}
	return tileOps{
		mr: mr, nr: nr, stride: 1, cells: 1,
		popcPerWord: 1, popcFold: popcFold(s),
		shareable: a == b && mr == nr,
		packA: func(dst []uint64, snp, count, pc, kc int) {
			kernel.PackPanelRuns(dst, a, snp, count, mr, pc, kc)
		},
		packB: func(dst []uint64, snp, count, pc, kc int) {
			kernel.PackPanelRuns(dst, b, snp, count, nr, pc, kc)
		},
		full: func(kc int, aw, bw []uint64, c []uint32, i0, j0, ldc int) {
			for i := 0; i < mr; i++ {
				ai := aw[i*kc : (i+1)*kc]
				row := c[(i0+i)*ldc+j0:]
				for j := 0; j < nr; j++ {
					row[j] += uint32(count(ai, bw[j*kc:(j+1)*kc]))
				}
			}
		},
		fringe: func(kc int, aw, bw []uint64, _, c []uint32, i0, j0, mm, nn, ldc int) {
			// Partial tiles need no scratch scatter under the run layout:
			// each live cell is counted directly into C.
			for i := 0; i < mm; i++ {
				ai := aw[i*kc : (i+1)*kc]
				row := c[(i0+i)*ldc+j0:]
				for j := 0; j < nn; j++ {
					row[j] += uint32(count(ai, bw[j*kc:(j+1)*kc]))
				}
			}
		},
	}
}

// maskedRunOps is the batched masked family: run-packed (value, mask)
// panels and one fused four-count slice pass per cell. The register tile
// stays the masked driver's 2×2 so scalar and batched runs are
// geometrically identical.
func maskedRunOps(mk kernel.MaskedKernel, a, b *bitmat.Matrix, ka, kb *bitmat.Mask, s PopcountStrategy) tileOps {
	mr, nr := mk.MR, mk.NR
	counts := popcount.MaskedCountsVector
	if s == PopcountCSA {
		counts = popcount.MaskedCountsCSA
	}
	cell := func(kc int, aw, bw []uint64, c []uint32, i, j int) {
		si := aw[i*2*kc : i*2*kc+kc]
		ci := aw[i*2*kc+kc : (i+1)*2*kc]
		sj := bw[j*2*kc : j*2*kc+kc]
		cj := bw[j*2*kc+kc : (j+1)*2*kc]
		v, nI, nJ, nIJ := counts(si, ci, sj, cj)
		c[kernel.MaskedValid] += uint32(v)
		c[kernel.MaskedI] += uint32(nI)
		c[kernel.MaskedJ] += uint32(nJ)
		c[kernel.MaskedIJ] += uint32(nIJ)
	}
	return tileOps{
		mr: mr, nr: nr, stride: 2, cells: 4,
		popcPerWord: 4, popcFold: popcFold(s),
		shareable: a == b && ka == kb && mr == nr,
		packA: func(dst []uint64, snp, count, pc, kc int) {
			kernel.PackMaskedPanelRuns(dst, a, ka, snp, count, mr, pc, kc)
		},
		packB: func(dst []uint64, snp, count, pc, kc int) {
			kernel.PackMaskedPanelRuns(dst, b, kb, snp, count, nr, pc, kc)
		},
		full: func(kc int, aw, bw []uint64, c []uint32, i0, j0, ldc int) {
			for i := 0; i < mr; i++ {
				for j := 0; j < nr; j++ {
					cell(kc, aw, bw, c[((i0+i)*ldc+j0+j)*4:], i, j)
				}
			}
		},
		fringe: func(kc int, aw, bw []uint64, _, c []uint32, i0, j0, mm, nn, ldc int) {
			for i := 0; i < mm; i++ {
				for j := 0; j < nn; j++ {
					cell(kc, aw, bw, c[((i0+i)*ldc+j0+j)*4:], i, j)
				}
			}
		},
	}
}
