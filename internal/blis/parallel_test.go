package blis

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// adversarialConfigs exercises the parallel driver at scheduling extremes:
// blocks smaller than a micro-tile, single-slab and many-slab k, more
// threads than jobs, and forced chunk granularities.
func adversarialConfigs() []Config {
	return []Config{
		{},
		{MC: 1, NC: 1, KC: 1},
		{MC: 5, NC: 7, KC: 3, Threads: 7},
		{MC: 8, NC: 8, KC: 2, Threads: 3, ChunkTiles: 1},
		{MC: 64, NC: 16, KC: 4, Threads: 2, ChunkTiles: 1000},
		{MC: 16, NC: 4096, KC: 8, Threads: 5},
		{Threads: 13, ChunkTiles: 2},
	}
}

// adversarialShapes holds (m, n, samples) triples around the MR/NR/KC
// boundaries: sub-tile matrices, fringe-only tiles, and shapes large
// enough to cross block boundaries.
var adversarialShapes = [][3]int{
	{1, 1, 1},
	{1, 3, 64},
	{3, 1, 65},
	{2, 2, 63},
	{5, 5, 200},
	{7, 13, 129},
	{17, 9, 320},
	{33, 47, 500},
	{65, 64, 1000},
}

func TestGemmAdversarialCrossCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, sh := range adversarialShapes {
		m, n, samples := sh[0], sh[1], sh[2]
		a := randomMatrix(rng, m, samples)
		b := randomMatrix(rng, n, samples)
		ldc := n + rng.Intn(3) // exercise ldc > n too
		want := make([]uint32, m*ldc)
		if err := Reference(a, b, want, ldc); err != nil {
			t.Fatal(err)
		}
		for ci, cfg := range adversarialConfigs() {
			got := make([]uint32, m*ldc)
			if err := Gemm(cfg, a, b, got, ldc); err != nil {
				t.Fatalf("shape %v cfg %d: %v", sh, ci, err)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("shape %v cfg %d: mismatch at %d: %d != %d",
						sh, ci, i, got[i], want[i])
				}
			}
		}
	}
}

func TestSyrkAdversarialCrossCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, sh := range adversarialShapes {
		n, samples := sh[0]+sh[1], sh[2]
		g := randomMatrix(rng, n, samples)
		want := make([]uint32, n*n)
		if err := Reference(g, g, want, n); err != nil {
			t.Fatal(err)
		}
		for ci, cfg := range adversarialConfigs() {
			got := make([]uint32, n*n)
			if err := Syrk(cfg, g, got, n, true); err != nil {
				t.Fatalf("n=%d cfg %d: %v", n, ci, err)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d cfg %d: mismatch at %d: %d != %d",
						n, ci, i, got[i], want[i])
				}
			}
		}
	}
}

func TestMaskedAdversarialCrossCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for _, sh := range [][3]int{{1, 1, 1}, {2, 3, 64}, {3, 2, 65}, {7, 5, 200}, {17, 19, 320}} {
		m, n, samples := sh[0], sh[1], sh[2]
		a, ka := randomMasked(rng, m, samples)
		b, kb := randomMasked(rng, n, samples)
		want := make([]uint32, m*n*4)
		if err := MaskedReference(a, b, ka, kb, want, n); err != nil {
			t.Fatal(err)
		}
		for ci, cfg := range adversarialConfigs() {
			got := make([]uint32, m*n*4)
			if err := MaskedGemm(cfg, a, b, ka, kb, got, n); err != nil {
				t.Fatalf("shape %v cfg %d: %v", sh, ci, err)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("shape %v cfg %d: mismatch at %d", sh, ci, i)
				}
			}
		}
	}
}

// TestConcurrentSyrkSharedArena drives many simultaneous Syrk and
// MaskedSyrk calls, all drawing pack buffers from the shared arena pool —
// the -race exercise for the pooled-arena path (the HTTP server computes
// a region per request this way).
func TestConcurrentSyrkSharedArena(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	n, samples := 70, 400
	g := randomMatrix(rng, n, samples)
	mg, mk := randomMasked(rng, n, samples)
	want := make([]uint32, n*n)
	if err := Reference(g, g, want, n); err != nil {
		t.Fatal(err)
	}
	mwant := make([]uint32, n*n*4)
	if err := MaskedReference(mg, mg, mk, mk, mwant, n); err != nil {
		t.Fatal(err)
	}

	cfg := Config{MC: 16, NC: 32, KC: 2, Threads: 3, ChunkTiles: 1}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for call := 0; call < 8; call++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			got := make([]uint32, n*n)
			if err := Syrk(cfg, g, got, n, true); err != nil {
				errs <- err
				return
			}
			for i := range got {
				if got[i] != want[i] {
					t.Errorf("concurrent Syrk mismatch at %d", i)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			got := make([]uint32, n*n*4)
			if err := MaskedSyrk(cfg, mg, mk, got, n); err != nil {
				errs <- err
				return
			}
			MirrorMasked(got, n, n)
			for i := range got {
				if got[i] != mwant[i] {
					t.Errorf("concurrent MaskedSyrk mismatch at %d", i)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestMirrorParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	// Past mirrorParallelMin so forEachTriangleSpan actually forks.
	n := mirrorParallelMin + 37
	c := make([]uint32, n*n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			c[i*n+j] = rng.Uint32()
		}
	}
	want := make([]uint32, n*n)
	copy(want, c)
	for i := 1; i < n; i++ {
		for j := 0; j < i; j++ {
			want[i*n+j] = want[j*n+i]
		}
	}
	Mirror(c, n, n)
	for i := range c {
		if c[i] != want[i] {
			t.Fatalf("mirror mismatch at (%d,%d)", i/n, i%n)
		}
	}
}

func TestForEachTriangleSpanCoversRows(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, mirrorParallelMin, mirrorParallelMin + 100} {
		for _, parts := range []int{1, 2, 3, 8, 1000} {
			var mu sync.Mutex
			seen := make([]bool, n)
			forEachTriangleSpan(n, parts, func(lo, hi int) {
				mu.Lock()
				defer mu.Unlock()
				for i := lo; i < hi; i++ {
					if seen[i] {
						t.Fatalf("n=%d parts=%d: row %d covered twice", n, parts, i)
					}
					seen[i] = true
				}
			})
			for i := 1; i < n; i++ {
				if !seen[i] {
					t.Fatalf("n=%d parts=%d: row %d not covered", n, parts, i)
				}
			}
		}
	}
}

func TestActiveTilesMatchesEnumeration(t *testing.T) {
	for _, syrk := range []bool{false, true} {
		for _, mr := range []int{2, 4} {
			for _, nr := range []int{2, 4} {
				for ic := 0; ic < 24; ic += mr {
					for jr := 0; jr < 24; jr += nr {
						mc := 8
						want := 0
						for ir := 0; ir < mc; ir += mr {
							if syrk && ic+ir >= jr+nr {
								continue
							}
							want++
						}
						got := activeTiles(ic, mc, 0, jr, mr, nr, syrk)
						if got != want {
							t.Fatalf("activeTiles(ic=%d jr=%d mr=%d nr=%d syrk=%v) = %d, want %d",
								ic, jr, mr, nr, syrk, got, want)
						}
					}
				}
			}
		}
	}
}

func TestTuneDeadlineAbortsDescent(t *testing.T) {
	// A budget this small exhausts during (or before) the descent; the
	// labeled break must prevent probing every remaining axis, so the
	// whole call stays near the budget.
	start := time.Now()
	res, err := Tune(TuneOptions{SNPs: 256, Samples: 4096, Budget: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("tuning took %v with a 1ms budget", el)
	}
	if res.Evaluated < 1 {
		t.Fatal("no configurations evaluated")
	}
}

func TestTuneMaxThreadsPhase(t *testing.T) {
	res, err := Tune(TuneOptions{
		SNPs: 96, Samples: 256, Budget: 2 * time.Second, MaxThreads: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The phase may or may not beat single-threaded on this host; either
	// way the config must stay usable and ChunkTiles non-negative.
	cfg := res.Config
	if cfg.Threads < 0 || cfg.ChunkTiles < 0 {
		t.Fatalf("invalid parallel knobs %+v", cfg)
	}
	got := make([]uint32, 50*50)
	g := randomMatrix(rand.New(rand.NewSource(7)), 50, 300)
	if err := Syrk(cfg, g, got, 50, true); err != nil {
		t.Fatal(err)
	}
	want := make([]uint32, 50*50)
	if err := Reference(g, g, want, 50); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("MaxThreads-tuned config wrong at %d", i)
		}
	}
	if _, err := Tune(TuneOptions{MaxThreads: -1}); err == nil {
		t.Fatal("negative MaxThreads accepted")
	}
}
