package blis

import (
	"sync"
	"sync/atomic"
)

// This file provides the two reuse mechanisms of the parallel driver:
//
//   - workerPool: a set of goroutines spawned once per driver call.
//     Work arrives in phases (pack a slab group, run the compute jobs of
//     a column block); each phase's jobs are pulled from a shared atomic
//     cursor so fast workers absorb the slow jobs, and the caller blocks
//     on exactly one wait per phase instead of forking and joining fresh
//     goroutines per (jc, pc) slab as the original driver did.
//
//   - arena: the packing buffers and scratch tiles of a driver call,
//     recycled through a sync.Pool so repeated calls — the HTTP serving
//     path computes a region per request — do not reallocate packing
//     storage every time.

// poolPhase is one batch of homogeneous jobs distributed over the pool.
type poolPhase struct {
	jobs   int64
	cursor atomic.Int64
	run    func(worker, job int)
	done   sync.WaitGroup
	stop   *atomic.Bool // the owning pool's cancel flag
}

// runJobs pulls job indices until the phase is drained or the pool is
// cancelled. Bailing between jobs leaves the remaining indices unclaimed —
// correct only because a cancelled driver call discards its output.
func (ph *poolPhase) runJobs(worker int) {
	for {
		if ph.stop.Load() {
			return
		}
		idx := ph.cursor.Add(1) - 1
		if idx >= ph.jobs {
			return
		}
		ph.run(worker, int(idx))
	}
}

// workerPool runs phases across persistent goroutines. The calling
// goroutine participates as worker 0, so a pool of size 1 spawns no
// goroutines at all and runs every phase inline.
type workerPool struct {
	feeds []chan *poolPhase // one per extra worker
	// stop is the cooperative cancel flag: set (by the context watcher in
	// driveTiles) it makes every worker abandon its phase at the next job
	// boundary, so do() returns within one job of cancellation.
	stop atomic.Bool
}

// newWorkerPool starts workers-1 goroutines (worker 0 is the caller).
func newWorkerPool(workers int) *workerPool {
	p := &workerPool{feeds: make([]chan *poolPhase, workers-1)}
	for i := range p.feeds {
		ch := make(chan *poolPhase, 1)
		p.feeds[i] = ch
		go func(w int) {
			for ph := range ch {
				ph.runJobs(w)
				ph.done.Done()
			}
		}(i + 1)
	}
	return p
}

// do runs njobs jobs across the pool and returns when every job has
// finished — the single wait of a phase. Workers beyond the job count are
// left sleeping on their feed channels.
func (p *workerPool) do(njobs int, run func(worker, job int)) {
	if njobs <= 0 {
		return
	}
	ph := &poolPhase{jobs: int64(njobs), run: run, stop: &p.stop}
	extra := min(len(p.feeds), njobs-1)
	ph.done.Add(extra)
	for i := 0; i < extra; i++ {
		p.feeds[i] <- ph
	}
	ph.runJobs(0)
	ph.done.Wait()
}

// close releases the pool's goroutines.
func (p *workerPool) close() {
	for _, ch := range p.feeds {
		close(ch)
	}
}

// tileWorker is the per-worker private state of the compute phase: a
// packed-A block (covering every slab of the current slab group) and the
// fringe scratch tile. lastIC/lastPG memoize which (row block, slab group)
// the A buffer currently holds, so consecutive jobs on the same row block
// skip repacking; the key is valid across column blocks because packed A
// panels do not depend on jc.
type tileWorker struct {
	apack  []uint64
	tile   []uint32
	lastIC int
	lastPG int
}

// arena owns every buffer of one driver call. cscratch is the fused-
// epilogue count scratch of the current column block — O(MC × NC) cells
// recycled across calls, the storage that replaces the dense m×n count
// matrix when a tile epilogue is installed.
type arena struct {
	bpack    []uint64
	cscratch []uint32
	ws       []*tileWorker
}

var arenaPool = sync.Pool{New: func() any {
	stats.arenaMisses.Add(1)
	return &arena{}
}}

// maxPooledWords caps how much packing storage a recycled arena may pin
// (16 Mi words = 128 MiB); larger arenas are dropped for the GC instead.
const maxPooledWords = 16 << 20

// maxPooledScratch caps the fused-epilogue count scratch a recycled arena
// may pin (64 Mi cells = 256 MiB), counted separately from the packing
// budget because a wide column block legitimately needs MC×NC cells and
// dropping it would defeat the pooling the fused path exists to provide.
const maxPooledScratch = 64 << 20

func getArena() *arena {
	stats.arenaGets.Add(1)
	return arenaPool.Get().(*arena)
}

// release returns the arena to the pool unless it grew past the cap.
func (a *arena) release() {
	total := cap(a.bpack)
	for _, w := range a.ws {
		total += cap(w.apack)
	}
	if total > maxPooledWords {
		return
	}
	if cap(a.cscratch) > maxPooledScratch {
		a.cscratch = nil
	}
	arenaPool.Put(a)
}

// prepare sizes the arena for one driver call and resets the per-worker
// packing memos.
func (a *arena) prepare(workers, bpackWords, apackWords, tileLen int) {
	a.bpack = growU64(a.bpack, bpackWords)
	for len(a.ws) < workers {
		a.ws = append(a.ws, &tileWorker{})
	}
	for i := 0; i < workers; i++ {
		w := a.ws[i]
		w.apack = growU64(w.apack, apackWords)
		w.tile = growU32(w.tile, tileLen)
		w.lastIC, w.lastPG = -1, -1
	}
}

func growU64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

func growU32(s []uint32, n int) []uint32 {
	if cap(s) < n {
		return make([]uint32, n)
	}
	return s[:n]
}
