package blis

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ldgemm/internal/bitmat"
)

func randomMasked(rng *rand.Rand, snps, samples int) (*bitmat.Matrix, *bitmat.Mask) {
	m := randomMatrix(rng, snps, samples)
	k := bitmat.NewMask(snps, samples)
	for i := 0; i < snps; i++ {
		for s := 0; s < samples; s++ {
			if rng.Intn(5) == 0 {
				k.Invalidate(i, s)
			}
		}
	}
	if err := k.ApplyTo(m); err != nil {
		panic(err)
	}
	return m, k
}

func TestMaskedGemmMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	shapes := []struct{ m, n, samples int }{
		{1, 1, 10}, {3, 5, 64}, {17, 9, 130}, {40, 40, 333},
	}
	for _, sh := range shapes {
		a, ka := randomMasked(rng, sh.m, sh.samples)
		b, kb := randomMasked(rng, sh.n, sh.samples)
		got := make([]uint32, sh.m*sh.n*4)
		cfg := Config{MC: 7, NC: 9, KC: 2, Threads: 3}
		if err := MaskedGemm(cfg, a, b, ka, kb, got, sh.n); err != nil {
			t.Fatal(err)
		}
		want := make([]uint32, sh.m*sh.n*4)
		if err := MaskedReference(a, b, ka, kb, want, sh.n); err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%v: masked C[%d] = %d, want %d", sh, i, got[i], want[i])
			}
		}
	}
}

func TestMaskedGemmErrors(t *testing.T) {
	a, ka := randomMasked(rand.New(rand.NewSource(2)), 3, 10)
	b, kb := randomMasked(rand.New(rand.NewSource(3)), 3, 12)
	if err := MaskedGemm(Config{}, a, b, ka, kb, make([]uint32, 36), 3); err == nil {
		t.Fatal("sample mismatch accepted")
	}
	b, kb = randomMasked(rand.New(rand.NewSource(3)), 3, 10)
	if err := MaskedGemm(Config{}, a, b, ka, kb, make([]uint32, 35), 3); err == nil {
		t.Fatal("short C accepted")
	}
	wrongMask := bitmat.NewMask(4, 10)
	if err := MaskedGemm(Config{}, a, b, wrongMask, kb, make([]uint32, 36), 3); err == nil {
		t.Fatal("mask shape mismatch accepted")
	}
}

func TestMaskedSyrk(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a, ka := randomMasked(rng, 25, 200)
	got := make([]uint32, 25*25*4)
	if err := MaskedSyrk(Config{MC: 6, NC: 10, KC: 1, Threads: 2}, a, ka, got, 25); err != nil {
		t.Fatal(err)
	}
	want := make([]uint32, 25*25*4)
	if err := MaskedReference(a, a, ka, ka, want, 25); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		for j := i; j < 25; j++ {
			for tc := 0; tc < 4; tc++ {
				if got[(i*25+j)*4+tc] != want[(i*25+j)*4+tc] {
					t.Fatalf("cell (%d,%d) count %d mismatch", i, j, tc)
				}
			}
		}
	}
}

func TestMaskedFullMaskEqualsUnmasked(t *testing.T) {
	// With an all-valid mask, MaskedIJ must equal the plain Gemm counts and
	// MaskedValid must equal the sample count.
	rng := rand.New(rand.NewSource(5))
	a := randomMatrix(rng, 12, 190)
	b := randomMatrix(rng, 8, 190)
	ka, kb := bitmat.NewMask(12, 190), bitmat.NewMask(8, 190)
	masked := make([]uint32, 12*8*4)
	if err := MaskedGemm(Config{}, a, b, ka, kb, masked, 8); err != nil {
		t.Fatal(err)
	}
	plain := make([]uint32, 12*8)
	if err := Gemm(Config{}, a, b, plain, 8); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		for j := 0; j < 8; j++ {
			cell := masked[(i*8+j)*4:]
			if cell[3] != plain[i*8+j] {
				t.Fatalf("(%d,%d): MaskedIJ %d != plain %d", i, j, cell[3], plain[i*8+j])
			}
			if cell[0] != 190 {
				t.Fatalf("(%d,%d): MaskedValid = %d, want 190", i, j, cell[0])
			}
		}
	}
}

func TestQuickMaskedGemm(t *testing.T) {
	f := func(seed int64, m8, n8, s8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := int(m8%20) + 1
		n := int(n8%20) + 1
		samples := int(s8)*2 + 1
		a, ka := randomMasked(rng, m, samples)
		b, kb := randomMasked(rng, n, samples)
		cfg := Config{MC: int(uint64(seed)%13) + 1, NC: int(uint64(seed)%17) + 1, KC: 2, Threads: 2}
		got := make([]uint32, m*n*4)
		if err := MaskedGemm(cfg, a, b, ka, kb, got, n); err != nil {
			return false
		}
		want := make([]uint32, m*n*4)
		if err := MaskedReference(a, b, ka, kb, want, n); err != nil {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMaskedSyrkMirrorMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{1, 2, 7, 33} {
		a, ka := randomMasked(rng, n, 150)
		got := make([]uint32, n*n*4)
		if err := MaskedSyrk(Config{MC: 5, NC: 6, KC: 1, Threads: 2}, a, ka, got, n); err != nil {
			t.Fatal(err)
		}
		MirrorMasked(got, n, n)
		want := make([]uint32, n*n*4)
		if err := MaskedReference(a, a, ka, ka, want, n); err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d: mirrored masked syrk mismatch at %d: %d vs %d", n, i, got[i], want[i])
			}
		}
	}
}

func TestMaskedSyrkValidation(t *testing.T) {
	a, ka := randomMasked(rand.New(rand.NewSource(10)), 3, 20)
	if err := MaskedSyrk(Config{}, a, ka, make([]uint32, 35), 3); err == nil {
		t.Fatal("short C accepted")
	}
	wrong := bitmat.NewMask(4, 20)
	if err := MaskedSyrk(Config{}, a, wrong, make([]uint32, 36), 3); err == nil {
		t.Fatal("mask shape mismatch accepted")
	}
}
