package tanimoto

import (
	"math"
	"testing"
	"testing/quick"

	"ldgemm/internal/blis"
)

// naiveTanimoto computes Eq. 7 from per-bit loops.
func naiveTanimoto(f *Fingerprints, i, j int) float64 {
	var x, p, q int
	for b := 0; b < f.Bits(); b++ {
		bi, bj := f.Has(i, b), f.Has(j, b)
		if bi {
			p++
		}
		if bj {
			q++
		}
		if bi && bj {
			x++
		}
	}
	if p+q-x == 0 {
		return 0
	}
	return float64(x) / float64(p+q-x)
}

func TestPairKnownValues(t *testing.T) {
	f := New(3, 8)
	// A = {0,1,2}, B = {1,2,3}, C = {}
	for _, b := range []int{0, 1, 2} {
		f.Set(0, b)
	}
	for _, b := range []int{1, 2, 3} {
		f.Set(1, b)
	}
	// x=2, p=3, q=3 → 2/4 = 0.5
	if got := f.Pair(0, 1); got != 0.5 {
		t.Fatalf("Pair = %v, want 0.5", got)
	}
	if got := f.Pair(0, 0); got != 1 {
		t.Fatalf("self similarity = %v", got)
	}
	if got := f.Pair(2, 2); got != 0 {
		t.Fatalf("empty-empty similarity = %v, want 0", got)
	}
	if got := f.Pair(0, 2); got != 0 {
		t.Fatalf("disjoint similarity = %v", got)
	}
}

func TestAllPairsMatchesNaive(t *testing.T) {
	f, err := Random(25, 300, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := f.AllPairs(blis.Config{MC: 6, NC: 10, KC: 2, Threads: 3})
	if err != nil {
		t.Fatal(err)
	}
	n := f.Compounds()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := naiveTanimoto(f, i, j)
			if math.Abs(m[i*n+j]-want) > 1e-12 {
				t.Fatalf("(%d,%d) = %v, want %v", i, j, m[i*n+j], want)
			}
			if m[i*n+j] != m[j*n+i] {
				t.Fatalf("asymmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestRandomDensity(t *testing.T) {
	f, err := Random(50, 400, 0.25, 2)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for c := 0; c < f.Compounds(); c++ {
		total += f.Popcount(c)
	}
	got := float64(total) / float64(50*400)
	if math.Abs(got-0.25) > 0.03 {
		t.Fatalf("density %v, want ≈0.25", got)
	}
	if _, err := Random(5, 5, 1.5, 1); err == nil {
		t.Fatal("invalid density accepted")
	}
}

func TestTopK(t *testing.T) {
	f := New(4, 8)
	// query 0: bits {0,1,2,3}
	for _, b := range []int{0, 1, 2, 3} {
		f.Set(0, b)
	}
	// compound 1: identical → sim 1
	for _, b := range []int{0, 1, 2, 3} {
		f.Set(1, b)
	}
	// compound 2: half overlap {2,3,4,5} → x=2, p=q=4 → 2/6
	for _, b := range []int{2, 3, 4, 5} {
		f.Set(2, b)
	}
	// compound 3: disjoint {6,7}
	for _, b := range []int{6, 7} {
		f.Set(3, b)
	}
	got, err := f.TopK(0, 2, blis.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Compound != 1 || got[1].Compound != 2 {
		t.Fatalf("TopK = %+v", got)
	}
	if got[0].Similarity != 1 || math.Abs(got[1].Similarity-2.0/6) > 1e-12 {
		t.Fatalf("similarities %+v", got)
	}
	all, err := f.TopK(0, 100, blis.Config{})
	if err != nil || len(all) != 3 {
		t.Fatalf("k beyond n: %v %+v", err, all)
	}
	if _, err := f.TopK(9, 1, blis.Config{}); err == nil {
		t.Fatal("bad query accepted")
	}
	if _, err := f.TopK(0, -1, blis.Config{}); err == nil {
		t.Fatal("negative k accepted")
	}
}

// Property: AllPairs equals the naive coefficient and stays in [0, 1].
func TestQuickAllPairs(t *testing.T) {
	f := func(seed int64, n8, b8 uint8) bool {
		n := int(n8%12) + 1
		bits := int(b8%200) + 1
		fp, err := Random(n, bits, 0.4, seed)
		if err != nil {
			return false
		}
		m, err := fp.AllPairs(blis.Config{})
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				v := m[i*n+j]
				if v < 0 || v > 1 {
					return false
				}
				if math.Abs(v-naiveTanimoto(fp, i, j)) > 1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
