package tanimoto

import "ldgemm/internal/popcount"

// onesCount delegates the single-word population count to
// internal/popcount, the one home for popcount strategy.
func onesCount(x uint64) int { return popcount.Word(x) }
