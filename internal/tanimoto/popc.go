package tanimoto

import "math/bits"

// onesCount is the 64-bit population count.
func onesCount(x uint64) int { return bits.OnesCount64(x) }
