// Package tanimoto adapts the LD GEMM machinery to chemical informatics,
// the "other domains" use case of Section VII: compounds represented as
// binary 2-D fingerprints, compared with the Tanimoto coefficient
//
//	T(A, B) = x / (p + q − x)
//
// where p and q are the set-bit counts of the two fingerprints and x the
// set-bit count of their intersection (Eq. 7). The intersection counts for
// all pairs are exactly the haplotype-count matrix of the LD kernel, so
// all-pairs similarity runs through the same blocked GEMM.
package tanimoto

import (
	"fmt"
	"math/rand"
	"sort"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/blis"
)

// Fingerprints is a set of equal-width binary fingerprints. Internally a
// bit matrix with one "SNP" column per compound and one "sample" bit per
// fingerprint feature.
type Fingerprints struct {
	m *bitmat.Matrix
}

// New returns a zeroed fingerprint set.
func New(compounds, bits int) *Fingerprints {
	return &Fingerprints{m: bitmat.New(compounds, bits)}
}

// Compounds returns the number of fingerprints.
func (f *Fingerprints) Compounds() int { return f.m.SNPs }

// Bits returns the fingerprint width.
func (f *Fingerprints) Bits() int { return f.m.Samples }

// Set marks feature bit b of compound c.
func (f *Fingerprints) Set(c, b int) { f.m.SetBit(c, b) }

// Clear unmarks feature bit b of compound c.
func (f *Fingerprints) Clear(c, b int) { f.m.ClearBit(c, b) }

// Has reports feature bit b of compound c.
func (f *Fingerprints) Has(c, b int) bool { return f.m.Bit(c, b) }

// Popcount returns the number of set features of compound c.
func (f *Fingerprints) Popcount(c int) int { return f.m.DerivedCount(c) }

// Random generates a fingerprint set in which each feature bit is set
// independently with probability density — a stand-in for the output of a
// subgraph-isomorphism fingerprinting pipeline.
func Random(compounds, bits int, density float64, seed int64) (*Fingerprints, error) {
	if density < 0 || density > 1 {
		return nil, fmt.Errorf("tanimoto: invalid density %v", density)
	}
	rng := rand.New(rand.NewSource(seed))
	f := New(compounds, bits)
	for c := 0; c < compounds; c++ {
		for b := 0; b < bits; b++ {
			if rng.Float64() < density {
				f.Set(c, b)
			}
		}
	}
	return f, nil
}

// Pair computes the Tanimoto coefficient between two compounds directly.
// Two empty fingerprints have similarity 0 by convention.
func (f *Fingerprints) Pair(i, j int) float64 {
	si, sj := f.m.SNP(i), f.m.SNP(j)
	var x, p, q int
	for w := range si {
		x += onesCount(si[w] & sj[w])
		p += onesCount(si[w])
		q += onesCount(sj[w])
	}
	den := p + q - x
	if den == 0 {
		return 0
	}
	return float64(x) / float64(den)
}

// AllPairs computes the full symmetric Tanimoto matrix through the blocked
// GEMM driver: one rank-k update for the intersection counts, then the
// O(n²) Eq. 7 epilogue.
func (f *Fingerprints) AllPairs(cfg blis.Config) ([]float64, error) {
	n := f.m.SNPs
	counts := make([]uint32, n*n)
	if err := blis.Syrk(cfg, f.m, counts, n, true); err != nil {
		return nil, err
	}
	pops := make([]int, n)
	for c := range pops {
		pops[c] = f.m.DerivedCount(c)
	}
	out := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			x := int(counts[i*n+j])
			den := pops[i] + pops[j] - x
			var t float64
			if den != 0 {
				t = float64(x) / float64(den)
			}
			out[i*n+j] = t
			out[j*n+i] = t
		}
	}
	return out, nil
}

// Match is one similarity-search hit.
type Match struct {
	Compound   int
	Similarity float64
}

// TopK returns the k most similar compounds to query (excluding the query
// itself), ties broken by compound index. It computes one GEMM row via
// Cross on a single-column slice.
func (f *Fingerprints) TopK(query, k int, cfg blis.Config) ([]Match, error) {
	n := f.m.SNPs
	if query < 0 || query >= n {
		return nil, fmt.Errorf("tanimoto: query %d outside 0..%d", query, n-1)
	}
	if k < 0 {
		return nil, fmt.Errorf("tanimoto: negative k")
	}
	row := make([]uint32, n)
	if err := blis.Gemm(cfg, f.m.Slice(query, query+1), f.m, row, n); err != nil {
		return nil, err
	}
	qp := f.m.DerivedCount(query)
	matches := make([]Match, 0, n-1)
	for c := 0; c < n; c++ {
		if c == query {
			continue
		}
		x := int(row[c])
		den := qp + f.m.DerivedCount(c) - x
		sim := 0.0
		if den != 0 {
			sim = float64(x) / float64(den)
		}
		matches = append(matches, Match{Compound: c, Similarity: sim})
	}
	sort.SliceStable(matches, func(a, b int) bool {
		if matches[a].Similarity != matches[b].Similarity {
			return matches[a].Similarity > matches[b].Similarity
		}
		return matches[a].Compound < matches[b].Compound
	})
	if k < len(matches) {
		matches = matches[:k]
	}
	return matches, nil
}
