package kernel

import "ldgemm/internal/popcount"

// popc delegates the single-word population count to internal/popcount,
// the one home for popcount strategy; the compiler inlines the chain to
// the hardware POPCNT instruction on amd64.
func popc(x uint64) uint32 { return popcount.Count(x) }
