package kernel

import "math/bits"

// popc is the 64-bit population count, inlined by the compiler to the
// hardware POPCNT instruction on amd64.
func popc(x uint64) uint32 { return uint32(bits.OnesCount64(x)) }
