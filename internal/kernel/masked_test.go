package kernel

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ldgemm/internal/bitmat"
)

// randomMasked builds a random matrix plus mask with the s = s & c
// invariant applied.
func randomMasked(rng *rand.Rand, snps, samples int) (*bitmat.Matrix, *bitmat.Mask) {
	m := randomMatrix(rng, snps, samples)
	k := bitmat.NewMask(snps, samples)
	for i := 0; i < snps; i++ {
		for s := 0; s < samples; s++ {
			if rng.Intn(4) == 0 {
				k.Invalidate(i, s)
			}
		}
	}
	if err := k.ApplyTo(m); err != nil {
		panic(err)
	}
	return m, k
}

// referenceMasked computes the four Section VII counts directly.
func referenceMasked(m *bitmat.Matrix, k *bitmat.Mask, i, j int) [4]uint32 {
	var out [4]uint32
	for s := 0; s < m.Samples; s++ {
		if !k.Bit(i, s) || !k.Bit(j, s) {
			continue
		}
		out[MaskedValid]++
		bi, bj := m.Bit(i, s), m.Bit(j, s)
		if bi {
			out[MaskedI]++
		}
		if bj {
			out[MaskedJ]++
		}
		if bi && bj {
			out[MaskedIJ]++
		}
	}
	return out
}

func runMasked(mk MaskedKernel, m *bitmat.Matrix, k *bitmat.Mask) []uint32 {
	kc := m.Words
	ap := make([]uint64, 2*kc*mk.MR)
	bp := make([]uint64, 2*kc*mk.NR)
	PackMaskedPanel(ap, m, k, 0, min(m.SNPs, mk.MR), mk.MR, 0, kc)
	PackMaskedPanel(bp, m, k, 0, min(m.SNPs, mk.NR), mk.NR, 0, kc)
	c := make([]uint32, mk.MR*mk.NR*4)
	mk.Fn(kc, ap, bp, c, mk.NR)
	return c
}

func TestMaskedKernelsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, mk := range []MaskedKernel{MaskedGeneric(2, 2), MaskedGeneric(3, 5), Masked2x2()} {
		m, k := randomMasked(rng, max(mk.MR, mk.NR), 200)
		got := runMasked(mk, m, k)
		for i := 0; i < mk.MR && i < m.SNPs; i++ {
			for j := 0; j < mk.NR && j < m.SNPs; j++ {
				want := referenceMasked(m, k, i, j)
				for tcount := 0; tcount < 4; tcount++ {
					if got[(i*mk.NR+j)*4+tcount] != want[tcount] {
						t.Errorf("%s: cell (%d,%d) count %d = %d, want %d",
							mk.Name, i, j, tcount, got[(i*mk.NR+j)*4+tcount], want[tcount])
					}
				}
			}
		}
	}
}

func TestMaskedPaddingRowsAreZero(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	mk := Masked2x2()
	// Only one real SNP; row 1 of each panel is padding.
	m, k := randomMasked(rng, 1, 100)
	got := runMasked(mk, m, k)
	for _, cell := range [][2]int{{0, 1}, {1, 0}, {1, 1}} {
		for tcount := 0; tcount < 4; tcount++ {
			if got[(cell[0]*mk.NR+cell[1])*4+tcount] != 0 {
				t.Fatalf("padding cell %v count %d nonzero", cell, tcount)
			}
		}
	}
}

func TestQuickMasked2x2MatchesGeneric(t *testing.T) {
	g := MaskedGeneric(2, 2)
	u := Masked2x2()
	f := func(seed int64, words8 uint8) bool {
		kc := int(words8%6) + 1
		rng := rand.New(rand.NewSource(seed))
		m, k := randomMasked(rng, 2, kc*64)
		a := runMasked(u, m, k)
		b := runMasked(g, m, k)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMicroKernel(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const kcWords = 256
	for _, k := range Fixed {
		a := randomMatrix(rng, k.MR, kcWords*64)
		bb := randomMatrix(rng, k.NR, kcWords*64)
		ap := make([]uint64, kcWords*k.MR)
		bp := make([]uint64, kcWords*k.NR)
		PackPanel(ap, a, 0, k.MR, k.MR, 0, kcWords)
		PackPanel(bp, bb, 0, k.NR, k.NR, 0, kcWords)
		c := make([]uint32, k.MR*k.NR)
		b.Run(k.Name, func(b *testing.B) {
			// ops = one AND+POPCNT+ADD triple per (word, cell)
			b.SetBytes(int64(kcWords * k.MR * k.NR * 8))
			for i := 0; i < b.N; i++ {
				k.Fn(kcWords, ap, bp, c, k.NR)
			}
		})
	}
}
