package kernel

// masked2x2Scalar is the Masked2x2 compute loop with all sixteen
// accumulators as scalar locals. The [2][2][4]uint32 array formulation
// forces the accumulators to memory (the compiler will not register-
// allocate indexed array elements); naming them individually lets the
// sixteen chains live in registers, which benchmarks ~2× faster.
func masked2x2Scalar(kc int, ap, bp []uint64, c []uint32, ldc int) {
	var (
		v00, i00, j00, x00 uint32
		v01, i01, j01, x01 uint32
		v10, i10, j10, x10 uint32
		v11, i11, j11, x11 uint32
	)
	for l := 0; l < kc; l++ {
		a := ap[4*l : 4*l+4 : 4*l+4]
		b := bp[4*l : 4*l+4 : 4*l+4]
		s0, c0 := a[0], a[1]
		s1, c1 := a[2], a[3]
		t0, d0 := b[0], b[1]
		t1, d1 := b[2], b[3]

		m00 := c0 & d0
		v00 += popc(m00)
		i00 += popc(m00 & s0)
		j00 += popc(m00 & t0)
		x00 += popc(m00 & s0 & t0)

		m01 := c0 & d1
		v01 += popc(m01)
		i01 += popc(m01 & s0)
		j01 += popc(m01 & t1)
		x01 += popc(m01 & s0 & t1)

		m10 := c1 & d0
		v10 += popc(m10)
		i10 += popc(m10 & s1)
		j10 += popc(m10 & t0)
		x10 += popc(m10 & s1 & t0)

		m11 := c1 & d1
		v11 += popc(m11)
		i11 += popc(m11 & s1)
		j11 += popc(m11 & t1)
		x11 += popc(m11 & s1 & t1)
	}
	c[0] += v00
	c[1] += i00
	c[2] += j00
	c[3] += x00
	c[4] += v01
	c[5] += i01
	c[6] += j01
	c[7] += x01
	c[ldc*4] += v10
	c[ldc*4+1] += i10
	c[ldc*4+2] += j10
	c[ldc*4+3] += x10
	c[ldc*4+4] += v11
	c[ldc*4+5] += i11
	c[ldc*4+6] += j11
	c[ldc*4+7] += x11
}
