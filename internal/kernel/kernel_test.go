package kernel

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/popcount"
)

// randomMatrix builds a random bit matrix with about half the bits set.
func randomMatrix(rng *rand.Rand, snps, samples int) *bitmat.Matrix {
	m := bitmat.New(snps, samples)
	mask := m.PadMask()
	for i := 0; i < snps; i++ {
		words := m.SNP(i)
		for w := range words {
			words[w] = rng.Uint64()
		}
		if len(words) > 0 {
			words[len(words)-1] &= mask
		}
	}
	return m
}

// runKernel packs panels for SNPs [0,MR) of a and [0,NR) of b over all
// words and applies the kernel once.
func runKernel(k Kernel, a, b *bitmat.Matrix) []uint32 {
	kc := a.Words
	ap := make([]uint64, kc*k.MR)
	bp := make([]uint64, kc*k.NR)
	PackPanel(ap, a, 0, min(a.SNPs, k.MR), k.MR, 0, kc)
	PackPanel(bp, b, 0, min(b.SNPs, k.NR), k.NR, 0, kc)
	c := make([]uint32, k.MR*k.NR)
	k.Fn(kc, ap, bp, c, k.NR)
	return c
}

func TestFixedKernelsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, k := range Fixed {
		a := randomMatrix(rng, k.MR, 300)
		b := randomMatrix(rng, k.NR, 300)
		got := runKernel(k, a, b)
		for i := 0; i < k.MR; i++ {
			for j := 0; j < k.NR; j++ {
				want := uint32(popcount.AndCount(a.SNP(i), b.SNP(j)))
				if got[i*k.NR+j] != want {
					t.Errorf("%s: C[%d,%d] = %d, want %d", k.Name, i, j, got[i*k.NR+j], want)
				}
			}
		}
	}
}

func TestKernelsAccumulate(t *testing.T) {
	// Calling the kernel twice must double the counts (C += semantics).
	rng := rand.New(rand.NewSource(5))
	for _, k := range Fixed {
		a := randomMatrix(rng, k.MR, 128)
		b := randomMatrix(rng, k.NR, 128)
		kc := a.Words
		ap := make([]uint64, kc*k.MR)
		bp := make([]uint64, kc*k.NR)
		PackPanel(ap, a, 0, k.MR, k.MR, 0, kc)
		PackPanel(bp, b, 0, k.NR, k.NR, 0, kc)
		c := make([]uint32, k.MR*k.NR)
		k.Fn(kc, ap, bp, c, k.NR)
		once := make([]uint32, len(c))
		copy(once, c)
		k.Fn(kc, ap, bp, c, k.NR)
		for i := range c {
			if c[i] != 2*once[i] {
				t.Fatalf("%s: accumulation broken at %d: %d after two calls, %d after one", k.Name, i, c[i], once[i])
			}
		}
	}
}

func TestKernelsRespectLdc(t *testing.T) {
	// With ldc > NR, the gap columns must stay untouched.
	rng := rand.New(rand.NewSource(11))
	for _, k := range Fixed {
		a := randomMatrix(rng, k.MR, 64)
		b := randomMatrix(rng, k.NR, 64)
		kc := a.Words
		ap := make([]uint64, kc*k.MR)
		bp := make([]uint64, kc*k.NR)
		PackPanel(ap, a, 0, k.MR, k.MR, 0, kc)
		PackPanel(bp, b, 0, k.NR, k.NR, 0, kc)
		ldc := k.NR + 3
		c := make([]uint32, k.MR*ldc)
		sentinel := uint32(0xdeadbeef)
		for i := 0; i < k.MR; i++ {
			for j := k.NR; j < ldc; j++ {
				c[i*ldc+j] = sentinel
			}
		}
		k.Fn(kc, ap, bp, c, ldc)
		for i := 0; i < k.MR; i++ {
			for j := k.NR; j < ldc; j++ {
				if c[i*ldc+j] != sentinel {
					t.Fatalf("%s: wrote outside tile at (%d,%d)", k.Name, i, j)
				}
			}
			for j := 0; j < k.NR; j++ {
				want := uint32(popcount.AndCount(a.SNP(i), b.SNP(j)))
				if c[i*ldc+j] != want {
					t.Fatalf("%s: C[%d,%d] = %d, want %d", k.Name, i, j, c[i*ldc+j], want)
				}
			}
		}
	}
}

func TestGenericMatchesFixedShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, k := range Fixed {
		g := Generic(k.MR, k.NR)
		a := randomMatrix(rng, k.MR, 200)
		b := randomMatrix(rng, k.NR, 200)
		got := runKernel(k, a, b)
		want := runKernel(g, a, b)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s vs %s: cell %d: %d vs %d", k.Name, g.Name, i, got[i], want[i])
			}
		}
	}
}

func TestPackPanelZeroPadding(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m := randomMatrix(rng, 3, 128) // 2 words per SNP
	const rr = 4
	dst := make([]uint64, m.Words*rr)
	for i := range dst {
		dst[i] = ^uint64(0) // must be overwritten
	}
	PackPanel(dst, m, 0, 3, rr, 0, m.Words)
	for l := 0; l < m.Words; l++ {
		for i := 0; i < 3; i++ {
			if dst[l*rr+i] != m.SNP(i)[l] {
				t.Fatalf("packed word (%d,%d) mismatch", l, i)
			}
		}
		if dst[l*rr+3] != 0 {
			t.Fatalf("padding row not zeroed at word %d", l)
		}
	}
}

func TestPackPanelSubrange(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	m := randomMatrix(rng, 6, 64*5)
	const rr, pc, kc = 2, 1, 3
	dst := make([]uint64, kc*rr)
	PackPanel(dst, m, 4, 2, rr, pc, kc)
	for l := 0; l < kc; l++ {
		for i := 0; i < rr; i++ {
			if dst[l*rr+i] != m.SNP(4 + i)[pc+l] {
				t.Fatalf("subrange pack (%d,%d) mismatch", l, i)
			}
		}
	}
}

func TestByName(t *testing.T) {
	k, err := ByName("4x4")
	if err != nil || k.MR != 4 || k.NR != 4 {
		t.Fatalf("ByName(4x4) = %+v, %v", k, err)
	}
	if _, err := ByName("3x7"); err == nil {
		t.Fatal("unknown kernel accepted")
	}
}

// Property: every fixed kernel agrees with popcount.AndCount on random
// panels of random depth, including kc == 0.
func TestQuickKernels(t *testing.T) {
	for _, k := range Fixed {
		k := k
		f := func(seed int64, words8 uint8) bool {
			kc := int(words8 % 9) // 0..8 words
			rng := rand.New(rand.NewSource(seed))
			a := randomMatrix(rng, k.MR, kc*64)
			b := randomMatrix(rng, k.NR, kc*64)
			got := runKernel(k, a, b)
			for i := 0; i < k.MR; i++ {
				for j := 0; j < k.NR; j++ {
					if got[i*k.NR+j] != uint32(popcount.AndCount(a.SNP(i), b.SNP(j))) {
						return false
					}
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
			t.Errorf("%s: %v", k.Name, err)
		}
	}
}
