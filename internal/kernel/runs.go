package kernel

import "ldgemm/internal/bitmat"

// Run-packed panel layout for the batched (CSA/vector) popcount kernel
// family. Where PackPanel interleaves SNPs word-by-word so a scalar
// micro-kernel walks both panels with unit stride, the batched kernels
// consume whole kc-word runs per SNP — each register-tile cell is one
// slice AND-count over two contiguous runs — so the panel lays the rr
// SNPs out end to end instead:
//
//	dst[i*kc + l] = word (pc+l) of SNP (snp+i)
//
// The panel occupies the same kc*rr words as the interleaved layout, so
// the blocked driver's buffer arithmetic (slab sizing, SYRK pack
// sharing) is layout-agnostic. Zero padding rows (i >= count) keep the
// fringe guarantee: an all-zero run contributes zero to every count.
func PackPanelRuns(dst []uint64, m *bitmat.Matrix, snp, count, rr, pc, kc int) {
	dst = dst[:kc*rr]
	for i := 0; i < count; i++ {
		copy(dst[i*kc:(i+1)*kc], m.SNP(snp+i)[pc:pc+kc])
	}
	clear(dst[count*kc:])
}

// PackMaskedPanelRuns is the run layout for the masked family: each SNP
// contributes two adjacent kc-word runs, values first, validity mask
// second —
//
//	dst[i*2*kc + l]      = value word (pc+l) of SNP (snp+i)
//	dst[i*2*kc + kc + l] = mask  word (pc+l) of SNP (snp+i)
//
// matching PackMaskedPanel's 2-words-per-(SNP, word) footprint. Padding
// rows get zero values and zero masks, producing zero for all four
// Section VII counts.
func PackMaskedPanelRuns(dst []uint64, m *bitmat.Matrix, k *bitmat.Mask, snp, count, rr, pc, kc int) {
	dst = dst[:2*kc*rr]
	for i := 0; i < count; i++ {
		copy(dst[i*2*kc:i*2*kc+kc], m.SNP(snp+i)[pc:pc+kc])
		copy(dst[i*2*kc+kc:(i+1)*2*kc], k.SNP(snp+i)[pc:pc+kc])
	}
	clear(dst[count*2*kc:])
}
