// Package kernel implements the register-blocked LD micro-kernels of
// Section IV of the paper.
//
// A micro-kernel computes a small mr×nr tile of the haplotype count matrix
//
//	C[i,j] += Σ_{l<kc} POPCNT(A[l,i] & B[l,j])
//
// from two packed panels. The panels use the BLIS packing layout: the A
// panel interleaves mr SNPs word-by-word (ap[l*mr+i] is word l of micro-row
// i), and the B panel interleaves nr SNPs (bp[l*nr+j]). Interleaving makes
// the kc loop walk both panels with unit stride, so the micro-kernel streams
// two contiguous buffers while its mr·nr accumulators stay in registers —
// exactly the structure a BLIS dgemm micro-kernel has, with the FMA replaced
// by the AND+POPCNT+ADD triple.
package kernel

import (
	"fmt"
	"math/bits"
)

// Func computes an MR×NR micro-tile: c[i*ldc+j] accumulates the haplotype
// counts. ap holds kc*MR words, bp holds kc*NR words, packed as described
// in the package comment.
type Func func(kc int, ap, bp []uint64, c []uint32, ldc int)

// Kernel bundles a micro-kernel with its register-block shape.
type Kernel struct {
	Name string
	MR   int
	NR   int
	Fn   Func
}

// Generic returns a micro-kernel of arbitrary shape built from nested
// loops. It is the reference implementation the fixed-shape kernels are
// tested against, and handles fringe tiles in the driver.
func Generic(mr, nr int) Kernel {
	fn := func(kc int, ap, bp []uint64, c []uint32, ldc int) {
		for l := 0; l < kc; l++ {
			a := ap[l*mr : (l+1)*mr]
			b := bp[l*nr : (l+1)*nr]
			for i := 0; i < mr; i++ {
				ai := a[i]
				row := c[i*ldc : i*ldc+nr]
				for j := 0; j < nr; j++ {
					row[j] += uint32(bits.OnesCount64(ai & b[j]))
				}
			}
		}
	}
	return Kernel{Name: fmt.Sprintf("generic%dx%d", mr, nr), MR: mr, NR: nr, Fn: fn}
}

// micro1x1 is the degenerate register blocking: a plain dot product. It is
// the shape an unblocked vector-kernel LD implementation uses per pair.
func micro1x1(kc int, ap, bp []uint64, c []uint32, ldc int) {
	var acc uint32
	for l := 0; l < kc; l++ {
		acc += uint32(bits.OnesCount64(ap[l] & bp[l]))
	}
	c[0] += acc
}

// micro2x2 keeps 4 accumulators live.
func micro2x2(kc int, ap, bp []uint64, c []uint32, ldc int) {
	var c00, c01, c10, c11 uint32
	for l := 0; l < kc; l++ {
		a0, a1 := ap[2*l], ap[2*l+1]
		b0, b1 := bp[2*l], bp[2*l+1]
		c00 += uint32(bits.OnesCount64(a0 & b0))
		c01 += uint32(bits.OnesCount64(a0 & b1))
		c10 += uint32(bits.OnesCount64(a1 & b0))
		c11 += uint32(bits.OnesCount64(a1 & b1))
	}
	c[0] += c00
	c[1] += c01
	c[ldc] += c10
	c[ldc+1] += c11
}

// micro4x4 keeps 16 accumulators live; with 14+ integer registers on amd64
// this is near the sweet spot for the AND+POPCNT+ADD triple in Go.
func micro4x4(kc int, ap, bp []uint64, c []uint32, ldc int) {
	var (
		c00, c01, c02, c03 uint32
		c10, c11, c12, c13 uint32
		c20, c21, c22, c23 uint32
		c30, c31, c32, c33 uint32
	)
	for l := 0; l < kc; l++ {
		a := ap[4*l : 4*l+4 : 4*l+4]
		b := bp[4*l : 4*l+4 : 4*l+4]
		a0, a1, a2, a3 := a[0], a[1], a[2], a[3]
		b0, b1, b2, b3 := b[0], b[1], b[2], b[3]
		c00 += uint32(bits.OnesCount64(a0 & b0))
		c01 += uint32(bits.OnesCount64(a0 & b1))
		c02 += uint32(bits.OnesCount64(a0 & b2))
		c03 += uint32(bits.OnesCount64(a0 & b3))
		c10 += uint32(bits.OnesCount64(a1 & b0))
		c11 += uint32(bits.OnesCount64(a1 & b1))
		c12 += uint32(bits.OnesCount64(a1 & b2))
		c13 += uint32(bits.OnesCount64(a1 & b3))
		c20 += uint32(bits.OnesCount64(a2 & b0))
		c21 += uint32(bits.OnesCount64(a2 & b1))
		c22 += uint32(bits.OnesCount64(a2 & b2))
		c23 += uint32(bits.OnesCount64(a2 & b3))
		c30 += uint32(bits.OnesCount64(a3 & b0))
		c31 += uint32(bits.OnesCount64(a3 & b1))
		c32 += uint32(bits.OnesCount64(a3 & b2))
		c33 += uint32(bits.OnesCount64(a3 & b3))
	}
	c[0] += c00
	c[1] += c01
	c[2] += c02
	c[3] += c03
	c[ldc] += c10
	c[ldc+1] += c11
	c[ldc+2] += c12
	c[ldc+3] += c13
	c[2*ldc] += c20
	c[2*ldc+1] += c21
	c[2*ldc+2] += c22
	c[2*ldc+3] += c23
	c[3*ldc] += c30
	c[3*ldc+1] += c31
	c[3*ldc+2] += c32
	c[3*ldc+3] += c33
}

// micro8x4 trades A reuse for more accumulators (32), amortizing each B
// load over eight rows.
func micro8x4(kc int, ap, bp []uint64, c []uint32, ldc int) {
	var acc [8][4]uint32
	for l := 0; l < kc; l++ {
		a := ap[8*l : 8*l+8 : 8*l+8]
		b := bp[4*l : 4*l+4 : 4*l+4]
		b0, b1, b2, b3 := b[0], b[1], b[2], b[3]
		for i := 0; i < 8; i++ {
			ai := a[i]
			acc[i][0] += uint32(bits.OnesCount64(ai & b0))
			acc[i][1] += uint32(bits.OnesCount64(ai & b1))
			acc[i][2] += uint32(bits.OnesCount64(ai & b2))
			acc[i][3] += uint32(bits.OnesCount64(ai & b3))
		}
	}
	for i := 0; i < 8; i++ {
		row := c[i*ldc : i*ldc+4]
		row[0] += acc[i][0]
		row[1] += acc[i][1]
		row[2] += acc[i][2]
		row[3] += acc[i][3]
	}
}

// micro4x8 is the transpose-shaped variant of micro8x4.
func micro4x8(kc int, ap, bp []uint64, c []uint32, ldc int) {
	var acc [4][8]uint32
	for l := 0; l < kc; l++ {
		a := ap[4*l : 4*l+4 : 4*l+4]
		b := bp[8*l : 8*l+8 : 8*l+8]
		a0, a1, a2, a3 := a[0], a[1], a[2], a[3]
		for j := 0; j < 8; j++ {
			bj := b[j]
			acc[0][j] += uint32(bits.OnesCount64(a0 & bj))
			acc[1][j] += uint32(bits.OnesCount64(a1 & bj))
			acc[2][j] += uint32(bits.OnesCount64(a2 & bj))
			acc[3][j] += uint32(bits.OnesCount64(a3 & bj))
		}
	}
	for i := 0; i < 4; i++ {
		row := c[i*ldc : i*ldc+8]
		for j := 0; j < 8; j++ {
			row[j] += acc[i][j]
		}
	}
}

// micro8x8 uses 64 accumulators; past what fits in registers, but each
// loaded panel word is reused 8×, which pays on memory-bound shapes.
func micro8x8(kc int, ap, bp []uint64, c []uint32, ldc int) {
	var acc [8][8]uint32
	for l := 0; l < kc; l++ {
		a := ap[8*l : 8*l+8 : 8*l+8]
		b := bp[8*l : 8*l+8 : 8*l+8]
		for i := 0; i < 8; i++ {
			ai := a[i]
			ri := &acc[i]
			ri[0] += uint32(bits.OnesCount64(ai & b[0]))
			ri[1] += uint32(bits.OnesCount64(ai & b[1]))
			ri[2] += uint32(bits.OnesCount64(ai & b[2]))
			ri[3] += uint32(bits.OnesCount64(ai & b[3]))
			ri[4] += uint32(bits.OnesCount64(ai & b[4]))
			ri[5] += uint32(bits.OnesCount64(ai & b[5]))
			ri[6] += uint32(bits.OnesCount64(ai & b[6]))
			ri[7] += uint32(bits.OnesCount64(ai & b[7]))
		}
	}
	for i := 0; i < 8; i++ {
		row := c[i*ldc : i*ldc+8]
		for j := 0; j < 8; j++ {
			row[j] += acc[i][j]
		}
	}
}

// Fixed enumerates every hand-unrolled micro-kernel.
var Fixed = []Kernel{
	{Name: "1x1", MR: 1, NR: 1, Fn: micro1x1},
	{Name: "2x2", MR: 2, NR: 2, Fn: micro2x2},
	{Name: "4x4", MR: 4, NR: 4, Fn: micro4x4},
	{Name: "8x4", MR: 8, NR: 4, Fn: micro8x4},
	{Name: "4x8", MR: 4, NR: 8, Fn: micro4x8},
	{Name: "8x8", MR: 8, NR: 8, Fn: micro8x8},
}

// Default is the micro-kernel the BLIS driver selects when not overridden.
// 4x4 keeps all 16 accumulators plus both operand quads in registers and
// benchmarks fastest on amd64 (see BenchmarkMicroKernel).
var Default = Fixed[2] // 4x4

// ByName returns a fixed kernel by name, or an error listing choices.
func ByName(name string) (Kernel, error) {
	for _, k := range Fixed {
		if k.Name == name {
			return k, nil
		}
	}
	names := make([]string, len(Fixed))
	for i, k := range Fixed {
		names[i] = k.Name
	}
	return Kernel{}, fmt.Errorf("kernel: unknown micro-kernel %q (have %v)", name, names)
}
