package kernel

import "ldgemm/internal/bitmat"

// PackPanel packs rr consecutive SNPs of m (starting at snp, count of them
// real, the rest zero-padded) over the word range [pc, pc+kc) into the
// interleaved panel layout the micro-kernels consume:
//
//	dst[l*rr + i] = word (pc+l) of SNP (snp+i)
//
// dst must have kc*rr capacity. Zero padding rows (i >= count) are the
// mechanism by which fringe tiles are computed at full micro-kernel speed:
// an all-zero SNP contributes zero to every count.
//
// PackPanel only reads the source matrix and only writes dst[:kc*rr], so
// concurrent calls are safe whenever their dst panels do not overlap — the
// parallel driver relies on this to pack a slab's panels from many
// goroutines at once. The same holds for PackMaskedPanel.
func PackPanel(dst []uint64, m *bitmat.Matrix, snp, count, rr, pc, kc int) {
	dst = dst[:kc*rr]
	for i := 0; i < count; i++ {
		src := m.SNP(snp + i)[pc : pc+kc]
		for l := 0; l < kc; l++ {
			dst[l*rr+i] = src[l]
		}
	}
	for i := count; i < rr; i++ {
		for l := 0; l < kc; l++ {
			dst[l*rr+i] = 0
		}
	}
}

// MaskedCountOffsets names the four counts the masked micro-kernel emits
// per (i, j) cell, in c[(i*ldc+j)*4 + offset] order (Section VII of the
// paper, "Considering alignment gaps").
const (
	MaskedValid = 0 // popcount(cᵢ & cⱼ): samples valid at both SNPs
	MaskedI     = 1 // popcount(cᵢⱼ & sᵢ): derived at i among valid pairs
	MaskedJ     = 2 // popcount(cᵢⱼ & sⱼ)
	MaskedIJ    = 3 // popcount(cᵢⱼ & sᵢ & sⱼ): joint derived among valid
)

// MaskedFunc computes an MR×NR micro-tile of the four Section VII counts.
// Panels interleave (value, mask) word pairs: ap[(l*mr+i)*2] is the SNP
// word, ap[(l*mr+i)*2+1] the validity word.
type MaskedFunc func(kc int, ap, bp []uint64, c []uint32, ldc int)

// MaskedKernel bundles a masked micro-kernel with its shape.
type MaskedKernel struct {
	Name string
	MR   int
	NR   int
	Fn   MaskedFunc
}

// PackMaskedPanel packs (value, mask) pairs in the layout MaskedFunc
// expects. Padding rows get zero values with zero masks, so they produce
// zero for all four counts.
func PackMaskedPanel(dst []uint64, m *bitmat.Matrix, k *bitmat.Mask, snp, count, rr, pc, kc int) {
	dst = dst[:2*kc*rr]
	for i := 0; i < count; i++ {
		sv := m.SNP(snp + i)[pc : pc+kc]
		cv := k.SNP(snp + i)[pc : pc+kc]
		for l := 0; l < kc; l++ {
			dst[(l*rr+i)*2] = sv[l]
			dst[(l*rr+i)*2+1] = cv[l]
		}
	}
	for i := count; i < rr; i++ {
		for l := 0; l < kc; l++ {
			dst[(l*rr+i)*2] = 0
			dst[(l*rr+i)*2+1] = 0
		}
	}
}

// MaskedGeneric returns a masked micro-kernel of arbitrary shape. Per word
// it fuses the four Section VII popcounts, so the matrix is traversed once
// rather than four times.
func MaskedGeneric(mr, nr int) MaskedKernel {
	fn := func(kc int, ap, bp []uint64, c []uint32, ldc int) {
		for l := 0; l < kc; l++ {
			a := ap[l*mr*2 : (l+1)*mr*2]
			b := bp[l*nr*2 : (l+1)*nr*2]
			for i := 0; i < mr; i++ {
				si, ci := a[2*i], a[2*i+1]
				for j := 0; j < nr; j++ {
					sj, cj := b[2*j], b[2*j+1]
					cij := ci & cj
					cell := c[(i*ldc+j)*4 : (i*ldc+j)*4+4]
					cell[MaskedValid] += popc(cij)
					cell[MaskedI] += popc(cij & si)
					cell[MaskedJ] += popc(cij & sj)
					cell[MaskedIJ] += popc(cij & si & sj)
				}
			}
		}
	}
	return MaskedKernel{Name: "masked-generic", MR: mr, NR: nr, Fn: fn}
}

// Masked2x2 is the unrolled masked micro-kernel used by the gap-aware
// driver; the 4-counts-per-cell payload leaves fewer registers for
// accumulators, so the register block is smaller than the unmasked
// default. The compute loop lives in masked2x2.go with scalar
// accumulators.
func Masked2x2() MaskedKernel {
	return MaskedKernel{Name: "masked2x2", MR: 2, NR: 2, Fn: masked2x2Scalar}
}
