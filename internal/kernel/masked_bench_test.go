package kernel

import (
	"math/rand"
	"testing"
)

func BenchmarkMaskedKernel(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const kcWords = 256
	for _, mk := range []MaskedKernel{Masked2x2(), MaskedGeneric(2, 2), MaskedGeneric(4, 4)} {
		m, k := randomMasked(rng, max(mk.MR, mk.NR), kcWords*64)
		ap := make([]uint64, 2*kcWords*mk.MR)
		bp := make([]uint64, 2*kcWords*mk.NR)
		PackMaskedPanel(ap, m, k, 0, min(m.SNPs, mk.MR), mk.MR, 0, kcWords)
		PackMaskedPanel(bp, m, k, 0, min(m.SNPs, mk.NR), mk.NR, 0, kcWords)
		c := make([]uint32, mk.MR*mk.NR*4)
		b.Run(mk.Name, func(b *testing.B) {
			// quad-counts per second: kc × MR × NR cells × 4 counts
			b.SetBytes(int64(kcWords * mk.MR * mk.NR * 4 * 8))
			for i := 0; i < b.N; i++ {
				mk.Fn(kcWords, ap, bp, c, mk.NR)
			}
		})
	}
}
