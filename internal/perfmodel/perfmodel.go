// Package perfmodel implements the Section V analytical performance model
// of the paper: the issue-rate argument showing that widening SIMD
// registers does not speed up LD computation unless the hardware provides
// a vectorized population count.
//
// The model counts the time to process one 64-bit word triple
// (AND, POPCNT, ADD) per output cell:
//
//	scalar:      T      = max(T_and, T_popcnt, T_add)             = 1 cycle/word
//	SIMD, no HW: T_SIMD = max(T_and/v, T_popcnt, T_add/v) + stall ≥ 1 cycle/word
//	SIMD + HW:   T_HW   = max(T_and, T_popcnt, T_add)/v           = 1/v cycle/word
//
// where v is the number of 64-bit lanes per SIMD register. Without a
// vector popcount, every lane must be extracted to a scalar register,
// counted, and the counts reinserted; extract and insert contend for the
// same shuffle hardware, so the popcount stream stalls and T_SIMD can
// exceed the scalar time — the paper's "potential decrease in performance".
package perfmodel

import "fmt"

// Model carries per-instruction issue costs in cycles. All costs are
// throughput reciprocals (cycles between issues), not latencies: the LD
// inner loop is long enough that throughput dominates.
type Model struct {
	// And, Add, Popcnt are the scalar issue costs (default 1 each, with
	// the three issuable in parallel — the paper's 3-ops/cycle peak).
	And, Add, Popcnt float64
	// Extract and Insert are the per-lane SIMD↔scalar move costs. They
	// share one shuffle port (the paper's "same hardware resources"), so
	// their costs add on the critical resource.
	Extract, Insert float64
}

// Default returns the paper's idealized machine: every instruction one
// cycle, one of each issuable per cycle.
func Default() Model {
	return Model{And: 1, Add: 1, Popcnt: 1, Extract: 1, Insert: 1}
}

func (m Model) validate() error {
	if m.And <= 0 || m.Add <= 0 || m.Popcnt <= 0 || m.Extract < 0 || m.Insert < 0 {
		return fmt.Errorf("perfmodel: non-positive instruction cost in %+v", m)
	}
	return nil
}

// ScalarCyclesPerWord is the scalar-kernel cost per 64-bit word: the three
// instructions issue in parallel, so the max governs.
func (m Model) ScalarCyclesPerWord() float64 {
	return max(m.And, max(m.Add, m.Popcnt))
}

// ScalarPeakOpsPerCycle is the theoretical peak of Section IV-B: with all
// three instructions co-issued, 3 operations complete per cycle.
func (m Model) ScalarPeakOpsPerCycle() float64 {
	return 3 / m.ScalarCyclesPerWord()
}

// SIMDCyclesPerWord returns the per-word cost with v-lane SIMD registers
// and no hardware vector popcount. The AND and ADD amortize over v lanes,
// but each lane still needs one scalar POPCNT plus an extract and an
// insert on the shared shuffle port; the busiest resource governs.
func (m Model) SIMDCyclesPerWord(v int) (float64, error) {
	if err := m.validate(); err != nil {
		return 0, err
	}
	if v < 1 {
		return 0, fmt.Errorf("perfmodel: invalid lane count %d", v)
	}
	vectorALU := (m.And + m.Add) / float64(v)
	popcntPort := m.Popcnt
	shufflePort := m.Extract + m.Insert // per word, both on one port
	return max(vectorALU, max(popcntPort, shufflePort)), nil
}

// HWCyclesPerWord returns the per-word cost with a hardware vector
// popcount of v lanes: all three streams vectorize, no lane moves needed.
func (m Model) HWCyclesPerWord(v int) (float64, error) {
	if err := m.validate(); err != nil {
		return 0, err
	}
	if v < 1 {
		return 0, fmt.Errorf("perfmodel: invalid lane count %d", v)
	}
	return m.ScalarCyclesPerWord() / float64(v), nil
}

// Row is one line of the Section V prediction table.
type Row struct {
	V             int     // 64-bit lanes (1=scalar, 2=SSE, 4=AVX, 8=AVX-512)
	ScalarCycles  float64 // cycles per word, scalar kernel
	SIMDCycles    float64 // cycles per word, SIMD without HW popcount
	HWCycles      float64 // cycles per word, SIMD with HW popcount
	SIMDSpeedup   float64 // scalar/SIMD (≤1 means no benefit)
	HWSpeedup     float64 // scalar/HW (ideally v)
	SIMDPeakShare float64 // fraction of the v-lane peak the SIMD kernel reaches
}

// Table evaluates the model at the given lane counts.
func (m Model) Table(lanes []int) ([]Row, error) {
	rows := make([]Row, 0, len(lanes))
	for _, v := range lanes {
		simd, err := m.SIMDCyclesPerWord(v)
		if err != nil {
			return nil, err
		}
		hw, err := m.HWCyclesPerWord(v)
		if err != nil {
			return nil, err
		}
		s := m.ScalarCyclesPerWord()
		rows = append(rows, Row{
			V:             v,
			ScalarCycles:  s,
			SIMDCycles:    simd,
			HWCycles:      hw,
			SIMDSpeedup:   s / simd,
			HWSpeedup:     s / hw,
			SIMDPeakShare: hw / simd,
		})
	}
	return rows, nil
}

// StandardLanes are the register widths the paper discusses: scalar,
// 128-bit SSE, 256-bit AVX, and 512-bit AVX-512.
var StandardLanes = []int{1, 2, 4, 8}
