package perfmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestScalarPeak(t *testing.T) {
	m := Default()
	if got := m.ScalarCyclesPerWord(); got != 1 {
		t.Fatalf("scalar cycles/word = %v", got)
	}
	if got := m.ScalarPeakOpsPerCycle(); got != 3 {
		t.Fatalf("scalar peak = %v ops/cycle, want 3 (Section IV-B)", got)
	}
}

func TestSIMDNoBenefit(t *testing.T) {
	// The paper's core claim: for every v, SIMD without hardware popcount
	// is no faster than scalar (and with shuffle contention, slower).
	m := Default()
	for _, v := range StandardLanes {
		simd, err := m.SIMDCyclesPerWord(v)
		if err != nil {
			t.Fatal(err)
		}
		if simd < m.ScalarCyclesPerWord() {
			t.Fatalf("v=%d: SIMD %v cycles/word beats scalar %v", v, simd, m.ScalarCyclesPerWord())
		}
	}
}

func TestHWSpeedupIsV(t *testing.T) {
	m := Default()
	for _, v := range StandardLanes {
		hw, err := m.HWCyclesPerWord(v)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(hw-1/float64(v)) > 1e-12 {
			t.Fatalf("v=%d: HW cycles/word = %v, want %v", v, hw, 1/float64(v))
		}
	}
}

func TestTable(t *testing.T) {
	rows, err := Default().Table(StandardLanes)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for i, r := range rows {
		if r.V != StandardLanes[i] {
			t.Fatalf("row %d lane %d", i, r.V)
		}
		if r.SIMDSpeedup > 1+1e-12 {
			t.Fatalf("v=%d: SIMD speedup %v > 1", r.V, r.SIMDSpeedup)
		}
		if math.Abs(r.HWSpeedup-float64(r.V)) > 1e-12 {
			t.Fatalf("v=%d: HW speedup %v", r.V, r.HWSpeedup)
		}
		// The gap the paper warns about: SIMD achieves a shrinking share
		// of the widening peak.
		if math.Abs(r.SIMDPeakShare-r.HWCycles/r.SIMDCycles) > 1e-12 {
			t.Fatalf("v=%d: inconsistent peak share", r.V)
		}
	}
	// The peak-share gap must widen with v.
	for i := 1; i < len(rows); i++ {
		if rows[i].SIMDPeakShare >= rows[i-1].SIMDPeakShare {
			t.Fatalf("peak share not diverging: %v then %v", rows[i-1].SIMDPeakShare, rows[i].SIMDPeakShare)
		}
	}
}

func TestValidation(t *testing.T) {
	bad := Model{And: 0, Add: 1, Popcnt: 1}
	if _, err := bad.SIMDCyclesPerWord(2); err == nil {
		t.Fatal("zero cost accepted")
	}
	m := Default()
	if _, err := m.SIMDCyclesPerWord(0); err == nil {
		t.Fatal("v=0 accepted")
	}
	if _, err := m.HWCyclesPerWord(-1); err == nil {
		t.Fatal("v=-1 accepted")
	}
	if _, err := m.Table([]int{0}); err == nil {
		t.Fatal("table with v=0 accepted")
	}
}

// Property: with free lane moves (Extract=Insert=0) and large v, SIMD time
// converges to exactly T_popcnt — the paper's idealized T_SIMD = mn·T_POPCNT.
func TestIdealizedTSIMDIsPopcnt(t *testing.T) {
	m := Default()
	m.Extract, m.Insert = 0, 0
	for _, v := range []int{2, 4, 8, 64} {
		simd, err := m.SIMDCyclesPerWord(v)
		if err != nil {
			t.Fatal(err)
		}
		if v >= 2 && simd != m.Popcnt {
			t.Fatalf("v=%d: idealized SIMD %v, want T_popcnt %v", v, simd, m.Popcnt)
		}
	}
}

func TestQuickMonotoneInV(t *testing.T) {
	f := func(v8 uint8) bool {
		v := int(v8%16) + 1
		m := Default()
		s1, err1 := m.SIMDCyclesPerWord(v)
		s2, err2 := m.SIMDCyclesPerWord(v + 1)
		h1, err3 := m.HWCyclesPerWord(v)
		h2, err4 := m.HWCyclesPerWord(v + 1)
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return false
		}
		return s2 <= s1 && h2 < h1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
