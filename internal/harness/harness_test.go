package harness

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestCalibratePeakPositiveAndStable(t *testing.T) {
	p1 := CalibratePeak(20 * time.Millisecond)
	p2 := CalibratePeak(20 * time.Millisecond)
	if p1 <= 0 || p2 <= 0 {
		t.Fatalf("non-positive peak: %v %v", p1, p2)
	}
	// Two calibrations on an idle core should agree within 2×. (Loose on
	// purpose: CI machines are noisy.)
	ratio := p1 / p2
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("unstable calibration: %v vs %v", p1, p2)
	}
	// Sanity: a modern core issues between 10⁷ and 10¹¹ triples/second.
	if p1 < 1e7 || p1 > 1e11 {
		t.Fatalf("implausible peak %v triples/s", p1)
	}
}

func TestMeasurement(t *testing.T) {
	m := Measurement{Elapsed: time.Second, WordTriples: 1000}
	if m.TriplesPerSecond() != 1000 {
		t.Fatalf("rate %v", m.TriplesPerSecond())
	}
	if m.PeakFraction(2000) != 0.5 {
		t.Fatalf("fraction %v", m.PeakFraction(2000))
	}
	if (Measurement{}).TriplesPerSecond() != 0 {
		t.Fatal("zero-duration rate")
	}
	if m.PeakFraction(0) != 0 {
		t.Fatal("zero peak fraction")
	}
}

func TestTimeAndBest(t *testing.T) {
	calls := 0
	m, err := Best(3, 42, func() error {
		calls++
		time.Sleep(time.Millisecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 || m.WordTriples != 42 || m.Elapsed < time.Millisecond/2 {
		t.Fatalf("calls=%d m=%+v", calls, m)
	}
	wantErr := errors.New("boom")
	if _, err := Time(1, func() error { return wantErr }); !errors.Is(err, wantErr) {
		t.Fatalf("Time error = %v", err)
	}
	if _, err := Best(0, 1, func() error { return nil }); err == nil {
		t.Fatal("reps=0 accepted")
	}
	if _, err := Best(2, 1, func() error { return wantErr }); !errors.Is(err, wantErr) {
		t.Fatal("Best swallowed error")
	}
}

func TestTableRender(t *testing.T) {
	tbl := Table{
		Title:   "Table I",
		Headers: []string{"Threads", "GEMM", "Speedup"},
	}
	tbl.AddRow("1", "1.89", "7.48")
	tbl.AddRow("12", "0.62", "8.43")
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table I", "Threads", "GEMM", "7.48", "0.62"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("%d lines:\n%s", len(lines), out)
	}
	// Columns aligned: both data rows have the same length.
	if len(lines[3]) != len(lines[4]) || len(lines[1]) != len(lines[3]) {
		t.Fatalf("misaligned rows:\n%s", out)
	}
}

func TestTableRenderRowWidthMismatch(t *testing.T) {
	tbl := Table{Headers: []string{"a", "b"}}
	tbl.AddRow("1")
	if err := tbl.Render(&bytes.Buffer{}); err == nil {
		t.Fatal("ragged row accepted")
	}
	if err := tbl.CSV(&bytes.Buffer{}); err == nil {
		t.Fatal("ragged CSV row accepted")
	}
}

func TestTableCSV(t *testing.T) {
	tbl := Table{Headers: []string{"x", "y"}}
	tbl.AddRow("1", "2")
	var buf bytes.Buffer
	if err := tbl.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "x,y\n1,2\n" {
		t.Fatalf("CSV = %q", got)
	}
}

func TestF(t *testing.T) {
	if F(3.14159, 2) != "3.14" {
		t.Fatalf("F = %q", F(3.14159, 2))
	}
	if F(10, 0) != "10" {
		t.Fatalf("F = %q", F(10, 0))
	}
}
