// Package harness provides the experiment infrastructure for regenerating
// the paper's tables and figures: host peak calibration, repeatable
// timing, thread sweeps, and paper-style ASCII tables.
//
// The paper expresses kernel performance as a percentage of the machine's
// theoretical LD peak — one (AND, POPCNT, ADD) triple per cycle on its x86
// hosts (Section IV-B). A Go build cannot read cycle counters portably, so
// the harness measures the host's attainable triple rate directly: a
// dependency-free, register-resident loop of exactly those three
// instructions. Kernel performance is then reported as a fraction of that
// calibrated peak, which preserves the paper's quantity of interest (how
// close the blocked kernel gets to what the hardware can issue) without
// knowing the clock frequency. DESIGN.md records this substitution.
package harness

import (
	"fmt"
	"io"
	"math/bits"
	"strings"
	"time"
)

// calibSink defeats dead-code elimination in the calibration loop.
var calibSink uint64

// calibBatch is the triple count of one calibration pass: long enough
// (milliseconds) that a window reflects sustained rather than burst issue
// rate, short enough that several windows fit in the calibration budget.
const calibBatch = 1 << 22

// CalibratePeak measures the single-core triple rate (AND+POPCNT+ADD per
// 64-bit word) over at least minDuration and returns triples per second.
// This is the denominator for every "% of peak" number the benches print.
//
// The calibration stream is register-resident with eight independent
// accumulator chains: no loads, no bounds checks, nothing but the triple
// itself (plus two rotates per eight triples to keep the inputs live).
// That makes it the attainable issue-rate ceiling of the instruction mix —
// any memory effect the real kernel suffers shows up as a fraction below
// 100%, never above.
func CalibratePeak(minDuration time.Duration) float64 {
	var elapsed time.Duration
	best := 0.0
	// Warm up once (branch predictors, frequency ramp).
	calibSink += calibPass(calibBatch/8, calibSink|1)
	// A peak is a maximum: take the best window so scheduler noise and
	// frequency dips lower individual windows but never the estimate.
	for elapsed < minDuration {
		start := time.Now()
		calibSink += calibPass(calibBatch/8, calibSink|1)
		d := time.Since(start)
		elapsed += d
		if rate := calibBatch / d.Seconds(); rate > best {
			best = rate
		}
	}
	return best
}

// calibPass issues 8·n dependency-free triples from registers. The seed
// parameter prevents constant folding; noinline prevents the whole loop
// from being hoisted or eliminated across calls.
//
//go:noinline
func calibPass(n int, seed uint64) uint64 {
	a0 := seed | 1
	a1 := a0 * 0x9e3779b97f4a7c15
	a2 := a1 * 0x9e3779b97f4a7c15
	a3 := a2 * 0x9e3779b97f4a7c15
	b0 := seed ^ 0xbf58476d1ce4e5b9
	b1 := b0 * 0x94d049bb133111eb
	b2 := b1 * 0x94d049bb133111eb
	b3 := b2 * 0x94d049bb133111eb
	var s0, s1, s2, s3, s4, s5, s6, s7 uint64
	for i := 0; i < n; i++ {
		s0 += uint64(bits.OnesCount64(a0 & b0))
		s1 += uint64(bits.OnesCount64(a1 & b1))
		s2 += uint64(bits.OnesCount64(a2 & b2))
		s3 += uint64(bits.OnesCount64(a3 & b3))
		s4 += uint64(bits.OnesCount64(a0 & b1))
		s5 += uint64(bits.OnesCount64(a1 & b2))
		s6 += uint64(bits.OnesCount64(a2 & b3))
		s7 += uint64(bits.OnesCount64(a3 & b0))
		a0 = bits.RotateLeft64(a0, 1)
		b2 = bits.RotateLeft64(b2, 3)
	}
	return s0 + s1 + s2 + s3 + s4 + s5 + s6 + s7
}

// Measurement is one timed run.
type Measurement struct {
	Elapsed time.Duration
	// WordTriples is the number of (AND, POPCNT, ADD) word operations the
	// run performed; PeakFraction relates it to the calibrated peak.
	WordTriples int64
}

// TriplesPerSecond returns the achieved triple rate.
func (m Measurement) TriplesPerSecond() float64 {
	if m.Elapsed <= 0 {
		return 0
	}
	return float64(m.WordTriples) / m.Elapsed.Seconds()
}

// PeakFraction returns the achieved fraction of the given peak rate
// (peak is triples/second, typically CalibratePeak() × threads).
func (m Measurement) PeakFraction(peak float64) float64 {
	if peak <= 0 {
		return 0
	}
	return m.TriplesPerSecond() / peak
}

// Time runs fn once and wraps the result with the supplied work count.
func Time(wordTriples int64, fn func() error) (Measurement, error) {
	start := time.Now()
	if err := fn(); err != nil {
		return Measurement{}, err
	}
	return Measurement{Elapsed: time.Since(start), WordTriples: wordTriples}, nil
}

// Best runs fn reps times and keeps the fastest run — the standard HPC
// practice for machine-peak style plots (Figures 3 and 4).
func Best(reps int, wordTriples int64, fn func() error) (Measurement, error) {
	if reps < 1 {
		return Measurement{}, fmt.Errorf("harness: reps must be positive")
	}
	best := Measurement{Elapsed: 1<<63 - 1}
	for r := 0; r < reps; r++ {
		m, err := Time(wordTriples, fn)
		if err != nil {
			return Measurement{}, err
		}
		if m.Elapsed < best.Elapsed {
			best = m
		}
	}
	return best, nil
}

// Table renders a paper-style ASCII table: a header row, a separator, and
// data rows, all pipe-delimited with per-column alignment.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a formatted row; values are used as-is.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		if len(row) != len(t.Headers) {
			return fmt.Errorf("harness: row has %d cells, want %d", len(row), len(t.Headers))
		}
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString(" | ")
			}
			sb.WriteString(fmt.Sprintf("%*s", widths[i], c))
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w
	}
	sb.WriteString(strings.Repeat("-", total+3*(len(widths)-1)))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// CSV writes the table as comma-separated values (for plotting).
func (t *Table) CSV(w io.Writer) error {
	var sb strings.Builder
	sb.WriteString(strings.Join(t.Headers, ","))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		if len(row) != len(t.Headers) {
			return fmt.Errorf("harness: row has %d cells, want %d", len(row), len(t.Headers))
		}
		sb.WriteString(strings.Join(row, ","))
		sb.WriteByte('\n')
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// F formats a float with the given decimals — a small helper that keeps
// bench table code terse.
func F(v float64, decimals int) string {
	return fmt.Sprintf("%.*f", decimals, v)
}
