package ldstore

import (
	"bytes"
	"compress/flate"
	"container/heap"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sort"
)

// Options configures a Store reader.
type Options struct {
	// CacheTiles is the LRU capacity in tiles (default 64). The resident
	// bound is CacheTiles × TileSize² × 8 bytes.
	CacheTiles int
}

// Store serves LD statistics from a tile file built by Build. All query
// methods are safe for concurrent use: tile reads go through ReadAt and
// the LRU is mutex-guarded.
type Store struct {
	r      io.ReaderAt
	closer io.Closer // nil when opened over a caller-owned reader
	h      header
	tiles  int // tile bands per side
	index  []indexEntry
	coords []tileCoord // linear id → (ti, tj), same order as index
	cache  *tileCache
}

type tileCoord struct{ ti, tj int }

// Open opens the tile store at path.
func Open(path string, opt Options) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	s, err := OpenReader(f, fi.Size(), opt)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("ldstore: %s: %w", path, err)
	}
	s.closer = f
	return s, nil
}

// OpenReader opens a tile store over an arbitrary random-access reader of
// the given size, validating the header and the whole index before any
// query runs: dimensions and tile size must be plausible, the tile count
// must match the geometry, the index must end exactly at end-of-file, and
// every entry must lie inside the tile section with a length consistent
// with its tile's decoded size — so a corrupt or hostile file fails here
// with an error, never with a panic or an unbounded allocation.
func OpenReader(r io.ReaderAt, size int64, opt Options) (*Store, error) {
	if opt.CacheTiles == 0 {
		opt.CacheTiles = 64
	}
	if opt.CacheTiles < 1 {
		return nil, fmt.Errorf("ldstore: invalid cache capacity %d", opt.CacheTiles)
	}
	if size < headerSize {
		return nil, fmt.Errorf("ldstore: file of %d bytes is shorter than the %d-byte header", size, headerSize)
	}
	hb := make([]byte, headerSize)
	if _, err := r.ReadAt(hb, 0); err != nil {
		return nil, fmt.Errorf("ldstore: reading header: %w", err)
	}
	h, err := decodeHeader(hb)
	if err != nil {
		return nil, err
	}
	if !h.stat.valid() {
		return nil, fmt.Errorf("ldstore: unknown statistic kind %d", uint32(h.stat))
	}
	if h.snps > maxSNPs || h.samples > maxSamples {
		return nil, fmt.Errorf("ldstore: implausible dimensions %d×%d", h.snps, h.samples)
	}
	if h.snps > 0 && h.samples == 0 {
		return nil, fmt.Errorf("ldstore: %d SNPs with zero samples", h.snps)
	}
	if h.tileSize < 1 {
		return nil, fmt.Errorf("ldstore: invalid tile size %d", h.tileSize)
	}
	if raw := int64(h.tileSize) * int64(h.tileSize) * 8; raw > MaxTileBytes {
		return nil, fmt.Errorf("ldstore: tile size %d needs %d-byte tiles, above MaxTileBytes (%d)",
			h.tileSize, raw, MaxTileBytes)
	}
	n, nt := int(h.snps), int(h.tileSize)
	t := tilesFor(n, nt)
	if h.tileCount != uint64(triangleTiles(t)) {
		return nil, fmt.Errorf("ldstore: %d tiles indexed, want %d for %d SNPs at tile size %d",
			h.tileCount, triangleTiles(t), n, nt)
	}
	// The index is the last thing in the file; requiring it to end exactly
	// at EOF both rejects truncation and bounds the index allocation by
	// the input size.
	if h.tileCount > uint64(size)/indexEntrySize {
		return nil, fmt.Errorf("ldstore: index of %d entries cannot fit a %d-byte file", h.tileCount, size)
	}
	indexBytes := int64(h.tileCount) * indexEntrySize
	if h.indexOffset < headerSize || int64(h.indexOffset) != size-indexBytes {
		return nil, fmt.Errorf("ldstore: index offset %d inconsistent with file size %d", h.indexOffset, size)
	}

	s := &Store{r: r, h: h, tiles: t,
		index:  make([]indexEntry, h.tileCount),
		coords: make([]tileCoord, 0, h.tileCount),
		cache:  newTileCache(opt.CacheTiles),
	}
	for ti := 0; ti < t; ti++ {
		for tj := ti; tj < t; tj++ {
			s.coords = append(s.coords, tileCoord{ti, tj})
		}
	}
	ib := make([]byte, indexBytes)
	if _, err := r.ReadAt(ib, int64(h.indexOffset)); err != nil {
		return nil, fmt.Errorf("ldstore: reading index: %w", err)
	}
	for id := range s.index {
		e := decodeIndexEntry(ib[id*indexEntrySize:])
		c := s.coords[id]
		raw := s.tileRawBytes(c.ti, c.tj)
		if e.offset < headerSize || e.offset > h.indexOffset ||
			uint64(e.length) > h.indexOffset-e.offset {
			return nil, fmt.Errorf("ldstore: tile %d at [%d, +%d) escapes the tile section [%d, %d)",
				id, e.offset, e.length, headerSize, h.indexOffset)
		}
		if h.compressed() {
			// DEFLATE worst case is a whisker over the input; anything
			// bigger than raw plus slack cannot be a legitimate tile.
			if int64(e.length) > raw+raw/100+64 {
				return nil, fmt.Errorf("ldstore: compressed tile %d of %d bytes exceeds plausible bound for %d raw bytes",
					id, e.length, raw)
			}
		} else if int64(e.length) != raw {
			return nil, fmt.Errorf("ldstore: tile %d has %d bytes, want %d", id, e.length, raw)
		}
		if math.IsNaN(e.maxOff) {
			e.maxOff = math.Inf(-1)
		}
		s.index[id] = e
	}
	return s, nil
}

// Close releases the underlying file, if the Store owns one.
func (s *Store) Close() error {
	if s.closer == nil {
		return nil
	}
	return s.closer.Close()
}

// SNPs returns the dataset's SNP count.
func (s *Store) SNPs() int { return int(s.h.snps) }

// Samples returns the dataset's sequence count.
func (s *Store) Samples() int { return int(s.h.samples) }

// Stat returns the statistic the store holds.
func (s *Store) Stat() Stat { return s.h.stat }

// TileSize returns NT.
func (s *Store) TileSize() int { return int(s.h.tileSize) }

// Compressed reports whether tiles are DEFLATE-compressed.
func (s *Store) Compressed() bool { return s.h.compressed() }

// Fingerprint returns the dataset fingerprint stamped at build time.
func (s *Store) Fingerprint() uint64 { return s.h.fingerprint }

// Info summarizes a store for tooling.
type Info struct {
	SNPs        int     `json:"snps"`
	Samples     int     `json:"samples"`
	Stat        string  `json:"stat"`
	TileSize    int     `json:"tile_size"`
	Tiles       int     `json:"tiles"`
	Compressed  bool    `json:"compressed"`
	Fingerprint string  `json:"fingerprint"`
	TileBytes   int64   `json:"tile_bytes"`
	RawBytes    int64   `json:"raw_bytes"`
	Ratio       float64 `json:"compression_ratio"`
}

// Info returns the store's header summary.
func (s *Store) Info() Info {
	var raw int64
	for _, c := range s.coords {
		raw += s.tileRawBytes(c.ti, c.tj)
	}
	tileBytes := int64(s.h.indexOffset) - headerSize
	info := Info{
		SNPs: s.SNPs(), Samples: s.Samples(), Stat: s.Stat().String(),
		TileSize: s.TileSize(), Tiles: len(s.index), Compressed: s.Compressed(),
		Fingerprint: fmt.Sprintf("%016x", s.h.fingerprint),
		TileBytes:   tileBytes, RawBytes: raw,
	}
	if raw > 0 {
		info.Ratio = float64(tileBytes) / float64(raw)
	}
	return info
}

// tileDim returns the row (or column) count of tile band t.
func (s *Store) tileDim(t int) int {
	return min(int(s.h.tileSize), int(s.h.snps)-t*int(s.h.tileSize))
}

func (s *Store) tileRawBytes(ti, tj int) int64 {
	return int64(s.tileDim(ti)) * int64(s.tileDim(tj)) * 8
}

// tile returns the decoded values of tile (ti, tj), ti ≤ tj, loading and
// caching on miss. Diagonal tiles hold their full mirrored square;
// off-diagonal tiles hold rows of band ti × columns of band tj.
func (s *Store) tile(ti, tj int) ([]float64, error) {
	id := tileID(s.tiles, ti, tj)
	if vals, ok := s.cache.get(id); ok {
		return vals, nil
	}
	e := s.index[id]
	payload := make([]byte, e.length)
	if _, err := s.r.ReadAt(payload, int64(e.offset)); err != nil {
		return nil, fmt.Errorf("ldstore: reading tile (%d,%d): %w", ti, tj, err)
	}
	if crc := crc32.ChecksumIEEE(payload); crc != e.crc {
		return nil, fmt.Errorf("ldstore: tile (%d,%d) checksum %08x, want %08x", ti, tj, crc, e.crc)
	}
	rawLen := int(s.tileRawBytes(ti, tj))
	raw := payload
	if s.h.compressed() {
		fr := flate.NewReader(bytes.NewReader(payload))
		raw = make([]byte, rawLen)
		if _, err := io.ReadFull(fr, raw); err != nil {
			return nil, fmt.Errorf("ldstore: decompressing tile (%d,%d): %w", ti, tj, err)
		}
		var extra [1]byte
		if m, _ := fr.Read(extra[:]); m != 0 {
			return nil, fmt.Errorf("ldstore: tile (%d,%d) decompresses past its declared %d bytes", ti, tj, rawLen)
		}
		fr.Close()
	} else if len(raw) != rawLen {
		return nil, fmt.Errorf("ldstore: tile (%d,%d) has %d bytes, want %d", ti, tj, len(raw), rawLen)
	}
	vals := make([]float64, rawLen/8)
	for k := range vals {
		vals[k] = math.Float64frombits(binary.LittleEndian.Uint64(raw[k*8:]))
	}
	stats.tilesRead.Add(1)
	stats.bytesRead.Add(uint64(len(payload)))
	s.cache.put(id, vals)
	return vals, nil
}

func (s *Store) checkSNP(name string, i int) error {
	if i < 0 || i >= s.SNPs() {
		return fmt.Errorf("ldstore: %s=%d outside 0..%d", name, i, s.SNPs()-1)
	}
	return nil
}

// At returns the stored statistic for the pair (i, j). The store is
// symmetric: argument order does not matter.
func (s *Store) At(i, j int) (float64, error) {
	if err := s.checkSNP("i", i); err != nil {
		return 0, err
	}
	if err := s.checkSNP("j", j); err != nil {
		return 0, err
	}
	if i > j {
		i, j = j, i
	}
	nt := int(s.h.tileSize)
	ti, tj := i/nt, j/nt
	vals, err := s.tile(ti, tj)
	if err != nil {
		return 0, err
	}
	stats.bytesServed.Add(8)
	return vals[(i-ti*nt)*s.tileDim(tj)+(j-tj*nt)], nil
}

// Region materializes the dense (end−start)² statistic matrix for SNPs
// [start, end), row-major with both triangles filled — the payload of the
// server's /api/ld/region fast path.
func (s *Store) Region(start, end int) ([]float64, error) {
	n := s.SNPs()
	if start < 0 || end <= start || end > n {
		return nil, fmt.Errorf("ldstore: invalid region [%d,%d) of %d SNPs", start, end, n)
	}
	w := end - start
	out := make([]float64, w*w)
	nt := int(s.h.tileSize)
	for ti := start / nt; ti*nt < end; ti++ {
		for tj := ti; tj*nt < end; tj++ {
			vals, err := s.tile(ti, tj)
			if err != nil {
				return nil, err
			}
			cols := s.tileDim(tj)
			iLo, iHi := max(start, ti*nt), min(end, ti*nt+s.tileDim(ti))
			jLo, jHi := max(start, tj*nt), min(end, tj*nt+cols)
			for i := iLo; i < iHi; i++ {
				row := vals[(i-ti*nt)*cols:]
				for j := jLo; j < jHi; j++ {
					v := row[j-tj*nt]
					out[(i-start)*w+(j-start)] = v
					if ti != tj {
						// Diagonal tiles store their mirrored square;
						// off-diagonal tiles cover only i < j.
						out[(j-start)*w+(i-start)] = v
					}
				}
			}
		}
	}
	stats.bytesServed.Add(uint64(w) * uint64(w) * 8)
	return out, nil
}

// Rect materializes the dense rows [r0, r1) × columns [c0, c1) block of
// the symmetric statistic matrix, row-major — the payload of a cluster
// shard's row-restricted region request. Cells are read from whichever
// tile orientation holds them (the store keeps i ≤ j), so any rectangle
// is served, both triangles included.
func (s *Store) Rect(r0, r1, c0, c1 int) ([]float64, error) {
	n := s.SNPs()
	if r0 < 0 || r1 <= r0 || r1 > n || c0 < 0 || c1 <= c0 || c1 > n {
		return nil, fmt.Errorf("ldstore: invalid rect rows [%d,%d) cols [%d,%d) of %d SNPs", r0, r1, c0, c1, n)
	}
	w := c1 - c0
	out := make([]float64, (r1-r0)*w)
	nt := int(s.h.tileSize)
	for tr := r0 / nt; tr*nt < r1; tr++ {
		for tc := c0 / nt; tc*nt < c1; tc++ {
			ti, tj := min(tr, tc), max(tr, tc)
			vals, err := s.tile(ti, tj)
			if err != nil {
				return nil, err
			}
			cols := s.tileDim(tj)
			iLo, iHi := max(r0, tr*nt), min(r1, tr*nt+s.tileDim(tr))
			jLo, jHi := max(c0, tc*nt), min(c1, tc*nt+s.tileDim(tc))
			for i := iLo; i < iHi; i++ {
				dst := out[(i-r0)*w:]
				for j := jLo; j < jHi; j++ {
					// Diagonal tiles store the full mirrored square, so
					// (row, col) indexing is direct; an off-diagonal tile
					// read against the grain swaps its coordinates.
					a, b := i, j
					if tr > tc {
						a, b = j, i
					}
					dst[j-c0] = vals[(a-ti*nt)*cols+(b-tj*nt)]
				}
			}
		}
	}
	stats.bytesServed.Add(uint64(len(out)) * 8)
	return out, nil
}

// TopPair is one entry of a Top result.
type TopPair struct {
	I     int     `json:"i"`
	J     int     `json:"j"`
	Value float64 `json:"value"`
}

// Top returns the k strongest off-diagonal pairs by stored value,
// strongest first (ties broken by (I, J)). The per-tile maxima recorded
// at build time prune the scan: tiles whose maximum cannot displace the
// current k-th value are never read.
func (s *Store) Top(k int) ([]TopPair, error) { return s.TopRange(k, 0, s.SNPs()) }

// TopRange is Top restricted to pairs whose smaller index lies in
// [r0, r1) — the ownership rule of a cluster shard. The per-tile maxima
// still prune: a tile's recorded maximum bounds any row subset of it.
func (s *Store) TopRange(k, r0, r1 int) ([]TopPair, error) {
	if k < 1 {
		return nil, fmt.Errorf("ldstore: invalid top k=%d", k)
	}
	if n := s.SNPs(); r0 < 0 || r1 <= r0 || r1 > n {
		return nil, fmt.Errorf("ldstore: invalid top row range [%d,%d) of %d SNPs", r0, r1, n)
	}
	nt := int(s.h.tileSize)
	order := make([]int, 0, len(s.index))
	for id := range s.index {
		// Only tiles whose row band intersects the window hold owned pairs.
		if lo := s.coords[id].ti * nt; lo < r1 && lo+s.tileDim(s.coords[id].ti) > r0 {
			order = append(order, id)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		return s.index[order[a]].maxOff > s.index[order[b]].maxOff
	})
	h := &topHeap{}
	for _, id := range order {
		// Strict inequality: a tile whose maximum ties the current k-th
		// value can still hold a pair that wins on the (I, J) tie-break,
		// so only strictly-weaker tiles are pruned.
		if h.Len() == k && s.index[id].maxOff < (*h)[0].Value {
			break
		}
		if math.IsInf(s.index[id].maxOff, -1) {
			break // only empty 1×1 diagonal tiles remain
		}
		c := s.coords[id]
		vals, err := s.tile(c.ti, c.tj)
		if err != nil {
			return nil, err
		}
		cols := s.tileDim(c.tj)
		for r := 0; r < s.tileDim(c.ti); r++ {
			i := c.ti*nt + r
			if i < r0 || i >= r1 {
				continue // row outside the ownership window
			}
			row := vals[r*cols : (r+1)*cols]
			for col, v := range row {
				if c.ti == c.tj && col <= r {
					continue // mirrored square: keep i < j once, skip the diagonal
				}
				p := TopPair{I: i, J: c.tj*nt + col, Value: v}
				if h.Len() < k {
					heap.Push(h, p)
				} else if topLess((*h)[0], p) {
					(*h)[0] = p
					heap.Fix(h, 0)
				}
			}
		}
		stats.bytesServed.Add(uint64(len(vals)) * 8)
	}
	out := make([]TopPair, h.Len())
	copy(out, *h)
	sort.Slice(out, func(a, b int) bool { return topLess(out[b], out[a]) })
	return out, nil
}

// topLess orders pairs weakest-first: by value, then reversed (I, J) so
// that the heap evicts the lexicographically-latest among equals and the
// final ranking is deterministic.
func topLess(a, b TopPair) bool {
	if a.Value != b.Value {
		return a.Value < b.Value
	}
	if a.I != b.I {
		return a.I > b.I
	}
	return a.J > b.J
}

type topHeap []TopPair

func (h topHeap) Len() int           { return len(h) }
func (h topHeap) Less(i, j int) bool { return topLess(h[i], h[j]) }
func (h topHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *topHeap) Push(x any)        { *h = append(*h, x.(TopPair)) }
func (h *topHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

var _ heap.Interface = (*topHeap)(nil)

// Band visits every pair (i, j) with i in [start, end) and i ≤ j ≤
// i+band, mirroring core.BandedStream's coverage (diagonal included).
// Returning false from visit stops the scan early.
func (s *Store) Band(start, end, band int, visit func(i, j int, v float64) bool) error {
	n := s.SNPs()
	if band < 1 {
		return fmt.Errorf("ldstore: invalid band %d", band)
	}
	if start < 0 || end <= start || end > n {
		return fmt.Errorf("ldstore: invalid band range [%d,%d) of %d SNPs", start, end, n)
	}
	for i := start; i < end; i++ {
		for j := i; j <= min(i+band, n-1); j++ {
			v, err := s.At(i, j)
			if err != nil {
				return err
			}
			if !visit(i, j, v) {
				return nil
			}
		}
	}
	return nil
}
