package ldstore

import (
	"container/list"
	"sync"
)

// tileCache is a mutex-guarded LRU over decoded tiles, keyed by linear
// tile id. Capacity is counted in tiles (every tile decodes to at most
// tileSize² float64s), so the resident bound is CacheTiles × tile bytes.
// Concurrent misses on the same tile may both load it; the second put
// simply refreshes the entry, which is correct because tiles are
// immutable.
type tileCache struct {
	mu      sync.Mutex
	cap     int
	entries map[int64]*list.Element
	lru     *list.List // front = most recently used
}

type cacheEntry struct {
	id   int64
	vals []float64
}

func newTileCache(capTiles int) *tileCache {
	return &tileCache{
		cap:     capTiles,
		entries: make(map[int64]*list.Element),
		lru:     list.New(),
	}
}

// get returns the cached tile and records a hit or miss.
func (c *tileCache) get(id int64) ([]float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[id]; ok {
		c.lru.MoveToFront(el)
		stats.cacheHits.Add(1)
		return el.Value.(*cacheEntry).vals, true
	}
	stats.cacheMisses.Add(1)
	return nil, false
}

// put inserts a freshly decoded tile, evicting from the cold end past
// capacity.
func (c *tileCache) put(id int64, vals []float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[id]; ok {
		el.Value.(*cacheEntry).vals = vals
		c.lru.MoveToFront(el)
		return
	}
	c.entries[id] = c.lru.PushFront(&cacheEntry{id: id, vals: vals})
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		delete(c.entries, back.Value.(*cacheEntry).id)
		c.lru.Remove(back)
		stats.evictions.Add(1)
	}
}
