package ldstore

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"ldgemm/internal/popsim"
)

// storeBytes builds a small valid store and returns its raw file bytes,
// the seed every mutation starts from.
func storeBytes(tb testing.TB, compress bool) []byte {
	tb.Helper()
	g, err := popsim.Mosaic(20, 16, popsim.MosaicConfig{Seed: 41})
	if err != nil {
		tb.Fatalf("popsim.Mosaic: %v", err)
	}
	path := filepath.Join(tb.TempDir(), "seed.ldts")
	if _, err := BuildFile(path, g, BuildOptions{TileSize: 8, Compress: compress}); err != nil {
		tb.Fatalf("BuildFile: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// FuzzStoreOpen feeds arbitrary bytes to OpenReader and, when a file
// opens, exercises every query path. The invariant under fuzzing: corrupt
// input produces an error, never a panic, an index out of range, or an
// allocation driven by an unvalidated length field.
func FuzzStoreOpen(f *testing.F) {
	valid := storeBytes(f, false)
	f.Add(valid)
	f.Add(storeBytes(f, true))
	f.Add([]byte{})
	f.Add([]byte("LDTS"))
	f.Add(valid[:headerSize])   // header only, no tiles or index
	f.Add(valid[:len(valid)-7]) // truncated index

	corrupt := func(mutate func(b []byte)) []byte {
		b := bytes.Clone(valid)
		mutate(b)
		return b
	}
	f.Add(corrupt(func(b []byte) { b[0] = 'X' }))                                          // bad magic
	f.Add(corrupt(func(b []byte) { binary.LittleEndian.PutUint32(b[4:], 99) }))            // bad version
	f.Add(corrupt(func(b []byte) { binary.LittleEndian.PutUint32(b[12:], 7) }))            // bad stat
	f.Add(corrupt(func(b []byte) { binary.LittleEndian.PutUint64(b[16:], 1<<40) }))        // huge SNPs
	f.Add(corrupt(func(b []byte) { binary.LittleEndian.PutUint64(b[24:], 0) }))            // zero samples
	f.Add(corrupt(func(b []byte) { binary.LittleEndian.PutUint32(b[32:], 0) }))            // zero tile size
	f.Add(corrupt(func(b []byte) { binary.LittleEndian.PutUint32(b[32:], 1<<30) }))        // huge tile size
	f.Add(corrupt(func(b []byte) { binary.LittleEndian.PutUint64(b[48:], 0) }))            // index inside header
	f.Add(corrupt(func(b []byte) { binary.LittleEndian.PutUint64(b[48:], 1<<50) }))        // index past EOF
	f.Add(corrupt(func(b []byte) { binary.LittleEndian.PutUint64(b[56:], 1<<40) }))        // absurd tile count
	f.Add(corrupt(func(b []byte) { b[headerSize] ^= 0xFF }))                               // payload bit flip
	f.Add(corrupt(func(b []byte) { binary.LittleEndian.PutUint64(b[len(b)-24:], 1<<40) })) // entry offset out of range
	f.Add(corrupt(func(b []byte) { binary.LittleEndian.PutUint32(b[len(b)-16:], 1<<28) })) // entry length out of range

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := OpenReader(bytes.NewReader(data), int64(len(data)), Options{CacheTiles: 4})
		if err != nil {
			return
		}
		defer s.Close()
		_ = s.Info()
		n := s.SNPs()
		if n == 0 {
			return
		}
		// Query errors (e.g. checksum failures on flipped payload bytes)
		// are fine; panics are not.
		_, _ = s.At(0, n-1)
		_, _ = s.Region(0, min(n, 12))
		_, _ = s.Top(3)
		_ = s.Band(0, n, 4, func(int, int, float64) bool { return true })
	})
}

// FuzzManifest feeds arbitrary bytes to the checkpoint-manifest parser.
// The invariant: a corrupt or hostile manifest is rejected with an error,
// never parsed into a state that would resume a wrong build — and never
// a panic. Accepted manifests must satisfy their own internal-consistency
// rules (a valid tile count for the stripe count, sane dimensions), which
// the fuzz body re-checks independently.
func FuzzManifest(f *testing.F) {
	valid, err := json.Marshal(manifest{
		Version: manifestVersion, Magic: manifestMagic,
		Fingerprint: 0xdeadbeefcafef00d, SNPs: 120, Samples: 77,
		TileSize: 16, Stat: uint32(StatR2), Compress: true,
		StripesDone: 3, DataOffset: 4096, TilesWritten: 18,
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("{}"))
	f.Add([]byte("not json"))
	f.Add([]byte(`{"version":1,"magic":"ldstore-checkpoint"}`))
	f.Add(bytes.Replace(valid, []byte(`"version":1`), []byte(`"version":99`), 1))
	f.Add(bytes.Replace(valid, []byte(`"tile_size":16`), []byte(`"tile_size":0`), 1))
	f.Add(bytes.Replace(valid, []byte(`"tile_size":16`), []byte(`"tile_size":1073741824`), 1))
	f.Add(bytes.Replace(valid, []byte(`"snps":120`), []byte(`"snps":-5`), 1))
	f.Add(bytes.Replace(valid, []byte(`"snps":120`), []byte(`"snps":4611686018427387904`), 1))
	f.Add(bytes.Replace(valid, []byte(`"stripes_done":3`), []byte(`"stripes_done":1000`), 1))
	f.Add(bytes.Replace(valid, []byte(`"tiles_written":18`), []byte(`"tiles_written":2`), 1))
	f.Add(bytes.Replace(valid, []byte(`"data_offset":4096`), []byte(`"data_offset":-1`), 1))
	f.Add(bytes.Replace(valid, []byte(`"stat":1`), []byte(`"stat":9`), 1))
	f.Add(valid[:len(valid)/2])

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := parseManifest(data)
		if err != nil {
			return
		}
		// Whatever parses must be resumable state, not garbage.
		if m.Magic != manifestMagic || m.Version != manifestVersion {
			t.Fatalf("accepted manifest with identity %q v%d", m.Magic, m.Version)
		}
		if m.SNPs < 0 || m.Samples < 0 || m.TileSize < 1 {
			t.Fatalf("accepted implausible geometry %+v", m)
		}
		tiles := tilesFor(m.SNPs, m.TileSize)
		if m.StripesDone < 0 || m.StripesDone > tiles {
			t.Fatalf("accepted out-of-range stripe count %+v", m)
		}
		if int64(m.TilesWritten) != tilesThrough(tiles, m.StripesDone) {
			t.Fatalf("accepted inconsistent tile count %+v", m)
		}
		if m.DataOffset < headerSize {
			t.Fatalf("accepted data offset inside header %+v", m)
		}
	})
}
