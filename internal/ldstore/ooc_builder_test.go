package ldstore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"testing"

	"ldgemm/internal/bitmat"
)

// ldbmSource writes m as a .ldbm container and opens it in the requested
// mode, registering cleanup.
func ldbmSource(t *testing.T, m *bitmat.Matrix, mapped bool) *bitmat.File {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.ldbm")
	if err := bitmat.WriteFile(path, m); err != nil {
		t.Fatal(err)
	}
	f, err := bitmat.OpenFile(path, mapped)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestSourceBuildByteIdentical: the acceptance criterion — an out-of-core
// build from a file-backed source produces byte-for-byte the store the
// in-RAM builder writes, in every access mode, panel width, and
// compression setting, with and without checkpointing.
func TestSourceBuildByteIdentical(t *testing.T) {
	g := testMatrix(t, 131, 97, 5)
	for _, compress := range []bool{false, true} {
		bo := BuildOptions{TileSize: 24, Compress: compress}
		want := filepath.Join(t.TempDir(), "want.ldts")
		if _, err := BuildFile(want, g, bo); err != nil {
			t.Fatal(err)
		}
		ref := mustRead(t, want)
		cases := map[string]struct {
			src bitmat.Source
			opt SourceBuildOptions
		}{
			"mem":               {bitmat.NewMemSource(g), SourceBuildOptions{BuildOptions: bo}},
			"windowed":          {ldbmSource(t, g, false), SourceBuildOptions{BuildOptions: bo, IOPanelSNPs: 16}},
			"windowed-wide":     {ldbmSource(t, g, false), SourceBuildOptions{BuildOptions: bo, IOPanelSNPs: 1000}},
			"mmap":              {ldbmSource(t, g, true), SourceBuildOptions{BuildOptions: bo, IOPanelSNPs: 32}},
			"windowed-ckpt":     {ldbmSource(t, g, false), SourceBuildOptions{BuildOptions: bo, IOPanelSNPs: 16, Checkpoint: true}},
			"mmap-resume-fresh": {ldbmSource(t, g, true), SourceBuildOptions{BuildOptions: bo, IOPanelSNPs: 16, Resume: true}},
		}
		for name, tc := range cases {
			path := filepath.Join(t.TempDir(), "got.ldts")
			st, err := BuildFileFromSource(path, tc.src, tc.opt)
			if err != nil {
				t.Fatalf("compress=%v %s: %v", compress, name, err)
			}
			if got := mustRead(t, path); string(got) != string(ref) {
				t.Fatalf("compress=%v %s: store bytes differ from in-RAM build (%d vs %d bytes)",
					compress, name, len(got), len(ref))
			}
			if st.Tiles == 0 || st.StartStripe != 0 {
				t.Fatalf("compress=%v %s: stats %+v", compress, name, st)
			}
			if _, err := os.Stat(CheckpointPath(path)); !errors.Is(err, os.ErrNotExist) {
				t.Fatalf("compress=%v %s: checkpoint manifest survived a completed build", compress, name)
			}
			if _, err := os.Stat(SidecarPath(path)); !errors.Is(err, os.ErrNotExist) {
				t.Fatalf("compress=%v %s: index sidecar survived a completed build", compress, name)
			}
		}
	}
}

// flakySource injects an I/O failure after a fixed number of panel
// fetches — the test's stand-in for a mid-build kill.
type flakySource struct {
	bitmat.Source
	remaining atomic.Int64
}

func (s *flakySource) Panel(lo, hi int, buf *bitmat.Matrix) (*bitmat.Matrix, error) {
	if s.remaining.Add(-1) < 0 {
		return nil, errors.New("injected I/O failure")
	}
	return s.Source.Panel(lo, hi, buf)
}

// TestSourceBuildKillAndResume: a checkpointed build killed mid-run
// reports partial progress, leaves a durable manifest, and a -resume run
// converges to bytes identical to an uninterrupted build — even when the
// crash left unaccounted garbage past the durable offset.
func TestSourceBuildKillAndResume(t *testing.T) {
	g := testMatrix(t, 120, 77, 9)
	bo := BuildOptions{TileSize: 16, Compress: true}
	want := filepath.Join(t.TempDir(), "want.ldts")
	if _, err := BuildFile(want, g, bo); err != nil {
		t.Fatal(err)
	}
	ref := mustRead(t, want)

	src := ldbmSource(t, g, false)
	flaky := &flakySource{Source: src}
	// Enough fetches to survive the frequency pass and a few stripes,
	// then fail.
	flaky.remaining.Store(int64(120/16) + 12)
	dir := t.TempDir()
	path := filepath.Join(dir, "got.ldts")
	_, err := BuildFileFromSource(path, flaky, SourceBuildOptions{
		BuildOptions: bo, IOPanelSNPs: 16, Checkpoint: true,
	})
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("killed build returned %v, want *PartialError", err)
	}
	if pe.FlushedStripes <= 0 || pe.FlushedStripes >= pe.TotalStripes {
		t.Fatalf("partial progress %d/%d out of range", pe.FlushedStripes, pe.TotalStripes)
	}
	m, err := readManifest(CheckpointPath(path))
	if err != nil {
		t.Fatalf("manifest after kill: %v", err)
	}
	if m.StripesDone != pe.FlushedStripes {
		t.Fatalf("manifest says %d stripes, error says %d", m.StripesDone, pe.FlushedStripes)
	}

	// Simulate the crash window: bytes written past the durable offset
	// whose manifest never landed. Resume must truncate them away.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("garbage past the durable offset")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st, err := BuildFileFromSource(path, src, SourceBuildOptions{
		BuildOptions: bo, IOPanelSNPs: 16, Resume: true,
	})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if st.StartStripe != pe.FlushedStripes {
		t.Fatalf("resume started at stripe %d, want %d", st.StartStripe, pe.FlushedStripes)
	}
	if got := mustRead(t, path); string(got) != string(ref) {
		t.Fatal("resumed store differs from uninterrupted build")
	}
}

// TestSourceBuildResumeRefusesMismatch: a manifest from a different
// dataset or different build options must refuse to resume.
func TestSourceBuildResumeRefusesMismatch(t *testing.T) {
	g := testMatrix(t, 64, 50, 3)
	src := ldbmSource(t, g, false)
	flaky := &flakySource{Source: src}
	flaky.remaining.Store(int64(64/16) + 5)
	path := filepath.Join(t.TempDir(), "got.ldts")
	bo := BuildOptions{TileSize: 16}
	if _, err := BuildFileFromSource(path, flaky, SourceBuildOptions{
		BuildOptions: bo, IOPanelSNPs: 16, Checkpoint: true,
	}); err == nil {
		t.Fatal("flaky build should have failed")
	}

	other := testMatrix(t, 64, 50, 99)
	if _, err := BuildFileFromSource(path, ldbmSource(t, other, false), SourceBuildOptions{
		BuildOptions: bo, IOPanelSNPs: 16, Resume: true,
	}); err == nil {
		t.Fatal("resume with a different dataset must refuse")
	}
	if _, err := BuildFileFromSource(path, src, SourceBuildOptions{
		BuildOptions: BuildOptions{TileSize: 32}, IOPanelSNPs: 16, Resume: true,
	}); err == nil {
		t.Fatal("resume with different tile size must refuse")
	}
	if _, err := BuildFileFromSource(path, src, SourceBuildOptions{
		BuildOptions: BuildOptions{TileSize: 16, Compress: true}, IOPanelSNPs: 16, Resume: true,
	}); err == nil {
		t.Fatal("resume with different compression must refuse")
	}
}

// TestSourceBuildMemoryBudget: the no-materialization guarantee. The
// build's total allocations must stay far below both the packed bit
// matrix and the n² result matrix — the two things an out-of-core build
// exists to never hold.
func TestSourceBuildMemoryBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("TotalAlloc budgets are meaningless under the race detector")
	}
	const (
		snps    = 2048
		samples = 65536
		nt      = 64
	)
	words := bitmat.WordsFor(samples)
	dir := t.TempDir()
	gpath := filepath.Join(dir, "g.ldbm")
	w, err := bitmat.CreateFile(gpath, snps, samples)
	if err != nil {
		t.Fatal(err)
	}
	// Stream the container into existence panel by panel: the full matrix
	// is never resident, in the test any more than in production.
	panel := bitmat.New(nt, samples)
	for lo := 0; lo < snps; lo += nt {
		for i := 0; i < nt; i++ {
			for wd := 0; wd < words; wd++ {
				panel.Data[i*words+wd] = uint64(lo+i+1) * 0x9e3779b97f4a7c15 >> (wd % 7)
			}
			panel.SNP(i)[words-1] &= panel.PadMask()
		}
		if err := w.WritePanel(panel); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	src, err := bitmat.OpenFile(gpath, false)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	matrixBytes := src.MatrixBytes()                // 16 MiB
	resultBytes := int64(snps) * int64(snps) * 8    // 32 MiB
	budget := min(matrixBytes, resultBytes) * 3 / 4 // must stay clearly below both
	path := filepath.Join(dir, "g.ldts")

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if _, err := BuildFileFromSource(path, src, SourceBuildOptions{
		BuildOptions: BuildOptions{TileSize: nt},
		IOPanelSNPs:  nt,
		Checkpoint:   true,
	}); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	alloc := int64(after.TotalAlloc - before.TotalAlloc)
	t.Logf("build allocated %d bytes total (matrix %d, result %d, budget %d)",
		alloc, matrixBytes, resultBytes, budget)
	if alloc > budget {
		t.Fatalf("out-of-core build allocated %d bytes, budget %d — materializing something it shouldn't",
			alloc, budget)
	}

	// And it still has to be a *correct* store.
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.SNPs() != snps {
		t.Fatalf("store has %d SNPs, want %d", s.SNPs(), snps)
	}
}

// TestPartialErrorUnwrap keeps the error chain intact for errors.Is
// callers above the builder.
func TestPartialErrorUnwrap(t *testing.T) {
	inner := errors.New("disk on fire")
	pe := &PartialError{FlushedStripes: 3, TotalStripes: 9, Err: inner}
	if !errors.Is(pe, inner) {
		t.Fatal("PartialError must unwrap to its cause")
	}
	if msg := pe.Error(); msg == "" || !errors.Is(fmt.Errorf("w: %w", pe), inner) {
		t.Fatal("PartialError formatting/wrapping broken")
	}
}
