// Package ldstore is the on-disk tile store for precomputed all-pairs LD:
// compute the blocked GEMM once, then serve point, region, top-K, and
// banded queries from an indexed, checksummed tile file at cache speed.
//
// The motivation follows Fabregat-Traver & Bientinesi's out-of-core GWAS
// pipelines and PLINK's precomputed LD reports: the paper's kernel makes
// the n² result cheap to *produce*, and tiling it to disk makes it cheap
// to *serve* — one build, millions of reads. The file holds the upper
// triangle of one statistic (r², D, or D′) as NT×NT float64 tiles behind
// a per-tile offset/checksum index, with a dataset fingerprint binding
// the store to the matrix it was computed from.
//
// File layout (all integers little-endian):
//
//	header (64 bytes)
//	tile payloads, in index order (row-major over the upper tile triangle)
//	index: one 24-byte entry per tile, ending exactly at end-of-file
//
// See DESIGN.md for the byte-level header and index tables.
package ldstore

import (
	"encoding/binary"
	"fmt"
	"math"

	"ldgemm/internal/bitmat"
	"ldgemm/internal/core"
)

// Stat identifies the statistic a store holds.
type Stat uint32

const (
	// StatR2 is the squared correlation r² (Eq. 2 of the paper).
	StatR2 Stat = 1
	// StatD is the raw disequilibrium coefficient D (Eq. 1).
	StatD Stat = 2
	// StatDPrime is Lewontin's normalized D′.
	StatDPrime Stat = 3
)

// String returns the CLI spelling of the statistic.
func (s Stat) String() string {
	switch s {
	case StatR2:
		return "r2"
	case StatD:
		return "d"
	case StatDPrime:
		return "dprime"
	}
	return fmt.Sprintf("stat(%d)", uint32(s))
}

// Measure maps the statistic to the core measure flag that computes it.
func (s Stat) Measure() core.Measure {
	switch s {
	case StatR2:
		return core.MeasureR2
	case StatD:
		return core.MeasureD
	case StatDPrime:
		return core.MeasureDPrime
	}
	return 0
}

// ParseStat parses the CLI spelling of a statistic kind.
func ParseStat(s string) (Stat, error) {
	switch s {
	case "r2":
		return StatR2, nil
	case "d":
		return StatD, nil
	case "dprime":
		return StatDPrime, nil
	}
	return 0, fmt.Errorf("ldstore: unknown statistic %q (want r2, d, or dprime)", s)
}

func (s Stat) valid() bool { return s == StatR2 || s == StatD || s == StatDPrime }

// Container constants. The header is fixed-size so the index offset can be
// patched in place after the variable-length tile section is written.
const (
	headerSize     = 64
	indexEntrySize = 24
	formatVersion  = 1

	// flagCompressed marks per-tile DEFLATE compression.
	flagCompressed = 1 << 0
)

var magic = [4]byte{'L', 'D', 'T', 'S'}

// Dimension sanity caps: a corrupt or hostile header must not drive an
// implausible allocation before any payload is validated.
const (
	maxSNPs    = 1 << 31
	maxSamples = 1 << 40
)

// MaxTileBytes caps the decoded size of a single tile (tileSize² float64s).
// A compressed tile expands to exactly this bound times nothing more, so it
// also bounds the decompression allocation. Raise it for very large tiles.
var MaxTileBytes int64 = 1 << 26 // 64 MiB = 2896² float64

// header is the decoded fixed-size file header.
//
// Byte layout:
//
//	off size field
//	  0    4 magic "LDTS"
//	  4    4 version (uint32, currently 1)
//	  8    4 flags (bit 0: tiles are DEFLATE-compressed)
//	 12    4 statistic kind (1 r², 2 D, 3 D′)
//	 16    8 SNPs
//	 24    8 samples
//	 32    4 tile size NT
//	 36    4 reserved (zero)
//	 40    8 dataset fingerprint (FNV-1a 64 over dims + packed words)
//	 48    8 index offset
//	 56    8 tile count
type header struct {
	flags       uint32
	stat        Stat
	snps        uint64
	samples     uint64
	tileSize    uint32
	fingerprint uint64
	indexOffset uint64
	tileCount   uint64
}

func (h header) encode() []byte {
	b := make([]byte, headerSize)
	copy(b[0:4], magic[:])
	binary.LittleEndian.PutUint32(b[4:], formatVersion)
	binary.LittleEndian.PutUint32(b[8:], h.flags)
	binary.LittleEndian.PutUint32(b[12:], uint32(h.stat))
	binary.LittleEndian.PutUint64(b[16:], h.snps)
	binary.LittleEndian.PutUint64(b[24:], h.samples)
	binary.LittleEndian.PutUint32(b[32:], h.tileSize)
	binary.LittleEndian.PutUint64(b[40:], h.fingerprint)
	binary.LittleEndian.PutUint64(b[48:], h.indexOffset)
	binary.LittleEndian.PutUint64(b[56:], h.tileCount)
	return b
}

func decodeHeader(b []byte) (header, error) {
	var h header
	if len(b) < headerSize {
		return h, fmt.Errorf("ldstore: short header (%d bytes)", len(b))
	}
	if [4]byte(b[0:4]) != magic {
		return h, fmt.Errorf("ldstore: bad magic %q", b[0:4])
	}
	if v := binary.LittleEndian.Uint32(b[4:]); v != formatVersion {
		return h, fmt.Errorf("ldstore: unsupported version %d", v)
	}
	h.flags = binary.LittleEndian.Uint32(b[8:])
	h.stat = Stat(binary.LittleEndian.Uint32(b[12:]))
	h.snps = binary.LittleEndian.Uint64(b[16:])
	h.samples = binary.LittleEndian.Uint64(b[24:])
	h.tileSize = binary.LittleEndian.Uint32(b[32:])
	h.fingerprint = binary.LittleEndian.Uint64(b[40:])
	h.indexOffset = binary.LittleEndian.Uint64(b[48:])
	h.tileCount = binary.LittleEndian.Uint64(b[56:])
	return h, nil
}

func (h header) compressed() bool { return h.flags&flagCompressed != 0 }

// indexEntry locates and authenticates one tile payload.
//
// Byte layout (24 bytes): offset uint64, length uint32, crc32 (IEEE) of
// the stored payload uint32, then the tile's maximum off-diagonal value as
// a float64 — the pruning bound that lets top-K queries skip cold tiles.
type indexEntry struct {
	offset uint64
	length uint32
	crc    uint32
	maxOff float64
}

func (e indexEntry) encode(b []byte) {
	binary.LittleEndian.PutUint64(b[0:], e.offset)
	binary.LittleEndian.PutUint32(b[8:], e.length)
	binary.LittleEndian.PutUint32(b[12:], e.crc)
	binary.LittleEndian.PutUint64(b[16:], math.Float64bits(e.maxOff))
}

func decodeIndexEntry(b []byte) indexEntry {
	return indexEntry{
		offset: binary.LittleEndian.Uint64(b[0:]),
		length: binary.LittleEndian.Uint32(b[8:]),
		crc:    binary.LittleEndian.Uint32(b[12:]),
		maxOff: math.Float64frombits(binary.LittleEndian.Uint64(b[16:])),
	}
}

// Tile-grid geometry. Tiles cover the upper triangle of the SNP×SNP
// matrix: tile (ti, tj) with tj ≥ ti holds rows [ti·NT, ...) × columns
// [tj·NT, ...). Diagonal tiles (ti == tj) store their full mirrored
// square so point and region reads never have to transpose.

// tilesFor returns the number of tile bands covering n SNPs.
func tilesFor(n, nt int) int {
	if n <= 0 {
		return 0
	}
	return (n + nt - 1) / nt
}

// triangleTiles returns the number of tiles in the upper tile triangle.
func triangleTiles(t int) int64 {
	return int64(t) * int64(t+1) / 2
}

// tileID maps tile coordinates (ti ≤ tj) to the linear index used by the
// on-disk layout: tiles are ordered row-major over the upper triangle.
func tileID(t, ti, tj int) int64 {
	return int64(ti)*int64(t) - int64(ti)*int64(ti-1)/2 + int64(tj-ti)
}

// Fingerprint hashes a genomic matrix (dimensions plus packed words) with
// FNV-1a 64. Builders stamp it into the header and servers refuse to pair
// a store with a dataset whose fingerprint differs, so a stale or
// mismatched tile file can never silently serve wrong statistics. The hash
// itself lives in bitmat (streamable, so out-of-core sources and .ldbm
// containers carry the identical identity); this wrapper is the historical
// entry point.
func Fingerprint(g *bitmat.Matrix) uint64 {
	return g.Fingerprint()
}
